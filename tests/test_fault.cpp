// Fault-injection subsystem tests: checksummed storage hardening,
// sync-pattern audit regression, event-queue safety, deterministic
// fault plans, and crash/drop/straggler recovery integration on bfs.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/reference.hpp"
#include "engine/termination.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault.hpp"
#include "fault/fault_injector.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "partition/blob_io.hpp"
#include "partition/partition_io.hpp"
#include "sim/event_queue.hpp"
#include "helpers.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr small_social() {
  graph::SyntheticSpec s;
  s.vertices = 600;
  s.edges = 5000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.hub_in_frac = 0.05;
  s.communities = 3;
  s.seed = 7;
  return graph::synthetic(s);
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void flip_byte(const std::filesystem::path& p, std::streamoff off) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(off);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(off);
  f.write(&c, 1);
}

void truncate_file(const std::filesystem::path& p, std::uintmax_t keep) {
  std::filesystem::resize_file(p, keep);
}

// ---- blob_io -----------------------------------------------------------

TEST(BlobIo, WriterReaderRoundTripIncludingNestedVectors) {
  partition::ByteWriter w;
  std::vector<std::uint32_t> a{1, 2, 3};
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> nested{
      {{1, 10}, {2, 20}}, {}, {{3, 30}}};
  std::uint64_t x = 99;
  bool flag = true;
  w(a, nested, x, flag);

  partition::ByteReader r(w.bytes(), "test");
  std::vector<std::uint32_t> a2;
  decltype(nested) nested2;
  std::uint64_t x2 = 0;
  bool flag2 = false;
  r(a2, nested2, x2, flag2);
  r.expect_end();
  EXPECT_EQ(a2, a);
  EXPECT_EQ(nested2, nested);
  EXPECT_EQ(x2, x);
  EXPECT_EQ(flag2, flag);
}

TEST(BlobIo, ReaderRejectsTruncationAndBogusLengths) {
  partition::ByteWriter w;
  w.vec(std::vector<std::uint64_t>{1, 2, 3});
  auto bytes = w.take();

  // Claim more elements than the buffer can hold.
  bytes[0] = 120;  // little-endian length now absurd
  partition::ByteReader r(bytes, "test");
  EXPECT_THROW((void)r.vec<std::uint64_t>(), std::runtime_error);

  // Truncated POD read.
  std::vector<char> tiny{1, 2};
  partition::ByteReader r2(tiny, "test");
  EXPECT_THROW((void)r2.pod<std::uint64_t>(), std::runtime_error);
}

TEST(BlobIo, ChecksummedFileDetectsCorruptionAndBadMagic) {
  const auto dir = fresh_dir("sg_blobio");
  const auto path = dir / "blob.bin";
  const std::array<char, 4> magic{'T', 'E', 'S', 'T'};
  std::vector<char> payload{10, 20, 30, 40, 50};
  partition::write_checksummed_file(path, magic, 1, payload);
  EXPECT_EQ(partition::read_checksummed_file(path, magic, 1, "t"), payload);

  flip_byte(path, 18);  // inside the payload
  EXPECT_THROW(
      (void)partition::read_checksummed_file(path, magic, 1, "t"),
      std::runtime_error);

  partition::write_checksummed_file(path, magic, 1, payload);
  EXPECT_THROW((void)partition::read_checksummed_file(
                   path, {'N', 'O', 'P', 'E'}, 1, "t"),
               std::runtime_error);
  EXPECT_THROW((void)partition::read_checksummed_file(path, magic, 9, "t"),
               std::runtime_error);
}

// ---- partition store hardening ----------------------------------------

TEST(PartitionStoreHardening, DetectsCorruptAndTruncatedParts) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::OEC, 2);
  const auto dir = fresh_dir("sg_part_corrupt");
  partition::save_partition(prep.dist, dir);

  // Pristine round-trip still works.
  EXPECT_NO_THROW((void)partition::load_partition(dir));

  // A flipped byte deep inside a part file must be caught by checksum.
  flip_byte(dir / "part_0.sgp", 600);
  try {
    (void)partition::load_partition(dir);
    FAIL() << "corrupt part file was not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }

  // Re-save, then truncate the manifest.
  partition::save_partition(prep.dist, dir);
  truncate_file(dir / "manifest.sgp", 40);
  EXPECT_THROW((void)partition::load_partition(dir), std::runtime_error);
}

// ---- SyncPattern audit (Gluon Section III-D1) --------------------------

TEST(SyncPatternAudit, PushAndPullDeriveDifferentFilters) {
  const auto push = comm::SyncPattern::push();
  EXPECT_EQ(push.reduce_filter(), comm::ProxyFilter::kWithIn);
  EXPECT_EQ(push.broadcast_filter(), comm::ProxyFilter::kWithOut);

  // Pull reads source values AND read-modify-writes the destination:
  // the reduced result must reach every proxy of the vertex.
  const auto pull = comm::SyncPattern::pull();
  EXPECT_EQ(pull.reduce_filter(), comm::ProxyFilter::kWithIn);
  EXPECT_EQ(pull.broadcast_filter(), comm::ProxyFilter::kAll);
  EXPECT_NE(pull.broadcast_filter(), push.broadcast_filter());
}

// ---- event queue -------------------------------------------------------

TEST(EventQueueSafety, OrdersByTimeThenInsertionSequence) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(sim::SimTime{2.0}, [&](sim::SimTime) { order.push_back(0); });
  q.schedule(sim::SimTime{1.0}, [&](sim::SimTime) { order.push_back(1); });
  q.schedule(sim::SimTime{1.0}, [&](sim::SimTime) { order.push_back(2); });
  EXPECT_EQ(q.next_time(), sim::SimTime{1.0});
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(q.now(), sim::SimTime{2.0});
}

TEST(EventQueueSafety, EventsScheduledFromCallbacksRun) {
  sim::EventQueue q;
  int fired = 0;
  q.schedule(sim::SimTime{1.0}, [&](sim::SimTime t) {
    ++fired;
    q.schedule(t + sim::SimTime{1.0}, [&](sim::SimTime) { ++fired; });
  });
  q.run_to_completion();
  EXPECT_EQ(fired, 2);
}

// ---- checkpoint store --------------------------------------------------

TEST(CheckpointStoreTest, RoundTripAndCorruptionDetection) {
  const auto dir = fresh_dir("sg_ckpt");
  fault::CheckpointStore store(dir);
  fault::Checkpoint ck;
  ck.round = 6;
  ck.devices.resize(2);
  ck.devices[0].bytes = {1, 2, 3, 4};
  ck.devices[1].bytes = {5, 6};
  store.save(ck);
  ASSERT_TRUE(store.exists(6, 2));
  const auto loaded = store.load(6, 2);
  EXPECT_EQ(loaded.round, 6u);
  EXPECT_EQ(loaded.devices[0].bytes, ck.devices[0].bytes);
  EXPECT_EQ(loaded.devices[1].bytes, ck.devices[1].bytes);
  EXPECT_EQ(loaded.total_bytes(), 6u);

  flip_byte(store.device_file(6, 1), 17);
  EXPECT_THROW((void)store.load(6, 2), std::runtime_error);
  EXPECT_FALSE(store.exists(7, 2));
}

// ---- fault injector ----------------------------------------------------

TEST(FaultInjectorTest, HostCrashExpandsAndDropsAreDeterministic) {
  const auto t = topo(4);  // 2 hosts x 2 devices
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.drop_messages(0.5, sim::SimTime::zero());
  plan.crash_host(1, sim::SimTime{1.0});
  const fault::FaultInjector inj(&plan, &t);
  ASSERT_TRUE(inj.active());
  ASSERT_EQ(inj.crashes().size(), 2u);
  EXPECT_EQ(inj.crashes()[0].device, 2);
  EXPECT_EQ(inj.crashes()[1].device, 3);
  EXPECT_EQ(inj.windowed_events(), 1u);

  int drops = 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const bool x = inj.drops_message(0, 1, fault::MsgKind::kReduce, 3,
                                     attempt, sim::SimTime{0.5});
    EXPECT_EQ(x, inj.drops_message(0, 1, fault::MsgKind::kReduce, 3,
                                   attempt, sim::SimTime{0.5}));
    drops += x ? 1 : 0;
  }
  // ~50% drop probability: both outcomes must occur.
  EXPECT_GT(drops, 10);
  EXPECT_LT(drops, 54);

  // Crash events naming devices this run doesn't have are ignored
  // instead of driving the engine out of range.
  fault::FaultPlan bogus;
  bogus.crash_device(99, sim::SimTime{1.0});
  bogus.crash_device(-3, sim::SimTime{1.0});
  const fault::FaultInjector inj2(&bogus, &t);
  EXPECT_TRUE(inj2.crashes().empty());

  const fault::FaultInjector inactive;
  EXPECT_FALSE(inactive.active());
  EXPECT_FALSE(inactive.drops_message(0, 1, fault::MsgKind::kReduce, 3, 0,
                                      sim::SimTime{0.5}));
}

TEST(FaultInjectorTest, WindowedStragglerAndLinkDegrade) {
  const auto t = topo(4);
  fault::FaultPlan plan;
  plan.straggle(1, sim::SimTime{1.0}, sim::SimTime{2.0}, 4.0);
  plan.degrade_link(0, 1, sim::SimTime{1.0}, sim::SimTime{2.0}, 8.0);
  const fault::FaultInjector inj(&plan, &t);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{0.5}), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{1.5}), 4.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{3.5}), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(0, sim::SimTime{1.5}), 1.0);
  EXPECT_DOUBLE_EQ(inj.link_delay_factor(0, 1, sim::SimTime{1.5}), 8.0);
  EXPECT_DOUBLE_EQ(inj.link_delay_factor(0, 1, sim::SimTime{4.0}), 1.0);
  // Same host: never degraded.
  EXPECT_DOUBLE_EQ(inj.link_delay_factor(0, 0, sim::SimTime{1.5}), 1.0);
}

// ---- termination detection under message loss --------------------------

TEST(TerminationUnderLoss, DroppedThenRetriedMessageDoesNotFalselyTerminate) {
  engine::TerminationDetector td(3);
  // Everyone starts active; quiesce processes 1 and 2, and let 0 send a
  // message to 1 whose delivery is delayed by drop + retry.
  td.on_send(0);
  td.set_active(0, false);
  td.set_active(1, false);
  td.set_active(2, false);
  // While the message is in flight, the token may circulate as long as
  // it likes without declaring termination.
  for (int i = 0; i < 24; ++i) {
    EXPECT_FALSE(td.try_advance());
  }
  // Retry finally delivers; the receiver processes it and re-parks.
  td.on_receive(1);
  td.set_active(1, true);
  td.set_active(1, false);
  bool done = false;
  for (int i = 0; i < 24 && !done; ++i) done = td.try_advance();
  EXPECT_TRUE(done);
}

// ---- integration: crash / drop / straggler recovery --------------------

struct BfsFixture {
  graph::Csr g = small_social();
  graph::VertexId src = graph::datasets::default_source(g);
  PreparedGraph prep{g, partition::Policy::OEC, 4};
  sim::Topology t = topo(4);
  sim::CostParams p = params();

  algo::BfsResult run(const engine::EngineConfig& c) {
    return algo::run_bfs(prep.dist, prep.sync, t, p, c, src);
  }
};

TEST(FaultRecovery, BspCrashWithCheckpointRestartIsBitIdentical) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);
  EXPECT_EQ(ff.stats.faults.faults_injected, 0u);
  EXPECT_EQ(ff.stats.faults.checkpoints_taken, 0u);

  fault::FaultPlan plan;
  plan.seed = 42;
  plan.crash_device(1, ff.stats.total_time * 0.5);
  plan.drop_messages(0.3, sim::SimTime::zero());
  auto faulty = base;
  faulty.fault_plan = &plan;
  faulty.checkpoint.interval_rounds = 1;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);  // bit-identical final labels
  EXPECT_EQ(fr.dist, algo::reference::bfs(fx.g, fx.src));
  EXPECT_EQ(fr.stats.faults.device_crashes, 1u);
  EXPECT_GE(fr.stats.faults.rollbacks, 1u);
  EXPECT_GT(fr.stats.faults.reexecuted_rounds, 0u);
  EXPECT_GT(fr.stats.faults.retries, 0u);
  EXPECT_GT(fr.stats.faults.messages_dropped, 0u);
  EXPECT_GT(fr.stats.faults.checkpoints_taken, 0u);
  EXPECT_GT(fr.stats.faults.faults_injected, 0u);
  EXPECT_GT(fr.stats.faults.recovery_time, sim::SimTime::zero());
  EXPECT_GT(fr.stats.faults.checkpoint_time, sim::SimTime::zero());
  EXPECT_GT(fr.stats.total_time, ff.stats.total_time);
  EXPECT_GT(fr.stats.comm.retransmitted_messages, 0u);
  EXPECT_GT(fr.stats.comm.retransmitted_bytes, 0u);

  // Fixed seed + same plan => byte-identical rerun.
  const auto fr2 = fx.run(faulty);
  EXPECT_EQ(fr2.dist, fr.dist);
  EXPECT_EQ(fr2.stats.total_time, fr.stats.total_time);
  EXPECT_EQ(fr2.stats.faults.retries, fr.stats.faults.retries);
}

TEST(FaultRecovery, BspCheckpointsPersistToDiskWhenConfigured) {
  BfsFixture fx;
  const auto dir = fresh_dir("sg_bsp_ckpt");
  auto c = cfg(engine::ExecModel::kSync);
  c.checkpoint.interval_rounds = 2;
  c.checkpoint.dir = dir;
  const auto r = fx.run(c);
  EXPECT_GT(r.stats.faults.checkpoints_taken, 0u);
  bool found = false;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".sgck") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FaultRecovery, BspCrashWithoutCheckpointDegradedRecovery) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.crash_device(2, ff.stats.total_time * 0.5);
  auto faulty = base;
  faulty.fault_plan = &plan;  // no checkpoint interval: degraded path
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.device_crashes, 1u);
  EXPECT_EQ(fr.stats.faults.rollbacks, 0u);
  EXPECT_GE(fr.stats.faults.degraded_recoveries, 1u);
  EXPECT_GT(fr.stats.faults.recovery_time, sim::SimTime::zero());
}

TEST(FaultRecovery, BspHostCrashRecoversAllResidentDevices) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.crash_host(1, ff.stats.total_time * 0.5);  // devices 2 and 3
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.device_crashes, 2u);
  EXPECT_GE(fr.stats.faults.degraded_recoveries, 2u);
}

TEST(FaultRecovery, BaspDropPlanNeitherDeadlocksNorFalselyTerminates) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kAsync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.seed = 11;
  plan.drop_messages(0.25, sim::SimTime::zero());
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  // No deadlock (the run finished), correct labels (no false/early
  // termination), and the Safra audit agrees the quiescence was real.
  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.dist, algo::reference::bfs(fx.g, fx.src));
  EXPECT_GT(fr.stats.faults.messages_dropped, 0u);
  EXPECT_GT(fr.stats.faults.retries, 0u);
  EXPECT_TRUE(fr.stats.faults.termination_clean);
  EXPECT_GE(fr.stats.total_time, ff.stats.total_time);
}

TEST(FaultRecovery, BaspCrashRecoversViaPeerRefeed) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kAsync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.crash_device(2, ff.stats.total_time * 0.4);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.device_crashes, 1u);
  EXPECT_GE(fr.stats.faults.degraded_recoveries, 1u);
  EXPECT_TRUE(fr.stats.faults.termination_clean);
}

TEST(FaultRecovery, StragglerPlanIsDeterministicAcrossReruns) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.straggle(1, sim::SimTime::zero(), sim::SimTime::zero(), 3.0);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto a = fx.run(faulty);
  const auto b = fx.run(faulty);

  EXPECT_EQ(a.dist, ff.dist);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.total_time, b.stats.total_time);
  EXPECT_GT(a.stats.faults.straggler_delay, sim::SimTime::zero());
  EXPECT_GT(a.stats.total_time, ff.stats.total_time);
}

}  // namespace
}  // namespace sg
