// Fault-injection subsystem tests: checksummed storage hardening,
// sync-pattern audit regression, event-queue safety, deterministic
// fault plans, and crash/drop/straggler recovery integration on bfs.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/pagerank.hpp"
#include "algo/ppr.hpp"
#include "algo/reference.hpp"
#include "algo/sssp.hpp"
#include "engine/termination.hpp"
#include "fault/chaos.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault.hpp"
#include "fault/fault_injector.hpp"
#include "fault/health.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "partition/blob_io.hpp"
#include "partition/partition_io.hpp"
#include "partition/rehome.hpp"
#include "sim/event_queue.hpp"
#include "helpers.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr small_social() {
  graph::SyntheticSpec s;
  s.vertices = 600;
  s.edges = 5000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.hub_in_frac = 0.05;
  s.communities = 3;
  s.seed = 7;
  return graph::synthetic(s);
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void flip_byte(const std::filesystem::path& p, std::streamoff off) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(off);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(off);
  f.write(&c, 1);
}

void truncate_file(const std::filesystem::path& p, std::uintmax_t keep) {
  std::filesystem::resize_file(p, keep);
}

// ---- blob_io -----------------------------------------------------------

TEST(BlobIo, WriterReaderRoundTripIncludingNestedVectors) {
  partition::ByteWriter w;
  std::vector<std::uint32_t> a{1, 2, 3};
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> nested{
      {{1, 10}, {2, 20}}, {}, {{3, 30}}};
  std::uint64_t x = 99;
  bool flag = true;
  w(a, nested, x, flag);

  partition::ByteReader r(w.bytes(), "test");
  std::vector<std::uint32_t> a2;
  decltype(nested) nested2;
  std::uint64_t x2 = 0;
  bool flag2 = false;
  r(a2, nested2, x2, flag2);
  r.expect_end();
  EXPECT_EQ(a2, a);
  EXPECT_EQ(nested2, nested);
  EXPECT_EQ(x2, x);
  EXPECT_EQ(flag2, flag);
}

TEST(BlobIo, ReaderRejectsTruncationAndBogusLengths) {
  partition::ByteWriter w;
  w.vec(std::vector<std::uint64_t>{1, 2, 3});
  auto bytes = w.take();

  // Claim more elements than the buffer can hold.
  bytes[0] = 120;  // little-endian length now absurd
  partition::ByteReader r(bytes, "test");
  EXPECT_THROW((void)r.vec<std::uint64_t>(), std::runtime_error);

  // Truncated POD read.
  std::vector<char> tiny{1, 2};
  partition::ByteReader r2(tiny, "test");
  EXPECT_THROW((void)r2.pod<std::uint64_t>(), std::runtime_error);
}

TEST(BlobIo, ChecksummedFileDetectsCorruptionAndBadMagic) {
  const auto dir = fresh_dir("sg_blobio");
  const auto path = dir / "blob.bin";
  const std::array<char, 4> magic{'T', 'E', 'S', 'T'};
  std::vector<char> payload{10, 20, 30, 40, 50};
  partition::write_checksummed_file(path, magic, 1, payload);
  EXPECT_EQ(partition::read_checksummed_file(path, magic, 1, "t"), payload);

  flip_byte(path, 18);  // inside the payload
  EXPECT_THROW(
      (void)partition::read_checksummed_file(path, magic, 1, "t"),
      std::runtime_error);

  partition::write_checksummed_file(path, magic, 1, payload);
  EXPECT_THROW((void)partition::read_checksummed_file(
                   path, {'N', 'O', 'P', 'E'}, 1, "t"),
               std::runtime_error);
  EXPECT_THROW((void)partition::read_checksummed_file(path, magic, 9, "t"),
               std::runtime_error);
}

// ---- partition store hardening ----------------------------------------

TEST(PartitionStoreHardening, DetectsCorruptAndTruncatedParts) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::OEC, 2);
  const auto dir = fresh_dir("sg_part_corrupt");
  partition::save_partition(prep.dist, dir);

  // Pristine round-trip still works.
  EXPECT_NO_THROW((void)partition::load_partition(dir));

  // A flipped byte deep inside a part file must be caught by checksum.
  flip_byte(dir / "part_0.sgp", 600);
  try {
    (void)partition::load_partition(dir);
    FAIL() << "corrupt part file was not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }

  // Re-save, then truncate the manifest.
  partition::save_partition(prep.dist, dir);
  truncate_file(dir / "manifest.sgp", 40);
  EXPECT_THROW((void)partition::load_partition(dir), std::runtime_error);
}

// ---- SyncPattern audit (Gluon Section III-D1) --------------------------

TEST(SyncPatternAudit, PushAndPullDeriveDifferentFilters) {
  const auto push = comm::SyncPattern::push();
  EXPECT_EQ(push.reduce_filter(), comm::ProxyFilter::kWithIn);
  EXPECT_EQ(push.broadcast_filter(), comm::ProxyFilter::kWithOut);

  // Pull reads source values AND read-modify-writes the destination:
  // the reduced result must reach every proxy of the vertex.
  const auto pull = comm::SyncPattern::pull();
  EXPECT_EQ(pull.reduce_filter(), comm::ProxyFilter::kWithIn);
  EXPECT_EQ(pull.broadcast_filter(), comm::ProxyFilter::kAll);
  EXPECT_NE(pull.broadcast_filter(), push.broadcast_filter());
}

// ---- event queue -------------------------------------------------------

TEST(EventQueueSafety, OrdersByTimeThenInsertionSequence) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(sim::SimTime{2.0}, [&](sim::SimTime) { order.push_back(0); });
  q.schedule(sim::SimTime{1.0}, [&](sim::SimTime) { order.push_back(1); });
  q.schedule(sim::SimTime{1.0}, [&](sim::SimTime) { order.push_back(2); });
  EXPECT_EQ(q.next_time(), sim::SimTime{1.0});
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(q.now(), sim::SimTime{2.0});
}

TEST(EventQueueSafety, EventsScheduledFromCallbacksRun) {
  sim::EventQueue q;
  int fired = 0;
  q.schedule(sim::SimTime{1.0}, [&](sim::SimTime t) {
    ++fired;
    q.schedule(t + sim::SimTime{1.0}, [&](sim::SimTime) { ++fired; });
  });
  q.run_to_completion();
  EXPECT_EQ(fired, 2);
}

// ---- checkpoint store --------------------------------------------------

TEST(CheckpointStoreTest, RoundTripAndCorruptionDetection) {
  const auto dir = fresh_dir("sg_ckpt");
  fault::CheckpointStore store(dir);
  fault::Checkpoint ck;
  ck.round = 6;
  ck.devices.resize(2);
  ck.devices[0].bytes = {1, 2, 3, 4};
  ck.devices[1].bytes = {5, 6};
  store.save(ck);
  ASSERT_TRUE(store.exists(6, 2));
  const auto loaded = store.load(6, 2);
  EXPECT_EQ(loaded.round, 6u);
  EXPECT_EQ(loaded.devices[0].bytes, ck.devices[0].bytes);
  EXPECT_EQ(loaded.devices[1].bytes, ck.devices[1].bytes);
  EXPECT_EQ(loaded.total_bytes(), 6u);

  flip_byte(store.device_file(6, 1), 17);
  EXPECT_THROW((void)store.load(6, 2), std::runtime_error);
  EXPECT_FALSE(store.exists(7, 2));
}

// ---- fault injector ----------------------------------------------------

TEST(FaultInjectorTest, HostCrashExpandsAndDropsAreDeterministic) {
  const auto t = topo(4);  // 2 hosts x 2 devices
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.drop_messages(0.5, sim::SimTime::zero());
  plan.crash_host(1, sim::SimTime{1.0});
  const fault::FaultInjector inj(&plan, &t);
  ASSERT_TRUE(inj.active());
  ASSERT_EQ(inj.crashes().size(), 2u);
  EXPECT_EQ(inj.crashes()[0].device, 2);
  EXPECT_EQ(inj.crashes()[1].device, 3);
  EXPECT_EQ(inj.windowed_events(), 1u);

  int drops = 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const bool x = inj.drops_message(0, 1, fault::MsgKind::kReduce, 3,
                                     attempt, sim::SimTime{0.5});
    EXPECT_EQ(x, inj.drops_message(0, 1, fault::MsgKind::kReduce, 3,
                                   attempt, sim::SimTime{0.5}));
    drops += x ? 1 : 0;
  }
  // ~50% drop probability: both outcomes must occur.
  EXPECT_GT(drops, 10);
  EXPECT_LT(drops, 54);

  // Crash events naming devices this run doesn't have are ignored
  // instead of driving the engine out of range.
  fault::FaultPlan bogus;
  bogus.crash_device(99, sim::SimTime{1.0});
  bogus.crash_device(-3, sim::SimTime{1.0});
  const fault::FaultInjector inj2(&bogus, &t);
  EXPECT_TRUE(inj2.crashes().empty());

  const fault::FaultInjector inactive;
  EXPECT_FALSE(inactive.active());
  EXPECT_FALSE(inactive.drops_message(0, 1, fault::MsgKind::kReduce, 3, 0,
                                      sim::SimTime{0.5}));
}

TEST(FaultInjectorTest, WindowedStragglerAndLinkDegrade) {
  const auto t = topo(4);
  fault::FaultPlan plan;
  plan.straggle(1, sim::SimTime{1.0}, sim::SimTime{2.0}, 4.0);
  plan.degrade_link(0, 1, sim::SimTime{1.0}, sim::SimTime{2.0}, 8.0);
  const fault::FaultInjector inj(&plan, &t);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{0.5}), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{1.5}), 4.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{3.5}), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(0, sim::SimTime{1.5}), 1.0);
  EXPECT_DOUBLE_EQ(inj.link_delay_factor(0, 1, sim::SimTime{1.5}), 8.0);
  EXPECT_DOUBLE_EQ(inj.link_delay_factor(0, 1, sim::SimTime{4.0}), 1.0);
  // Same host: never degraded.
  EXPECT_DOUBLE_EQ(inj.link_delay_factor(0, 0, sim::SimTime{1.5}), 1.0);
}

// ---- termination detection under message loss --------------------------

TEST(TerminationUnderLoss, DroppedThenRetriedMessageDoesNotFalselyTerminate) {
  engine::TerminationDetector td(3);
  // Everyone starts active; quiesce processes 1 and 2, and let 0 send a
  // message to 1 whose delivery is delayed by drop + retry.
  td.on_send(0);
  td.set_active(0, false);
  td.set_active(1, false);
  td.set_active(2, false);
  // While the message is in flight, the token may circulate as long as
  // it likes without declaring termination.
  for (int i = 0; i < 24; ++i) {
    EXPECT_FALSE(td.try_advance());
  }
  // Retry finally delivers; the receiver processes it and re-parks.
  td.on_receive(1);
  td.set_active(1, true);
  td.set_active(1, false);
  bool done = false;
  for (int i = 0; i < 24 && !done; ++i) done = td.try_advance();
  EXPECT_TRUE(done);
}

// ---- integration: crash / drop / straggler recovery --------------------

struct BfsFixture {
  graph::Csr g = small_social();
  graph::VertexId src = graph::datasets::default_source(g);
  PreparedGraph prep{g, partition::Policy::OEC, 4};
  sim::Topology t = topo(4);
  sim::CostParams p = params();

  algo::BfsResult run(const engine::EngineConfig& c) {
    return algo::run_bfs(prep.dist, prep.sync, t, p, c, src);
  }
};

TEST(FaultRecovery, BspCrashWithCheckpointRestartIsBitIdentical) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);
  EXPECT_EQ(ff.stats.faults.faults_injected, 0u);
  EXPECT_EQ(ff.stats.faults.checkpoints_taken, 0u);

  fault::FaultPlan plan;
  plan.seed = 42;
  plan.crash_device(1, ff.stats.total_time * 0.5);
  plan.drop_messages(0.3, sim::SimTime::zero());
  auto faulty = base;
  faulty.fault_plan = &plan;
  faulty.checkpoint.interval_rounds = 1;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);  // bit-identical final labels
  EXPECT_EQ(fr.dist, algo::reference::bfs(fx.g, fx.src));
  EXPECT_EQ(fr.stats.faults.device_crashes, 1u);
  EXPECT_GE(fr.stats.faults.rollbacks, 1u);
  EXPECT_GT(fr.stats.faults.reexecuted_rounds, 0u);
  EXPECT_GT(fr.stats.faults.retries, 0u);
  EXPECT_GT(fr.stats.faults.messages_dropped, 0u);
  EXPECT_GT(fr.stats.faults.checkpoints_taken, 0u);
  EXPECT_GT(fr.stats.faults.faults_injected, 0u);
  EXPECT_GT(fr.stats.faults.recovery_time, sim::SimTime::zero());
  EXPECT_GT(fr.stats.faults.checkpoint_time, sim::SimTime::zero());
  EXPECT_GT(fr.stats.total_time, ff.stats.total_time);
  EXPECT_GT(fr.stats.comm.retransmitted_messages, 0u);
  EXPECT_GT(fr.stats.comm.retransmitted_bytes, 0u);

  // Fixed seed + same plan => byte-identical rerun.
  const auto fr2 = fx.run(faulty);
  EXPECT_EQ(fr2.dist, fr.dist);
  EXPECT_EQ(fr2.stats.total_time, fr.stats.total_time);
  EXPECT_EQ(fr2.stats.faults.retries, fr.stats.faults.retries);
}

TEST(FaultRecovery, BspCheckpointsPersistToDiskWhenConfigured) {
  BfsFixture fx;
  const auto dir = fresh_dir("sg_bsp_ckpt");
  auto c = cfg(engine::ExecModel::kSync);
  c.checkpoint.interval_rounds = 2;
  c.checkpoint.dir = dir;
  const auto r = fx.run(c);
  EXPECT_GT(r.stats.faults.checkpoints_taken, 0u);
  bool found = false;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".sgck") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FaultRecovery, BspCrashWithoutCheckpointDegradedRecovery) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.crash_device(2, ff.stats.total_time * 0.5);
  auto faulty = base;
  faulty.fault_plan = &plan;  // no checkpoint interval: degraded path
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.device_crashes, 1u);
  EXPECT_EQ(fr.stats.faults.rollbacks, 0u);
  EXPECT_GE(fr.stats.faults.degraded_recoveries, 1u);
  EXPECT_GT(fr.stats.faults.recovery_time, sim::SimTime::zero());
}

TEST(FaultRecovery, BspHostCrashRecoversAllResidentDevices) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.crash_host(1, ff.stats.total_time * 0.5);  // devices 2 and 3
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.device_crashes, 2u);
  EXPECT_GE(fr.stats.faults.degraded_recoveries, 2u);
}

TEST(FaultRecovery, BaspDropPlanNeitherDeadlocksNorFalselyTerminates) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kAsync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.seed = 11;
  plan.drop_messages(0.25, sim::SimTime::zero());
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  // No deadlock (the run finished), correct labels (no false/early
  // termination), and the Safra audit agrees the quiescence was real.
  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.dist, algo::reference::bfs(fx.g, fx.src));
  EXPECT_GT(fr.stats.faults.messages_dropped, 0u);
  EXPECT_GT(fr.stats.faults.retries, 0u);
  EXPECT_TRUE(fr.stats.faults.termination_clean);
  EXPECT_GE(fr.stats.total_time, ff.stats.total_time);
}

TEST(FaultRecovery, BaspCrashRecoversViaPeerRefeed) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kAsync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.crash_device(2, ff.stats.total_time * 0.4);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.device_crashes, 1u);
  EXPECT_GE(fr.stats.faults.degraded_recoveries, 1u);
  EXPECT_TRUE(fr.stats.faults.termination_clean);
}

// ---- checkpointability gates (compile-time contract) -------------------

static_assert(fault::CheckpointableState<algo::PageRankPullProgram::DeviceState>,
              "pagerank must be checkpointable");
static_assert(fault::CheckpointableState<algo::PprProgram::DeviceState>,
              "ppr must be checkpointable");
static_assert(fault::RehomableState<algo::BfsProgram::DeviceState>);
static_assert(fault::RehomableState<algo::CcProgram::DeviceState>);
static_assert(fault::RehomableState<algo::SsspProgram::DeviceState>);
static_assert(fault::RehomableState<algo::PageRankPullProgram::DeviceState>);
static_assert(fault::RehomableState<algo::PprProgram::DeviceState>);
// The DSU parents of pointer-jumping CC are local ids and cannot
// migrate between layouts.
static_assert(!fault::RehomableState<algo::CcPointerJumpProgram::DeviceState>);

// ---- phi-accrual failure detector --------------------------------------

TEST(PhiAccrualDetectorTest, SilentDeviceEvictedWithinBoundedIntervals) {
  const fault::HealthPolicy hp;  // defaults
  fault::PhiAccrualDetector det(1, hp);
  const sim::SimTime hb = hp.heartbeat_interval;
  sim::SimTime t;
  for (int i = 0; i < 20; ++i) {
    t = t + hb;
    det.observe(0, t);
  }
  EXPECT_LT(det.phi(0, t + hb), hp.phi_suspect);
  EXPECT_FALSE(det.should_evict(0, t + hb * 2.0));

  // The device goes silent after `t`: eviction must fire within a
  // bounded number of missed heartbeats.
  sim::SimTime now = t;
  int missed = 0;
  while (!det.should_evict(0, now) && missed < 64) {
    now = now + hb;
    ++missed;
  }
  EXPECT_TRUE(det.should_evict(0, now));
  EXPECT_LE(missed, 2 * hp.evict_grace_intervals);
}

TEST(PhiAccrualDetectorTest, StragglerIsSuspectedButNeverEvicted) {
  const fault::HealthPolicy hp;
  fault::PhiAccrualDetector det(1, hp);
  const sim::SimTime hb = hp.heartbeat_interval;
  sim::SimTime t;
  for (int i = 0; i < 20; ++i) {
    t = t + hb;
    det.observe(0, t);
  }
  // A 4x slowdown: heartbeats keep arriving, just late. Probe right
  // before each late arrival (the worst moment) — the silent-gap guard
  // must keep the straggler alive while the window adapts.
  bool suspected = false;
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(det.should_evict(0, t + hb * 3.9))
        << "straggler evicted after " << i << " slow beats";
    t = t + hb * 4.0;
    det.observe(0, t);
    suspected = suspected || det.phi(0, t + hb * 3.9) >= hp.phi_suspect ||
                det.suspected(0, t + hb * 3.9);
  }
  EXPECT_FALSE(det.should_evict(0, t + hb * 4.0));
}

// ---- master re-homing (layout rebuild) ---------------------------------

TEST(RehomeTest, ElectsLowestSurvivingProxyHolderAndKeepsIndicesStable) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const int lost = 1;
  const auto res = partition::rehome_partition(prep.dist, lost,
                                               prep.dist.part(lost), {}, {});
  ASSERT_EQ(res.dg.num_devices(), 4);
  EXPECT_EQ(res.dg.part(lost).num_local, 0u);
  EXPECT_EQ(res.dg.global_vertices(), prep.dist.global_vertices());

  // Every vertex is mastered exactly once, never on the lost device.
  std::vector<int> master_count(res.dg.global_vertices(), 0);
  for (int d = 0; d < 4; ++d) {
    const auto& lg = res.dg.part(d);
    for (graph::VertexId v = 0; v < lg.num_masters; ++v) {
      master_count[lg.l2g[v]] += 1;
    }
  }
  for (const int c : master_count) EXPECT_EQ(c, 1);

  const auto& olg = prep.dist.part(lost);
  EXPECT_EQ(res.rehomed.size() + res.orphaned.size(),
            static_cast<std::size_t>(olg.num_masters));
  EXPECT_FALSE(res.rehomed.empty());

  // Election rule: the new master of a re-homed vertex is the lowest
  // surviving device that already held a proxy of it.
  for (const graph::VertexId gv : res.rehomed) {
    int expected = -1;
    for (int d = 0; d < 4 && expected < 0; ++d) {
      if (d != lost && prep.dist.part(d).g2l.contains(gv)) expected = d;
    }
    ASSERT_GE(expected, 0);
    const auto& nlg = res.dg.part(expected);
    const auto it = nlg.g2l.find(gv);
    ASSERT_NE(it, nlg.g2l.end());
    EXPECT_TRUE(nlg.is_master(it->second))
        << "vertex " << gv << " not mastered on lowest survivor "
        << expected;
  }
}

TEST(RehomeTest, OrphanPlacementFollowsHeadroomAndRejectsOverflow) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const int lost = 1;

  // Unconstrained first, to learn the orphan set (OEC keeps vertices
  // without cut edges proxy-free, so losing a device orphans them).
  const auto free_run = partition::rehome_partition(
      prep.dist, lost, prep.dist.part(lost), {}, {});
  ASSERT_FALSE(free_run.orphaned.empty());
  EXPECT_GT(free_run.migrated_bytes, 0u);

  // Only device 3 has headroom: every orphan must land there.
  const std::vector<std::uint64_t> only3{0, 0, 0, 1ull << 40};
  const auto steered = partition::rehome_partition(
      prep.dist, lost, prep.dist.part(lost), only3, {});
  for (const graph::VertexId gv : steered.orphaned) {
    const auto& lg = steered.dg.part(3);
    const auto it = lg.g2l.find(gv);
    ASSERT_NE(it, lg.g2l.end());
    EXPECT_TRUE(lg.is_master(it->second));
  }

  // No survivor can absorb anything: descriptive rejection.
  const std::vector<std::uint64_t> none{0, 0, 0, 0};
  try {
    (void)partition::rehome_partition(prep.dist, lost, prep.dist.part(lost),
                                      none, {});
    FAIL() << "capacity overflow was not rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("absorb"), std::string::npos)
        << e.what();
  }
}

// ---- permanent device loss: degraded-mode integration ------------------

TEST(DeviceLoss, BspBfsCompletesBitIdenticalOnSurvivors) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.lose_device(1, ff.stats.total_time * 0.4);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.dist, algo::reference::bfs(fx.g, fx.src));
  EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);
  EXPECT_GT(fr.stats.faults.rehomed_masters, 0u);
  EXPECT_GT(fr.stats.faults.heartbeats_observed, 0u);
  EXPECT_GT(fr.stats.faults.detection_latency, sim::SimTime::zero());
  EXPECT_LT(fr.stats.faults.detection_latency, sim::SimTime{0.1});
  EXPECT_GT(fr.stats.faults.recovery_time, sim::SimTime::zero());
  EXPECT_GE(fr.stats.faults.faults_injected, 1u);
  EXPECT_EQ(fr.stats.faults.device_crashes, 0u);  // loss, not crash

  // Deterministic: same plan, byte-identical rerun.
  const auto fr2 = fx.run(faulty);
  EXPECT_EQ(fr2.dist, fr.dist);
  EXPECT_EQ(fr2.stats.total_time, fr.stats.total_time);
  EXPECT_EQ(fr2.stats.faults.detection_latency,
            fr.stats.faults.detection_latency);
}

TEST(DeviceLoss, BspCcAndSsspBitIdenticalAfterMidRunLoss) {
  const auto base_g = small_social();
  const auto wg = graph::add_random_weights(base_g, 1, 100, 99);
  const auto t = topo(4);
  const auto p = params();
  const auto src = graph::datasets::default_source(wg);
  const auto base = cfg(engine::ExecModel::kSync);

  {
    PreparedGraph prep(base_g, partition::Policy::HVC, 4);
    const auto ff = algo::run_cc(prep.dist, prep.sync, t, p, base);
    fault::FaultPlan plan;
    plan.lose_device(2, ff.stats.total_time * 0.5);
    auto faulty = base;
    faulty.fault_plan = &plan;
    const auto fr = algo::run_cc(prep.dist, prep.sync, t, p, faulty);
    EXPECT_EQ(fr.label, ff.label);
    EXPECT_EQ(fr.label, algo::reference::cc(base_g));
    EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);
    EXPECT_GT(fr.stats.faults.rehomed_masters, 0u);
  }
  {
    PreparedGraph prep(wg, partition::Policy::OEC, 4);
    const auto ff = algo::run_sssp(prep.dist, prep.sync, t, p, base, src);
    fault::FaultPlan plan;
    plan.lose_device(1, ff.stats.total_time * 0.4);
    auto faulty = base;
    faulty.fault_plan = &plan;
    const auto fr = algo::run_sssp(prep.dist, prep.sync, t, p, faulty, src);
    EXPECT_EQ(fr.dist, ff.dist);
    EXPECT_EQ(fr.dist, algo::reference::sssp(wg, src));
    EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);
    EXPECT_GT(fr.stats.faults.migrated_vertices +
                  fr.stats.faults.rehomed_masters,
              0u);
  }
}

TEST(DeviceLoss, BaspBfsCompletesBitIdenticalOnSurvivors) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kAsync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.lose_device(2, ff.stats.total_time * 0.4);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.dist, algo::reference::bfs(fx.g, fx.src));
  EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);
  EXPECT_GT(fr.stats.faults.rehomed_masters, 0u);
  EXPECT_GT(fr.stats.faults.detection_latency, sim::SimTime::zero());
  EXPECT_TRUE(fr.stats.faults.termination_clean);
}

TEST(DeviceLoss, TwoSequentialLossesShrinkToHalfTheDevices) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.lose_device(1, ff.stats.total_time * 0.3);
  plan.lose_device(3, ff.stats.total_time * 0.6);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.evicted_devices, 2u);
  EXPECT_GT(fr.stats.faults.rehomed_masters, 0u);
}

TEST(DeviceLoss, BreakdownReductionsExcludeEvictedDevices) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);
  // Failure-free: nothing is evicted, reductions cover every device.
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_FALSE(ff.stats.device_evicted(d));
  }

  fault::FaultPlan plan;
  plan.lose_device(1, ff.stats.total_time * 0.3);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);
  ASSERT_EQ(fr.stats.faults.evicted_devices, 1u);
  ASSERT_TRUE(fr.stats.device_evicted(1));
  EXPECT_FALSE(fr.stats.device_evicted(0));

  // The reductions must equal the survivor-only min/max: an evicted
  // device stops accumulating at the loss point, so including it would
  // understate Min Wait and min-rounds for the run that remains.
  sim::SimTime max_c;
  sim::SimTime min_w = sim::SimTime::max();
  std::uint32_t min_r = ~0u;
  std::uint32_t max_r = 0;
  for (std::size_t d = 0; d < 4; ++d) {
    if (fr.stats.device_evicted(d)) continue;
    max_c = sim::max(max_c, fr.stats.compute_time[d]);
    min_w = sim::min(min_w, fr.stats.wait_time[d]);
    min_r = std::min(min_r, fr.stats.rounds[d]);
    max_r = std::max(max_r, fr.stats.rounds[d]);
  }
  EXPECT_EQ(fr.stats.max_compute(), max_c);
  EXPECT_EQ(fr.stats.min_wait(), min_w);
  EXPECT_EQ(fr.stats.min_rounds(), min_r);
  EXPECT_EQ(fr.stats.max_rounds(), max_r);

  // The lost device froze early: its local round count must not drag
  // min_rounds down (it stopped while survivors kept going).
  EXPECT_GE(fr.stats.min_rounds(), fr.stats.rounds[1]);
}

TEST(DeviceLoss, CoexistingStragglerIsNeverEvicted) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  // Device 2 is merely slow for the entire run; device 1 actually dies.
  plan.straggle(2, sim::SimTime::zero(), sim::SimTime::zero(), 5.0);
  plan.lose_device(1, ff.stats.total_time * 0.5);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  // Only the dead device was evicted — the straggler survived despite
  // its heartbeats arriving 5x late.
  EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);
  EXPECT_GT(fr.stats.faults.straggler_delay, sim::SimTime::zero());
}

TEST(DeviceLoss, PartitionStoreRereadWorksAndCorruptionIsDetected) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);
  const auto dir = fresh_dir("sg_loss_store");
  partition::save_partition(fx.prep.dist, dir);

  fault::FaultPlan plan;
  plan.lose_device(1, ff.stats.total_time * 0.4);
  auto faulty = base;
  faulty.fault_plan = &plan;
  faulty.partition_store_dir = dir;
  const auto fr = fx.run(faulty);
  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);

  // Elastic redistribution must refuse a corrupted part file rather
  // than rebuilding from bad bytes.
  flip_byte(dir / "part_1.sgp", 700);
  EXPECT_THROW((void)fx.run(faulty), std::runtime_error);
}

TEST(DeviceLoss, RequiresASurvivorToRehomeOnto) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::OEC, 1);
  fault::FaultPlan plan;
  plan.lose_device(0, sim::SimTime{1.0});
  auto c = cfg(engine::ExecModel::kSync);
  c.fault_plan = &plan;
  const sim::Topology t1 = topo(1);
  const auto p = params();
  EXPECT_THROW((void)algo::run_bfs(prep.dist, prep.sync, t1, p, c, 0),
               std::invalid_argument);
}

// ---- accumulator programs: exact recovery via checkpoints --------------

TEST(CheckpointRecovery, PagerankMidRunCrashRollbackBitIdentical) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = algo::run_pagerank(prep.dist, prep.sync, t, p, base);

  fault::FaultPlan plan;
  plan.crash_device(1, ff.stats.total_time * 0.5);
  auto faulty = base;
  faulty.fault_plan = &plan;
  faulty.checkpoint.interval_rounds = 1;
  const auto fr = algo::run_pagerank(prep.dist, prep.sync, t, p, faulty);

  EXPECT_EQ(fr.rank, ff.rank);  // bit-identical floats
  EXPECT_GE(fr.stats.faults.rollbacks, 1u);
  EXPECT_GT(fr.stats.faults.checkpoints_taken, 0u);
}

TEST(CheckpointRecovery, PprMidRunCrashRollbackBitIdentical) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto src = graph::datasets::default_source(g);
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = algo::run_ppr(prep.dist, prep.sync, t, p, base, src);

  fault::FaultPlan plan;
  plan.crash_device(2, ff.stats.total_time * 0.5);
  auto faulty = base;
  faulty.fault_plan = &plan;
  faulty.checkpoint.interval_rounds = 1;
  const auto fr = algo::run_ppr(prep.dist, prep.sync, t, p, faulty, src);

  EXPECT_EQ(fr.mass, ff.mass);
  EXPECT_GE(fr.stats.faults.rollbacks, 1u);
}

TEST(DeviceLoss, BspPagerankLossAfterConvergenceBitIdenticalViaCheckpoint) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  auto base = cfg(engine::ExecModel::kSync);
  base.checkpoint.interval_rounds = 1;
  const auto ff = algo::run_pagerank(prep.dist, prep.sync, t, p, base);

  // The device dies after the run has converged but before the idle
  // executor may exit (a pending loss keeps it alive): the last
  // checkpoint is the converged cut, the lost master copies are adopted
  // verbatim, and the gathered ranks are bit-identical.
  fault::FaultPlan plan;
  plan.lose_device(1, ff.stats.total_time * 2.0);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = algo::run_pagerank(prep.dist, prep.sync, t, p, faulty);

  EXPECT_EQ(fr.rank, ff.rank);
  EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);
  EXPECT_GT(fr.stats.faults.rehomed_masters, 0u);
  EXPECT_GE(fr.stats.faults.rollbacks, 1u);
  EXPECT_GT(fr.stats.total_time, ff.stats.total_time);
}

TEST(DeviceLoss, BaspPagerankLossAfterQuiescenceBitIdentical) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  auto base = cfg(engine::ExecModel::kAsync);
  base.checkpoint.interval_rounds = 1;
  const auto ff = algo::run_pagerank(prep.dist, prep.sync, t, p, base);
  EXPECT_GT(ff.stats.faults.checkpoints_taken, 0u);  // quiescent cut

  fault::FaultPlan plan;
  plan.lose_device(1, ff.stats.total_time * 2.0);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = algo::run_pagerank(prep.dist, prep.sync, t, p, faulty);

  EXPECT_EQ(fr.rank, ff.rank);
  EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);
  EXPECT_TRUE(fr.stats.faults.termination_clean);
}

// ---- checkpoint gating (S2) --------------------------------------------

/// Minimal program with no archive(): checkpoint requests must be
/// rejected up front with an error naming the program.
class NoArchiveProgram {
 public:
  using ReduceValue = std::uint32_t;
  using ReduceOp = comm::MinOp<std::uint32_t>;
  using BcastValue = std::uint32_t;
  using BcastOp = comm::MinOp<std::uint32_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 0;

  struct DeviceState {
    std::vector<std::uint32_t> val;
  };

  [[nodiscard]] const char* name() const { return "no-archive"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }
  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx&) const {
    st.val.assign(lg.num_local, 0);
  }
  bool compute_round(const partition::LocalGraph&, DeviceState&,
                     std::span<const graph::VertexId>,
                     engine::RoundCtx&) const {
    return false;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.val;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.val;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.val;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.val;
  }
  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId, engine::UpdateKind,
                 engine::RoundCtx&) const {}
};

static_assert(engine::VertexProgram<NoArchiveProgram>);
static_assert(!fault::CheckpointableState<NoArchiveProgram::DeviceState>);

TEST(CheckpointGate, NonCheckpointableProgramIsRejectedDescriptively) {
  const auto g = small_social();
  PreparedGraph prep(g, partition::Policy::OEC, 2);
  const auto t = topo(2);
  const auto p = params();
  auto c = cfg(engine::ExecModel::kAsync);
  c.checkpoint.interval_rounds = 2;
  const NoArchiveProgram prog;
  try {
    (void)engine::run(prep.dist, prep.sync, t, p, c, prog);
    FAIL() << "checkpoint request on a non-checkpointable program was "
              "not rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-archive"), std::string::npos) << what;
    EXPECT_NE(what.find("cannot be checkpointed"), std::string::npos)
        << what;
  }
}

TEST(CheckpointGate, BaspTakesCheckpointsAtQuiescencePoints) {
  BfsFixture fx;
  auto c = cfg(engine::ExecModel::kAsync);
  c.checkpoint.interval_rounds = 1;
  const auto r = fx.run(c);
  EXPECT_GT(r.stats.faults.checkpoints_taken, 0u);
  EXPECT_EQ(r.dist, algo::reference::bfs(fx.g, fx.src));
}

// ---- network partitions (epoch-fenced sync protocol) -------------------

TEST(NetPartition, HealedPartitionDeliversHeldTrafficBitExact) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  // Sever host 1 from host 0 for a fifth of the run, starting mid-run.
  // The grace window is stretched so the detector can never evict:
  // cross-partition traffic is held at the edge and delivered at heal,
  // and the run must finish bit-identical to the fault-free one.
  fault::FaultPlan plan;
  plan.partition_hosts(0b10, ff.stats.total_time * 0.3,
                       ff.stats.total_time * 0.2);
  auto faulty = base;
  faulty.fault_plan = &plan;
  faulty.health.evict_grace_intervals = 100000;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.dist, algo::reference::bfs(fx.g, fx.src));
  EXPECT_EQ(fr.stats.faults.evicted_devices, 0u);
  EXPECT_EQ(fr.stats.faults.partition_evictions, 0u);
  EXPECT_EQ(fr.stats.faults.fence_rejects, 0u);
  EXPECT_GT(fr.stats.faults.partition_deferred, 0u);
  EXPECT_GT(fr.stats.total_time, ff.stats.total_time);

  // Same plan => byte-identical rerun.
  const auto fr2 = fx.run(faulty);
  EXPECT_EQ(fr2.dist, fr.dist);
  EXPECT_EQ(fr2.stats.total_time, fr.stats.total_time);
  EXPECT_EQ(fr2.stats.faults.partition_deferred,
            fr.stats.faults.partition_deferred);
}

TEST(NetPartition, HealedPartitionBaspCleanTerminationBitExact) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kAsync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.partition_hosts(0b10, ff.stats.total_time * 0.3,
                       ff.stats.total_time * 0.2);
  auto faulty = base;
  faulty.fault_plan = &plan;
  faulty.health.evict_grace_intervals = 100000;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.evicted_devices, 0u);
  EXPECT_GT(fr.stats.faults.partition_deferred, 0u);
  EXPECT_TRUE(fr.stats.faults.termination_clean);
}

TEST(NetPartition, OutlastingPartitionEvictsMinoritySideOnly) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  // A partition that far outlasts φ-accrual detection: host 1 (devices
  // 2, 3 — the minority of mask 0b10, tie broken toward side A) is
  // fenced and evicted; host 0 re-homes its masters and completes
  // bit-exact. No split-brain: nothing from the fenced side lands.
  fault::FaultPlan plan;
  plan.partition_hosts(0b10, ff.stats.total_time * 0.3, sim::SimTime{1.0});
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.dist, algo::reference::bfs(fx.g, fx.src));
  EXPECT_EQ(fr.stats.faults.evicted_devices, 2u);
  EXPECT_EQ(fr.stats.faults.partition_evictions, 2u);
  EXPECT_FALSE(fr.stats.device_evicted(0));
  EXPECT_FALSE(fr.stats.device_evicted(1));
  EXPECT_TRUE(fr.stats.device_evicted(2));
  EXPECT_TRUE(fr.stats.device_evicted(3));
  EXPECT_GT(fr.stats.faults.rehomed_masters, 0u);
  EXPECT_GT(fr.stats.faults.detection_latency, sim::SimTime::zero());

  // Deterministic across reruns.
  const auto fr2 = fx.run(faulty);
  EXPECT_EQ(fr2.dist, fr.dist);
  EXPECT_EQ(fr2.stats.total_time, fr.stats.total_time);
}

TEST(NetPartition, OutlastingPartitionBaspEvictsAndTerminatesCleanly) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kAsync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.partition_hosts(0b10, ff.stats.total_time * 0.3, sim::SimTime{1.0});
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.evicted_devices, 2u);
  EXPECT_EQ(fr.stats.faults.partition_evictions, 2u);
  EXPECT_FALSE(fr.stats.device_evicted(0));
  EXPECT_TRUE(fr.stats.device_evicted(2));
  EXPECT_TRUE(fr.stats.device_evicted(3));
  EXPECT_TRUE(fr.stats.faults.termination_clean);
}

// ---- FaultPlan::validate -----------------------------------------------

TEST(FaultPlanValidate, WellFormedPlanPassesAndEngineRunsIt) {
  fault::FaultPlan plan;
  plan.crash_device(1, sim::SimTime{0.001});
  plan.drop_messages(0.2, sim::SimTime::zero());
  plan.partition_hosts(0b01, sim::SimTime{0.002}, sim::SimTime{0.0005});
  EXPECT_EQ(plan.validate(4, 2), "");
  EXPECT_NO_THROW(plan.validate_or_throw(4, 2));
}

TEST(FaultPlanValidate, RejectsTargetsOutsideTheCluster) {
  fault::FaultPlan plan;
  plan.crash_device(7, sim::SimTime::zero());
  const std::string err = plan.validate(4, 2);
  // The prefix echoes the offending target so the reader never has to
  // cross-reference the plan by index.
  EXPECT_NE(err.find("FaultPlan event 0 (device-crash device=7 at t="),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("device 7 does not exist (cluster has 4 devices)"),
            std::string::npos)
      << err;

  fault::FaultPlan hplan;
  hplan.crash_host(5, sim::SimTime::zero());
  EXPECT_NE(hplan.validate(4, 2).find(
                "host 5 does not exist (cluster has 2 hosts)"),
            std::string::npos);
}

TEST(FaultPlanValidate, RejectsInvertedWindowsAndBadSeverities) {
  fault::FaultPlan inverted;
  inverted.drop_messages(0.5, sim::SimTime{0.001}, sim::SimTime{-0.001});
  EXPECT_NE(inverted.validate(4, 2).find("inverted window"),
            std::string::npos);

  fault::FaultPlan prob;
  prob.corrupt_messages(1.5, sim::SimTime::zero());
  EXPECT_NE(prob.validate(4, 2).find("must be in [0, 1]"),
            std::string::npos);

  fault::FaultPlan slow;
  slow.straggle(0, sim::SimTime::zero(), sim::SimTime::zero(), 0.5);
  EXPECT_NE(slow.validate(4, 2).find("must be >= 1"), std::string::npos);
}

TEST(FaultPlanValidate, RejectsMalformedPartitions) {
  fault::FaultPlan open_ended;
  open_ended.partition_hosts(0b01, sim::SimTime::zero(),
                             sim::SimTime::zero());
  EXPECT_NE(open_ended.validate(4, 2).find("positive heal window"),
            std::string::npos);

  fault::FaultPlan whole;
  whole.partition_hosts(0b11, sim::SimTime::zero(), sim::SimTime{0.001});
  EXPECT_NE(whole.validate(4, 2).find(
                "must split the hosts into two non-empty sides"),
            std::string::npos);

  fault::FaultPlan beyond;
  beyond.partition_hosts(0b100, sim::SimTime::zero(), sim::SimTime{0.001});
  EXPECT_NE(beyond.validate(4, 2).find("names hosts beyond the cluster's"),
            std::string::npos);
}

TEST(FaultPlanValidate, RejectsEventsContradictingAPermanentLoss) {
  fault::FaultPlan plan;
  plan.lose_device(1, sim::SimTime{0.001});
  plan.straggle(1, sim::SimTime{0.002}, sim::SimTime::zero(), 2.0);
  const std::string err = plan.validate(4, 2);
  EXPECT_NE(err.find("permanently lost at t="), std::string::npos) << err;
  EXPECT_NE(err.find("cannot be targeted at or after that"),
            std::string::npos)
      << err;
}

TEST(FaultPlanValidate, RejectsOverlappingIdenticalWindows) {
  fault::FaultPlan plan;
  plan.drop_messages(0.3, sim::SimTime::zero(), sim::SimTime{0.002});
  plan.drop_messages(0.3, sim::SimTime{0.001}, sim::SimTime{0.002});
  EXPECT_NE(plan.validate(4, 2).find("overlaps an identical window"),
            std::string::npos);
  EXPECT_THROW(plan.validate_or_throw(4, 2), std::invalid_argument);
}

TEST(FaultPlanValidate, EngineRejectsABadPlanAtStart) {
  BfsFixture fx;
  fault::FaultPlan plan;
  plan.crash_device(99, sim::SimTime::zero());
  auto faulty = cfg(engine::ExecModel::kSync);
  faulty.fault_plan = &plan;
  EXPECT_THROW(fx.run(faulty), std::invalid_argument);
}

// ---- chaos plan generation / JSON / shrinking --------------------------

TEST(Chaos, RandomPlansAreValidAcrossSeedsAndDeterministic) {
  fault::ChaosSpec spec;  // 4 devices, 2 hosts
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const fault::FaultPlan plan = fault::random_plan(seed, spec);
    EXPECT_EQ(plan.seed, seed);
    EXPECT_EQ(plan.validate(spec.num_devices, spec.num_hosts), "");
    EXPECT_GE(static_cast<int>(plan.events.size()), spec.min_events);
    EXPECT_LE(static_cast<int>(plan.events.size()), spec.max_events);
    const fault::FaultPlan again = fault::random_plan(seed, spec);
    ASSERT_EQ(again.events.size(), plan.events.size());
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      EXPECT_EQ(again.events[i].kind, plan.events[i].kind);
      EXPECT_EQ(again.events[i].at, plan.events[i].at);
      EXPECT_EQ(again.events[i].severity, plan.events[i].severity);
    }
  }
}

TEST(Chaos, GeneratedPartitionsAlwaysKeepHost0OnTheMajoritySide) {
  // The generator guarantees survivors exist for re-homing even when
  // several partition windows outlast detection: host 0 is never on a
  // minority side (fewer hosts; tie toward side A).
  fault::ChaosSpec spec;
  spec.num_devices = 8;
  spec.num_hosts = 4;
  spec.max_events = 8;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const fault::FaultPlan plan = fault::random_plan(seed, spec);
    for (const fault::FaultEvent& e : plan.events) {
      if (e.kind != fault::FaultKind::kNetPartition) continue;
      const std::uint64_t all = (1ULL << spec.num_hosts) - 1;
      const int pa = std::popcount(e.host_mask);
      const std::uint64_t minority = pa <= spec.num_hosts - pa
                                         ? e.host_mask
                                         : (~e.host_mask & all);
      EXPECT_EQ(minority & 1ULL, 0u)
          << "seed " << seed << " mask " << e.host_mask;
    }
  }
}

TEST(Chaos, PlanJsonRoundTripIsExact) {
  fault::ChaosSpec spec;
  spec.allow_loss = true;
  spec.max_events = 8;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const fault::FaultPlan plan = fault::random_plan(seed, spec);
    const fault::FaultPlan back = fault::parse_plan(fault::plan_to_json(plan));
    EXPECT_EQ(back.seed, plan.seed);
    ASSERT_EQ(back.events.size(), plan.events.size());
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      const fault::FaultEvent& a = plan.events[i];
      const fault::FaultEvent& b = back.events[i];
      EXPECT_EQ(b.kind, a.kind);
      EXPECT_EQ(b.at, a.at);  // shortest-round-trip doubles are exact
      EXPECT_EQ(b.duration, a.duration);
      EXPECT_EQ(b.device, a.device);
      EXPECT_EQ(b.host, a.host);
      EXPECT_EQ(b.peer_host, a.peer_host);
      EXPECT_EQ(b.severity, a.severity);
      EXPECT_EQ(b.host_mask, a.host_mask);
    }
  }
}

TEST(Chaos, ParseRejectsMalformedPlansDescriptively) {
  EXPECT_THROW((void)fault::parse_plan("[]"), std::runtime_error);
  EXPECT_THROW((void)fault::parse_plan("{\"events\":[]}"),
               std::runtime_error);  // missing seed
  EXPECT_THROW((void)fault::parse_plan("{\"seed\":1}"),
               std::runtime_error);  // missing events
  try {
    (void)fault::parse_plan(
        "{\"seed\":1,\"events\":[{\"kind\":\"gremlin\",\"at_s\":0}]}");
    FAIL() << "unknown kind must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown kind \"gremlin\""),
              std::string::npos);
  }
}

TEST(Chaos, ShrinkDropsIrrelevantEventsAndNarrowsWindows) {
  // Plan with one "culprit" (the corrupt window) buried among noise;
  // the predicate fails iff a corrupt event is present. Shrinking must
  // drop everything else and halve the culprit's window to the floor.
  fault::FaultPlan plan;
  plan.drop_messages(0.1, sim::SimTime::zero(), sim::SimTime{0.001});
  plan.straggle(1, sim::SimTime{0.0002}, sim::SimTime{0.0004}, 2.0);
  plan.corrupt_messages(0.3, sim::SimTime{0.0001}, sim::SimTime{0.0008});
  plan.duplicate_messages(0.2, sim::SimTime{0.0003}, sim::SimTime{0.0002});
  plan.reorder_messages(0.2, sim::SimTime{0.0004}, sim::SimTime{0.0002});

  fault::ShrinkStats st;
  const fault::FaultPlan min = fault::shrink_plan(
      plan,
      [](const fault::FaultPlan& cand) {
        for (const fault::FaultEvent& e : cand.events) {
          if (e.kind == fault::FaultKind::kMsgCorrupt) return true;
        }
        return false;
      },
      &st);

  ASSERT_EQ(min.events.size(), 1u);
  EXPECT_EQ(min.events[0].kind, fault::FaultKind::kMsgCorrupt);
  EXPECT_LE(min.events[0].duration, sim::SimTime::micros(1.0));
  EXPECT_EQ(st.removed_events, 4);
  EXPECT_GT(st.narrowed_windows, 0);
  EXPECT_GT(st.probes, st.removed_events);
}

TEST(FaultRecovery, StragglerPlanIsDeterministicAcrossReruns) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  fault::FaultPlan plan;
  plan.straggle(1, sim::SimTime::zero(), sim::SimTime::zero(), 3.0);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto a = fx.run(faulty);
  const auto b = fx.run(faulty);

  EXPECT_EQ(a.dist, ff.dist);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.total_time, b.stats.total_time);
  EXPECT_GT(a.stats.faults.straggler_delay, sim::SimTime::zero());
  EXPECT_GT(a.stats.total_time, ff.stats.total_time);
}

// ---- gray failures: degradation faults, monitor, online migration ------

/// Monitor tuning scaled to a micro-benchmark, the same way sg_chaos
/// --gray (and an operator) would: heartbeat cadence derived from the
/// fault-free makespan, fast-converging stretch estimate, act on the
/// first sustained crossing.
engine::EngineConfig gray_cfg(engine::ExecModel model, sim::SimTime oracle,
                              fault::MitigationMode mode) {
  auto c = cfg(model);
  c.mitigation.mode = mode;
  c.mitigation.sustain_rounds = 1;
  c.mitigation.stretch_alpha = 0.4;
  c.health.heartbeat_interval = oracle * (1.0 / 50.0);
  return c;
}

/// A degrade window that covers most of the run at a severity no
/// barrier can miss — migration should both trigger and pay off.
fault::FaultPlan sustained_degrade(int device, sim::SimTime oracle) {
  fault::FaultPlan plan;
  plan.degrade_device(device, oracle * 0.15, oracle * 0.7, 6.0);
  return plan;
}

TEST(GrayFault, RampedDegradeShapesSlowdownDeterministically) {
  const auto t = topo(4);
  fault::FaultPlan plan;
  plan.degrade_device(1, sim::SimTime{1.0}, sim::SimTime{1.0}, 5.0,
                      sim::SimTime{0.2}, sim::SimTime{0.2});
  const fault::FaultInjector inj(&plan, &t);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{0.999}), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{1.1}), 3.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{1.5}), 5.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{1.9}), 3.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(1, sim::SimTime{2.001}), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_slowdown(0, sim::SimTime{1.5}), 1.0);

  // A step event (no ramps) keeps the legacy all-or-nothing shape.
  fault::FaultPlan step;
  step.degrade_device(1, sim::SimTime{1.0}, sim::SimTime{1.0}, 5.0);
  const fault::FaultInjector sinj(&step, &t);
  EXPECT_DOUBLE_EQ(sinj.compute_slowdown(1, sim::SimTime{1.001}), 5.0);
  EXPECT_DOUBLE_EQ(sinj.compute_slowdown(1, sim::SimTime{1.999}), 5.0);
}

TEST(GrayFault, ValidateRejectsRampsExceedingTheWindow) {
  fault::FaultPlan plan;
  plan.degrade_device(1, sim::SimTime{1.0}, sim::SimTime{1.0}, 5.0,
                      sim::SimTime{0.7}, sim::SimTime{0.7});
  EXPECT_NE(plan.validate(4, 2).find("ramps exceed the window"),
            std::string::npos);
}

TEST(GrayFault, RampedDegradeRunIsDeterministicAndSlowerThanStep) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);
  const auto T = ff.stats.total_time;

  fault::FaultPlan ramped;
  ramped.degrade_device(1, T * 0.1, T * 0.6, 5.0, T * 0.2, T * 0.2);
  auto rcfg = base;
  rcfg.fault_plan = &ramped;
  const auto r1 = fx.run(rcfg);
  const auto r2 = fx.run(rcfg);
  EXPECT_EQ(r1.dist, ff.dist);
  EXPECT_EQ(r1.dist, r2.dist);
  EXPECT_EQ(r1.stats.total_time, r2.stats.total_time);
  EXPECT_GT(r1.stats.faults.degrade_delay, sim::SimTime::zero());

  // Same window at full severity throughout: at least as much delay.
  fault::FaultPlan step;
  step.degrade_device(1, T * 0.1, T * 0.6, 5.0);
  auto scfg = base;
  scfg.fault_plan = &step;
  const auto sr = fx.run(scfg);
  EXPECT_EQ(sr.dist, ff.dist);
  EXPECT_GE(sr.stats.faults.degrade_delay, r1.stats.faults.degrade_delay);
}

TEST(GrayFault, ObserveOnlyAlertsButNeverActs) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);

  auto plan = sustained_degrade(1, ff.stats.total_time);
  auto observe = gray_cfg(engine::ExecModel::kSync, ff.stats.total_time,
                          fault::MitigationMode::kObserve);
  observe.fault_plan = &plan;
  const auto a = fx.run(observe);
  const auto b = fx.run(observe);

  EXPECT_EQ(a.dist, ff.dist);
  EXPECT_GT(a.stats.total_time, ff.stats.total_time);
  EXPECT_GE(a.stats.faults.gray_alerts, 1u);
  EXPECT_EQ(a.stats.faults.gray_migrations, 0u);
  EXPECT_EQ(a.stats.faults.gray_evictions, 0u);
  EXPECT_EQ(a.stats.faults.rehomed_masters, 0u);
  // Per-device ledger scored the degraded device and nobody else moved.
  bool scored = false;
  for (const auto& d : a.stats.faults.degrade) {
    if (d.device == 1) scored = d.peak_score > 0.0;
    EXPECT_EQ(d.migrations_off, 0u);
  }
  EXPECT_TRUE(scored);
  // Deterministic: byte-identical rerun.
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.total_time, b.stats.total_time);
  EXPECT_EQ(a.stats.faults.gray_alerts, b.stats.faults.gray_alerts);
}

TEST(GrayFault, MigrationKeepsBfsAndCcBitExactAndRecoversMakespan) {
  const auto g = small_social();
  const auto t = topo(4);
  const auto p = params();
  const auto base = cfg(engine::ExecModel::kSync);
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::OEC, 4);

  {
    const auto ff = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);
    auto plan = sustained_degrade(1, ff.stats.total_time);
    auto observe = gray_cfg(engine::ExecModel::kSync, ff.stats.total_time,
                            fault::MitigationMode::kObserve);
    observe.fault_plan = &plan;
    const auto ob = algo::run_bfs(prep.dist, prep.sync, t, p, observe, src);
    auto migrate = observe;
    migrate.mitigation.mode = fault::MitigationMode::kMigrate;
    const auto mi = algo::run_bfs(prep.dist, prep.sync, t, p, migrate, src);
    const auto mi2 = algo::run_bfs(prep.dist, prep.sync, t, p, migrate, src);

    EXPECT_EQ(mi.dist, ff.dist);  // bit-exact through migration
    EXPECT_GE(mi.stats.faults.gray_migrations, 1u);
    EXPECT_GT(mi.stats.faults.gray_migrated_masters, 0u);
    EXPECT_GT(mi.stats.faults.mitigation_time, sim::SimTime::zero());
    EXPECT_LT(mi.stats.total_time, ob.stats.total_time);  // makespan recovered
    EXPECT_EQ(mi.dist, mi2.dist);
    EXPECT_EQ(mi.stats.total_time, mi2.stats.total_time);
  }
  {
    const auto ff = algo::run_cc(prep.dist, prep.sync, t, p, base);
    auto plan = sustained_degrade(1, ff.stats.total_time);
    auto migrate = gray_cfg(engine::ExecModel::kSync, ff.stats.total_time,
                            fault::MitigationMode::kMigrate);
    migrate.fault_plan = &plan;
    const auto mi = algo::run_cc(prep.dist, prep.sync, t, p, migrate);
    EXPECT_EQ(mi.label, ff.label);
    EXPECT_GE(mi.stats.faults.gray_migrations, 1u);
  }
}

TEST(GrayFault, MigrationKeepsPagerankInvariants) {
  const auto g = small_social();
  const auto t = topo(4);
  const auto p = params();
  const auto base = cfg(engine::ExecModel::kSync);
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto ff = algo::run_pagerank(prep.dist, prep.sync, t, p, base);

  auto plan = sustained_degrade(1, ff.stats.total_time);
  auto migrate = gray_cfg(engine::ExecModel::kSync, ff.stats.total_time,
                          fault::MitigationMode::kMigrate);
  migrate.fault_plan = &plan;
  migrate.checkpoint.interval_rounds = 1;
  const auto mi = algo::run_pagerank(prep.dist, prep.sync, t, p, migrate);
  const auto mi2 = algo::run_pagerank(prep.dist, prep.sync, t, p, migrate);

  // A re-homed accumulator converges to a validly different fixed
  // point, so migrated pagerank is held to invariants (the sg_chaos
  // gray oracle's contract), plus exact determinism across reruns.
  double mass = 0.0, ff_mass = 0.0;
  for (std::size_t v = 0; v < mi.rank.size(); ++v) {
    ASSERT_TRUE(std::isfinite(mi.rank[v]));
    ASSERT_GE(mi.rank[v], 0.15 - 1e-3);
    mass += mi.rank[v];
    ff_mass += ff.rank[v];
  }
  EXPECT_LT(std::abs(mass - ff_mass), 0.25 * ff_mass);
  EXPECT_EQ(mi.rank, mi2.rank);
  EXPECT_EQ(mi.stats.total_time, mi2.stats.total_time);
}

TEST(GrayFault, DegradeThenLoseDeviceStaysBitIdentical) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);
  const auto T = ff.stats.total_time;

  // The same device first runs slow, then goes silent for good: the
  // degradation path must not confuse the φ-accrual eviction path.
  fault::FaultPlan plan;
  plan.degrade_device(1, T * 0.1, T * 0.3, 5.0);
  plan.lose_device(1, T * 0.6);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);
  const auto fr2 = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_EQ(fr.stats.faults.evicted_devices, 1u);
  EXPECT_GT(fr.stats.faults.degrade_delay, sim::SimTime::zero());
  EXPECT_EQ(fr.dist, fr2.dist);
  EXPECT_EQ(fr.stats.total_time, fr2.stats.total_time);
}

TEST(GrayFault, MemoryPressureSpillsAndLedgersDeterministically) {
  // Tight device memory (capacity = 16 GiB / scale): the resident
  // working set must occupy a real fraction of capacity, or a 95%
  // squatter fits in headroom and nothing ever spills.
  BfsFixture fx;
  fx.t = sim::Topology::bridges(4, 100000.0);
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);
  const auto T = ff.stats.total_time;

  fault::FaultPlan plan;
  plan.pressure_memory(1, T * 0.1, T * 0.7, 0.95);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);
  const auto fr2 = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_GT(fr.stats.faults.spill_bytes, 0u);
  EXPECT_GT(fr.stats.faults.spill_stall, sim::SimTime::zero());
  EXPECT_GT(fr.stats.total_time, ff.stats.total_time);
  bool ledgered = false;
  for (const auto& d : fr.stats.faults.degrade) {
    if (d.device != 1) continue;
    ledgered = true;
    EXPECT_GT(d.pressure_peak_bytes, 0u);
    EXPECT_GT(d.spill_bytes, 0u);
  }
  EXPECT_TRUE(ledgered);
  EXPECT_EQ(fr.stats.total_time, fr2.stats.total_time);
  EXPECT_EQ(fr.stats.faults.spill_bytes, fr2.stats.faults.spill_bytes);
}

TEST(GrayFault, LinkDegradeDeratesBandwidthAndLatency) {
  BfsFixture fx;
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = fx.run(base);
  const auto T = ff.stats.total_time;

  fault::FaultPlan plan;
  plan.degrade_link(0, 1, T * 0.1, T * 0.8, 4.0, 3.0);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = fx.run(faulty);
  const auto fr2 = fx.run(faulty);

  EXPECT_EQ(fr.dist, ff.dist);
  EXPECT_GT(fr.stats.total_time, ff.stats.total_time);
  EXPECT_EQ(fr.stats.total_time, fr2.stats.total_time);
}

}  // namespace
}  // namespace sg
