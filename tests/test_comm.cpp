// Communication-substrate unit tests: bitsets, reduction ops, memoized
// sync structures, the wire-size model, and functional reduce/broadcast
// in both AS and UO modes.
#include <gtest/gtest.h>

#include "comm/bitset.hpp"
#include "comm/field_sync.hpp"
#include "comm/reduction.hpp"
#include "comm/sync_structure.hpp"
#include "graph/generators.hpp"
#include "partition/dist_graph.hpp"

namespace sg::comm {
namespace {

using graph::VertexId;
using partition::DistGraph;
using partition::partition_graph;
using partition::Policy;

// ---- Bitset -----------------------------------------------------------------

TEST(BitsetT, SetTestResetClear) {
  Bitset b(130);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
  b.clear();
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.count(), 0u);
}

TEST(BitsetT, WireBytesRoundsUp) {
  EXPECT_EQ(Bitset(8).wire_bytes(), 1u);
  EXPECT_EQ(Bitset(9).wire_bytes(), 2u);
  EXPECT_EQ(Bitset(64).wire_bytes(), 8u);
}

// ---- reduction ops -----------------------------------------------------------

TEST(ReduceOps, MinCombine) {
  std::uint32_t x = 10;
  EXPECT_TRUE(MinOp<std::uint32_t>::combine(x, 5));
  EXPECT_EQ(x, 5u);
  EXPECT_FALSE(MinOp<std::uint32_t>::combine(x, 7));
  EXPECT_EQ(x, 5u);
  EXPECT_FALSE(MinOp<std::uint32_t>::reset_after_extract);
}

TEST(ReduceOps, AddCombineAndReset) {
  float x = 1.0f;
  EXPECT_TRUE(AddOp<float>::combine(x, 2.5f));
  EXPECT_FLOAT_EQ(x, 3.5f);
  EXPECT_FALSE(AddOp<float>::combine(x, 0.0f));
  EXPECT_TRUE(AddOp<float>::reset_after_extract);
  EXPECT_FLOAT_EQ(AddOp<float>::identity(), 0.0f);
}

TEST(ReduceOps, MaxCombine) {
  float x = 1.0f;
  EXPECT_FALSE(MaxOp<float>::combine(x, 0.5f));
  EXPECT_TRUE(MaxOp<float>::combine(x, 2.0f));
  EXPECT_FLOAT_EQ(x, 2.0f);
}

TEST(ReduceOps, AssignCombine) {
  int x = 3;
  EXPECT_FALSE(AssignOp<int>::combine(x, 3));
  EXPECT_TRUE(AssignOp<int>::combine(x, 4));
  EXPECT_EQ(x, 4);
}

// ---- wire size model ----------------------------------------------------------

TEST(WireBytes, AsShipsWholeList) {
  EXPECT_EQ(wire_bytes(100, 100, 4, SyncMode::kAS), 16u + 400u);
  // AS size is independent of how many entries actually changed.
  EXPECT_EQ(wire_bytes(100, 3, 4, SyncMode::kAS), 16u + 400u);
}

TEST(WireBytes, UoShipsChangedPlusCheaperIndex) {
  // Few updates: explicit 4-byte indices win over a 100-bit bitset? No:
  // bitset is 13 bytes, 3 indices are 12 bytes -> indices.
  EXPECT_EQ(wire_bytes(100, 3, 4, SyncMode::kUO), 16u + 12u + 12u);
  // Many updates: the bitset (13 bytes) is cheaper than 50 indices.
  EXPECT_EQ(wire_bytes(100, 50, 4, SyncMode::kUO), 16u + 200u + 13u);
}

TEST(WireBytes, UoEmptyUpdateIsHeaderOnly) {
  EXPECT_EQ(wire_bytes(100, 0, 4, SyncMode::kUO), 16u);
}

TEST(WireBytes, EmptyListIsFree) {
  EXPECT_EQ(wire_bytes(0, 0, 4, SyncMode::kAS), 0u);
  EXPECT_EQ(wire_bytes(0, 0, 4, SyncMode::kUO), 0u);
}

// ---- SyncStructure --------------------------------------------------------------

class SyncStructureTest : public testing::Test {
 protected:
  void SetUp() override {
    graph::SyntheticSpec s;
    s.vertices = 800;
    s.edges = 8000;
    s.zipf_out = 0.7;
    s.zipf_in = 0.8;
    s.seed = 13;
    g_ = graph::synthetic(s);
  }
  graph::Csr g_;
};

TEST_F(SyncStructureTest, ListsPairMirrorsWithTheirMasters) {
  const auto dg = partition_graph(g_, {.policy = Policy::CVC,
                                       .num_devices = 8});
  const SyncStructure sync(dg);
  for (int d = 0; d < 8; ++d) {
    for (int o = 0; o < 8; ++o) {
      const auto& list = sync.list(d, o, ProxyFilter::kAll);
      for (std::uint32_t i = 0; i < list.size(); ++i) {
        const VertexId gid = dg.part(d).l2g[list.mirror_local[i]];
        EXPECT_EQ(dg.master_of(gid), o);
        EXPECT_EQ(dg.part(o).l2g[list.master_local[i]], gid);
        EXPECT_FALSE(dg.part(d).is_master(list.mirror_local[i]));
        EXPECT_TRUE(dg.part(o).is_master(list.master_local[i]));
      }
    }
  }
}

TEST_F(SyncStructureTest, AllListCoversEveryMirror) {
  const auto dg = partition_graph(g_, {.policy = Policy::HVC,
                                       .num_devices = 4});
  const SyncStructure sync(dg);
  for (int d = 0; d < 4; ++d) {
    std::uint64_t listed = 0;
    for (int o = 0; o < 4; ++o) {
      listed += sync.list(d, o, ProxyFilter::kAll).size();
    }
    EXPECT_EQ(listed, dg.part(d).num_mirrors());
  }
}

TEST_F(SyncStructureTest, FiltersPartitionTheMirrors) {
  const auto dg = partition_graph(g_, {.policy = Policy::CVC,
                                       .num_devices = 8});
  const SyncStructure sync(dg);
  for (int d = 0; d < 8; ++d) {
    for (int o = 0; o < 8; ++o) {
      const auto& all = sync.list(d, o, ProxyFilter::kAll);
      const auto& wo = sync.list(d, o, ProxyFilter::kWithOut);
      const auto& wi = sync.list(d, o, ProxyFilter::kWithIn);
      EXPECT_LE(wo.size(), all.size());
      EXPECT_LE(wi.size(), all.size());
      // Every mirror has at least one local edge, so WithOut union
      // WithIn covers kAll (they may overlap).
      EXPECT_GE(wo.size() + wi.size(), all.size());
      EXPECT_EQ(sync.list(d, o, ProxyFilter::kNone).size(), 0u);
    }
  }
}

TEST_F(SyncStructureTest, OecHasNoBroadcastLists) {
  // All out-edges at the master: no mirror carries out-edges, so the
  // push-pattern broadcast (WithOut) is structurally elided.
  const auto dg = partition_graph(g_, {.policy = Policy::OEC,
                                       .num_devices = 8});
  const SyncStructure sync(dg);
  for (int d = 0; d < 8; ++d) {
    for (int o = 0; o < 8; ++o) {
      EXPECT_EQ(sync.list(d, o, ProxyFilter::kWithOut).size(), 0u);
    }
  }
}

TEST_F(SyncStructureTest, CvcListsOnlyOnRowOrColumnPartners) {
  const auto dg = partition_graph(g_, {.policy = Policy::CVC,
                                       .num_devices = 8});
  const SyncStructure sync(dg);
  const auto& grid = dg.grid();
  for (int d = 0; d < 8; ++d) {
    for (int o = 0; o < 8; ++o) {
      if (d == o) continue;
      if (sync.list(d, o, ProxyFilter::kWithOut).size() > 0) {
        EXPECT_EQ(grid.row_of(d), grid.row_of(o));
      }
      if (sync.list(d, o, ProxyFilter::kWithIn).size() > 0) {
        EXPECT_EQ(grid.col_of(d), grid.col_of(o));
      }
    }
  }
}

TEST_F(SyncStructureTest, SharedEntriesCountBothRoles) {
  const auto dg = partition_graph(g_, {.policy = Policy::IEC,
                                       .num_devices = 4});
  const SyncStructure sync(dg);
  for (int d = 0; d < 4; ++d) {
    std::uint64_t manual = 0;
    for (int o = 0; o < 4; ++o) {
      manual += sync.list(d, o, ProxyFilter::kAll).size();
      manual += sync.list(o, d, ProxyFilter::kAll).size();
    }
    EXPECT_EQ(sync.shared_entries(d, ProxyFilter::kAll), manual);
    EXPECT_EQ(sync.metadata_bytes(d), manual * sizeof(VertexId));
  }
}

// ---- FieldSync -------------------------------------------------------------------

class FieldSyncTest : public testing::Test {
 protected:
  // A hand-built exchange list: 4 mirrors on dev 0 (locals 10..13)
  // mapping to masters (locals 0..3) on dev 1.
  ExchangeList list_{{10, 11, 12, 13}, {0, 1, 2, 3}};
  using FS = FieldSync<std::uint32_t, MinOp<std::uint32_t>>;
};

TEST_F(FieldSyncTest, UoExtractShipsOnlyDirtyAndClearsBits) {
  std::vector<std::uint32_t> vals(16, 100);
  vals[11] = 7;
  vals[13] = 9;
  Bitset dirty(16);
  dirty.set(11);
  dirty.set(13);
  auto p = FS::extract_reduce(list_, vals, dirty, SyncMode::kUO, 0, 1);
  ASSERT_EQ(p.count(), 2u);
  EXPECT_EQ(p.positions, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(p.values, (std::vector<std::uint32_t>{7, 9}));
  EXPECT_FALSE(dirty.any());
  EXPECT_EQ(p.scanned, 4u);
}

TEST_F(FieldSyncTest, AsExtractShipsEverything) {
  std::vector<std::uint32_t> vals(16, 0);
  for (int i = 0; i < 4; ++i) vals[10 + i] = 50 + i;
  Bitset dirty(16);
  auto p = FS::extract_reduce(list_, vals, dirty, SyncMode::kAS, 0, 1);
  ASSERT_EQ(p.count(), 4u);
  EXPECT_TRUE(p.positions.empty());
  EXPECT_EQ(p.values, (std::vector<std::uint32_t>{50, 51, 52, 53}));
}

TEST_F(FieldSyncTest, ApplyReduceCombinesAndMarksChanged) {
  std::vector<std::uint32_t> master_vals(8, 60);
  Bitset bcast_dirty(8);
  Payload<std::uint32_t> p;
  p.from = 0;
  p.to = 1;
  p.positions = {0, 2};
  p.values = {55, 70};  // 55 improves master 0; 70 does not improve 2
  std::vector<VertexId> changed;
  const auto n = FS::apply_reduce(list_, p, master_vals, bcast_dirty,
                                  &changed);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(master_vals[0], 55u);
  EXPECT_EQ(master_vals[2], 60u);
  EXPECT_EQ(changed, (std::vector<VertexId>{0}));
  EXPECT_TRUE(bcast_dirty.test(0));
  EXPECT_FALSE(bcast_dirty.test(2));
}

TEST_F(FieldSyncTest, BroadcastRoundTripUpdatesMirrors) {
  std::vector<std::uint32_t> master_vals = {5, 6, 7, 8, 0, 0, 0, 0};
  Bitset dirty(8);
  dirty.set(1);
  dirty.set(3);
  auto p = FieldSync<std::uint32_t, MinOp<std::uint32_t>>::extract_broadcast(
      list_, master_vals, dirty, SyncMode::kUO, 1, 0);
  ASSERT_EQ(p.count(), 2u);
  EXPECT_EQ(p.values, (std::vector<std::uint32_t>{6, 8}));
  // Broadcast-extract must not clear the master's dirty bits (other
  // partners still need them).
  EXPECT_TRUE(dirty.test(1));

  std::vector<std::uint32_t> mirror_vals(16, 100);
  std::vector<VertexId> changed;
  FS::apply_broadcast(list_, p, mirror_vals, &changed);
  EXPECT_EQ(mirror_vals[11], 6u);
  EXPECT_EQ(mirror_vals[13], 8u);
  EXPECT_EQ(changed, (std::vector<VertexId>{11, 13}));
}

TEST_F(FieldSyncTest, AccumulatorResetsAfterExtract) {
  using AddFS = FieldSync<float, AddOp<float>>;
  std::vector<float> vals(16, 0.0f);
  vals[10] = 1.5f;
  vals[12] = 2.5f;
  Bitset dirty(16);
  dirty.set(10);
  dirty.set(12);
  auto p = AddFS::extract_reduce(list_, vals, dirty, SyncMode::kUO, 0, 1);
  EXPECT_EQ(p.count(), 2u);
  EXPECT_FLOAT_EQ(vals[10], 0.0f);  // reset so it is not re-sent
  EXPECT_FLOAT_EQ(vals[12], 0.0f);

  std::vector<float> master_vals(8, 1.0f);
  Bitset bd(8);
  AddFS::apply_reduce(list_, p, master_vals, bd, nullptr);
  EXPECT_FLOAT_EQ(master_vals[0], 2.5f);
  EXPECT_FLOAT_EQ(master_vals[2], 3.5f);
}

TEST_F(FieldSyncTest, UoAndAsConvergeToSameMasterValues) {
  std::vector<std::uint32_t> mirrors_a(16), mirrors_b(16);
  for (int i = 0; i < 16; ++i) mirrors_a[i] = mirrors_b[i] = 90 + i;
  Bitset dirty_a(16), dirty_b(16);
  dirty_a.set(10);
  dirty_a.set(12);  // only some marked in UO
  auto pa = FS::extract_reduce(list_, mirrors_a, dirty_a, SyncMode::kUO, 0, 1);
  auto pb = FS::extract_reduce(list_, mirrors_b, dirty_b, SyncMode::kAS, 0, 1);

  std::vector<std::uint32_t> masters_a(8, 1000), masters_b(8, 1000);
  Bitset bda(8), bdb(8);
  FS::apply_reduce(list_, pa, masters_a, bda, nullptr);
  FS::apply_reduce(list_, pb, masters_b, bdb, nullptr);
  // AS ships everything; UO shipped only dirty entries, but for min
  // reduction the merged result at dirty slots matches.
  EXPECT_EQ(masters_a[0], masters_b[0]);
  EXPECT_EQ(masters_a[2], masters_b[2]);
  // UO is strictly smaller on the wire here.
  EXPECT_LT(pa.bytes, pb.bytes);
}

// ---- wire protocol: checksums, sealing, deterministic corruption ------------

Payload<std::uint32_t> sample_payload() {
  Payload<std::uint32_t> p;
  p.from = 0;
  p.to = 1;
  p.positions = {3, 7, 12};
  p.values = {10, 20, 30};
  return p;
}

TEST(Wire, ChecksumDetectsValueAndPositionChanges) {
  auto p = sample_payload();
  const std::uint64_t base = payload_checksum(p);
  EXPECT_NE(base, 0u);
  EXPECT_EQ(payload_checksum(p), base);  // pure function of the content

  auto v = p;
  v.values[1] ^= 1u;  // single-bit value flip
  EXPECT_NE(payload_checksum(v), base);

  auto q = p;
  q.positions[0] = 4;  // position flip changes the hash too
  EXPECT_NE(payload_checksum(q), base);

  // Swapping two (position, value) pairs changes the byte order even
  // though the multiset of entries is identical — FNV-1a is order
  // sensitive, which is what pins the exchange-list layout.
  auto s = p;
  std::swap(s.values[0], s.values[2]);
  std::swap(s.positions[0], s.positions[2]);
  EXPECT_NE(payload_checksum(s), base);
}

TEST(Wire, VerifySkipsUnsealedAndElidedChecksums) {
  auto p = sample_payload();
  EXPECT_FALSE(p.header.sealed());
  EXPECT_TRUE(verify_payload(p));  // protocol off: trivially fine

  p.header.version = kWireVersion;
  EXPECT_TRUE(p.header.sealed());
  EXPECT_TRUE(verify_payload(p));  // sealed, checksum elided (0)

  p.header.checksum = payload_checksum(p);
  EXPECT_TRUE(verify_payload(p));
  p.values[2] += 1;
  EXPECT_FALSE(verify_payload(p));
}

TEST(Wire, CorruptPayloadIsDeterministicSingleBit) {
  const auto pristine = sample_payload();
  auto a = pristine;
  auto b = pristine;
  corrupt_payload(a, 0xdeadbeefULL);
  corrupt_payload(b, 0xdeadbeefULL);
  EXPECT_EQ(a.values, b.values);  // same hash -> same flip
  EXPECT_EQ(a.positions, pristine.positions);  // values only

  // Exactly one value differs from pristine, by exactly one bit.
  int changed = 0;
  std::uint32_t diff = 0;
  for (std::size_t i = 0; i < pristine.values.size(); ++i) {
    if (a.values[i] != pristine.values[i]) {
      ++changed;
      diff = a.values[i] ^ pristine.values[i];
    }
  }
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(diff & (diff - 1), 0u);  // power of two: a single bit
  EXPECT_NE(diff, 0u);

  // A different hash picks a different flip (for this fixture).
  auto c = pristine;
  corrupt_payload(c, 0x1234567ULL);
  EXPECT_NE(c.values, a.values);

  // And the checksum catches the corruption.
  auto sealed = pristine;
  sealed.header.version = kWireVersion;
  sealed.header.checksum = payload_checksum(sealed);
  corrupt_payload(sealed, 0xdeadbeefULL);
  EXPECT_FALSE(verify_payload(sealed));
}

TEST(Wire, CorruptPayloadNoOpOnEmpty) {
  Payload<float> p;
  p.header.version = kWireVersion;
  corrupt_payload(p, 0xabcdefULL);  // must not touch empty values
  EXPECT_TRUE(p.values.empty());
  EXPECT_TRUE(verify_payload(p));
}

TEST(Wire, ChecksumChainsAcrossPositionsAndValues) {
  // positions and values are hashed as one chained FNV-1a stream, and
  // the chain is order sensitive — hashing "b" seeded with hash("a")
  // equals hashing "ab" in one pass, and permuting bytes changes it.
  Payload<std::uint8_t> a;
  a.positions = {1};
  a.values = {2, 3};
  Payload<std::uint8_t> b;
  b.positions = {1};
  b.values = {3, 2};
  EXPECT_NE(payload_checksum(a), payload_checksum(b));
  EXPECT_NE(fnv1a("ab", 2), fnv1a("ba", 2));
  EXPECT_EQ(fnv1a("ab", 2), fnv1a("b", 1, fnv1a("a", 1)));
}

}  // namespace
}  // namespace sg::comm
