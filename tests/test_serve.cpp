// Serving-layer tests: batched kernels against their unbatched
// oracles (msbfs/mssssp bit-exact per lane, batched PPR within the
// push threshold's resolution), and the BatchScheduler's admission,
// caching, deadline ordering, metrics gating, and report determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/msbfs.hpp"
#include "algo/mssssp.hpp"
#include "algo/ppr.hpp"
#include "algo/ppr_batch.hpp"
#include "algo/reference.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr serve_social() {
  graph::SyntheticSpec s;
  s.vertices = 600;
  s.edges = 5000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.hub_in_frac = 0.05;
  s.communities = 3;
  s.seed = 7;
  return graph::synthetic(s);
}

graph::Csr serve_weighted() {
  return graph::add_random_weights(serve_social(), 1, 64, 11);
}

std::vector<graph::VertexId> stride_sources(std::size_t n,
                                            graph::VertexId vertices) {
  std::vector<graph::VertexId> src;
  for (std::size_t i = 0; i < n; ++i) {
    src.push_back(static_cast<graph::VertexId>((i * 9) % vertices));
  }
  return src;
}

// ---- msbfs / mssssp: batched lanes vs unbatched oracles ------------------

TEST(MsBfs, FullWidthLanesBitExactVsSingleSourceRuns) {
  const graph::Csr g = serve_social();
  for (const auto policy : {partition::Policy::OEC, partition::Policy::CVC}) {
    for (const auto model :
         {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
      PreparedGraph prep(g, policy, 4);
      const auto t = topo(4);
      const auto p = params();
      const auto c = cfg(model);
      const auto sources =
          stride_sources(algo::MsBfsProgram::kMaxSources, g.num_vertices());
      const auto fused = algo::run_msbfs(prep.dist, prep.sync, t, p, c,
                                         sources);
      ASSERT_EQ(fused.dist.size(), sources.size());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const auto solo =
            algo::run_bfs(prep.dist, prep.sync, t, p, c, sources[i]);
        EXPECT_EQ(fused.dist[i], solo.dist)
            << partition::to_string(policy) << "/" << engine::to_string(model)
            << " lane " << i << " (source " << sources[i] << ")";
      }
    }
  }
}

TEST(MsBfs, PartialAndDuplicateLanes) {
  const graph::Csr g = serve_social();
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto c = cfg(engine::ExecModel::kSync);
  // 5 lanes, two of them the same source: duplicates are legal and must
  // produce identical lanes.
  const std::vector<graph::VertexId> sources = {0, 17, 300, 17, 599};
  const auto fused = algo::run_msbfs(prep.dist, prep.sync, t, p, c, sources);
  ASSERT_EQ(fused.dist.size(), 5u);
  EXPECT_EQ(fused.dist[1], fused.dist[3]);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(fused.dist[i], algo::reference::bfs(g, sources[i]))
        << "lane " << i;
  }
}

TEST(MsBfs, RejectsEmptyAndOverWideBatches) {
  const graph::Csr g = serve_social();
  PreparedGraph prep(g, partition::Policy::OEC, 2);
  const auto t = topo(2);
  const auto p = params();
  const auto c = cfg(engine::ExecModel::kSync);
  EXPECT_THROW(algo::run_msbfs(prep.dist, prep.sync, t, p, c, {}),
               std::invalid_argument);
  const auto too_many =
      stride_sources(algo::MsBfsProgram::kMaxSources + 1, g.num_vertices());
  EXPECT_THROW(algo::run_msbfs(prep.dist, prep.sync, t, p, c, too_many),
               std::invalid_argument);
}

TEST(MsSssp, LanesBitExactVsSingleSourceRuns) {
  const graph::Csr g = serve_weighted();
  for (const auto policy : {partition::Policy::OEC, partition::Policy::CVC}) {
    for (const auto model :
         {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
      PreparedGraph prep(g, policy, 4);
      const auto t = topo(4);
      const auto p = params();
      const auto c = cfg(model);
      const auto sources = stride_sources(24, g.num_vertices());
      const auto fused =
          algo::run_mssssp(prep.dist, prep.sync, t, p, c, sources);
      ASSERT_EQ(fused.dist.size(), sources.size());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const auto solo =
            algo::run_sssp(prep.dist, prep.sync, t, p, c, sources[i]);
        EXPECT_EQ(fused.dist[i], solo.dist)
            << partition::to_string(policy) << "/" << engine::to_string(model)
            << " lane " << i << " (source " << sources[i] << ")";
        EXPECT_EQ(fused.dist[i], algo::reference::sssp(g, sources[i]))
            << "lane " << i;
      }
    }
  }
}

TEST(PprBatch, LanesMatchSingleSeedRunsWithinPushResolution) {
  const graph::Csr g = serve_social();
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto c = cfg(engine::ExecModel::kSync);
  const double alpha = 0.15;
  const double eps = 1e-6;
  const auto seeds = stride_sources(algo::kPprBatchLanes, g.num_vertices());
  const auto fused =
      algo::run_ppr_batch(prep.dist, prep.sync, t, p, c, seeds, alpha, eps);
  ASSERT_EQ(fused.mass.size(), seeds.size());
  // Shared-frontier float accumulation differs from the single-seed
  // order, but both converge to the same ACL fixed point; 50x the push
  // threshold is the serving layer's documented comparison slack.
  const double tol = 50.0 * eps;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto solo =
        algo::run_ppr(prep.dist, prep.sync, t, p, c, seeds[i], alpha, eps);
    ASSERT_EQ(fused.mass[i].size(), solo.mass.size());
    for (std::size_t v = 0; v < solo.mass.size(); ++v) {
      EXPECT_NEAR(fused.mass[i][v], solo.mass[v], tol)
          << "lane " << i << " vertex " << v;
    }
  }
}

// ---- BatchScheduler ------------------------------------------------------

struct ServeFixture {
  graph::Csr g = serve_weighted();
  PreparedGraph prep{g, partition::Policy::CVC, 4};
  sim::Topology t = topo(4);
  sim::CostParams p = params();
  engine::EngineConfig c = cfg(engine::ExecModel::kSync);

  serve::BatchScheduler make(serve::ServeConfig sc = {}) {
    return serve::BatchScheduler(prep.dist, prep.sync, t, p, c, sc);
  }
};

serve::Query make_query(std::uint64_t id, std::uint32_t tenant,
                        serve::QueryKind kind, graph::VertexId source,
                        graph::VertexId target, double arrival_us) {
  serve::Query q;
  q.id = id;
  q.tenant = tenant;
  q.kind = kind;
  q.source = source;
  q.target = target;
  q.k = 8;
  q.arrival = sim::SimTime::micros(arrival_us);
  return q;
}

TEST(BatchScheduler, AnswersMatchReferencesAcrossAllKinds) {
  ServeFixture fx;
  auto sched = fx.make();
  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 3, 77, 0.0));
  qs.push_back(make_query(1, 1, serve::QueryKind::kSsspDist, 3, 77, 1.0));
  qs.push_back(make_query(2, 2, serve::QueryKind::kKhopCount, 12, 0, 2.0));
  qs.push_back(make_query(3, 3, serve::QueryKind::kPprTopK, 12, 0, 3.0));
  const auto answers = sched.run(qs);
  ASSERT_EQ(answers.size(), 4u);
  for (const auto& a : answers) EXPECT_TRUE(a.served);

  const auto bfs = algo::reference::bfs(fx.g, 3);
  EXPECT_EQ(answers[0].distance, bfs[77]);
  const auto sssp = algo::reference::sssp(fx.g, 3);
  EXPECT_EQ(answers[1].distance, sssp[77]);
  const auto hop = algo::reference::bfs(fx.g, 12);
  std::uint64_t count = 0;
  for (const auto d : hop) {
    if (d <= 8) ++count;
  }
  EXPECT_EQ(answers[2].khop_count, count);
  EXPECT_LE(answers[3].topk.size(), 8u);
  ASSERT_FALSE(answers[3].topk.empty());
  const auto ppr = algo::reference::ppr(fx.g, 12, 0.15, 1e-6);
  for (const auto& sv : answers[3].topk) {
    EXPECT_NEAR(sv.score, ppr[sv.vertex], 50.0 * 1e-6);
  }
}

TEST(BatchScheduler, RejectsOverRateTenantDeterministically) {
  ServeFixture fx;
  serve::ServeConfig sc;
  // 2-token bucket with a negligible refill: the third query of tenant
  // 0 in the same instant must be rate-limited; tenant 1 rides free.
  sc.default_limits = {.rate_qps = 1.0, .burst = 2.0, .max_queued = 64};
  std::vector<serve::Query> qs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    qs.push_back(make_query(i, 0, serve::QueryKind::kBfsDist, 1,
                            static_cast<graph::VertexId>(2 + i),
                            static_cast<double>(i)));
  }
  qs.push_back(make_query(5, 1, serve::QueryKind::kBfsDist, 1, 9, 5.0));

  auto run_once = [&] {
    auto sched = fx.make(sc);
    return sched.run(qs);
  };
  const auto a1 = run_once();
  const auto a2 = run_once();
  ASSERT_EQ(a1.size(), 6u);
  EXPECT_TRUE(a1[0].served);
  EXPECT_TRUE(a1[1].served);
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_FALSE(a1[i].served) << i;
    EXPECT_EQ(a1[i].reject_reason, serve::RejectReason::kRateLimited) << i;
    EXPECT_FALSE(a1[i].reject_detail.empty());
  }
  EXPECT_TRUE(a1[5].served);  // other tenant, own bucket
  // Verdicts are a function of the trace alone, not scheduler timing.
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].served, a2[i].served) << i;
    EXPECT_EQ(a1[i].reject_reason, a2[i].reject_reason) << i;
    EXPECT_EQ(a1[i].reject_detail, a2[i].reject_detail) << i;
  }
}

TEST(BatchScheduler, BoundsTheQueue) {
  ServeFixture fx;
  serve::ServeConfig sc;
  sc.max_queue_depth = 2;
  sc.default_limits = {.rate_qps = 1e9, .burst = 1e9, .max_queued = 64};
  // All at t=0 with distinct sources: nothing is cached, so each query
  // occupies a queue slot until the first dispatch.
  std::vector<serve::Query> qs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    qs.push_back(make_query(i, static_cast<std::uint32_t>(i),
                            serve::QueryKind::kBfsDist,
                            static_cast<graph::VertexId>(10 + i), 0, 0.0));
  }
  auto sched = fx.make(sc);
  const auto answers = sched.run(qs);
  EXPECT_TRUE(answers[0].served);
  EXPECT_TRUE(answers[1].served);
  EXPECT_FALSE(answers[2].served);
  EXPECT_EQ(answers[2].reject_reason, serve::RejectReason::kQueueFull);
  EXPECT_FALSE(answers[3].served);
  EXPECT_EQ(sched.report().rejected, 2u);
}

TEST(BatchScheduler, CacheHitReturnsIdenticalPayloadBytes) {
  ServeFixture fx;
  auto sched = fx.make();
  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kPprTopK, 42, 0, 0.0));
  // Far enough apart that the first run has completed: a pure cache hit.
  qs.push_back(make_query(1, 1, serve::QueryKind::kPprTopK, 42, 0, 1e6));
  const auto answers = sched.run(qs);
  ASSERT_TRUE(answers[0].served);
  ASSERT_TRUE(answers[1].served);
  EXPECT_FALSE(answers[0].from_cache);
  EXPECT_TRUE(answers[1].from_cache);
  EXPECT_EQ(answers[0].payload(), answers[1].payload());
  EXPECT_EQ(sched.cache_stats().hits, 1u);
  EXPECT_EQ(sched.report().engine_runs, 1u);
}

TEST(BatchScheduler, EpochBumpInvalidatesCachedResults) {
  ServeFixture fx;
  auto sched = fx.make();
  std::vector<serve::Query> warm;
  warm.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 7, 9, 0.0));
  (void)sched.run(warm);
  ASSERT_EQ(sched.report().engine_runs, 1u);

  sched.bump_epoch();
  EXPECT_GE(sched.cache_stats().invalidations, 1u);

  std::vector<serve::Query> again;
  again.push_back(make_query(1, 0, serve::QueryKind::kBfsDist, 7, 9, 2e6));
  const auto answers = sched.run(again);
  ASSERT_TRUE(answers[0].served);
  EXPECT_FALSE(answers[0].from_cache);  // stale entry was stranded
  EXPECT_EQ(sched.report().engine_runs, 2u);
}

TEST(BatchScheduler, DispatchesByPriorityThenDeadline) {
  ServeFixture fx;
  auto sched = fx.make();
  // Two batch-incompatible classes arriving together: the head of the
  // dispatch order decides which engine run goes first.
  std::vector<serve::Query> qs;
  auto urgent = make_query(0, 0, serve::QueryKind::kPprTopK, 5, 0, 0.0);
  urgent.priority = 0;
  auto lazy = make_query(1, 1, serve::QueryKind::kBfsDist, 6, 9, 0.0);
  lazy.priority = 1;
  qs.push_back(lazy);    // arrival order must not matter
  qs.push_back(urgent);
  const auto answers = sched.run(qs);
  ASSERT_TRUE(answers[0].served);
  ASSERT_TRUE(answers[1].served);
  // The urgent ppr query's run completes before the deprioritized bfs.
  EXPECT_LT(answers[1].completed, answers[0].completed);

  // Same priority: the earlier absolute deadline dispatches first.
  auto sched2 = fx.make();
  auto soon = make_query(0, 0, serve::QueryKind::kBfsDist, 6, 9, 0.0);
  soon.deadline = sim::SimTime::micros(500.0);
  auto later = make_query(1, 1, serve::QueryKind::kPprTopK, 5, 0, 0.0);
  later.deadline = sim::SimTime::micros(900.0);
  std::vector<serve::Query> qs2{later, soon};
  const auto answers2 = sched2.run(qs2);
  EXPECT_LT(answers2[1].completed, answers2[0].completed);
}

TEST(BatchScheduler, CoalescesHopQueriesIntoSharedLanes) {
  ServeFixture fx;
  serve::ServeConfig sc;
  sc.record_batches = true;
  auto sched = fx.make(sc);
  // 6 queries over 3 distinct sources, all at t=0 — one msbfs run with
  // 3 lanes (khop rides in the same class as bfs-dist).
  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 20, 1, 0.0));
  qs.push_back(make_query(1, 1, serve::QueryKind::kBfsDist, 21, 2, 0.0));
  qs.push_back(make_query(2, 2, serve::QueryKind::kKhopCount, 22, 0, 0.0));
  qs.push_back(make_query(3, 3, serve::QueryKind::kBfsDist, 20, 3, 0.0));
  qs.push_back(make_query(4, 4, serve::QueryKind::kKhopCount, 21, 0, 0.0));
  qs.push_back(make_query(5, 5, serve::QueryKind::kBfsDist, 22, 4, 0.0));
  const auto answers = sched.run(qs);
  for (const auto& a : answers) EXPECT_TRUE(a.served);
  EXPECT_EQ(sched.report().engine_runs, 1u);
  ASSERT_EQ(sched.batches().size(), 1u);
  EXPECT_EQ(sched.batches()[0].lane_sources.size(), 3u);
  EXPECT_EQ(sched.batches()[0].query_ids.size(), 6u);
}

TEST(BatchScheduler, MetricsStayEmptyWithoutTraffic) {
  ServeFixture fx;
  obs::Registry reg;
  serve::ServeConfig sc;
  sc.metrics = &reg;
  auto sched = fx.make(sc);
  // Compiled in, wired up, never used: nothing may be registered, so
  // batch-mode reports sharing the registry stay byte-identical.
  EXPECT_EQ(reg.size(), 0u);
  const auto answers = sched.run({});
  EXPECT_TRUE(answers.empty());
  EXPECT_EQ(reg.size(), 0u);

  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 1, 2, 0.0));
  (void)sched.run(qs);
  EXPECT_GT(reg.size(), 0u);  // ...and traffic does register
}

TEST(BatchScheduler, WorkloadReplayIsByteDeterministic) {
  ServeFixture fx;
  serve::WorkloadSpec spec;
  spec.num_queries = 200;
  spec.num_tenants = 4;
  const auto trace = serve::generate_workload(spec, fx.g.num_vertices());
  ASSERT_EQ(trace.size(), 200u);
  const auto trace2 = serve::generate_workload(spec, fx.g.num_vertices());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].arrival, trace2[i].arrival) << i;
    EXPECT_EQ(trace[i].source, trace2[i].source) << i;
    EXPECT_EQ(trace[i].tenant, trace2[i].tenant) << i;
    if (i > 0) EXPECT_GE(trace[i].arrival, trace[i - 1].arrival) << i;
    EXPECT_LT(trace[i].tenant, 4u) << i;
  }

  auto sched1 = fx.make();
  auto sched2 = fx.make();
  (void)sched1.run(trace);
  (void)sched2.run(trace);
  EXPECT_EQ(sched1.report_json(), sched2.report_json());
  EXPECT_GT(sched1.report().served, 0u);
}

}  // namespace
}  // namespace sg
