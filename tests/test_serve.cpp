// Serving-layer tests: batched kernels against their unbatched
// oracles (msbfs/mssssp bit-exact per lane, batched PPR within the
// push threshold's resolution), and the BatchScheduler's admission,
// caching, deadline ordering, metrics gating, and report determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/msbfs.hpp"
#include "algo/mssssp.hpp"
#include "algo/ppr.hpp"
#include "algo/ppr_batch.hpp"
#include "algo/reference.hpp"
#include "algo/sssp.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr serve_social() {
  graph::SyntheticSpec s;
  s.vertices = 600;
  s.edges = 5000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.hub_in_frac = 0.05;
  s.communities = 3;
  s.seed = 7;
  return graph::synthetic(s);
}

graph::Csr serve_weighted() {
  return graph::add_random_weights(serve_social(), 1, 64, 11);
}

std::vector<graph::VertexId> stride_sources(std::size_t n,
                                            graph::VertexId vertices) {
  std::vector<graph::VertexId> src;
  for (std::size_t i = 0; i < n; ++i) {
    src.push_back(static_cast<graph::VertexId>((i * 9) % vertices));
  }
  return src;
}

// ---- msbfs / mssssp: batched lanes vs unbatched oracles ------------------

TEST(MsBfs, FullWidthLanesBitExactVsSingleSourceRuns) {
  const graph::Csr g = serve_social();
  for (const auto policy : {partition::Policy::OEC, partition::Policy::CVC}) {
    for (const auto model :
         {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
      PreparedGraph prep(g, policy, 4);
      const auto t = topo(4);
      const auto p = params();
      const auto c = cfg(model);
      const auto sources =
          stride_sources(algo::MsBfsProgram::kMaxSources, g.num_vertices());
      const auto fused = algo::run_msbfs(prep.dist, prep.sync, t, p, c,
                                         sources);
      ASSERT_EQ(fused.dist.size(), sources.size());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const auto solo =
            algo::run_bfs(prep.dist, prep.sync, t, p, c, sources[i]);
        EXPECT_EQ(fused.dist[i], solo.dist)
            << partition::to_string(policy) << "/" << engine::to_string(model)
            << " lane " << i << " (source " << sources[i] << ")";
      }
    }
  }
}

TEST(MsBfs, PartialAndDuplicateLanes) {
  const graph::Csr g = serve_social();
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto c = cfg(engine::ExecModel::kSync);
  // 5 lanes, two of them the same source: duplicates are legal and must
  // produce identical lanes.
  const std::vector<graph::VertexId> sources = {0, 17, 300, 17, 599};
  const auto fused = algo::run_msbfs(prep.dist, prep.sync, t, p, c, sources);
  ASSERT_EQ(fused.dist.size(), 5u);
  EXPECT_EQ(fused.dist[1], fused.dist[3]);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(fused.dist[i], algo::reference::bfs(g, sources[i]))
        << "lane " << i;
  }
}

TEST(MsBfs, RejectsEmptyAndOverWideBatches) {
  const graph::Csr g = serve_social();
  PreparedGraph prep(g, partition::Policy::OEC, 2);
  const auto t = topo(2);
  const auto p = params();
  const auto c = cfg(engine::ExecModel::kSync);
  EXPECT_THROW(algo::run_msbfs(prep.dist, prep.sync, t, p, c, {}),
               std::invalid_argument);
  const auto too_many =
      stride_sources(algo::MsBfsProgram::kMaxSources + 1, g.num_vertices());
  EXPECT_THROW(algo::run_msbfs(prep.dist, prep.sync, t, p, c, too_many),
               std::invalid_argument);
}

TEST(MsSssp, LanesBitExactVsSingleSourceRuns) {
  const graph::Csr g = serve_weighted();
  for (const auto policy : {partition::Policy::OEC, partition::Policy::CVC}) {
    for (const auto model :
         {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
      PreparedGraph prep(g, policy, 4);
      const auto t = topo(4);
      const auto p = params();
      const auto c = cfg(model);
      const auto sources = stride_sources(24, g.num_vertices());
      const auto fused =
          algo::run_mssssp(prep.dist, prep.sync, t, p, c, sources);
      ASSERT_EQ(fused.dist.size(), sources.size());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const auto solo =
            algo::run_sssp(prep.dist, prep.sync, t, p, c, sources[i]);
        EXPECT_EQ(fused.dist[i], solo.dist)
            << partition::to_string(policy) << "/" << engine::to_string(model)
            << " lane " << i << " (source " << sources[i] << ")";
        EXPECT_EQ(fused.dist[i], algo::reference::sssp(g, sources[i]))
            << "lane " << i;
      }
    }
  }
}

TEST(PprBatch, LanesMatchSingleSeedRunsWithinPushResolution) {
  const graph::Csr g = serve_social();
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto c = cfg(engine::ExecModel::kSync);
  const double alpha = 0.15;
  const double eps = 1e-6;
  const auto seeds = stride_sources(algo::kPprBatchLanes, g.num_vertices());
  const auto fused =
      algo::run_ppr_batch(prep.dist, prep.sync, t, p, c, seeds, alpha, eps);
  ASSERT_EQ(fused.mass.size(), seeds.size());
  // Shared-frontier float accumulation differs from the single-seed
  // order, but both converge to the same ACL fixed point; 50x the push
  // threshold is the serving layer's documented comparison slack.
  const double tol = 50.0 * eps;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto solo =
        algo::run_ppr(prep.dist, prep.sync, t, p, c, seeds[i], alpha, eps);
    ASSERT_EQ(fused.mass[i].size(), solo.mass.size());
    for (std::size_t v = 0; v < solo.mass.size(); ++v) {
      EXPECT_NEAR(fused.mass[i][v], solo.mass[v], tol)
          << "lane " << i << " vertex " << v;
    }
  }
}

// ---- BatchScheduler ------------------------------------------------------

struct ServeFixture {
  graph::Csr g = serve_weighted();
  PreparedGraph prep{g, partition::Policy::CVC, 4};
  sim::Topology t = topo(4);
  sim::CostParams p = params();
  engine::EngineConfig c = cfg(engine::ExecModel::kSync);

  serve::BatchScheduler make(serve::ServeConfig sc = {}) {
    return serve::BatchScheduler(prep.dist, prep.sync, t, p, c, sc);
  }
};

serve::Query make_query(std::uint64_t id, std::uint32_t tenant,
                        serve::QueryKind kind, graph::VertexId source,
                        graph::VertexId target, double arrival_us) {
  serve::Query q;
  q.id = id;
  q.tenant = tenant;
  q.kind = kind;
  q.source = source;
  q.target = target;
  q.k = 8;
  q.arrival = sim::SimTime::micros(arrival_us);
  return q;
}

TEST(BatchScheduler, AnswersMatchReferencesAcrossAllKinds) {
  ServeFixture fx;
  auto sched = fx.make();
  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 3, 77, 0.0));
  qs.push_back(make_query(1, 1, serve::QueryKind::kSsspDist, 3, 77, 1.0));
  qs.push_back(make_query(2, 2, serve::QueryKind::kKhopCount, 12, 0, 2.0));
  qs.push_back(make_query(3, 3, serve::QueryKind::kPprTopK, 12, 0, 3.0));
  const auto answers = sched.run(qs);
  ASSERT_EQ(answers.size(), 4u);
  for (const auto& a : answers) EXPECT_TRUE(a.served);

  const auto bfs = algo::reference::bfs(fx.g, 3);
  EXPECT_EQ(answers[0].distance, bfs[77]);
  const auto sssp = algo::reference::sssp(fx.g, 3);
  EXPECT_EQ(answers[1].distance, sssp[77]);
  const auto hop = algo::reference::bfs(fx.g, 12);
  std::uint64_t count = 0;
  for (const auto d : hop) {
    if (d <= 8) ++count;
  }
  EXPECT_EQ(answers[2].khop_count, count);
  EXPECT_LE(answers[3].topk.size(), 8u);
  ASSERT_FALSE(answers[3].topk.empty());
  const auto ppr = algo::reference::ppr(fx.g, 12, 0.15, 1e-6);
  for (const auto& sv : answers[3].topk) {
    EXPECT_NEAR(sv.score, ppr[sv.vertex], 50.0 * 1e-6);
  }
}

TEST(BatchScheduler, RejectsOverRateTenantDeterministically) {
  ServeFixture fx;
  serve::ServeConfig sc;
  // 2-token bucket with a negligible refill: the third query of tenant
  // 0 in the same instant must be rate-limited; tenant 1 rides free.
  sc.default_limits = {.rate_qps = 1.0, .burst = 2.0, .max_queued = 64};
  std::vector<serve::Query> qs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    qs.push_back(make_query(i, 0, serve::QueryKind::kBfsDist, 1,
                            static_cast<graph::VertexId>(2 + i),
                            static_cast<double>(i)));
  }
  qs.push_back(make_query(5, 1, serve::QueryKind::kBfsDist, 1, 9, 5.0));

  auto run_once = [&] {
    auto sched = fx.make(sc);
    return sched.run(qs);
  };
  const auto a1 = run_once();
  const auto a2 = run_once();
  ASSERT_EQ(a1.size(), 6u);
  EXPECT_TRUE(a1[0].served);
  EXPECT_TRUE(a1[1].served);
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_FALSE(a1[i].served) << i;
    EXPECT_EQ(a1[i].reject_reason, serve::RejectReason::kRateLimited) << i;
    EXPECT_FALSE(a1[i].reject_detail.empty());
  }
  EXPECT_TRUE(a1[5].served);  // other tenant, own bucket
  // Verdicts are a function of the trace alone, not scheduler timing.
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].served, a2[i].served) << i;
    EXPECT_EQ(a1[i].reject_reason, a2[i].reject_reason) << i;
    EXPECT_EQ(a1[i].reject_detail, a2[i].reject_detail) << i;
  }
}

TEST(BatchScheduler, BoundsTheQueue) {
  ServeFixture fx;
  serve::ServeConfig sc;
  sc.max_queue_depth = 2;
  sc.default_limits = {.rate_qps = 1e9, .burst = 1e9, .max_queued = 64};
  // All at t=0 with distinct sources: nothing is cached, so each query
  // occupies a queue slot until the first dispatch.
  std::vector<serve::Query> qs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    qs.push_back(make_query(i, static_cast<std::uint32_t>(i),
                            serve::QueryKind::kBfsDist,
                            static_cast<graph::VertexId>(10 + i), 0, 0.0));
  }
  auto sched = fx.make(sc);
  const auto answers = sched.run(qs);
  EXPECT_TRUE(answers[0].served);
  EXPECT_TRUE(answers[1].served);
  EXPECT_FALSE(answers[2].served);
  EXPECT_EQ(answers[2].reject_reason, serve::RejectReason::kQueueFull);
  EXPECT_FALSE(answers[3].served);
  EXPECT_EQ(sched.report().rejected, 2u);
}

TEST(BatchScheduler, CacheHitReturnsIdenticalPayloadBytes) {
  ServeFixture fx;
  auto sched = fx.make();
  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kPprTopK, 42, 0, 0.0));
  // Far enough apart that the first run has completed: a pure cache hit.
  qs.push_back(make_query(1, 1, serve::QueryKind::kPprTopK, 42, 0, 1e6));
  const auto answers = sched.run(qs);
  ASSERT_TRUE(answers[0].served);
  ASSERT_TRUE(answers[1].served);
  EXPECT_FALSE(answers[0].from_cache);
  EXPECT_TRUE(answers[1].from_cache);
  EXPECT_EQ(answers[0].payload(), answers[1].payload());
  EXPECT_EQ(sched.cache_stats().hits, 1u);
  EXPECT_EQ(sched.report().engine_runs, 1u);
}

TEST(BatchScheduler, EpochBumpInvalidatesCachedResults) {
  ServeFixture fx;
  auto sched = fx.make();
  std::vector<serve::Query> warm;
  warm.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 7, 9, 0.0));
  (void)sched.run(warm);
  ASSERT_EQ(sched.report().engine_runs, 1u);

  sched.bump_epoch();
  EXPECT_GE(sched.cache_stats().invalidations, 1u);

  std::vector<serve::Query> again;
  again.push_back(make_query(1, 0, serve::QueryKind::kBfsDist, 7, 9, 2e6));
  const auto answers = sched.run(again);
  ASSERT_TRUE(answers[0].served);
  EXPECT_FALSE(answers[0].from_cache);  // stale entry was stranded
  EXPECT_EQ(sched.report().engine_runs, 2u);
}

TEST(BatchScheduler, DispatchesByPriorityThenDeadline) {
  ServeFixture fx;
  auto sched = fx.make();
  // Two batch-incompatible classes arriving together: the head of the
  // dispatch order decides which engine run goes first.
  std::vector<serve::Query> qs;
  auto urgent = make_query(0, 0, serve::QueryKind::kPprTopK, 5, 0, 0.0);
  urgent.priority = 0;
  auto lazy = make_query(1, 1, serve::QueryKind::kBfsDist, 6, 9, 0.0);
  lazy.priority = 1;
  qs.push_back(lazy);    // arrival order must not matter
  qs.push_back(urgent);
  const auto answers = sched.run(qs);
  ASSERT_TRUE(answers[0].served);
  ASSERT_TRUE(answers[1].served);
  // The urgent ppr query's run completes before the deprioritized bfs.
  EXPECT_LT(answers[1].completed, answers[0].completed);

  // Same priority: the earlier absolute deadline dispatches first.
  auto sched2 = fx.make();
  auto soon = make_query(0, 0, serve::QueryKind::kBfsDist, 6, 9, 0.0);
  soon.deadline = sim::SimTime::micros(500.0);
  auto later = make_query(1, 1, serve::QueryKind::kPprTopK, 5, 0, 0.0);
  later.deadline = sim::SimTime::micros(900.0);
  std::vector<serve::Query> qs2{later, soon};
  const auto answers2 = sched2.run(qs2);
  EXPECT_LT(answers2[1].completed, answers2[0].completed);
}

TEST(BatchScheduler, CoalescesHopQueriesIntoSharedLanes) {
  ServeFixture fx;
  serve::ServeConfig sc;
  sc.record_batches = true;
  auto sched = fx.make(sc);
  // 6 queries over 3 distinct sources, all at t=0 — one msbfs run with
  // 3 lanes (khop rides in the same class as bfs-dist).
  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 20, 1, 0.0));
  qs.push_back(make_query(1, 1, serve::QueryKind::kBfsDist, 21, 2, 0.0));
  qs.push_back(make_query(2, 2, serve::QueryKind::kKhopCount, 22, 0, 0.0));
  qs.push_back(make_query(3, 3, serve::QueryKind::kBfsDist, 20, 3, 0.0));
  qs.push_back(make_query(4, 4, serve::QueryKind::kKhopCount, 21, 0, 0.0));
  qs.push_back(make_query(5, 5, serve::QueryKind::kBfsDist, 22, 4, 0.0));
  const auto answers = sched.run(qs);
  for (const auto& a : answers) EXPECT_TRUE(a.served);
  EXPECT_EQ(sched.report().engine_runs, 1u);
  ASSERT_EQ(sched.batches().size(), 1u);
  EXPECT_EQ(sched.batches()[0].lane_sources.size(), 3u);
  EXPECT_EQ(sched.batches()[0].query_ids.size(), 6u);
}

TEST(BatchScheduler, MetricsStayEmptyWithoutTraffic) {
  ServeFixture fx;
  obs::Registry reg;
  serve::ServeConfig sc;
  sc.metrics = &reg;
  auto sched = fx.make(sc);
  // Compiled in, wired up, never used: nothing may be registered, so
  // batch-mode reports sharing the registry stay byte-identical.
  EXPECT_EQ(reg.size(), 0u);
  const auto answers = sched.run({});
  EXPECT_TRUE(answers.empty());
  EXPECT_EQ(reg.size(), 0u);

  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 1, 2, 0.0));
  (void)sched.run(qs);
  EXPECT_GT(reg.size(), 0u);  // ...and traffic does register
}

TEST(BatchScheduler, WorkloadReplayIsByteDeterministic) {
  ServeFixture fx;
  serve::WorkloadSpec spec;
  spec.num_queries = 200;
  spec.num_tenants = 4;
  const auto trace = serve::generate_workload(spec, fx.g.num_vertices());
  ASSERT_EQ(trace.size(), 200u);
  const auto trace2 = serve::generate_workload(spec, fx.g.num_vertices());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].arrival, trace2[i].arrival) << i;
    EXPECT_EQ(trace[i].source, trace2[i].source) << i;
    EXPECT_EQ(trace[i].tenant, trace2[i].tenant) << i;
    if (i > 0) EXPECT_GE(trace[i].arrival, trace[i - 1].arrival) << i;
    EXPECT_LT(trace[i].tenant, 4u) << i;
  }

  auto sched1 = fx.make();
  auto sched2 = fx.make();
  (void)sched1.run(trace);
  (void)sched2.run(trace);
  EXPECT_EQ(sched1.report_json(), sched2.report_json());
  EXPECT_GT(sched1.report().served, 0u);
}

// ---- Zipf alias sampler --------------------------------------------------

TEST(ZipfSampler, AliasTableReconstructsExactProbabilities) {
  // Vose invariant: column i's total mass (its own kept fraction plus
  // the donated fractions of every column aliased to it) divided by n
  // must equal the normalized Zipf weight of rank i.
  for (const auto& [n, s] : std::vector<std::pair<std::size_t, double>>{
           {1, 1.0}, {2, 0.5}, {6, 0.9}, {17, 1.2}, {64, 0.0}}) {
    const serve::ZipfSampler z(n, s);
    double total = 0.0;
    std::vector<double> want(n);
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
      total += want[i];
    }
    std::vector<double> mass(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_GE(z.prob(i), 0.0);
      ASSERT_LE(z.prob(i), 1.0 + 1e-12);
      ASSERT_LT(z.alias(i), n);
      mass[i] += z.prob(i);
      mass[z.alias(i)] += 1.0 - z.prob(i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(mass[i] / static_cast<double>(n), want[i] / total, 1e-12)
          << "n=" << n << " s=" << s << " rank " << i;
    }
  }
}

TEST(ZipfSampler, GoldenTableAndSampleSequence) {
  // Pinned construction: any change to the alias build or the one-draw
  // sampling discipline shifts every seeded workload in the repo, so
  // the exact table and a seeded sample prefix are golden.
  const serve::ZipfSampler z(6, 0.9);
  const double want_prob[6] = {1.0,
                               0.67778005873951086,
                               0.84895718333589987,
                               0.65530114147457941,
                               0.5360705050928567,
                               0.4549448899644879};
  const std::size_t want_alias[6] = {0, 0, 0, 0, 0, 1};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(z.prob(i), want_prob[i]) << "column " << i;
    EXPECT_EQ(z.alias(i), want_alias[i]) << "column " << i;
  }
  sim::Rng rng(123);
  const std::size_t want_samples[24] = {1, 1, 2, 0, 2, 1, 2, 0, 0, 2, 0, 0,
                                        0, 0, 0, 1, 0, 4, 3, 0, 1, 1, 2, 0};
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_EQ(z.sample(rng), want_samples[i]) << "draw " << i;
  }
}

// ---- brownout controller -------------------------------------------------

serve::BrownoutPolicy fast_brownout() {
  serve::BrownoutPolicy p;
  p.enabled = true;
  p.ewma_alpha = 1.0;  // no smoothing: the raw signal is the score
  p.sustain_evals = 2;
  p.cooldown_evals = 2;
  return p;
}

std::vector<serve::BrownoutController::QueuedView> views(std::size_t n,
                                                         std::uint32_t tenant =
                                                             0) {
  std::vector<serve::BrownoutController::QueuedView> v(n);
  for (auto& q : v) q.tenant = tenant;
  return v;
}

TEST(BrownoutController, HysteresisEscalatesAndRecovers) {
  serve::BrownoutController ctl(fast_brownout());
  const auto now = sim::SimTime::zero();
  const auto est = sim::SimTime::zero();
  // Full queue (pressure 1.0 >= score_on): tier holds at 0 until the
  // signal sustains, then steps one tier per sustain+cooldown window.
  EXPECT_EQ(ctl.evaluate(now, views(64), 64, est).tier, 0);  // sustain 1/2
  const auto up = ctl.evaluate(now, views(64), 64, est);     // sustain 2/2
  EXPECT_EQ(up.tier, 1);
  EXPECT_TRUE(up.changed);
  // Cooldown holds the tier even though the signal stays saturated,
  // then the still-sustained signal escalates to the shed tier.
  EXPECT_EQ(ctl.evaluate(now, views(64), 64, est).tier, 1);
  EXPECT_EQ(ctl.evaluate(now, views(64), 64, est).tier, 2);
  EXPECT_EQ(ctl.peak_tier(), 2);
  EXPECT_TRUE(ctl.should_degrade(0));
  EXPECT_TRUE(ctl.should_shed(0, 1));
  EXPECT_FALSE(ctl.should_shed(0, 0));  // priority 0 is never shed
  // Mid-band score (between off and on) never moves the tier.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ctl.evaluate(now, views(32), 64, est).tier, 2) << i;
  }
  // Calm queue (pressure <= score_off): de-escalates one tier per
  // sustained window, back to normal service.
  int evals_to_zero = 0;
  while (ctl.tier() > 0 && evals_to_zero < 32) {
    (void)ctl.evaluate(now, views(4), 64, est);
    ++evals_to_zero;
  }
  EXPECT_EQ(ctl.tier(), 0);
  EXPECT_GE(evals_to_zero, 4);  // two sustained windows + cooldowns
  EXPECT_FALSE(ctl.should_degrade(0));
  EXPECT_GE(ctl.transitions(), 4u);
}

TEST(BrownoutController, DeadlinePressureNeedsWarmEstimate) {
  serve::BrownoutController ctl(fast_brownout());
  auto doomed = views(16);
  for (auto& q : doomed) q.deadline = sim::SimTime::zero();  // all infeasible
  // Cold estimate: the deadline signal stays quiet; 16/64 queue
  // pressure alone is under score_on, so the tier never moves.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(
        ctl.evaluate(sim::SimTime::millisec(1.0), doomed, 64,
                     sim::SimTime::zero())
            .tier,
        0)
        << i;
  }
  // Warm estimate: every queued deadline precedes now + est, so the
  // deadline pressure saturates and the controller escalates.
  (void)ctl.evaluate(sim::SimTime::millisec(1.0), doomed, 64,
                     sim::SimTime::millisec(2.0));
  const auto v = ctl.evaluate(sim::SimTime::millisec(1.0), doomed, 64,
                              sim::SimTime::millisec(2.0));
  EXPECT_EQ(v.tier, 1);
}

TEST(BrownoutController, HotTenantFairnessShieldsColdTenants) {
  auto policy = fast_brownout();
  policy.hot_share = 0.35;
  serve::BrownoutController ctl(policy);
  // Tenant 7 owns 3/4 of a saturated queue; tenant 2 the rest.
  std::vector<serve::BrownoutController::QueuedView> q = views(48, 7);
  const auto cold = views(16, 2);
  q.insert(q.end(), cold.begin(), cold.end());
  const auto now = sim::SimTime::zero();
  for (int i = 0; i < 8 && ctl.tier() < 2; ++i) {
    (void)ctl.evaluate(now, q, 64, sim::SimTime::zero());
  }
  ASSERT_EQ(ctl.tier(), 2);
  EXPECT_TRUE(ctl.hot(7));
  EXPECT_FALSE(ctl.hot(2));
  // The hot tenant takes the full global tier; cold tenants get one
  // tier of shelter — tenant 7 cannot brown tenant 2 out.
  EXPECT_EQ(ctl.effective_tier(7), 2);
  EXPECT_EQ(ctl.effective_tier(2), 1);
  EXPECT_TRUE(ctl.should_shed(7, 1));
  EXPECT_FALSE(ctl.should_shed(2, 1));
  EXPECT_TRUE(ctl.should_degrade(2));
}

// ---- scheduler-level overload layers -------------------------------------

/// Symmetric community graph with pair-hashed weights: the only shape
/// the landmark triangle bound (and so the degraded tier) is sound on.
graph::Csr serve_symmetric() {
  graph::SyntheticSpec s;
  s.vertices = 600;
  s.edges = 5000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.communities = 3;
  s.symmetric = true;
  s.seed = 7;
  return graph::add_symmetric_weights(graph::synthetic(s), 1, 64, 11);
}

struct SymmetricServeFixture {
  graph::Csr g = serve_symmetric();
  PreparedGraph prep{g, partition::Policy::CVC, 4};
  sim::Topology t = topo(4);
  sim::CostParams p = params();
  engine::EngineConfig c = cfg(engine::ExecModel::kSync);

  serve::BatchScheduler make(serve::ServeConfig sc = {}) {
    return serve::BatchScheduler(prep.dist, prep.sync, t, p, c, sc);
  }
};

/// Overload trace: every query lands at t=0 with more distinct sources
/// than one batch holds, so the queue survives several dispatch
/// boundaries and the brownout controller gets evaluations to act on.
std::vector<serve::Query> burst_trace(std::size_t n, std::uint32_t tenants,
                                      std::uint32_t priorities) {
  std::vector<serve::Query> qs;
  for (std::size_t i = 0; i < n; ++i) {
    auto q = make_query(i, static_cast<std::uint32_t>(i % tenants),
                        serve::QueryKind::kBfsDist,
                        static_cast<graph::VertexId>((7 * i + 13) % 600),
                        static_cast<graph::VertexId>((11 * i + 3) % 600), 0.0);
    q.priority = static_cast<std::uint32_t>(i % priorities);
    qs.push_back(q);
  }
  return qs;
}

serve::ServeConfig overload_serve_cfg() {
  serve::ServeConfig sc;
  sc.batch_width = 4;  // small batches: many dispatch boundaries
  sc.max_queue_depth = 64;
  sc.default_limits = {.rate_qps = 1e9, .burst = 1e9, .max_queued = 64};
  sc.brownout.enabled = true;
  sc.brownout.ewma_alpha = 1.0;
  sc.brownout.sustain_evals = 1;
  sc.brownout.cooldown_evals = 0;
  sc.brownout.score_on = 0.5;
  return sc;
}

TEST(BatchScheduler, BrownoutShedsLowPriorityNeverUrgent) {
  SymmetricServeFixture fx;
  auto sched = fx.make(overload_serve_cfg());
  const auto qs = burst_trace(48, 3, 2);
  const auto answers = sched.run(qs);
  const auto& rep = sched.report();
  EXPECT_GE(rep.brownout_peak_tier, 2);
  EXPECT_GT(rep.rejected_by_reason[static_cast<std::size_t>(
                serve::RejectReason::kBrownoutShed)],
            0u);
  std::uint64_t accounted = 0;
  for (std::size_t i = 0; i < answers.size(); ++i) {
    const auto& a = answers[i];
    // Zero silent drops: every submitted query is served or rejected
    // with a reason.
    EXPECT_TRUE(a.served || a.reject_reason != serve::RejectReason::kNone)
        << i;
    accounted += 1;
    if (a.reject_reason == serve::RejectReason::kBrownoutShed) {
      EXPECT_GE(qs[i].priority, 1u) << "urgent query " << i << " was shed";
    }
  }
  EXPECT_EQ(rep.served + rep.rejected, rep.submitted);
  EXPECT_EQ(rep.submitted, accounted);
}

TEST(BatchScheduler, BrownoutDegradedAnswersAreSoundBounds) {
  SymmetricServeFixture fx;
  auto sc = overload_serve_cfg();
  sc.brownout.max_tier = 1;  // degrade-only: no shedding in this test
  auto sched = fx.make(sc);

  // Warm two landmark rows so the degraded tier has triangle bounds to
  // answer from (cache rows double as landmarks).
  std::vector<serve::Query> warm;
  warm.push_back(make_query(1000, 0, serve::QueryKind::kBfsDist, 20, 1, 0.0));
  warm.push_back(
      make_query(1001, 0, serve::QueryKind::kSsspDist, 20, 1, 100.0));
  (void)sched.run(warm);

  auto qs = burst_trace(48, 3, 2);
  for (auto& q : qs) {
    q.id += 2000;
    q.arrival = sim::SimTime::millisec(400.0);  // after the warm phase
    if (q.id % 3 == 0) q.kind = serve::QueryKind::kSsspDist;
  }
  const auto answers = sched.run(qs);
  const auto& rep = sched.report();
  EXPECT_EQ(rep.brownout_peak_tier, 1);
  ASSERT_GT(rep.degraded_served, 0u);

  std::uint64_t checked = 0;
  for (std::size_t i = 0; i < answers.size(); ++i) {
    const auto& a = answers[i];
    if (!a.degraded) continue;
    ASSERT_TRUE(a.served) << i;
    const auto& q = qs[i];
    ASSERT_TRUE(q.kind == serve::QueryKind::kBfsDist ||
                q.kind == serve::QueryKind::kSsspDist)
        << "degraded answer on a non-distance kind, query " << i;
    const std::uint64_t truth =
        q.kind == serve::QueryKind::kBfsDist
            ? static_cast<std::uint64_t>(
                  algo::reference::bfs(fx.g, q.source)[q.target])
            : algo::reference::sssp(fx.g, q.source)[q.target];
    ASSERT_NE(a.distance, serve::kUnreachable) << i;
    EXPECT_GE(a.distance, truth) << "unsound bound, query " << i;
    ++checked;
  }
  EXPECT_EQ(checked, rep.degraded_served);
}

TEST(BatchScheduler, ArmedOverloadReplayIsByteDeterministic) {
  SymmetricServeFixture fx;
  auto sc = overload_serve_cfg();
  sc.reshard.enabled = true;
  sc.reshard.imbalance_on = 1.2;
  sc.reshard.imbalance_off = 1.05;
  sc.reshard.sustain_evals = 1;
  sc.reshard.cooldown_evals = 0;
  sc.lifecycle.enabled = true;
  const auto qs = burst_trace(64, 4, 2);
  auto s1 = fx.make(sc);
  auto s2 = fx.make(sc);
  const auto a1 = s1.run(qs);
  const auto a2 = s2.run(qs);
  EXPECT_EQ(s1.report_json(), s2.report_json());
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].served, a2[i].served) << i;
    EXPECT_EQ(a1[i].degraded, a2[i].degraded) << i;
    EXPECT_EQ(a1[i].payload(), a2[i].payload()) << i;
  }
}

// ---- elastic tenant resharding -------------------------------------------

TEST(ReshardBlob, ChecksummedRoundtripDetectsCorruption) {
  const std::vector<char> payload = {'s', 'h', 'a', 'r', 'd', '\0', '\x7f'};
  const auto blob = serve::seal_blob(payload);
  ASSERT_GT(blob.size(), payload.size() + 16);
  EXPECT_TRUE(std::equal(serve::kReshardMagic.begin(),
                         serve::kReshardMagic.end(), blob.begin()));
  EXPECT_EQ(serve::open_blob(blob, "test"), payload);
  // Any flipped payload byte must be caught before absorption.
  auto bad = blob;
  bad[bad.size() - 9] ^= 0x01;  // last payload byte
  EXPECT_THROW((void)serve::open_blob(bad, "test"), std::runtime_error);
  auto bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)serve::open_blob(bad_magic, "test"), std::runtime_error);
  auto truncated = blob;
  truncated.pop_back();
  EXPECT_THROW((void)serve::open_blob(truncated, "test"), std::runtime_error);
}

serve::ServeConfig reshard_cfg(std::uint32_t homes) {
  serve::ServeConfig sc;
  sc.default_limits = {.rate_qps = 1e9, .burst = 1e9, .max_queued = 256};
  sc.reshard.enabled = true;
  sc.reshard.num_homes = homes;
  sc.reshard.imbalance_on = 1.2;
  sc.reshard.imbalance_off = 1.05;
  sc.reshard.sustain_evals = 1;
  sc.reshard.cooldown_evals = 0;
  return sc;
}

/// Skewed multi-batch trace: tenant 0 dominates, arrivals spaced so the
/// queue drains between bursts (several dispatch boundaries = several
/// reshard evaluations).
std::vector<serve::Query> skewed_trace() {
  std::vector<serve::Query> qs;
  std::uint64_t id = 0;
  for (std::uint32_t wave = 0; wave < 6; ++wave) {
    const double at_us = 400.0 * wave * 1000.0;
    for (std::uint32_t i = 0; i < 12; ++i) {
      const std::uint32_t tenant = i < 9 ? 0 : (i % 4);
      auto q = make_query(id, tenant, serve::QueryKind::kBfsDist,
                          static_cast<graph::VertexId>((31 * id + 5) % 600),
                          static_cast<graph::VertexId>((17 * id + 2) % 600),
                          at_us);
      ++id;
      qs.push_back(q);
    }
  }
  return qs;
}

TEST(BatchScheduler, ReshardingMigratesAndStaysBitExact) {
  SymmetricServeFixture fx;
  const auto qs = skewed_trace();
  auto plain = fx.make(reshard_cfg(1));  // single home: never migrates
  auto sharded = fx.make(reshard_cfg(2));
  const auto want = plain.run(qs);
  const auto got = sharded.run(qs);
  ASSERT_GT(sharded.report().reshard_migrations, 0u);
  EXPECT_GT(sharded.report().reshard_bytes, 0u);
  // Tenant 0 started on home 0 with 9/12 of the load; the manager must
  // have moved somebody off the hot home.
  const auto& mgr = sharded.resharder();
  EXPECT_EQ(mgr.migrations(), sharded.report().reshard_migrations);
  // Migration is bit-exact by construction: every answer payload is
  // byte-identical to the single-home scheduler's.
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].served, got[i].served) << i;
    EXPECT_EQ(want[i].payload(), got[i].payload()) << i;
  }
}

TEST(BatchScheduler, EpochBumpInvalidatesAcrossMigratedHomes) {
  SymmetricServeFixture fx;
  auto sched = fx.make(reshard_cfg(2));
  const auto qs = skewed_trace();
  (void)sched.run(qs);
  ASSERT_GT(sched.report().reshard_migrations, 0u);
  const auto runs_before = sched.report().engine_runs;

  // The graph "mutates": every cached row in every home — including
  // rows that crossed a migration blob — must be stranded.
  sched.bump_epoch();
  EXPECT_GE(sched.cache_stats().invalidations, 1u);

  std::vector<serve::Query> again;
  auto q = make_query(9000, 0, serve::QueryKind::kBfsDist,
                      qs.front().source, qs.front().target, 4.0e6);
  again.push_back(q);
  const auto answers = sched.run(again);
  ASSERT_TRUE(answers[0].served);
  EXPECT_FALSE(answers[0].from_cache);  // stale entry was not served
  EXPECT_GT(sched.report().engine_runs, runs_before);
}

// ---- fault-tolerant query lifecycle --------------------------------------

TEST(BatchScheduler, LifecycleExpiresHopelessQueriesExplicitly) {
  ServeFixture fx;
  serve::ServeConfig sc;
  sc.batch_width = 1;  // one source per run: the queue persists
  sc.default_limits = {.rate_qps = 1e9, .burst = 1e9, .max_queued = 64};
  sc.lifecycle.enabled = true;
  auto sched = fx.make(sc);
  std::vector<serve::Query> qs;
  auto lead = make_query(0, 0, serve::QueryKind::kBfsDist, 10, 5, 0.0);
  lead.priority = 0;
  auto doomed = make_query(1, 1, serve::QueryKind::kBfsDist, 11, 5, 0.0);
  doomed.priority = 1;
  doomed.deadline = sim::SimTime::micros(1.0);  // gone before dispatch 2
  qs.push_back(lead);
  qs.push_back(doomed);
  const auto answers = sched.run(qs);
  EXPECT_TRUE(answers[0].served);
  EXPECT_FALSE(answers[1].served);
  EXPECT_EQ(answers[1].reject_reason, serve::RejectReason::kDeadlineInfeasible);
  EXPECT_EQ(sched.report().lifecycle.timeouts, 1u);
  EXPECT_EQ(sched.report().served + sched.report().rejected,
            sched.report().submitted);
}

TEST(BatchScheduler, LifecycleRetriesTransientEngineFailure) {
  ServeFixture fx;
  serve::ServeConfig sc;
  sc.default_limits = {.rate_qps = 1e9, .burst = 1e9, .max_queued = 64};
  sc.lifecycle.enabled = true;
  sc.lifecycle.fail_attempts = 1;  // first engine attempt ever throws
  sc.lifecycle.max_retries = 2;
  auto sched = fx.make(sc);
  std::vector<serve::Query> qs;
  qs.push_back(make_query(0, 0, serve::QueryKind::kBfsDist, 3, 77, 0.0));
  qs.push_back(make_query(1, 1, serve::QueryKind::kSsspDist, 3, 77, 0.0));
  const auto answers = sched.run(qs);
  ASSERT_TRUE(answers[0].served);
  ASSERT_TRUE(answers[1].served);
  // The retry ran against the fault-free twin and produced the exact
  // answers — recovery is invisible in the payload.
  EXPECT_EQ(answers[0].distance, algo::reference::bfs(fx.g, 3)[77]);
  EXPECT_EQ(answers[1].distance, algo::reference::sssp(fx.g, 3)[77]);
  EXPECT_GE(sched.report().lifecycle.retries, 1u);
  EXPECT_EQ(sched.report().lifecycle.engine_failures, 0u);
}

TEST(BatchScheduler, LifecycleExhaustedRetriesRejectNotDrop) {
  ServeFixture fx;
  serve::ServeConfig sc;
  sc.default_limits = {.rate_qps = 1e9, .burst = 1e9, .max_queued = 64};
  sc.lifecycle.enabled = true;
  sc.lifecycle.fail_attempts = 1u << 20;  // every attempt fails
  sc.lifecycle.max_retries = 1;
  auto sched = fx.make(sc);
  std::vector<serve::Query> qs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    qs.push_back(make_query(i, static_cast<std::uint32_t>(i % 2),
                            serve::QueryKind::kBfsDist,
                            static_cast<graph::VertexId>(30 + i), 5,
                            static_cast<double>(i)));
  }
  const auto answers = sched.run(qs);
  for (std::size_t i = 0; i < answers.size(); ++i) {
    EXPECT_FALSE(answers[i].served) << i;
    EXPECT_EQ(answers[i].reject_reason, serve::RejectReason::kEngineFailed)
        << i;
    EXPECT_FALSE(answers[i].reject_detail.empty()) << i;
  }
  const auto& rep = sched.report();
  EXPECT_GE(rep.lifecycle.engine_failures, 1u);
  EXPECT_EQ(rep.served, 0u);
  EXPECT_EQ(rep.served + rep.rejected, rep.submitted);  // zero silent drops
}

TEST(BatchScheduler, LifecycleHedgesStragglingBatches) {
  ServeFixture fx;
  serve::ServeConfig sc;
  sc.batch_width = 2;
  sc.default_limits = {.rate_qps = 1e9, .burst = 1e9, .max_queued = 256};
  sc.lifecycle.enabled = true;
  sc.lifecycle.hedge = true;
  sc.lifecycle.hedge_factor = 0.5;  // every warm batch looks straggly
  auto sched = fx.make(sc);
  // Enough distinct sources for several batches: the first two warm the
  // estimate, later ones exceed 0.5x of it and hedge a duplicate.
  std::vector<serve::Query> qs;
  for (std::uint64_t i = 0; i < 12; ++i) {
    qs.push_back(make_query(i, 0, serve::QueryKind::kBfsDist,
                            static_cast<graph::VertexId>(40 + 2 * i), 5,
                            static_cast<double>(i)));
  }
  const auto answers = sched.run(qs);
  for (const auto& a : answers) EXPECT_TRUE(a.served);
  EXPECT_GE(sched.report().lifecycle.hedges, 1u);
  // Hedged duplicates never change answers, only completion instants.
  for (std::size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i].distance,
              static_cast<std::uint64_t>(
                  algo::reference::bfs(fx.g, qs[i].source)[5]));
  }
}

}  // namespace
}  // namespace sg
