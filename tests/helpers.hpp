#pragma once

#include <vector>

#include "comm/sync_structure.hpp"
#include "engine/config.hpp"
#include "graph/csr.hpp"
#include "partition/dist_graph.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

namespace sg::test {

/// Bridges-like topology for `n` devices with roomy memory (tests that
/// exercise OOM construct their own tight topology).
inline sim::Topology topo(int n) { return sim::Topology::bridges(n, 100.0); }

inline sim::CostParams params() {
  return sim::CostParams::for_scaled_datasets();
}

struct PreparedGraph {
  partition::DistGraph dist;
  comm::SyncStructure sync;

  PreparedGraph(const graph::Csr& g, partition::Policy policy, int devices,
                std::uint64_t seed = 1)
      : dist(partition::partition_graph(
            g, partition::PartitionOptions{.policy = policy,
                                           .num_devices = devices,
                                           .seed = seed})),
        sync(dist) {}
};

inline std::vector<partition::Policy> all_policies() {
  using partition::Policy;
  return {Policy::OEC, Policy::IEC, Policy::HVC,
          Policy::CVC, Policy::RANDOM, Policy::GREEDY};
}

inline engine::EngineConfig cfg(engine::ExecModel model,
                                comm::SyncMode mode = comm::SyncMode::kUO,
                                sim::Balancer bal = sim::Balancer::ALB) {
  engine::EngineConfig c;
  c.exec_model = model;
  c.sync_mode = mode;
  c.balancer = bal;
  return c;
}

}  // namespace sg::test
