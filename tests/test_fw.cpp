// Framework-facade tests: each facade's constraints (supported
// benchmarks, platforms, partitioning), configuration fidelity to the
// paper's description, and cross-framework result agreement.
#include <gtest/gtest.h>

#include "algo/reference.hpp"
#include "fw/benchmark.hpp"
#include "fw/dirgl.hpp"
#include "fw/groute.hpp"
#include "fw/gunrock.hpp"
#include "fw/lux.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"

namespace sg::fw {
namespace {

using test::params;

class FwTest : public testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::datasets::make("orkut");
    src_ = graph::datasets::default_source(g_);
  }
  graph::Csr g_;
  graph::VertexId src_ = 0;
};

// ---- Benchmark enum ---------------------------------------------------------

TEST(BenchmarkEnum, RoundTripsThroughStrings) {
  for (auto b : {Benchmark::kBfs, Benchmark::kCc, Benchmark::kKcore,
                 Benchmark::kPagerank, Benchmark::kSssp}) {
    EXPECT_EQ(benchmark_from_string(to_string(b)), b);
  }
  EXPECT_EQ(benchmark_from_string("pr"), Benchmark::kPagerank);
  EXPECT_THROW(benchmark_from_string("tc"), std::invalid_argument);
}

// ---- D-IrGL -------------------------------------------------------------------

TEST_F(FwTest, DirglRunsAllFiveBenchmarks) {
  const auto prep = prepare(g_, partition::Policy::CVC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  const auto cfg = DIrGL::default_config();
  for (auto b : {Benchmark::kBfs, Benchmark::kCc, Benchmark::kKcore,
                 Benchmark::kPagerank, Benchmark::kSssp}) {
    const auto r = DIrGL::run(b, prep, t, p, cfg);
    EXPECT_TRUE(r.ok) << to_string(b) << ": " << r.error;
  }
}

TEST_F(FwTest, DirglVariantResultsAgree) {
  const auto prep = prepare(g_, partition::Policy::IEC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  const auto ref = algo::reference::bfs(g_, src_);
  for (auto v : {engine::Variant::kVar1, engine::Variant::kVar2,
                 engine::Variant::kVar3, engine::Variant::kVar4}) {
    const auto r = DIrGL::run(Benchmark::kBfs, prep, t, p, DIrGL::config(v));
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dist32, ref) << engine::to_string(v);
  }
}

// ---- Lux -----------------------------------------------------------------------

TEST_F(FwTest, LuxSupportsOnlyCcAndPagerank) {
  const auto prep = prepare(g_, partition::Policy::IEC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  EXPECT_FALSE(Lux::run(Benchmark::kBfs, prep, t, p).ok);
  EXPECT_FALSE(Lux::run(Benchmark::kSssp, prep, t, p).ok);
  EXPECT_FALSE(Lux::run(Benchmark::kKcore, prep, t, p).ok);
  EXPECT_TRUE(Lux::run(Benchmark::kCc, prep, t, p).ok);
}

TEST_F(FwTest, LuxRejectsNonIecPartitions) {
  const auto prep = prepare(g_, partition::Policy::CVC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  const auto r = Lux::run(Benchmark::kCc, prep, t, p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("IEC"), std::string::npos);
}

TEST_F(FwTest, LuxCcIsCorrect) {
  const auto prep = prepare(g_, partition::Policy::IEC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  const auto r = Lux::run(Benchmark::kCc, prep, t, p);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.labels, algo::reference::cc(g_));
}

TEST_F(FwTest, LuxUsesStaticMemoryPool) {
  const auto prep = prepare(g_, partition::Policy::IEC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  const auto r = Lux::run(Benchmark::kCc, prep, t, p);
  ASSERT_TRUE(r.ok);
  const auto expected = static_cast<std::uint64_t>(
      Lux::kStaticPoolFraction *
      static_cast<double>(t.min_device_memory()));
  for (auto peak : r.stats.peak_memory) EXPECT_EQ(peak, expected);
}

TEST_F(FwTest, LuxPagerankApproximatesConvergedRanks) {
  const auto prep = prepare(g_, partition::Policy::IEC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  RunParams rp;
  rp.lux_pr_rounds = 60;
  const auto r = Lux::run(Benchmark::kPagerank, prep, t, p, rp);
  ASSERT_TRUE(r.ok);
  // Recompute-style pagerank normalizes differently (rank_0 = 1/N) than
  // the residual formulation; compare rankings, not values: the top
  // vertex by reference rank must rank near the top for Lux too.
  const auto ref = algo::reference::pagerank(g_, 0.85f, 1e-7f);
  const auto top_ref = static_cast<std::size_t>(std::distance(
      ref.begin(), std::max_element(ref.begin(), ref.end())));
  const auto top_lux = static_cast<std::size_t>(std::distance(
      r.ranks.begin(), std::max_element(r.ranks.begin(), r.ranks.end())));
  EXPECT_EQ(top_ref, top_lux);
}

// ---- Gunrock ---------------------------------------------------------------------

TEST_F(FwTest, GunrockRequiresSingleHostAndRandomPartition) {
  const auto prep = prepare(g_, partition::Policy::RANDOM, 4);
  const auto multi_host = test::topo(4);  // bridges: 2 hosts
  const auto p = params();
  EXPECT_FALSE(Gunrock::run(Benchmark::kBfs, prep, multi_host, p).ok);

  const auto single = sim::Topology::tuxedo(4, 100.0);
  EXPECT_TRUE(Gunrock::run(Benchmark::kBfs, prep, single, p).ok);

  const auto oec_prep = prepare(g_, partition::Policy::OEC, 4);
  EXPECT_FALSE(Gunrock::run(Benchmark::kBfs, oec_prep, single, p).ok);
}

TEST_F(FwTest, GunrockOmitsPagerankAndKcore) {
  const auto prep = prepare(g_, partition::Policy::RANDOM, 2);
  const auto single = sim::Topology::tuxedo(2, 100.0);
  const auto p = params();
  EXPECT_FALSE(Gunrock::run(Benchmark::kPagerank, prep, single, p).ok);
  EXPECT_FALSE(Gunrock::run(Benchmark::kKcore, prep, single, p).ok);
}

TEST_F(FwTest, GunrockDirectionOptBfsIsCorrect) {
  const auto prep = prepare(g_, partition::Policy::RANDOM, 4);
  const auto single = sim::Topology::tuxedo(4, 100.0);
  const auto p = params();
  const auto r = Gunrock::run(Benchmark::kBfs, prep, single, p);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dist32, algo::reference::bfs(g_, src_));
}

TEST_F(FwTest, GunrockDirectionOptSavesWorkOnLowDiameterInput) {
  // Direction optimization pays off on social graphs: fewer edges
  // relaxed than plain push bfs (Table II's Gunrock advantage).
  const auto rnd_prep = prepare(g_, partition::Policy::RANDOM, 4);
  const auto single = sim::Topology::tuxedo(4, 100.0);
  const auto p = params();
  const auto gunrock = Gunrock::run(Benchmark::kBfs, rnd_prep, single, p);
  ASSERT_TRUE(gunrock.ok);
  const auto dirgl = DIrGL::run(Benchmark::kBfs, rnd_prep, single, p,
                                DIrGL::config(engine::Variant::kVar3));
  ASSERT_TRUE(dirgl.ok);
  EXPECT_LT(gunrock.stats.total_work(), dirgl.stats.total_work());
}

// ---- Groute ----------------------------------------------------------------------

TEST_F(FwTest, GrouteRequiresSingleHostAndGreedyCut) {
  const auto prep = prepare(g_, partition::Policy::GREEDY, 4);
  const auto p = params();
  EXPECT_FALSE(Groute::run(Benchmark::kBfs, prep, test::topo(4), p).ok);
  const auto single = sim::Topology::tuxedo(4, 100.0);
  EXPECT_TRUE(Groute::run(Benchmark::kBfs, prep, single, p).ok);
  const auto rnd = prepare(g_, partition::Policy::RANDOM, 4);
  EXPECT_FALSE(Groute::run(Benchmark::kBfs, rnd, single, p).ok);
  EXPECT_FALSE(Groute::run(Benchmark::kKcore, prep, single, p).ok);
}

TEST_F(FwTest, GroutePointerJumpCcIsCorrect) {
  const auto prep = prepare(g_, partition::Policy::GREEDY, 4);
  const auto single = sim::Topology::tuxedo(4, 100.0);
  const auto p = params();
  const auto r = Groute::run(Benchmark::kCc, prep, single, p);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.labels, algo::reference::cc(g_));
}

TEST_F(FwTest, GroutePointerJumpConvergesInFewerRoundsThanLabelProp) {
  // Pointer jumping collapses each local partition in one sweep, so on a
  // high-diameter input (a long path) it needs a handful of rounds while
  // plain label propagation needs O(diameter) rounds.
  const auto path = graph::path_graph(2048);
  const auto prep = prepare(path, partition::Policy::GREEDY, 4);
  const auto single = sim::Topology::tuxedo(4, 100.0);
  const auto p = params();
  const auto groute = Groute::run(Benchmark::kCc, prep, single, p);
  ASSERT_TRUE(groute.ok);
  EXPECT_EQ(groute.labels, algo::reference::cc(path));
  const auto dirgl = DIrGL::run(Benchmark::kCc, prep, single, p,
                                DIrGL::config(engine::Variant::kVar3));
  ASSERT_TRUE(dirgl.ok);
  EXPECT_LT(groute.stats.global_rounds * 10, dirgl.stats.global_rounds);
}

// ---- cross-framework agreement -----------------------------------------------------

TEST_F(FwTest, AllFrameworksAgreeOnCcLabels) {
  const auto p = params();
  const auto single = sim::Topology::tuxedo(4, 100.0);
  const auto ref = algo::reference::cc(g_);

  const auto dirgl = DIrGL::run(
      Benchmark::kCc, prepare(g_, partition::Policy::CVC, 4), single, p,
      DIrGL::default_config());
  const auto lux = Lux::run(Benchmark::kCc,
                            prepare(g_, partition::Policy::IEC, 4), single,
                            p);
  const auto gunrock = Gunrock::run(
      Benchmark::kCc, prepare(g_, partition::Policy::RANDOM, 4), single, p);
  const auto groute = Groute::run(
      Benchmark::kCc, prepare(g_, partition::Policy::GREEDY, 4), single, p);
  ASSERT_TRUE(dirgl.ok && lux.ok && gunrock.ok && groute.ok);
  EXPECT_EQ(dirgl.labels, ref);
  EXPECT_EQ(lux.labels, ref);
  EXPECT_EQ(gunrock.labels, ref);
  EXPECT_EQ(groute.labels, ref);
}

}  // namespace
}  // namespace sg::fw
