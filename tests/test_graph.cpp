// Unit tests for the graph substrate: CSR construction, transpose,
// generators, the nine scaled dataset analogues, property analysis, and
// file I/O round trips.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <unistd.h>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

namespace sg::graph {
namespace {

// ---- build_csr ----------------------------------------------------------

TEST(BuildCsr, SortsAdjacencyByDestination) {
  const auto g = build_csr({{0, 3, 1}, {0, 1, 1}, {0, 2, 1}}, 4);
  ASSERT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  EXPECT_EQ(g.neighbors(0)[2], 3u);
}

TEST(BuildCsr, DedupKeepsMinimumWeight) {
  const auto g =
      build_csr({{0, 1, 9}, {0, 1, 3}, {0, 1, 7}}, 2, /*weighted=*/true);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_weight(0), 3u);
}

TEST(BuildCsr, NoDedupKeepsParallelEdges) {
  const auto g = build_csr({{0, 1, 1}, {0, 1, 1}}, 2, false, /*dedup=*/false);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(BuildCsr, InfersVertexCount) {
  const auto g = build_csr({{0, 7, 1}});
  EXPECT_EQ(g.num_vertices(), 8u);
}

TEST(BuildCsr, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(build_csr({{0, 5, 1}}, 3), std::invalid_argument);
}

TEST(BuildCsr, EmptyAdjacencyForIsolatedVertices) {
  const auto g = build_csr({{0, 1, 1}}, 5);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
}

// ---- transpose -----------------------------------------------------------

TEST(Transpose, ReversesEdgesAndCarriesWeights) {
  const auto g = build_csr({{0, 1, 5}, {0, 2, 7}, {2, 1, 9}}, 3, true);
  const auto r = g.transpose();
  EXPECT_EQ(r.num_edges(), 3u);
  ASSERT_EQ(r.degree(1), 2u);  // in-edges of 1: from 0 (w5) and 2 (w9)
  EXPECT_EQ(r.neighbors(1)[0], 0u);
  EXPECT_EQ(r.weights(1)[0], 5u);
  EXPECT_EQ(r.neighbors(1)[1], 2u);
  EXPECT_EQ(r.weights(1)[1], 9u);
}

TEST(Transpose, IsInvolution) {
  const auto g = rmat({.scale = 8, .edge_factor = 4, .seed = 3});
  const auto back = g.transpose().transpose();
  EXPECT_EQ(std::vector(g.offsets().begin(), g.offsets().end()),
            std::vector(back.offsets().begin(), back.offsets().end()));
  // Adjacency sets must match (order within a row may differ).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::multiset<VertexId> a(g.neighbors(v).begin(), g.neighbors(v).end());
    std::multiset<VertexId> b(back.neighbors(v).begin(),
                              back.neighbors(v).end());
    ASSERT_EQ(a, b) << "vertex " << v;
  }
}

// ---- generators ------------------------------------------------------------

TEST(Generators, RmatProducesRequestedShape) {
  const auto g = rmat({.scale = 10, .edge_factor = 8, .seed = 1});
  EXPECT_EQ(g.num_vertices(), 1024u);
  // Dedup and self-loop removal shave some edges but most survive.
  EXPECT_GT(g.num_edges(), 4000u);
  EXPECT_LE(g.num_edges(), 8192u);
}

TEST(Generators, RmatIsDeterministic) {
  const auto a = rmat({.scale = 9, .edge_factor = 4, .seed = 11});
  const auto b = rmat({.scale = 9, .edge_factor = 4, .seed = 11});
  EXPECT_EQ(std::vector(a.dsts().begin(), a.dsts().end()),
            std::vector(b.dsts().begin(), b.dsts().end()));
}

TEST(Generators, RmatIsSkewed) {
  const auto g = rmat({.scale = 12, .edge_factor = 16, .seed = 5});
  const auto props = analyze(g);
  // Power-law: the max degree far exceeds the average.
  EXPECT_GT(static_cast<double>(props.max_out_degree),
            10.0 * props.avg_degree);
}

TEST(Generators, SyntheticHubDegreesMatchSpec) {
  SyntheticSpec s;
  s.vertices = 4000;
  s.edges = 40000;
  s.hub_out_frac = 0.02;
  s.hub_in_frac = 0.05;
  s.seed = 9;
  const auto g = synthetic(s);
  const auto props = analyze(g);
  EXPECT_GE(props.max_out_degree, 60u);   // ~0.02*4000 minus collisions
  EXPECT_GE(props.max_in_degree, 150u);   // ~0.05*4000
}

TEST(Generators, SyntheticCommunitsChainRaisesDiameter) {
  SyntheticSpec low;
  low.vertices = 3000;
  low.edges = 30000;
  low.communities = 1;
  low.seed = 4;
  SyntheticSpec high = low;
  high.communities = 30;
  const auto d_low = analyze(synthetic(low)).approx_diameter;
  const auto d_high = analyze(synthetic(high)).approx_diameter;
  EXPECT_GT(d_high, d_low + 5);
}

TEST(Generators, SyntheticTailExtendsDiameter) {
  SyntheticSpec base;
  base.vertices = 2000;
  base.edges = 20000;
  base.seed = 2;
  SyntheticSpec tailed = base;
  tailed.tail_length = 120;
  const auto d_base = analyze(synthetic(base)).approx_diameter;
  const auto d_tail = analyze(synthetic(tailed)).approx_diameter;
  EXPECT_GE(d_tail, d_base + 100);
}

TEST(Generators, SyntheticIsWeaklyConnected) {
  SyntheticSpec s;
  s.vertices = 2000;
  s.edges = 10000;
  s.communities = 8;
  s.tail_length = 40;
  s.seed = 6;
  EXPECT_TRUE(weakly_connected(synthetic(s)));
}

TEST(Generators, DeterministicShapes) {
  EXPECT_EQ(path_graph(5, false).num_edges(), 4u);
  EXPECT_EQ(path_graph(5, true).num_edges(), 8u);
  EXPECT_EQ(cycle_graph(6).num_edges(), 6u);
  EXPECT_EQ(star_graph(9).num_edges(), 9u);
  EXPECT_EQ(star_graph(9).degree(0), 9u);
  EXPECT_EQ(complete_graph(5).num_edges(), 20u);
  EXPECT_EQ(grid_graph(3, 4).num_vertices(), 12u);
  EXPECT_EQ(grid_graph(3, 4).num_edges(), 2u * (3 * 3 + 2 * 4));
}

TEST(Generators, ErdosRenyiDensityNearP) {
  const auto g = erdos_renyi(200, 0.05, 17);
  const double expected = 0.05 * 200 * 199;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.2);
}

// ---- weights ------------------------------------------------------------------

TEST(Weights, RandomWeightsInRangeAndDeterministic) {
  const auto g = rmat({.scale = 8, .edge_factor = 4, .seed = 1});
  const auto w1 = add_random_weights(g, 1, 100, 42);
  const auto w2 = add_random_weights(g, 1, 100, 42);
  ASSERT_TRUE(w1.has_weights());
  for (EdgeId e = 0; e < w1.num_edges(); ++e) {
    ASSERT_GE(w1.edge_weight(e), 1u);
    ASSERT_LE(w1.edge_weight(e), 100u);
    ASSERT_EQ(w1.edge_weight(e), w2.edge_weight(e));
  }
}

// ---- properties -----------------------------------------------------------------

TEST(Properties, PathDiameterIsLength) {
  const auto p = analyze(path_graph(50, false));
  EXPECT_EQ(p.approx_diameter, 49u);
  EXPECT_EQ(p.num_edges, 49u);
  EXPECT_EQ(p.max_out_degree, 1u);
}

TEST(Properties, StarShape) {
  const auto p = analyze(star_graph(30));
  EXPECT_EQ(p.max_out_degree, 30u);
  EXPECT_EQ(p.max_in_degree, 1u);
  EXPECT_EQ(p.approx_diameter, 2u);
}

TEST(Properties, HumanCountFormats) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(1500), "1.5K");
  EXPECT_EQ(human_count(2300000), "2.3M");
  EXPECT_EQ(human_count(5100000000ull), "5.1B");
}

// ---- datasets --------------------------------------------------------------------

TEST(Datasets, RegistryHasNineInputsInThreeCategories) {
  ASSERT_EQ(datasets::registry().size(), 9u);
  EXPECT_EQ(datasets::names(datasets::Category::kSmall).size(), 3u);
  EXPECT_EQ(datasets::names(datasets::Category::kMedium).size(), 3u);
  EXPECT_EQ(datasets::names(datasets::Category::kLarge).size(), 3u);
  EXPECT_THROW(datasets::info("nope"), std::out_of_range);
}

TEST(Datasets, AnaloguesPreserveDensity) {
  // |E|/|V| of each analogue should be close to the paper's Table I.
  for (const auto& d : datasets::registry()) {
    const auto g = datasets::make(d.name);
    const double paper_density = static_cast<double>(d.paper_edges) /
                                 static_cast<double>(d.paper_vertices);
    const double got = static_cast<double>(g.num_edges()) /
                       static_cast<double>(g.num_vertices());
    EXPECT_GT(got, paper_density * 0.5) << d.name;
    EXPECT_LT(got, paper_density * 1.6) << d.name;
  }
}

TEST(Datasets, DiameterOrderingMatchesPaper) {
  // Key structural knob: uk14 has by far the largest diameter; social
  // networks (orkut, twitter) stay small (Table I).
  const auto d_orkut = analyze(datasets::make("orkut")).approx_diameter;
  const auto d_uk07 = analyze(datasets::make("uk07")).approx_diameter;
  const auto d_uk14 = analyze(datasets::make("uk14")).approx_diameter;
  EXPECT_LT(d_orkut, 15u);
  EXPECT_GT(d_uk07, 30u);
  EXPECT_GT(d_uk14, 200u);
  EXPECT_GT(d_uk14, 2 * d_uk07);
}

TEST(Datasets, WebCrawlsHaveHugeMaxInDegree) {
  // clueweb12's max in-degree is ~7.7% of |V| (Table I) — the knob that
  // drives the ALB-vs-TWC pagerank result.
  const auto g = datasets::make("clueweb12");
  const auto p = analyze(g);
  EXPECT_GT(static_cast<double>(p.max_in_degree),
            0.03 * static_cast<double>(p.num_vertices));
  EXPECT_GT(p.max_in_degree, 10 * p.max_out_degree);
}

TEST(Datasets, TwitterHasCelebrityOutHub) {
  const auto p = analyze(datasets::make("twitter50"));
  EXPECT_GT(static_cast<double>(p.max_out_degree),
            0.008 * static_cast<double>(p.num_vertices));
}

TEST(Datasets, DeterministicAndConnected) {
  const auto a = datasets::make("uk07", 42);
  const auto b = datasets::make("uk07", 42);
  EXPECT_EQ(std::vector(a.dsts().begin(), a.dsts().end()),
            std::vector(b.dsts().begin(), b.dsts().end()));
  EXPECT_TRUE(weakly_connected(a));
}

TEST(Datasets, WeightedVariantHasWeights) {
  const auto g = datasets::make_weighted("rmat23");
  ASSERT_TRUE(g.has_weights());
  for (EdgeId e = 0; e < std::min<EdgeId>(1000, g.num_edges()); ++e) {
    ASSERT_GE(g.edge_weight(e), 1u);
    ASSERT_LE(g.edge_weight(e), 100u);
  }
}

TEST(Datasets, DefaultSourceIsMaxOutDegree) {
  const auto g = star_graph(10);
  EXPECT_EQ(datasets::default_source(g), 0u);
}

// ---- io --------------------------------------------------------------------------

class IoTest : public testing::Test {
 protected:
  std::filesystem::path tmp() const {
    return std::filesystem::temp_directory_path() /
           ("sg_io_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  path_ = tmp();
  const auto g = add_random_weights(
      rmat({.scale = 7, .edge_factor = 4, .seed = 2}), 1, 50, 3);
  write_edge_list(g, path_);
  const auto back = read_edge_list(path_);
  // Vertex count is inferred from the max endpoint, so trailing isolated
  // vertices may be dropped; edges and adjacency must survive exactly.
  ASSERT_LE(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (VertexId v = 0; v < back.num_vertices(); ++v) {
    ASSERT_EQ(std::vector(back.neighbors(v).begin(), back.neighbors(v).end()),
              std::vector(g.neighbors(v).begin(), g.neighbors(v).end()));
  }
  EXPECT_TRUE(back.has_weights());
}

TEST_F(IoTest, BinaryRoundTripIsExact) {
  path_ = tmp();
  const auto g = add_random_weights(
      rmat({.scale = 8, .edge_factor = 8, .seed = 4}), 1, 100, 5);
  write_binary(g, path_);
  const auto back = read_binary(path_);
  EXPECT_EQ(std::vector(back.offsets().begin(), back.offsets().end()),
            std::vector(g.offsets().begin(), g.offsets().end()));
  EXPECT_EQ(std::vector(back.dsts().begin(), back.dsts().end()),
            std::vector(g.dsts().begin(), g.dsts().end()));
  EXPECT_EQ(std::vector(back.edge_weights().begin(),
                        back.edge_weights().end()),
            std::vector(g.edge_weights().begin(), g.edge_weights().end()));
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  path_ = tmp();
  {
    std::ofstream out(path_);
    out << "not a graph";
  }
  EXPECT_THROW(read_binary(path_), std::runtime_error);
}

TEST_F(IoTest, EdgeListSkipsComments) {
  path_ = tmp();
  {
    std::ofstream out(path_);
    out << "# comment\n% other comment\n0 1\n1 2\n";
  }
  const auto g = read_edge_list(path_);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.has_weights());
}

}  // namespace
}  // namespace sg::graph
