// Unit tests for the cluster-simulation substrate: RNG, event queue,
// thread pool, topology, device memory accounting, GPU cost model, and
// interconnect transfer model.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "sim/cost_params.hpp"
#include "sim/device_memory.hpp"
#include "sim/event_queue.hpp"
#include "sim/gpu_cost_model.hpp"
#include "sim/interconnect.hpp"
#include "sim/rng.hpp"
#include "sim/sim_time.hpp"
#include "sim/thread_pool.hpp"
#include "sim/topology.hpp"

namespace sg::sim {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForFixedSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedCoversRange) {
  Rng rng{3};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{11};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng rng{13};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.range(5, 8);
    ASSERT_GE(x, 5u);
    ASSERT_LE(x, 8u);
    saw_lo |= (x == 5);
    saw_hi |= (x == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng a{5};
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

// ---- SimTime ----------------------------------------------------------------

TEST(SimTimeT, ArithmeticAndComparisons) {
  const SimTime a{1.5}, b{0.5};
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 1.0);
  EXPECT_DOUBLE_EQ((a * 2.0).seconds(), 3.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(max(a, b), a);
  EXPECT_EQ(min(a, b), b);
  EXPECT_DOUBLE_EQ(SimTime::micros(5).seconds(), 5e-6);
  EXPECT_DOUBLE_EQ(SimTime::millisec(5).seconds(), 5e-3);
}

// ---- EventQueue --------------------------------------------------------------

TEST(EventQueueT, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime{3.0}, [&](SimTime) { order.push_back(3); });
  q.schedule(SimTime{1.0}, [&](SimTime) { order.push_back(1); });
  q.schedule(SimTime{2.0}, [&](SimTime) { order.push_back(2); });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueT, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime{1.0}, [&order, i](SimTime) { order.push_back(i); });
  }
  q.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueT, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    ++fired;
    if (fired < 5) q.schedule(t + SimTime{1.0}, chain);
  };
  q.schedule(SimTime{0.0}, chain);
  const SimTime last = q.run_to_completion();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(last.seconds(), 4.0);
}

TEST(EventQueueT, NowTracksLastFiring) {
  EventQueue q;
  q.schedule(SimTime{2.5}, [](SimTime) {});
  q.run_next();
  EXPECT_DOUBLE_EQ(q.now().seconds(), 2.5);
}

// ---- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolT, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi,
                                 std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolT, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolT, RepeatedInvocationsWork) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi,
                                  std::size_t) {
      std::uint64_t local = 0;
      for (std::size_t i = lo; i < hi; ++i) local += i;
      sum += local;
    });
  }
  EXPECT_EQ(sum.load(), 50ull * (99 * 100 / 2));
}

// ---- Topology ------------------------------------------------------------------

TEST(TopologyT, BridgesPairsGpusPerHost) {
  const auto t = Topology::bridges(8);
  EXPECT_EQ(t.num_devices(), 8);
  EXPECT_EQ(t.num_hosts(), 4);
  EXPECT_EQ(t.host_of(0), 0);
  EXPECT_EQ(t.host_of(1), 0);
  EXPECT_EQ(t.host_of(2), 1);
  EXPECT_TRUE(t.same_host(0, 1));
  EXPECT_FALSE(t.same_host(1, 2));
  EXPECT_EQ(t.spec(3).name, "P100");
}

TEST(TopologyT, TuxedoMixesGpuModels) {
  const auto t = Topology::tuxedo(6);
  EXPECT_EQ(t.num_hosts(), 1);
  EXPECT_EQ(t.spec(0).name, "K80");
  EXPECT_EQ(t.spec(3).name, "K80");
  EXPECT_EQ(t.spec(4).name, "GTX1080");
  EXPECT_EQ(t.spec(5).name, "GTX1080");
  // GTX 1080 has 8 GB vs K80's 12 GB: min capacity is the 1080's.
  EXPECT_EQ(t.min_device_memory(), t.spec(5).memory_bytes);
  EXPECT_LT(t.spec(5).memory_bytes, t.spec(0).memory_bytes);
}

TEST(TopologyT, RejectsInvalidShapes) {
  EXPECT_THROW(Topology::bridges(0), std::invalid_argument);
  EXPECT_THROW(Topology::tuxedo(7), std::invalid_argument);
  EXPECT_THROW(Topology::bridges(4).host_of(17), std::out_of_range);
}

TEST(TopologyT, MemoryScalesWithDatasetScale) {
  const auto big = GpuSpec::p100(1.0);
  const auto scaled = GpuSpec::p100(1000.0);
  EXPECT_NEAR(static_cast<double>(big.memory_bytes) / 1000.0,
              static_cast<double>(scaled.memory_bytes),
              static_cast<double>(big.memory_bytes) * 1e-3);
}

// ---- DeviceMemory ------------------------------------------------------------

TEST(DeviceMemoryT, TracksUsageAndPeak) {
  DeviceMemory mem(0, 1000);
  mem.allocate("a", 400);
  mem.allocate("b", 300);
  EXPECT_EQ(mem.in_use(), 700u);
  mem.free("a");
  EXPECT_EQ(mem.in_use(), 300u);
  EXPECT_EQ(mem.peak(), 700u);
  EXPECT_EQ(mem.usage("b"), 300u);
  EXPECT_EQ(mem.usage("a"), 0u);
}

TEST(DeviceMemoryT, ThrowsOnExhaustion) {
  DeviceMemory mem(3, 1000);
  mem.allocate("a", 900);
  try {
    mem.allocate("b", 200);
    FAIL() << "expected OutOfDeviceMemory";
  } catch (const OutOfDeviceMemory& e) {
    EXPECT_EQ(e.device(), 3);
    EXPECT_EQ(e.requested(), 200u);
    EXPECT_EQ(e.in_use(), 900u);
    EXPECT_EQ(e.capacity(), 1000u);
  }
}

TEST(DeviceMemoryT, AccumulatesUnderSameTag) {
  DeviceMemory mem(0, 1000);
  mem.allocate("buf", 100);
  mem.allocate("buf", 150);
  EXPECT_EQ(mem.usage("buf"), 250u);
}

TEST(DeviceMemoryT, StaticPoolChargesUpFront) {
  DeviceMemory mem(0, 1000);
  mem.reserve_static(600);
  EXPECT_EQ(mem.in_use(), 600u);
  EXPECT_EQ(mem.peak(), 600u);
  mem.allocate("x", 100);            // carved from the pool
  EXPECT_EQ(mem.in_use(), 600u);     // usage unchanged: Lux semantics
  EXPECT_THROW(mem.allocate("y", 600), OutOfDeviceMemory);  // pool full
  EXPECT_THROW(mem.reserve_static(10), std::logic_error);
}

// ---- GpuCostModel -------------------------------------------------------------

class CostModelTest : public testing::Test {
 protected:
  GpuSpec spec = GpuSpec::p100();
  CostParams params = CostParams::for_scaled_datasets();
  GpuCostModel model{spec, params};
};

TEST_F(CostModelTest, ZeroWorkIsFree) {
  EXPECT_EQ(model.kernel_time({}, Balancer::TWC), SimTime::zero());
}

TEST_F(CostModelTest, MoreWorkTakesLonger) {
  KernelSchedule small{1000, 100, 10, false};
  KernelSchedule large{100000, 100, 1000, false};
  EXPECT_LT(model.kernel_time(small, Balancer::TWC),
            model.kernel_time(large, Balancer::TWC));
}

TEST_F(CostModelTest, BalancedScheduleApproachesAggregateThroughput) {
  // Perfectly balanced: max_block = total / blocks.
  const std::uint64_t total = 224000000;
  KernelSchedule sched{total, 1000,
                       total / static_cast<std::uint64_t>(spec.thread_blocks),
                       false};
  const double expected = static_cast<double>(total) / params.edge_throughput;
  const double got = model.kernel_time(sched, Balancer::TWC).seconds();
  EXPECT_NEAR(got, expected, expected * 0.05);
}

TEST_F(CostModelTest, ImbalancedBlockDominatesKernelTime) {
  const std::uint64_t total = 1000000;
  KernelSchedule balanced{total, 100, total / 224, false};
  KernelSchedule skewed{total, 100, total / 2, false};
  EXPECT_GT(model.kernel_time(skewed, Balancer::TWC).seconds(),
            model.kernel_time(balanced, Balancer::TWC).seconds() * 10);
}

TEST_F(CostModelTest, LbPaysEfficiencyTaxOverTwc) {
  KernelSchedule sched{100000, 1000, 1000, false};
  EXPECT_GT(model.kernel_time(sched, Balancer::LB),
            model.kernel_time(sched, Balancer::TWC));
}

TEST_F(CostModelTest, AlbPaysInspectionOverhead) {
  KernelSchedule sched{1000, 10, 100, false};
  EXPECT_GT(model.kernel_time(sched, Balancer::ALB),
            model.kernel_time(sched, Balancer::TWC));
}

TEST_F(CostModelTest, ExtractionScalesWithScanAndBytes) {
  const auto t1 = model.extract_updates_time(1000, 100);
  const auto t2 = model.extract_updates_time(1000000, 100);
  const auto t3 = model.extract_updates_time(1000, 10000000);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t1, t3);
}

// ---- Interconnect --------------------------------------------------------------

class InterconnectTest : public testing::Test {
 protected:
  Topology topo = Topology::bridges(4);
  CostParams params = CostParams::for_scaled_datasets();
  Interconnect net{topo, params};
};

TEST_F(InterconnectTest, ZeroBytesIsFree) {
  EXPECT_EQ(net.device_to_host(0), SimTime::zero());
  EXPECT_EQ(net.host_to_host(0, 2, 0), SimTime::zero());
}

TEST_F(InterconnectTest, SameHostSkipsNetwork) {
  // Devices 0,1 share a host: staging copy only, far cheaper than the
  // cross-host path of devices 0,2.
  const auto local = net.host_to_host(0, 1, 1 << 20);
  const auto remote = net.host_to_host(0, 2, 1 << 20);
  EXPECT_LT(local, remote);
}

TEST_F(InterconnectTest, DeviceToDeviceSumsThreeHops) {
  const std::uint64_t bytes = 1 << 20;
  const auto total = net.device_to_device(0, 2, bytes);
  const auto manual = net.device_to_host(bytes) +
                      net.host_to_host(0, 2, bytes) +
                      net.host_to_device(bytes);
  EXPECT_DOUBLE_EQ(total.seconds(), manual.seconds());
}

TEST_F(InterconnectTest, SelfTransferIsFree) {
  EXPECT_EQ(net.device_to_device(1, 1, 12345), SimTime::zero());
}

TEST_F(InterconnectTest, BandwidthTermGrowsLinearly) {
  const auto t1 = net.device_to_host(1 << 20);
  const auto t2 = net.device_to_host(1 << 21);
  const double lat = params.pcie_latency.seconds();
  EXPECT_NEAR((t2.seconds() - lat) / (t1.seconds() - lat), 2.0, 0.01);
}


TEST_F(InterconnectTest, GpudirectRemovesHostStaging) {
  CostParams direct = params;
  direct.gpudirect = true;
  const Interconnect fast{topo, direct};
  const std::uint64_t bytes = 1 << 20;
  // Device<->host hops disappear; the data moves on the direct link.
  EXPECT_EQ(fast.device_to_host(bytes), SimTime::zero());
  EXPECT_EQ(fast.host_to_device(bytes), SimTime::zero());
  // The end-to-end path is strictly cheaper, same- and cross-host.
  EXPECT_LT(fast.device_to_device(0, 1, bytes).seconds(),
            net.device_to_device(0, 1, bytes).seconds());
  EXPECT_LT(fast.device_to_device(0, 2, bytes).seconds(),
            net.device_to_device(0, 2, bytes).seconds());
}

TEST_F(InterconnectTest, GpudirectSameHostUsesPciPeerToPeer) {
  CostParams direct = params;
  direct.gpudirect = true;
  const Interconnect fast{topo, direct};
  const std::uint64_t bytes = 1 << 20;
  const double expected = direct.pcie_latency.seconds() +
                          static_cast<double>(bytes) / direct.pcie_bw;
  EXPECT_DOUBLE_EQ(fast.device_to_device(0, 1, bytes).seconds(), expected);
}

TEST(CostParamsT, ScalingDividesLatenciesOnly) {
  const CostParams base;
  const CostParams scaled = base.scaled(100.0);
  EXPECT_DOUBLE_EQ(scaled.pcie_latency.seconds(),
                   base.pcie_latency.seconds() / 100.0);
  EXPECT_DOUBLE_EQ(scaled.net_latency.seconds(),
                   base.net_latency.seconds() / 100.0);
  EXPECT_DOUBLE_EQ(scaled.kernel_launch.seconds(),
                   base.kernel_launch.seconds() / 100.0);
  EXPECT_DOUBLE_EQ(scaled.edge_throughput, base.edge_throughput);
  EXPECT_DOUBLE_EQ(scaled.net_bw, base.net_bw);
}

}  // namespace
}  // namespace sg::sim
