// Critical-path analysis tests (sg_explain engine): categorization,
// the hand-built DAG walk with time-clamped attribution, the partition
// invariant (per-category times sum exactly to the critical-path
// length == makespan), engine-integration bounds against RunStats,
// Chrome-trace round-tripping, deterministic rendering, and the
// AS-vs-UO A/B where inter-host traffic must surface as the top
// bottleneck at 8 simulated devices.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "algo/bfs.hpp"
#include "engine/config.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

sim::SimTime t(double s) { return sim::SimTime{s}; }

graph::Csr tiny_graph() {
  graph::SyntheticSpec s;
  s.vertices = 400;
  s.edges = 3000;
  s.zipf_out = 0.6;
  s.zipf_in = 0.7;
  s.communities = 2;
  s.seed = 5;
  return graph::synthetic(s);
}

/// Runs bfs on the tiny graph with a tracer attached; returns the
/// result and leaves the spans in `tracer`.
algo::BfsResult traced_bfs(obs::Tracer& tracer, int devices,
                           engine::EngineConfig c,
                           const sim::CostParams& p = test::params()) {
  static graph::Csr g = tiny_graph();
  const graph::VertexId src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::OEC, devices);
  c.collect_trace = true;
  c.tracer = &tracer;
  return algo::run_bfs(prep.dist, prep.sync, topo(devices), p, c, src);
}

double sum_categories(const obs::CpAnalysis& a) {
  double s = 0.0;
  for (const auto& d : a.by_category) s += d.seconds();
  return s;
}

// ---- categorization -----------------------------------------------------

TEST(CritPath, CategorizeFollowsPaperTaxonomy) {
  using obs::categorize;
  using obs::CpCategory;
  using obs::SpanKind;
  EXPECT_EQ(categorize(SpanKind::kKernel, "kernel"), CpCategory::kCompute);
  EXPECT_EQ(categorize(SpanKind::kExtract, "reduce.extract"),
            CpCategory::kDeviceHost);
  EXPECT_EQ(categorize(SpanKind::kPcie, "bcast.downlink"),
            CpCategory::kDeviceHost);
  EXPECT_EQ(categorize(SpanKind::kApply, "reduce.apply"),
            CpCategory::kDeviceHost);
  EXPECT_EQ(categorize(SpanKind::kNet, "reduce.net"),
            CpCategory::kInterHost);
  // Same-host hops are DRAM staging copies, not network traffic.
  EXPECT_EQ(categorize(SpanKind::kNet, "reduce.staging"),
            CpCategory::kDeviceHost);
  EXPECT_EQ(categorize(SpanKind::kNet, "bcast.staging"),
            CpCategory::kDeviceHost);
  EXPECT_EQ(categorize(SpanKind::kWait, "wait.barrier"),
            CpCategory::kWait);
  EXPECT_EQ(categorize(SpanKind::kCheckpoint, "checkpoint"),
            CpCategory::kRuntime);
  EXPECT_EQ(categorize(SpanKind::kOther, "runtime.barrier"),
            CpCategory::kRuntime);
}

// ---- hand-built DAG walk ------------------------------------------------

// gpu0: kernel [0,1] -> extract [1,1.2] --link--> gpu1's wait.msg.
// gpu1: kernel [0,0.4], wait.msg [0.4,1.5], apply [1.5,1.7],
//       kernel [1.7,2.7].
// The path must run k2 <- apply <- wait.msg <- extract <- k0, and the
// wait segment must be clamped to [1.2, 1.5]: the wait only binds
// after its causal parent (the extract) finished.
TEST(CritPath, WalksLinksAndClampsWaitToCausalParent) {
  obs::Tracer tr;
  tr.require_tracks(2);
  tr.name_track(0, "gpu0");
  tr.name_track(1, "gpu1");
  tr.record(0, obs::SpanKind::kKernel, "kernel", t(0.0), t(1.0), 0, 1);
  const auto e0 =
      tr.record(0, obs::SpanKind::kExtract, "reduce.extract", t(1.0),
                t(1.2));
  tr.record(1, obs::SpanKind::kKernel, "kernel", t(0.0), t(0.4), 0, 1);
  const auto w = tr.record(1, obs::SpanKind::kWait, "wait.msg", t(0.4),
                           t(1.5));
  tr.link(e0, w);
  tr.record(1, obs::SpanKind::kApply, "reduce.apply", t(1.5), t(1.7));
  tr.record(1, obs::SpanKind::kKernel, "kernel", t(1.7), t(2.7), 0, 2);

  const auto view = obs::TraceView::from_tracer(tr);
  ASSERT_EQ(view.spans.size(), 6u);
  ASSERT_EQ(view.links.size(), 1u);

  const auto a = obs::analyze_critical_path(view);
  EXPECT_DOUBLE_EQ(a.makespan.seconds(), 2.7);
  EXPECT_DOUBLE_EQ(a.cp_length.seconds(), 2.7);
  using obs::CpCategory;
  EXPECT_NEAR(a.by_category[int(CpCategory::kCompute)].seconds(), 2.0,
              1e-12);
  EXPECT_NEAR(a.by_category[int(CpCategory::kDeviceHost)].seconds(), 0.4,
              1e-12);
  EXPECT_NEAR(a.by_category[int(CpCategory::kWait)].seconds(), 0.3,
              1e-12);
  EXPECT_NEAR(a.by_category[int(CpCategory::kIdle)].seconds(), 0.0, 1e-12);
  ASSERT_EQ(a.segments.size(), 5u);
  // Forward order after the reverse: k0, extract, wait, apply, k2.
  EXPECT_EQ(a.segments[0].track, 0);
  EXPECT_DOUBLE_EQ(a.segments[2].begin.seconds(), 1.2);  // clamped wait
  EXPECT_DOUBLE_EQ(a.segments[2].end.seconds(), 1.5);
  // Round context: round 1 covers the first kernel; round 2 covers the
  // communication that gated the second kernel plus the kernel itself.
  ASSERT_EQ(a.rounds.size(), 2u);
  EXPECT_EQ(a.rounds[0].round, 1u);
  EXPECT_NEAR(a.rounds[0].length.seconds(), 1.0, 1e-12);
  EXPECT_EQ(a.rounds[1].round, 2u);
  EXPECT_NEAR(a.rounds[1].length.seconds(), 1.7, 1e-12);
  // Blame: gpu0 contributes 1.2s, gpu1 1.5s; slack is complementary.
  ASSERT_EQ(a.tracks.size(), 2u);
  EXPECT_EQ(a.tracks[0].name, "gpu1");
  EXPECT_NEAR(a.tracks[0].on_path.seconds(), 1.5, 1e-12);
  EXPECT_NEAR(a.tracks[1].on_path.seconds(), 1.2, 1e-12);
  EXPECT_NEAR(a.tracks[1].slack.seconds(), 2.7 - 1.2, 1e-12);
}

TEST(CritPath, UntrackedPrefixBecomesIdle) {
  obs::Tracer tr;
  tr.require_tracks(1);
  tr.name_track(0, "gpu0");
  tr.record(0, obs::SpanKind::kKernel, "kernel", t(2.0), t(3.0), 0, 1);
  const auto a =
      obs::analyze_critical_path(obs::TraceView::from_tracer(tr));
  EXPECT_DOUBLE_EQ(a.cp_length.seconds(), 3.0);
  EXPECT_NEAR(a.by_category[int(obs::CpCategory::kIdle)].seconds(), 2.0,
              1e-12);
  ASSERT_EQ(a.segments.size(), 2u);
  EXPECT_EQ(a.segments.front().category, obs::CpCategory::kIdle);
  EXPECT_EQ(a.segments.front().span, obs::CpSegment::kNoSpan);
}

TEST(CritPath, EmptyTraceYieldsEmptyAnalysis) {
  obs::Tracer tr;
  const auto a =
      obs::analyze_critical_path(obs::TraceView::from_tracer(tr));
  EXPECT_DOUBLE_EQ(a.cp_length.seconds(), 0.0);
  EXPECT_TRUE(a.segments.empty());
  EXPECT_TRUE(a.tracks.empty());
}

// ---- engine integration -------------------------------------------------

TEST(CritPath, SingleDeviceCriticalPathEqualsTotalTime) {
  obs::Tracer tracer;
  const auto r = traced_bfs(tracer, 1, cfg(engine::ExecModel::kSync));
  const auto view = obs::TraceView::from_tracer(tracer);
  const auto a = obs::analyze_critical_path(view);
  // One device: everything is on the critical path, and the trace's
  // makespan is exactly the simulated end-to-end time.
  EXPECT_NEAR(a.cp_length.seconds(), r.stats.total_time.seconds(), 1e-9);
  EXPECT_NEAR(a.makespan.seconds(), r.stats.total_time.seconds(), 1e-9);
}

TEST(CritPath, CriticalPathBoundedByTotalTimeAndBlameSumsTo100) {
  for (const auto model :
       {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
    obs::Tracer tracer;
    const auto r = traced_bfs(tracer, 4, cfg(model));
    const auto view = obs::TraceView::from_tracer(tracer);
    const auto a = obs::analyze_critical_path(view);
    ASSERT_GT(a.cp_length.seconds(), 0.0);
    // The path can never exceed the simulated end-to-end time.
    EXPECT_LE(a.cp_length.seconds(),
              r.stats.total_time.seconds() + 1e-9);
    // The taxonomy partitions the path: blame sums to 100% +- 0.1%.
    EXPECT_NEAR(sum_categories(a), a.cp_length.seconds(),
                a.cp_length.seconds() * 1e-3);
    double pct = 0.0;
    for (int c = 0; c < obs::kNumCpCategories; ++c) {
      pct += a.category_pct(static_cast<obs::CpCategory>(c));
    }
    EXPECT_NEAR(pct, 100.0, 0.1);
    // Per-track on-path times partition it too.
    sim::SimTime on_path_total;
    for (const auto& b : a.tracks) on_path_total += b.on_path;
    EXPECT_NEAR(on_path_total.seconds(), a.cp_length.seconds(), 1e-9);
  }
}

// ---- Chrome trace round-trip --------------------------------------------

TEST(CritPath, ChromeTraceRoundTripPreservesAnalysis) {
  obs::Tracer tracer;
  traced_bfs(tracer, 4, cfg(engine::ExecModel::kSync));
  const auto live = obs::TraceView::from_tracer(tracer);
  const auto parsed = obs::TraceView::from_chrome_trace(
      obs::parse_json(tracer.chrome_trace_json()));

  ASSERT_EQ(parsed.spans.size(), live.spans.size());
  ASSERT_EQ(parsed.links.size(), live.links.size());
  EXPECT_EQ(parsed.track_names, live.track_names);

  const auto a_live = obs::analyze_critical_path(live);
  const auto a_parsed = obs::analyze_critical_path(parsed);
  // Timestamps round-trip through Chrome's microsecond doubles, so
  // ulp-level noise can split or merge sub-femtosecond idle slivers;
  // the attributed times themselves must agree to well under a
  // nanosecond.
  EXPECT_NEAR(a_parsed.cp_length.seconds(), a_live.cp_length.seconds(),
              1e-9);
  for (int c = 0; c < obs::kNumCpCategories; ++c) {
    EXPECT_NEAR(a_parsed.by_category[c].seconds(),
                a_live.by_category[c].seconds(), 1e-9)
        << "category " << c;
  }
}

TEST(CritPath, FromChromeTraceRejectsForeignSchemas) {
  EXPECT_THROW(
      (void)obs::TraceView::from_chrome_trace(obs::parse_json("{}")),
      std::runtime_error);
  // Spans without args.seq (an older or foreign trace) are rejected.
  const char* foreign =
      "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"k\",\"cat\":\"kernel\","
      "\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,\"args\":{}}]}";
  EXPECT_THROW(
      (void)obs::TraceView::from_chrome_trace(obs::parse_json(foreign)),
      std::runtime_error);
}

// ---- rendering ----------------------------------------------------------

TEST(CritPath, RenderingIsDeterministicAcrossIdenticalRuns) {
  std::string text[2];
  std::string json[2];
  for (int i = 0; i < 2; ++i) {
    obs::Tracer tracer;
    traced_bfs(tracer, 4, cfg(engine::ExecModel::kSync));
    const auto view = obs::TraceView::from_tracer(tracer);
    const auto a = obs::analyze_critical_path(view);
    std::ostringstream os;
    obs::render_explain_text(os, view, a);
    text[i] = os.str();
    json[i] = obs::render_explain_json(view, a);
  }
  EXPECT_EQ(text[0], text[1]);
  EXPECT_EQ(json[0], json[1]);

  const auto doc = obs::parse_json(json[0]);
  EXPECT_DOUBLE_EQ(doc.find("sg_explain_schema")->num_or(-1),
                   obs::kExplainSchemaVersion);
  ASSERT_NE(doc.find("breakdown"), nullptr);
  ASSERT_NE(doc.find("tracks"), nullptr);
  ASSERT_NE(doc.find("hints"), nullptr);
  EXPECT_GT(doc.find("cp_length_s")->num_or(-1), 0.0);
}

// ---- AS vs UO A/B -------------------------------------------------------

// The paper's core observation: at scale, AS ships whole proxy values
// cross-host every round while UO ships only updates, so when the
// cross-host links are the scarce resource the inter-host share of the
// critical path must be larger under AS — and at 8 simulated devices
// (4 hosts on Bridges) the analyzer should call inter-host traffic the
// top bottleneck for AS. The default test cost model has a fast,
// fully-overlapped network (the analyzer correctly reports ~0%
// inter-host there), so this A/B pins a slow Omni-Path link.
TEST(CritPath, FlagsInterHostAsTopBottleneckUnderASAtScale) {
  sim::CostParams slow_net = test::params();
  slow_net.net_bw = 5.0e7;  // 100x scarcer cross-host bandwidth
  slow_net.net_latency = sim::SimTime::micros(30.0);

  obs::Tracer as_tracer;
  traced_bfs(as_tracer, 8,
             cfg(engine::ExecModel::kSync, comm::SyncMode::kAS),
             slow_net);
  const auto as_view = obs::TraceView::from_tracer(as_tracer);
  const auto as = obs::analyze_critical_path(as_view);

  obs::Tracer uo_tracer;
  traced_bfs(uo_tracer, 8,
             cfg(engine::ExecModel::kSync, comm::SyncMode::kUO),
             slow_net);
  const auto uo_view = obs::TraceView::from_tracer(uo_tracer);
  const auto uo = obs::analyze_critical_path(uo_view);

  const double as_ih = as.category_pct(obs::CpCategory::kInterHost);
  const double uo_ih = uo.category_pct(obs::CpCategory::kInterHost);
  EXPECT_GT(as_ih, uo_ih);
  EXPECT_GT(as_ih, 0.0);

  // Inter-host is the single largest category on the AS critical path.
  for (int c = 0; c < obs::kNumCpCategories; ++c) {
    if (static_cast<obs::CpCategory>(c) == obs::CpCategory::kInterHost) {
      continue;
    }
    EXPECT_GT(as_ih, as.category_pct(static_cast<obs::CpCategory>(c)))
        << "category " << c << " beats inter-host";
  }
  // And the analyzer says so in its hints.
  bool hinted = false;
  for (const auto& h : as.hints) {
    if (h.find("inter-host") != std::string::npos) hinted = true;
  }
  EXPECT_TRUE(hinted);
}

}  // namespace
}  // namespace sg
