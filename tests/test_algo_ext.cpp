// Extension algorithms: delta-stepping sssp (ordered worklists) and
// push-style personalized pagerank — correctness over policies and
// execution models plus their distinguishing behavioural properties.
#include <gtest/gtest.h>

#include <numeric>

#include "algo/ppr.hpp"
#include "algo/reference.hpp"
#include "algo/sssp.hpp"
#include "algo/sssp_delta.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr weighted_testbed() {
  graph::SyntheticSpec s;
  s.vertices = 700;
  s.edges = 6000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.communities = 3;
  s.seed = 77;
  return graph::add_random_weights(graph::synthetic(s), 1, 100, 5);
}

struct ExtParam {
  partition::Policy policy;
  int devices;
  engine::ExecModel model;
};

std::string ext_name(const testing::TestParamInfo<ExtParam>& info) {
  return std::string(partition::to_string(info.param.policy)) + "_d" +
         std::to_string(info.param.devices) + "_" +
         engine::to_string(info.param.model);
}

std::vector<ExtParam> ext_grid() {
  std::vector<ExtParam> grid;
  for (auto policy : test::all_policies()) {
    for (auto model : {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
      grid.push_back({policy, 4, model});
    }
  }
  grid.push_back({partition::Policy::CVC, 8, engine::ExecModel::kAsync});
  grid.push_back({partition::Policy::IEC, 8, engine::ExecModel::kSync});
  return grid;
}

class ExtSweep : public testing::TestWithParam<ExtParam> {};

TEST_P(ExtSweep, DeltaSsspMatchesDijkstra) {
  const auto g = weighted_testbed();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const auto r = algo::run_sssp_delta(prep.dist, prep.sync, t, p,
                                      cfg(GetParam().model), src);
  EXPECT_EQ(r.dist, algo::reference::sssp(g, src));
}

TEST_P(ExtSweep, PprMatchesReference) {
  const auto g = weighted_testbed();
  const auto seed = graph::datasets::default_source(g);
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const double eps = 1e-9;
  const auto r =
      algo::run_ppr(prep.dist, prep.sync, t, p, cfg(GetParam().model),
                    seed, 0.15, eps);
  const auto ref = algo::reference::ppr(g, seed, 0.15, eps);
  ASSERT_EQ(r.mass.size(), ref.size());
  for (std::size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(r.mass[v], ref[v], 1e-5) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ExtSweep,
                         testing::ValuesIn(ext_grid()), ext_name);

TEST(DeltaSsspBehaviour, OrderedWorklistDoesLessWorkThanChaotic) {
  // Delta-stepping's entire point: far fewer (re-)relaxations on
  // weighted graphs than chaotic relaxation.
  const auto g = graph::datasets::make_weighted("uk07");
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::IEC, 8);
  const auto t = topo(8);
  const auto p = params();
  const auto chaotic = algo::run_sssp(prep.dist, prep.sync, t, p,
                                      cfg(engine::ExecModel::kSync), src);
  const auto ordered = algo::run_sssp_delta(
      prep.dist, prep.sync, t, p, cfg(engine::ExecModel::kSync), src);
  EXPECT_EQ(chaotic.dist, ordered.dist);
  EXPECT_LT(ordered.stats.total_work(), chaotic.stats.total_work());
}

TEST(DeltaSsspBehaviour, ExplicitDeltaValuesAllCorrect) {
  const auto g = weighted_testbed();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto ref = algo::reference::sssp(g, src);
  for (std::uint64_t delta : {1ull, 13ull, 100ull, 100000ull}) {
    const auto r = algo::run_sssp_delta(
        prep.dist, prep.sync, t, p, cfg(engine::ExecModel::kAsync), src,
        delta);
    EXPECT_EQ(r.dist, ref) << "delta " << delta;
  }
}

TEST(PprBehaviour, MassIsConservedAndLocalized) {
  const auto g = graph::datasets::make("orkut");
  const auto seed = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const double eps = 1e-8;
  const auto r = algo::run_ppr(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kSync), seed, 0.15,
                               eps);
  // Total settled mass is at most 1 and close to 1 for small epsilon
  // (the leftover is unconsumed residual below threshold).
  const double total =
      std::accumulate(r.mass.begin(), r.mass.end(), 0.0);
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.9);
  // The seed holds the single largest share.
  for (std::size_t v = 0; v < r.mass.size(); ++v) {
    if (v != seed) EXPECT_LE(r.mass[v], r.mass[seed]);
  }
}

TEST(PprBehaviour, UnreachableVerticesGetNoMass) {
  // Seed in one star; a disjoint star must stay at zero.
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 1; v < 8; ++v) edges.push_back({0, v, 1});
  for (graph::VertexId v = 9; v < 16; ++v) edges.push_back({8, v, 1});
  const auto g = graph::build_csr(std::move(edges), 16);
  PreparedGraph prep(g, partition::Policy::HVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto r = algo::run_ppr(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kAsync), 0);
  for (graph::VertexId v = 8; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(r.mass[v], 0.0);
  }
  EXPECT_GT(r.mass[0], 0.1);
}

}  // namespace
}  // namespace sg
