// End-to-end integration: full pipeline (generate -> partition -> sync
// -> execute -> gather) on the paper's medium analogues at multi-host
// scale, cross-variant agreement, deterministic repeats, and the
// OOM-as-missing-point behaviour on large analogues.
#include <gtest/gtest.h>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/kcore.hpp"
#include "algo/pagerank.hpp"
#include "algo/reference.hpp"
#include "algo/sssp.hpp"
#include "fw/benchmark.hpp"
#include "fw/dirgl.hpp"
#include "graph/datasets.hpp"
#include "helpers.hpp"
#include "sim/device_memory.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

TEST(Integration, MediumAnalogueAllVariantsBfsAt16Gpus) {
  const auto g = graph::datasets::make("twitter50");
  const auto src = graph::datasets::default_source(g);
  const auto ref = algo::reference::bfs(g, src);
  PreparedGraph prep(g, partition::Policy::IEC, 16);
  const auto t = topo(16);
  const auto p = params();
  for (auto v : {engine::Variant::kVar1, engine::Variant::kVar2,
                 engine::Variant::kVar3, engine::Variant::kVar4}) {
    const auto r = algo::run_bfs(prep.dist, prep.sync, t, p,
                                 engine::make_variant(v), src);
    EXPECT_EQ(r.dist, ref) << engine::to_string(v);
    EXPECT_GT(r.stats.total_time.seconds(), 0.0);
  }
}

TEST(Integration, MediumAnalogueAllPoliciesSsspAt16Gpus) {
  const auto g = graph::datasets::make_weighted("friendster");
  const auto src = graph::datasets::default_source(g);
  const auto ref = algo::reference::sssp(g, src);
  const auto t = topo(16);
  const auto p = params();
  for (auto policy :
       {partition::Policy::OEC, partition::Policy::IEC,
        partition::Policy::HVC, partition::Policy::CVC}) {
    PreparedGraph prep(g, policy, 16);
    const auto r = algo::run_sssp(prep.dist, prep.sync, t, p,
                                  cfg(engine::ExecModel::kAsync), src);
    EXPECT_EQ(r.dist, ref) << partition::to_string(policy);
  }
}

TEST(Integration, HighDiameterAnalogueBfsBothModels) {
  const auto g = graph::datasets::make("uk07");
  const auto src = graph::datasets::default_source(g);
  const auto ref = algo::reference::bfs(g, src);
  PreparedGraph prep(g, partition::Policy::CVC, 8);
  const auto t = topo(8);
  const auto p = params();
  const auto s = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kSync), src);
  const auto a = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kAsync), src);
  EXPECT_EQ(s.dist, ref);
  EXPECT_EQ(a.dist, ref);
  // High diameter => many rounds in both models.
  EXPECT_GT(s.stats.global_rounds, 40u);
}

TEST(Integration, RunsAreFullyDeterministic) {
  const auto g = graph::datasets::make("twitter50");
  const auto t = topo(8);
  const auto p = params();
  auto run_once = [&] {
    PreparedGraph prep(g, partition::Policy::CVC, 8);
    return algo::run_pagerank(prep.dist, prep.sync, t, p,
                              cfg(engine::ExecModel::kSync));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.stats.total_time.seconds(), b.stats.total_time.seconds());
  EXPECT_EQ(a.stats.comm.total_volume(), b.stats.comm.total_volume());
  EXPECT_EQ(a.stats.total_work(), b.stats.total_work());
}

TEST(Integration, ScalingOutReducesPerDeviceMemory) {
  const auto g = graph::datasets::make("friendster");
  const auto p = params();
  const auto src = graph::datasets::default_source(g);
  std::uint64_t prev = ~0ull;
  for (int d : {4, 16, 64}) {
    PreparedGraph prep(g, partition::Policy::CVC, d);
    const auto r = algo::run_bfs(prep.dist, prep.sync, topo(d), p,
                                 cfg(engine::ExecModel::kSync), src);
    EXPECT_LT(r.stats.max_memory(), prev);
    prev = r.stats.max_memory();
  }
}

TEST(Integration, LargeAnalogueOomsOnFewDevicesRunsOnMany) {
  // The paper's Figure 9 phenomenon: large inputs fit only when spread
  // across enough GPUs; a failed point is an OutOfDeviceMemory.
  const auto g = graph::datasets::make("uk14");
  const auto p = params();
  const auto src = graph::datasets::default_source(g);
  const double tight_scale = 4000.0;  // P100 capacity ~4.2 MB

  PreparedGraph small(g, partition::Policy::OEC, 2);
  EXPECT_THROW(algo::run_bfs(small.dist, small.sync,
                             sim::Topology::bridges(2, tight_scale), p,
                             cfg(engine::ExecModel::kSync), src),
               sim::OutOfDeviceMemory);

  PreparedGraph large(g, partition::Policy::OEC, 64);
  const auto r = algo::run_bfs(large.dist, large.sync,
                               sim::Topology::bridges(64, tight_scale), p,
                               cfg(engine::ExecModel::kSync), src);
  EXPECT_EQ(r.dist, algo::reference::bfs(g, src));
}

TEST(Integration, FacadeReportsOomAsFailedRunNotException) {
  const auto g = graph::datasets::make("uk14");
  const auto prep = fw::prepare(g, partition::Policy::OEC, 2);
  const auto r =
      fw::DIrGL::run(fw::Benchmark::kBfs, prep,
                     sim::Topology::bridges(2, 4000.0), params(),
                     fw::DIrGL::default_config());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of device memory"), std::string::npos);
}

TEST(Integration, CvcWinsAtScaleOnCc) {
  // The core claim behind Figure 7/8: at >= 16 GPUs CVC's restricted
  // communication partners (grid row + column) win on execution time
  // and message count.
  const auto g = graph::datasets::make("twitter50");
  const auto p = params();
  const auto t = topo(32);
  auto run_policy = [&](partition::Policy policy) {
    PreparedGraph prep(g, policy, 32);
    return algo::run_cc(prep.dist, prep.sync, t, p,
                        cfg(engine::ExecModel::kAsync));
  };
  const auto cvc = run_policy(partition::Policy::CVC);
  const auto hvc = run_policy(partition::Policy::HVC);
  const auto iec = run_policy(partition::Policy::IEC);
  EXPECT_LT(cvc.stats.total_time.seconds(), hvc.stats.total_time.seconds());
  EXPECT_LT(cvc.stats.total_time.seconds(), iec.stats.total_time.seconds());
  EXPECT_LT(cvc.stats.comm.messages, iec.stats.comm.messages);
}

TEST(Integration, KcoreAndCcAgreeAcrossModelsOnMediumInput) {
  const auto g = graph::datasets::make("uk07");
  PreparedGraph prep(g, partition::Policy::HVC, 8);
  const auto t = topo(8);
  const auto p = params();
  const auto kc_ref = algo::reference::kcore(g, 10);
  const auto cc_ref = algo::reference::cc(g);
  for (auto model : {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
    EXPECT_EQ(
        algo::run_kcore(prep.dist, prep.sync, t, p, cfg(model), 10).in_core,
        kc_ref);
    EXPECT_EQ(algo::run_cc(prep.dist, prep.sync, t, p, cfg(model)).label,
              cc_ref);
  }
}

TEST(Integration, WaitTimeDominatesForStragglersUnderBsp) {
  // Give one device a deliberately imbalanced partition via HVC on a
  // hub-heavy graph; in BSP everyone else must wait at the barrier, so
  // aggregate wait is nonzero.
  const auto g = graph::datasets::make("twitter50");
  PreparedGraph prep(g, partition::Policy::HVC, 16);
  const auto t = topo(16);
  const auto p = params();
  const auto r =
      algo::run_pagerank(prep.dist, prep.sync, t, p,
                         cfg(engine::ExecModel::kSync, comm::SyncMode::kAS));
  double total_wait = 0;
  for (auto w : r.stats.wait_time) total_wait += w.seconds();
  EXPECT_GT(total_wait, 0.0);
}

}  // namespace
}  // namespace sg
