// Randomized property tests ("fuzz" sweeps over seeds): CSR builder vs
// a naive adjacency-map model, transpose/degree identities, validation,
// generator invariants, event-queue ordering against a reference sort,
// and whole-pipeline distributed-equals-reference checks on random
// graphs with random policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/pagerank.hpp"
#include "algo/reference.hpp"
#include "comm/sync_structure.hpp"
#include "fault/chaos.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "helpers.hpp"
#include "integrity/audit.hpp"
#include "partition/partition_io.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace sg {
namespace {

class Fuzz : public testing::TestWithParam<std::uint64_t> {};

std::vector<graph::Edge> random_edges(sim::Rng& rng, graph::VertexId n,
                                      std::size_t m, bool weighted) {
  std::vector<graph::Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    graph::Edge e;
    e.src = static_cast<graph::VertexId>(rng.bounded(n));
    e.dst = static_cast<graph::VertexId>(rng.bounded(n));
    e.weight = weighted ? rng.range(1, 1000) : 1;
    edges.push_back(e);
  }
  return edges;
}

TEST_P(Fuzz, BuildCsrMatchesNaiveModel) {
  sim::Rng rng{GetParam()};
  const auto n = static_cast<graph::VertexId>(2 + rng.bounded(200));
  const auto m = static_cast<std::size_t>(rng.bounded(2000));
  const auto edges = random_edges(rng, n, m, /*weighted=*/true);

  // Naive model: per-source sorted map keeping the min weight per edge.
  std::map<std::pair<graph::VertexId, graph::VertexId>, graph::Weight>
      model;
  for (const auto& e : edges) {
    auto [it, inserted] = model.try_emplace({e.src, e.dst}, e.weight);
    if (!inserted) it->second = std::min(it->second, e.weight);
  }

  const auto g = graph::build_csr(edges, n, /*weighted=*/true);
  ASSERT_TRUE(graph::validate(g, /*require_sorted=*/true,
                              /*forbid_self_loops=*/false,
                              /*forbid_duplicates=*/true))
      << graph::validate(g).reason;
  ASSERT_EQ(g.num_edges(), model.size());
  std::size_t checked = 0;
  for (graph::VertexId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto it = model.find({u, nbrs[i]});
      ASSERT_NE(it, model.end());
      EXPECT_EQ(ws[i], it->second);
      ++checked;
    }
  }
  EXPECT_EQ(checked, model.size());
}

TEST_P(Fuzz, TransposePreservesDegreesAndEdges) {
  sim::Rng rng{GetParam()};
  const auto n = static_cast<graph::VertexId>(2 + rng.bounded(150));
  const auto g = graph::build_csr(
      random_edges(rng, n, 1 + rng.bounded(1500), false), n);
  const auto r = g.transpose();
  ASSERT_EQ(r.num_vertices(), n);
  ASSERT_EQ(r.num_edges(), g.num_edges());
  ASSERT_TRUE(graph::validate(r, /*require_sorted=*/false));
  // Sum of in-degrees equals sum of out-degrees, and each edge flips.
  std::multiset<std::pair<graph::VertexId, graph::VertexId>> fwd, rev;
  for (graph::VertexId v = 0; v < n; ++v) {
    for (auto u : g.neighbors(v)) fwd.emplace(v, u);
    for (auto u : r.neighbors(v)) rev.emplace(u, v);
  }
  EXPECT_EQ(fwd, rev);
}

TEST_P(Fuzz, GeneratorsProduceValidGraphs) {
  sim::Rng rng{GetParam()};
  graph::SyntheticSpec s;
  s.vertices = static_cast<graph::VertexId>(64 + rng.bounded(2000));
  s.edges = 4 * s.vertices + rng.bounded(8 * s.vertices);
  s.zipf_out = 0.3 + rng.uniform() * 0.7;
  s.zipf_in = 0.3 + rng.uniform() * 0.7;
  s.hub_in_frac = rng.uniform() * 0.05;
  s.hub_out_frac = rng.uniform() * 0.02;
  s.communities = 1 + static_cast<std::uint32_t>(rng.bounded(12));
  s.tail_length = static_cast<std::uint32_t>(rng.bounded(s.vertices / 4));
  s.symmetric = rng.chance(0.3);
  s.seed = GetParam() * 31 + 7;
  const auto g = graph::synthetic(s);
  EXPECT_TRUE(graph::validate(g)) << graph::validate(g).reason;
  EXPECT_EQ(g.num_vertices(), s.vertices);
  EXPECT_TRUE(graph::weakly_connected(g));
}

TEST_P(Fuzz, EventQueueMatchesReferenceSort) {
  sim::Rng rng{GetParam()};
  sim::EventQueue q;
  const int n = 5 + static_cast<int>(rng.bounded(200));
  std::vector<std::pair<double, int>> expected;
  std::vector<int> fired;
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform() * 100.0;
    expected.emplace_back(t, i);
    q.schedule(sim::SimTime{t}, [&fired, i](sim::SimTime) {
      fired.push_back(i);
    });
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  q.run_to_completion();
  ASSERT_EQ(fired.size(), expected.size());
  for (int i = 0; i < n; ++i) EXPECT_EQ(fired[i], expected[i].second);
}

TEST_P(Fuzz, DistributedBfsAndCcMatchReferenceOnRandomGraphs) {
  sim::Rng rng{GetParam()};
  const auto n = static_cast<graph::VertexId>(16 + rng.bounded(400));
  auto g = graph::build_csr(
      random_edges(rng, n, n * (1 + rng.bounded(8)), false), n);
  const auto policies = test::all_policies();
  const auto policy = policies[rng.bounded(policies.size())];
  const int devices = 1 + static_cast<int>(rng.bounded(6));
  const auto model = rng.chance(0.5) ? engine::ExecModel::kSync
                                     : engine::ExecModel::kAsync;
  test::PreparedGraph prep(g, policy, devices);
  const auto t = test::topo(devices);
  const auto p = test::params();
  const auto src = static_cast<graph::VertexId>(rng.bounded(n));
  EXPECT_EQ(
      algo::run_bfs(prep.dist, prep.sync, t, p, test::cfg(model), src).dist,
      algo::reference::bfs(g, src))
      << partition::to_string(policy) << " d=" << devices;
  EXPECT_EQ(
      algo::run_cc(prep.dist, prep.sync, t, p, test::cfg(model)).label,
      algo::reference::cc(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         testing::Range<std::uint64_t>(1, 26));

// ---- on-disk envelope corruption fuzzing --------------------------------
//
// Every persisted artifact (partition-store 'SGPT' parts/manifest and
// fault-layer 'SGCK' checkpoints) shares one checksummed envelope:
//   magic(4) | version(4) | payload_size(8) | payload | fnv1a64(8).
// Property: *any* single bit-flip, truncation, or corrupt length field
// must surface as a descriptive std::runtime_error — never a crash,
// never an allocation bomb, and never a silently wrong load.

class CorruptionFuzz : public testing::TestWithParam<std::uint64_t> {};

std::filesystem::path fuzz_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<char> slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spew(const std::filesystem::path& p, const std::vector<char>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Runs `load` on a file whose bytes were mutated and asserts the
/// corruption is rejected with a descriptive error (non-trivial what()).
template <typename LoadFn>
void expect_descriptive_rejection(LoadFn&& load, const std::string& how) {
  try {
    load();
    ADD_FAILURE() << "corruption not detected (" << how << ")";
  } catch (const std::runtime_error& e) {
    EXPECT_GE(std::string(e.what()).size(), 10u)
        << "error message not descriptive (" << how << ")";
  } catch (...) {
    ADD_FAILURE() << "wrong exception type (" << how << ")";
  }
}

TEST_P(CorruptionFuzz, PartitionPartSurvivesBitFlipsAtRandomOffsets) {
  sim::Rng rng{GetParam()};
  const auto n = static_cast<graph::VertexId>(32 + rng.bounded(64));
  const auto g =
      graph::build_csr(random_edges(rng, n, 4 * n, true), n, true);
  const auto policies = test::all_policies();
  test::PreparedGraph prep(g, policies[rng.bounded(policies.size())], 2);
  const auto dir = fuzz_dir("sg_fuzz_part_" + std::to_string(GetParam()));
  partition::save_partition(prep.dist, dir);
  const auto part = dir / "part_1.sgp";
  const auto pristine = slurp(part);
  ASSERT_GT(pristine.size(), 24u);  // header + some payload + trailer

  // Sweep the whole header deterministically plus random payload/trailer
  // offsets: a flipped bit anywhere in the file must be caught.
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < 16; ++i) offsets.push_back(i);
  offsets.push_back(pristine.size() - 1);  // inside the checksum trailer
  for (int i = 0; i < 24; ++i) offsets.push_back(rng.bounded(pristine.size()));
  for (const std::size_t off : offsets) {
    auto bytes = pristine;
    bytes[off] =
        static_cast<char>(bytes[off] ^ (1u << rng.bounded(8)));
    spew(part, bytes);
    expect_descriptive_rejection(
        [&] { (void)partition::load_partition_part(dir, 1); },
        "bit flip at offset " + std::to_string(off));
  }

  // Restoring the pristine bytes makes the part loadable again (the
  // rejections above were about the data, not lingering state).
  spew(part, pristine);
  EXPECT_NO_THROW((void)partition::load_partition_part(dir, 1));
}

TEST_P(CorruptionFuzz, PartitionStoreSurvivesTruncationAtAnyLength) {
  sim::Rng rng{GetParam() * 977 + 5};
  const auto n = static_cast<graph::VertexId>(32 + rng.bounded(64));
  const auto g = graph::build_csr(random_edges(rng, n, 3 * n, false), n);
  test::PreparedGraph prep(g, partition::Policy::OEC, 2);
  const auto dir = fuzz_dir("sg_fuzz_trunc_" + std::to_string(GetParam()));
  partition::save_partition(prep.dist, dir);

  for (const char* name : {"part_0.sgp", "manifest.sgp"}) {
    const auto path = dir / name;
    const auto pristine = slurp(path);
    std::vector<std::uintmax_t> keeps{0, 3, 4, 7, 8, 15, 16,
                                      pristine.size() - 8,
                                      pristine.size() - 1};
    for (int i = 0; i < 12; ++i) keeps.push_back(rng.bounded(pristine.size()));
    for (const std::uintmax_t keep : keeps) {
      spew(path, pristine);
      std::filesystem::resize_file(path, keep);
      expect_descriptive_rejection(
          [&] { (void)partition::load_partition(dir); },
          std::string(name) + " truncated to " + std::to_string(keep));
    }
    spew(path, pristine);
  }
  EXPECT_NO_THROW((void)partition::load_partition(dir));
}

TEST_P(CorruptionFuzz, CheckpointEnvelopeSurvivesBitFlipsAndTruncation) {
  sim::Rng rng{GetParam() * 131 + 17};
  const auto dir = fuzz_dir("sg_fuzz_ckpt_" + std::to_string(GetParam()));
  const fault::CheckpointStore store(dir);
  fault::Checkpoint ck;
  ck.round = 1 + rng.bounded(50);
  ck.devices.resize(2);
  for (auto& dev : ck.devices) {
    dev.bytes.resize(16 + rng.bounded(240));
    for (auto& b : dev.bytes) b = static_cast<char>(rng.bounded(256));
  }
  store.save(ck);
  const int devices = static_cast<int>(ck.devices.size());
  ASSERT_NO_THROW((void)store.load(ck.round, devices));

  const auto victim = store.device_file(ck.round, 1);
  const auto pristine = slurp(victim);
  for (int i = 0; i < 24; ++i) {
    const std::size_t off = rng.bounded(pristine.size());
    auto bytes = pristine;
    bytes[off] = static_cast<char>(bytes[off] ^ (1u << rng.bounded(8)));
    spew(victim, bytes);
    expect_descriptive_rejection(
        [&] { (void)store.load(ck.round, devices); },
        "checkpoint bit flip at offset " + std::to_string(off));
  }
  for (int i = 0; i < 8; ++i) {
    spew(victim, pristine);
    std::filesystem::resize_file(victim, rng.bounded(pristine.size()));
    expect_descriptive_rejection(
        [&] { (void)store.load(ck.round, devices); },
        "checkpoint truncated");
  }
  spew(victim, pristine);
  const auto reloaded = store.load(ck.round, devices);
  ASSERT_EQ(reloaded.devices.size(), ck.devices.size());
  EXPECT_EQ(reloaded.devices[1].bytes, ck.devices[1].bytes);
}

TEST_P(CorruptionFuzz, CorruptLengthFieldIsRejectedWithoutAllocating) {
  sim::Rng rng{GetParam() * 31 + 3};
  const auto dir = fuzz_dir("sg_fuzz_len_" + std::to_string(GetParam()));
  const fault::CheckpointStore store(dir);
  fault::Checkpoint ck;
  ck.round = 4;
  ck.devices.resize(1);
  ck.devices[0].bytes.assign(64, 'x');
  store.save(ck);
  const auto path = store.device_file(4, 0);
  const auto pristine = slurp(path);

  // The declared payload size lives at bytes [8, 16). Writing absurd
  // values there must be rejected against the actual file size *before*
  // any allocation — a corrupted length field is not an excuse to try a
  // multi-exabyte resize (this was a latent bug: the reader used to
  // allocate `size` bytes on faith).
  const std::uint64_t absurd[] = {
      pristine.size(), pristine.size() + 1, std::uint64_t{1} << 40,
      std::uint64_t{1} << 60, ~std::uint64_t{0}, rng.next()};
  for (const std::uint64_t size : absurd) {
    auto bytes = pristine;
    std::memcpy(bytes.data() + 8, &size, sizeof size);
    spew(path, bytes);
    try {
      (void)store.load(4, 1);
      ADD_FAILURE() << "length " << size << " not rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("corrupt length field"),
                std::string::npos)
          << "unexpected message for length " << size << ": " << e.what();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz,
                         testing::Range<std::uint64_t>(1, 13));

// ---- wire-protocol anomaly fuzzing --------------------------------------
//
// The versioned wire protocol (src/comm/wire.hpp) must mask every
// transport-level anomaly: corrupted frames fail their FNV-1a checksum
// and are NACKed and resent, duplicates are discarded by the
// per-(src,dst,field) sequence numbers, reordered frames are buffered
// back into delivery order, and dropped frames are recovered by
// NACK-driven retry. Property: under a seeded random schedule mixing
// all four anomalies, the idempotent traversals (bfs, cc) finish
// bit-identical to the fault-free run on both execution models with
// nothing evicted.

class WireFuzz : public testing::TestWithParam<std::uint64_t> {};

const graph::Csr& wire_graph() {
  static const graph::Csr g = [] {
    graph::SyntheticSpec s;
    s.vertices = 400;
    s.edges = 3200;
    s.zipf_out = 0.6;
    s.zipf_in = 0.7;
    s.hub_in_frac = 0.05;
    s.communities = 2;
    s.seed = 11;
    return graph::synthetic(s);
  }();
  return g;
}

/// Random schedule of drop/corrupt/duplicate/reorder windows scattered
/// across `horizon` (the fault-free run length), with the structural
/// fault kinds switched off — this suite isolates the wire layer.
fault::FaultPlan wire_anomaly_plan(std::uint64_t seed, int devices,
                                   sim::SimTime horizon) {
  fault::ChaosSpec spec;
  spec.num_devices = devices;
  spec.num_hosts = devices / 2;  // test::topo pairs two devices per host
  spec.horizon = horizon;
  spec.min_events = 1;
  spec.max_events = 6;
  spec.allow_partition = false;
  spec.allow_straggler = false;
  spec.allow_loss = false;
  return fault::random_plan(seed, spec);
}

TEST_P(WireFuzz, BfsAndCcBitExactUnderRandomWireAnomalies) {
  sim::Rng rng{GetParam() * 7919 + 13};
  const int devices = 4 + 2 * static_cast<int>(rng.bounded(3));  // 4, 6, 8
  const auto policies = test::all_policies();
  const auto policy = policies[rng.bounded(policies.size())];
  const auto model = rng.chance(0.5) ? engine::ExecModel::kSync
                                     : engine::ExecModel::kAsync;

  const auto& g = wire_graph();
  test::PreparedGraph prep(g, policy, devices);
  const auto t = test::topo(devices);
  const auto p = test::params();
  const auto src = graph::datasets::default_source(g);
  const auto base = test::cfg(model);
  const auto ff_bfs = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);
  const auto ff_cc = algo::run_cc(prep.dist, prep.sync, t, p, base);

  const auto plan =
      wire_anomaly_plan(GetParam(), devices, ff_bfs.stats.total_time);
  auto faulty = base;
  faulty.fault_plan = &plan;

  const auto fr_bfs = algo::run_bfs(prep.dist, prep.sync, t, p, faulty, src);
  EXPECT_EQ(fr_bfs.dist, ff_bfs.dist)
      << partition::to_string(policy) << " d=" << devices
      << " model=" << static_cast<int>(model) << " seed=" << GetParam();
  EXPECT_EQ(fr_bfs.dist, algo::reference::bfs(g, src));
  EXPECT_EQ(fr_bfs.stats.faults.evicted_devices, 0u);

  const auto fr_cc = algo::run_cc(prep.dist, prep.sync, t, p, faulty);
  EXPECT_EQ(fr_cc.label, ff_cc.label)
      << partition::to_string(policy) << " d=" << devices
      << " seed=" << GetParam();
  EXPECT_EQ(fr_cc.label, algo::reference::cc(g));
  EXPECT_EQ(fr_cc.stats.faults.evicted_devices, 0u);
}

TEST_P(WireFuzz, FaultyRunsReplayByteIdenticalAcrossReruns) {
  // Determinism of the perturbed schedule itself: the same plan yields
  // the same labels, the same simulated finish time, and the same
  // anomaly counters on a rerun — this is what makes a sg_chaos
  // reproducer replayable.
  sim::Rng rng{GetParam() * 104729 + 7};
  const auto& g = wire_graph();
  const int devices = 4 + 2 * static_cast<int>(rng.bounded(3));
  test::PreparedGraph prep(g, partition::Policy::OEC, devices);
  const auto t = test::topo(devices);
  const auto p = test::params();
  const auto src = graph::datasets::default_source(g);
  const auto base = test::cfg(rng.chance(0.5) ? engine::ExecModel::kSync
                                              : engine::ExecModel::kAsync);
  const auto ff = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);

  const auto plan =
      wire_anomaly_plan(GetParam() + 500, devices, ff.stats.total_time);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto a = algo::run_bfs(prep.dist, prep.sync, t, p, faulty, src);
  const auto b = algo::run_bfs(prep.dist, prep.sync, t, p, faulty, src);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.total_time, b.stats.total_time);
  EXPECT_EQ(a.stats.faults.messages_corrupted,
            b.stats.faults.messages_corrupted);
  EXPECT_EQ(a.stats.faults.duplicates_injected,
            b.stats.faults.duplicates_injected);
  EXPECT_EQ(a.stats.faults.reorders_injected,
            b.stats.faults.reorders_injected);
  EXPECT_EQ(a.stats.faults.messages_dropped, b.stats.faults.messages_dropped);
}

TEST_P(WireFuzz, PagerankBspBitExactUnderDuplicateStorm) {
  // Duplicates are the anomaly a non-idempotent accumulator cannot
  // tolerate without the wire protocol: a replayed AddOp frame would
  // double-count residual mass. Sequence-number dedupe must make a
  // whole-run duplicate storm invisible — bit-identical ranks.
  sim::Rng rng{GetParam() * 31 + 5};
  const auto& g = wire_graph();
  test::PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = test::topo(4);
  const auto p = test::params();
  const auto base = test::cfg(engine::ExecModel::kSync);
  const auto ff = algo::run_pagerank(prep.dist, prep.sync, t, p, base);

  fault::FaultPlan plan;
  plan.duplicate_messages(0.1 + 0.3 * rng.uniform(), sim::SimTime::zero(),
                          ff.stats.total_time);
  auto faulty = base;
  faulty.fault_plan = &plan;
  const auto fr = algo::run_pagerank(prep.dist, prep.sync, t, p, faulty);

  EXPECT_EQ(fr.rank, ff.rank);  // bit-identical floats
  EXPECT_GT(fr.stats.faults.duplicates_injected, 0u);
  EXPECT_GT(fr.stats.faults.duplicates_discarded, 0u);
  EXPECT_EQ(fr.stats.faults.evicted_devices, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         testing::Range<std::uint64_t>(1, 65));

// ---- gray-failure migration fuzzing -------------------------------------
//
// Online shard migration rewires partition ownership mid-run while the
// algorithm's frontier/labels are live. Property: for any random policy,
// device count, execution model, and seeded degradation schedule, a
// mitigated run produces labels bit-identical to the fault-free run
// (migration moves *where* vertices compute, never *what* they compute),
// and the perturbed schedule replays deterministically.

class GrayMigrationFuzz : public testing::TestWithParam<std::uint64_t> {};

/// Monitor tuning scaled to a micro-benchmark, mirroring what sg_chaos
/// --gray derives from the fault-free oracle.
engine::EngineConfig gray_cfg(engine::ExecModel model, sim::SimTime oracle) {
  auto c = test::cfg(model);
  c.mitigation.mode = fault::MitigationMode::kMigrate;
  c.mitigation.sustain_rounds = 1;
  c.mitigation.stretch_alpha = 0.4;
  c.health.heartbeat_interval = oracle * (1.0 / 50.0);
  return c;
}

TEST_P(GrayMigrationFuzz, MitigatedBfsAndCcStayBitExact) {
  sim::Rng rng{GetParam() * 6151 + 29};
  const int devices = 4 + 2 * static_cast<int>(rng.bounded(3));  // 4, 6, 8
  const auto policies = test::all_policies();
  const auto policy = policies[rng.bounded(policies.size())];
  const auto model = rng.chance(0.5) ? engine::ExecModel::kSync
                                     : engine::ExecModel::kAsync;

  const auto& g = wire_graph();
  test::PreparedGraph prep(g, policy, devices);
  const auto t = test::topo(devices);
  const auto p = test::params();
  const auto src = graph::datasets::default_source(g);
  const auto base = test::cfg(model);
  const auto ff_bfs = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);
  const auto ff_cc = algo::run_cc(prep.dist, prep.sync, t, p, base);

  // One or two sustained degrade windows on random victims, severities
  // high enough that the monitor must engage, durations covering most
  // of the oracle makespan.
  const auto horizon = ff_bfs.stats.total_time;
  fault::FaultPlan plan;
  const int victims = 1 + static_cast<int>(rng.bounded(2));
  for (int i = 0; i < victims; ++i) {
    const int d = static_cast<int>(rng.bounded(devices));
    const double severity = 4.0 + 4.0 * rng.uniform();
    const auto start = horizon * (0.05 + 0.15 * rng.uniform());
    const auto duration = horizon * (0.5 + 0.4 * rng.uniform());
    if (rng.chance(0.5)) {
      plan.degrade_device(d, start, duration, severity,
                          /*onset=*/duration * 0.1,
                          /*recovery=*/duration * 0.1);
    } else {
      plan.degrade_device(d, start, duration, severity);
    }
  }
  auto mitigated = gray_cfg(model, horizon);
  mitigated.fault_plan = &plan;

  const auto a = algo::run_bfs(prep.dist, prep.sync, t, p, mitigated, src);
  EXPECT_EQ(a.dist, ff_bfs.dist)
      << partition::to_string(policy) << " d=" << devices
      << " model=" << static_cast<int>(model) << " seed=" << GetParam();
  EXPECT_EQ(a.dist, algo::reference::bfs(g, src));
  EXPECT_EQ(a.stats.faults.evicted_devices, 0u);

  const auto b = algo::run_bfs(prep.dist, prep.sync, t, p, mitigated, src);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.total_time, b.stats.total_time);
  EXPECT_EQ(a.stats.faults.gray_migrations, b.stats.faults.gray_migrations);
  EXPECT_EQ(a.stats.faults.gray_alerts, b.stats.faults.gray_alerts);

  const auto fr_cc = algo::run_cc(prep.dist, prep.sync, t, p, mitigated);
  EXPECT_EQ(fr_cc.label, ff_cc.label)
      << partition::to_string(policy) << " d=" << devices
      << " seed=" << GetParam();
  EXPECT_EQ(fr_cc.label, algo::reference::cc(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrayMigrationFuzz,
                         testing::Range<std::uint64_t>(1, 25));

// ---- silent-data-corruption auditor fuzzing ------------------------------
//
// Random single-bit flips land in replicated mirror state (plus the
// occasional defective-ALU kernel window) while the integrity auditor
// (replica digests + ABFT invariants + final certificate, DESIGN.md
// §13) runs in kRepair mode. Property: zero undetected wrong answers —
// the audited run's labels are bit-identical to the fault-free run,
// and whenever the same plan run *without* the auditor shipped a
// different answer, the audited run must have flagged at least one
// violation (a flip may legitimately be value-neutral — e.g. healed by
// the next broadcast — but it must never be value-changing AND
// unseen). The perturbed-and-repaired schedule also replays
// byte-identically, which is what makes sg_chaos --sdc reproducers
// replayable.

class SdcFuzz : public testing::TestWithParam<std::uint64_t> {};

struct SdcTarget {
  int device = -1;
  std::int64_t vertex = -1;
};

/// Every replicated mirror entry of the partition: flips aimed here hit
/// state the auditor's digests/certificate provably cover, and the
/// master copy stays canonical for bit-exact repair.
std::vector<SdcTarget> sdc_mirror_targets(const test::PreparedGraph& prep,
                                          int devices) {
  std::vector<SdcTarget> out;
  for (int m = 0; m < devices; ++m) {
    const auto& lg = prep.dist.part(m);
    for (int o = 0; o < devices; ++o) {
      if (o == m) continue;
      const auto& list = prep.sync.list(m, o, comm::ProxyFilter::kAll);
      for (const auto ml : list.mirror_local) {
        out.push_back({m, static_cast<std::int64_t>(lg.l2g[ml])});
      }
    }
  }
  return out;
}

TEST_P(SdcFuzz, AuditedBfsAndCcNeverShipAWrongAnswer) {
  sim::Rng rng{GetParam() * 2654435761ULL + 97};
  const int devices = 4 + 2 * static_cast<int>(rng.bounded(3));  // 4, 6, 8
  const auto policies = test::all_policies();
  const auto policy = policies[rng.bounded(policies.size())];
  const auto model = rng.chance(0.5) ? engine::ExecModel::kSync
                                     : engine::ExecModel::kAsync;

  const auto& g = wire_graph();
  test::PreparedGraph prep(g, policy, devices);
  const auto t = test::topo(devices);
  const auto p = test::params();
  const auto src = graph::datasets::default_source(g);
  const auto base = test::cfg(model);
  const auto ff_bfs = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);
  const auto ff_cc = algo::run_cc(prep.dist, prep.sync, t, p, base);

  const auto targets = sdc_mirror_targets(prep, devices);
  ASSERT_FALSE(targets.empty());
  const auto horizon = ff_bfs.stats.total_time;
  fault::FaultPlan plan;
  const int flips = 1 + static_cast<int>(rng.bounded(3));
  for (int i = 0; i < flips; ++i) {
    const SdcTarget& target = targets[rng.bounded(targets.size())];
    plan.flip_label(target.device, target.vertex,
                    static_cast<int>(rng.bounded(30)),
                    horizon * (0.1 + 0.7 * rng.uniform()));
  }
  if (rng.chance(0.5)) {
    plan.sdc_kernel(static_cast<int>(rng.bounded(devices)), horizon * 0.2,
                    horizon * 0.4, 0.2 + 0.3 * rng.uniform());
  }

  auto unaudited = base;
  unaudited.fault_plan = &plan;
  auto audited = unaudited;
  audited.audit.mode = integrity::AuditMode::kRepair;
  audited.audit.interval_rounds = 1 + static_cast<int>(rng.bounded(2));
  audited.audit.escalate_after = 1000;  // judge answers, not evictions

  const auto un_bfs = algo::run_bfs(prep.dist, prep.sync, t, p, unaudited,
                                    src);
  const auto au_bfs = algo::run_bfs(prep.dist, prep.sync, t, p, audited,
                                    src);
  EXPECT_EQ(au_bfs.dist, ff_bfs.dist)
      << partition::to_string(policy) << " d=" << devices
      << " model=" << static_cast<int>(model) << " seed=" << GetParam();
  EXPECT_GT(au_bfs.stats.faults.sdc_injected, 0u);
  EXPECT_TRUE(au_bfs.stats.faults.sdc_detected > 0 ||
              un_bfs.dist == ff_bfs.dist)
      << "undetected wrong answer: unaudited bfs diverged but the "
         "auditor flagged nothing (seed "
      << GetParam() << ")";

  // The repaired schedule replays byte-identically.
  const auto au2 = algo::run_bfs(prep.dist, prep.sync, t, p, audited, src);
  EXPECT_EQ(au_bfs.dist, au2.dist);
  EXPECT_EQ(au_bfs.stats.total_time, au2.stats.total_time);
  EXPECT_EQ(au_bfs.stats.faults.sdc_detected, au2.stats.faults.sdc_detected);
  EXPECT_EQ(au_bfs.stats.faults.sdc_repaired, au2.stats.faults.sdc_repaired);

  const auto un_cc = algo::run_cc(prep.dist, prep.sync, t, p, unaudited);
  const auto au_cc = algo::run_cc(prep.dist, prep.sync, t, p, audited);
  EXPECT_EQ(au_cc.label, ff_cc.label)
      << partition::to_string(policy) << " d=" << devices
      << " seed=" << GetParam();
  EXPECT_TRUE(au_cc.stats.faults.sdc_detected > 0 ||
              un_cc.label == ff_cc.label)
      << "undetected wrong answer: unaudited cc diverged but the "
         "auditor flagged nothing (seed "
      << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdcFuzz,
                         testing::Range<std::uint64_t>(1, 25));

// Validation negative cases (hand-built malformed CSRs).
TEST(Validation, DetectsMalformedStructures) {
  using graph::Csr;
  // Non-monotone offsets (dips in the middle; the Csr constructor only
  // checks the final entry).
  EXPECT_FALSE(graph::validate(Csr{{0, 2, 1, 2}, {0, 1}}, false));
  // Destination out of range.
  EXPECT_FALSE(graph::validate(Csr{{0, 1}, {7}}));
  // Unsorted adjacency flagged only when sortedness is required.
  const Csr unsorted{{0, 2, 2}, {1, 0}};
  EXPECT_FALSE(graph::validate(unsorted, /*require_sorted=*/true));
  EXPECT_TRUE(graph::validate(unsorted, /*require_sorted=*/false));
  // Self loops / duplicates flagged on demand.
  const Csr selfy{{0, 1}, {0}};
  EXPECT_TRUE(graph::validate(selfy));
  EXPECT_FALSE(graph::validate(selfy, true, /*forbid_self_loops=*/true));
  const Csr dup{{0, 2, 2}, {1, 1}};
  EXPECT_TRUE(graph::validate(dup));
  EXPECT_FALSE(graph::validate(dup, true, false, /*forbid_duplicates=*/true));
}

// ---- overload-schedule fuzzing ------------------------------------------
//
// The serving layer's overload contract, over random arrival schedules
// and random armings of the three robustness layers: every submitted
// query is exactly one of served / rejected-with-reason (zero silent
// drops), every non-degraded served answer is bit-exact against the
// sequential references, every degraded answer is a sound upper bound,
// and the whole perturbed run replays byte-identically.

class OverloadServeFuzz : public testing::TestWithParam<std::uint64_t> {};

/// Symmetric pair-hashed-weight community graph — the shape the
/// landmark triangle bound (degraded tier) is sound on.
const graph::Csr& overload_fuzz_graph() {
  static const graph::Csr g = [] {
    graph::SyntheticSpec s;
    s.vertices = 400;
    s.edges = 3000;
    s.zipf_out = 0.6;
    s.zipf_in = 0.6;
    s.communities = 3;
    s.symmetric = true;
    s.seed = 19;
    return graph::add_symmetric_weights(graph::synthetic(s), 1, 64, 19);
  }();
  return g;
}

TEST_P(OverloadServeFuzz, ConservationSoundnessAndReplayUnderRandomLoad) {
  sim::Rng rng{GetParam() * 2477 + 11};
  const auto& g = overload_fuzz_graph();
  test::PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = test::topo(4);
  const auto p = test::params();
  const auto c = test::cfg(rng.chance(0.5) ? engine::ExecModel::kSync
                                           : engine::ExecModel::kAsync);

  serve::WorkloadSpec spec;
  spec.seed = GetParam() * 97 + 3;
  spec.num_queries = 160;
  spec.num_tenants = 2 + static_cast<std::uint32_t>(rng.bounded(4));
  spec.arrival_rate_qps = 5000.0 * std::pow(4.0, rng.uniform() * 3.0);
  spec.tenant_skew = 0.4 + rng.uniform();
  spec.source_skew = 0.4 + rng.uniform();
  spec.source_pool = 24 + static_cast<std::uint32_t>(rng.bounded(200));
  spec.bfs_frac = 0.5;
  spec.khop_frac = 0.2;
  spec.ppr_frac = 0.0;  // accumulator family: covered by its own suites
  spec.priorities = 1 + static_cast<std::uint32_t>(rng.bounded(3));
  spec.deadline_slack_lo_ms = 0.2 + rng.uniform();
  spec.deadline_slack_hi_ms = 2.0 + 10.0 * rng.uniform();
  const auto trace = serve::generate_workload(spec, g.num_vertices());

  serve::ServeConfig sc;
  sc.batch_width = 8 + static_cast<std::uint32_t>(rng.bounded(57));
  sc.max_queue_depth = 32 + static_cast<std::uint32_t>(rng.bounded(225));
  sc.dist_cache_capacity = 64 + static_cast<std::uint32_t>(rng.bounded(192));
  sc.default_limits = {.rate_qps = 2000.0 + 30000.0 * rng.uniform(),
                       .burst = 16.0 + 100.0 * rng.uniform(),
                       .max_queued = 128};
  if (rng.chance(0.7)) {
    sc.brownout.enabled = true;
    sc.brownout.score_on = 0.5 + 0.3 * rng.uniform();
    sc.brownout.sustain_evals = 1 + static_cast<int>(rng.bounded(2));
    sc.brownout.cooldown_evals = static_cast<int>(rng.bounded(3));
  }
  if (rng.chance(0.7)) {
    sc.reshard.enabled = true;
    sc.reshard.num_homes = 2 + static_cast<std::uint32_t>(rng.bounded(2));
    sc.reshard.imbalance_on = 1.1 + 0.4 * rng.uniform();
    sc.reshard.imbalance_off = 1.05;
    sc.reshard.sustain_evals = 1;
    sc.reshard.cooldown_evals = static_cast<int>(rng.bounded(3));
  }
  if (rng.chance(0.7)) {
    sc.lifecycle.enabled = true;
    sc.lifecycle.max_retries = static_cast<std::uint32_t>(rng.bounded(3));
    sc.lifecycle.hedge = rng.chance(0.5);
    if (rng.chance(0.3)) sc.lifecycle.fail_attempts = 1;  // transient fail
  }

  serve::BatchScheduler sched(prep.dist, prep.sync, t, p, c, sc);
  const auto answers = sched.run(trace);
  const auto& rep = sched.report();
  ASSERT_EQ(answers.size(), trace.size());
  EXPECT_EQ(rep.submitted, trace.size());
  EXPECT_EQ(rep.served + rep.rejected, rep.submitted);  // zero silent drops

  std::map<graph::VertexId, std::vector<std::uint32_t>> bfs;
  std::map<graph::VertexId, std::vector<std::uint64_t>> sssp;
  auto bfs_of = [&](graph::VertexId s) -> const std::vector<std::uint32_t>& {
    auto it = bfs.find(s);
    if (it == bfs.end()) it = bfs.emplace(s, algo::reference::bfs(g, s)).first;
    return it->second;
  };
  auto sssp_of = [&](graph::VertexId s) -> const std::vector<std::uint64_t>& {
    auto it = sssp.find(s);
    if (it == sssp.end()) {
      it = sssp.emplace(s, algo::reference::sssp(g, s)).first;
    }
    return it->second;
  };

  std::uint64_t reasons = 0;
  for (std::size_t i = 0; i < answers.size(); ++i) {
    const auto& q = trace[i];
    const auto& a = answers[i];
    if (!a.served) {
      EXPECT_NE(a.reject_reason, serve::RejectReason::kNone) << i;
      ++reasons;
      continue;
    }
    if (a.degraded) {
      // Sound upper bound on a distance kind, never a different family.
      ASSERT_TRUE(q.kind == serve::QueryKind::kBfsDist ||
                  q.kind == serve::QueryKind::kSsspDist)
          << i;
      const std::uint64_t truth =
          q.kind == serve::QueryKind::kBfsDist
              ? static_cast<std::uint64_t>(bfs_of(q.source)[q.target])
              : sssp_of(q.source)[q.target];
      ASSERT_NE(a.distance, serve::kUnreachable) << i;
      EXPECT_GE(a.distance, truth) << "unsound degraded bound, query " << i;
      continue;
    }
    switch (q.kind) {
      case serve::QueryKind::kBfsDist: {
        const std::uint32_t d = bfs_of(q.source)[q.target];
        const std::uint64_t want =
            d == algo::kInfDist ? serve::kUnreachable : d;
        EXPECT_EQ(a.distance, want) << i;
        break;
      }
      case serve::QueryKind::kSsspDist:
        EXPECT_EQ(a.distance, sssp_of(q.source)[q.target]) << i;
        break;
      case serve::QueryKind::kKhopCount: {
        const auto& dist = bfs_of(q.source);
        std::uint64_t count = 0;
        for (const auto d : dist) {
          if (d <= q.k) ++count;
        }
        EXPECT_EQ(a.khop_count, count) << i;
        break;
      }
      case serve::QueryKind::kPprTopK:
        ADD_FAILURE() << "ppr query in a ppr-free trace, query " << i;
        break;
    }
  }
  EXPECT_EQ(rep.rejected, reasons);

  // The whole perturbed schedule replays byte-identically.
  serve::BatchScheduler twin(prep.dist, prep.sync, t, p, c, sc);
  (void)twin.run(trace);
  EXPECT_EQ(twin.report_json(), sched.report_json());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadServeFuzz,
                         testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace sg
