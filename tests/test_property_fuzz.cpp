// Randomized property tests ("fuzz" sweeps over seeds): CSR builder vs
// a naive adjacency-map model, transpose/degree identities, validation,
// generator invariants, event-queue ordering against a reference sort,
// and whole-pipeline distributed-equals-reference checks on random
// graphs with random policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/reference.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "helpers.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace sg {
namespace {

class Fuzz : public testing::TestWithParam<std::uint64_t> {};

std::vector<graph::Edge> random_edges(sim::Rng& rng, graph::VertexId n,
                                      std::size_t m, bool weighted) {
  std::vector<graph::Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    graph::Edge e;
    e.src = static_cast<graph::VertexId>(rng.bounded(n));
    e.dst = static_cast<graph::VertexId>(rng.bounded(n));
    e.weight = weighted ? rng.range(1, 1000) : 1;
    edges.push_back(e);
  }
  return edges;
}

TEST_P(Fuzz, BuildCsrMatchesNaiveModel) {
  sim::Rng rng{GetParam()};
  const auto n = static_cast<graph::VertexId>(2 + rng.bounded(200));
  const auto m = static_cast<std::size_t>(rng.bounded(2000));
  const auto edges = random_edges(rng, n, m, /*weighted=*/true);

  // Naive model: per-source sorted map keeping the min weight per edge.
  std::map<std::pair<graph::VertexId, graph::VertexId>, graph::Weight>
      model;
  for (const auto& e : edges) {
    auto [it, inserted] = model.try_emplace({e.src, e.dst}, e.weight);
    if (!inserted) it->second = std::min(it->second, e.weight);
  }

  const auto g = graph::build_csr(edges, n, /*weighted=*/true);
  ASSERT_TRUE(graph::validate(g, /*require_sorted=*/true,
                              /*forbid_self_loops=*/false,
                              /*forbid_duplicates=*/true))
      << graph::validate(g).reason;
  ASSERT_EQ(g.num_edges(), model.size());
  std::size_t checked = 0;
  for (graph::VertexId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto it = model.find({u, nbrs[i]});
      ASSERT_NE(it, model.end());
      EXPECT_EQ(ws[i], it->second);
      ++checked;
    }
  }
  EXPECT_EQ(checked, model.size());
}

TEST_P(Fuzz, TransposePreservesDegreesAndEdges) {
  sim::Rng rng{GetParam()};
  const auto n = static_cast<graph::VertexId>(2 + rng.bounded(150));
  const auto g = graph::build_csr(
      random_edges(rng, n, 1 + rng.bounded(1500), false), n);
  const auto r = g.transpose();
  ASSERT_EQ(r.num_vertices(), n);
  ASSERT_EQ(r.num_edges(), g.num_edges());
  ASSERT_TRUE(graph::validate(r, /*require_sorted=*/false));
  // Sum of in-degrees equals sum of out-degrees, and each edge flips.
  std::multiset<std::pair<graph::VertexId, graph::VertexId>> fwd, rev;
  for (graph::VertexId v = 0; v < n; ++v) {
    for (auto u : g.neighbors(v)) fwd.emplace(v, u);
    for (auto u : r.neighbors(v)) rev.emplace(u, v);
  }
  EXPECT_EQ(fwd, rev);
}

TEST_P(Fuzz, GeneratorsProduceValidGraphs) {
  sim::Rng rng{GetParam()};
  graph::SyntheticSpec s;
  s.vertices = static_cast<graph::VertexId>(64 + rng.bounded(2000));
  s.edges = 4 * s.vertices + rng.bounded(8 * s.vertices);
  s.zipf_out = 0.3 + rng.uniform() * 0.7;
  s.zipf_in = 0.3 + rng.uniform() * 0.7;
  s.hub_in_frac = rng.uniform() * 0.05;
  s.hub_out_frac = rng.uniform() * 0.02;
  s.communities = 1 + static_cast<std::uint32_t>(rng.bounded(12));
  s.tail_length = static_cast<std::uint32_t>(rng.bounded(s.vertices / 4));
  s.symmetric = rng.chance(0.3);
  s.seed = GetParam() * 31 + 7;
  const auto g = graph::synthetic(s);
  EXPECT_TRUE(graph::validate(g)) << graph::validate(g).reason;
  EXPECT_EQ(g.num_vertices(), s.vertices);
  EXPECT_TRUE(graph::weakly_connected(g));
}

TEST_P(Fuzz, EventQueueMatchesReferenceSort) {
  sim::Rng rng{GetParam()};
  sim::EventQueue q;
  const int n = 5 + static_cast<int>(rng.bounded(200));
  std::vector<std::pair<double, int>> expected;
  std::vector<int> fired;
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform() * 100.0;
    expected.emplace_back(t, i);
    q.schedule(sim::SimTime{t}, [&fired, i](sim::SimTime) {
      fired.push_back(i);
    });
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  q.run_to_completion();
  ASSERT_EQ(fired.size(), expected.size());
  for (int i = 0; i < n; ++i) EXPECT_EQ(fired[i], expected[i].second);
}

TEST_P(Fuzz, DistributedBfsAndCcMatchReferenceOnRandomGraphs) {
  sim::Rng rng{GetParam()};
  const auto n = static_cast<graph::VertexId>(16 + rng.bounded(400));
  auto g = graph::build_csr(
      random_edges(rng, n, n * (1 + rng.bounded(8)), false), n);
  const auto policies = test::all_policies();
  const auto policy = policies[rng.bounded(policies.size())];
  const int devices = 1 + static_cast<int>(rng.bounded(6));
  const auto model = rng.chance(0.5) ? engine::ExecModel::kSync
                                     : engine::ExecModel::kAsync;
  test::PreparedGraph prep(g, policy, devices);
  const auto t = test::topo(devices);
  const auto p = test::params();
  const auto src = static_cast<graph::VertexId>(rng.bounded(n));
  EXPECT_EQ(
      algo::run_bfs(prep.dist, prep.sync, t, p, test::cfg(model), src).dist,
      algo::reference::bfs(g, src))
      << partition::to_string(policy) << " d=" << devices;
  EXPECT_EQ(
      algo::run_cc(prep.dist, prep.sync, t, p, test::cfg(model)).label,
      algo::reference::cc(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         testing::Range<std::uint64_t>(1, 26));

// Validation negative cases (hand-built malformed CSRs).
TEST(Validation, DetectsMalformedStructures) {
  using graph::Csr;
  // Non-monotone offsets (dips in the middle; the Csr constructor only
  // checks the final entry).
  EXPECT_FALSE(graph::validate(Csr{{0, 2, 1, 2}, {0, 1}}, false));
  // Destination out of range.
  EXPECT_FALSE(graph::validate(Csr{{0, 1}, {7}}));
  // Unsorted adjacency flagged only when sortedness is required.
  const Csr unsorted{{0, 2, 2}, {1, 0}};
  EXPECT_FALSE(graph::validate(unsorted, /*require_sorted=*/true));
  EXPECT_TRUE(graph::validate(unsorted, /*require_sorted=*/false));
  // Self loops / duplicates flagged on demand.
  const Csr selfy{{0, 1}, {0}};
  EXPECT_TRUE(graph::validate(selfy));
  EXPECT_FALSE(graph::validate(selfy, true, /*forbid_self_loops=*/true));
  const Csr dup{{0, 2, 2}, {1, 1}};
  EXPECT_TRUE(graph::validate(dup));
  EXPECT_FALSE(graph::validate(dup, true, false, /*forbid_duplicates=*/true));
}

}  // namespace
}  // namespace sg
