// CuSP-style streaming partitioner: exact equivalence with the
// in-memory partitioner across every streamable policy, device count,
// and chunk size; file-backed streaming; and error handling.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "algo/bfs.hpp"
#include "algo/reference.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "helpers.hpp"
#include "partition/streaming.hpp"

namespace sg::partition {
namespace {

using graph::Csr;
using graph::VertexId;

Csr testbed() {
  graph::SyntheticSpec s;
  s.vertices = 900;
  s.edges = 9000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.85;
  s.hub_in_frac = 0.03;
  s.communities = 3;
  s.seed = 101;
  return graph::synthetic(s);
}

void expect_identical(const DistGraph& a, const DistGraph& b) {
  ASSERT_EQ(a.num_devices(), b.num_devices());
  EXPECT_EQ(a.global_vertices(), b.global_vertices());
  EXPECT_EQ(a.global_edges(), b.global_edges());
  EXPECT_EQ(a.master_directory(), b.master_directory());
  EXPECT_DOUBLE_EQ(a.stats().replication_factor,
                   b.stats().replication_factor);
  EXPECT_DOUBLE_EQ(a.stats().static_balance, b.stats().static_balance);
  for (int d = 0; d < a.num_devices(); ++d) {
    const auto& x = a.part(d);
    const auto& y = b.part(d);
    ASSERT_EQ(x.num_masters, y.num_masters) << "device " << d;
    ASSERT_EQ(x.num_local, y.num_local) << "device " << d;
    EXPECT_EQ(x.l2g, y.l2g) << "device " << d;
    EXPECT_EQ(x.out_offsets, y.out_offsets) << "device " << d;
    EXPECT_EQ(x.out_dsts, y.out_dsts) << "device " << d;
    EXPECT_EQ(x.out_weights, y.out_weights) << "device " << d;
    EXPECT_EQ(x.in_offsets, y.in_offsets) << "device " << d;
    EXPECT_EQ(x.in_srcs, y.in_srcs) << "device " << d;
    EXPECT_EQ(x.vertex_flags, y.vertex_flags) << "device " << d;
    EXPECT_EQ(x.global_out_degree, y.global_out_degree) << "device " << d;
    EXPECT_EQ(x.global_in_degree, y.global_in_degree) << "device " << d;
  }
}

struct Param {
  Policy policy;
  int devices;
  std::size_t chunk;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return std::string(to_string(info.param.policy)) + "_d" +
         std::to_string(info.param.devices) + "_c" +
         std::to_string(info.param.chunk);
}

class StreamingSweep : public testing::TestWithParam<Param> {};

TEST_P(StreamingSweep, MatchesInMemoryPartitionerExactly) {
  const auto g = graph::add_random_weights(testbed(), 1, 50, 7);
  PartitionOptions opts;
  opts.policy = GetParam().policy;
  opts.num_devices = GetParam().devices;
  const auto reference = partition_graph(g, opts);
  CsrEdgeSource source(g);
  const auto streamed = partition_stream(source, opts, GetParam().chunk);
  expect_identical(reference, streamed);
}

INSTANTIATE_TEST_SUITE_P(
    AllStreamable, StreamingSweep,
    testing::ValuesIn([] {
      std::vector<Param> grid;
      for (auto p : {Policy::OEC, Policy::IEC, Policy::HVC, Policy::CVC,
                     Policy::RANDOM}) {
        for (int d : {1, 4, 8}) {
          grid.push_back({p, d, 1024});
        }
      }
      // Chunk-size sweep (including a pathological 1-edge window).
      grid.push_back({Policy::CVC, 8, 1});
      grid.push_back({Policy::CVC, 8, 7});
      grid.push_back({Policy::IEC, 4, 1 << 20});
      return grid;
    }()),
    param_name);

TEST(Streaming, FileBackedSourceMatchesCsrSource) {
  const auto g = graph::add_random_weights(testbed(), 1, 50, 9);
  const auto path = std::filesystem::temp_directory_path() /
                    ("sg_stream_" + std::to_string(::getpid()) + ".el");
  graph::write_edge_list(g, path);

  PartitionOptions opts;
  opts.policy = Policy::CVC;
  opts.num_devices = 8;
  CsrEdgeSource mem_source(g);
  EdgeListFileSource file_source(path);
  EXPECT_EQ(file_source.num_vertices(), g.num_vertices());
  EXPECT_TRUE(file_source.weighted());
  const auto a = partition_stream(mem_source, opts);
  const auto b = partition_stream(file_source, opts, 777);
  std::filesystem::remove(path);
  expect_identical(a, b);
}

TEST(Streaming, StreamedPartitionRunsCorrectly) {
  const auto g = testbed();
  const auto src = graph::datasets::default_source(g);
  PartitionOptions opts;
  opts.policy = Policy::CVC;
  opts.num_devices = 8;
  CsrEdgeSource source(g);
  const auto dg = partition_stream(source, opts);
  const comm::SyncStructure sync(dg);
  const auto r = algo::run_bfs(dg, sync, test::topo(8), test::params(),
                               test::cfg(engine::ExecModel::kAsync), src);
  EXPECT_EQ(r.dist, algo::reference::bfs(g, src));
}

TEST(Streaming, RejectsGreedyAndBadInput) {
  const auto g = testbed();
  CsrEdgeSource source(g);
  EXPECT_THROW(partition_stream(source,
                                {.policy = Policy::GREEDY,
                                 .num_devices = 4}),
               std::invalid_argument);
  EXPECT_THROW(partition_stream(source, {.num_devices = 0}),
               std::invalid_argument);
  EXPECT_THROW(EdgeListFileSource("/nonexistent/edges.el"),
               std::runtime_error);
}

TEST(Streaming, SourceRewindIsRepeatable) {
  const auto g = testbed();
  CsrEdgeSource source(g);
  std::vector<graph::Edge> buf(64);
  std::uint64_t first = 0, second = 0;
  while (const auto k = source.next_chunk(buf)) first += k;
  source.rewind();
  while (const auto k = source.next_chunk(buf)) second += k;
  EXPECT_EQ(first, g.num_edges());
  EXPECT_EQ(second, first);
}

}  // namespace
}  // namespace sg::partition
