// Digest-pinning tests for the shared FNV-1a implementation
// (src/util/hash.hpp). Every checksum in the system — wire payload
// seals, the checksummed file envelope (partition store, checkpoints),
// and the integrity auditor's shard digests — routes through this one
// function, so these exact values pin the on-disk formats and recorded
// wire traces byte-for-byte. If any expectation here changes, existing
// partition stores and checkpoints become unreadable: that is a format
// break, not a refactor.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "comm/wire.hpp"
#include "partition/blob_io.hpp"
#include "util/hash.hpp"

namespace {

using sg::util::fnv1a64;
using sg::util::fnv1a64_value;

std::uint64_t str_digest(const std::string& s,
                         std::uint64_t h = sg::util::kFnv1aOffset) {
  return fnv1a64(s.data(), s.size(), h);
}

TEST(Hash, PinsOffsetBasisAndPrime) {
  EXPECT_EQ(sg::util::kFnv1aOffset, 0xcbf29ce484222325ULL);
  EXPECT_EQ(sg::util::kFnv1aPrime, 0x100000001b3ULL);
  EXPECT_EQ(str_digest(""), 0xcbf29ce484222325ULL);
}

TEST(Hash, PinsKnownDigests) {
  EXPECT_EQ(str_digest("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(str_digest("ab"), 0x089c4407b545986aULL);
  EXPECT_EQ(str_digest("hello world"), 0x779a65e7023cd2e7ULL);
  EXPECT_EQ(str_digest("scalegraph"), 0xdbeb32c96f3c97f3ULL);
}

TEST(Hash, ChainsAcrossCalls) {
  // fnv1a64 is chainable: hashing "ab" equals hashing "a" then "b".
  EXPECT_EQ(str_digest("b", str_digest("a")), str_digest("ab"));
}

TEST(Hash, ValueHelperMatchesByteHash) {
  const std::uint32_t v = 0xdeadbeefu;
  EXPECT_EQ(fnv1a64_value(v), 0xa44e2de07150f42bULL);
  EXPECT_EQ(fnv1a64_value(v), fnv1a64(&v, sizeof v));
}

TEST(Hash, WireAliasDelegates) {
  // comm::fnv1a is the historical wire-protocol entry point; it must
  // produce identical digests (wire traces pin them).
  const std::string s = "payload bytes";
  EXPECT_EQ(sg::comm::fnv1a(s.data(), s.size()), str_digest(s));
  EXPECT_EQ(sg::comm::fnv1a(s.data(), s.size(), 42), str_digest(s, 42));
}

TEST(Hash, PartitionAliasDelegates) {
  // partition::fnv1a64 seals the checksummed-file envelope; same rule.
  const std::string s = "envelope payload";
  EXPECT_EQ(sg::partition::fnv1a64(s.data(), s.size()), str_digest(s));
  EXPECT_EQ(sg::partition::fnv1a64(s.data(), s.size(), 7), str_digest(s, 7));
}

TEST(Hash, DigestHexFormats) {
  EXPECT_EQ(sg::partition::digest_hex(0xcbf29ce484222325ULL),
            "0xcbf29ce484222325");
  EXPECT_EQ(sg::partition::digest_hex(0), "0x0000000000000000");
}

}  // namespace
