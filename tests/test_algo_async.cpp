// Bulk-asynchronous (BASP) correctness: despite stale reads and
// arbitrary message interleavings, monotone vertex programs must
// converge to the same fixpoint as the sequential references, on every
// partitioning policy. Also covers the asynchrony-throttle ablation knob
// and BASP-specific behavioural properties.
#include <gtest/gtest.h>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/kcore.hpp"
#include "algo/pagerank.hpp"
#include "algo/reference.hpp"
#include "algo/sssp.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr testbed() {
  graph::SyntheticSpec s;
  s.vertices = 500;
  s.edges = 4000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.hub_in_frac = 0.04;
  s.communities = 4;
  s.tail_length = 12;
  s.seed = 21;
  return graph::synthetic(s);
}

struct AsyncParam {
  partition::Policy policy;
  int devices;
};

std::string async_name(const testing::TestParamInfo<AsyncParam>& info) {
  return std::string(partition::to_string(info.param.policy)) + "_d" +
         std::to_string(info.param.devices);
}

std::vector<AsyncParam> async_grid() {
  std::vector<AsyncParam> grid;
  for (auto policy : test::all_policies()) {
    for (int devices : {2, 4, 8}) grid.push_back({policy, devices});
  }
  return grid;
}

class BaspSweep : public testing::TestWithParam<AsyncParam> {
 protected:
  engine::EngineConfig config() const {
    return cfg(engine::ExecModel::kAsync);
  }
};

TEST_P(BaspSweep, BfsConvergesToReference) {
  const auto g = testbed();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p, config(), src);
  EXPECT_EQ(r.dist, algo::reference::bfs(g, src));
}

TEST_P(BaspSweep, SsspConvergesToReference) {
  const auto g = graph::add_random_weights(testbed(), 1, 100, 5);
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const auto r = algo::run_sssp(prep.dist, prep.sync, t, p, config(), src);
  EXPECT_EQ(r.dist, algo::reference::sssp(g, src));
}

TEST_P(BaspSweep, CcConvergesToReference) {
  const auto g = testbed();
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const auto r = algo::run_cc(prep.dist, prep.sync, t, p, config());
  EXPECT_EQ(r.label, algo::reference::cc(g));
}

TEST_P(BaspSweep, KcoreConvergesToReference) {
  const auto g = testbed();
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const auto r = algo::run_kcore(prep.dist, prep.sync, t, p, config(), 5);
  EXPECT_EQ(r.in_core, algo::reference::kcore(g, 5));
}

TEST_P(BaspSweep, PagerankConvergesToReference) {
  const auto g = testbed();
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const float tol = 1e-6f;
  const auto r =
      algo::run_pagerank(prep.dist, prep.sync, t, p, config(), 0.85f, tol);
  const auto ref = algo::reference::pagerank(g, 0.85f, tol);
  ASSERT_EQ(r.rank.size(), ref.size());
  for (std::size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(r.rank[v], ref[v], 5e-3f) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, BaspSweep,
                         testing::ValuesIn(async_grid()), async_name);

// ---- BASP-specific behaviour ---------------------------------------------

TEST(BaspBehaviour, ThrottledRunsStayCorrect) {
  const auto g = testbed();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::CVC, 8);
  const auto t = topo(8);
  const auto p = params();
  const auto ref = algo::reference::bfs(g, src);
  for (std::uint32_t cap : {1u, 2u, 8u, 64u}) {
    auto c = cfg(engine::ExecModel::kAsync);
    c.async_lead_cap = cap;
    const auto r = algo::run_bfs(prep.dist, prep.sync, t, p, c, src);
    EXPECT_EQ(r.dist, ref) << "lead cap " << cap;
  }
}

TEST(BaspBehaviour, AsyncExecutesAtLeastAsMuchWorkAsBsp) {
  // BASP decouples devices; stale reads can only add redundant work
  // relative to the globally-gated BSP schedule (Section V-B4).
  const auto g = testbed();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::IEC, 8);
  const auto t = topo(8);
  const auto p = params();
  const auto sync_run = algo::run_bfs(prep.dist, prep.sync, t, p,
                                      cfg(engine::ExecModel::kSync), src);
  const auto async_run = algo::run_bfs(prep.dist, prep.sync, t, p,
                                       cfg(engine::ExecModel::kAsync), src);
  EXPECT_GE(async_run.stats.total_work(), sync_run.stats.total_work());
}

TEST(BaspBehaviour, DeterministicAcrossRepeats) {
  const auto g = testbed();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::HVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto a = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kAsync), src);
  const auto b = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kAsync), src);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.total_time.seconds(), b.stats.total_time.seconds());
  EXPECT_EQ(a.stats.total_work(), b.stats.total_work());
  EXPECT_EQ(a.stats.comm.total_volume(), b.stats.comm.total_volume());
}


TEST(BaspBehaviour, BusyPollStaysCorrectAndInflatesMinRounds) {
  const auto g = testbed();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::IEC, 8);
  const auto t = topo(8);
  const auto p = params();
  auto parked = cfg(engine::ExecModel::kAsync);
  auto polled = parked;
  polled.async_busy_poll = true;
  const auto a = algo::run_bfs(prep.dist, prep.sync, t, p, parked, src);
  const auto b = algo::run_bfs(prep.dist, prep.sync, t, p, polled, src);
  EXPECT_EQ(a.dist, b.dist);
  // Idle churn can only add local rounds; the straggler-decoupling
  // metric the paper reports (min local rounds) inflates.
  EXPECT_GE(b.stats.min_rounds(), a.stats.min_rounds());
  EXPECT_GT(b.stats.max_rounds(), a.stats.max_rounds());
}

TEST(BaspBehaviour, OrkutAnalogueConverges) {
  const auto g = graph::datasets::make("orkut");
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::CVC, 6);
  const auto t = topo(6);
  const auto p = params();
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kAsync), src);
  EXPECT_EQ(r.dist, algo::reference::bfs(g, src));
}

}  // namespace
}  // namespace sg
