// Safra termination-detection properties, checked against a randomized
// asynchronous message-passing model:
//   safety  - never report termination while a process is active or a
//             message is in flight;
//   liveness - always report termination within a bounded number of
//             token hops once the system is truly quiescent.
#include <gtest/gtest.h>

#include <vector>

#include "engine/termination.hpp"
#include "sim/rng.hpp"

namespace sg::engine {
namespace {

TEST(Termination, SingleProcessDetectsWhenPassive) {
  TerminationDetector td(1);
  EXPECT_FALSE(td.try_advance());  // still active
  td.set_active(0, false);
  bool detected = false;
  for (int i = 0; i < 4 && !detected; ++i) detected = td.try_advance();
  EXPECT_TRUE(detected);
}

TEST(Termination, QuiescentRingDetectsWithinTwoCirculations) {
  const int n = 8;
  TerminationDetector td(n);
  for (int p = 0; p < n; ++p) td.set_active(p, false);
  bool detected = false;
  for (int hop = 0; hop < 3 * n && !detected; ++hop) {
    detected = td.try_advance();
  }
  EXPECT_TRUE(detected);
  EXPECT_LE(td.rounds(), 3u);
}

TEST(Termination, TokenWaitsForActiveHolder) {
  TerminationDetector td(4);
  for (int p = 0; p < 4; ++p) td.set_active(p, false);
  td.set_active(2, true);
  // Token leaves 0, passes 3, and must stall at 2.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(td.try_advance());
  EXPECT_EQ(td.token_holder(), 2);
  td.set_active(2, false);
  bool detected = false;
  for (int i = 0; i < 20 && !detected; ++i) detected = td.try_advance();
  EXPECT_TRUE(detected);
}

TEST(Termination, InFlightMessageBlocksDetection) {
  const int n = 4;
  TerminationDetector td(n);
  // Process 1 sends to 3, everyone passive, message NOT yet delivered.
  td.on_send(1);
  for (int p = 0; p < n; ++p) td.set_active(p, false);
  for (int i = 0; i < 6 * n; ++i) {
    EXPECT_FALSE(td.try_advance())
        << "detected termination with a message in flight";
  }
  // Delivery reactivates 3; it does one send back to 1, which absorbs it.
  td.on_receive(3);
  td.set_active(3, true);
  td.on_send(3);
  td.set_active(3, false);
  for (int i = 0; i < 6 * n; ++i) EXPECT_FALSE(td.try_advance());
  td.on_receive(1);
  td.set_active(1, true);
  td.set_active(1, false);
  bool detected = false;
  for (int i = 0; i < 6 * n && !detected; ++i) detected = td.try_advance();
  EXPECT_TRUE(detected);
}

/// Randomized model: processes exchange messages until a work budget
/// drains; the detector observes every event. Safety is asserted on
/// every pump; liveness after true quiescence.
class TerminationRandom : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TerminationRandom, SafeAndLive) {
  sim::Rng rng{GetParam()};
  const int n = 2 + static_cast<int>(rng.bounded(14));
  TerminationDetector td(n);

  std::vector<int> work(n);  // messages each process may still send
  std::vector<bool> active(n, true);
  std::vector<int> in_flight;  // destination process ids
  int total_budget = 0;
  for (int p = 0; p < n; ++p) {
    work[p] = static_cast<int>(rng.bounded(20));
    total_budget += work[p];
  }

  auto model_quiescent = [&] {
    if (!in_flight.empty()) return false;
    for (bool a : active) {
      if (a) return false;
    }
    return true;
  };

  int guard = 0;
  while (guard++ < 100000) {
    const auto roll = rng.bounded(10);
    if (roll < 4) {
      // A random active process acts: send if budget remains, else park.
      std::vector<int> actives;
      for (int p = 0; p < n; ++p) {
        if (active[p]) actives.push_back(p);
      }
      if (!actives.empty()) {
        const int p = actives[rng.bounded(actives.size())];
        if (work[p] > 0 && rng.chance(0.7)) {
          --work[p];
          td.on_send(p);
          in_flight.push_back(static_cast<int>(rng.bounded(n)));
        } else {
          active[p] = false;
          td.set_active(p, false);
        }
      }
    } else if (roll < 7 && !in_flight.empty()) {
      // Deliver a random in-flight message.
      const auto idx = rng.bounded(in_flight.size());
      const int dst = in_flight[idx];
      in_flight.erase(in_flight.begin() + static_cast<long>(idx));
      td.on_receive(dst);
      if (!active[dst]) {
        active[dst] = true;
        td.set_active(dst, true);
        // Receiving grants a little more work occasionally.
        if (rng.chance(0.3) && total_budget < 500) {
          ++work[dst];
          ++total_budget;
        }
      }
    } else {
      const bool detected = td.try_advance();
      ASSERT_EQ(detected && !model_quiescent(), false)
          << "SAFETY violated: detected termination early (seed "
          << GetParam() << ")";
      if (detected) break;
    }
    if (model_quiescent()) break;
  }

  // Drain: the model is quiescent (or the guard tripped with everything
  // idle); the detector must now fire within a few circulations.
  ASSERT_TRUE(model_quiescent());
  bool detected = td.terminated();
  for (int i = 0; i < 4 * n && !detected; ++i) detected = td.try_advance();
  EXPECT_TRUE(detected) << "LIVENESS violated (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TerminationRandom,
                         testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace sg::engine
