// Engine-layer tests: load-balancer kernel schedules, config variants,
// run statistics, memory charging / OOM propagation, and executor-level
// behavioural properties that the algorithm sweeps do not isolate.
#include <gtest/gtest.h>

#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "algo/reference.hpp"
#include "engine/config.hpp"
#include "engine/executor.hpp"
#include "engine/load_balancer.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "sim/device_memory.hpp"

namespace sg::engine {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;

// ---- analyze_kernel ---------------------------------------------------------

TEST(LoadBalancerT, EmptyWorkIsEmptySchedule) {
  const auto s = analyze_kernel({}, sim::Balancer::TWC, 224);
  EXPECT_EQ(s.total_edges, 0u);
  EXPECT_EQ(s.active_vertices, 0u);
  EXPECT_EQ(s.max_block_edges, 0u);
}

TEST(LoadBalancerT, TwcKeepsHugeVertexInOneBlock) {
  // 1 vertex with 100k edges + 223 unit vertices: the hub's block
  // dominates under TWC.
  std::vector<std::uint32_t> work(224, 1);
  work[0] = 100000;
  const auto s = analyze_kernel(work, sim::Balancer::TWC, 224);
  EXPECT_GE(s.max_block_edges, 100000u);
  EXPECT_FALSE(s.alb_split);
}

TEST(LoadBalancerT, AlbSplitsHugeVertexAcrossBlocks) {
  std::vector<std::uint32_t> work(224, 1);
  work[0] = 100000;
  const auto s = analyze_kernel(work, sim::Balancer::ALB, 224);
  EXPECT_TRUE(s.alb_split);
  // ~100224/224 edges per block after splitting.
  EXPECT_LT(s.max_block_edges, 2000u);
  EXPECT_EQ(s.total_edges, 100223u);
}

TEST(LoadBalancerT, UniformWorkIsBalancedUnderBoth) {
  std::vector<std::uint32_t> work(2240, 10);
  const auto twc = analyze_kernel(work, sim::Balancer::TWC, 224);
  const auto alb = analyze_kernel(work, sim::Balancer::ALB, 224);
  EXPECT_EQ(twc.max_block_edges, 100u);
  EXPECT_EQ(alb.max_block_edges, 100u);
  EXPECT_FALSE(alb.alb_split);
}

TEST(LoadBalancerT, FewerItemsThanBlocks) {
  std::vector<std::uint32_t> work = {7, 9, 3};
  const auto s = analyze_kernel(work, sim::Balancer::TWC, 224);
  EXPECT_EQ(s.max_block_edges, 9u);
  EXPECT_EQ(s.total_edges, 19u);
}

// ---- config variants ----------------------------------------------------------

TEST(Variants, MatchPaperDefinitions) {
  const auto v1 = make_variant(Variant::kVar1);
  EXPECT_EQ(v1.balancer, sim::Balancer::TWC);
  EXPECT_EQ(v1.sync_mode, comm::SyncMode::kAS);
  EXPECT_EQ(v1.exec_model, ExecModel::kSync);

  const auto v2 = make_variant(Variant::kVar2);
  EXPECT_EQ(v2.balancer, sim::Balancer::ALB);
  EXPECT_EQ(v2.sync_mode, comm::SyncMode::kAS);
  EXPECT_EQ(v2.exec_model, ExecModel::kSync);

  const auto v3 = make_variant(Variant::kVar3);
  EXPECT_EQ(v3.sync_mode, comm::SyncMode::kUO);
  EXPECT_EQ(v3.exec_model, ExecModel::kSync);

  const auto v4 = make_variant(Variant::kVar4);
  EXPECT_EQ(v4.sync_mode, comm::SyncMode::kUO);
  EXPECT_EQ(v4.exec_model, ExecModel::kAsync);
  EXPECT_EQ(to_string(Variant::kVar4), "Var4");
}

// ---- RunStats -------------------------------------------------------------------

TEST(RunStatsT, AggregatesAreComputedOverDevices) {
  RunStats st;
  st.resize(3);
  st.compute_time = {sim::SimTime{1.0}, sim::SimTime{3.0}, sim::SimTime{2.0}};
  st.wait_time = {sim::SimTime{0.5}, sim::SimTime{0.2}, sim::SimTime{0.9}};
  st.device_comm_time = {sim::SimTime{0.1}, sim::SimTime{0.4},
                         sim::SimTime{0.2}};
  st.work_items = {10, 20, 30};
  st.rounds = {5, 7, 6};
  st.peak_memory = {100, 300, 200};
  EXPECT_DOUBLE_EQ(st.max_compute().seconds(), 3.0);
  EXPECT_DOUBLE_EQ(st.min_wait().seconds(), 0.2);
  EXPECT_DOUBLE_EQ(st.max_device_comm().seconds(), 0.4);
  EXPECT_EQ(st.total_work(), 60u);
  EXPECT_EQ(st.min_rounds(), 5u);
  EXPECT_EQ(st.max_rounds(), 7u);
  EXPECT_EQ(st.max_memory(), 300u);
  EXPECT_DOUBLE_EQ(st.dynamic_balance(), 1.5);
  EXPECT_DOUBLE_EQ(st.memory_balance(), 1.5);
}

// ---- memory charging / OOM -------------------------------------------------------

TEST(ExecutorMemory, TinyDevicesOomAndReportTheDevice) {
  const auto g = graph::datasets::make("orkut");
  PreparedGraph prep(g, partition::Policy::OEC, 2);
  // A scale factor so large that per-device capacity is a few KB.
  const auto tiny = sim::Topology::bridges(2, 5e6);
  const auto p = params();
  EXPECT_THROW(
      algo::run_bfs(prep.dist, prep.sync, tiny, p,
                    cfg(ExecModel::kSync), 0),
      sim::OutOfDeviceMemory);
}

TEST(ExecutorMemory, PeakMemoryGrowsWithReplication) {
  const auto g = graph::datasets::make("orkut");
  const auto t = test::topo(4);
  const auto p = params();
  PreparedGraph oec(g, partition::Policy::OEC, 4);
  PreparedGraph rnd(g, partition::Policy::RANDOM, 4);
  const auto src = graph::datasets::default_source(g);
  const auto a = algo::run_bfs(oec.dist, oec.sync, t, p,
                               cfg(ExecModel::kSync), src);
  const auto b = algo::run_bfs(rnd.dist, rnd.sync, t, p,
                               cfg(ExecModel::kSync), src);
  EXPECT_LT(a.stats.max_memory(), b.stats.max_memory());
}

TEST(ExecutorMemory, StaticPoolSetsFlatPeak) {
  const auto g = graph::datasets::make("rmat23");
  PreparedGraph prep(g, partition::Policy::IEC, 2);
  const auto t = test::topo(2);
  const auto p = params();
  auto c = cfg(ExecModel::kSync, comm::SyncMode::kAS);
  c.static_pool_bytes = t.min_device_memory() / 2;
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p, c, 0);
  for (auto peak : r.stats.peak_memory) {
    EXPECT_EQ(peak, c.static_pool_bytes);
  }
}

TEST(ExecutorMemory, MismatchedTopologyIsRejected) {
  const auto g = graph::path_graph(16);
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = test::topo(2);
  const auto p = params();
  EXPECT_THROW(algo::run_bfs(prep.dist, prep.sync, t, p,
                             cfg(ExecModel::kSync), 0),
               std::invalid_argument);
}

// ---- executor behaviour ------------------------------------------------------------

TEST(ExecutorBehaviour, UoNeverSendsMoreVolumeThanAs) {
  const auto g = graph::datasets::make("orkut");
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::IEC, 8);
  const auto t = test::topo(8);
  const auto p = params();
  const auto uo = algo::run_bfs(prep.dist, prep.sync, t, p,
                                cfg(ExecModel::kSync, comm::SyncMode::kUO),
                                src);
  const auto as = algo::run_bfs(prep.dist, prep.sync, t, p,
                                cfg(ExecModel::kSync, comm::SyncMode::kAS),
                                src);
  EXPECT_LT(uo.stats.comm.total_volume(), as.stats.comm.total_volume());
  EXPECT_EQ(uo.dist, as.dist);
}

TEST(ExecutorBehaviour, StructuralOptElisionReducesVolume) {
  // Under OEC + push pattern, structural-invariant elision removes the
  // entire broadcast direction; disabling it (Lux-style) must cost more.
  const auto g = graph::datasets::make("orkut");
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::OEC, 8);
  const auto t = test::topo(8);
  const auto p = params();
  auto with = cfg(ExecModel::kSync, comm::SyncMode::kAS);
  auto without = with;
  without.structural_opt = false;
  const auto a = algo::run_bfs(prep.dist, prep.sync, t, p, with, src);
  const auto b = algo::run_bfs(prep.dist, prep.sync, t, p, without, src);
  EXPECT_LT(a.stats.comm.total_volume(), b.stats.comm.total_volume());
  EXPECT_EQ(a.dist, b.dist);
}

TEST(ExecutorBehaviour, SingleDeviceHasNoCommunication) {
  const auto g = graph::datasets::make("rmat23");
  PreparedGraph prep(g, partition::Policy::OEC, 1);
  const auto t = test::topo(1);
  const auto p = params();
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(ExecModel::kSync),
                               graph::datasets::default_source(g));
  EXPECT_EQ(r.stats.comm.messages, 0u);
  EXPECT_EQ(r.stats.comm.total_volume(), 0u);
  EXPECT_DOUBLE_EQ(r.stats.max_device_comm().seconds(), 0.0);
}

TEST(ExecutorBehaviour, TimeAdvancesAndBreakdownIsConsistent) {
  const auto g = graph::datasets::make("orkut");
  PreparedGraph prep(g, partition::Policy::CVC, 8);
  const auto t = test::topo(8);
  const auto p = params();
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(ExecModel::kSync),
                               graph::datasets::default_source(g));
  EXPECT_GT(r.stats.total_time.seconds(), 0.0);
  EXPECT_GT(r.stats.max_compute().seconds(), 0.0);
  // Each per-device timeline component must fit inside the total.
  for (int d = 0; d < 8; ++d) {
    const double sum = r.stats.compute_time[d].seconds() +
                       r.stats.device_comm_time[d].seconds() +
                       r.stats.wait_time[d].seconds();
    EXPECT_LE(r.stats.compute_time[d].seconds(),
              r.stats.total_time.seconds() + 1e-12);
    EXPECT_LE(sum, r.stats.total_time.seconds() * 1.05 + 1e-9);
  }
}

TEST(ExecutorBehaviour, FixedRoundsRunsExactlyThatManyRounds) {
  const auto g = graph::datasets::make("rmat23");
  PreparedGraph prep(g, partition::Policy::IEC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  auto c = cfg(ExecModel::kSync, comm::SyncMode::kAS);
  c.fixed_rounds = 7;
  const auto r = algo::run_pagerank_lux(prep.dist, prep.sync, t, p, c);
  EXPECT_EQ(r.stats.global_rounds, 7u);
}

TEST(ExecutorBehaviour, BaspTotalTimeBoundedByDeviceTimelines) {
  const auto g = graph::datasets::make("orkut");
  PreparedGraph prep(g, partition::Policy::CVC, 8);
  const auto t = test::topo(8);
  const auto p = params();
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(ExecModel::kAsync),
                               graph::datasets::default_source(g));
  for (int d = 0; d < 8; ++d) {
    const double busy = r.stats.compute_time[d].seconds() +
                        r.stats.device_comm_time[d].seconds() +
                        r.stats.wait_time[d].seconds();
    EXPECT_LE(busy, r.stats.total_time.seconds() * 1.05 + 1e-9);
  }
  EXPECT_GT(r.stats.global_rounds, 0u);
}

TEST(ExecutorBehaviour, AlbBeatsTwcOnHugeInDegreePull) {
  // The Section V-B2 result: pull-style pagerank on an input with a huge
  // max in-degree is thread-block imbalanced under TWC; ALB fixes it.
  const auto g = graph::datasets::make("clueweb12");
  PreparedGraph prep(g, partition::Policy::IEC, 8);
  const auto t = test::topo(8);
  const auto p = params();
  const auto twc = algo::run_pagerank(
      prep.dist, prep.sync, t, p,
      cfg(ExecModel::kSync, comm::SyncMode::kAS, sim::Balancer::TWC));
  const auto alb = algo::run_pagerank(
      prep.dist, prep.sync, t, p,
      cfg(ExecModel::kSync, comm::SyncMode::kAS, sim::Balancer::ALB));
  EXPECT_LT(alb.stats.max_compute().seconds(),
            twc.stats.max_compute().seconds() * 0.8);
}


// ---- Section VII projected improvements -------------------------------------

TEST(FutureOptimizations, GpudirectPreservesResultsAndCutsCommTime) {
  const auto g = graph::datasets::make("orkut");
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::CVC, 8);
  const auto t = test::topo(8);
  auto base = params();
  auto direct = params();
  direct.gpudirect = true;
  const auto a = algo::run_bfs(prep.dist, prep.sync, t, base,
                               cfg(ExecModel::kSync), src);
  const auto b = algo::run_bfs(prep.dist, prep.sync, t, direct,
                               cfg(ExecModel::kSync), src);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_LT(b.stats.max_device_comm().seconds(),
            a.stats.max_device_comm().seconds());
  EXPECT_LE(b.stats.total_time.seconds(), a.stats.total_time.seconds());
}

TEST(FutureOptimizations, OverlapPreservesResultsAndNeverSlowsDown) {
  const auto g = graph::datasets::make("orkut");
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::IEC, 8);
  const auto t = test::topo(8);
  const auto p = params();
  for (auto model : {ExecModel::kSync, ExecModel::kAsync}) {
    auto plain = cfg(model);
    auto overlapped = cfg(model);
    overlapped.overlap_comm = true;
    const auto a = algo::run_bfs(prep.dist, prep.sync, t, p, plain, src);
    const auto b = algo::run_bfs(prep.dist, prep.sync, t, p, overlapped,
                                 src);
    EXPECT_EQ(a.dist, b.dist);
    if (model == ExecModel::kSync) {
      // Identical message contents and schedule apart from pipelining:
      // the overlapped run can only be faster under BSP.
      EXPECT_LE(b.stats.total_time.seconds(),
                a.stats.total_time.seconds() + 1e-12);
    }
  }
}


TEST(ExecutorBehaviour, TraceCollectsPerRoundActivity) {
  const auto g = graph::datasets::make("orkut");
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::IEC, 4);
  const auto t = test::topo(4);
  const auto p = params();
  auto c = cfg(ExecModel::kSync);
  c.collect_trace = true;
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p, c, src);
  ASSERT_EQ(r.stats.trace.size(), r.stats.global_rounds);
  std::uint64_t traced_edges = 0, traced_volume = 0;
  for (const auto& tr : r.stats.trace) {
    traced_edges += tr.edges;
    traced_volume += tr.volume_bytes;
  }
  EXPECT_EQ(traced_edges, r.stats.total_work());
  EXPECT_EQ(traced_volume, r.stats.comm.total_volume());
  // Without the flag the trace stays empty.
  const auto r2 = algo::run_bfs(prep.dist, prep.sync, t, p,
                                cfg(ExecModel::kSync), src);
  EXPECT_TRUE(r2.stats.trace.empty());
}

}  // namespace
}  // namespace sg::engine
