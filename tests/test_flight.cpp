// Flight recorder + host-time profiler tests: seqlock ring semantics
// (wraparound, drop accounting, detail truncation), deterministic JSON
// (byte-stable across record interleavings and across reruns of a
// seeded faulted engine run), the dump-on-abort black box, the
// zero-report-change contract when the observability layer is armed
// but nothing opts in, profiler scope merging and self-overhead, and
// the report_diff host-time opt-in bands.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "engine/config.hpp"
#include "fault/fault.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"
#include "obs/report.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr tiny_graph() {
  graph::SyntheticSpec s;
  s.vertices = 500;
  s.edges = 4000;
  s.zipf_out = 0.6;
  s.zipf_in = 0.7;
  s.communities = 2;
  s.seed = 11;
  return graph::synthetic(s);
}

std::filesystem::path tmp_file(const std::string& name) {
  const auto p = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove(p);
  return p;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string deterministic_json(const obs::FlightRecorder& rec) {
  obs::JsonWriter w;
  rec.write_json(w, /*include_wall=*/false);
  return w.take();
}

// ---- ring semantics ------------------------------------------------------

TEST(FlightRing, WrapKeepsNewestEventsAndCountsDropped) {
  obs::FlightRecorder rec(8);
  ASSERT_EQ(rec.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    rec.record(obs::FlightKind::kNote, i % 4, i, 2 * i, "note",
               static_cast<double>(i));
  }
  EXPECT_EQ(rec.total(), 20u);
  EXPECT_EQ(rec.recorded(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest 12 overwritten: the ring retains seq 12..19 in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12u + i);
    EXPECT_EQ(events[i].a, static_cast<std::int64_t>(12 + i));
  }
}

TEST(FlightRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(obs::FlightRecorder(1).capacity(), 2u);
  EXPECT_EQ(obs::FlightRecorder(64).capacity(), 64u);
}

TEST(FlightRing, DetailIsBoundedAndNulTerminated) {
  obs::FlightRecorder rec(4);
  rec.record(obs::FlightKind::kNote, 0, 0, 0,
             "this-detail-tag-is-far-longer-than-the-slot", 0.0);
  rec.record(obs::FlightKind::kNote, 0, 0, 0, nullptr, 0.0);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(std::strlen(events[0].detail), sizeof(events[0].detail) - 1);
  EXPECT_EQ(std::string(events[0].detail),
            std::string("this-detail-tag-is-far-longer-than-the-slot")
                .substr(0, sizeof(events[0].detail) - 1));
  EXPECT_EQ(std::strlen(events[1].detail), 0u);
}

TEST(FlightRing, ClearForgetsEverything) {
  obs::FlightRecorder rec(8);
  for (int i = 0; i < 5; ++i)
    rec.record(obs::FlightKind::kRound, 0, i, 0, "r", 0.1 * i);
  rec.clear();
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

// ---- deterministic serialization -----------------------------------------

TEST(FlightRing, DeterministicJsonIsByteStableAcrossRecordOrder) {
  // Same multiset of events recorded in two different interleavings
  // (as racing pool threads would): the deterministic dump must be
  // byte-identical, because it canonicalizes on the simulated fields.
  obs::FlightRecorder a(64);
  obs::FlightRecorder b(64);
  a.record(obs::FlightKind::kRound, -1, 1, 0, "bsp", 0.001);
  a.record(obs::FlightKind::kWire, 2, 0, 7, "checksum_reject", 0.002);
  a.record(obs::FlightKind::kCrash, 3, 5, 0, "crash", 0.003);

  b.record(obs::FlightKind::kCrash, 3, 5, 0, "crash", 0.003);
  b.record(obs::FlightKind::kRound, -1, 1, 0, "bsp", 0.001);
  b.record(obs::FlightKind::kWire, 2, 0, 7, "checksum_reject", 0.002);

  EXPECT_EQ(deterministic_json(a), deterministic_json(b));

  const std::string det = deterministic_json(a);
  EXPECT_EQ(det.find("\"seq\""), std::string::npos);
  EXPECT_EQ(det.find("\"wall_ns\""), std::string::npos);
  EXPECT_NE(det.find("\"nondeterministic\":false"), std::string::npos);

  // Black-box mode keeps raw order + host stamps and says so.
  obs::JsonWriter w;
  a.write_json(w, /*include_wall=*/true);
  const std::string raw = w.take();
  EXPECT_NE(raw.find("\"seq\""), std::string::npos);
  EXPECT_NE(raw.find("\"wall_ns\""), std::string::npos);
  EXPECT_NE(raw.find("\"nondeterministic\":true"), std::string::npos);
}

TEST(FlightEngine, FaultedRunDumpIsDeterministicAcrossReruns) {
  const auto g = tiny_graph();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();

  // A crash with checkpointing exercises kRound, kCheckpoint, kCrash,
  // and kRollback on simulated (deterministic) timestamps. Probe run
  // finds the total time so the crash lands mid-run.
  const auto probe =
      algo::run_bfs(prep.dist, prep.sync, t, p,
                    cfg(engine::ExecModel::kSync), src);

  auto run_with_flight = [&](obs::FlightRecorder& rec) {
    fault::FaultPlan plan;
    plan.crash_device(1, probe.stats.total_time * 0.5);
    auto c = cfg(engine::ExecModel::kSync);
    c.fault_plan = &plan;
    c.checkpoint.interval_rounds = 2;
    c.flight = &rec;
    return algo::run_bfs(prep.dist, prep.sync, t, p, c, src);
  };

  obs::FlightRecorder rec1(4096);
  obs::FlightRecorder rec2(4096);
  const auto r1 = run_with_flight(rec1);
  const auto r2 = run_with_flight(rec2);
  EXPECT_EQ(r1.dist, r2.dist);
  EXPECT_EQ(r1.dist, probe.dist);

  EXPECT_GT(rec1.recorded(), 0u);
  EXPECT_EQ(rec1.dropped(), 0u) << "scenario must not wrap the ring";
  const std::string d1 = deterministic_json(rec1);
  EXPECT_EQ(d1, deterministic_json(rec2));
  EXPECT_NE(d1.find("\"kind\":\"round\""), std::string::npos);
  EXPECT_NE(d1.find("\"kind\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(d1.find("\"kind\":\"crash\""), std::string::npos);
  EXPECT_NE(d1.find("\"kind\":\"rollback\""), std::string::npos);
}

// ---- dump-on-abort black box ----------------------------------------------

TEST(FlightDump, AbortDumpWritesBlackBoxOnException) {
  const auto path = tmp_file("sg_flight_abort.json");
  obs::FlightRecorder rec(64);
  rec.record(obs::FlightKind::kNote, 0, 1, 2, "breadcrumb", 0.5);
  try {
    obs::AbortDump guard(rec, path, 1.25);
    guard.advance(2.5);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto doc = obs::parse_json(slurp(path));
  EXPECT_EQ(static_cast<int>(doc.find("sg_flight_schema")->num_or(-1)),
            obs::kFlightSchemaVersion);
  EXPECT_EQ(doc.find("trigger")->str_or(""), "engine_abort");
  ASSERT_TRUE(doc.find("flight.events")->is_array());
  bool saw_abort = false;
  bool saw_breadcrumb = false;
  for (const auto& e : doc.find("flight.events")->array) {
    const std::string kind = e.find("kind")->str_or("");
    if (kind == "abort") {
      saw_abort = true;
      // advance() updated the stamped simulated time.
      EXPECT_EQ(static_cast<std::int64_t>(e.find("t_us")->num_or(0)),
                2'500'000);
    }
    if (e.find("detail")->str_or("") == "breadcrumb") saw_breadcrumb = true;
  }
  EXPECT_TRUE(saw_abort);
  EXPECT_TRUE(saw_breadcrumb);
}

TEST(FlightDump, NoDumpWhenScopeExitsCleanly) {
  const auto path = tmp_file("sg_flight_clean.json");
  obs::FlightRecorder rec(64);
  {
    obs::AbortDump guard(rec, path, 0.0);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(rec.total(), 0u);  // no kAbort breadcrumb either
}

// ---- zero report change when nothing opts in -------------------------------

TEST(FlightReport, ArmedObservabilityLeavesReportByteIdentical) {
  const auto g = tiny_graph();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();

  auto report_of = [&](const engine::EngineConfig& c) {
    const auto r = algo::run_bfs(prep.dist, prep.sync, t, p, c, src);
    obs::ReportMeta m;
    m.bench = "test";
    m.label = "bfs/tiny/D-IrGL/Var3/4";
    obs::ReportWriter w("test");
    w.add(m, r.stats);  // no HostTime: v1-shaped run object
    return w.json();
  };

  const std::string plain = report_of(cfg(engine::ExecModel::kSync));

  obs::FlightRecorder rec(4096);
  obs::Profiler prof;
  prof.set_enabled(true);
  auto armed = cfg(engine::ExecModel::kSync);
  armed.flight = &rec;
  armed.profiler = &prof;
  const std::string with_obs = report_of(armed);

  EXPECT_EQ(plain, with_obs);
  EXPECT_EQ(plain.find("host_time"), std::string::npos);
  EXPECT_GT(rec.recorded(), 0u);            // recorder did observe the run
  EXPECT_GT(prof.snapshot().scopes, 0u);    // profiler did time the run
  static_assert(std::is_trivially_copyable_v<obs::FlightEvent>);
}

TEST(FlightReport, HostTimeSectionIsOptInAndMarked) {
  engine::RunStats st;
  st.resize(2);
  st.total_time = sim::SimTime{1.0};
  obs::ReportMeta m;
  m.bench = "test";
  m.label = "run-a";

  obs::ReportWriter without("test");
  without.add(m, st);
  EXPECT_EQ(without.json().find("host_time"), std::string::npos);

  obs::Profiler prof;
  prof.set_enabled(true);
  { const auto s = prof.scope("unit.work"); }
  obs::HostTime host;
  host.host_wall_ms = 12.5;
  host.profiler = &prof;
  obs::ReportWriter with("test");
  with.add(m, st, nullptr, nullptr, &host);
  const auto doc = obs::parse_json(with.json());
  const auto& run = doc.find("runs")->array.at(0);
  EXPECT_DOUBLE_EQ(run.find("host_time.host_wall_ms")->num_or(-1), 12.5);
  EXPECT_TRUE(run.find("host_time.nondeterministic")->boolean);
  ASSERT_NE(run.find("host_time.profile"), nullptr);
  EXPECT_EQ(static_cast<int>(
                run.find("host_time.profile.sg_host_time_schema")->num_or(-1)),
            obs::kHostTimeSchemaVersion);
}

// ---- profiler ---------------------------------------------------------------

TEST(Prof, DisabledProfilerIsANoOp) {
  obs::Profiler p;  // disabled by default
  for (int i = 0; i < 100; ++i) {
    const auto s = p.scope("never.recorded");
  }
  const auto snap = p.snapshot();
  EXPECT_EQ(snap.scopes, 0u);
  EXPECT_TRUE(snap.roots.empty());
  EXPECT_DOUBLE_EQ(snap.self_overhead_ms(), 0.0);
}

TEST(Prof, MergesNestedScopesIntoOneTree) {
  obs::Profiler p;
  p.set_enabled(true);
  constexpr int kIters = 50;
  for (int i = 0; i < kIters; ++i) {
    const auto outer = p.scope("outer");
    {
      const auto inner = p.scope("inner");
    }
    {
      const auto inner2 = p.scope("inner2");
    }
  }
  const auto snap = p.snapshot();
  EXPECT_EQ(snap.scopes, 3u * kIters);
  ASSERT_EQ(snap.roots.size(), 1u);
  EXPECT_EQ(snap.roots[0].name, "outer");
  EXPECT_EQ(snap.roots[0].calls, static_cast<std::uint64_t>(kIters));
  ASSERT_EQ(snap.roots[0].children.size(), 2u);  // name-sorted
  EXPECT_EQ(snap.roots[0].children[0].name, "inner");
  EXPECT_EQ(snap.roots[0].children[1].name, "inner2");
  EXPECT_EQ(snap.roots[0].children[0].calls,
            static_cast<std::uint64_t>(kIters));
  // A parent's time includes its children's.
  EXPECT_GE(snap.roots[0].total_ns, snap.roots[0].children[0].total_ns);

  p.reset();
  EXPECT_EQ(p.snapshot().scopes, 0u);
}

TEST(Prof, SelfOverheadStaysBelowTwoPercentOfRealWork) {
  obs::Profiler p;
  p.set_enabled(true);
  // Each scope wraps real work several orders of magnitude larger than
  // a scope enter/exit, so the calibrated overhead estimate must come
  // out well under 2% of the measured total. The volatile sink keeps
  // the optimizer from folding the work away.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 200; ++i) {
    const auto s = p.scope("work.chunk");
    for (std::uint64_t j = 0; j < 20'000; ++j) sink = sink + j;
  }
  const auto snap = p.snapshot();
  ASSERT_EQ(snap.scopes, 200u);
  ASSERT_EQ(snap.roots.size(), 1u);
  const double total_ms =
      static_cast<double>(snap.roots[0].total_ns) / 1e6;
  ASSERT_GT(total_ms, 0.0);
  EXPECT_LT(snap.self_overhead_ms(), 0.02 * total_ms)
      << "overhead " << snap.self_overhead_ms() << "ms of " << total_ms
      << "ms";
}

// ---- report_diff host-time bands -------------------------------------------

engine::RunStats flat_stats() {
  engine::RunStats st;
  st.resize(2);
  st.total_time = sim::SimTime{1.0};
  st.global_rounds = 3;
  return st;
}

std::string report_with_host(double host_wall_ms) {
  obs::ReportMeta m;
  m.bench = "test";
  m.label = "run-a";
  obs::HostTime host;
  host.host_wall_ms = host_wall_ms;
  obs::ReportWriter w("test");
  w.add(m, flat_stats(), nullptr, nullptr, &host);
  return w.json();
}

TEST(HostTimeDiff, ComparedOnlyWhenOptedIn) {
  const auto base = obs::parse_json(report_with_host(100.0));
  const auto cur = obs::parse_json(report_with_host(200.0));

  // Default options: host time never diffed, simulated metrics equal.
  const auto plain = obs::diff_reports(base, cur);
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_EQ(plain.regressions(), 0);
  for (const auto& i : plain.items) EXPECT_NE(i.metric, "host_wall_ms");

  // rel_tolerance opts in: +100% over a 50% band regresses...
  obs::DiffOptions tight;
  tight.rel_tolerance = 0.5;
  const auto r = obs::diff_reports(base, cur, tight);
  int host_items = 0;
  for (const auto& i : r.items) {
    if (i.metric == "host_wall_ms") {
      ++host_items;
      EXPECT_TRUE(i.regressed);
      EXPECT_NEAR(i.rel_delta, 1.0, 1e-9);
    }
  }
  EXPECT_EQ(host_items, 1);
  EXPECT_EQ(r.regressions(), 1);

  // ...and a generous band absorbs it.
  obs::DiffOptions lax;
  lax.rel_tolerance = 2.0;
  EXPECT_EQ(obs::diff_reports(base, cur, lax).regressions(), 0);

  // A --band naming the metric also enables it and wins over
  // rel_tolerance.
  obs::DiffOptions banded;
  banded.rel_tolerance = 5.0;
  banded.bands.emplace_back("host_wall_ms", 0.25);
  EXPECT_EQ(obs::diff_reports(base, cur, banded).regressions(), 1);

  obs::DiffOptions band_only;
  band_only.bands.emplace_back("host_wall_ms", 0.25);
  EXPECT_EQ(obs::diff_reports(base, cur, band_only).regressions(), 1);
}

TEST(HostTimeDiff, V1BaselineWithoutHostTimeStillDiffs) {
  // A committed v1 baseline predates host_time entirely; diffing it
  // against a v2 report must keep working and silently skip the
  // host metric even when opted in.
  obs::ReportMeta m;
  m.bench = "test";
  m.label = "run-a";
  obs::ReportWriter base_w("test");
  base_w.add(m, flat_stats());
  auto base = obs::parse_json(base_w.json());
  base.object["schema_version"].number = 1;  // age the baseline

  const auto cur = obs::parse_json(report_with_host(50.0));
  obs::DiffOptions opts;
  opts.rel_tolerance = 0.5;
  const auto r = obs::diff_reports(base, cur, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.regressions(), 0);
  for (const auto& i : r.items) EXPECT_NE(i.metric, "host_wall_ms");
}

}  // namespace
}  // namespace sg
