// Partitioner invariants, parameterized over every policy and several
// device counts: exact edge conservation, unique master placement,
// policy-specific structural invariants (OEC/IEC/CVC), and the quality
// statistics Table IV depends on.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "partition/cvc.hpp"
#include "partition/dist_graph.hpp"
#include "partition/partition_io.hpp"

#include <filesystem>
#include <unistd.h>

namespace sg::partition {
namespace {

using graph::Csr;
using graph::EdgeId;
using graph::VertexId;

Csr test_graph() {
  graph::SyntheticSpec s;
  s.vertices = 1200;
  s.edges = 15000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.9;
  s.hub_in_frac = 0.03;
  s.communities = 4;
  s.seed = 31;
  return graph::synthetic(s);
}

struct Param {
  Policy policy;
  int devices;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return std::string(to_string(info.param.policy)) + "_d" +
         std::to_string(info.param.devices);
}

class PolicySweep : public testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    g_ = test_graph();
    PartitionOptions opts;
    opts.policy = GetParam().policy;
    opts.num_devices = GetParam().devices;
    dg_ = std::make_unique<DistGraph>(partition_graph(g_, opts));
  }
  Csr g_;
  std::unique_ptr<DistGraph> dg_;
};

TEST_P(PolicySweep, EveryEdgeAssignedExactlyOnce) {
  std::map<std::pair<VertexId, VertexId>, int> counts;
  for (VertexId u = 0; u < g_.num_vertices(); ++u) {
    for (VertexId v : g_.neighbors(u)) ++counts[{u, v}];
  }
  std::map<std::pair<VertexId, VertexId>, int> seen;
  for (const auto& lg : dg_->parts()) {
    for (VertexId u = 0; u < lg.num_local; ++u) {
      for (VertexId v : lg.out_neighbors(u)) {
        ++seen[{lg.l2g[u], lg.l2g[v]}];
      }
    }
  }
  EXPECT_EQ(counts, seen);
}

TEST_P(PolicySweep, EveryVertexHasExactlyOneMaster) {
  std::vector<int> master_count(g_.num_vertices(), 0);
  for (const auto& lg : dg_->parts()) {
    for (VertexId v = 0; v < lg.num_masters; ++v) {
      ++master_count[lg.l2g[v]];
      EXPECT_EQ(dg_->master_of(lg.l2g[v]), lg.device);
    }
  }
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    EXPECT_EQ(master_count[v], 1) << "vertex " << v;
  }
}

TEST_P(PolicySweep, LocalIdsAreConsistent) {
  for (const auto& lg : dg_->parts()) {
    ASSERT_EQ(lg.l2g.size(), lg.num_local);
    for (VertexId v = 0; v < lg.num_local; ++v) {
      const auto it = lg.g2l.find(lg.l2g[v]);
      ASSERT_NE(it, lg.g2l.end());
      EXPECT_EQ(it->second, v);
    }
  }
}

TEST_P(PolicySweep, FlagsMatchLocalEdges) {
  for (const auto& lg : dg_->parts()) {
    for (VertexId v = 0; v < lg.num_local; ++v) {
      EXPECT_EQ(lg.has_out(v), lg.out_degree(v) > 0);
      EXPECT_EQ(lg.has_in(v), lg.in_degree(v) > 0);
    }
  }
}

TEST_P(PolicySweep, MirrorsExistOnlyWhereEdgesDemand) {
  for (const auto& lg : dg_->parts()) {
    for (VertexId v = lg.num_masters; v < lg.num_local; ++v) {
      EXPECT_TRUE(lg.has_out(v) || lg.has_in(v))
          << "edge-less mirror " << lg.l2g[v] << " on device " << lg.device;
    }
  }
}

TEST_P(PolicySweep, InCsrIsLocalInverseOfOutCsr) {
  for (const auto& lg : dg_->parts()) {
    std::multiset<std::pair<VertexId, VertexId>> out_edges, in_edges;
    for (VertexId u = 0; u < lg.num_local; ++u) {
      for (VertexId v : lg.out_neighbors(u)) out_edges.emplace(u, v);
      for (VertexId s : lg.in_neighbors(u)) in_edges.emplace(s, u);
    }
    EXPECT_EQ(out_edges, in_edges);
  }
}

TEST_P(PolicySweep, GlobalDegreesCarriedCorrectly) {
  const auto out_deg = g_.out_degrees();
  const auto rev = g_.transpose();
  for (const auto& lg : dg_->parts()) {
    for (VertexId v = 0; v < lg.num_local; ++v) {
      EXPECT_EQ(lg.global_out_degree[v], out_deg[lg.l2g[v]]);
      EXPECT_EQ(lg.global_in_degree[v], rev.degree(lg.l2g[v]));
    }
  }
}

TEST_P(PolicySweep, StatsAreSane) {
  const auto& st = dg_->stats();
  EXPECT_GE(st.replication_factor, 1.0);
  EXPECT_GE(st.static_balance, 1.0 - 1e-9);
  EXPECT_GE(st.memory_balance, 1.0 - 1e-9);
  EdgeId total = 0;
  for (auto e : st.edges_per_device) total += e;
  EXPECT_EQ(total, g_.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    testing::ValuesIn([] {
      std::vector<Param> grid;
      for (auto p : {Policy::OEC, Policy::IEC, Policy::HVC, Policy::CVC,
                     Policy::RANDOM, Policy::GREEDY}) {
        for (int d : {1, 2, 3, 4, 8, 16}) grid.push_back({p, d});
      }
      return grid;
    }()),
    param_name);

// ---- policy-specific structural invariants -------------------------------

TEST(PolicyInvariants, OecKeepsAllOutEdgesAtMaster) {
  const auto g = test_graph();
  const auto dg = partition_graph(
      g, {.policy = Policy::OEC, .num_devices = 8});
  for (const auto& lg : dg.parts()) {
    for (VertexId v = lg.num_masters; v < lg.num_local; ++v) {
      EXPECT_EQ(lg.out_degree(v), 0u)
          << "OEC mirror with out-edges on device " << lg.device;
    }
  }
}

TEST(PolicyInvariants, IecKeepsAllInEdgesAtMaster) {
  const auto g = test_graph();
  const auto dg = partition_graph(
      g, {.policy = Policy::IEC, .num_devices = 8});
  for (const auto& lg : dg.parts()) {
    for (VertexId v = lg.num_masters; v < lg.num_local; ++v) {
      EXPECT_EQ(lg.in_degree(v), 0u)
          << "IEC mirror with in-edges on device " << lg.device;
    }
  }
}

TEST(PolicyInvariants, CvcMirrorsRespectGridRowsAndColumns) {
  const auto g = test_graph();
  const auto dg = partition_graph(
      g, {.policy = Policy::CVC, .num_devices = 8});
  const auto& grid = dg.grid();
  ASSERT_EQ(grid.devices(), 8);
  for (const auto& lg : dg.parts()) {
    for (VertexId v = lg.num_masters; v < lg.num_local; ++v) {
      const int owner = dg.master_of(lg.l2g[v]);
      if (lg.has_out(v)) {
        EXPECT_EQ(grid.row_of(lg.device), grid.row_of(owner))
            << "out-edge mirror off its master's grid row";
      }
      if (lg.has_in(v)) {
        EXPECT_EQ(grid.col_of(lg.device), grid.col_of(owner))
            << "in-edge mirror off its master's grid column";
      }
    }
  }
}

TEST(PolicyInvariants, EdgeCutsAreStaticallyBalanced) {
  const auto g = test_graph();
  for (auto policy : {Policy::OEC, Policy::IEC}) {
    const auto dg =
        partition_graph(g, {.policy = policy, .num_devices = 8});
    EXPECT_LT(dg.stats().static_balance, 1.25)
        << to_string(policy) << " should balance edges";
  }
}

TEST(PolicyInvariants, CvcReducesCommunicationPartners) {
  // On a dense-enough graph each CVC device only ever needs row+col
  // partners, strictly fewer than all-to-all for 16 devices.
  const auto g = test_graph();
  const auto dg = partition_graph(
      g, {.policy = Policy::CVC, .num_devices = 16});
  const auto& grid = dg.grid();
  EXPECT_EQ(grid.rows() * grid.cols(), 16);
  EXPECT_LE(grid.row_partners(0).size() + grid.col_partners(0).size(), 6u);
}

// ---- CvcGrid unit tests ---------------------------------------------------

TEST(CvcGrid, AutoShapeMatchesPaperExamples) {
  EXPECT_EQ(CvcGrid::auto_shape(8).rows(), 4);   // paper Figure 2: 4x2
  EXPECT_EQ(CvcGrid::auto_shape(8).cols(), 2);
  EXPECT_EQ(CvcGrid::auto_shape(16).rows(), 4);
  EXPECT_EQ(CvcGrid::auto_shape(16).cols(), 4);
  EXPECT_EQ(CvcGrid::auto_shape(64).rows(), 8);
  EXPECT_EQ(CvcGrid::auto_shape(2).rows(), 2);
  EXPECT_EQ(CvcGrid::auto_shape(2).cols(), 1);
  EXPECT_EQ(CvcGrid::auto_shape(7).rows(), 7);   // prime: 7x1
  EXPECT_EQ(CvcGrid::auto_shape(6).rows(), 3);
  EXPECT_EQ(CvcGrid::auto_shape(6).cols(), 2);
}

TEST(CvcGrid, EdgeOwnerLandsInRightRowAndColumn) {
  const CvcGrid grid(4, 2);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const int owner = grid.edge_owner(i, j);
      EXPECT_EQ(grid.row_of(owner), grid.row_of(i));
      EXPECT_EQ(grid.col_of(owner), grid.col_of(j));
    }
  }
}

TEST(CvcGrid, PartnersExcludeSelf) {
  const CvcGrid grid(4, 2);
  for (int d = 0; d < 8; ++d) {
    for (int p : grid.row_partners(d)) EXPECT_NE(p, d);
    for (int p : grid.col_partners(d)) EXPECT_NE(p, d);
    EXPECT_EQ(grid.row_partners(d).size(), 1u);
    EXPECT_EQ(grid.col_partners(d).size(), 3u);
  }
}

// ---- misc -------------------------------------------------------------------

TEST(Partitioner, SingleDeviceHasNoMirrors) {
  const auto g = test_graph();
  const auto dg = partition_graph(g, {.policy = Policy::CVC,
                                      .num_devices = 1});
  EXPECT_EQ(dg.part(0).num_mirrors(), 0u);
  EXPECT_DOUBLE_EQ(dg.stats().replication_factor, 1.0);
}

TEST(Partitioner, WeightsSurvivePartitioning) {
  const auto g = graph::add_random_weights(test_graph(), 1, 100, 77);
  const auto dg = partition_graph(g, {.policy = Policy::HVC,
                                      .num_devices = 4});
  std::map<std::pair<VertexId, VertexId>, graph::Weight> expected;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      expected[{u, nbrs[i]}] = ws[i];
    }
  }
  for (const auto& lg : dg.parts()) {
    ASSERT_FALSE(lg.out_weights.empty());
    for (VertexId u = 0; u < lg.num_local; ++u) {
      for (EdgeId e = lg.out_offsets[u]; e < lg.out_offsets[u + 1]; ++e) {
        EXPECT_EQ(lg.out_weights[e],
                  expected.at({lg.l2g[u], lg.l2g[lg.out_dsts[e]]}));
      }
    }
  }
}

TEST(Partitioner, RejectsBadOptions) {
  const auto g = graph::path_graph(4);
  EXPECT_THROW(partition_graph(g, {.num_devices = 0}),
               std::invalid_argument);
  EXPECT_THROW(partition_graph(g, {.policy = Policy::CVC,
                                   .num_devices = 8,
                                   .grid_rows = 3,
                                   .grid_cols = 2}),
               std::invalid_argument);
}

TEST(Partitioner, CvcGridOverrideIsHonored) {
  const auto g = test_graph();
  const auto dg = partition_graph(g, {.policy = Policy::CVC,
                                      .num_devices = 8,
                                      .grid_rows = 2,
                                      .grid_cols = 4});
  EXPECT_EQ(dg.grid().rows(), 2);
  EXPECT_EQ(dg.grid().cols(), 4);
}

TEST(Partitioner, HvcScattersHighInDegreeDestinations) {
  // The hub destination's in-edges must be spread over several devices
  // (that is the point of the hybrid cut).
  const auto g = test_graph();
  const auto rev = g.transpose();
  VertexId hub = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (rev.degree(v) > rev.degree(hub)) hub = v;
  }
  const auto dg = partition_graph(g, {.policy = Policy::HVC,
                                      .num_devices = 8});
  std::set<int> devices_with_hub_in_edges;
  for (const auto& lg : dg.parts()) {
    const auto it = lg.g2l.find(hub);
    if (it != lg.g2l.end() && lg.in_degree(it->second) > 0) {
      devices_with_hub_in_edges.insert(lg.device);
    }
  }
  EXPECT_GT(devices_with_hub_in_edges.size(), 4u);
}

TEST(Partitioner, GreedyProducesLocalityBetterThanRandom) {
  const auto g = test_graph();
  const auto greedy = partition_graph(g, {.policy = Policy::GREEDY,
                                          .num_devices = 8});
  const auto random = partition_graph(g, {.policy = Policy::RANDOM,
                                          .num_devices = 8});
  EXPECT_LT(greedy.stats().replication_factor,
            random.stats().replication_factor);
}

TEST(Partitioner, DatasetAnalogueStaticBalanceOrdering) {
  // Table IV: edge-cuts are statically balanced (1.00); CVC and HVC are
  // mildly imbalanced.
  const auto g = graph::datasets::make("uk07");
  const auto iec = partition_graph(g, {.policy = Policy::IEC,
                                       .num_devices = 32});
  const auto cvc = partition_graph(g, {.policy = Policy::CVC,
                                       .num_devices = 32});
  EXPECT_LT(iec.stats().static_balance, 1.1);
  EXPECT_GT(cvc.stats().static_balance, iec.stats().static_balance);
}


// ---- partition store (paper footnote: partition once, load directly) ------

TEST(PartitionIo, SaveLoadRoundTripIsExact) {
  const auto g = graph::add_random_weights(test_graph(), 1, 100, 3);
  const auto dg = partition_graph(g, {.policy = Policy::CVC,
                                      .num_devices = 8});
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sg_part_store_" + std::to_string(::getpid()));
  save_partition(dg, dir);
  const auto back = load_partition(dir);
  std::filesystem::remove_all(dir);

  ASSERT_EQ(back.num_devices(), dg.num_devices());
  EXPECT_EQ(back.global_vertices(), dg.global_vertices());
  EXPECT_EQ(back.global_edges(), dg.global_edges());
  EXPECT_EQ(back.weighted(), dg.weighted());
  EXPECT_EQ(back.master_directory(), dg.master_directory());
  EXPECT_EQ(back.grid().rows(), dg.grid().rows());
  EXPECT_EQ(back.grid().cols(), dg.grid().cols());
  EXPECT_DOUBLE_EQ(back.stats().replication_factor,
                   dg.stats().replication_factor);
  for (int d = 0; d < dg.num_devices(); ++d) {
    const auto& a = dg.part(d);
    const auto& b = back.part(d);
    EXPECT_EQ(b.num_masters, a.num_masters);
    EXPECT_EQ(b.num_local, a.num_local);
    EXPECT_EQ(b.out_offsets, a.out_offsets);
    EXPECT_EQ(b.out_dsts, a.out_dsts);
    EXPECT_EQ(b.out_weights, a.out_weights);
    EXPECT_EQ(b.in_offsets, a.in_offsets);
    EXPECT_EQ(b.in_srcs, a.in_srcs);
    EXPECT_EQ(b.l2g, a.l2g);
    EXPECT_EQ(b.vertex_flags, a.vertex_flags);
    EXPECT_EQ(b.global_out_degree, a.global_out_degree);
    EXPECT_EQ(b.global_in_degree, a.global_in_degree);
    // g2l is rebuilt, not stored; verify consistency.
    for (VertexId v = 0; v < b.num_local; ++v) {
      EXPECT_EQ(b.g2l.at(b.l2g[v]), v);
    }
  }
}

TEST(PartitionIo, LoadFailsCleanlyOnMissingStore) {
  EXPECT_THROW(load_partition("/nonexistent/sg_partition_store"),
               std::runtime_error);
}

}  // namespace
}  // namespace sg::partition
