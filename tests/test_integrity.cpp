// Integrity-auditor tests (DESIGN.md §13): shard digest and divergence
// localization primitives, detection-lag bookkeeping, the enriched
// checksum-mismatch diagnostics in blob_io, engine-level detect/repair
// behavior under injected label flips and checkpoint corruption, and
// the clean-run report byte-identity contract (enabling the auditor on
// an uncorrupted run must not change a single report byte).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/pagerank.hpp"
#include "algo/reference.hpp"
#include "comm/sync_structure.hpp"
#include "fault/fault.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "integrity/audit.hpp"
#include "integrity/auditor.hpp"
#include "obs/report.hpp"
#include "partition/blob_io.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr audit_graph() {
  graph::SyntheticSpec s;
  s.vertices = 600;
  s.edges = 5000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.hub_in_frac = 0.05;
  s.communities = 3;
  s.seed = 7;
  return graph::synthetic(s);
}

/// All (mirror device, global vertex) pairs of the partition's full
/// replication surface — the state the digest audit provably covers.
struct MirrorTarget {
  int device = -1;
  std::int64_t vertex = -1;
};

std::vector<MirrorTarget> mirror_targets(const PreparedGraph& prep,
                                         int devices) {
  std::vector<MirrorTarget> out;
  for (int m = 0; m < devices; ++m) {
    const auto& lg = prep.dist.part(m);
    for (int o = 0; o < devices; ++o) {
      if (o == m) continue;
      const auto& list = prep.sync.list(m, o, comm::ProxyFilter::kAll);
      for (const auto ml : list.mirror_local) {
        out.push_back({m, static_cast<std::int64_t>(lg.l2g[ml])});
      }
    }
  }
  return out;
}

// ---- digest + divergence primitives ------------------------------------

TEST(ShardDigest, EqualShardContentsHashEqualOnBothSides) {
  const std::vector<std::uint32_t> master_vals = {5, 9, 1, 7, 3};
  const std::vector<std::uint32_t> mirror_vals = {0, 9, 0, 1, 7, 0, 3, 5};
  // Exchange-list order is shared: pair i on the mirror side references
  // the same vertex as pair i on the master side.
  const std::vector<std::uint32_t> master_idx = {0, 1, 2, 3};
  const std::vector<std::uint32_t> mirror_idx = {7, 1, 3, 4};
  EXPECT_EQ(integrity::shard_digest<std::uint32_t>(master_vals, master_idx),
            integrity::shard_digest<std::uint32_t>(mirror_vals, mirror_idx));
}

TEST(ShardDigest, SingleBitFlipSplitsTheDigestAndScanLocalizesIt) {
  std::vector<std::uint32_t> master_vals = {5, 9, 1, 7};
  std::vector<std::uint32_t> mirror_vals = master_vals;
  const std::vector<std::uint32_t> idx = {0, 1, 2, 3};
  mirror_vals[2] ^= 1u << 13;
  EXPECT_NE(integrity::shard_digest<std::uint32_t>(mirror_vals, idx),
            integrity::shard_digest<std::uint32_t>(master_vals, idx));
  const auto d = integrity::scan_divergence<std::uint32_t>(
      mirror_vals, idx, master_vals, idx);
  EXPECT_TRUE(d.any());
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.first_mirror_local, 2u);
  EXPECT_EQ(d.first_master_local, 2u);
}

TEST(ShardDigest, OrderSensitivityMatchesExchangeListContract) {
  // Same multiset, different order, must NOT collide: the exchange list
  // fixes enumeration order on both sides, so order sensitivity is a
  // feature (it catches index-permutation corruption too).
  const std::vector<std::uint32_t> vals = {5, 9};
  const std::vector<std::uint32_t> fwd = {0, 1};
  const std::vector<std::uint32_t> rev = {1, 0};
  EXPECT_NE(integrity::shard_digest<std::uint32_t>(vals, fwd),
            integrity::shard_digest<std::uint32_t>(vals, rev));
}

TEST(DetectLagTracker, LagIsBoundariesFromEarliestPendingInjection) {
  integrity::DetectLagTracker t;
  t.note_injection(2, 10);
  t.note_injection(2, 12);
  t.note_injection(5, 11);
  EXPECT_EQ(t.pending(), 3u);
  // Flagging device 2 at boundary 13 reports lag to the *earliest*
  // unalarmed injection (10), and retires both of device 2's entries.
  EXPECT_EQ(t.note_detection(2, 13), 3);
  EXPECT_EQ(t.pending(), 1u);
  // Nothing pending for device 2 anymore: a fresh alarm has no ledger
  // entry to attribute (e.g. contamination spread) and reports -1.
  EXPECT_EQ(t.note_detection(2, 14), -1);
  EXPECT_EQ(t.note_detection(5, 11), 0);  // caught at its own boundary
  EXPECT_EQ(t.pending(), 0u);
}

// ---- enriched checksum-mismatch diagnostics ----------------------------

constexpr std::array<char, 4> kMagic = {'S', 'G', 'T', '1'};

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void flip_byte(const std::filesystem::path& p, std::streamoff off) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(off);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(off);
  f.write(&c, 1);
}

TEST(ChecksumMismatch, NamesBothDigestsAndTheFirstDifferingOffset) {
  const auto dir = fresh_dir("integrity_ckmsg");
  const auto path = dir / "blob.bin";
  const std::vector<char> payload = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  partition::write_checksummed_file(path, kMagic, 1, payload);
  // Header is magic(4) + version(4) + size(8); corrupt payload byte 5.
  flip_byte(path, 16 + 5);
  try {
    (void)partition::read_checksummed_file(path, kMagic, 1, "test",
                                           &payload);
    FAIL() << "corrupt payload must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 0x"), std::string::npos) << msg;
    EXPECT_NE(msg.find("actual 0x"), std::string::npos) << msg;
    EXPECT_NE(msg.find("first differing block at byte offset 5 of 8"),
              std::string::npos)
        << msg;
  }
}

TEST(ChecksumMismatch, TrailerCorruptionIsCalledOutAsSuch) {
  const auto dir = fresh_dir("integrity_cktrailer");
  const auto path = dir / "blob.bin";
  const std::vector<char> payload = {'x', 'y', 'z', 'w'};
  partition::write_checksummed_file(path, kMagic, 1, payload);
  // Corrupt the stored checksum (last 8 bytes), not the payload.
  flip_byte(path, 16 + 4 + 2);
  try {
    (void)partition::read_checksummed_file(path, kMagic, 1, "test",
                                           &payload);
    FAIL() << "corrupt trailer must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("payload matches reference"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("stored checksum corrupt"), std::string::npos)
        << msg;
  }
}

TEST(ChecksumMismatch, WithoutReferenceOnlyDigestsAreReported) {
  const auto dir = fresh_dir("integrity_cknoref");
  const auto path = dir / "blob.bin";
  const std::vector<char> payload = {'q', 'r', 's', 't'};
  partition::write_checksummed_file(path, kMagic, 1, payload);
  flip_byte(path, 16 + 1);
  try {
    (void)partition::read_checksummed_file(path, kMagic, 1, "test");
    FAIL() << "corrupt payload must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("expected 0x"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("first differing block"), std::string::npos) << msg;
  }
}

// ---- engine-level detect / repair --------------------------------------

fault::FaultPlan late_mirror_flips(const PreparedGraph& prep, int devices,
                                   sim::SimTime horizon, int count) {
  const auto targets = mirror_targets(prep, devices);
  fault::FaultPlan plan;
  for (int i = 0; i < count; ++i) {
    // Deterministic spread over distinct targets, late in the run so
    // the frontier has moved on and no broadcast silently heals them.
    const auto& tg = targets[(i * 97 + 13) % targets.size()];
    plan.flip_label(tg.device, tg.vertex, 3 + i,
                    horizon * (0.55 + 0.08 * i));
  }
  return plan;
}

TEST(AuditorEngine, DetectModeFlagsMirrorFlipsAndBlamesTheDevice) {
  const auto g = audit_graph();
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto src = graph::datasets::default_source(g);
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);

  const auto plan = late_mirror_flips(prep, 4, ff.stats.total_time, 4);
  auto audited = base;
  audited.fault_plan = &plan;
  audited.audit.mode = integrity::AuditMode::kDetect;
  audited.audit.interval_rounds = 1;
  const auto run = algo::run_bfs(prep.dist, prep.sync, t, p, audited, src);

  const auto& f = run.stats.faults;
  EXPECT_GT(f.sdc_injected, 0u);
  EXPECT_GT(f.sdc_detected, 0u);
  EXPECT_GT(f.sdc_audits, 0u);
  // Detect-only: violations are counted and blamed but never healed.
  EXPECT_EQ(f.sdc_repaired, 0u);
  bool blamed = false;
  for (const auto& s : f.sdc) {
    if (s.digest_violations != 0 || s.invariant_violations != 0) {
      EXPECT_GE(s.device, 0);
      EXPECT_LT(s.device, 4);
      blamed = true;
    }
  }
  EXPECT_TRUE(blamed);
}

TEST(AuditorEngine, RepairModeHealsToBitExactAndCountsRepairs) {
  const auto g = audit_graph();
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto src = graph::datasets::default_source(g);
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);

  const auto plan = late_mirror_flips(prep, 4, ff.stats.total_time, 4);
  auto audited = base;
  audited.fault_plan = &plan;
  audited.audit.mode = integrity::AuditMode::kRepair;
  audited.audit.interval_rounds = 1;
  audited.audit.escalate_after = 1000;
  const auto run = algo::run_bfs(prep.dist, prep.sync, t, p, audited, src);

  EXPECT_EQ(run.dist, ff.dist);  // bit-exact vs the fault-free oracle
  EXPECT_EQ(run.dist, algo::reference::bfs(g, src));
  const auto& f = run.stats.faults;
  EXPECT_GT(f.sdc_injected, 0u);
  EXPECT_GT(f.sdc_detected, 0u);
  EXPECT_GT(f.sdc_repaired, 0u);
  EXPECT_EQ(f.sdc_escalations, 0u);

  // The perturbed-and-repaired schedule replays byte-identically.
  const auto again = algo::run_bfs(prep.dist, prep.sync, t, p, audited,
                                   src);
  EXPECT_EQ(run.dist, again.dist);
  EXPECT_EQ(run.stats.total_time, again.stats.total_time);
  EXPECT_EQ(f.sdc_repaired, again.stats.faults.sdc_repaired);
}

TEST(AuditorEngine, RepeatOffenderEscalatesAndTheAnswerStaysExact) {
  const auto g = audit_graph();
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto src = graph::datasets::default_source(g);
  const auto base = cfg(engine::ExecModel::kSync);
  const auto ff = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);

  // Hammer one device repeatedly with escalate_after=1 so the second
  // confirmed violation trips the repeat-offender path.
  const auto targets = mirror_targets(prep, 4);
  int victim = -1;
  fault::FaultPlan plan;
  int placed = 0;
  for (const auto& tg : targets) {
    if (victim == -1) victim = tg.device;
    if (tg.device != victim) continue;
    plan.flip_label(tg.device, tg.vertex, 5,
                    ff.stats.total_time * (0.3 + 0.1 * placed));
    if (++placed == 4) break;
  }
  ASSERT_GE(placed, 2);
  auto audited = base;
  audited.fault_plan = &plan;
  audited.audit.mode = integrity::AuditMode::kRepair;
  audited.audit.interval_rounds = 1;
  audited.audit.escalate_after = 1;
  const auto run = algo::run_bfs(prep.dist, prep.sync, t, p, audited, src);

  EXPECT_TRUE(run.stats.faults.sdc_escalations > 0 ||
              run.stats.faults.sdc_detected < 2)
      << "two confirmed violations on one device must escalate";
  EXPECT_EQ(run.dist, ff.dist);
}

TEST(AuditorEngine, CheckpointCorruptionIsCaughtByReadBackVerify) {
  const auto g = audit_graph();
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();
  auto base = cfg(engine::ExecModel::kSync);
  base.checkpoint.interval_rounds = 1;
  const auto ff = algo::run_pagerank(prep.dist, prep.sync, t, p, base);

  fault::FaultPlan plan;
  plan.corrupt_checkpoint(1, ff.stats.total_time * 0.4);
  auto audited = base;
  audited.fault_plan = &plan;
  audited.audit.mode = integrity::AuditMode::kRepair;
  audited.audit.interval_rounds = 1;
  audited.audit.escalate_after = 1000;
  const auto run = algo::run_pagerank(prep.dist, prep.sync, t, p, audited);

  EXPECT_EQ(run.rank, ff.rank);  // bit-identical floats
  const auto& f = run.stats.faults;
  EXPECT_GT(f.sdc_injected, 0u);
  EXPECT_GT(f.sdc_detected, 0u);
  bool ckpt_flagged = false;
  for (const auto& s : f.sdc) {
    if (s.checkpoint_violations != 0) ckpt_flagged = true;
  }
  EXPECT_TRUE(ckpt_flagged);
}

// ---- clean-run report byte-identity ------------------------------------

TEST(AuditorEngine, CleanRunReportIsByteIdenticalWithAuditingEnabled) {
  const auto g = audit_graph();
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto src = graph::datasets::default_source(g);

  const auto base = cfg(engine::ExecModel::kSync);
  auto audited = base;
  audited.audit.mode = integrity::AuditMode::kRepair;
  audited.audit.interval_rounds = 1;

  const auto off = algo::run_bfs(prep.dist, prep.sync, t, p, base, src);
  const auto on = algo::run_bfs(prep.dist, prep.sync, t, p, audited, src);
  EXPECT_EQ(off.dist, on.dist);
  EXPECT_EQ(off.stats.total_time, on.stats.total_time);

  obs::ReportMeta meta;
  meta.bench = "audit";
  meta.label = "clean";
  meta.benchmark = "bfs";
  meta.input = "synthetic-600";
  meta.system = "D-IrGL";
  meta.config = "Var4";
  meta.devices = 4;
  obs::ReportWriter woff("audit");
  woff.add(meta, off.stats);
  obs::ReportWriter won("audit");
  won.add(meta, on.stats);
  EXPECT_EQ(woff.json(), won.json());
}

}  // namespace
}  // namespace sg
