// Observability subsystem tests: tracer semantics (ring buffers,
// reconciliation sums, deterministic Chrome export), metrics registry,
// JSON writer/parser round-trips, run-report schema + diffing, and the
// engine-integration contracts: span sums reconcile with RunStats under
// both BSP and BASP, BASP populates RoundTrace, and the whole pipeline
// is byte-deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "bench_common.hpp"
#include "engine/config.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

constexpr double kReconcileToleranceSec = 1e-6;  // 1 simulated µs

graph::Csr tiny_graph() {
  graph::SyntheticSpec s;
  s.vertices = 400;
  s.edges = 3000;
  s.zipf_out = 0.6;
  s.zipf_in = 0.7;
  s.communities = 2;
  s.seed = 5;
  return graph::synthetic(s);
}

struct ObsFixture {
  graph::Csr g = tiny_graph();
  graph::VertexId src = graph::datasets::default_source(g);
  PreparedGraph prep{g, partition::Policy::OEC, 4};
  sim::Topology t = topo(4);
  sim::CostParams p = params();

  algo::BfsResult run(const engine::EngineConfig& c) {
    return algo::run_bfs(prep.dist, prep.sync, t, p, c, src);
  }
};

// ---- tracer -------------------------------------------------------------

TEST(Tracer, RecordsAndSumsByKindPerTrack) {
  obs::Tracer tr;
  tr.require_tracks(2);
  tr.name_track(0, "gpu0");
  tr.name_track(1, "gpu1");
  tr.record(0, obs::SpanKind::kKernel, "k", sim::SimTime{0.0},
            sim::SimTime{1.0});
  tr.record(0, obs::SpanKind::kKernel, "k", sim::SimTime{2.0},
            sim::SimTime{2.5});
  tr.record(0, obs::SpanKind::kWait, "w", sim::SimTime{1.0},
            sim::SimTime{2.0});
  tr.record(1, obs::SpanKind::kExtract, "e", sim::SimTime{0.0},
            sim::SimTime{0.25});
  tr.record(1, obs::SpanKind::kPcie, "x", sim::SimTime{0.25},
            sim::SimTime{0.75});
  tr.record(1, obs::SpanKind::kApply, "a", sim::SimTime{0.75},
            sim::SimTime{1.0});

  EXPECT_EQ(tr.recorded(), 6u);
  EXPECT_EQ(tr.dropped(), 0u);
  EXPECT_DOUBLE_EQ(tr.kind_sum(0, obs::SpanKind::kKernel).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(tr.kind_sum(0, obs::SpanKind::kWait).seconds(), 1.0);
  EXPECT_DOUBLE_EQ(tr.kind_sum(1, obs::SpanKind::kKernel).seconds(), 0.0);
  EXPECT_DOUBLE_EQ(tr.comm_sum(1).seconds(), 1.0);
  EXPECT_DOUBLE_EQ(tr.comm_sum(0).seconds(), 0.0);
}

TEST(Tracer, RingBufferOverwritesOldestAndCountsDrops) {
  obs::Tracer tr(/*per_track_cap=*/4);
  tr.require_tracks(1);
  for (int i = 0; i < 10; ++i) {
    tr.record(0, obs::SpanKind::kKernel, "k",
              sim::SimTime{static_cast<double>(i)},
              sim::SimTime{static_cast<double>(i) + 0.5});
  }
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto spans = tr.sorted_spans();
  ASSERT_EQ(spans.size(), 4u);
  // The four youngest spans survive, in timeline order.
  EXPECT_DOUBLE_EQ(spans.front().begin.seconds(), 6.0);
  EXPECT_DOUBLE_EQ(spans.back().begin.seconds(), 9.0);
}

TEST(Tracer, SortedSpansOrderedByTrackThenBeginThenSeq) {
  obs::Tracer tr;
  tr.require_tracks(2);
  tr.record(1, obs::SpanKind::kOther, "b", sim::SimTime{1.0},
            sim::SimTime{2.0});
  tr.record(0, obs::SpanKind::kOther, "c", sim::SimTime{5.0},
            sim::SimTime{6.0});
  tr.record(0, obs::SpanKind::kOther, "a", sim::SimTime{0.0},
            sim::SimTime{1.0});
  // Zero-length spans at the same begin keep record order via seq.
  tr.record(1, obs::SpanKind::kOther, "t1", sim::SimTime{3.0},
            sim::SimTime{3.0});
  tr.record(1, obs::SpanKind::kOther, "t2", sim::SimTime{3.0},
            sim::SimTime{3.0});
  const auto spans = tr.sorted_spans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_STREQ(spans[1].name, "c");
  EXPECT_STREQ(spans[2].name, "b");
  EXPECT_STREQ(spans[3].name, "t1");
  EXPECT_STREQ(spans[4].name, "t2");
}

TEST(Tracer, NullScopeIsANoOp) {
  const obs::Scope scope;
  EXPECT_FALSE(scope.enabled());
  // Must not crash; there is no tracer behind it.
  scope.span(obs::SpanKind::kKernel, "k", sim::SimTime{0.0},
             sim::SimTime{1.0});
}

TEST(Tracer, ChromeExportIsValidJsonWithTrackMetadata) {
  obs::Tracer tr;
  tr.require_tracks(1);
  tr.name_track(0, "gpu0");
  tr.record(0, obs::SpanKind::kKernel, "kernel", sim::SimTime{0.0},
            sim::SimTime{1e-6}, 42, 7);
  const auto doc = obs::parse_json(tr.chrome_trace_json());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_meta = false;
  bool saw_span = false;
  for (const auto& e : events->array) {
    const std::string ph = e.find("ph")->str_or("");
    if (ph == "M" && e.find("args.name") != nullptr &&
        e.find("args.name")->str_or("") == "gpu0") {
      saw_meta = true;
    }
    if (ph == "X" && e.find("name")->str_or("") == "kernel") {
      saw_span = true;
      EXPECT_DOUBLE_EQ(e.find("ts")->num_or(-1), 0.0);
      EXPECT_DOUBLE_EQ(e.find("dur")->num_or(-1), 1.0);  // µs
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
}

// ---- metrics ------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  obs::Registry reg;
  auto& c = reg.counter("engine.messages");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("engine.messages"), &c);  // stable reference

  auto& g = reg.gauge("health.max_phi");
  g.max_of(2.0);
  g.max_of(1.0);  // lower value must not win
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);

  auto& h =
      reg.histogram("engine.message_size", obs::Histogram::exp2_bounds(2, 4));
  // Bounds 4, 8, 16 + overflow. Inclusive upper bounds.
  h.observe(4.0);   // bucket 0
  h.observe(5.0);   // bucket 1
  h.observe(16.0);  // bucket 2
  h.observe(99.0);  // overflow
  EXPECT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 124.0);
  EXPECT_DOUBLE_EQ(h.mean(), 31.0);

  EXPECT_EQ(reg.size(), 3u);
  EXPECT_NE(reg.find_counter("engine.messages"), nullptr);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_NE(reg.find_histogram("engine.message_size"), nullptr);
}

TEST(Metrics, RegistryJsonIsNameSortedAndParses) {
  obs::Registry reg;
  reg.counter("b.second").inc(2);
  reg.counter("a.first").inc(1);
  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  obs::JsonWriter w;
  reg.write_json(w);
  const auto doc = obs::parse_json(w.str());
  EXPECT_DOUBLE_EQ(doc.find("counters.a.first") != nullptr
                       ? doc.find("counters.a.first")->num_or(-1)
                       : doc.find("counters")->object.at("a.first").number,
                   1.0);
  EXPECT_DOUBLE_EQ(doc.find("counters")->object.at("b.second").number, 2.0);
  const auto& h = doc.find("histograms")->object.at("h");
  EXPECT_EQ(h.object.at("counts").array.size(), 3u);
  EXPECT_DOUBLE_EQ(h.object.at("counts").array[1].number, 1.0);
  // Name-sorted serialization: "a.first" precedes "b.second" in bytes.
  EXPECT_LT(w.str().find("a.first"), w.str().find("b.second"));
}

// ---- JSON writer/parser -------------------------------------------------

TEST(Json, WriterParserRoundTrip) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("str", "a \"quoted\"\nline");
  w.kv("int", std::uint64_t{18446744073709551615ull});
  w.kv("neg", std::int64_t{-42});
  w.kv("pi", 3.25);
  w.kv("yes", true);
  w.key("null").null();
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.end_object();

  const auto v = obs::parse_json(w.str());
  EXPECT_EQ(v.find("str")->str_or(""), "a \"quoted\"\nline");
  EXPECT_DOUBLE_EQ(v.find("pi")->num_or(0), 3.25);
  EXPECT_DOUBLE_EQ(v.find("neg")->num_or(0), -42.0);
  EXPECT_TRUE(v.find("yes")->boolean);
  EXPECT_EQ(v.find("null")->kind, obs::JsonValue::Kind::kNull);
  ASSERT_TRUE(v.find("arr")->is_array());
  EXPECT_EQ(v.find("arr")->array.size(), 2u);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)obs::parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW((void)obs::parse_json("[1, 2"), std::runtime_error);
  EXPECT_THROW((void)obs::parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)obs::parse_json("tru"), std::runtime_error);
}

TEST(Json, DoubleFormattingRoundTripsExactly) {
  for (const double d : {0.0, 1.0, 0.1, 1e-9, 6.61154e-4, 1e300}) {
    const std::string s = obs::format_double(d);
    EXPECT_DOUBLE_EQ(obs::parse_json(s).num_or(-1), d) << s;
  }
}

// ---- run reports + diff -------------------------------------------------

engine::RunStats fake_stats(double total, std::uint64_t volume,
                            std::uint32_t rounds) {
  engine::RunStats st;
  st.resize(2);
  st.total_time = sim::SimTime{total};
  st.global_rounds = rounds;
  st.comm.device_to_host_bytes = volume;
  return st;
}

obs::ReportMeta meta_for(const std::string& label) {
  obs::ReportMeta m;
  m.bench = "test";
  m.label = label;
  m.benchmark = "bfs";
  m.input = "tiny";
  m.system = "D-IrGL";
  m.config = "Var4";
  m.devices = 2;
  return m;
}

TEST(Report, SchemaEnvelopeAndRunFields) {
  obs::ReportWriter w("test");
  w.add(meta_for("run-a"), fake_stats(1.5, 1000, 7));
  const auto doc = obs::parse_json(w.json());
  EXPECT_DOUBLE_EQ(doc.find("schema_version")->num_or(-1),
                   obs::kReportSchemaVersion);
  EXPECT_EQ(doc.find("bench")->str_or(""), "test");
  ASSERT_TRUE(doc.find("runs")->is_array());
  const auto& run = doc.find("runs")->array.at(0);
  EXPECT_EQ(run.find("meta.label")->str_or(""), "run-a");
  EXPECT_DOUBLE_EQ(run.find("stats.total_time_s")->num_or(-1), 1.5);
  EXPECT_DOUBLE_EQ(run.find("stats.comm.total_volume_bytes")->num_or(-1),
                   1000.0);
  EXPECT_DOUBLE_EQ(run.find("stats.global_rounds")->num_or(-1), 7.0);
}

TEST(Report, DiffFlagsRegressionsOneSided) {
  obs::ReportWriter base("test");
  base.add(meta_for("run-a"), fake_stats(1.0, 1000, 10));
  obs::ReportWriter cur("test");
  // +20% time (regression at 5%), -50% volume (improvement: no flag),
  // same rounds.
  cur.add(meta_for("run-a"), fake_stats(1.2, 500, 10));

  const auto r = obs::diff_reports(obs::parse_json(base.json()),
                                   obs::parse_json(cur.json()));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.regressions(), 1);
  bool time_flagged = false;
  for (const auto& i : r.items) {
    if (i.metric == "total_time_s") {
      time_flagged = i.regressed;
      EXPECT_NEAR(i.rel_delta, 0.2, 1e-9);
    } else {
      EXPECT_FALSE(i.regressed);
    }
  }
  EXPECT_TRUE(time_flagged);

  // A generous threshold absorbs the same delta.
  obs::DiffOptions lax;
  lax.threshold = 0.25;
  const auto r2 = obs::diff_reports(obs::parse_json(base.json()),
                                    obs::parse_json(cur.json()), lax);
  EXPECT_EQ(r2.regressions(), 0);
}

TEST(Report, DiffReportsMissingAndNewRuns) {
  obs::ReportWriter base("test");
  base.add(meta_for("gone"), fake_stats(1.0, 1, 1));
  base.add(meta_for("kept"), fake_stats(1.0, 1, 1));
  obs::ReportWriter cur("test");
  cur.add(meta_for("kept"), fake_stats(1.0, 1, 1));
  cur.add(meta_for("added"), fake_stats(1.0, 1, 1));

  const auto r = obs::diff_reports(obs::parse_json(base.json()),
                                   obs::parse_json(cur.json()));
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.missing_runs.size(), 1u);
  EXPECT_EQ(r.missing_runs[0], "gone");
  ASSERT_EQ(r.new_runs.size(), 1u);
  EXPECT_EQ(r.new_runs[0], "added");
}

TEST(Report, DiffRefusesSchemaMismatch) {
  obs::ReportWriter base("test");
  base.add(meta_for("run-a"), fake_stats(1.0, 1, 1));
  auto doctored = obs::parse_json(base.json());
  doctored.object["schema_version"].number = 999;
  const auto r =
      obs::diff_reports(doctored, obs::parse_json(base.json()));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("schema"), std::string::npos);
}

TEST(Report, WriteReportProducesAFileIdenticalRunsDiffClean) {
  ObsFixture fx;
  obs::Tracer tracer;
  obs::Registry registry;
  auto c = cfg(engine::ExecModel::kAsync);
  c.collect_trace = true;
  c.tracer = &tracer;
  c.metrics = &registry;
  const auto r = fx.run(c);

  const auto dir =
      std::filesystem::path(testing::TempDir()) / "sg_obs_report";
  std::filesystem::create_directories(dir);
  const auto path = dir / "run.json";
  ASSERT_TRUE(obs::write_report(path, meta_for("bfs/tiny/D-IrGL/Var4/4"),
                                r.stats, &registry, &tracer));
  const auto diff = obs::diff_report_files(path, path);
  ASSERT_TRUE(diff.ok) << diff.error;
  EXPECT_EQ(diff.regressions(), 0);
  EXPECT_TRUE(diff.missing_runs.empty());

  // The registry snapshot made it into the report.
  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto doc = obs::parse_json(text);
  const auto& run = doc.find("runs")->array.at(0);
  EXPECT_NE(run.find("metrics.counters"), nullptr);
  EXPECT_NE(run.find("trace.recorded_spans"), nullptr);
  EXPECT_DOUBLE_EQ(run.find("trace.dropped_spans")->num_or(-1), 0.0);
}

// ---- engine integration -------------------------------------------------

void expect_reconciles(const engine::RunStats& stats,
                       const obs::Tracer& tracer, int devices) {
  for (int d = 0; d < devices; ++d) {
    EXPECT_NEAR(stats.compute_time[d].seconds(),
                tracer.kind_sum(d, obs::SpanKind::kKernel).seconds(),
                kReconcileToleranceSec)
        << "compute, device " << d;
    EXPECT_NEAR(stats.wait_time[d].seconds(),
                tracer.kind_sum(d, obs::SpanKind::kWait).seconds(),
                kReconcileToleranceSec)
        << "wait, device " << d;
    EXPECT_NEAR(stats.device_comm_time[d].seconds(),
                tracer.comm_sum(d).seconds(), kReconcileToleranceSec)
        << "device-comm, device " << d;
  }
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_GT(tracer.recorded(), 0u);
}

TEST(ObsEngine, BspSpanSumsReconcileWithRunStats) {
  ObsFixture fx;
  obs::Tracer tracer;
  auto c = cfg(engine::ExecModel::kSync);
  c.tracer = &tracer;
  const auto r = fx.run(c);
  expect_reconciles(r.stats, tracer, 4);
  // Track layout: devices, per-device net tracks, runtime track.
  EXPECT_EQ(tracer.num_tracks(), 9);
  EXPECT_EQ(tracer.track_name(0), "gpu0");
  EXPECT_EQ(tracer.track_name(4), "net from gpu0");
  EXPECT_EQ(tracer.track_name(8), "runtime");
}

TEST(ObsEngine, BaspSpanSumsReconcileWithRunStats) {
  ObsFixture fx;
  obs::Tracer tracer;
  auto c = cfg(engine::ExecModel::kAsync);
  c.tracer = &tracer;
  const auto r = fx.run(c);
  expect_reconciles(r.stats, tracer, 4);
}

TEST(ObsEngine, TracingDoesNotPerturbSimulatedResults) {
  ObsFixture fx;
  for (const auto model :
       {engine::ExecModel::kSync, engine::ExecModel::kAsync}) {
    const auto plain = fx.run(cfg(model));
    obs::Tracer tracer;
    obs::Registry registry;
    auto c = cfg(model);
    c.tracer = &tracer;
    c.metrics = &registry;
    const auto traced = fx.run(c);
    EXPECT_EQ(traced.dist, plain.dist);
    EXPECT_EQ(traced.stats.total_time, plain.stats.total_time);
    EXPECT_EQ(traced.stats.global_rounds, plain.stats.global_rounds);
  }
}

TEST(ObsEngine, GoldenChromeTraceIsByteIdenticalAcrossRuns) {
  ObsFixture fx;
  std::string first;
  for (int i = 0; i < 2; ++i) {
    obs::Tracer tracer;
    auto c = cfg(engine::ExecModel::kSync);
    c.tracer = &tracer;
    (void)fx.run(c);
    const std::string json = tracer.chrome_trace_json();
    EXPECT_FALSE(json.empty());
    (void)obs::parse_json(json);  // well-formed
    if (i == 0) {
      first = json;
    } else {
      EXPECT_EQ(json, first);  // byte-identical golden trace
    }
  }
}

TEST(ObsEngine, EngineRegistersCoreMetrics) {
  ObsFixture fx;
  obs::Registry registry;
  auto c = cfg(engine::ExecModel::kSync);
  c.metrics = &registry;
  const auto r = fx.run(c);

  const auto* rounds = registry.find_counter("engine.local_rounds");
  ASSERT_NE(rounds, nullptr);
  std::uint64_t total_rounds = 0;
  for (const auto n : r.stats.rounds) total_rounds += n;
  EXPECT_EQ(rounds->value(), total_rounds);

  const auto* bytes = registry.find_counter("engine.sync_bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_GT(bytes->value(), 0u);

  const auto* sizes = registry.find_histogram("engine.message_size_bytes");
  ASSERT_NE(sizes, nullptr);
  const auto* msgs = registry.find_counter("engine.messages_sent");
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(sizes->count(), msgs->value());

  const auto* frontier = registry.find_histogram("engine.frontier_size");
  ASSERT_NE(frontier, nullptr);
  EXPECT_GT(frontier->count(), 0u);
}

// ---- BASP RoundTrace (satellite: trace collection under async) ---------

TEST(ObsEngine, BaspCollectsNonEmptyDeterministicRoundTrace) {
  ObsFixture fx;
  auto c = cfg(engine::ExecModel::kAsync);
  c.collect_trace = true;
  const auto r1 = fx.run(c);
  ASSERT_FALSE(r1.stats.trace.empty());
  // One entry per local round; a message applied just before termination
  // may credit its volume to the round after the last executed one.
  EXPECT_GE(r1.stats.trace.size(),
            static_cast<std::size_t>(r1.stats.max_rounds()));
  EXPECT_LE(r1.stats.trace.size(),
            static_cast<std::size_t>(r1.stats.max_rounds()) + 1);

  std::uint64_t active = 0;
  std::uint64_t volume = 0;
  for (std::size_t i = 0; i < r1.stats.trace.size(); ++i) {
    EXPECT_EQ(r1.stats.trace[i].round, i + 1);  // 1-based local rounds
    active += r1.stats.trace[i].active_vertices;
    volume += r1.stats.trace[i].volume_bytes;
  }
  EXPECT_GT(active, 0u);
  EXPECT_GT(volume, 0u);

  // Fixed seed: the per-round trace replays identically.
  const auto r2 = fx.run(c);
  ASSERT_EQ(r2.stats.trace.size(), r1.stats.trace.size());
  for (std::size_t i = 0; i < r1.stats.trace.size(); ++i) {
    EXPECT_EQ(r2.stats.trace[i].round, r1.stats.trace[i].round);
    EXPECT_EQ(r2.stats.trace[i].active_vertices,
              r1.stats.trace[i].active_vertices);
    EXPECT_EQ(r2.stats.trace[i].edges, r1.stats.trace[i].edges);
    EXPECT_EQ(r2.stats.trace[i].volume_bytes,
              r1.stats.trace[i].volume_bytes);
  }

  // BSP's trace still works and covers every global round.
  auto cb = cfg(engine::ExecModel::kSync);
  cb.collect_trace = true;
  const auto rb = fx.run(cb);
  EXPECT_EQ(rb.stats.trace.size(),
            static_cast<std::size_t>(rb.stats.global_rounds));
}

// ---- exp2 histogram edge cases ------------------------------------------

TEST(Metrics, Exp2HistogramEdgeCases) {
  // Bounds 1, 2, 4, 8 plus the overflow bucket; upper bounds inclusive.
  obs::Histogram h(obs::Histogram::exp2_bounds(0, 3));
  ASSERT_EQ(h.num_buckets(), 5u);
  h.observe(0.0);  // zero is below the first bound
  EXPECT_EQ(h.bucket(0), 1u);
  h.observe(8.0);  // exactly the max bound stays finite
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(4), 0u);
  h.observe(8.0 + 1e-9);  // anything past the max bound overflows
  h.observe(1e30);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Metrics, HistogramMergeAddsCountsAndRejectsBoundsMismatch) {
  obs::Histogram a(obs::Histogram::exp2_bounds(1, 3));  // 2, 4, 8
  obs::Histogram b(obs::Histogram::exp2_bounds(1, 3));
  a.observe(2.0);
  a.observe(100.0);  // overflow
  b.observe(3.0);
  b.observe(8.0);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 113.0);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(1), 1u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_EQ(a.bucket(3), 1u);
  EXPECT_EQ(b.count(), 2u);  // source histogram untouched

  obs::Histogram other(obs::Histogram::exp2_bounds(0, 3));
  EXPECT_FALSE(a.merge(other));  // bounds mismatch merges nothing
  EXPECT_EQ(a.count(), 4u);
}

// ---- tracer drop-safety -------------------------------------------------

TEST(Tracer, DroppedSpansSurfaceInChromeTraceAndRunReport) {
  obs::Tracer tr(/*per_track_cap=*/2);
  tr.require_tracks(1);
  for (int i = 0; i < 5; ++i) {
    tr.record(0, obs::SpanKind::kKernel, "k",
              sim::SimTime{static_cast<double>(i)},
              sim::SimTime{static_cast<double>(i) + 0.5});
  }
  ASSERT_EQ(tr.dropped(), 3u);

  const auto doc = obs::parse_json(tr.chrome_trace_json());
  ASSERT_NE(doc.find("otherData.dropped_spans"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("otherData.dropped_spans")->num_or(-1), 3.0);

  obs::ReportWriter w("droptest");
  w.add(meta_for("run-dropped"), fake_stats(1.0, 100, 1), nullptr, &tr);
  const auto rep = obs::parse_json(w.json());
  const auto& run = rep.find("runs")->array.at(0);
  EXPECT_DOUBLE_EQ(run.find("trace.dropped_spans")->num_or(-1), 3.0);
}

// ---- bench ReportLog ----------------------------------------------------

TEST(Report, ReportLogCreatesMissingReportDir) {
  const auto root =
      std::filesystem::path(testing::TempDir()) / "sg_report_dir_test";
  std::filesystem::remove_all(root);
  const auto dir = root / "nested" / "scratch";  // does not exist yet
  ASSERT_FALSE(std::filesystem::exists(dir));
  ::setenv("SG_BENCH_REPORT_DIR", dir.string().c_str(), 1);
  bench::ReportLog log("dircreate");
  log.add("bfs", "tiny", "D-IrGL", "Var4", 2, fake_stats(1.0, 100, 3));
  const bool ok = log.write();
  ::unsetenv("SG_BENCH_REPORT_DIR");
  EXPECT_TRUE(ok);
  EXPECT_TRUE(std::filesystem::exists(dir / "BENCH_dircreate.json"));
  std::filesystem::remove_all(root);
}

TEST(ObsEngine, PagerankTopologyDrivenTraceSweepsAllRounds) {
  ObsFixture fx;
  auto c = cfg(engine::ExecModel::kAsync);
  c.collect_trace = true;
  const auto r = algo::run_pagerank(fx.prep.dist, fx.prep.sync, fx.t, fx.p,
                                    c);
  ASSERT_FALSE(r.stats.trace.empty());
  // Topology-driven rounds apply the operator on every master at least
  // once early on.
  EXPECT_GT(r.stats.trace.front().active_vertices, 0u);
}

}  // namespace
}  // namespace sg
