// Distributed-vs-reference correctness sweeps under BSP execution:
// every benchmark, every partitioning policy, several device counts,
// both sync modes. These are the core invariant tests of the library —
// partitioning and synchronization must never change algorithm results.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/kcore.hpp"
#include "algo/pagerank.hpp"
#include "algo/reference.hpp"
#include "algo/sssp.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"

namespace sg {
namespace {

using test::cfg;
using test::params;
using test::PreparedGraph;
using test::topo;

graph::Csr small_social() {
  graph::SyntheticSpec s;
  s.vertices = 600;
  s.edges = 5000;
  s.zipf_out = 0.7;
  s.zipf_in = 0.8;
  s.hub_in_frac = 0.05;
  s.communities = 3;
  s.seed = 7;
  return graph::synthetic(s);
}

struct SweepParam {
  partition::Policy policy;
  int devices;
  comm::SyncMode mode;
};

std::string sweep_name(const testing::TestParamInfo<SweepParam>& info) {
  return std::string(partition::to_string(info.param.policy)) + "_d" +
         std::to_string(info.param.devices) + "_" +
         comm::to_string(info.param.mode);
}

std::vector<SweepParam> sweep_grid() {
  std::vector<SweepParam> grid;
  for (auto policy : test::all_policies()) {
    for (int devices : {1, 2, 4, 8}) {
      for (auto mode : {comm::SyncMode::kUO, comm::SyncMode::kAS}) {
        grid.push_back({policy, devices, mode});
      }
    }
  }
  return grid;
}

class BspSweep : public testing::TestWithParam<SweepParam> {
 protected:
  engine::EngineConfig config() const {
    return cfg(engine::ExecModel::kSync, GetParam().mode);
  }
};

TEST_P(BspSweep, BfsMatchesReference) {
  const auto g = small_social();
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const auto result =
      algo::run_bfs(prep.dist, prep.sync, t, p, config(), src);
  EXPECT_EQ(result.dist, algo::reference::bfs(g, src));
}

TEST_P(BspSweep, SsspMatchesReference) {
  const auto g = graph::add_random_weights(small_social(), 1, 100, 99);
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const auto result =
      algo::run_sssp(prep.dist, prep.sync, t, p, config(), src);
  EXPECT_EQ(result.dist, algo::reference::sssp(g, src));
}

TEST_P(BspSweep, CcMatchesReference) {
  const auto g = small_social();
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const auto result = algo::run_cc(prep.dist, prep.sync, t, p, config());
  EXPECT_EQ(result.label, algo::reference::cc(g));
}

TEST_P(BspSweep, KcoreMatchesReference) {
  const auto g = small_social();
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  for (std::uint32_t k : {3u, 8u}) {
    const auto result =
        algo::run_kcore(prep.dist, prep.sync, t, p, config(), k);
    EXPECT_EQ(result.in_core, algo::reference::kcore(g, k))
        << "k = " << k;
  }
}

TEST_P(BspSweep, PagerankMatchesReference) {
  const auto g = small_social();
  PreparedGraph prep(g, GetParam().policy, GetParam().devices);
  const auto t = topo(GetParam().devices);
  const auto p = params();
  const float tol = 1e-6f;
  const auto result =
      algo::run_pagerank(prep.dist, prep.sync, t, p, config(), 0.85f, tol);
  const auto ref = algo::reference::pagerank(g, 0.85f, tol);
  ASSERT_EQ(result.rank.size(), ref.size());
  for (std::size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(result.rank[v], ref[v], 2e-3f) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, BspSweep,
                         testing::ValuesIn(sweep_grid()), sweep_name);

// ---- shape-specific checks ----------------------------------------------

TEST(AlgoShapes, BfsOnPathHasLinearDistances) {
  const auto g = graph::path_graph(64, /*bidirectional=*/false);
  PreparedGraph prep(g, partition::Policy::OEC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kSync), 0);
  for (graph::VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(r.dist[v], v);
  }
  // A path processed one level per BSP round: rounds ~ diameter.
  EXPECT_GE(r.stats.global_rounds, 60u);
}

TEST(AlgoShapes, BfsUnreachableVerticesStayInfinite) {
  // Two disjoint directed stars.
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 1; v < 8; ++v) edges.push_back({0, v, 1});
  for (graph::VertexId v = 9; v < 16; ++v) edges.push_back({8, v, 1});
  const auto g = graph::build_csr(std::move(edges), 16);
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto r = algo::run_bfs(prep.dist, prep.sync, t, p,
                               cfg(engine::ExecModel::kSync), 0);
  EXPECT_EQ(r.dist[3], 1u);
  EXPECT_EQ(r.dist[8], algo::kInfDist);
  EXPECT_EQ(r.dist[12], algo::kInfDist);
}

TEST(AlgoShapes, CcFindsBothComponentsOfDisjointCycles) {
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 0; v < 10; ++v) edges.push_back({v, (v + 1) % 10, 1});
  for (graph::VertexId v = 10; v < 20; ++v) {
    edges.push_back({v, v + 1 == 20 ? 10 : v + 1, 1});
  }
  const auto g = graph::build_csr(std::move(edges), 20);
  PreparedGraph prep(g, partition::Policy::HVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto r =
      algo::run_cc(prep.dist, prep.sync, t, p, cfg(engine::ExecModel::kSync));
  for (graph::VertexId v = 0; v < 10; ++v) EXPECT_EQ(r.label[v], 0u);
  for (graph::VertexId v = 10; v < 20; ++v) EXPECT_EQ(r.label[v], 10u);
}

TEST(AlgoShapes, KcoreOnCompleteGraphKeepsEverything) {
  const auto g = graph::complete_graph(12);  // undirected degree 22
  PreparedGraph prep(g, partition::Policy::IEC, 3);
  const auto t = topo(3);
  const auto p = params();
  const auto r = algo::run_kcore(prep.dist, prep.sync, t, p,
                                 cfg(engine::ExecModel::kSync), 20);
  for (auto c : r.in_core) EXPECT_EQ(c, 1);
  const auto r2 = algo::run_kcore(prep.dist, prep.sync, t, p,
                                  cfg(engine::ExecModel::kSync), 23);
  for (auto c : r2.in_core) EXPECT_EQ(c, 0);
}

TEST(AlgoShapes, KcorePeelingCascades) {
  // A 4-clique with a pendant chain: k=3 keeps only the clique.
  std::vector<graph::Edge> edges;
  for (graph::VertexId u = 0; u < 4; ++u) {
    for (graph::VertexId v = 0; v < 4; ++v) {
      if (u != v) edges.push_back({u, v, 1});
    }
  }
  edges.push_back({3, 4, 1});
  edges.push_back({4, 5, 1});
  const auto g = graph::build_csr(std::move(edges), 6);
  PreparedGraph prep(g, partition::Policy::OEC, 2);
  const auto t = topo(2);
  const auto p = params();
  const auto r = algo::run_kcore(prep.dist, prep.sync, t, p,
                                 cfg(engine::ExecModel::kSync), 6);
  EXPECT_EQ(r.in_core, algo::reference::kcore(g, 6));
}

TEST(AlgoShapes, PagerankStarConcentratesRankAtCenter) {
  const auto g = graph::star_graph(50, /*out=*/false);  // leaves -> center
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto r = algo::run_pagerank(prep.dist, prep.sync, t, p,
                                    cfg(engine::ExecModel::kSync));
  for (graph::VertexId v = 1; v <= 50; ++v) {
    EXPECT_GT(r.rank[0], r.rank[v]);
  }
}

TEST(AlgoShapes, SsspRespectsWeightsOverHops) {
  // 0 -> 1 -> 2 cheap; 0 -> 2 expensive direct edge.
  std::vector<graph::Edge> edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 10}};
  const auto g = graph::build_csr(std::move(edges), 3, /*weighted=*/true);
  PreparedGraph prep(g, partition::Policy::IEC, 2);
  const auto t = topo(2);
  const auto p = params();
  const auto r = algo::run_sssp(prep.dist, prep.sync, t, p,
                                cfg(engine::ExecModel::kSync), 0);
  EXPECT_EQ(r.dist[2], 2u);
}

// Scaled dataset integration: the real analogue inputs.
TEST(AlgoDatasets, OrkutAnalogueAllBenchmarksBsp) {
  const auto g = graph::datasets::make("orkut");
  const auto src = graph::datasets::default_source(g);
  PreparedGraph prep(g, partition::Policy::CVC, 4);
  const auto t = topo(4);
  const auto p = params();
  const auto c = cfg(engine::ExecModel::kSync);
  EXPECT_EQ(algo::run_bfs(prep.dist, prep.sync, t, p, c, src).dist,
            algo::reference::bfs(g, src));
  EXPECT_EQ(algo::run_cc(prep.dist, prep.sync, t, p, c).label,
            algo::reference::cc(g));
  EXPECT_EQ(algo::run_kcore(prep.dist, prep.sync, t, p, c, 10).in_core,
            algo::reference::kcore(g, 10));
}

}  // namespace
}  // namespace sg
