#include "sim/interconnect.hpp"

namespace sg::sim {

SimTime Interconnect::device_to_host(std::uint64_t bytes) const {
  if (bytes == 0) return SimTime::zero();
  // GPUDirect bypasses host staging: the PCIe/RDMA hop is folded into
  // host_to_host (the direct device-to-device link).
  if (params_->gpudirect) return SimTime::zero();
  return params_->pcie_latency +
         SimTime{static_cast<double>(bytes) / params_->pcie_bw};
}

SimTime Interconnect::host_to_device(std::uint64_t bytes) const {
  return device_to_host(bytes);
}

SimTime Interconnect::host_to_host(int src_device, int dst_device,
                                   std::uint64_t bytes) const {
  if (bytes == 0) return SimTime::zero();
  if (topo_->same_host(src_device, dst_device)) {
    if (src_device == dst_device) return SimTime::zero();
    if (params_->gpudirect) {
      // GPUDirect P2P: one PCIe hop, no DRAM staging.
      return params_->pcie_latency +
             SimTime{static_cast<double>(bytes) / params_->pcie_bw};
    }
    return SimTime{static_cast<double>(bytes) / params_->host_mem_bw};
  }
  const double shared_bw =
      params_->net_bw / static_cast<double>(topo_->gpus_per_host());
  if (params_->gpudirect) {
    // GPUDirect RDMA: NIC reads device memory directly; the host
    // software envelope cost drops out of the data path.
    return params_->net_latency +
           SimTime{params_->per_message_overhead.seconds() / 4.0} +
           SimTime{static_cast<double>(bytes) / shared_bw};
  }
  return params_->net_latency + params_->per_message_overhead +
         SimTime{static_cast<double>(bytes) / shared_bw};
}

SimTime Interconnect::host_to_host_fixed(int src_device,
                                         int dst_device) const {
  if (topo_->same_host(src_device, dst_device)) return SimTime::zero();
  if (params_->gpudirect) {
    return params_->net_latency +
           SimTime{params_->per_message_overhead.seconds() / 4.0};
  }
  return params_->net_latency + params_->per_message_overhead;
}

SimTime Interconnect::device_to_device(int src_device, int dst_device,
                                       std::uint64_t bytes) const {
  if (src_device == dst_device || bytes == 0) return SimTime::zero();
  return device_to_host(bytes) + host_to_host(src_device, dst_device, bytes) +
         host_to_device(bytes);
}

}  // namespace sg::sim
