#include "sim/topology.hpp"

#include <algorithm>

namespace sg::sim {

namespace {
std::uint64_t scaled_capacity(double gib, double scale) {
  const double bytes = gib * 1024.0 * 1024.0 * 1024.0 / scale;
  return static_cast<std::uint64_t>(bytes);
}
}  // namespace

GpuSpec GpuSpec::p100(double scale) {
  return GpuSpec{"P100", scaled_capacity(16.0, scale), 224};
}

GpuSpec GpuSpec::k80(double scale) {
  return GpuSpec{"K80", scaled_capacity(12.0, scale), 104};
}

GpuSpec GpuSpec::gtx1080(double scale) {
  return GpuSpec{"GTX1080", scaled_capacity(8.0, scale), 160};
}

Topology::Topology(std::vector<GpuSpec> device_specs, int gpus_per_host)
    : specs_(std::move(device_specs)), gpus_per_host_(gpus_per_host) {
  if (specs_.empty()) throw std::invalid_argument("Topology: no devices");
  if (gpus_per_host_ <= 0) {
    throw std::invalid_argument("Topology: gpus_per_host must be positive");
  }
  num_hosts_ = (num_devices() + gpus_per_host_ - 1) / gpus_per_host_;
}

std::uint64_t Topology::min_device_memory() const {
  std::uint64_t best = specs_.front().memory_bytes;
  for (const auto& s : specs_) best = std::min(best, s.memory_bytes);
  return best;
}

Topology Topology::bridges(int num_devices, double scale) {
  if (num_devices <= 0) {
    throw std::invalid_argument("Topology::bridges: need >= 1 device");
  }
  std::vector<GpuSpec> specs(static_cast<std::size_t>(num_devices),
                             GpuSpec::p100(scale));
  return Topology{std::move(specs), 2};
}

Topology Topology::tuxedo(int num_devices, double scale) {
  if (num_devices <= 0 || num_devices > 6) {
    throw std::invalid_argument("Topology::tuxedo: 1..6 devices");
  }
  std::vector<GpuSpec> specs;
  specs.reserve(static_cast<std::size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    specs.push_back(i < 4 ? GpuSpec::k80(scale) : GpuSpec::gtx1080(scale));
  }
  return Topology{std::move(specs), 6};
}

}  // namespace sg::sim
