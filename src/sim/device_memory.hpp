#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace sg::sim {

/// Thrown when a simulated allocation exceeds device capacity.
///
/// Benchmarks catch this and report the configuration as a failed run —
/// the paper's "missing points ... failed due to memory limits".
class OutOfDeviceMemory : public std::runtime_error {
 public:
  OutOfDeviceMemory(int device, std::uint64_t requested,
                    std::uint64_t in_use, std::uint64_t capacity)
      : std::runtime_error(
            "device " + std::to_string(device) + ": allocation of " +
            std::to_string(requested) + " B exceeds capacity (" +
            std::to_string(in_use) + " B in use of " +
            std::to_string(capacity) + " B)"),
        device_(device),
        requested_(requested),
        in_use_(in_use),
        capacity_(capacity) {}

  [[nodiscard]] int device() const { return device_; }
  [[nodiscard]] std::uint64_t requested() const { return requested_; }
  [[nodiscard]] std::uint64_t in_use() const { return in_use_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

 private:
  int device_;
  std::uint64_t requested_;
  std::uint64_t in_use_;
  std::uint64_t capacity_;
};

/// Accounting for one simulated GPU's global memory.
///
/// Every buffer the engine conceptually places on a GPU (local CSR,
/// label arrays, worklists, communication buffers) is registered here by
/// tag. Exceeding capacity throws OutOfDeviceMemory. `reserve_static`
/// models Lux's up-front fixed pool: the pool counts fully toward usage
/// regardless of what is carved out of it (Table III).
class DeviceMemory {
 public:
  DeviceMemory(int device, std::uint64_t capacity_bytes)
      : device_(device), capacity_(capacity_bytes) {}

  /// Allocates `bytes` under `tag` (accumulating if the tag exists).
  void allocate(const std::string& tag, std::uint64_t bytes);

  /// Frees the named allocation entirely.
  void free(const std::string& tag);

  /// Lux-style static pool: claims `bytes` immediately; later allocate()
  /// calls draw from the pool instead of raising usage, but OOM if the
  /// pool itself is exceeded.
  void reserve_static(std::uint64_t bytes);

  [[nodiscard]] bool has_static_pool() const { return static_pool_ > 0; }
  [[nodiscard]] std::uint64_t in_use() const { return in_use_; }
  [[nodiscard]] std::uint64_t peak() const { return peak_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] int device() const { return device_; }

  /// Bytes currently attributed to `tag` (0 when absent).
  [[nodiscard]] std::uint64_t usage(const std::string& tag) const;

 private:
  void raise(std::uint64_t bytes);

  int device_;
  std::uint64_t capacity_;
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t static_pool_ = 0;
  std::uint64_t pool_used_ = 0;
  std::unordered_map<std::string, std::uint64_t> tags_;
};

}  // namespace sg::sim
