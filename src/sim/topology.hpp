#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sg::sim {

/// Static description of one GPU model in the simulated cluster.
struct GpuSpec {
  std::string name;
  std::uint64_t memory_bytes = 0;  ///< device (global) memory capacity
  int thread_blocks = 224;         ///< resident thread blocks (CTAs)

  /// NVIDIA Tesla P100: 16 GB HBM2, 56 SMs (modeled at 4 resident CTAs
  /// each). Capacity is divided by `scale` to match scaled datasets.
  static GpuSpec p100(double scale = 1000.0);
  /// NVIDIA Tesla K80 (one GK210 die): 12 GB, 13 SMs.
  static GpuSpec k80(double scale = 1000.0);
  /// NVIDIA GeForce GTX 1080: 8 GB, 20 SMs.
  static GpuSpec gtx1080(double scale = 1000.0);
};

/// Cluster shape: which GPU sits on which host.
///
/// Mirrors the paper's two platforms:
///  * Bridges - up to 32 hosts x 2 P100 GPUs, Omni-Path between hosts.
///  * Tuxedo  - a single host with 4 K80 + 2 GTX 1080 GPUs.
class Topology {
 public:
  Topology(std::vector<GpuSpec> device_specs, int gpus_per_host);

  [[nodiscard]] int num_devices() const {
    return static_cast<int>(specs_.size());
  }
  [[nodiscard]] int num_hosts() const { return num_hosts_; }
  [[nodiscard]] int gpus_per_host() const { return gpus_per_host_; }

  [[nodiscard]] int host_of(int device) const {
    check_device(device);
    return device / gpus_per_host_;
  }
  [[nodiscard]] bool same_host(int a, int b) const {
    return host_of(a) == host_of(b);
  }
  [[nodiscard]] const GpuSpec& spec(int device) const {
    check_device(device);
    return specs_[device];
  }

  /// Smallest device memory in the cluster (drives Lux's static pool).
  [[nodiscard]] std::uint64_t min_device_memory() const;

  /// Bridges-like topology: `num_devices` P100s, 2 per host.
  static Topology bridges(int num_devices, double scale = 1000.0);
  /// Tuxedo-like topology: single host, first 4 GPUs K80, next 2 GTX1080.
  static Topology tuxedo(int num_devices, double scale = 1000.0);

 private:
  void check_device(int device) const {
    if (device < 0 || device >= num_devices()) {
      throw std::out_of_range("Topology: device " + std::to_string(device) +
                              " out of range");
    }
  }

  std::vector<GpuSpec> specs_;
  int gpus_per_host_;
  int num_hosts_;
};

}  // namespace sg::sim
