#include "sim/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace sg::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(const Task& task, std::size_t chunk_index) const {
  const std::size_t n = task.end - task.begin;
  const std::size_t per = (n + task.nchunks - 1) / task.nchunks;
  const std::size_t lo = task.begin + chunk_index * per;
  const std::size_t hi = std::min(task.end, lo + per);
  if (lo < hi) (*task.fn)(lo, hi, chunk_index);
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock,
                     [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    run_chunk(task, worker_id + 1);  // chunk 0 is the caller's.
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t nchunks = workers_.size() + 1;
  if (nchunks == 1 || end - begin < 2 * nchunks) {
    fn(begin, end, 0);
    return;
  }
  Task task{&fn, begin, end, 0, nchunks};
  {
    std::lock_guard lock(mutex_);
    task_ = task;
    remaining_ = workers_.size();
    ++epoch_;
  }
  cv_start_.notify_all();
  run_chunk(task, 0);
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{[] {
    if (const char* env = std::getenv("SG_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }()};
  return pool;
}

}  // namespace sg::sim
