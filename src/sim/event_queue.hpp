#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/sim_time.hpp"

namespace sg::sim {

/// Discrete-event scheduler keyed on simulated time.
///
/// Ties are broken by insertion sequence number so that simulations are
/// fully deterministic regardless of heap implementation details. Used by
/// the BASP executor to interleave per-device local rounds and message
/// arrivals in simulated-time order.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `cb` to fire at absolute simulated time `when`.
  void schedule(SimTime when, Callback cb) {
    heap_.push(Event{when, next_seq_++, std::move(cb)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const { return heap_.top().when; }

  /// Pops and runs the earliest event; returns its firing time.
  SimTime run_next() {
    // std::priority_queue::top returns const&; the event must be moved
    // out before pop, so we const_cast the (logically owned) top slot.
    auto& top = const_cast<Event&>(heap_.top());
    const SimTime when = top.when;
    Callback cb = std::move(top.cb);
    heap_.pop();
    now_ = when;
    cb(when);
    return when;
  }

  /// Runs events until the queue drains; returns the last firing time.
  SimTime run_to_completion() {
    SimTime last = now_;
    while (!heap_.empty()) last = run_next();
    return last;
  }

  /// Current simulated time (time of the last event run).
  [[nodiscard]] SimTime now() const { return now_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return b.when < a.when;
      return b.seq < a.seq;  // earlier sequence first on ties
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = SimTime::zero();
};

}  // namespace sg::sim
