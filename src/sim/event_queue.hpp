#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/sim_time.hpp"

namespace sg::sim {

/// Discrete-event scheduler keyed on simulated time.
///
/// Ties are broken by insertion sequence number so that simulations are
/// fully deterministic regardless of heap implementation details. Used by
/// the BASP executor to interleave per-device local rounds and message
/// arrivals in simulated-time order.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `cb` to fire at absolute simulated time `when`.
  void schedule(SimTime when, Callback cb) {
    heap_.push_back(Event{when, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const { return heap_.front().when; }

  /// Pops and runs the earliest event; returns its firing time.
  SimTime run_next() {
    // pop_heap moves the earliest event to the back, from which it can
    // be moved out without const_cast (UBSan-clean, unlike mutating
    // priority_queue::top()).
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.when;
    ev.cb(ev.when);
    return ev.when;
  }

  /// Runs events until the queue drains; returns the last firing time.
  SimTime run_to_completion() {
    SimTime last = now_;
    while (!heap_.empty()) last = run_next();
    return last;
  }

  /// Current simulated time (time of the last event run).
  [[nodiscard]] SimTime now() const { return now_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return b.when < a.when;
      return b.seq < a.seq;  // earlier sequence first on ties
    }
  };

  // Min-heap via std::push_heap/std::pop_heap over a plain vector;
  // `Later` orders max-heap-style so front() is the earliest event.
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = SimTime::zero();
};

}  // namespace sg::sim
