#pragma once

#include <cstdint>

#include "sim/cost_params.hpp"
#include "sim/sim_time.hpp"
#include "sim/topology.hpp"

namespace sg::sim {

/// Intra-GPU load-balancing strategy for distributing edge work.
///
///  * TWC - Merrill et al.'s Thread/Warp/CTA expansion: balances edges
///    inside a thread block but a single vertex's edges never leave its
///    block, so one huge-degree vertex overloads one block.
///  * ALB - the Adaptive Load Balancer: detects thread-block imbalance
///    and spreads very-high-degree vertices across all blocks, at a
///    small inspection + split cost per kernel.
///  * LB  - Lux/Gunrock-style per-block edge distribution: same
///    inter-block behaviour as TWC (modeled with a slightly lower
///    scheduling efficiency for low-degree vertices).
enum class Balancer { TWC, ALB, LB };

[[nodiscard]] const char* to_string(Balancer b);

/// Result of mapping one round's active vertices onto thread blocks.
/// Produced by engine::analyze_kernel (which owns the assignment logic);
/// consumed by GpuCostModel to turn work into simulated time.
struct KernelSchedule {
  std::uint64_t total_edges = 0;      ///< edges relaxed this kernel
  std::uint32_t active_vertices = 0;  ///< operator applications
  std::uint64_t max_block_edges = 0;  ///< heaviest thread block's edges
  bool alb_split = false;             ///< ALB split a high-degree vertex
};

/// Converts kernel schedules and buffer operations into simulated time
/// for one GPU. Stateless apart from the calibration constants.
class GpuCostModel {
 public:
  GpuCostModel(const GpuSpec& spec, const CostParams& params)
      : spec_(&spec), params_(&params) {}

  /// Time for one operator kernel under the given balancer.
  /// The critical path is the most loaded thread block; a perfectly
  /// balanced schedule (max_block = total/blocks) reduces to
  /// total_edges / edge_throughput.
  [[nodiscard]] SimTime kernel_time(const KernelSchedule& sched,
                                    Balancer balancer) const;

  /// Update-only (UO) extraction: prefix-scan over `tracked_entries`
  /// shared-proxy slots plus compaction of `bytes_out` bytes.
  [[nodiscard]] SimTime extract_updates_time(std::uint64_t tracked_entries,
                                             std::uint64_t bytes_out) const;

  /// Plain device-memory copy (AS extraction, reduce/broadcast apply).
  [[nodiscard]] SimTime buffer_copy_time(std::uint64_t bytes) const;

  [[nodiscard]] const GpuSpec& spec() const { return *spec_; }

 private:
  const GpuSpec* spec_;
  const CostParams* params_;
};

}  // namespace sg::sim
