#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace sg::sim {

/// Simulated wall-clock time in seconds.
///
/// A strong type so that simulated time is never accidentally mixed with
/// real (chrono) time or with byte counts. All cost models produce
/// SimTime; executors only ever add / max these values.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }
  [[nodiscard]] constexpr double millis() const { return seconds_ * 1e3; }
  [[nodiscard]] constexpr double micros() const { return seconds_ * 1e6; }

  constexpr SimTime& operator+=(SimTime o) {
    seconds_ += o.seconds_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    seconds_ -= o.seconds_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.seconds_ + b.seconds_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.seconds_ - b.seconds_};
  }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return SimTime{a.seconds_ * k};
  }
  friend constexpr SimTime operator*(double k, SimTime a) { return a * k; }

  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0.0}; }
  /// Sentinel for "never" (compares greater than every finite time).
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<double>::infinity()};
  }
  [[nodiscard]] static constexpr SimTime micros(double us) {
    return SimTime{us * 1e-6};
  }
  [[nodiscard]] static constexpr SimTime millisec(double ms) {
    return SimTime{ms * 1e-3};
  }

 private:
  double seconds_ = 0.0;
};

[[nodiscard]] constexpr SimTime max(SimTime a, SimTime b) {
  return a < b ? b : a;
}
[[nodiscard]] constexpr SimTime min(SimTime a, SimTime b) {
  return b < a ? b : a;
}

}  // namespace sg::sim
