#pragma once

#include <cstdint>
#include <limits>

namespace sg::sim {

/// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
///
/// Every stochastic decision in the library (graph generation, random
/// partitioning, edge weights) flows through an explicitly-seeded Rng so
/// that simulations are bitwise reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi) {
    return lo + static_cast<std::uint32_t>(
                    bounded(static_cast<std::uint64_t>(hi) - lo + 1));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Fork a statistically-independent stream (for per-thread use).
  Rng fork() { return Rng{next() ^ 0xd1b54a32d192ed03ULL}; }

  // UniformRandomBitGenerator interface so std::shuffle etc. work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace sg::sim
