#pragma once

#include <cstdint>

#include "sim/sim_time.hpp"

namespace sg::sim {

/// Calibration constants for the cluster cost model.
///
/// Base values are taken from the paper's hardware (Bridges: NVIDIA Tesla
/// P100 over PCIe 3.0 x16, hosts connected by 100 Gb/s Intel Omni-Path)
/// with throughputs typical of graph workloads on that generation:
///
///   * P100 data-driven edge-relaxation throughput  ~2 GTEPS
///   * PCIe 3.0 x16 effective bandwidth             ~12 GB/s, ~10 us latency
///   * Omni-Path effective bandwidth                ~11 GB/s, ~3 us latency
///   * Kernel launch overhead                       ~6 us
///
/// Because our dataset analogues are scaled down ~1000x in edges, fixed
/// per-message/per-kernel latencies would dominate and distort the
/// compute-vs-bandwidth balance the paper reports. `scaled(k)` therefore
/// divides all *fixed* latencies by the dataset scale factor k, keeping
/// the latency:bandwidth:compute ratios of the full-size system.
struct CostParams {
  // Compute.
  double edge_throughput = 2.0e9;   ///< relaxed edges / s, balanced kernel
  double vertex_overhead = 2.5e-10; ///< extra seconds per active vertex
  SimTime kernel_launch = SimTime::micros(6.0);
  SimTime alb_inspection = SimTime::micros(3.0);  ///< ALB's per-kernel check
  double alb_split_tax = 0.05;  ///< ALB inter-block split efficiency loss

  // Device memory engine (extraction / apply of sync buffers).
  double device_mem_bw = 500.0e9;   ///< bytes / s usable HBM2 bandwidth
  double scan_throughput = 20.0e9;  ///< bitvector prefix-scan entries / s

  // Device <-> host (PCIe 3.0 x16). Effective bandwidth for the many
  // small scattered sync buffers is well below the 12 GB/s peak (the
  // P100 pairs also share a host PCIe switch with the NIC).
  double pcie_bw = 5.0e9;           ///< bytes / s
  SimTime pcie_latency = SimTime::micros(10.0);

  // Host <-> host (Omni-Path), per-NIC, shared by that host's GPUs.
  // Effective per-GPU MPI bandwidth, not line rate.
  double net_bw = 5.0e9;            ///< bytes / s
  SimTime net_latency = SimTime::micros(3.0);

  // Host-internal staging copy (same-host GPU pairs route via DRAM).
  double host_mem_bw = 30.0e9;      ///< bytes / s

  /// Fixed per-operation software overhead on the host per message
  /// (MPI envelope, progress engine, unpack kernel launch); dominates
  /// small-message rounds (paper Section V-B3).
  SimTime per_message_overhead = SimTime::micros(10.0);

  /// NVIDIA GPUDirect (paper Section VII's first proposed improvement):
  /// peer-to-peer PCIe for same-host GPU pairs and RDMA for cross-host
  /// transfers, removing the host-staging hops entirely. Off by default
  /// (no framework in the study used it).
  bool gpudirect = false;

  /// Host-side runtime task-mapping overhead per device per round,
  /// charged only when EngineConfig::charge_runtime_overhead is set.
  /// Models Lux's Legion runtime, whose centralized dynamic mapping
  /// makes per-round cost grow with the device count — the reason Lux
  /// stops scaling past ~4 GPUs and becomes wait-dominated at 8+ hosts
  /// (paper Section V-B1).
  SimTime runtime_task_overhead = SimTime::millisec(40.0);

  /// Returns a copy with all fixed latencies divided by `k` (see above).
  [[nodiscard]] CostParams scaled(double k) const {
    CostParams p = *this;
    p.kernel_launch = SimTime{kernel_launch.seconds() / k};
    p.alb_inspection = SimTime{alb_inspection.seconds() / k};
    p.pcie_latency = SimTime{pcie_latency.seconds() / k};
    p.net_latency = SimTime{net_latency.seconds() / k};
    p.per_message_overhead = SimTime{per_message_overhead.seconds() / k};
    p.runtime_task_overhead = SimTime{runtime_task_overhead.seconds() / k};
    return p;
  }

  /// Default parameters for the standard dataset scale (~1000x reduced).
  ///
  /// Data-proportional terms scale with the dataset, but per-message
  /// software costs (MPI envelope, progress engine, unpack launch) are
  /// size-independent on the real system — scaling them fully would
  /// erase the partner-count effects the paper reports (CVC's fewer
  /// communication partners, the latency-bound small-message regime of
  /// Section V-B3). They are therefore scaled by only 100x.
  [[nodiscard]] static CostParams for_scaled_datasets() {
    CostParams p = CostParams{}.scaled(1000.0);
    const CostParams base{};
    p.per_message_overhead =
        SimTime{base.per_message_overhead.seconds() / 100.0};
    p.net_latency = SimTime{base.net_latency.seconds() / 100.0};
    p.pcie_latency = SimTime{base.pcie_latency.seconds() / 100.0};
    return p;
  }
};

}  // namespace sg::sim
