#include "sim/device_memory.hpp"

#include <algorithm>

namespace sg::sim {

void DeviceMemory::raise(std::uint64_t bytes) {
  if (in_use_ + bytes > capacity_) {
    throw OutOfDeviceMemory(device_, bytes, in_use_, capacity_);
  }
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
}

void DeviceMemory::allocate(const std::string& tag, std::uint64_t bytes) {
  if (static_pool_ > 0) {
    // Carve out of the static pool; usage was charged at reserve time.
    if (pool_used_ + bytes > static_pool_) {
      throw OutOfDeviceMemory(device_, bytes, pool_used_, static_pool_);
    }
    pool_used_ += bytes;
  } else {
    raise(bytes);
  }
  tags_[tag] += bytes;
}

void DeviceMemory::free(const std::string& tag) {
  auto it = tags_.find(tag);
  if (it == tags_.end()) return;
  if (static_pool_ > 0) {
    pool_used_ -= std::min(pool_used_, it->second);
  } else {
    in_use_ -= std::min(in_use_, it->second);
  }
  tags_.erase(it);
}

void DeviceMemory::reserve_static(std::uint64_t bytes) {
  if (static_pool_ > 0) {
    throw std::logic_error("DeviceMemory: static pool already reserved");
  }
  raise(bytes);
  static_pool_ = bytes;
}

std::uint64_t DeviceMemory::usage(const std::string& tag) const {
  auto it = tags_.find(tag);
  return it == tags_.end() ? 0 : it->second;
}

}  // namespace sg::sim
