#pragma once

#include <cstdint>

#include "sim/cost_params.hpp"
#include "sim/sim_time.hpp"
#include "sim/topology.hpp"

namespace sg::sim {

/// Transfer-time model for the cluster's links.
///
/// All frameworks in the paper route GPU-to-GPU messages through the
/// hosts (no GPUDirect): sender GPU -> sender host (PCIe) -> receiver
/// host (network, or a DRAM staging copy when both GPUs share a host)
/// -> receiver GPU (PCIe). Each host's NIC is shared by its GPUs, which
/// is modeled as a bandwidth division by gpus_per_host.
class Interconnect {
 public:
  Interconnect(const Topology& topo, const CostParams& params)
      : topo_(&topo), params_(&params) {}

  /// Device -> its host over PCIe.
  [[nodiscard]] SimTime device_to_host(std::uint64_t bytes) const;
  /// Host -> its device over PCIe.
  [[nodiscard]] SimTime host_to_device(std::uint64_t bytes) const;

  /// Host of `src_device` -> host of `dst_device`. Same-host pairs pay a
  /// DRAM staging copy; cross-host pairs pay NIC latency + shared-NIC
  /// bandwidth plus the per-message software overhead.
  [[nodiscard]] SimTime host_to_host(int src_device, int dst_device,
                                     std::uint64_t bytes) const;

  /// Full device-to-device path (the sum of the three hops above).
  [[nodiscard]] SimTime device_to_device(int src_device, int dst_device,
                                         std::uint64_t bytes) const;

  /// Byte-independent share of one cross-host hop (NIC latency plus the
  /// per-message software envelope; zero for same-host pairs). Used by
  /// bottleneck attribution to tell latency-bound from bandwidth-bound
  /// inter-host traffic.
  [[nodiscard]] SimTime host_to_host_fixed(int src_device,
                                           int dst_device) const;

  [[nodiscard]] const Topology& topology() const { return *topo_; }

 private:
  const Topology* topo_;
  const CostParams* params_;
};

}  // namespace sg::sim
