#include "sim/gpu_cost_model.hpp"

namespace sg::sim {

const char* to_string(Balancer b) {
  switch (b) {
    case Balancer::TWC: return "TWC";
    case Balancer::ALB: return "ALB";
    case Balancer::LB: return "LB";
  }
  return "?";
}

SimTime GpuCostModel::kernel_time(const KernelSchedule& sched,
                                  Balancer balancer) const {
  if (sched.total_edges == 0 && sched.active_vertices == 0) {
    return SimTime::zero();
  }
  // Per-block edge throughput: the device's aggregate throughput divided
  // evenly among resident thread blocks. The kernel finishes when the
  // heaviest block finishes.
  const double blocks = static_cast<double>(spec_->thread_blocks);
  double per_block_throughput = params_->edge_throughput / blocks;
  if (balancer == Balancer::LB) {
    // Lux's scheduler pays a small efficiency tax on low-degree vertices
    // (edges of every vertex are strided across a whole block, idling
    // most threads on low-degree vertices).
    per_block_throughput *= 0.7;
  }
  double seconds =
      static_cast<double>(sched.max_block_edges) / per_block_throughput;
  seconds +=
      static_cast<double>(sched.active_vertices) * params_->vertex_overhead;
  SimTime t = SimTime{seconds} + params_->kernel_launch;
  if (balancer == Balancer::ALB) {
    t += params_->alb_inspection;
    if (sched.alb_split) {
      // Splitting a vertex across blocks costs extra coordination.
      t += SimTime{static_cast<double>(sched.total_edges) *
                   params_->alb_split_tax / params_->edge_throughput};
    }
  }
  return t;
}

SimTime GpuCostModel::extract_updates_time(std::uint64_t tracked_entries,
                                           std::uint64_t bytes_out) const {
  const double scan =
      static_cast<double>(tracked_entries) / params_->scan_throughput;
  const double copy =
      static_cast<double>(bytes_out) / params_->device_mem_bw;
  return SimTime{scan + copy} + params_->kernel_launch;
}

SimTime GpuCostModel::buffer_copy_time(std::uint64_t bytes) const {
  if (bytes == 0) return SimTime::zero();
  return SimTime{static_cast<double>(bytes) / params_->device_mem_bw} +
         params_->kernel_launch;
}

}  // namespace sg::sim
