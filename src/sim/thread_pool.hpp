#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sg::sim {

/// Fixed-size thread pool with a fork-join `parallel_for` primitive.
///
/// Simulated GPUs execute their (real) label updates through this pool:
/// the *result* of a kernel is computed on host threads while the kernel's
/// *cost* is computed analytically by the GpuCostModel. The pool uses
/// static chunking so that work-item counts are deterministic.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(begin..end) partitioned into static contiguous chunks, one
  /// per pool thread (the calling thread participates). Blocks until all
  /// chunks complete. fn is invoked as fn(chunk_begin, chunk_end, tid).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn);

  /// Process-wide pool, sized from SG_THREADS env var or hardware.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
        nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 0;
    std::size_t nchunks = 0;
  };

  void worker_loop(std::size_t worker_id);
  void run_chunk(const Task& task, std::size_t chunk_index) const;

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;
};

}  // namespace sg::sim
