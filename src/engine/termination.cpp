#include "engine/termination.hpp"

#include <stdexcept>

namespace sg::engine {

TerminationDetector::TerminationDetector(int num_processes)
    : procs_(static_cast<std::size_t>(num_processes)) {
  if (num_processes < 1) {
    throw std::invalid_argument("TerminationDetector: need >= 1 process");
  }
}

void TerminationDetector::on_send(int process) {
  ++procs_[process].counter;
}

void TerminationDetector::on_receive(int process) {
  --procs_[process].counter;
  procs_[process].color = Color::kBlack;
  // A message woke this process up; conservative callers also
  // set_active(process, true), but blackening alone already prevents a
  // false detection on the current circulation.
}

void TerminationDetector::set_active(int process, bool active) {
  procs_[process].active = active;
}

bool TerminationDetector::try_advance() {
  if (terminated_) return true;
  Process& holder = procs_[token_holder_];
  if (holder.active) return false;  // token waits for a passive holder

  if (token_holder_ == 0) {
    // Initiator: evaluate the completed circulation, then start anew.
    if (rounds_ > 0 && token_color_ == Color::kWhite &&
        holder.color == Color::kWhite &&
        token_count_ + holder.counter == 0) {
      terminated_ = true;
      return true;
    }
    ++rounds_;
    token_color_ = Color::kWhite;
    token_count_ = 0;
    holder.color = Color::kWhite;
    token_holder_ = static_cast<int>(procs_.size()) - 1;
    return false;
  }

  // Intermediate hop: fold the holder's state into the token.
  token_count_ += holder.counter;
  if (holder.color == Color::kBlack) token_color_ = Color::kBlack;
  holder.color = Color::kWhite;
  --token_holder_;
  return false;
}

}  // namespace sg::engine
