#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/field_sync.hpp"
#include "comm/sync_structure.hpp"
#include "engine/config.hpp"
#include "engine/load_balancer.hpp"
#include "engine/program.hpp"
#include "engine/round_ctx.hpp"
#include "engine/stats.hpp"
#include "engine/termination.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_injector.hpp"
#include "fault/gray.hpp"
#include "fault/health.hpp"
#include "integrity/auditor.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "util/hash.hpp"
#include "obs/trace.hpp"
#include "partition/dist_graph.hpp"
#include "partition/partition_io.hpp"
#include "partition/rehome.hpp"
#include "sim/device_memory.hpp"
#include "sim/event_queue.hpp"
#include "sim/gpu_cost_model.hpp"
#include "sim/interconnect.hpp"
#include "sim/thread_pool.hpp"
#include "sim/topology.hpp"

namespace sg::engine {

/// Outcome of a distributed run: the final per-device states (for result
/// extraction / validation) and the full simulated-time accounting.
template <typename Program>
struct RunResult {
  std::vector<typename Program::DeviceState> states;
  RunStats stats;
  /// Set when a permanent device loss re-homed masters mid-run: the
  /// rebuilt layout the final states live on. Result extraction must
  /// read master values against this graph, not the input one.
  std::shared_ptr<const partition::DistGraph> final_layout;

  /// The layout `states` is indexed by: the rebuilt one after an
  /// eviction, otherwise the original.
  [[nodiscard]] const partition::DistGraph& layout(
      const partition::DistGraph& original) const {
    return final_layout ? *final_layout : original;
  }
};

/// Distributed executor over the simulated cluster. Computation is real
/// (label arrays are actually updated); time, memory capacity, and
/// message transport are simulated. Dispatches to a bulk-synchronous
/// (BSP) or bulk-asynchronous (BASP) loop per EngineConfig::exec_model.
template <VertexProgram Program>
class Executor {
  using RV = typename Program::ReduceValue;
  using BV = typename Program::BcastValue;
  using RSync = comm::FieldSync<RV, typename Program::ReduceOp>;
  using BSync = comm::FieldSync<BV, typename Program::BcastOp>;
  using VertexId = graph::VertexId;

 public:
  Executor(const partition::DistGraph& dg, const comm::SyncStructure& sync,
           const sim::Topology& topo, const sim::CostParams& params,
           const EngineConfig& config, const Program& program)
      : dgp_(&dg),
        syncp_(&sync),
        topo_(topo),
        params_(params),
        net_(topo, params),
        config_(config),
        program_(program),
        devices_(dg.num_devices()) {
    if (topo_.num_devices() != devices_) {
      throw std::invalid_argument(
          "Executor: topology/partition device count mismatch");
    }
    reduce_filter_ = config_.structural_opt
                         ? program_.pattern().reduce_filter()
                         : comm::ProxyFilter::kAll;
    bcast_filter_ = config_.structural_opt
                        ? program_.pattern().broadcast_filter()
                        : comm::ProxyFilter::kAll;
    injector_ = fault::FaultInjector(config_.fault_plan, &topo_);
  }

  RunResult<Program> run() {
    // Black box: if anything below throws, the flight recorder is
    // dumped (raw order + host stamps) before the exception escapes.
    obs::AbortDump black_box(flight(), config_.flight_dump, 0.0);
    const auto run_scope = prof().scope("engine.run");
    setup();
    if (config_.exec_model == ExecModel::kSync) {
      run_bsp();
    } else {
      run_basp();
    }
    black_box.advance(total_time_.seconds());
    return collect();
  }

 private:
  // ---- per-device runtime ------------------------------------------------
  struct Dev {
    typename Program::DeviceState state;
    std::unique_ptr<RoundCtx> ctx;
    comm::Bitset dirty_r;  // mirror-side updates awaiting reduce
    comm::Bitset dirty_b;  // master-side updates awaiting broadcast
    std::vector<VertexId> frontier;
    comm::Bitset in_frontier;  // dedup across compute/sync activations
    bool progress = false;  // topology-driven activity flag
    std::unique_ptr<sim::DeviceMemory> memory;
    sim::SimTime clock;
    // BASP only:
    std::uint32_t local_round = 0;
    bool parked = false;
    std::uint32_t consecutive_stalls = 0;  // throttle progress guard
    std::vector<std::uint32_t> last_seen_round;  // per sender
    // Fault recovery: the device holds re-feed dirty marks that must be
    // flushed once before it may park (BASP degraded recovery).
    bool flush_pending = false;
    // Wire protocol: per-channel sequence numbers. Channel index is
    // peer * 2 + kind (reduce / broadcast), reset on layout rebuild
    // (the epoch bump fences everything sealed before the reset).
    std::vector<std::uint64_t> seq_out;
    std::vector<std::uint64_t> seq_in;
  };

  [[nodiscard]] static std::size_t channel(int peer, fault::MsgKind kind) {
    return static_cast<std::size_t>(peer) * 2 +
           (kind == fault::MsgKind::kBroadcast ? 1 : 0);
  }

  void setup() {
    if (config_.fault_plan != nullptr && !config_.fault_plan->empty()) {
      // A malformed plan is an error, never a silent no-op.
      config_.fault_plan->validate_or_throw(devices_, topo_.num_hosts());
    }
    if (config_.checkpoint.interval_rounds > 0 && !kCheckpointable) {
      // S-gate: reject instead of silently skipping snapshots — a user
      // who configured a cadence must learn the model cannot honor it.
      throw std::invalid_argument(
          std::string("Executor: checkpointing requested (interval_rounds=") +
          std::to_string(config_.checkpoint.interval_rounds) +
          ") but program '" + program_.name() +
          "' has no archive() on its DeviceState; it cannot be "
          "checkpointed");
    }
    if (!injector_.losses().empty() && devices_ < 2) {
      throw std::invalid_argument(
          "Executor: the fault plan schedules a permanent device loss but "
          "the topology has no surviving device to re-home masters onto");
    }
    stats_.resize(devices_);
    devs_.resize(devices_);
    setup_obs();
    for (int d = 0; d < devices_; ++d) {
      const auto& lg = dg().part(d);
      Dev& dev = devs_[d];
      dev.memory = std::make_unique<sim::DeviceMemory>(
          d, topo_.spec(d).memory_bytes);
      if (config_.static_pool_bytes > 0) {
        // Lux-style fixed pool (Table III): claimed up front.
        dev.memory->reserve_static(config_.static_pool_bytes);
      }
      charge_memory(d, lg, *dev.memory);

      dev.ctx = std::make_unique<RoundCtx>(lg.num_local);
      dev.dirty_r.resize(lg.num_local);
      dev.dirty_b.resize(lg.num_local);
      dev.in_frontier.resize(lg.num_local);
      dev.ctx->attach(&dev.dirty_r, &dev.dirty_b);
      dev.ctx->attach_obs(dev_scope(d));
      dev.last_seen_round.assign(devices_, 0);
      dev.seq_out.assign(static_cast<std::size_t>(devices_) * 2, 0);
      dev.seq_in.assign(static_cast<std::size_t>(devices_) * 2, 0);
      program_.init(lg, dev.state, *dev.ctx);
      merge_activations(dev);
      dev.progress = !dev.frontier.empty();
      stats_.peak_memory[d] = dev.memory->peak();
    }
    comm_per_dev_.assign(devices_, comm::CommStats{});
    fault_per_dev_.assign(devices_, fault::FaultStats{});
    fault_global_ = fault::FaultStats{};
    last_ckpt_ = fault::Checkpoint{};
    next_crash_ = 0;
    force_sync_rounds_ = 0;
    if (!config_.checkpoint.dir.empty()) {
      ckpt_store_ = fault::CheckpointStore(config_.checkpoint.dir);
    }
    monitor_ = fault::HeartbeatMonitor(config_.health, &injector_, devices_);
    monitor_.set_metrics(config_.metrics);
    gray_ = fault::GrayFailureMonitor(&injector_, devices_,
                                      config_.mitigation, config_.health);
    gray_.set_metrics(config_.metrics);
    pressure_squat_.assign(devices_, 0);
    epoch_ = 0;
    dead_.assign(devices_, 0);
    silent_.assign(devices_, 0);
    last_basp_ckpt_round_ = 0;
    label_flip_done_.assign(injector_.label_flips().size(), 0);
    ckpt_flip_done_.assign(injector_.checkpoint_flips().size(), 0);
    sdc_repair_count_.assign(devices_, 0);
    sdc_lag_.clear();
    audit_boundary_ = 0;
    final_audits_ = 0;
    last_sdc_rollback_round_ = std::numeric_limits<std::uint64_t>::max();
    invariants_valid_ = true;
  }

  // ---- observability -----------------------------------------------------
  /// Track layout: 0..D-1 per-device timelines, D..2D-1 "network from
  /// device d" (spans recorded by the sender, so the parallel BSP
  /// phases never race on a track), 2D the runtime track (checkpoint /
  /// rollback / re-homing, recorded from single-threaded contexts only).
  [[nodiscard]] obs::Scope dev_scope(int d) const {
    return obs::Scope{tracer_, d};
  }
  [[nodiscard]] obs::Scope net_scope(int d) const {
    return obs::Scope{tracer_, devices_ + d};
  }
  [[nodiscard]] obs::Scope rt_scope() const {
    return obs::Scope{tracer_, 2 * devices_};
  }

  /// Flight recorder / host profiler handles. Both fall back to the
  /// process-wide instances, so instrumentation is always wired: the
  /// recorder is genuinely always-on (lock-free, allocation-free), and
  /// the global profiler is disabled by default, making every scope a
  /// branch-and-return.
  [[nodiscard]] obs::FlightRecorder& flight() const {
    return config_.flight != nullptr ? *config_.flight
                                     : obs::FlightRecorder::global();
  }
  [[nodiscard]] obs::Profiler& prof() const {
    return config_.profiler != nullptr ? *config_.profiler
                                       : obs::Profiler::global();
  }

  void setup_obs() {
    tracer_ = config_.tracer;
    if (tracer_ != nullptr) {
      tracer_->require_tracks(2 * devices_ + 1);
      for (int d = 0; d < devices_; ++d) {
        tracer_->name_track(d, "gpu" + std::to_string(d));
        tracer_->name_track(devices_ + d,
                            "net from gpu" + std::to_string(d));
      }
      tracer_->name_track(2 * devices_, "runtime");
    }
    if (config_.metrics != nullptr) {
      obs::Registry& reg = *config_.metrics;
      m_rounds_ = &reg.counter("engine.local_rounds");
      m_messages_ = &reg.counter("engine.messages_sent");
      m_bytes_ = &reg.counter("engine.sync_bytes");
      m_checkpoints_ = &reg.counter("fault.checkpoints");
      m_rollbacks_ = &reg.counter("fault.rollbacks");
      m_msg_size_ = &reg.histogram("engine.message_size_bytes",
                                   obs::Histogram::exp2_bounds(6, 24));
      m_frontier_ = &reg.histogram("engine.frontier_size",
                                   obs::Histogram::exp2_bounds(0, 24));
      m_kernel_us_ = &reg.histogram("engine.kernel_time_us",
                                    obs::Histogram::exp2_bounds(0, 20));
      // Byzantine-network counters exist only under an active fault
      // plan so a clean run's metric dump stays byte-identical.
      if (injector_.active()) {
        m_net_anomalies_ = &reg.counter("fault.net_anomalies");
        m_protocol_discards_ = &reg.counter("fault.protocol_discards");
        m_partition_deferred_ = &reg.counter("fault.partition_deferred");
      }
      // Mitigation counters exist only when the plan actually contains
      // degradation faults (same byte-identity contract).
      if (injector_.active() && injector_.has_degradation()) {
        m_gray_migrations_ = &reg.counter("gray.migrations");
        m_gray_evictions_ = &reg.counter("gray.evictions");
      }
      // SDC counters exist only when the plan actually injects silent
      // corruption (same byte-identity contract).
      if (injector_.active() && injector_.has_sdc()) {
        m_sdc_audits_ = &reg.counter("sdc.audits");
        m_sdc_detected_ = &reg.counter("sdc.detected");
        m_sdc_repaired_ = &reg.counter("sdc.repaired");
      }
    }
  }


  /// Registers every buffer the engine conceptually places on the GPU.
  /// Throws sim::OutOfDeviceMemory when capacity is exceeded — the
  /// "missing data points" of the paper's scaling figures.
  void charge_memory(int d, const partition::LocalGraph& lg,
                     sim::DeviceMemory& mem) {
    mem.allocate("graph", lg.bytes());
    const std::uint64_t label_bytes =
        static_cast<std::uint64_t>(lg.num_local) *
        (sizeof(RV) + sizeof(BV) + Program::kExtraBytesPerVertex);
    mem.allocate("labels", label_bytes);
    mem.allocate("worklist", static_cast<std::uint64_t>(lg.num_local) * 8 +
                                 lg.num_local / 4);
    mem.allocate("sync_metadata", sync().metadata_bytes(d));
    if (config_.balancer == sim::Balancer::LB) {
      // Merrill-style load-balanced search needs a per-edge scan array.
      mem.allocate("lb_scratch", lg.num_out_edges() * 4);
    }
    if (config_.global_label_overhead_bytes > 0) {
      mem.allocate("global_arrays",
                   static_cast<std::uint64_t>(dg().global_vertices()) *
                       config_.global_label_overhead_bytes);
    }
    std::uint64_t buffers = 0;
    for (int o = 0; o < devices_; ++o) {
      buffers += static_cast<std::uint64_t>(
                     sync().list(d, o, comm::ProxyFilter::kAll).size()) *
                 (sizeof(RV) + 4);
      buffers += static_cast<std::uint64_t>(
                     sync().list(o, d, comm::ProxyFilter::kAll).size()) *
                 (sizeof(BV) + 4);
    }
    mem.allocate("comm_buffers", buffers);
  }

  // ---- compute ------------------------------------------------------------
  /// Runs one local round on device d starting at simulated time `at`;
  /// returns the kernel time (inflated by an active straggler fault)
  /// and updates work stats. Purely device-local.
  sim::SimTime compute_one_round(int d, sim::SimTime at) {
    Dev& dev = devs_[d];
    const auto& lg = dg().part(d);
    dev.ctx->reset_work();
    std::vector<VertexId> frontier;
    frontier.swap(dev.frontier);
    for (VertexId v : frontier) dev.in_frontier.reset(v);
    {
      // The real host work: the label-update kernel itself.
      const auto kernel_scope = prof().scope("engine.kernel");
      dev.progress =
          program_.compute_round(lg, dev.state, frontier, *dev.ctx);
    }
    merge_activations(dev);
    if (injector_.active() && injector_.has_sdc()) {
      kernel_sdc_perturb(d, at);
    }

    const sim::KernelSchedule sched =
        analyze_kernel(dev.ctx->work_sizes(), config_.balancer,
                       topo_.spec(d).thread_blocks);
    const sim::GpuCostModel cost(topo_.spec(d), params_);
    sim::SimTime t = cost.kernel_time(sched, config_.balancer);
    if (injector_.active()) {
      const double slow = injector_.compute_slowdown(d, at);
      if (slow > 1.0) {
        const sim::SimTime extra = t * (slow - 1.0);
        // Attribution: the extra time is charged to whichever factor
        // binds — a gray degradation at (or above) the straggler level
        // owns the delay, else it stays straggler-attributed.
        const double degrade = injector_.degrade_slowdown(d, at);
        if (degrade > 1.0 && degrade >= slow) {
          fault_per_dev_[d].degrade_delay += extra;
          fault_per_dev_[d].degrade_for(d).degrade_delay += extra;
        } else {
          fault_per_dev_[d].straggler_delay += extra;
        }
        t += extra;
      }
      const sim::SimTime stall = apply_memory_pressure(d, at + t);
      t += stall;
      gray_.observe_kernel(d, t.seconds(), stall.seconds());
    } else {
      gray_.observe_kernel(d, t.seconds());
    }
    stats_.compute_time[d] += t;
    stats_.work_items[d] += dev.ctx->total_edges();
    stats_.rounds[d] += 1;
    dev_scope(d).span(obs::SpanKind::kKernel, "kernel", at, at + t,
                      dev.ctx->total_edges(), stats_.rounds[d]);
    if (m_rounds_ != nullptr) {
      m_rounds_->inc();
      m_frontier_->observe(static_cast<double>(frontier.size()));
      m_kernel_us_->observe(t.micros());
    }
    return t;
  }

  [[nodiscard]] bool device_has_work(int d) const {
    return !devs_[d].frontier.empty() || devs_[d].progress;
  }

  /// Applies the memory-pressure fault in effect on device `d` at `at`:
  /// an external squatter claims the ramped fraction of capacity. What
  /// fits in free headroom is allocated under a "pressure" tag (the
  /// migration planner sees the shrunken headroom); the deficit is
  /// modeled as spill traffic staged over PCIe this round, returned as
  /// a stall on the device's timeline. Touches only per-device state,
  /// so the parallel BSP compute phase never races.
  sim::SimTime apply_memory_pressure(int d, sim::SimTime at) {
    const double frac = injector_.memory_pressure(d, at);
    std::uint64_t& squat = pressure_squat_[static_cast<std::size_t>(d)];
    if (frac <= 0.0 && squat == 0) return sim::SimTime{};
    Dev& dev = devs_[d];
    const std::uint64_t cap = dev.memory->capacity();
    const auto want =
        static_cast<std::uint64_t>(frac * static_cast<double>(cap));
    if (want != squat) {
      if (squat > 0) dev.memory->free("pressure");
      const std::uint64_t headroom = cap - dev.memory->in_use();
      squat = std::min(want, headroom);
      if (squat > 0) dev.memory->allocate("pressure", squat);
    }
    if (want == 0) return sim::SimTime{};
    fault::DegradeStats& ledger = fault_per_dev_[d].degrade_for(d);
    ledger.pressure_peak_bytes = std::max(ledger.pressure_peak_bytes, squat);
    const std::uint64_t deficit = want - squat;
    if (deficit == 0) return sim::SimTime{};
    const sim::SimTime stall = net_.host_to_device(deficit);
    fault_per_dev_[d].spill_bytes += deficit;
    fault_per_dev_[d].spill_stall += stall;
    ledger.spill_bytes += deficit;
    ledger.spill_stall = ledger.spill_stall + stall;
    dev_scope(d).span(obs::SpanKind::kPcie, "pressure.spill", at, at + stall,
                      deficit, static_cast<std::uint64_t>(d));
    return stall;
  }

  // ---- message bookkeeping --------------------------------------------
  template <typename T>
  struct Msg {
    comm::Payload<T> payload;
    sim::SimTime arrival;
    std::uint32_t sender_round = 0;
    obs::SpanRef net_ref;  ///< network-hop span, for receive-side links
    // Byzantine-network bookkeeping (BSP slots; BASP uses dup_ghost).
    bool duplicated = false;        ///< a ghost copy also arrives
    sim::SimTime dup_arrival;       ///< ghost arrival when duplicated
    bool dup_ghost = false;         ///< this Msg *is* the ghost (BASP)
  };

  /// Stamps the versioned wire header on an outgoing payload: version,
  /// kind, layout epoch, per-channel sequence number, sender round. The
  /// checksum is computed only under an active fault plan — on a clean
  /// run sealing is pure bookkeeping with zero modeled (and negligible
  /// real) cost, keeping clean timelines byte-identical.
  template <typename T>
  void seal_payload(comm::Payload<T>& p, int from, int to,
                    fault::MsgKind kind, std::uint64_t round) {
    if (!config_.wire_protocol) return;
    comm::WireHeader& h = p.header;
    h.version = comm::kWireVersion;
    h.kind = static_cast<std::uint8_t>(kind);
    h.epoch = epoch_;
    h.round = round;
    h.seq = devs_[from].seq_out[channel(to, kind)]++;
    if (injector_.active()) h.checksum = comm::payload_checksum(p);
  }

  /// Receiver-side admission verdict for one arrived payload.
  enum class Admit : std::uint8_t { kApply, kDiscard, kHold };

  /// Wire-protocol admission on device `d` (DESIGN.md §11): stale-epoch
  /// payloads are fence-rejected, checksum mismatches and already-seen
  /// sequence numbers discarded, and sequence gaps held for in-order
  /// apply (`allow_hold`; BSP's phase barrier makes gaps impossible, so
  /// it admits and fast-forwards instead). Unsealed payloads (protocol
  /// off) always apply — the unprotected failure mode under study.
  /// Mutates only devs_[d] / fault_per_dev_[d], so the parallel BSP
  /// apply phases never race.
  template <typename T>
  Admit admit_payload(int d, const comm::Payload<T>& p, fault::MsgKind kind,
                      bool allow_hold, sim::SimTime at) {
    if (!config_.wire_protocol || !p.header.sealed()) return Admit::kApply;
    const comm::WireHeader& h = p.header;
    fault::FaultStats& fs = fault_per_dev_[d];
    if (h.epoch != epoch_) {
      // Sealed under a pre-rebuild layout: its positions index exchange
      // lists that no longer exist. Safe to drop — the post-eviction
      // re-feed resends every proxy value.
      fs.fence_rejects += 1;
      fs.pair(p.from, d).fenced += 1;
      if (m_protocol_discards_ != nullptr) m_protocol_discards_->inc();
      flight().record(obs::FlightKind::kWire, d, p.from, h.epoch,
                      "fence_reject", at.seconds());
      return Admit::kDiscard;
    }
    if (!comm::verify_payload(p)) {
      fs.messages_corrupted += 1;
      fs.pair(p.from, d).corrupted += 1;
      if (m_protocol_discards_ != nullptr) m_protocol_discards_->inc();
      flight().record(obs::FlightKind::kWire, d, p.from,
                      static_cast<std::int64_t>(h.seq), "checksum_reject",
                      at.seconds());
      return Admit::kDiscard;
    }
    std::uint64_t& expected = devs_[d].seq_in[channel(p.from, kind)];
    if (h.seq < expected) {
      fs.duplicates_discarded += 1;
      if (m_protocol_discards_ != nullptr) m_protocol_discards_->inc();
      flight().record(obs::FlightKind::kWire, d, p.from,
                      static_cast<std::int64_t>(h.seq), "dup_discard",
                      at.seconds());
      return Admit::kDiscard;
    }
    if (h.seq > expected && allow_hold) return Admit::kHold;
    expected = h.seq + 1;
    return Admit::kApply;
  }

  /// Two-stage cost of an outgoing payload: GPU-side extraction, then
  /// the PCIe downlink. Under overlap_comm the stages pipeline across
  /// partners (extract partner i+1 while partner i's buffer is on the
  /// bus). Byte accounting goes to a per-device slot so parallel BSP
  /// phases do not race.
  struct StageCost {
    sim::SimTime first;   // extraction (send) / uplink (receive)
    sim::SimTime second;  // downlink (send)  / apply  (receive)
    [[nodiscard]] sim::SimTime total() const { return first + second; }
  };

  template <typename T>
  StageCost send_cost(int d, const comm::Payload<T>& p,
                      std::uint64_t list_size) {
    const sim::GpuCostModel cost(topo_.spec(d), params_);
    StageCost c;
    if (config_.sync_mode == comm::SyncMode::kUO) {
      c.first = cost.extract_updates_time(list_size, p.count() * sizeof(T));
    } else {
      c.first = cost.buffer_copy_time(p.count() * sizeof(T));
    }
    c.second = net_.device_to_host(p.bytes);
    comm_per_dev_[d].device_to_host_bytes += p.bytes;
    comm_per_dev_[d].messages += 1;
    return c;
  }

  /// PCIe-uplink + device apply cost of one incoming payload.
  template <typename T>
  StageCost receive_cost(int d, const comm::Payload<T>& p) {
    const sim::GpuCostModel cost(topo_.spec(d), params_);
    StageCost c;
    c.first = net_.host_to_device(p.bytes);
    c.second = cost.buffer_copy_time(p.count() * sizeof(T));
    comm_per_dev_[d].host_to_device_bytes += p.bytes;
    return c;
  }

  /// Advances a two-engine pipeline by one payload. Without overlap the
  /// stages serialize on one timeline; with overlap stage two runs on a
  /// copy/apply engine concurrently with the next payload's stage one.
  /// Returns the payload's completion time.
  sim::SimTime advance_pipeline(StageCost c, sim::SimTime& stage1_clock,
                                sim::SimTime& stage2_clock) const {
    stage1_clock += c.first;
    if (config_.overlap_comm) {
      stage2_clock = sim::max(stage2_clock, stage1_clock) + c.second;
    } else {
      stage1_clock += c.second;
      stage2_clock = stage1_clock;
    }
    return stage2_clock;
  }

  /// Send-side spans of one payload leaving device `d` for `o`:
  /// extraction [s0, s0+first), downlink ending at `sent`, and the
  /// network hop [sent, arrival) on d's network track. The downlink
  /// span is anchored to `sent` so it is correct in both pipeline modes
  /// (serialized and overlapped). Also feeds the send-side metrics.
  /// Returns the network-hop span's ref so receive-side spans can be
  /// causally linked to it (critical-path analysis). Same-host hops are
  /// DRAM staging copies, not NIC traffic — they get a distinct
  /// "*.staging" name so the breakdown taxonomy counts them as
  /// device-host rather than inter-host.
  obs::SpanRef trace_send(int d, int o, const char* extract,
                          const char* downlink, const char* net,
                          const StageCost& c, sim::SimTime s0,
                          sim::SimTime sent, sim::SimTime arrival,
                          std::uint64_t bytes) {
    obs::SpanRef net_ref;
    if (tracer_ != nullptr) {
      const auto peer = static_cast<std::uint64_t>(o);
      const obs::SpanRef ex = dev_scope(d).span(
          obs::SpanKind::kExtract, extract, s0, s0 + c.first, bytes, peer);
      const obs::SpanRef dl = dev_scope(d).span(
          obs::SpanKind::kPcie, downlink, sent - c.second, sent, bytes, peer);
      const char* hop = net;
      if (topo_.same_host(d, o)) {
        hop = net[0] == 'b' ? "bcast.staging" : "reduce.staging";
      }
      net_ref =
          net_scope(d).span(obs::SpanKind::kNet, hop, sent, arrival, bytes,
                            peer);
      tracer_->link(ex, dl);
      tracer_->link(dl, net_ref);
    }
    if (m_messages_ != nullptr) {
      m_messages_->inc();
      m_bytes_->inc(bytes);
      m_msg_size_->observe(static_cast<double>(bytes));
    }
    return net_ref;
  }

  /// Receive-side spans on device `d`: uplink [s0, s0+first) and apply
  /// ending at `end` (anchored like the downlink above), causally
  /// chained to the message's network hop via `net_ref`.
  void trace_recv(int d, int from, const char* uplink, const char* apply,
                  const StageCost& c, sim::SimTime s0, sim::SimTime end,
                  std::uint64_t bytes, obs::SpanRef net_ref) {
    if (tracer_ == nullptr) return;
    const auto peer = static_cast<std::uint64_t>(from);
    const obs::SpanRef up = dev_scope(d).span(
        obs::SpanKind::kPcie, uplink, s0, s0 + c.first, bytes, peer);
    const obs::SpanRef ap = dev_scope(d).span(
        obs::SpanKind::kApply, apply, end - c.second, end, bytes, peer);
    tracer_->link(net_ref, up);
    tracer_->link(up, ap);
  }

  void account_network(int from, int to, std::uint64_t bytes) {
    if (!topo_.same_host(from, to)) {
      comm_per_dev_[from].host_to_host_bytes += bytes;
    }
  }

  /// Outcome of handing one message to the simulated NIC.
  struct Delivery {
    sim::SimTime arrival;      ///< max() = fenced, never delivered
    bool corrupt = false;      ///< protocol off: payload must be perturbed
    std::uint64_t corrupt_h = 0;  ///< deterministic bit-flip selector
    bool duplicate = false;    ///< a ghost copy also arrives
    sim::SimTime dup_arrival;  ///< ghost arrival when duplicate
  };

  // Hash salts for deterministic anomaly shaping (independent of the
  // injector's decision salts).
  static constexpr std::uint64_t kGhostDelaySalt = 0x53474748ULL;
  static constexpr std::uint64_t kReorderDelaySalt = 0x53475244ULL;
  static constexpr std::uint64_t kCorruptBitsSalt = 0x53474342ULL;

  /// Self-healing host-to-host delivery: returns the arrival of a
  /// message handed to the network at `sent`, after the full gauntlet
  /// of injected network behaviour. Under an active fault plan:
  ///  * a partition separating the endpoint hosts holds the message at
  ///    the partition edge until heal — unless either endpoint crosses
  ///    its eviction fence before then, in which case the message is
  ///    discarded outright (fence reject: no split-brain traffic);
  ///  * each attempt may be dropped (timeout + backoff + retransmit);
  ///  * an attempt may be corrupted in flight: with the wire protocol
  ///    on the checksum catches it and the receiver NACKs the sender
  ///    into the same retry ladder; with it off the corrupted payload
  ///    is delivered and silently applied;
  ///  * the delivered copy may be duplicated (a ghost arrives later)
  ///    or reordered (arrival delayed past later traffic).
  /// All decisions are pure seeded hashes, and only per-`from` stat
  /// slots are touched, so this is safe from the parallel BSP phases.
  Delivery deliver_link(int from, int to, std::uint64_t bytes,
                        sim::SimTime sent, fault::MsgKind kind,
                        std::uint64_t round) {
    Delivery r;
    if (!injector_.active()) {
      r.arrival = sent + net_.host_to_host(from, to, bytes);
      return r;
    }
    const int sh = topo_.host_of(from);
    const int dh = topo_.host_of(to);
    fault::FaultStats& fs = fault_per_dev_[from];
    sim::SimTime start = sent;
    // Partition gate: cross-partition traffic is held at the edge.
    while (injector_.hosts_partitioned(sh, dh, start)) {
      const sim::SimTime heal = injector_.partition_heal(sh, dh, start);
      if (monitor_.fenced(from, heal) || monitor_.fenced(to, heal)) {
        // An endpoint is evicted before the link heals: the message is
        // from/to a fenced side and must never be applied.
        fs.fence_rejects += 1;
        fs.pair(from, to).fenced += 1;
        if (m_protocol_discards_ != nullptr) m_protocol_discards_->inc();
        net_scope(from).span(obs::SpanKind::kNet, "net.fenced", start, start,
                             bytes, static_cast<std::uint64_t>(to));
        flight().record(obs::FlightKind::kWire, from, to,
                        static_cast<std::int64_t>(bytes), "fenced",
                        start.seconds());
        r.arrival = sim::SimTime::max();
        return r;
      }
      fs.partition_deferred += 1;
      fs.pair(from, to).deferred += 1;
      fs.retries += 1;
      fs.retransmitted_bytes += bytes;
      comm_per_dev_[from].retransmitted_messages += 1;
      comm_per_dev_[from].retransmitted_bytes += bytes;
      if (m_partition_deferred_ != nullptr) m_partition_deferred_->inc();
      net_scope(from).span(obs::SpanKind::kNet, "net.partition_hold", start,
                           heal, bytes, static_cast<std::uint64_t>(to));
      flight().record(obs::FlightKind::kWire, from, to,
                      static_cast<std::int64_t>(bytes), "partition_hold",
                      start.seconds());
      start = heal;
    }
    sim::SimTime timeout = config_.retry.timeout;
    for (int attempt = 0;; ++attempt) {
      const double factor = injector_.link_delay_factor(sh, dh, start);
      const double lat = injector_.link_latency_factor(sh, dh, start);
      // Bandwidth derating scales the whole hop; latency derating adds
      // extra copies of the byte-independent share only (lat == 1, the
      // default, reproduces the pre-existing bandwidth-only model).
      sim::SimTime hop = net_.host_to_host(from, to, bytes) * factor;
      if (lat > 1.0) {
        hop = hop + net_.host_to_host_fixed(from, to) * (lat - 1.0);
      }
      const bool last = attempt >= config_.retry.max_retries;
      if (!last &&
          injector_.drops_message(from, to, kind, round, attempt, start)) {
        // Dropped: the bytes still crossed (part of) the wire, the
        // sender waits out the delivery timeout, then retransmits.
        fs.messages_dropped += 1;
        fs.pair(from, to).dropped += 1;
        fs.retries += 1;
        fs.retransmitted_bytes += bytes;
        comm_per_dev_[from].retransmitted_messages += 1;
        comm_per_dev_[from].retransmitted_bytes += bytes;
        account_network(from, to, bytes);
        flight().record(obs::FlightKind::kWire, from, to, attempt, "drop",
                        start.seconds());
        start += timeout;
        timeout = timeout * config_.retry.backoff;
        continue;
      }
      // This attempt reaches the receiver. In-flight corruption:
      if (injector_.corrupts_message(from, to, kind, round, attempt,
                                     start)) {
        if (m_net_anomalies_ != nullptr) m_net_anomalies_->inc();
        if (config_.wire_protocol && !last) {
          // Checksum mismatch at the receiver NIC -> NACK -> the sender
          // retransmits with the same timeout/backoff ladder. Each
          // retransmission re-rolls, so a clean copy gets through.
          fs.messages_corrupted += 1;
          fs.pair(from, to).corrupted += 1;
          fs.retries += 1;
          fs.retransmitted_bytes += bytes;
          comm_per_dev_[from].retransmitted_messages += 1;
          comm_per_dev_[from].retransmitted_bytes += bytes;
          account_network(from, to, bytes);
          net_scope(from).span(obs::SpanKind::kNet, "net.nack_retry", start,
                               start + timeout, bytes,
                               static_cast<std::uint64_t>(to));
          flight().record(obs::FlightKind::kWire, from, to, attempt,
                          "nack_retry", start.seconds());
          start += timeout;
          timeout = timeout * config_.retry.backoff;
          continue;
        }
        if (!config_.wire_protocol) {
          // Unprotected: the bit-flipped payload is delivered and will
          // be silently applied — the failure mode the checksum exists
          // to prevent (sg_chaos --inject-defect demonstrates it).
          r.corrupt = true;
          r.corrupt_h = static_cast<std::uint64_t>(
              injector_.anomaly_uniform(kCorruptBitsSalt, from, to, kind,
                                        round) *
              9007199254740992.0);
          fs.corrupt_applied += 1;
          fs.pair(from, to).corrupted += 1;
          flight().record(obs::FlightKind::kWire, from, to,
                          static_cast<std::int64_t>(round), "corrupt_applied",
                          start.seconds());
        }
        // Protocol on but the retry ladder is exhausted: the bounded
        // final attempt is modeled as verified end-to-end (delivered
        // clean) so no message is ever lost permanently.
      }
      sim::SimTime arrival = start + hop;
      if (injector_.reorders_message(from, to, kind, round, start)) {
        // Delayed past later traffic on the channel; the receiver's
        // reorder buffer (protocol on) restores apply order.
        const double u = injector_.anomaly_uniform(kReorderDelaySalt, from,
                                                   to, kind, round);
        arrival = arrival + config_.retry.timeout * (0.5 + 3.0 * u);
        fs.reorders_injected += 1;
        fs.pair(from, to).reordered += 1;
        if (m_net_anomalies_ != nullptr) m_net_anomalies_->inc();
        flight().record(obs::FlightKind::kWire, from, to,
                        static_cast<std::int64_t>(round), "reorder",
                        start.seconds());
      }
      if (injector_.duplicates_message(from, to, kind, round, start)) {
        const double u = injector_.anomaly_uniform(kGhostDelaySalt, from, to,
                                                   kind, round);
        r.duplicate = true;
        r.dup_arrival = arrival + config_.retry.timeout * (0.5 + 3.0 * u);
        fs.duplicates_injected += 1;
        fs.pair(from, to).duplicated += 1;
        if (m_net_anomalies_ != nullptr) m_net_anomalies_->inc();
        flight().record(obs::FlightKind::kWire, from, to,
                        static_cast<std::int64_t>(round), "dup_inject",
                        start.seconds());
      }
      r.arrival = arrival;
      return r;
    }
  }

  // =========================================================================
  // BSP: global rounds with a barrier (Section III-B).
  // =========================================================================
  void run_bsp() {
    auto& pool = sim::ThreadPool::global();
    sim::SimTime barrier;  // all devices aligned at round start

    const std::uint32_t round_limit =
        config_.fixed_rounds > 0 ? config_.fixed_rounds : config_.max_rounds;

    for (std::uint32_t round = 0; round < round_limit; ++round) {
      // A lost-but-unevicted device is silent: it stops computing and
      // sending at its loss time, and peers stop extracting toward it
      // (no delivery can ever be acknowledged, so the runtime keeps
      // those updates dirty instead of destroying them at extraction).
      if (monitor_.active()) {
        for (int d = 0; d < devices_; ++d) {
          silent_[d] =
              (dead_[d] || injector_.lost_at(d) <= barrier) ? 1 : 0;
        }
      }
      const bool losses_pending =
          monitor_.active() && !monitor_.all_losses_evicted();
      const bool any_work = [&] {
        for (int d = 0; d < devices_; ++d) {
          if (silent_[d]) continue;
          if (device_has_work(d)) return true;
        }
        return false;
      }();
      if (!any_work && force_sync_rounds_ == 0 && config_.fixed_rounds == 0) {
        if (!losses_pending) {
          if (bsp_may_terminate(barrier)) break;
          continue;  // a final-audit repair revived work; rerun the round
        }
        // Survivors are done but a lost device has not crossed the
        // eviction threshold yet: idle until the detector fires (the
        // run is not over — re-homing may re-activate work).
        barrier = barrier + config_.health.heartbeat_interval;
        barrier = bsp_fault_barrier(barrier);
        continue;
      }
      if (force_sync_rounds_ > 0) --force_sync_rounds_;
      ++stats_.global_rounds;
      flight().record(obs::FlightKind::kRound, -1, stats_.global_rounds, 0,
                      "bsp", barrier.seconds());

      // Phase 1: compute + reduce extraction (parallel over devices).
      std::vector<sim::SimTime> ready(devices_, barrier);
      std::vector<Msg<RV>> rmsgs(
          static_cast<std::size_t>(devices_) * devices_);
      std::vector<std::uint8_t> computed(devices_, 0);
      pool.parallel_for(0, devices_, [&](std::size_t lo, std::size_t hi,
                                         std::size_t) {
        for (std::size_t d = lo; d < hi; ++d) {
          if (silent_[d]) continue;
          if (device_has_work(static_cast<int>(d))) {
            ready[d] += compute_one_round(static_cast<int>(d), ready[d]);
            computed[d] = 1;
          }
          extract_reduce_all(static_cast<int>(d), ready[d], rmsgs);
        }
      });
      if (config_.collect_trace) {
        RoundTrace tr;
        tr.round = stats_.global_rounds;
        for (int d = 0; d < devices_; ++d) {
          if (computed[d] == 0) continue;
          tr.active_vertices += devs_[d].ctx->applications();
          tr.edges += devs_[d].ctx->total_edges();
        }
        stats_.trace.push_back(tr);
      }

      // Phase 2: reduce application (parallel over receivers).
      std::vector<sim::SimTime> after_recv = ready;
      pool.parallel_for(0, devices_, [&](std::size_t lo, std::size_t hi,
                                         std::size_t) {
        for (std::size_t o = lo; o < hi; ++o) {
          after_recv[o] =
              apply_reduce_all(static_cast<int>(o), ready[o], rmsgs);
        }
      });

      // Phase 3: broadcast extraction (parallel over senders).
      std::vector<Msg<BV>> bmsgs(
          static_cast<std::size_t>(devices_) * devices_);
      std::vector<sim::SimTime> after_bext = after_recv;
      pool.parallel_for(0, devices_, [&](std::size_t lo, std::size_t hi,
                                         std::size_t) {
        for (std::size_t d = lo; d < hi; ++d) {
          if (silent_[d]) continue;
          after_bext[d] =
              extract_bcast_all(static_cast<int>(d), after_recv[d], bmsgs);
        }
      });

      // Phase 4: broadcast application (parallel over receivers).
      std::vector<sim::SimTime> done = after_bext;
      pool.parallel_for(0, devices_, [&](std::size_t lo, std::size_t hi,
                                         std::size_t) {
        for (std::size_t o = lo; o < hi; ++o) {
          done[o] =
              apply_bcast_all(static_cast<int>(o), after_bext[o], bmsgs);
          devs_[o].dirty_b.clear();  // broadcasts consumed
        }
      });

      // Network byte accounting (sequential; cheap).
      for (auto& m : rmsgs) {
        if (m.payload.from >= 0) {
          account_network(m.payload.from, m.payload.to, m.payload.bytes);
        }
      }
      for (auto& m : bmsgs) {
        if (m.payload.from >= 0) {
          account_network(m.payload.from, m.payload.to, m.payload.bytes);
        }
      }

      if (config_.collect_trace && !stats_.trace.empty()) {
        std::uint64_t volume = 0;
        for (const auto& c : comm_per_dev_) {
          volume += c.device_to_host_bytes + c.host_to_device_bytes;
        }
        stats_.trace.back().volume_bytes = volume - traced_volume_;
        traced_volume_ = volume;
      }

      // Barrier: stragglers stall everyone (Lux's failure mode at scale).
      int slowest = 0;  // barrier-release cause (ties: lowest device)
      sim::SimTime next_barrier = barrier;
      for (int d = 0; d < devices_; ++d) {
        if (done[d] > next_barrier) slowest = d;
        next_barrier = sim::max(next_barrier, done[d]);
      }
      // The barrier release is caused by the slowest device's last span;
      // linking it into every wait span lets the critical-path walk
      // follow the straggler's chain instead of blaming the waiters.
      obs::SpanRef release;
      if (tracer_ != nullptr) release = tracer_->last_ref(slowest);
      if (config_.charge_runtime_overhead) {
        // Centralized runtime task mapping serializes across devices.
        const sim::SimTime overhead =
            params_.runtime_task_overhead * static_cast<double>(devices_);
        if (tracer_ != nullptr) {
          const obs::SpanRef rt = rt_scope().span(
              obs::SpanKind::kOther, "runtime.barrier", next_barrier,
              next_barrier + overhead, 0, stats_.global_rounds);
          tracer_->link(release, rt);
          release = rt;
        }
        next_barrier += overhead;
      }
      for (int d = 0; d < devices_; ++d) {
        stats_.wait_time[d] += next_barrier - done[d];
        if (next_barrier > done[d]) {
          const obs::SpanRef waiting =
              dev_scope(d).span(obs::SpanKind::kWait, "wait.barrier",
                                done[d], next_barrier, 0,
                                stats_.global_rounds);
          if (tracer_ != nullptr) tracer_->link(release, waiting);
        }
      }
      barrier = next_barrier;

      // Fault handling at the barrier (a consistent cut): detect and
      // recover crashes that occurred this round, then checkpoint.
      barrier = bsp_fault_barrier(barrier);

      // Convergence: no frontier, no progress, and no sync changes —
      // but never while a planned loss is still awaiting eviction.
      if (config_.fixed_rounds == 0 && force_sync_rounds_ == 0 &&
          !(monitor_.active() && !monitor_.all_losses_evicted())) {
        bool active = false;
        for (int d = 0; d < devices_; ++d) {
          if (silent_[d]) continue;
          if (device_has_work(d)) active = true;
        }
        if (!active && bsp_may_terminate(barrier)) break;
      }
    }
    total_time_ = barrier;
  }

  // ---- BSP fault handling ----------------------------------------------
  /// Whether the program's state can be snapshot/restored through the
  /// archive interface; non-checkpointable programs fall back to
  /// degraded recovery on crash.
  static constexpr bool kCheckpointable =
      fault::CheckpointableState<typename Program::DeviceState>;
  /// Whether per-vertex copies can migrate between layouts (master
  /// re-homing); without it eviction falls back to a cold restart of
  /// the whole computation on the shrunken layout.
  static constexpr bool kRehomable =
      fault::RehomableState<typename Program::DeviceState>;

  [[nodiscard]] std::vector<char> snapshot_device(int d) {
    partition::ByteWriter w;
    Dev& dev = devs_[d];
    if constexpr (kCheckpointable) dev.state.archive(w);
    fault::archive_bitset(w, dev.dirty_r);
    fault::archive_bitset(w, dev.dirty_b);
    w.vec(dev.frontier);
    fault::archive_bitset(w, dev.in_frontier);
    w.pod(static_cast<std::uint8_t>(dev.progress ? 1 : 0));
    w.pod(dev.local_round);
    return w.take();
  }

  void restore_device(int d, const std::vector<char>& bytes) {
    partition::ByteReader r(bytes, "checkpoint restore: device " +
                                       std::to_string(d));
    Dev& dev = devs_[d];
    if constexpr (kCheckpointable) dev.state.archive(r);
    fault::restore_bitset(r, dev.dirty_r);
    fault::restore_bitset(r, dev.dirty_b);
    dev.frontier = r.template vec<VertexId>();
    fault::restore_bitset(r, dev.in_frontier);
    dev.progress = r.template pod<std::uint8_t>() != 0;
    dev.local_round = r.template pod<std::uint32_t>();
    r.expect_end();
  }

  /// Runs crash detection/recovery and periodic checkpointing at the
  /// barrier; returns the barrier time including fault-handling cost.
  sim::SimTime bsp_fault_barrier(sim::SimTime barrier) {
    if (injector_.active()) {
      std::vector<int> crashed;
      while (next_crash_ < injector_.crashes().size() &&
             injector_.crashes()[next_crash_].at <= barrier) {
        crashed.push_back(injector_.crashes()[next_crash_].device);
        ++next_crash_;
      }
      if (!crashed.empty()) barrier = bsp_recover(barrier, crashed);
    }
    if (monitor_.active()) {
      for (int cd : monitor_.advance(barrier, fault_global_)) {
        if (!dead_[cd]) barrier = barrier + evict_device(cd, barrier);
      }
    }
    // Gray-failure mitigation at the same consistent cut: migrate the
    // hottest shards off sustained-degraded devices, or gracefully
    // evict the hopeless (mode permitting).
    if (gray_.active()) {
      for (const auto& a : gray_.evaluate(barrier, dead_, fault_global_)) {
        if (dead_[a.device]) continue;
        barrier = barrier + mitigate_device(a, barrier);
      }
    }
    // SDC boundary (a consistent cut): land every due label flip, then
    // audit when the policy is due. The audit precedes the checkpoint
    // below so a snapshot is only ever taken from certified-clean state.
    bool sdc_clean = true;
    if (injector_.has_sdc()) {
      apply_label_flips(barrier);
      const integrity::AuditPolicy& pol = config_.audit;
      if (pol.enabled()) {
        const std::uint64_t b = audit_boundary_++;
        if (pol.due(b)) {
          const std::uint64_t before = fault_global_.sdc_detected;
          barrier = run_audit(barrier, b, /*final=*/false, nullptr);
          sdc_clean = fault_global_.sdc_detected == before;
        }
        // Known injected-but-unaudited corruption suppresses the
        // snapshot exactly like an undetected loss does.
        if (sdc_lag_.pending() > 0) sdc_clean = false;
      }
    }
    if constexpr (kCheckpointable) {
      // Checkpoints are suppressed while a loss is silent-but-undetected
      // so a later rollback always lands on a pre-loss cut.
      if (config_.checkpoint.interval_rounds > 0 &&
          stats_.global_rounds %
                  static_cast<std::uint32_t>(
                      config_.checkpoint.interval_rounds) ==
              0 &&
          !undetected_loss(barrier) && sdc_clean) {
        barrier = take_checkpoint(barrier);
      }
    }
    return barrier;
  }

  /// A silence that will end in eviction has begun (<= t) but its
  /// device has not been evicted yet: a permanent loss, or a partition
  /// destined to outlast detection. Checkpoints are suppressed in this
  /// state so a later rollback always lands on a pre-silence cut.
  [[nodiscard]] bool undetected_loss(sim::SimTime t) const {
    if (!monitor_.active()) return false;
    for (int d = 0; d < devices_; ++d) {
      if (dead_[d]) continue;
      if (monitor_.fence_at(d) < sim::SimTime::max() &&
          monitor_.fence_origin(d) <= t) {
        return true;
      }
    }
    return false;
  }

  sim::SimTime take_checkpoint(sim::SimTime barrier) {
    fault::Checkpoint ck;
    ck.round = current_round();
    ck.devices.resize(devices_);
    sim::SimTime worst;
    for (int d = 0; d < devices_; ++d) {
      ck.devices[d].bytes = snapshot_device(d);
      const auto n = ck.devices[d].bytes.size();
      const sim::SimTime t =
          config_.checkpoint.write_latency + net_.device_to_host(n) +
          sim::SimTime{static_cast<double>(n) / config_.checkpoint.disk_bw};
      worst = sim::max(worst, t);  // devices snapshot in parallel
    }
    // kCheckpointBitFlip: corrupt the serialized blob *after* the
    // write-side checksum was computed, so the corruption rides to disk
    // undetected unless the policy's read-back verification is on.
    if (injector_.has_sdc()) {
      const auto& flips = injector_.checkpoint_flips();
      for (std::size_t i = 0; i < flips.size(); ++i) {
        if (ckpt_flip_done_[i] != 0 || flips[i].at > barrier) continue;
        ckpt_flip_done_[i] = 1;
        const int fd = flips[i].device;
        if (fd < 0 || fd >= devices_ || dead_[fd]) continue;
        auto& bytes = ck.devices[fd].bytes;
        if (bytes.empty()) continue;
        const std::uint64_t h = util::fnv1a64_value(
            static_cast<std::uint64_t>(ck.round) |
            (static_cast<std::uint64_t>(fd) << 32));
        const std::uint64_t pos = h % (bytes.size() * 8);
        bytes[pos / 8] = static_cast<char>(
            static_cast<unsigned char>(bytes[pos / 8]) ^
            static_cast<unsigned char>(1u << (pos % 8)));
        fault_global_.sdc_injected += 1;
        fault_global_.sdc_for(fd).checkpoint_flips += 1;
      }
    }
    fault_global_.checkpoints_taken += 1;
    fault_global_.checkpoint_bytes += ck.total_bytes();
    fault_global_.checkpoint_time += worst;
    rt_scope().span(obs::SpanKind::kCheckpoint, "checkpoint", barrier,
                    barrier + worst, ck.total_bytes(), ck.round);
    flight().record(obs::FlightKind::kCheckpoint, -1, ck.round,
                    static_cast<std::int64_t>(ck.total_bytes()), "checkpoint",
                    barrier.seconds());
    if (m_checkpoints_ != nullptr) m_checkpoints_->inc();
    if (ckpt_store_.persistent()) ckpt_store_.save(ck);
    // Read-back verification: re-snapshot the (still clean) live state
    // and compare it against what was just written, so a corrupt blob
    // is caught while the clean source exists — not at restore time.
    if (injector_.has_sdc() && config_.audit.enabled() &&
        config_.audit.check_checkpoints) {
      bool rewrite = false;
      for (int d = 0; d < devices_; ++d) {
        if (dead_[d]) continue;
        std::vector<char> fresh = snapshot_device(d);
        worst = sim::max(worst,
                         sim::SimTime{static_cast<double>(fresh.size()) /
                                      config_.checkpoint.disk_bw});
        if (fresh == ck.devices[d].bytes) continue;
        fault_global_.sdc_detected += 1;
        fault_global_.sdc_for(d).checkpoint_violations += 1;
        if (m_sdc_detected_ != nullptr) m_sdc_detected_->inc();
        if (config_.audit.repairs()) {
          // Repair: discard the corrupt blob and rewrite it from the
          // clean live state (a copy-from-clean-source repair).
          ck.devices[d].bytes = std::move(fresh);
          fault_global_.sdc_repaired += 1;
          fault_global_.sdc_for(d).repairs_mirror += 1;
          if (m_sdc_repaired_ != nullptr) m_sdc_repaired_->inc();
          rewrite = true;
        }
      }
      if (rewrite && ckpt_store_.persistent()) ckpt_store_.save(ck);
    }
    last_ckpt_ = std::move(ck);
    return barrier + worst;
  }

  // ---- silent-data-corruption auditing (DESIGN.md §13) -------------------
  /// Flips bit `bit % width` of `v` through its byte representation
  /// (works for integral and floating label types alike).
  template <typename T>
  static void flip_bit(T& v, int bit) {
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &v, sizeof(T));
    const unsigned b = static_cast<unsigned>(bit) % (sizeof(T) * 8);
    bytes[b / 8] ^= static_cast<unsigned char>(1u << (b % 8));
    std::memcpy(&v, bytes, sizeof(T));
  }

  /// kKernelSdc: a window where the device's label updates are silently
  /// perturbed. Post-kernel, flip one bit of one *mirror* entry of the
  /// broadcast field (the replicated surface the digests cross-check);
  /// victim and bit derive from the roll hash so reruns replay the
  /// perturbation bit-for-bit. Touches only device-local state and
  /// fault_per_dev_[d], so the parallel BSP compute phase never races.
  void kernel_sdc_perturb(int d, sim::SimTime at) {
    const std::uint64_t h =
        injector_.kernel_sdc_roll(d, stats_.rounds[d] + 1, at);
    if (h == 0) return;
    const auto& lg = dg().part(d);
    if (lg.num_local <= lg.num_masters) return;  // no mirrors resident
    auto vals = program_.bcast_mirror_dst(devs_[d].state);
    const VertexId victim =
        lg.num_masters +
        static_cast<VertexId>((h >> 8) % (lg.num_local - lg.num_masters));
    flip_bit(vals[victim], static_cast<int>(h % (sizeof(BV) * 8)));
    fault_per_dev_[d].sdc_injected += 1;
    fault_per_dev_[d].sdc_for(d).kernel_events += 1;
  }

  /// Applies every pending kLabelBitFlip due at or before `upto`,
  /// optionally restricted to one device. BSP applies flips at each
  /// barrier (a consistent cut); BASP applies them on the target
  /// device's own timeline and catches stragglers at the final audit.
  /// The flip lands in the broadcast field — the replicated surface the
  /// digests cross-check. Single-threaded contexts only (touches the
  /// shared lag tracker).
  void apply_label_flips(sim::SimTime upto, int only_device = -1) {
    const auto& flips = injector_.label_flips();
    for (std::size_t i = 0; i < flips.size(); ++i) {
      if (label_flip_done_[i] != 0) continue;
      const fault::ResolvedLabelFlip& f = flips[i];
      if (only_device >= 0 && f.device != only_device) continue;
      if (f.at > upto) continue;
      label_flip_done_[i] = 1;
      if (f.device < 0 || f.device >= devices_ || dead_[f.device] ||
          silent_[f.device] != 0) {
        continue;  // nothing live to corrupt
      }
      const auto& lg = dg().part(f.device);
      const auto it = lg.g2l.find(static_cast<VertexId>(f.vertex));
      if (it == lg.g2l.end()) continue;  // not resident on this layout
      auto vals = program_.bcast_mirror_dst(devs_[f.device].state);
      flip_bit(vals[it->second], f.bit);
      fault_global_.sdc_injected += 1;
      fault_global_.sdc_for(f.device).label_flips += 1;
      flight().record(obs::FlightKind::kFault, f.device,
                      static_cast<std::int64_t>(f.vertex), f.bit,
                      "label_flip", f.at.seconds());
      if (config_.audit.enabled()) {
        sdc_lag_.note_injection(f.device, audit_boundary_);
      }
    }
  }

  /// Audit-population skip rule: dead, BSP-silent, or fence-doomed
  /// devices are out (their proxies are stale by design — a pending
  /// eviction, not corruption — and would read as false digest splits).
  [[nodiscard]] bool audit_skip(int d) const {
    if (dead_[d] != 0 || silent_[d] != 0) return true;
    return monitor_.active() && monitor_.fence_at(d) < sim::SimTime::max();
  }

  /// One audit pass at simulated time `t` over every live device,
  /// fusing the detectors of DESIGN.md §13: (a) per-shard replica
  /// digests over the broadcast exchange lists, (b) the programs' ABFT
  /// invariant hooks, and — at the *final* boundary — (c) the whole-run
  /// certificate. Under kRepair the pass also heals: a split shard is
  /// quarantined and overwritten from the canonical master copy;
  /// violations no copy can fix rewind the cluster (rollback or cold
  /// restart). Returns the time including the modeled audit cost; sets
  /// `*revived` when a repair re-activated work. Single-threaded
  /// contexts only (BSP barrier / BASP quiescent events).
  sim::SimTime run_audit(sim::SimTime t, std::uint64_t b, bool final_pass,
                         bool* revived) {
    const auto audit_scope = prof().scope("audit.scan");
    const integrity::AuditPolicy& pol = config_.audit;
    fault_global_.sdc_audits += 1;
    if (m_sdc_audits_ != nullptr) m_sdc_audits_->inc();
    const std::uint64_t detected_before = fault_global_.sdc_detected;
    bool rollback_needed = false;
    std::vector<int> blamed;

    auto note_lag = [&](int dev) {
      const std::int64_t lag = sdc_lag_.note_detection(dev, b);
      if (lag >= 0) {
        fault::SdcStats& s = fault_global_.sdc_for(dev);
        s.max_detect_lag_rounds = std::max(
            s.max_detect_lag_rounds, static_cast<std::uint64_t>(lag));
      }
    };

    // (a) Replica digests: FNV over the label values each broadcast
    // exchange list shares, master copy vs mirror copy. Provably equal
    // at a clean BSP barrier / BASP quiescent point (every master
    // change broadcasts before the cut closes), so a split localizes
    // corruption to the (mirror device, shard) pair.
    if (pol.check_digests) {
      for (int m = 0; m < devices_; ++m) {
        if (audit_skip(m)) continue;
        for (int o = 0; o < devices_; ++o) {
          if (o == m || audit_skip(o)) continue;
          const auto& list = sync().list(m, o, bcast_filter_);
          if (list.size() == 0) continue;
          std::span<const BV> mirror_vals =
              program_.bcast_mirror_dst(devs_[m].state);
          std::span<const BV> master_vals =
              program_.bcast_master_src(devs_[o].state);
          const std::uint64_t hm = integrity::shard_digest<BV>(
              mirror_vals, list.mirror_local);
          const std::uint64_t ho = integrity::shard_digest<BV>(
              master_vals, list.master_local);
          if (hm == ho) continue;
          const integrity::Divergence div = integrity::scan_divergence<BV>(
              mirror_vals, list.mirror_local, master_vals,
              list.master_local);
          fault_global_.sdc_detected += 1;
          fault_global_.sdc_for(m).digest_violations += 1;
          note_lag(m);
          note_lag(o);
          rt_scope().span(obs::SpanKind::kOther, "sdc.digest_split", t, t,
                          div.count, static_cast<std::uint64_t>(m));
          flight().record(obs::FlightKind::kAudit, m, o,
                          static_cast<std::int64_t>(div.count),
                          "digest_split", t.seconds());
          if (!pol.repairs()) continue;
          // Quarantine the shard and heal it from the canonical master
          // copy. A corrupted *master* becomes consistent-wrong after
          // this copy; the final certificate still catches that, and
          // the repair escalates to a rewind there.
          auto mut = program_.bcast_mirror_dst(devs_[m].state);
          const auto& mlg = dg().part(m);
          for (std::size_t i = 0; i < list.size(); ++i) {
            const VertexId ml = list.mirror_local[i];
            const VertexId sl = list.master_local[i];
            if (mut[ml] == master_vals[sl]) continue;
            mut[ml] = master_vals[sl];
            program_.on_update(mlg, devs_[m].state, ml,
                               UpdateKind::kBroadcast, *devs_[m].ctx);
          }
          merge_activations(devs_[m]);
          fault_global_.sdc_for(m).quarantined_shards += 1;
          fault_global_.sdc_for(m).repairs_mirror += 1;
          fault_global_.sdc_repaired += 1;
          if (m_sdc_repaired_ != nullptr) m_sdc_repaired_->inc();
          blamed.push_back(m);
          if (revived != nullptr) *revived = true;
        }
      }
    }

    // (b) ABFT invariants: the programs' self-audit hooks, sound
    // mid-run. Skipped after a layout rebuild (re-homing reconciles
    // monotone ledgers, which breaks the exact invariants).
    if (pol.check_invariants && invariants_valid_) {
      if constexpr (integrity::SelfAuditing<Program>) {
        for (int d = 0; d < devices_; ++d) {
          if (audit_skip(d)) continue;
          const std::string msg =
              program_.audit_device(dg().part(d), devs_[d].state);
          if (msg.empty()) continue;
          fault_global_.sdc_detected += 1;
          fault_global_.sdc_for(d).invariant_violations += 1;
          note_lag(d);
          blamed.push_back(d);
          // No vertex-granular blame: healing means rewinding.
          rollback_needed = true;
          rt_scope().span(obs::SpanKind::kOther, "sdc.invariant", t, t, 0,
                          static_cast<std::uint64_t>(d));
          flight().record(obs::FlightKind::kAudit, d, 0, 0, "invariant",
                          t.seconds());
        }
      }
      // (c) The whole-run certificate, at the final boundary only: a
      // complete re-verification (relaxation sweep / union-find /
      // quiescence ledger) that even fully propagated consistent-wrong
      // corruption cannot satisfy. No device-granular blame here.
      if (final_pass) {
        if constexpr (integrity::GloballyAuditing<Program>) {
          std::vector<const partition::LocalGraph*> lgs;
          std::vector<const typename Program::DeviceState*> sts;
          for (int d = 0; d < devices_; ++d) {
            if (audit_skip(d)) continue;
            lgs.push_back(&dg().part(d));
            sts.push_back(&devs_[d].state);
          }
          const std::string msg = program_.audit_global(lgs, sts, pol);
          if (!msg.empty()) {
            fault_global_.sdc_detected += 1;
            rollback_needed = true;
            rt_scope().span(obs::SpanKind::kOther, "sdc.certificate", t, t,
                            0, b);
            flight().record(obs::FlightKind::kCertificate, -1,
                            static_cast<std::int64_t>(b), 0, "cert_fail",
                            t.seconds());
            if (!config_.flight_dump.empty() && !pol.repairs()) {
              // Terminal certificate failure (no repair path will run):
              // leave the black box behind for post-mortem triage.
              flight().dump(config_.flight_dump, "final_audit_failure",
                            /*include_wall=*/true);
            }
          }
        }
      }
    }

    std::sort(blamed.begin(), blamed.end());
    blamed.erase(std::unique(blamed.begin(), blamed.end()), blamed.end());

    if (rollback_needed && pol.repairs()) {
      t = sdc_rewind(t, blamed);
      if (revived != nullptr) *revived = true;
    }

    // Escalation: a device whose state needed healing `escalate_after`
    // times is a repeat offender — its silicon is flipping bits. Retire
    // it through the graceful-eviction path while a survivor exists.
    if (pol.repairs()) {
      for (const int d : blamed) {
        if (dead_[d] != 0) continue;
        sdc_repair_count_[d] += 1;
        if (sdc_repair_count_[d] >= pol.escalate_after &&
            live_devices() >= 2) {
          sdc_repair_count_[d] = std::numeric_limits<int>::min() / 2;
          fault_global_.sdc_escalations += 1;
          fault_global_.sdc_for(d).escalations += 1;
          t = t + evict_device(d, t, /*graceful=*/true);
          if (revived != nullptr) *revived = true;
        }
      }
    }

    // Modeled cost: each device hashes its shared broadcast entries
    // (the surface the BASP idle poll already scans) plus two launch
    // overheads; devices audit in parallel, so the boundary pays the
    // worst one.
    sim::SimTime worst;
    for (int d = 0; d < devices_; ++d) {
      if (audit_skip(d)) continue;
      const sim::SimTime c =
          params_.kernel_launch * 2.0 +
          sim::SimTime{static_cast<double>(
                           sync().shared_entries(d, bcast_filter_)) /
                       params_.scan_throughput};
      worst = sim::max(worst, c);
    }
    const std::uint64_t found = fault_global_.sdc_detected - detected_before;
    if (m_sdc_detected_ != nullptr && found > 0) m_sdc_detected_->inc(found);
    rt_scope().span(obs::SpanKind::kOther,
                    final_pass ? "sdc.audit.final" : "sdc.audit", t,
                    t + worst, found, b);
    return t + worst;
  }

  /// Heals corruption no replica copy can fix: rewind every live device
  /// to the last clean checkpoint (flip events already consumed are not
  /// re-fired, so the replay converges to the fault-free fixed point),
  /// or — when no usable checkpoint exists, or the previous rewind
  /// landed on this same cut and failed to clear the violation — cold
  /// restart the computation on the current layout.
  sim::SimTime sdc_rewind(sim::SimTime t, const std::vector<int>& blamed) {
    if constexpr (kCheckpointable) {
      if (last_ckpt_.valid() &&
          last_ckpt_.round != last_sdc_rollback_round_) {
        last_sdc_rollback_round_ = last_ckpt_.round;
        sim::SimTime worst;
        for (int d = 0; d < devices_; ++d) {
          if (dead_[d] != 0) continue;
          restore_device(d, last_ckpt_.devices[d].bytes);
          const auto n = last_ckpt_.devices[d].bytes.size();
          worst = sim::max(worst,
                           config_.checkpoint.restore_latency +
                               sim::SimTime{static_cast<double>(n) /
                                            config_.checkpoint.disk_bw} +
                               net_.host_to_device(n));
        }
        fault_global_.rollbacks += 1;
        if (current_round() > last_ckpt_.round) {
          fault_global_.reexecuted_rounds +=
              current_round() - last_ckpt_.round;
        }
        fault_global_.recovery_time += worst;
        fault_global_.sdc_repaired += 1;
        for (const int d : blamed) {
          fault_global_.sdc_for(d).repairs_rollback += 1;
        }
        if (m_rollbacks_ != nullptr) m_rollbacks_->inc();
        if (m_sdc_repaired_ != nullptr) m_sdc_repaired_->inc();
        rt_scope().span(obs::SpanKind::kCheckpoint, "sdc.rollback", t,
                        t + worst, last_ckpt_.total_bytes(),
                        last_ckpt_.round);
        flight().record(obs::FlightKind::kRollback, -1, last_ckpt_.round,
                        static_cast<std::int64_t>(last_ckpt_.total_bytes()),
                        "sdc_rollback", t.seconds());
        force_sync_rounds_ = std::max(force_sync_rounds_, 2);
        return t + worst;
      }
    }
    // Cold restart: re-init every live device on the current layout;
    // monotone programs re-converge to the fault-free fixed point.
    sim::SimTime worst;
    for (int d = 0; d < devices_; ++d) {
      if (dead_[d] != 0) continue;
      Dev& dev = devs_[d];
      const auto& lg = dg().part(d);
      dev.state = typename Program::DeviceState{};
      dev.dirty_r.clear();
      dev.dirty_b.clear();
      dev.frontier.clear();
      dev.in_frontier.clear();
      program_.init(lg, dev.state, *dev.ctx);
      merge_activations(dev);
      dev.progress = !dev.frontier.empty();
      const std::uint64_t label_bytes =
          static_cast<std::uint64_t>(lg.num_local) *
          (sizeof(RV) + sizeof(BV));
      worst = sim::max(worst, config_.checkpoint.restore_latency +
                                  net_.host_to_device(label_bytes));
    }
    // The pre-restart checkpoint belongs to the abandoned execution.
    last_ckpt_ = fault::Checkpoint{};
    fault_global_.recovery_time += worst;
    fault_global_.sdc_repaired += 1;
    for (const int d : blamed) {
      fault_global_.sdc_for(d).repairs_restart += 1;
    }
    if (m_sdc_repaired_ != nullptr) m_sdc_repaired_->inc();
    rt_scope().span(obs::SpanKind::kCheckpoint, "sdc.restart", t, t + worst,
                    0, current_round());
    flight().record(obs::FlightKind::kRestart, -1, current_round(), 0,
                    "sdc_restart", t.seconds());
    force_sync_rounds_ = std::max(force_sync_rounds_, 2);
    return t + worst;
  }

  /// Gate on BSP termination: the run may only end after a final audit
  /// (certificate included) comes back clean. A repair revives work, in
  /// which case the caller keeps looping and re-converges before trying
  /// again. Returns true when it is safe to stop.
  bool bsp_may_terminate(sim::SimTime& barrier) {
    if (!injector_.has_sdc() || !config_.audit.enabled()) return true;
    if (final_audits_ >= kMaxFinalAudits) return true;  // safety valve
    final_audits_ += 1;
    // Stragglers scheduled past the last barrier still get exercised
    // (and certified) instead of silently expiring with the run.
    apply_label_flips(sim::SimTime::max());
    bool revived = false;
    barrier = run_audit(barrier, audit_boundary_++, /*final_pass=*/true,
                        &revived);
    if (revived || force_sync_rounds_ > 0) return false;
    for (int d = 0; d < devices_; ++d) {
      if (silent_[d] == 0 && dead_[d] == 0 && device_has_work(d)) {
        return false;
      }
    }
    return true;
  }

  /// Recovers the devices in `crashed`: rollback-restores every device
  /// from the last checkpoint when one exists (a globally consistent
  /// cut, so the whole cluster rewinds together), else cold-restarts
  /// the crashed devices with peer re-feed (graceful degradation).
  sim::SimTime bsp_recover(sim::SimTime barrier,
                           const std::vector<int>& crashed) {
    for (int cd : crashed) {
      fault_per_dev_[cd].device_crashes += 1;
      flight().record(obs::FlightKind::kCrash, cd, current_round(), 0,
                      "crash", barrier.seconds());
    }
    if constexpr (kCheckpointable) {
      if (last_ckpt_.valid()) {
        sim::SimTime worst;
        for (int d = 0; d < devices_; ++d) {
          restore_device(d, last_ckpt_.devices[d].bytes);
          const auto n = last_ckpt_.devices[d].bytes.size();
          const sim::SimTime t =
              config_.checkpoint.restore_latency +
              sim::SimTime{static_cast<double>(n) /
                           config_.checkpoint.disk_bw} +
              net_.host_to_device(n);
          worst = sim::max(worst, t);
        }
        fault_global_.rollbacks += 1;
        fault_global_.reexecuted_rounds +=
            stats_.global_rounds - last_ckpt_.round;
        fault_global_.recovery_time += worst;
        rt_scope().span(obs::SpanKind::kCheckpoint, "rollback", barrier,
                        barrier + worst, last_ckpt_.total_bytes(),
                        last_ckpt_.round);
        flight().record(obs::FlightKind::kRollback, -1, last_ckpt_.round,
                        static_cast<std::int64_t>(last_ckpt_.total_bytes()),
                        "rollback", barrier.seconds());
        if (m_rollbacks_ != nullptr) m_rollbacks_->inc();
        force_sync_rounds_ = std::max(force_sync_rounds_, 1);
        return barrier + worst;
      }
    }
    sim::SimTime worst;
    for (int cd : crashed) worst = sim::max(worst, degraded_recover(cd));
    fault_global_.recovery_time += worst;
    rt_scope().span(obs::SpanKind::kCheckpoint, "recover.degraded", barrier,
                    barrier + worst, crashed.size(),
                    crashed.empty()
                        ? 0
                        : static_cast<std::uint64_t>(crashed.front()));
    flight().record(obs::FlightKind::kRestart, -1,
                    static_cast<std::int64_t>(crashed.size()), 0,
                    "degraded_recover", barrier.seconds());
    // The re-feed dirty marks alone do not make device_has_work() true;
    // keep the loop alive long enough for a reduce + broadcast sweep.
    force_sync_rounds_ = std::max(force_sync_rounds_, 2);
    return barrier + worst;
  }

  /// Cold-restarts device `cd` (program re-init) and marks every shared
  /// proxy on its peers dirty so the next sync rounds re-feed the
  /// recovered device: peer mirrors of cd's masters re-reduce, and peer
  /// masters with mirrors on cd re-broadcast. Exact for monotone /
  /// idempotent programs (min-label bfs/sssp/cc); returns the modeled
  /// re-init cost.
  sim::SimTime degraded_recover(int cd) {
    Dev& dev = devs_[cd];
    const auto& lg = dg().part(cd);
    dev.state = typename Program::DeviceState{};
    dev.dirty_r.clear();
    dev.dirty_b.clear();
    dev.frontier.clear();
    dev.in_frontier.clear();
    program_.init(lg, dev.state, *dev.ctx);
    merge_activations(dev);
    dev.progress = !dev.frontier.empty();
    for (int o = 0; o < devices_; ++o) {
      if (o == cd) continue;
      bool marked = false;
      for (VertexId v : sync().list(o, cd, reduce_filter_).mirror_local) {
        devs_[o].dirty_r.set(v);
        marked = true;
      }
      for (VertexId v : sync().list(cd, o, bcast_filter_).master_local) {
        devs_[o].dirty_b.set(v);
        marked = true;
      }
      if (marked) devs_[o].flush_pending = true;
    }
    fault_global_.degraded_recoveries += 1;
    const std::uint64_t label_bytes =
        static_cast<std::uint64_t>(lg.num_local) * (sizeof(RV) + sizeof(BV));
    return config_.checkpoint.restore_latency +
           net_.host_to_device(label_bytes);
  }

  // ---- permanent device loss: eviction + master re-homing ---------------
  /// Evicts permanently lost device `cd` at time `now`: optionally rolls
  /// every survivor back to the last pre-loss checkpoint (which also
  /// resurrects the lost device's state as a migration source), re-reads
  /// the lost subgraph from the partition store, re-elects a master for
  /// every vertex the lost device owned, rebuilds the layout / exchange
  /// lists / memoized translations, migrates per-vertex program state,
  /// and re-feeds all proxies. Returns the modeled recovery cost; the
  /// executor continues on N-1 devices. Shared by the BSP and BASP paths.
  ///
  /// `graceful` marks a gray-failure eviction: the device is *alive*
  /// (just hopelessly slow), so no rollback is needed — its current
  /// per-vertex state is harvested directly and detection latency is
  /// zero. The run loses its capacity, never its data.
  sim::SimTime evict_device(int cd, sim::SimTime now, bool graceful = false) {
    // Silence origin: the loss instant, or — for a partition that
    // outlasted detection — the start of the covering window (the
    // device never "died"; lost_at is +inf then).
    const sim::SimTime lost_at =
        graceful ? now
        : monitor_.fence_origin(cd) < sim::SimTime::max()
            ? monitor_.fence_origin(cd)
            : injector_.lost_at(cd);
    const std::uint32_t cur_round = current_round();
    sim::SimTime cost;

    // 1. Rollback to the last consistent cut when the program can use
    // it (checkpoints are suppressed while a loss is undetected, so the
    // cut predates the loss and the lost device's snapshot is genuine).
    // A graceful eviction skips this: the evictee's live state is
    // already consistent at this cut.
    bool have_lost_state = graceful && kRehomable;
    if constexpr (kCheckpointable && kRehomable) {
      if (!graceful && last_ckpt_.valid()) {
        sim::SimTime worst;
        for (int d = 0; d < devices_; ++d) {
          if (dead_[d]) continue;
          restore_device(d, last_ckpt_.devices[d].bytes);
          const auto n = last_ckpt_.devices[d].bytes.size();
          worst = sim::max(
              worst,
              config_.checkpoint.restore_latency +
                  sim::SimTime{static_cast<double>(n) /
                               config_.checkpoint.disk_bw} +
                  net_.host_to_device(n));
        }
        fault_global_.rollbacks += 1;
        if (cur_round > last_ckpt_.round) {
          fault_global_.reexecuted_rounds += cur_round - last_ckpt_.round;
        }
        cost = cost + worst;
        have_lost_state = true;
      }
    }

    // 2. Harvest every surviving per-vertex copy (old local-id space);
    // the lost device contributes only its rolled-back snapshot.
    std::vector<std::vector<std::vector<char>>> harvest(
        static_cast<std::size_t>(devices_));
    const partition::DistGraph& old_dg = dg();
    if constexpr (kRehomable) {
      for (int d = 0; d < devices_; ++d) {
        if (dead_[d]) continue;
        if (d == cd && !have_lost_state) continue;
        const auto& lg = old_dg.part(d);
        auto& slots = harvest[static_cast<std::size_t>(d)];
        slots.resize(lg.num_local);
        for (VertexId v = 0; v < lg.num_local; ++v) {
          partition::ByteWriter w;
          devs_[d].state.archive_vertex(w, v);
          slots[v] = w.take();
        }
      }
    }

    // 3. The lost subgraph: durable checksummed partition store when
    // configured (modeled disk re-read), else the simulator's in-memory
    // copy (topology is never lost in simulation, only program state).
    partition::LocalGraph lost_part;
    if (!config_.partition_store_dir.empty()) {
      lost_part =
          partition::load_partition_part(config_.partition_store_dir, cd);
      cost = cost + sim::SimTime{static_cast<double>(lost_part.bytes()) /
                                 config_.checkpoint.disk_bw};
    } else {
      lost_part = old_dg.part(cd);
    }

    // 4. Capacity-aware re-homing plan + layout rebuild.
    std::vector<std::uint64_t> free_bytes(
        static_cast<std::size_t>(devices_), 0);
    for (int d = 0; d < devices_; ++d) {
      if (d == cd || dead_[d]) continue;
      const auto& mem = *devs_[d].memory;
      free_bytes[static_cast<std::size_t>(d)] =
          mem.capacity() - mem.in_use();
    }
    partition::RehomeResult plan =
        partition::rehome_partition(old_dg, cd, lost_part, free_bytes, dead_);
    auto next_dg =
        std::make_unique<partition::DistGraph>(std::move(plan.dg));
    auto next_sync = std::make_unique<comm::SyncStructure>(*next_dg);
    // Keep the previous owned structures alive until the per-device
    // rebuild (which still reads the old layout) finishes.
    auto prev_dg = std::move(rehomed_dg_);
    auto prev_sync = std::move(rehomed_sync_);
    rehomed_dg_ = std::move(next_dg);
    rehomed_sync_ = std::move(next_sync);
    dgp_ = rehomed_dg_.get();
    syncp_ = rehomed_sync_.get();
    dead_[cd] = 1;
    silent_[cd] = 1;
    if (monitor_.active()) monitor_.mark_evicted(cd);
    gray_.retire(cd);
    // New layout epoch: anything sealed before this instant indexes
    // exchange lists that are about to be rebuilt, and is fence-
    // rejected on receipt.
    ++epoch_;
    // Re-homing reconciles monotone ledgers (e.g. pagerank's consumed
    // mass), which breaks the exact ABFT invariants; digest + checkpoint
    // auditing stay sound on the new layout.
    invariants_valid_ = false;

    // 5. Rebuild every device's runtime on the new local-id space.
    for (int d = 0; d < devices_; ++d) {
      if (dead_[d] && d != cd) continue;  // earlier evictions stay empty
      rebuild_device(d, cd, old_dg, lost_part, harvest, have_lost_state);
    }

    // 6. Account the migration: state bytes cross the interconnect
    // (representative survivor pair), and every survivor re-uploads its
    // rebuilt sync metadata / address translations.
    int s0 = -1;
    int s1 = -1;
    for (int d = 0; d < devices_ && s1 < 0; ++d) {
      if (dead_[d]) continue;
      (s0 < 0 ? s0 : s1) = d;
    }
    if (s0 >= 0 && s1 >= 0) {
      cost = cost + net_.host_to_host(s0, s1, plan.migrated_bytes);
    }
    sim::SimTime meta;
    for (int d = 0; d < devices_; ++d) {
      if (dead_[d]) continue;
      meta = sim::max(meta, net_.host_to_device(sync().metadata_bytes(d)));
    }
    cost = cost + meta;

    fault_global_.evicted_devices += 1;
    if (monitor_.fence_from_partition(cd)) {
      fault_global_.partition_evictions += 1;
    }
    fault_global_.rehomed_masters += plan.rehomed.size();
    fault_global_.migrated_vertices += plan.orphaned.size();
    fault_global_.detection_latency =
        fault_global_.detection_latency + (now - lost_at);
    fault_global_.recovery_time = fault_global_.recovery_time + cost;

    // A stale-layout checkpoint cannot be restored onto the new layout;
    // replace it immediately with a post-recovery snapshot.
    last_ckpt_ = fault::Checkpoint{};
    if constexpr (kCheckpointable) {
      if (config_.checkpoint.interval_rounds > 0) {
        cost = take_checkpoint(now + cost) - now;
      }
    }
    force_sync_rounds_ = std::max(force_sync_rounds_, 2);
    rt_scope().span(obs::SpanKind::kRehome, graceful ? "evict.gray" : "rehome",
                    now, now + cost, plan.rehomed.size(),
                    plan.orphaned.size());
    flight().record(obs::FlightKind::kEvict, cd,
                    static_cast<std::int64_t>(plan.rehomed.size()),
                    graceful ? 1 : 0, graceful ? "gray_evict" : "loss_evict",
                    now.seconds());
    flight().record(obs::FlightKind::kRehome, cd,
                    static_cast<std::int64_t>(plan.rehomed.size()),
                    static_cast<std::int64_t>(plan.orphaned.size()), "rehome",
                    now.seconds());
    return cost;
  }

  // ---- gray-failure mitigation: online shard migration -----------------
  [[nodiscard]] int live_devices() const {
    int n = 0;
    for (int d = 0; d < devices_; ++d) n += dead_[d] ? 0 : 1;
    return n;
  }

  /// Executes one GrayFailureMonitor action at a safe cut: online shard
  /// migration off a degraded-but-live device, or — once the monitor
  /// declares it hopeless under kEvict — a graceful live eviction.
  /// Returns the modeled mitigation cost.
  sim::SimTime mitigate_device(const fault::GrayFailureMonitor::Action& a,
                               sim::SimTime now) {
    flight().record(obs::FlightKind::kGray, a.device, a.hopeless ? 1 : 0,
                    a.memory_bound ? 1 : 0, "gray_verdict", now.seconds());
    if (a.hopeless) {
      if (live_devices() < 2) return sim::SimTime{};  // nowhere to go
      const sim::SimTime cost =
          evict_device(a.device, now, /*graceful=*/true);
      fault_global_.gray_evictions += 1;
      fault_global_.mitigation_time += cost;
      if (m_gray_evictions_ != nullptr) m_gray_evictions_->inc();
      return cost;
    }
    return migrate_device(a, now);
  }

  /// Moves the hottest `migrate_fraction` of `cd`'s masters onto
  /// healthier devices at a safe cut, bit-exactly: every live device's
  /// per-vertex state is harvested, the layout is rebuilt via
  /// partition::rebalance_partition, and promoted/adopted masters take
  /// the degraded device's canonical copies verbatim (the same
  /// archive/adopt path evictions use, with the hot device staying live
  /// as a mirror). Returns the modeled migration cost, or zero when the
  /// program cannot re-home state or no placement exists — the run then
  /// continues unchanged (observe-only in effect).
  sim::SimTime migrate_device(const fault::GrayFailureMonitor::Action& a,
                              sim::SimTime now) {
    if constexpr (!kRehomable) {
      (void)a;
      (void)now;
      return sim::SimTime{};
    } else {
      const int cd = a.device;
      const partition::DistGraph& old_dg = dg();
      std::vector<std::uint64_t> free_bytes(
          static_cast<std::size_t>(devices_), 0);
      for (int d = 0; d < devices_; ++d) {
        if (d == cd || dead_[d]) continue;
        const auto& mem = *devs_[d].memory;
        free_bytes[static_cast<std::size_t>(d)] =
            mem.capacity() - mem.in_use();
      }
      partition::RebalanceResult plan;
      try {
        plan = partition::rebalance_partition(
            old_dg, cd, gray_.policy().migrate_fraction, free_bytes, dead_);
      } catch (const std::exception&) {
        // No live device can absorb the hottest shards (pressure
        // everywhere): spend the budget so the monitor cools down and
        // eventually declares the device hopeless instead of
        // re-planning every evaluation.
        gray_.note_migration(cd);
        return sim::SimTime{};
      }

      // Shed guard: a compute-blamed migration must actually move work.
      // Measured as the drop in the device's *local* out-edges across
      // the rebalance, not the planner's migrated_edges counter: under
      // vertex-cut layouts a migrated master leaves its mirror edges
      // behind, so the counter overstates what the device sheds and the
      // layout churn would be pure cost. A memory-blamed migration is
      // exempt: any byte it sheds shrinks the spill deficit directly.
      const double local_edges = std::max(
          static_cast<double>(old_dg.part(cd).num_out_edges()), 1.0);
      const double kept =
          static_cast<double>(plan.dg.part(cd).num_out_edges());
      const double shed = std::max(local_edges - kept, 0.0) / local_edges;
      if (!a.memory_bound && shed < gray_.policy().min_shed_fraction) {
        gray_.note_migration(cd);  // spend budget; re-planning would churn
        rt_scope().span(obs::SpanKind::kRehome, "migrate.skip", now, now,
                        plan.migrated_edges,
                        static_cast<std::uint64_t>(cd));
        return sim::SimTime{};
      }

      // Harvest every live device's per-vertex state (old local-id
      // space); the degraded device is alive, so its copies are current.
      std::vector<std::vector<std::vector<char>>> harvest(
          static_cast<std::size_t>(devices_));
      for (int d = 0; d < devices_; ++d) {
        if (dead_[d]) continue;
        const auto& lg = old_dg.part(d);
        auto& slots = harvest[static_cast<std::size_t>(d)];
        slots.resize(lg.num_local);
        for (VertexId v = 0; v < lg.num_local; ++v) {
          partition::ByteWriter w;
          devs_[d].state.archive_vertex(w, v);
          slots[v] = w.take();
        }
      }
      const partition::LocalGraph& hot_part = old_dg.part(cd);

      auto next_dg =
          std::make_unique<partition::DistGraph>(std::move(plan.dg));
      auto next_sync = std::make_unique<comm::SyncStructure>(*next_dg);
      auto prev_dg = std::move(rehomed_dg_);
      auto prev_sync = std::move(rehomed_sync_);
      rehomed_dg_ = std::move(next_dg);
      rehomed_sync_ = std::move(next_sync);
      dgp_ = rehomed_dg_.get();
      syncp_ = rehomed_sync_.get();
      // New layout epoch: traffic sealed before this instant indexes
      // exchange lists that no longer exist and is fence-rejected.
      ++epoch_;
      invariants_valid_ = false;  // ledger reconciliation (see evict)
      for (int d = 0; d < devices_; ++d) {
        if (dead_[d]) continue;
        rebuild_device(d, cd, old_dg, hot_part, harvest,
                       /*have_lost_state=*/true);
      }

      // Account the migration: moved state crosses the interconnect
      // from the degraded device, and every live device re-uploads its
      // rebuilt sync metadata.
      sim::SimTime cost;
      int tgt = -1;
      for (int d = 0; d < devices_ && tgt < 0; ++d) {
        if (d != cd && !dead_[d]) tgt = d;
      }
      if (tgt >= 0) {
        cost = cost + net_.host_to_host(cd, tgt, plan.migrated_bytes);
      }
      sim::SimTime meta;
      for (int d = 0; d < devices_; ++d) {
        if (dead_[d]) continue;
        meta = sim::max(meta, net_.host_to_device(sync().metadata_bytes(d)));
      }
      cost = cost + meta;

      fault_global_.gray_migrations += 1;
      fault_global_.gray_migrated_masters += plan.moved.size();
      fault_global_.gray_migrated_bytes += plan.migrated_bytes;
      fault_global_.mitigation_time += cost;
      fault::DegradeStats& ledger = fault_global_.degrade_for(cd);
      ledger.migrations_off += 1;
      ledger.masters_moved_off += plan.moved.size();
      if (m_gray_migrations_ != nullptr) m_gray_migrations_->inc();
      gray_.note_migration(cd);

      // A stale-layout checkpoint cannot restore onto the new layout;
      // replace it with a post-migration snapshot immediately.
      last_ckpt_ = fault::Checkpoint{};
      if constexpr (kCheckpointable) {
        if (config_.checkpoint.interval_rounds > 0) {
          cost = take_checkpoint(now + cost) - now;
        }
      }
      force_sync_rounds_ = std::max(force_sync_rounds_, 2);
      rt_scope().span(obs::SpanKind::kRehome, "migrate", now, now + cost,
                      plan.moved.size(), static_cast<std::uint64_t>(cd));
      flight().record(obs::FlightKind::kRepair, cd,
                      static_cast<std::int64_t>(plan.moved.size()),
                      static_cast<std::int64_t>(plan.migrated_bytes),
                      "migrate", now.seconds());
      return cost;
    }
  }

  /// Rebuilds device `d`'s runtime structures on the current (rebuilt)
  /// layout, migrating per-vertex program state from `harvest` (indexed
  /// by the old layout's local ids). Election of state source per
  /// vertex: own old copy; else the lost device's copy (when a rollback
  /// resurrected it); else fresh init() values. A promoted master
  /// prefers the lost master's canonical copy so monotone counters and
  /// output values continue exactly.
  void rebuild_device(int d, int cd, const partition::DistGraph& old_dg,
                      const partition::LocalGraph& lost_part,
                      const std::vector<std::vector<std::vector<char>>>&
                          harvest,
                      bool have_lost_state) {
    Dev& dev = devs_[d];
    const auto& nlg = dg().part(d);
    const auto& olg = old_dg.part(d);
    dev.ctx = std::make_unique<RoundCtx>(nlg.num_local);
    dev.dirty_r = comm::Bitset{};
    dev.dirty_r.resize(nlg.num_local);
    dev.dirty_b = comm::Bitset{};
    dev.dirty_b.resize(nlg.num_local);
    dev.frontier.clear();
    dev.in_frontier = comm::Bitset{};
    dev.in_frontier.resize(nlg.num_local);
    dev.ctx->attach(&dev.dirty_r, &dev.dirty_b);
    dev.ctx->attach_obs(dev_scope(d));
    // Every channel restarts at sequence zero on the new layout; the
    // epoch bump fences anything sealed against the old numbering.
    dev.seq_out.assign(static_cast<std::size_t>(devices_) * 2, 0);
    dev.seq_in.assign(static_cast<std::size_t>(devices_) * 2, 0);
    dev.state = typename Program::DeviceState{};
    program_.init(nlg, dev.state, *dev.ctx);

    if constexpr (kRehomable) {
      const auto& own = harvest[static_cast<std::size_t>(d)];
      const auto& lost = harvest[static_cast<std::size_t>(cd)];
      for (VertexId v = 0; v < nlg.num_local; ++v) {
        const VertexId gv = nlg.l2g[v];
        RehomeRole role = RehomeRole::kFresh;
        const std::vector<char>* src = nullptr;
        if (const auto it = olg.g2l.find(gv);
            it != olg.g2l.end() && !own.empty()) {
          src = &own[it->second];
          role = nlg.is_master(v) && !olg.is_master(it->second)
                     ? RehomeRole::kPromotedMaster
                     : RehomeRole::kKept;
          if (role == RehomeRole::kPromotedMaster && have_lost_state) {
            if (const auto lit = lost_part.g2l.find(gv);
                lit != lost_part.g2l.end()) {
              src = &lost[lit->second];
            }
          }
        } else if (have_lost_state) {
          if (const auto lit = lost_part.g2l.find(gv);
              lit != lost_part.g2l.end()) {
            src = &lost[lit->second];
            role = RehomeRole::kAdopted;
          }
        }
        if (src != nullptr) {
          partition::ByteReader r(*src, "rehome: migrated vertex state");
          dev.state.archive_vertex(r, v);
          r.expect_end();
        }
        if constexpr (RehomeAware<Program>) {
          program_.on_rehome(nlg, dev.state, v, role, *dev.ctx);
        }
      }
    }
    merge_activations(dev);

    // Full reactivation + re-feed: every local vertex re-enters the
    // worklist; masters re-broadcast authoritative values and mirrors
    // re-reduce current/pending values to their (possibly new) masters.
    for (VertexId v = 0; v < nlg.num_local; ++v) {
      if (!dev.in_frontier.test(v)) {
        dev.in_frontier.set(v);
        dev.frontier.push_back(v);
      }
      if (nlg.is_master(v)) {
        dev.dirty_b.set(v);
      } else {
        dev.dirty_r.set(v);
      }
    }
    dev.progress = !dev.frontier.empty();
    dev.flush_pending = dev.progress;

    // Re-charge DeviceMemory against the new layout, preserving the
    // all-time peak across the swap.
    stats_.peak_memory[d] =
        std::max(stats_.peak_memory[d], dev.memory->peak());
    dev.memory = std::make_unique<sim::DeviceMemory>(
        d, topo_.spec(d).memory_bytes);
    if (config_.static_pool_bytes > 0) {
      dev.memory->reserve_static(config_.static_pool_bytes);
    }
    // The fresh DeviceMemory dropped any pressure squat; the next round
    // boundary re-applies whatever pressure window is still active.
    pressure_squat_[static_cast<std::size_t>(d)] = 0;
    charge_memory(d, nlg, *dev.memory);
  }

  /// Round coordinate for checkpoint bookkeeping: global rounds under
  /// BSP, the furthest local round under BASP.
  [[nodiscard]] std::uint32_t current_round() const {
    if (config_.exec_model == ExecModel::kSync) {
      return stats_.global_rounds;
    }
    std::uint32_t r = stats_.global_rounds;
    for (const Dev& dev : devs_) r = std::max(r, dev.local_round);
    return r;
  }

  /// Extracts all reduce payloads from device d; advances and returns
  /// the device-ready time via `ready`; stamps message arrivals.
  void extract_reduce_all(int d, sim::SimTime& ready,
                          std::vector<Msg<RV>>& out) {
    const auto sync_scope = prof().scope("sync.extract_reduce");
    Dev& dev = devs_[d];
    auto values = program_.reduce_mirror_src(dev.state);
    sim::SimTime engine = ready;  // downlink copy engine (overlap mode)
    for (int o = 0; o < devices_; ++o) {
      if (o == d || silent_[o]) continue;
      const auto& list = sync().list(d, o, reduce_filter_);
      if (list.size() == 0) continue;
      auto payload = RSync::extract_reduce(list, values, dev.dirty_r,
                                           config_.sync_mode, d, o);
      // Empty UO updates are piggybacked on round-control traffic in
      // Gluon; they carry no modeled cost. AS always ships full lists.
      if (config_.sync_mode == comm::SyncMode::kUO &&
          payload.empty_update()) {
        continue;
      }
      seal_payload(payload, d, o, fault::MsgKind::kReduce,
                   stats_.global_rounds);
      const sim::SimTime s0 = ready;
      const StageCost cost = send_cost(d, payload, list.size());
      stats_.device_comm_time[d] += cost.total();
      const sim::SimTime sent = advance_pipeline(cost, ready, engine);
      const Delivery del =
          deliver_link(d, o, payload.bytes, sent, fault::MsgKind::kReduce,
                       stats_.global_rounds);
      if (del.arrival == sim::SimTime::max()) continue;  // fenced at NIC
      Msg<RV>& slot = out[static_cast<std::size_t>(d) * devices_ + o];
      slot.payload = std::move(payload);
      if (del.corrupt) comm::corrupt_payload(slot.payload, del.corrupt_h);
      slot.arrival = del.arrival;
      slot.duplicated = del.duplicate;
      slot.dup_arrival = del.dup_arrival;
      slot.net_ref =
          trace_send(d, o, "reduce.extract", "reduce.downlink", "reduce.net",
                     cost, s0, sent, slot.arrival, slot.payload.bytes);
    }
    ready = sim::max(ready, engine);
  }

  /// Applies all reduce payloads destined to device o in arrival order;
  /// returns the time o finishes (wait gaps accounted).
  sim::SimTime apply_reduce_all(int o, sim::SimTime start,
                                const std::vector<Msg<RV>>& msgs) {
    const auto sync_scope = prof().scope("sync.apply_reduce");
    Dev& dev = devs_[o];
    const auto& lg = dg().part(o);
    auto values = program_.reduce_master_dst(dev.state);
    // Gather senders in arrival order (deterministic tie-break by id).
    std::vector<int> senders;
    for (int d = 0; d < devices_; ++d) {
      if (d != o &&
          msgs[static_cast<std::size_t>(d) * devices_ + o].payload.from >= 0) {
        senders.push_back(d);
      }
    }
    std::sort(senders.begin(), senders.end(), [&](int a, int b) {
      const auto& ma = msgs[static_cast<std::size_t>(a) * devices_ + o];
      const auto& mb = msgs[static_cast<std::size_t>(b) * devices_ + o];
      if (ma.arrival != mb.arrival) return ma.arrival < mb.arrival;
      return a < b;
    });
    sim::SimTime t = start;
    sim::SimTime recv_engine = start;  // apply engine (overlap mode)
    std::vector<VertexId> changed;
    for (int d : senders) {
      const auto& m = msgs[static_cast<std::size_t>(d) * devices_ + o];
      // Wire-protocol admission: stale-epoch or already-seen payloads
      // are rejected at the NIC before any uplink cost is paid.
      if (admit_payload(o, m.payload, fault::MsgKind::kReduce,
                        /*allow_hold=*/false, m.arrival) == Admit::kDiscard) {
        continue;
      }
      if (m.arrival > t) {
        stats_.wait_time[o] += m.arrival - t;
        const obs::SpanRef waiting =
            dev_scope(o).span(obs::SpanKind::kWait, "wait.msg", t, m.arrival,
                              0, static_cast<std::uint64_t>(d));
        if (tracer_ != nullptr) tracer_->link(m.net_ref, waiting);
        t = m.arrival;
      }
      const sim::SimTime s0 = t;
      const StageCost cost = receive_cost(o, m.payload);
      stats_.device_comm_time[o] += cost.total();
      t = advance_pipeline(cost, t, recv_engine);
      trace_recv(o, d, "reduce.uplink", "reduce.apply", cost, s0, t,
                 m.payload.bytes, m.net_ref);
      changed.clear();
      RSync::apply_reduce(sync().list(d, o, reduce_filter_), m.payload,
                          values, dev.dirty_b, &changed);
      comm_per_dev_[o].reduce_values += m.payload.count();
      for (VertexId v : changed) {
        program_.on_update(lg, dev.state, v, UpdateKind::kReduce, *dev.ctx);
      }
      merge_activations(dev);
      if (m.duplicated) {
        if (config_.wire_protocol) {
          // The ghost's sequence number was consumed by the original:
          // discarded on arrival at zero modeled cost.
          fault_per_dev_[o].duplicates_discarded += 1;
          if (m_protocol_discards_ != nullptr) m_protocol_discards_->inc();
        } else {
          // Unprotected receiver re-applies the ghost copy: idempotent
          // for min-style programs, double-counting for accumulators.
          if (m.dup_arrival > t) {
            stats_.wait_time[o] += m.dup_arrival - t;
            t = m.dup_arrival;
          }
          const StageCost gcost = receive_cost(o, m.payload);
          stats_.device_comm_time[o] += gcost.total();
          t = advance_pipeline(gcost, t, recv_engine);
          changed.clear();
          RSync::apply_reduce(sync().list(d, o, reduce_filter_), m.payload,
                              values, dev.dirty_b, &changed);
          comm_per_dev_[o].reduce_values += m.payload.count();
          for (VertexId v : changed) {
            program_.on_update(lg, dev.state, v, UpdateKind::kReduce,
                               *dev.ctx);
          }
          merge_activations(dev);
        }
      }
    }
    return sim::max(t, recv_engine);
  }

  sim::SimTime extract_bcast_all(int d, sim::SimTime start,
                                 std::vector<Msg<BV>>& out) {
    const auto sync_scope = prof().scope("sync.extract_broadcast");
    Dev& dev = devs_[d];
    auto values = program_.bcast_master_src(dev.state);
    sim::SimTime ready = start;
    sim::SimTime engine = start;
    for (int o = 0; o < devices_; ++o) {
      if (o == d || silent_[o]) continue;
      // Broadcast flows master(d) -> mirrors(o): list indexed (o, d).
      const auto& list = sync().list(o, d, bcast_filter_);
      if (list.size() == 0) continue;
      auto payload = BSync::extract_broadcast(list, values, dev.dirty_b,
                                              config_.sync_mode, d, o);
      if (config_.sync_mode == comm::SyncMode::kUO &&
          payload.empty_update()) {
        continue;
      }
      seal_payload(payload, d, o, fault::MsgKind::kBroadcast,
                   stats_.global_rounds);
      const sim::SimTime s0 = ready;
      const StageCost cost = send_cost(d, payload, list.size());
      stats_.device_comm_time[d] += cost.total();
      const sim::SimTime sent = advance_pipeline(cost, ready, engine);
      const Delivery del =
          deliver_link(d, o, payload.bytes, sent, fault::MsgKind::kBroadcast,
                       stats_.global_rounds);
      if (del.arrival == sim::SimTime::max()) continue;  // fenced at NIC
      Msg<BV>& slot = out[static_cast<std::size_t>(d) * devices_ + o];
      slot.payload = std::move(payload);
      if (del.corrupt) comm::corrupt_payload(slot.payload, del.corrupt_h);
      slot.arrival = del.arrival;
      slot.duplicated = del.duplicate;
      slot.dup_arrival = del.dup_arrival;
      slot.net_ref =
          trace_send(d, o, "bcast.extract", "bcast.downlink", "bcast.net",
                     cost, s0, sent, slot.arrival, slot.payload.bytes);
    }
    return sim::max(ready, engine);
  }

  sim::SimTime apply_bcast_all(int o, sim::SimTime start,
                               const std::vector<Msg<BV>>& msgs) {
    const auto sync_scope = prof().scope("sync.apply_broadcast");
    Dev& dev = devs_[o];
    const auto& lg = dg().part(o);
    auto values = program_.bcast_mirror_dst(dev.state);
    std::vector<int> senders;
    for (int d = 0; d < devices_; ++d) {
      if (d != o &&
          msgs[static_cast<std::size_t>(d) * devices_ + o].payload.from >= 0) {
        senders.push_back(d);
      }
    }
    std::sort(senders.begin(), senders.end(), [&](int a, int b) {
      const auto& ma = msgs[static_cast<std::size_t>(a) * devices_ + o];
      const auto& mb = msgs[static_cast<std::size_t>(b) * devices_ + o];
      if (ma.arrival != mb.arrival) return ma.arrival < mb.arrival;
      return a < b;
    });
    sim::SimTime t = start;
    sim::SimTime recv_engine = start;  // apply engine (overlap mode)
    std::vector<VertexId> changed;
    for (int d : senders) {
      const auto& m = msgs[static_cast<std::size_t>(d) * devices_ + o];
      if (admit_payload(o, m.payload, fault::MsgKind::kBroadcast,
                        /*allow_hold=*/false, m.arrival) == Admit::kDiscard) {
        continue;
      }
      if (m.arrival > t) {
        stats_.wait_time[o] += m.arrival - t;
        const obs::SpanRef waiting =
            dev_scope(o).span(obs::SpanKind::kWait, "wait.msg", t, m.arrival,
                              0, static_cast<std::uint64_t>(d));
        if (tracer_ != nullptr) tracer_->link(m.net_ref, waiting);
        t = m.arrival;
      }
      const sim::SimTime s0 = t;
      const StageCost cost = receive_cost(o, m.payload);
      stats_.device_comm_time[o] += cost.total();
      t = advance_pipeline(cost, t, recv_engine);
      trace_recv(o, d, "bcast.uplink", "bcast.apply", cost, s0, t,
                 m.payload.bytes, m.net_ref);
      changed.clear();
      BSync::apply_broadcast(sync().list(o, d, bcast_filter_), m.payload,
                             values, &changed);
      comm_per_dev_[o].broadcast_values += m.payload.count();
      for (VertexId v : changed) {
        program_.on_update(lg, dev.state, v, UpdateKind::kBroadcast,
                           *dev.ctx);
      }
      merge_activations(dev);
      if (m.duplicated) {
        if (config_.wire_protocol) {
          fault_per_dev_[o].duplicates_discarded += 1;
          if (m_protocol_discards_ != nullptr) m_protocol_discards_->inc();
        } else {
          // Unprotected: a stale assign-broadcast ghost re-applies; for
          // monotone labels it is idempotent, otherwise it resurrects
          // old values — the defect sequence numbers exist to prevent.
          if (m.dup_arrival > t) {
            stats_.wait_time[o] += m.dup_arrival - t;
            t = m.dup_arrival;
          }
          const StageCost gcost = receive_cost(o, m.payload);
          stats_.device_comm_time[o] += gcost.total();
          t = advance_pipeline(gcost, t, recv_engine);
          changed.clear();
          BSync::apply_broadcast(sync().list(o, d, bcast_filter_), m.payload,
                                 values, &changed);
          comm_per_dev_[o].broadcast_values += m.payload.count();
          for (VertexId v : changed) {
            program_.on_update(lg, dev.state, v, UpdateKind::kBroadcast,
                               *dev.ctx);
          }
          merge_activations(dev);
        }
      }
    }
    return sim::max(t, recv_engine);
  }

  /// Moves pending activations from the ctx into the frontier with
  /// cross-source deduplication.
  void merge_activations(Dev& dev) {
    std::vector<VertexId> extra;
    dev.ctx->take_next(extra);
    for (VertexId v : extra) {
      if (!dev.in_frontier.test(v)) {
        dev.in_frontier.set(v);
        dev.frontier.push_back(v);
      }
    }
  }

  // =========================================================================
  // BASP: per-device local rounds over the discrete-event queue
  // (Gluon-Async, Section III-B). Devices run ahead with stale values;
  // straggler decoupling and redundant work emerge from the schedule.
  // =========================================================================
  struct BaspInbox {
    std::deque<Msg<RV>> reduce;
    std::deque<Msg<BV>> bcast;
    // Reorder buffer: sequence-gapped arrivals parked until their
    // predecessors land (wire protocol on; wiped with the inbox on
    // eviction, which is what makes the epoch fence safe).
    std::vector<Msg<RV>> held_reduce;
    std::vector<Msg<BV>> held_bcast;
  };

  void run_basp() {
    sim::EventQueue queue;
    inboxes_.assign(devices_, BaspInbox{});
    park_start_.assign(devices_, sim::SimTime::zero());
    if (injector_.active()) {
      // Under faults the omniscient-oracle shortcut is not trusted:
      // run the real Safra detector alongside and audit it at the end.
      td_ = std::make_unique<TerminationDetector>(devices_);
      for (std::size_t i = 0; i < injector_.crashes().size(); ++i) {
        queue.schedule(injector_.crashes()[i].at,
                       [this, i, &queue](sim::SimTime t) {
                         basp_crash(i, t, queue);
                       });
      }
    }
    if (monitor_.active() &&
        monitor_.first_loss_at() < sim::SimTime::max()) {
      // Heartbeat monitor poll stream: starts one interval after the
      // first fence-bound silence (no evictions can fire earlier) and
      // reschedules itself until every doomed device is evicted. A plan
      // whose partitions all heal before detection has no finite fence
      // time — no monitor events, nothing to evict.
      queue.schedule(
          monitor_.first_loss_at() + config_.health.heartbeat_interval,
          [this, &queue](sim::SimTime t) { basp_monitor(t, queue); });
    }
    if (gray_.active()) {
      // Gray-failure poll stream: BASP has no barrier to piggyback the
      // monitor on, so it polls at the heartbeat cadence and stops once
      // the system is quiescent with no scheduled fault to revive it.
      queue.schedule(config_.health.heartbeat_interval,
                     [this, &queue](sim::SimTime t) { basp_gray(t, queue); });
    }
    for (int d = 0; d < devices_; ++d) {
      queue.schedule(sim::SimTime::zero(),
                     [this, d, &queue](sim::SimTime t) {
                       basp_step(d, t, queue);
                     });
    }
    std::uint64_t safety = 0;
    const std::uint64_t step_limit =
        static_cast<std::uint64_t>(config_.max_rounds) * devices_ * 4;
    while (!queue.empty() && safety++ < step_limit) {
      queue.run_next();
    }
    // Final SDC audit at termination: the drained queue means the
    // system is quiescent — the only cut where replica digests are
    // sound under BASP. A repair revives work, so drain again and
    // re-certify until the final audit comes back clean.
    if (injector_.has_sdc() && config_.audit.enabled()) {
      while (final_audits_ < kMaxFinalAudits) {
        final_audits_ += 1;
        sim::SimTime now;
        for (int d = 0; d < devices_; ++d) {
          now = sim::max(now, devs_[d].clock);
        }
        // Stragglers scheduled past the last event still get exercised.
        apply_label_flips(sim::SimTime::max());
        bool revived = false;
        now = run_audit(now, audit_boundary_++, /*final_pass=*/true,
                        &revived);
        for (int d = 0; d < devices_; ++d) {
          if (dead_[d] != 0) continue;
          devs_[d].clock = sim::max(devs_[d].clock, now);
        }
        bool work = false;
        for (int d = 0; d < devices_; ++d) {
          if (dead_[d] == 0 && device_has_work(d)) work = true;
        }
        if (!revived && !work) break;
        basp_sdc_revive(queue);
        while (!queue.empty() && safety++ < step_limit) {
          queue.run_next();
        }
      }
    }
    // Makespan is the slowest device clock, NOT queue.now(): the
    // monitor/gray poll streams keep firing (and finding nothing) on
    // their own cadence after the last device parks, and an observation
    // that observes nothing must not stretch the reported run.
    total_time_ = sim::SimTime::zero();
    for (int d = 0; d < devices_; ++d) {
      total_time_ = sim::max(total_time_, devs_[d].clock);
      stats_.global_rounds =
          std::max(stats_.global_rounds, devs_[d].local_round);
    }
    if (td_) {
      // All devices are parked and all inboxes drained; the token must
      // now complete two clean circulations. If it cannot, termination
      // detection was broken by the fault schedule.
      bool ok = td_->terminated();
      for (int i = 0; i < devices_ * 4 && !ok; ++i) ok = td_->try_advance();
      fault_global_.termination_clean = ok;
    }
  }

  /// BASP crash handler, fired from the event queue at the fault time.
  /// BASP has no barriers, hence no consistent cut to restore from:
  /// recovery is always the degraded cold-restart + peer re-feed path.
  /// In-flight messages to the crashed device stay queued (re-applying
  /// them after re-init is safe for monotone programs and keeps the
  /// termination detector's counters balanced).
  void basp_crash(std::size_t idx, sim::SimTime t, sim::EventQueue& queue) {
    const int cd = injector_.crashes()[idx].device;
    fault_per_dev_[cd].device_crashes += 1;
    flight().record(obs::FlightKind::kCrash, cd,
                    static_cast<std::int64_t>(devs_[cd].local_round), 0,
                    "crash", t.seconds());
    Dev& dev = devs_[cd];
    dev.clock = sim::max(dev.clock, t);
    const sim::SimTime cost = degraded_recover(cd);
    dev.clock += cost;
    fault_global_.recovery_time += cost;
    devs_[cd].flush_pending = true;  // re-announce own masters/mirrors
    // Wake the recovered device and every parked peer holding re-feed
    // marks; running peers pick the marks up in their next round.
    for (int o = 0; o < devices_; ++o) {
      if (o != cd && !devs_[o].flush_pending) continue;
      const sim::SimTime wake = o == cd ? dev.clock : t;
      queue.schedule(wake, [this, o, &queue](sim::SimTime tt) {
        if (devs_[o].parked) basp_step(o, tt, queue);
      });
    }
  }

  void basp_step(int d, sim::SimTime now, sim::EventQueue& queue) {
    // A permanently lost device goes silent the instant its loss fires:
    // it neither computes nor sends, and is eventually evicted by the
    // heartbeat monitor.
    if (basp_silent(d, now)) return;
    Dev& dev = devs_[d];
    if (dev.parked) {
      // A wake can come from a sender whose timeline lags this device's
      // local clock; the device only actually idled up to `now`.
      if (now > park_start_[d]) {
        stats_.wait_time[d] += now - park_start_[d];
        dev_scope(d).span(obs::SpanKind::kWait, "wait.park",
                          park_start_[d], now, 0, dev.local_round);
      }
      dev.parked = false;
      if (td_) td_->set_active(d, true);
    }
    dev.clock = sim::max(dev.clock, now);

    drain_inbox(d);

    // Under BASP a scheduled label flip lands on the target device's
    // own timeline — real mid-run corruption, free to propagate until
    // the next quiescent audit (or the final certificate) catches it.
    if (injector_.has_sdc()) apply_label_flips(dev.clock, d);

    // Optional asynchrony throttle (ablation A2; the paper's proposed
    // control mechanism): a device that has run more than
    // `async_lead_cap` local rounds ahead of the slowest partner it has
    // heard from stalls briefly so fresher values can arrive, instead
    // of churning redundant work on stale labels. A bounded number of
    // consecutive stalls guarantees progress even if a partner has
    // permanently finished.
    if (config_.async_lead_cap > 0 && has_reduce_partner(d) &&
        device_has_work(d)) {
      std::uint32_t min_seen = std::numeric_limits<std::uint32_t>::max();
      for (int o = 0; o < devices_; ++o) {
        if (o != d && is_partner(o, d)) {
          min_seen = std::min(min_seen, dev.last_seen_round[o]);
        }
      }
      if (min_seen != std::numeric_limits<std::uint32_t>::max() &&
          dev.local_round > min_seen + config_.async_lead_cap &&
          dev.consecutive_stalls < 8) {
        ++dev.consecutive_stalls;
        const sim::SimTime stall = params_.pcie_latency +
                                   params_.net_latency +
                                   params_.per_message_overhead * 4.0;
        stats_.wait_time[d] += stall;
        dev_scope(d).span(obs::SpanKind::kWait, "wait.throttle", dev.clock,
                          dev.clock + stall, 0, dev.local_round);
        dev.clock += stall;
        queue.schedule(dev.clock, [this, d, &queue](sim::SimTime t) {
          basp_step(d, t, queue);
        });
        return;
      }
      dev.consecutive_stalls = 0;
    }

    if (!device_has_work(d) || dev.local_round >= config_.max_rounds) {
      if (config_.async_busy_poll && dev.local_round < config_.max_rounds &&
          system_still_active(d)) {
        // Gluon-Async style idle churn: an empty local round still costs
        // a worklist-check kernel and a bitvector scan, and counts as a
        // local round (the paper's exploding min-round metric).
        const sim::GpuCostModel cost(topo_.spec(d), params_);
        sim::SimTime poll = params_.kernel_launch * 2.0;
        poll += sim::SimTime{
            static_cast<double>(
                sync().shared_entries(d, comm::ProxyFilter::kAll)) /
            params_.scan_throughput};
        stats_.compute_time[d] += poll;
        stats_.rounds[d] += 1;
        ++dev.local_round;
        dev_scope(d).span(obs::SpanKind::kKernel, "kernel.idle_poll",
                          dev.clock, dev.clock + poll, 0, dev.local_round);
        if (m_rounds_ != nullptr) m_rounds_->inc();
        basp_trace(dev.local_round, 0, 0, 0);
        dev.clock += poll;
        queue.schedule(dev.clock, [this, d, &queue](sim::SimTime t) {
          basp_step(d, t, queue);
        });
        return;
      }
      if (dev.flush_pending) {
        // Degraded recovery marked proxies for re-feed on a device with
        // no local work: flush them once before parking so the
        // recovered peer actually receives the values.
        dev.flush_pending = false;
        if (dev.dirty_r.any() || dev.dirty_b.any()) {
          basp_send(d, queue);
          queue.schedule(dev.clock, [this, d, &queue](sim::SimTime t) {
            basp_step(d, t, queue);
          });
          return;
        }
      }
      park(d, queue);
      return;
    }

    dev.flush_pending = false;  // regular sends cover the re-feed marks
    dev.clock += compute_one_round(d, dev.clock);
    ++dev.local_round;
    flight().record(obs::FlightKind::kRound, d,
                    static_cast<std::int64_t>(dev.local_round), 0, "basp",
                    dev.clock.seconds());
    // Round-boundary health sampling: keeps the φ / suspicion gauges
    // tracking the run between monitor polls (advance() still owns the
    // eviction verdicts).
    if (monitor_.active()) monitor_.observe_until(dev.clock, fault_global_);
    basp_trace(dev.local_round, dev.ctx->applications(),
               dev.ctx->total_edges(), 0);
    basp_send(d, queue);
    queue.schedule(dev.clock, [this, d, &queue](sim::SimTime t) {
      basp_step(d, t, queue);
    });
  }

  /// BASP counterpart of the BSP trace collection: accumulates activity
  /// into the per-local-round aggregate (entry `round-1`, growing the
  /// vector on demand). Single-threaded — BASP runs on one event queue.
  /// `round` 0 (a pre-round flush during fault recovery) folds into
  /// round 1.
  void basp_trace(std::uint32_t round, std::uint64_t active,
                  std::uint64_t edges, std::uint64_t volume) {
    if (!config_.collect_trace ||
        config_.exec_model != ExecModel::kAsync) {
      return;
    }
    if (round == 0) round = 1;
    if (stats_.trace.size() < round) {
      const std::size_t old = stats_.trace.size();
      stats_.trace.resize(round);
      for (std::size_t i = old; i < round; ++i) {
        stats_.trace[i].round = static_cast<std::uint32_t>(i + 1);
      }
    }
    RoundTrace& tr = stats_.trace[round - 1];
    tr.active_vertices += active;
    tr.edges += edges;
    tr.volume_bytes += volume;
  }

  /// Pays the uplink + apply cost of one admitted reduce message on
  /// device d's clock and applies it (shared by the in-order drain and
  /// the reorder-buffer release).
  void apply_reduce_msg(int d, const Msg<RV>& m) {
    const auto sync_scope = prof().scope("sync.apply_reduce");
    Dev& dev = devs_[d];
    const auto& lg = dg().part(d);
    const sim::SimTime s0 = dev.clock;
    const StageCost cost = receive_cost(d, m.payload);
    stats_.device_comm_time[d] += cost.total();
    dev.clock += cost.total();
    trace_recv(d, m.payload.from, "reduce.uplink", "reduce.apply", cost,
               s0, dev.clock, m.payload.bytes, m.net_ref);
    basp_trace(dev.local_round + 1, 0, 0, m.payload.bytes);
    dev.last_seen_round[m.payload.from] =
        std::max(dev.last_seen_round[m.payload.from], m.sender_round);
    std::vector<VertexId> changed;
    RSync::apply_reduce(sync().list(m.payload.from, d, reduce_filter_),
                        m.payload, program_.reduce_master_dst(dev.state),
                        dev.dirty_b, &changed);
    comm_per_dev_[d].reduce_values += m.payload.count();
    for (VertexId v : changed) {
      program_.on_update(lg, dev.state, v, UpdateKind::kReduce, *dev.ctx);
    }
    merge_activations(dev);
  }

  void apply_bcast_msg(int d, const Msg<BV>& m) {
    const auto sync_scope = prof().scope("sync.apply_broadcast");
    Dev& dev = devs_[d];
    const auto& lg = dg().part(d);
    const sim::SimTime s0 = dev.clock;
    const StageCost cost = receive_cost(d, m.payload);
    stats_.device_comm_time[d] += cost.total();
    dev.clock += cost.total();
    trace_recv(d, m.payload.from, "bcast.uplink", "bcast.apply", cost,
               s0, dev.clock, m.payload.bytes, m.net_ref);
    basp_trace(dev.local_round + 1, 0, 0, m.payload.bytes);
    dev.last_seen_round[m.payload.from] =
        std::max(dev.last_seen_round[m.payload.from], m.sender_round);
    std::vector<VertexId> changed;
    BSync::apply_broadcast(sync().list(d, m.payload.from, bcast_filter_),
                           m.payload, program_.bcast_mirror_dst(dev.state),
                           &changed);
    comm_per_dev_[d].broadcast_values += m.payload.count();
    for (VertexId v : changed) {
      program_.on_update(lg, dev.state, v, UpdateKind::kBroadcast,
                         *dev.ctx);
    }
    merge_activations(dev);
  }

  void drain_inbox(int d) {
    Dev& dev = devs_[d];
    auto& inbox = inboxes_[d];
    while (!inbox.reduce.empty() &&
           inbox.reduce.front().arrival <= dev.clock) {
      Msg<RV> m = std::move(inbox.reduce.front());
      inbox.reduce.pop_front();
      // Ghost copies are NIC artifacts, invisible to Safra's message
      // counters (no matching on_send was recorded for them).
      if (td_ && !m.dup_ghost) td_->on_receive(d);
      switch (admit_payload(d, m.payload, fault::MsgKind::kReduce,
                            /*allow_hold=*/true, m.arrival)) {
        case Admit::kDiscard:
          break;  // rejected at the NIC; zero modeled cost
        case Admit::kHold:
          // Sequence gap: an earlier message on this channel is still
          // in flight (reordered). Park the payload so applies stay in
          // channel order.
          fault_per_dev_[d].reorder_buffered += 1;
          inbox.held_reduce.push_back(std::move(m));
          break;
        case Admit::kApply:
          apply_reduce_msg(d, m);
          break;
      }
    }
    while (!inbox.bcast.empty() && inbox.bcast.front().arrival <= dev.clock) {
      Msg<BV> m = std::move(inbox.bcast.front());
      inbox.bcast.pop_front();
      if (td_ && !m.dup_ghost) td_->on_receive(d);
      switch (admit_payload(d, m.payload, fault::MsgKind::kBroadcast,
                            /*allow_hold=*/true, m.arrival)) {
        case Admit::kDiscard:
          break;
        case Admit::kHold:
          fault_per_dev_[d].reorder_buffered += 1;
          inbox.held_bcast.push_back(std::move(m));
          break;
        case Admit::kApply:
          apply_bcast_msg(d, m);
          break;
      }
    }
    release_held(d);
  }

  /// Releases reorder-buffered messages whose sequence gap has closed,
  /// repeating until a full pass makes no progress (one release can
  /// unblock the next in the same channel).
  void release_held(int d) {
    auto& inbox = inboxes_[d];
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < inbox.held_reduce.size(); ++i) {
        const Admit a = admit_payload(d, inbox.held_reduce[i].payload,
                                      fault::MsgKind::kReduce,
                                      /*allow_hold=*/true,
                                      inbox.held_reduce[i].arrival);
        if (a == Admit::kHold) continue;
        Msg<RV> m = std::move(inbox.held_reduce[i]);
        inbox.held_reduce.erase(inbox.held_reduce.begin() +
                                static_cast<std::ptrdiff_t>(i));
        if (a == Admit::kApply) apply_reduce_msg(d, m);
        progress = true;
        break;
      }
      for (std::size_t i = 0; i < inbox.held_bcast.size(); ++i) {
        const Admit a = admit_payload(d, inbox.held_bcast[i].payload,
                                      fault::MsgKind::kBroadcast,
                                      /*allow_hold=*/true,
                                      inbox.held_bcast[i].arrival);
        if (a == Admit::kHold) continue;
        Msg<BV> m = std::move(inbox.held_bcast[i]);
        inbox.held_bcast.erase(inbox.held_bcast.begin() +
                               static_cast<std::ptrdiff_t>(i));
        if (a == Admit::kApply) apply_bcast_msg(d, m);
        progress = true;
        break;
      }
    }
  }

  /// Sends this round's reduce payloads (mirror updates) and broadcast
  /// payloads (master updates). BASP ships only non-empty updates.
  void basp_send(int d, sim::EventQueue& queue) {
    const auto sync_scope = prof().scope("sync.extract");
    Dev& dev = devs_[d];
    sim::SimTime engine = dev.clock;  // downlink copy engine (overlap)
    auto rvalues = program_.reduce_mirror_src(dev.state);
    for (int o = 0; o < devices_; ++o) {
      if (o == d || basp_silent(o, dev.clock)) continue;
      const auto& list = sync().list(d, o, reduce_filter_);
      if (list.size() == 0) continue;
      auto payload = RSync::extract_reduce(list, rvalues, dev.dirty_r,
                                           config_.sync_mode, d, o);
      if (payload.empty_update()) continue;
      deliver<RV>(d, o, std::move(payload), dev, engine, queue,
                  /*bcast=*/false);
    }
    auto bvalues = program_.bcast_master_src(dev.state);
    for (int o = 0; o < devices_; ++o) {
      if (o == d || basp_silent(o, dev.clock)) continue;
      const auto& list = sync().list(o, d, bcast_filter_);
      if (list.size() == 0) continue;
      auto payload = BSync::extract_broadcast(list, bvalues, dev.dirty_b,
                                              config_.sync_mode, d, o);
      if (payload.empty_update()) continue;
      deliver<BV>(d, o, std::move(payload), dev, engine, queue,
                  /*bcast=*/true);
    }
    dev.clock = sim::max(dev.clock, engine);
    dev.dirty_b.clear();
  }

  template <typename T>
  void deliver(int d, int o, comm::Payload<T> payload, Dev& dev,
               sim::SimTime& engine, sim::EventQueue& queue, bool bcast) {
    const fault::MsgKind kind =
        bcast ? fault::MsgKind::kBroadcast : fault::MsgKind::kReduce;
    seal_payload(payload, d, o, kind, dev.local_round);
    const sim::SimTime s0 = dev.clock;
    const StageCost cost = send_cost(d, payload,
                                     payload.scanned > 0
                                         ? payload.scanned
                                         : payload.count());
    stats_.device_comm_time[d] += cost.total();
    const sim::SimTime sent = advance_pipeline(cost, dev.clock, engine);
    const Delivery del =
        deliver_link(d, o, payload.bytes, sent, kind, dev.local_round);
    if (del.arrival == sim::SimTime::max()) {
      // Fenced at the NIC (partition outlasting detection): never
      // delivered, so Safra must not count a send for it.
      return;
    }
    if (del.corrupt) comm::corrupt_payload(payload, del.corrupt_h);
    const obs::SpanRef net_ref =
        trace_send(d, o, bcast ? "bcast.extract" : "reduce.extract",
                   bcast ? "bcast.downlink" : "reduce.downlink",
                   bcast ? "bcast.net" : "reduce.net", cost, s0, sent,
                   del.arrival, payload.bytes);
    basp_trace(dev.local_round, 0, 0, payload.bytes);
    account_network(d, o, payload.bytes);
    if (td_) td_->on_send(d);
    auto& inbox = inboxes_[o];
    if (del.duplicate) {
      // The ghost is a byte-for-byte copy arriving later. It is a NIC
      // artifact, not an application send: Safra never counts it, and
      // the sequence dedup (protocol on) discards it on arrival.
      Msg<T> ghost;
      ghost.arrival = del.dup_arrival;
      ghost.sender_round = dev.local_round;
      ghost.net_ref = net_ref;
      ghost.dup_ghost = true;
      ghost.payload = payload;
      if (bcast) {
        if constexpr (std::is_same_v<T, BV>) {
          insert_sorted(inbox.bcast, std::move(ghost));
        }
      } else {
        if constexpr (std::is_same_v<T, RV>) {
          insert_sorted(inbox.reduce, std::move(ghost));
        }
      }
      queue.schedule(del.dup_arrival, [this, o, &queue](sim::SimTime t) {
        if (devs_[o].parked) basp_step(o, t, queue);
      });
    }
    Msg<T> msg;
    msg.arrival = del.arrival;
    msg.sender_round = dev.local_round;
    msg.net_ref = net_ref;
    msg.payload = std::move(payload);
    if (bcast) {
      if constexpr (std::is_same_v<T, BV>) {
        insert_sorted(inbox.bcast, std::move(msg));
      }
    } else {
      if constexpr (std::is_same_v<T, RV>) {
        insert_sorted(inbox.reduce, std::move(msg));
      }
    }
    queue.schedule(del.arrival, [this, o, &queue](sim::SimTime t) {
      if (devs_[o].parked) basp_step(o, t, queue);
    });
  }

  template <typename T>
  static void insert_sorted(std::deque<Msg<T>>& box, Msg<T> msg) {
    auto it = std::upper_bound(
        box.begin(), box.end(), msg,
        [](const Msg<T>& a, const Msg<T>& b) { return a.arrival < b.arrival; });
    box.insert(it, std::move(msg));
  }

  /// True when device o has permanently failed by time `at` (evicted,
  /// or lost but not yet detected): it must not receive extractions nor
  /// run local rounds.
  [[nodiscard]] bool basp_silent(int o, sim::SimTime at) const {
    return dead_[o] != 0 ||
           (monitor_.active() && injector_.lost_at(o) <= at);
  }

  /// Periodic heartbeat-monitor poll under BASP (there is no barrier to
  /// piggyback detection on). Evicts suspects and reschedules itself
  /// until every scheduled loss has been handled.
  void basp_monitor(sim::SimTime t, sim::EventQueue& queue) {
    if (!monitor_.active() || monitor_.all_losses_evicted()) return;
    for (int cd : monitor_.advance(t, fault_global_)) {
      if (!dead_[cd]) basp_evict(cd, t, queue);
    }
    if (!monitor_.all_losses_evicted()) {
      queue.schedule(t + config_.health.heartbeat_interval,
                     [this, &queue](sim::SimTime tt) {
                       basp_monitor(tt, queue);
                     });
    }
  }

  /// BASP-side wrapper around evict_device: additionally drops every
  /// in-flight payload (they index the *old* exchange lists, which the
  /// rebuild invalidated — the post-rebuild re-feed resends everything)
  /// and restarts Safra termination detection, whose message counters
  /// straddle the dropped messages.
  void basp_evict(int cd, sim::SimTime t, sim::EventQueue& queue) {
    const sim::SimTime cost = evict_device(cd, t);
    inboxes_.assign(devices_, BaspInbox{});
    if (td_) {
      td_ = std::make_unique<TerminationDetector>(devices_);
      for (int o = 0; o < devices_; ++o) {
        if (dead_[o]) td_->set_active(o, false);
      }
    }
    const sim::SimTime resume = t + cost;
    for (int o = 0; o < devices_; ++o) {
      if (dead_[o]) continue;
      Dev& dev = devs_[o];
      if (!dev.parked && resume > dev.clock) {
        stats_.wait_time[o] += resume - dev.clock;
        dev_scope(o).span(obs::SpanKind::kWait, "wait.evict", dev.clock,
                          resume, 0, static_cast<std::uint64_t>(cd));
        dev.clock = resume;
      }
      queue.schedule(resume, [this, o, &queue](sim::SimTime tt) {
        if (devs_[o].parked) basp_step(o, tt, queue);
      });
    }
  }

  /// Periodic gray-failure poll under BASP. Mitigation fires between
  /// events — every device's state is consistent at event boundaries —
  /// and the poll stops rescheduling once the system is quiescent with
  /// no scheduled fault left to revive it (so the event queue drains).
  void basp_gray(sim::SimTime t, sim::EventQueue& queue) {
    if (!gray_.active()) return;
    for (const auto& a : gray_.evaluate(t, dead_, fault_global_)) {
      if (dead_[a.device]) continue;
      basp_mitigate(a, t, queue);
    }
    bool busy = false;
    for (int o = 0; o < devices_ && !busy; ++o) {
      if (!dead_[o] && !devs_[o].parked) busy = true;
      if (pending_arrivals(o)) busy = true;
    }
    if (!busy && monitor_.active() && !monitor_.all_losses_evicted()) {
      busy = true;
    }
    if (!busy) {
      for (const auto& c : injector_.crashes()) {
        if (c.at > t) busy = true;
      }
    }
    if (busy) {
      queue.schedule(t + config_.health.heartbeat_interval,
                     [this, &queue](sim::SimTime tt) {
                       basp_gray(tt, queue);
                     });
    }
  }

  /// BASP-side mitigation wrapper: runs the shared migrate/evict path,
  /// then — exactly like basp_evict — wipes in-flight traffic (it
  /// indexes the old exchange lists), restarts Safra, and realigns live
  /// devices at the post-mitigation instant.
  void basp_mitigate(const fault::GrayFailureMonitor::Action& a,
                     sim::SimTime t, sim::EventQueue& queue) {
    const std::uint64_t before =
        fault_global_.gray_migrations + fault_global_.gray_evictions;
    const sim::SimTime cost = mitigate_device(a, t);
    if (fault_global_.gray_migrations + fault_global_.gray_evictions ==
        before) {
      return;  // nothing happened (non-rehomable program / no placement)
    }
    inboxes_.assign(devices_, BaspInbox{});
    if (td_) {
      td_ = std::make_unique<TerminationDetector>(devices_);
      for (int o = 0; o < devices_; ++o) {
        if (dead_[o]) td_->set_active(o, false);
      }
    }
    const sim::SimTime resume = t + cost;
    for (int o = 0; o < devices_; ++o) {
      if (dead_[o]) continue;
      Dev& dev = devs_[o];
      if (!dev.parked && resume > dev.clock) {
        stats_.wait_time[o] += resume - dev.clock;
        dev_scope(o).span(obs::SpanKind::kWait, "wait.migrate", dev.clock,
                          resume, 0, static_cast<std::uint64_t>(a.device));
        dev.clock = resume;
      }
      queue.schedule(resume, [this, o, &queue](sim::SimTime tt) {
        if (devs_[o].parked) basp_step(o, tt, queue);
      });
    }
  }

  /// BASP has no barriers, so consistent cuts are taken at *quiescence*:
  /// every device parked (or dead), no message in flight, and — when the
  /// real Safra detector is running — its token circulates to a clean
  /// termination verdict. Checkpoints stay suppressed while a loss is
  /// silent-but-undetected so rollback always lands on a pre-loss cut.
  void maybe_quiescent_checkpoint(int d) {
    if constexpr (kCheckpointable) {
      if (config_.checkpoint.interval_rounds == 0) return;
      const sim::SimTime now = devs_[d].clock;
      if (undetected_loss(now)) return;
      for (int o = 0; o < devices_; ++o) {
        if (!dead_[o] && !devs_[o].parked) return;
        if (pending_arrivals(o)) return;
      }
      if (current_round() <
          last_basp_ckpt_round_ +
              static_cast<std::uint32_t>(config_.checkpoint.interval_rounds)) {
        return;
      }
      if (td_) {
        bool ok = td_->terminated();
        for (int i = 0; i < devices_ * 4 && !ok; ++i) ok = td_->try_advance();
        if (!ok) return;
      }
      // Cost is accounted in FaultStats::checkpoint_time; the snapshot
      // overlaps park idle time, so device clocks do not advance.
      (void)take_checkpoint(now);
      last_basp_ckpt_round_ = current_round();
    } else {
      (void)d;
    }
  }

  void park(int d, sim::EventQueue& queue) {
    devs_[d].parked = true;
    park_start_[d] = devs_[d].clock;
    if (td_) td_->set_active(d, false);
    // BASP audits only at quiescent cuts: master == mirror is only
    // guaranteed once every send has been applied. The audit precedes
    // the checkpoint so snapshots are taken from certified-clean state.
    bool sdc_clean = true;
    if (injector_.has_sdc() && all_quiescent()) {
      apply_label_flips(devs_[d].clock);
      const integrity::AuditPolicy& pol = config_.audit;
      if (pol.enabled()) {
        const std::uint64_t b = audit_boundary_++;
        if (pol.due(b)) {
          const std::uint64_t before = fault_global_.sdc_detected;
          bool revived = false;
          // Cost overlaps park idle time, like the quiescent snapshot.
          (void)run_audit(devs_[d].clock, b, /*final_pass=*/false,
                          &revived);
          sdc_clean = fault_global_.sdc_detected == before;
          if (revived) basp_sdc_revive(queue);
        }
        if (sdc_lag_.pending() > 0) sdc_clean = false;
      }
    }
    if (sdc_clean) maybe_quiescent_checkpoint(d);
  }

  /// Every device parked (or dead) with no message in flight: the BASP
  /// equivalent of a barrier, where replica digests are sound.
  [[nodiscard]] bool all_quiescent() const {
    for (int o = 0; o < devices_; ++o) {
      if (dead_[o] == 0 && !devs_[o].parked) return false;
      if (pending_arrivals(o)) return false;
    }
    return true;
  }

  /// Wakes every device an SDC repair gave work to and restarts Safra
  /// (a rewind/restart invalidates its message counters), so the event
  /// loop picks the revived computation back up.
  void basp_sdc_revive(sim::EventQueue& queue) {
    if (td_) {
      td_ = std::make_unique<TerminationDetector>(devices_);
      // Revive only happens at a quiescent cut, so every live device is
      // parked: start them all passive and let the wakes below flip
      // exactly the revived ones back to active as they unpark
      // (basp_step does). A parked device left active would never step
      // again to declare itself passive and would wedge the token ring
      // into a false termination violation.
      for (int o = 0; o < devices_; ++o) td_->set_active(o, false);
    }
    for (int o = 0; o < devices_; ++o) {
      if (dead_[o] != 0) continue;
      if (!device_has_work(o) && !devs_[o].flush_pending) continue;
      queue.schedule(devs_[o].clock, [this, o, &queue](sim::SimTime t) {
        if (devs_[o].parked) basp_step(o, t, queue);
      });
    }
  }

  [[nodiscard]] bool pending_arrivals(int d) const {
    return !inboxes_[d].reduce.empty() || !inboxes_[d].bcast.empty() ||
           !inboxes_[d].held_reduce.empty() ||
           !inboxes_[d].held_bcast.empty();
  }

  /// Busy-poll continuation test: some *other* device still has work or
  /// a message is still undelivered somewhere, so global termination
  /// has not been reached and an idle device keeps churning rounds.
  /// (A real deployment runs the distributed detector in
  /// engine/termination.hpp; the simulator can consult global state.)
  [[nodiscard]] bool system_still_active(int self) const {
    for (int o = 0; o < devices_; ++o) {
      if (o != self && !devs_[o].parked && device_has_work(o)) return true;
      if (pending_arrivals(o)) return true;
    }
    return false;
  }

  /// True when device `sender` can send sync messages to `receiver`
  /// (reduce from sender's mirrors, or broadcast from sender's masters).
  [[nodiscard]] bool is_partner(int sender, int receiver) const {
    return sync().list(sender, receiver, reduce_filter_).size() > 0 ||
           sync().list(receiver, sender, bcast_filter_).size() > 0;
  }
  [[nodiscard]] bool has_reduce_partner(int d) const {
    for (int o = 0; o < devices_; ++o) {
      if (o != d && is_partner(o, d)) return true;
    }
    return false;
  }

  // -------------------------------------------------------------------------
  RunResult<Program> collect() {
    RunResult<Program> result;
    result.states.reserve(devices_);
    for (int d = 0; d < devices_; ++d) {
      stats_.peak_memory[d] =
          std::max(stats_.peak_memory[d], devs_[d].memory->peak());
      stats_.evicted[d] = dead_[d];
      stats_.comm += comm_per_dev_[d];
      stats_.faults += fault_per_dev_[d];
      result.states.push_back(std::move(devs_[d].state));
    }
    stats_.faults += fault_global_;
    stats_.faults.faults_injected =
        stats_.faults.device_crashes + injector_.windowed_events() +
        static_cast<std::uint64_t>(injector_.losses().size()) +
        static_cast<std::uint64_t>(injector_.label_flips().size()) +
        static_cast<std::uint64_t>(injector_.checkpoint_flips().size());
    stats_.total_time = total_time_;
    result.stats = std::move(stats_);
    if (rehomed_dg_) {
      // Labels now live in the rebuilt layout's local-id spaces; hand
      // the layout to the caller so gather helpers use the right one.
      result.final_layout = std::shared_ptr<const partition::DistGraph>(
          std::move(rehomed_dg_));
    }
    return result;
  }

  /// Current layout / exchange lists. These start at the caller's
  /// structures and are swapped to the owned rebuilt ones when a device
  /// eviction re-homes masters (the executor is the only writer).
  [[nodiscard]] const partition::DistGraph& dg() const { return *dgp_; }
  [[nodiscard]] const comm::SyncStructure& sync() const { return *syncp_; }

  const partition::DistGraph* dgp_;
  const comm::SyncStructure* syncp_;
  std::unique_ptr<partition::DistGraph> rehomed_dg_;
  std::unique_ptr<comm::SyncStructure> rehomed_sync_;
  const sim::Topology& topo_;
  const sim::CostParams& params_;
  sim::Interconnect net_;
  EngineConfig config_;
  const Program& program_;
  int devices_;
  comm::ProxyFilter reduce_filter_;
  comm::ProxyFilter bcast_filter_;

  std::vector<Dev> devs_;
  std::vector<BaspInbox> inboxes_;
  std::vector<sim::SimTime> park_start_;
  std::vector<comm::CommStats> comm_per_dev_;
  std::uint64_t traced_volume_ = 0;
  RunStats stats_;
  sim::SimTime total_time_;

  // Observability (all null when disabled; every use tests the handle).
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_rollbacks_ = nullptr;
  obs::Histogram* m_msg_size_ = nullptr;
  obs::Histogram* m_frontier_ = nullptr;
  obs::Histogram* m_kernel_us_ = nullptr;
  // Byzantine-network counters (registered only under an active plan).
  obs::Counter* m_net_anomalies_ = nullptr;
  obs::Counter* m_protocol_discards_ = nullptr;
  obs::Counter* m_partition_deferred_ = nullptr;
  // Gray-mitigation counters (registered only under degradation plans).
  obs::Counter* m_gray_migrations_ = nullptr;
  obs::Counter* m_gray_evictions_ = nullptr;

  // Fault-injection state.
  fault::FaultInjector injector_;
  std::vector<fault::FaultStats> fault_per_dev_;  // parallel-phase safe
  fault::FaultStats fault_global_;
  fault::Checkpoint last_ckpt_;
  fault::CheckpointStore ckpt_store_;
  std::size_t next_crash_ = 0;
  int force_sync_rounds_ = 0;  // keep BSP alive for post-recovery sync
  std::unique_ptr<TerminationDetector> td_;  // audited under faults
  // Permanent-loss state.
  fault::HeartbeatMonitor monitor_;
  // Gray-failure state: the degradation monitor and the per-device
  // bytes currently squatted by an active memory-pressure fault.
  fault::GrayFailureMonitor gray_;
  std::vector<std::uint64_t> pressure_squat_;
  std::vector<std::uint8_t> dead_;    // evicted devices (empty parts)
  std::vector<std::uint8_t> silent_;  // lost but not yet evicted (per round)
  std::uint32_t last_basp_ckpt_round_ = 0;
  // Layout epoch, sealed into every wire header and bumped on each
  // eviction/rebuild: traffic sealed against a dead layout is fence-
  // rejected on receipt instead of indexing rebuilt exchange lists.
  std::uint32_t epoch_ = 0;
  // Silent-data-corruption state (DESIGN.md §13): armed only while the
  // plan schedules SDC events, so clean runs execute none of it.
  integrity::DetectLagTracker sdc_lag_;
  std::vector<std::uint8_t> label_flip_done_;
  std::vector<std::uint8_t> ckpt_flip_done_;
  std::vector<int> sdc_repair_count_;  // escalation ledger, per device
  std::uint64_t audit_boundary_ = 0;   // audited-boundary counter
  int final_audits_ = 0;               // certify/revive loop safety valve
  std::uint64_t last_sdc_rollback_round_ =
      std::numeric_limits<std::uint64_t>::max();
  bool invariants_valid_ = true;  // cleared on re-home / migration
  obs::Counter* m_sdc_audits_ = nullptr;
  obs::Counter* m_sdc_detected_ = nullptr;
  obs::Counter* m_sdc_repaired_ = nullptr;
  static constexpr int kMaxFinalAudits = 5;
};

/// Convenience entry point: partitioned graph + topology + config in,
/// final states + stats out.
template <VertexProgram Program>
RunResult<Program> run(const partition::DistGraph& dg,
                       const comm::SyncStructure& sync,
                       const sim::Topology& topo,
                       const sim::CostParams& params,
                       const EngineConfig& config, const Program& program) {
  Executor<Program> exec(dg, sync, topo, params, config, program);
  return exec.run();
}

}  // namespace sg::engine
