#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "comm/field_sync.hpp"
#include "comm/sync_structure.hpp"
#include "engine/config.hpp"
#include "engine/load_balancer.hpp"
#include "engine/program.hpp"
#include "engine/round_ctx.hpp"
#include "engine/stats.hpp"
#include "partition/dist_graph.hpp"
#include "sim/device_memory.hpp"
#include "sim/event_queue.hpp"
#include "sim/gpu_cost_model.hpp"
#include "sim/interconnect.hpp"
#include "sim/thread_pool.hpp"
#include "sim/topology.hpp"

namespace sg::engine {

/// Outcome of a distributed run: the final per-device states (for result
/// extraction / validation) and the full simulated-time accounting.
template <typename Program>
struct RunResult {
  std::vector<typename Program::DeviceState> states;
  RunStats stats;
};

/// Distributed executor over the simulated cluster. Computation is real
/// (label arrays are actually updated); time, memory capacity, and
/// message transport are simulated. Dispatches to a bulk-synchronous
/// (BSP) or bulk-asynchronous (BASP) loop per EngineConfig::exec_model.
template <VertexProgram Program>
class Executor {
  using RV = typename Program::ReduceValue;
  using BV = typename Program::BcastValue;
  using RSync = comm::FieldSync<RV, typename Program::ReduceOp>;
  using BSync = comm::FieldSync<BV, typename Program::BcastOp>;
  using VertexId = graph::VertexId;

 public:
  Executor(const partition::DistGraph& dg, const comm::SyncStructure& sync,
           const sim::Topology& topo, const sim::CostParams& params,
           const EngineConfig& config, const Program& program)
      : dg_(dg),
        sync_(sync),
        topo_(topo),
        params_(params),
        net_(topo, params),
        config_(config),
        program_(program),
        devices_(dg.num_devices()) {
    if (topo_.num_devices() != devices_) {
      throw std::invalid_argument(
          "Executor: topology/partition device count mismatch");
    }
    reduce_filter_ = config_.structural_opt
                         ? program_.pattern().reduce_filter()
                         : comm::ProxyFilter::kAll;
    bcast_filter_ = config_.structural_opt
                        ? program_.pattern().broadcast_filter()
                        : comm::ProxyFilter::kAll;
  }

  RunResult<Program> run() {
    setup();
    if (config_.exec_model == ExecModel::kSync) {
      run_bsp();
    } else {
      run_basp();
    }
    return collect();
  }

 private:
  // ---- per-device runtime ------------------------------------------------
  struct Dev {
    typename Program::DeviceState state;
    std::unique_ptr<RoundCtx> ctx;
    comm::Bitset dirty_r;  // mirror-side updates awaiting reduce
    comm::Bitset dirty_b;  // master-side updates awaiting broadcast
    std::vector<VertexId> frontier;
    comm::Bitset in_frontier;  // dedup across compute/sync activations
    bool progress = false;  // topology-driven activity flag
    std::unique_ptr<sim::DeviceMemory> memory;
    sim::SimTime clock;
    // BASP only:
    std::uint32_t local_round = 0;
    bool parked = false;
    std::uint32_t consecutive_stalls = 0;  // throttle progress guard
    std::vector<std::uint32_t> last_seen_round;  // per sender
  };

  void setup() {
    stats_.resize(devices_);
    devs_.resize(devices_);
    for (int d = 0; d < devices_; ++d) {
      const auto& lg = dg_.part(d);
      Dev& dev = devs_[d];
      dev.memory = std::make_unique<sim::DeviceMemory>(
          d, topo_.spec(d).memory_bytes);
      if (config_.static_pool_bytes > 0) {
        // Lux-style fixed pool (Table III): claimed up front.
        dev.memory->reserve_static(config_.static_pool_bytes);
      }
      charge_memory(d, lg, *dev.memory);

      dev.ctx = std::make_unique<RoundCtx>(lg.num_local);
      dev.dirty_r.resize(lg.num_local);
      dev.dirty_b.resize(lg.num_local);
      dev.in_frontier.resize(lg.num_local);
      dev.ctx->attach(&dev.dirty_r, &dev.dirty_b);
      dev.last_seen_round.assign(devices_, 0);
      program_.init(lg, dev.state, *dev.ctx);
      merge_activations(dev);
      dev.progress = !dev.frontier.empty();
      stats_.peak_memory[d] = dev.memory->peak();
    }
    comm_per_dev_.assign(devices_, comm::CommStats{});
  }

  /// Registers every buffer the engine conceptually places on the GPU.
  /// Throws sim::OutOfDeviceMemory when capacity is exceeded — the
  /// "missing data points" of the paper's scaling figures.
  void charge_memory(int d, const partition::LocalGraph& lg,
                     sim::DeviceMemory& mem) {
    mem.allocate("graph", lg.bytes());
    const std::uint64_t label_bytes =
        static_cast<std::uint64_t>(lg.num_local) *
        (sizeof(RV) + sizeof(BV) + Program::kExtraBytesPerVertex);
    mem.allocate("labels", label_bytes);
    mem.allocate("worklist", static_cast<std::uint64_t>(lg.num_local) * 8 +
                                 lg.num_local / 4);
    mem.allocate("sync_metadata", sync_.metadata_bytes(d));
    if (config_.balancer == sim::Balancer::LB) {
      // Merrill-style load-balanced search needs a per-edge scan array.
      mem.allocate("lb_scratch", lg.num_out_edges() * 4);
    }
    if (config_.global_label_overhead_bytes > 0) {
      mem.allocate("global_arrays",
                   static_cast<std::uint64_t>(dg_.global_vertices()) *
                       config_.global_label_overhead_bytes);
    }
    std::uint64_t buffers = 0;
    for (int o = 0; o < devices_; ++o) {
      buffers += static_cast<std::uint64_t>(
                     sync_.list(d, o, comm::ProxyFilter::kAll).size()) *
                 (sizeof(RV) + 4);
      buffers += static_cast<std::uint64_t>(
                     sync_.list(o, d, comm::ProxyFilter::kAll).size()) *
                 (sizeof(BV) + 4);
    }
    mem.allocate("comm_buffers", buffers);
  }

  // ---- compute ------------------------------------------------------------
  /// Runs one local round on device d; returns the kernel time and
  /// updates work stats. Purely device-local.
  sim::SimTime compute_one_round(int d) {
    Dev& dev = devs_[d];
    const auto& lg = dg_.part(d);
    dev.ctx->reset_work();
    std::vector<VertexId> frontier;
    frontier.swap(dev.frontier);
    for (VertexId v : frontier) dev.in_frontier.reset(v);
    dev.progress =
        program_.compute_round(lg, dev.state, frontier, *dev.ctx);
    merge_activations(dev);

    const sim::KernelSchedule sched =
        analyze_kernel(dev.ctx->work_sizes(), config_.balancer,
                       topo_.spec(d).thread_blocks);
    const sim::GpuCostModel cost(topo_.spec(d), params_);
    const sim::SimTime t = cost.kernel_time(sched, config_.balancer);
    stats_.compute_time[d] += t;
    stats_.work_items[d] += dev.ctx->total_edges();
    stats_.rounds[d] += 1;
    return t;
  }

  [[nodiscard]] bool device_has_work(int d) const {
    return !devs_[d].frontier.empty() || devs_[d].progress;
  }

  // ---- message bookkeeping --------------------------------------------
  template <typename T>
  struct Msg {
    comm::Payload<T> payload;
    sim::SimTime arrival;
    std::uint32_t sender_round = 0;
  };

  /// Two-stage cost of an outgoing payload: GPU-side extraction, then
  /// the PCIe downlink. Under overlap_comm the stages pipeline across
  /// partners (extract partner i+1 while partner i's buffer is on the
  /// bus). Byte accounting goes to a per-device slot so parallel BSP
  /// phases do not race.
  struct StageCost {
    sim::SimTime first;   // extraction (send) / uplink (receive)
    sim::SimTime second;  // downlink (send)  / apply  (receive)
    [[nodiscard]] sim::SimTime total() const { return first + second; }
  };

  template <typename T>
  StageCost send_cost(int d, const comm::Payload<T>& p,
                      std::uint64_t list_size) {
    const sim::GpuCostModel cost(topo_.spec(d), params_);
    StageCost c;
    if (config_.sync_mode == comm::SyncMode::kUO) {
      c.first = cost.extract_updates_time(list_size, p.count() * sizeof(T));
    } else {
      c.first = cost.buffer_copy_time(p.count() * sizeof(T));
    }
    c.second = net_.device_to_host(p.bytes);
    comm_per_dev_[d].device_to_host_bytes += p.bytes;
    comm_per_dev_[d].messages += 1;
    return c;
  }

  /// PCIe-uplink + device apply cost of one incoming payload.
  template <typename T>
  StageCost receive_cost(int d, const comm::Payload<T>& p) {
    const sim::GpuCostModel cost(topo_.spec(d), params_);
    StageCost c;
    c.first = net_.host_to_device(p.bytes);
    c.second = cost.buffer_copy_time(p.count() * sizeof(T));
    comm_per_dev_[d].host_to_device_bytes += p.bytes;
    return c;
  }

  /// Advances a two-engine pipeline by one payload. Without overlap the
  /// stages serialize on one timeline; with overlap stage two runs on a
  /// copy/apply engine concurrently with the next payload's stage one.
  /// Returns the payload's completion time.
  sim::SimTime advance_pipeline(StageCost c, sim::SimTime& stage1_clock,
                                sim::SimTime& stage2_clock) const {
    stage1_clock += c.first;
    if (config_.overlap_comm) {
      stage2_clock = sim::max(stage2_clock, stage1_clock) + c.second;
    } else {
      stage1_clock += c.second;
      stage2_clock = stage1_clock;
    }
    return stage2_clock;
  }

  void account_network(int from, int to, std::uint64_t bytes) {
    if (!topo_.same_host(from, to)) {
      comm_per_dev_[from].host_to_host_bytes += bytes;
    }
  }

  // =========================================================================
  // BSP: global rounds with a barrier (Section III-B).
  // =========================================================================
  void run_bsp() {
    auto& pool = sim::ThreadPool::global();
    sim::SimTime barrier;  // all devices aligned at round start

    const std::uint32_t round_limit =
        config_.fixed_rounds > 0 ? config_.fixed_rounds : config_.max_rounds;

    for (std::uint32_t round = 0; round < round_limit; ++round) {
      const bool any_work = [&] {
        for (int d = 0; d < devices_; ++d) {
          if (device_has_work(d)) return true;
        }
        return false;
      }();
      if (!any_work && config_.fixed_rounds == 0) break;
      ++stats_.global_rounds;

      // Phase 1: compute + reduce extraction (parallel over devices).
      std::vector<sim::SimTime> ready(devices_, barrier);
      std::vector<Msg<RV>> rmsgs(
          static_cast<std::size_t>(devices_) * devices_);
      std::vector<std::uint8_t> computed(devices_, 0);
      pool.parallel_for(0, devices_, [&](std::size_t lo, std::size_t hi,
                                         std::size_t) {
        for (std::size_t d = lo; d < hi; ++d) {
          if (device_has_work(static_cast<int>(d))) {
            ready[d] += compute_one_round(static_cast<int>(d));
            computed[d] = 1;
          }
          extract_reduce_all(static_cast<int>(d), ready[d], rmsgs);
        }
      });
      if (config_.collect_trace) {
        RoundTrace tr;
        tr.round = stats_.global_rounds;
        for (int d = 0; d < devices_; ++d) {
          if (computed[d] == 0) continue;
          tr.active_vertices += devs_[d].ctx->applications();
          tr.edges += devs_[d].ctx->total_edges();
        }
        stats_.trace.push_back(tr);
      }

      // Phase 2: reduce application (parallel over receivers).
      std::vector<sim::SimTime> after_recv = ready;
      pool.parallel_for(0, devices_, [&](std::size_t lo, std::size_t hi,
                                         std::size_t) {
        for (std::size_t o = lo; o < hi; ++o) {
          after_recv[o] =
              apply_reduce_all(static_cast<int>(o), ready[o], rmsgs);
        }
      });

      // Phase 3: broadcast extraction (parallel over senders).
      std::vector<Msg<BV>> bmsgs(
          static_cast<std::size_t>(devices_) * devices_);
      std::vector<sim::SimTime> after_bext = after_recv;
      pool.parallel_for(0, devices_, [&](std::size_t lo, std::size_t hi,
                                         std::size_t) {
        for (std::size_t d = lo; d < hi; ++d) {
          after_bext[d] =
              extract_bcast_all(static_cast<int>(d), after_recv[d], bmsgs);
        }
      });

      // Phase 4: broadcast application (parallel over receivers).
      std::vector<sim::SimTime> done = after_bext;
      pool.parallel_for(0, devices_, [&](std::size_t lo, std::size_t hi,
                                         std::size_t) {
        for (std::size_t o = lo; o < hi; ++o) {
          done[o] =
              apply_bcast_all(static_cast<int>(o), after_bext[o], bmsgs);
          devs_[o].dirty_b.clear();  // broadcasts consumed
        }
      });

      // Network byte accounting (sequential; cheap).
      for (auto& m : rmsgs) {
        if (m.payload.from >= 0) {
          account_network(m.payload.from, m.payload.to, m.payload.bytes);
        }
      }
      for (auto& m : bmsgs) {
        if (m.payload.from >= 0) {
          account_network(m.payload.from, m.payload.to, m.payload.bytes);
        }
      }

      if (config_.collect_trace && !stats_.trace.empty()) {
        std::uint64_t volume = 0;
        for (const auto& c : comm_per_dev_) {
          volume += c.device_to_host_bytes + c.host_to_device_bytes;
        }
        stats_.trace.back().volume_bytes = volume - traced_volume_;
        traced_volume_ = volume;
      }

      // Barrier: stragglers stall everyone (Lux's failure mode at scale).
      sim::SimTime next_barrier = barrier;
      for (int d = 0; d < devices_; ++d) {
        next_barrier = sim::max(next_barrier, done[d]);
      }
      if (config_.charge_runtime_overhead) {
        // Centralized runtime task mapping serializes across devices.
        const sim::SimTime overhead =
            params_.runtime_task_overhead * static_cast<double>(devices_);
        next_barrier += overhead;
      }
      for (int d = 0; d < devices_; ++d) {
        stats_.wait_time[d] += next_barrier - done[d];
      }
      barrier = next_barrier;

      // Convergence: no frontier, no progress, and no sync changes.
      if (config_.fixed_rounds == 0) {
        bool active = false;
        for (int d = 0; d < devices_; ++d) {
          if (device_has_work(d)) active = true;
        }
        if (!active) break;
      }
    }
    total_time_ = barrier;
  }

  /// Extracts all reduce payloads from device d; advances and returns
  /// the device-ready time via `ready`; stamps message arrivals.
  void extract_reduce_all(int d, sim::SimTime& ready,
                          std::vector<Msg<RV>>& out) {
    Dev& dev = devs_[d];
    auto values = program_.reduce_mirror_src(dev.state);
    sim::SimTime engine = ready;  // downlink copy engine (overlap mode)
    for (int o = 0; o < devices_; ++o) {
      if (o == d) continue;
      const auto& list = sync_.list(d, o, reduce_filter_);
      if (list.size() == 0) continue;
      auto payload = RSync::extract_reduce(list, values, dev.dirty_r,
                                           config_.sync_mode, d, o);
      // Empty UO updates are piggybacked on round-control traffic in
      // Gluon; they carry no modeled cost. AS always ships full lists.
      if (config_.sync_mode == comm::SyncMode::kUO &&
          payload.empty_update()) {
        continue;
      }
      const StageCost cost = send_cost(d, payload, list.size());
      stats_.device_comm_time[d] += cost.total();
      const sim::SimTime sent = advance_pipeline(cost, ready, engine);
      Msg<RV>& slot = out[static_cast<std::size_t>(d) * devices_ + o];
      slot.payload = std::move(payload);
      slot.arrival = sent + net_.host_to_host(d, o, slot.payload.bytes);
    }
    ready = sim::max(ready, engine);
  }

  /// Applies all reduce payloads destined to device o in arrival order;
  /// returns the time o finishes (wait gaps accounted).
  sim::SimTime apply_reduce_all(int o, sim::SimTime start,
                                const std::vector<Msg<RV>>& msgs) {
    Dev& dev = devs_[o];
    const auto& lg = dg_.part(o);
    auto values = program_.reduce_master_dst(dev.state);
    // Gather senders in arrival order (deterministic tie-break by id).
    std::vector<int> senders;
    for (int d = 0; d < devices_; ++d) {
      if (d != o &&
          msgs[static_cast<std::size_t>(d) * devices_ + o].payload.from >= 0) {
        senders.push_back(d);
      }
    }
    std::sort(senders.begin(), senders.end(), [&](int a, int b) {
      const auto& ma = msgs[static_cast<std::size_t>(a) * devices_ + o];
      const auto& mb = msgs[static_cast<std::size_t>(b) * devices_ + o];
      if (ma.arrival != mb.arrival) return ma.arrival < mb.arrival;
      return a < b;
    });
    sim::SimTime t = start;
    sim::SimTime recv_engine = start;  // apply engine (overlap mode)
    std::vector<VertexId> changed;
    for (int d : senders) {
      const auto& m = msgs[static_cast<std::size_t>(d) * devices_ + o];
      if (m.arrival > t) {
        stats_.wait_time[o] += m.arrival - t;
        t = m.arrival;
      }
      const StageCost cost = receive_cost(o, m.payload);
      stats_.device_comm_time[o] += cost.total();
      t = advance_pipeline(cost, t, recv_engine);
      changed.clear();
      RSync::apply_reduce(sync_.list(d, o, reduce_filter_), m.payload,
                          values, dev.dirty_b, &changed);
      comm_per_dev_[o].reduce_values += m.payload.count();
      for (VertexId v : changed) {
        program_.on_update(lg, dev.state, v, UpdateKind::kReduce, *dev.ctx);
      }
      merge_activations(dev);
    }
    return sim::max(t, recv_engine);
  }

  sim::SimTime extract_bcast_all(int d, sim::SimTime start,
                                 std::vector<Msg<BV>>& out) {
    Dev& dev = devs_[d];
    auto values = program_.bcast_master_src(dev.state);
    sim::SimTime ready = start;
    sim::SimTime engine = start;
    for (int o = 0; o < devices_; ++o) {
      if (o == d) continue;
      // Broadcast flows master(d) -> mirrors(o): list indexed (o, d).
      const auto& list = sync_.list(o, d, bcast_filter_);
      if (list.size() == 0) continue;
      auto payload = BSync::extract_broadcast(list, values, dev.dirty_b,
                                              config_.sync_mode, d, o);
      if (config_.sync_mode == comm::SyncMode::kUO &&
          payload.empty_update()) {
        continue;
      }
      const StageCost cost = send_cost(d, payload, list.size());
      stats_.device_comm_time[d] += cost.total();
      const sim::SimTime sent = advance_pipeline(cost, ready, engine);
      Msg<BV>& slot = out[static_cast<std::size_t>(d) * devices_ + o];
      slot.payload = std::move(payload);
      slot.arrival = sent + net_.host_to_host(d, o, slot.payload.bytes);
    }
    return sim::max(ready, engine);
  }

  sim::SimTime apply_bcast_all(int o, sim::SimTime start,
                               const std::vector<Msg<BV>>& msgs) {
    Dev& dev = devs_[o];
    const auto& lg = dg_.part(o);
    auto values = program_.bcast_mirror_dst(dev.state);
    std::vector<int> senders;
    for (int d = 0; d < devices_; ++d) {
      if (d != o &&
          msgs[static_cast<std::size_t>(d) * devices_ + o].payload.from >= 0) {
        senders.push_back(d);
      }
    }
    std::sort(senders.begin(), senders.end(), [&](int a, int b) {
      const auto& ma = msgs[static_cast<std::size_t>(a) * devices_ + o];
      const auto& mb = msgs[static_cast<std::size_t>(b) * devices_ + o];
      if (ma.arrival != mb.arrival) return ma.arrival < mb.arrival;
      return a < b;
    });
    sim::SimTime t = start;
    sim::SimTime recv_engine = start;  // apply engine (overlap mode)
    std::vector<VertexId> changed;
    for (int d : senders) {
      const auto& m = msgs[static_cast<std::size_t>(d) * devices_ + o];
      if (m.arrival > t) {
        stats_.wait_time[o] += m.arrival - t;
        t = m.arrival;
      }
      const StageCost cost = receive_cost(o, m.payload);
      stats_.device_comm_time[o] += cost.total();
      t = advance_pipeline(cost, t, recv_engine);
      changed.clear();
      BSync::apply_broadcast(sync_.list(o, d, bcast_filter_), m.payload,
                             values, &changed);
      comm_per_dev_[o].broadcast_values += m.payload.count();
      for (VertexId v : changed) {
        program_.on_update(lg, dev.state, v, UpdateKind::kBroadcast,
                           *dev.ctx);
      }
      merge_activations(dev);
    }
    return sim::max(t, recv_engine);
  }

  /// Moves pending activations from the ctx into the frontier with
  /// cross-source deduplication.
  void merge_activations(Dev& dev) {
    std::vector<VertexId> extra;
    dev.ctx->take_next(extra);
    for (VertexId v : extra) {
      if (!dev.in_frontier.test(v)) {
        dev.in_frontier.set(v);
        dev.frontier.push_back(v);
      }
    }
  }

  // =========================================================================
  // BASP: per-device local rounds over the discrete-event queue
  // (Gluon-Async, Section III-B). Devices run ahead with stale values;
  // straggler decoupling and redundant work emerge from the schedule.
  // =========================================================================
  struct BaspInbox {
    std::deque<Msg<RV>> reduce;
    std::deque<Msg<BV>> bcast;
  };

  void run_basp() {
    sim::EventQueue queue;
    inboxes_.assign(devices_, BaspInbox{});
    park_start_.assign(devices_, sim::SimTime::zero());
    for (int d = 0; d < devices_; ++d) {
      queue.schedule(sim::SimTime::zero(),
                     [this, d, &queue](sim::SimTime t) {
                       basp_step(d, t, queue);
                     });
    }
    std::uint64_t safety = 0;
    const std::uint64_t step_limit =
        static_cast<std::uint64_t>(config_.max_rounds) * devices_ * 4;
    while (!queue.empty() && safety++ < step_limit) {
      queue.run_next();
    }
    total_time_ = queue.now();
    for (int d = 0; d < devices_; ++d) {
      total_time_ = sim::max(total_time_, devs_[d].clock);
      stats_.global_rounds =
          std::max(stats_.global_rounds, devs_[d].local_round);
    }
  }

  void basp_step(int d, sim::SimTime now, sim::EventQueue& queue) {
    Dev& dev = devs_[d];
    if (dev.parked) {
      // A wake can come from a sender whose timeline lags this device's
      // local clock; the device only actually idled up to `now`.
      if (now > park_start_[d]) {
        stats_.wait_time[d] += now - park_start_[d];
      }
      dev.parked = false;
    }
    dev.clock = sim::max(dev.clock, now);

    drain_inbox(d);

    // Optional asynchrony throttle (ablation A2; the paper's proposed
    // control mechanism): a device that has run more than
    // `async_lead_cap` local rounds ahead of the slowest partner it has
    // heard from stalls briefly so fresher values can arrive, instead
    // of churning redundant work on stale labels. A bounded number of
    // consecutive stalls guarantees progress even if a partner has
    // permanently finished.
    if (config_.async_lead_cap > 0 && has_reduce_partner(d) &&
        device_has_work(d)) {
      std::uint32_t min_seen = std::numeric_limits<std::uint32_t>::max();
      for (int o = 0; o < devices_; ++o) {
        if (o != d && is_partner(o, d)) {
          min_seen = std::min(min_seen, dev.last_seen_round[o]);
        }
      }
      if (min_seen != std::numeric_limits<std::uint32_t>::max() &&
          dev.local_round > min_seen + config_.async_lead_cap &&
          dev.consecutive_stalls < 8) {
        ++dev.consecutive_stalls;
        const sim::SimTime stall = params_.pcie_latency +
                                   params_.net_latency +
                                   params_.per_message_overhead * 4.0;
        stats_.wait_time[d] += stall;
        dev.clock += stall;
        queue.schedule(dev.clock, [this, d, &queue](sim::SimTime t) {
          basp_step(d, t, queue);
        });
        return;
      }
      dev.consecutive_stalls = 0;
    }

    if (!device_has_work(d) || dev.local_round >= config_.max_rounds) {
      if (config_.async_busy_poll && dev.local_round < config_.max_rounds &&
          system_still_active(d)) {
        // Gluon-Async style idle churn: an empty local round still costs
        // a worklist-check kernel and a bitvector scan, and counts as a
        // local round (the paper's exploding min-round metric).
        const sim::GpuCostModel cost(topo_.spec(d), params_);
        sim::SimTime poll = params_.kernel_launch * 2.0;
        poll += sim::SimTime{
            static_cast<double>(
                sync_.shared_entries(d, comm::ProxyFilter::kAll)) /
            params_.scan_throughput};
        stats_.compute_time[d] += poll;
        stats_.rounds[d] += 1;
        ++dev.local_round;
        dev.clock += poll;
        queue.schedule(dev.clock, [this, d, &queue](sim::SimTime t) {
          basp_step(d, t, queue);
        });
        return;
      }
      park(d, queue);
      return;
    }

    dev.clock += compute_one_round(d);
    ++dev.local_round;
    basp_send(d, queue);
    queue.schedule(dev.clock, [this, d, &queue](sim::SimTime t) {
      basp_step(d, t, queue);
    });
  }

  void drain_inbox(int d) {
    Dev& dev = devs_[d];
    const auto& lg = dg_.part(d);
    auto& inbox = inboxes_[d];
    std::vector<VertexId> changed;
    while (!inbox.reduce.empty() &&
           inbox.reduce.front().arrival <= dev.clock) {
      Msg<RV> m = std::move(inbox.reduce.front());
      inbox.reduce.pop_front();
      const StageCost cost = receive_cost(d, m.payload);
      stats_.device_comm_time[d] += cost.total();
      dev.clock += cost.total();
      dev.last_seen_round[m.payload.from] =
          std::max(dev.last_seen_round[m.payload.from], m.sender_round);
      changed.clear();
      RSync::apply_reduce(sync_.list(m.payload.from, d, reduce_filter_),
                          m.payload, program_.reduce_master_dst(dev.state),
                          dev.dirty_b, &changed);
      comm_per_dev_[d].reduce_values += m.payload.count();
      for (VertexId v : changed) {
        program_.on_update(lg, dev.state, v, UpdateKind::kReduce, *dev.ctx);
      }
      merge_activations(dev);
    }
    while (!inbox.bcast.empty() && inbox.bcast.front().arrival <= dev.clock) {
      Msg<BV> m = std::move(inbox.bcast.front());
      inbox.bcast.pop_front();
      const StageCost cost = receive_cost(d, m.payload);
      stats_.device_comm_time[d] += cost.total();
      dev.clock += cost.total();
      dev.last_seen_round[m.payload.from] =
          std::max(dev.last_seen_round[m.payload.from], m.sender_round);
      changed.clear();
      BSync::apply_broadcast(sync_.list(d, m.payload.from, bcast_filter_),
                             m.payload, program_.bcast_mirror_dst(dev.state),
                             &changed);
      comm_per_dev_[d].broadcast_values += m.payload.count();
      for (VertexId v : changed) {
        program_.on_update(lg, dev.state, v, UpdateKind::kBroadcast,
                           *dev.ctx);
      }
      merge_activations(dev);
    }
  }

  /// Sends this round's reduce payloads (mirror updates) and broadcast
  /// payloads (master updates). BASP ships only non-empty updates.
  void basp_send(int d, sim::EventQueue& queue) {
    Dev& dev = devs_[d];
    sim::SimTime engine = dev.clock;  // downlink copy engine (overlap)
    auto rvalues = program_.reduce_mirror_src(dev.state);
    for (int o = 0; o < devices_; ++o) {
      if (o == d) continue;
      const auto& list = sync_.list(d, o, reduce_filter_);
      if (list.size() == 0) continue;
      auto payload = RSync::extract_reduce(list, rvalues, dev.dirty_r,
                                           config_.sync_mode, d, o);
      if (payload.empty_update()) continue;
      deliver<RV>(d, o, std::move(payload), dev, engine, queue,
                  /*bcast=*/false);
    }
    auto bvalues = program_.bcast_master_src(dev.state);
    for (int o = 0; o < devices_; ++o) {
      if (o == d) continue;
      const auto& list = sync_.list(o, d, bcast_filter_);
      if (list.size() == 0) continue;
      auto payload = BSync::extract_broadcast(list, bvalues, dev.dirty_b,
                                              config_.sync_mode, d, o);
      if (payload.empty_update()) continue;
      deliver<BV>(d, o, std::move(payload), dev, engine, queue,
                  /*bcast=*/true);
    }
    dev.clock = sim::max(dev.clock, engine);
    dev.dirty_b.clear();
  }

  template <typename T>
  void deliver(int d, int o, comm::Payload<T> payload, Dev& dev,
               sim::SimTime& engine, sim::EventQueue& queue, bool bcast) {
    const StageCost cost = send_cost(d, payload,
                                     payload.scanned > 0
                                         ? payload.scanned
                                         : payload.count());
    stats_.device_comm_time[d] += cost.total();
    const sim::SimTime sent = advance_pipeline(cost, dev.clock, engine);
    const sim::SimTime arrival =
        sent + net_.host_to_host(d, o, payload.bytes);
    account_network(d, o, payload.bytes);
    Msg<T> msg;
    msg.arrival = arrival;
    msg.sender_round = dev.local_round;
    msg.payload = std::move(payload);
    auto& inbox = inboxes_[o];
    if (bcast) {
      if constexpr (std::is_same_v<T, BV>) {
        insert_sorted(inbox.bcast, std::move(msg));
      }
    } else {
      if constexpr (std::is_same_v<T, RV>) {
        insert_sorted(inbox.reduce, std::move(msg));
      }
    }
    queue.schedule(arrival, [this, o, &queue](sim::SimTime t) {
      if (devs_[o].parked) basp_step(o, t, queue);
    });
  }

  template <typename T>
  static void insert_sorted(std::deque<Msg<T>>& box, Msg<T> msg) {
    auto it = std::upper_bound(
        box.begin(), box.end(), msg,
        [](const Msg<T>& a, const Msg<T>& b) { return a.arrival < b.arrival; });
    box.insert(it, std::move(msg));
  }

  void park(int d, sim::EventQueue&) {
    devs_[d].parked = true;
    park_start_[d] = devs_[d].clock;
  }

  [[nodiscard]] bool pending_arrivals(int d) const {
    return !inboxes_[d].reduce.empty() || !inboxes_[d].bcast.empty();
  }

  /// Busy-poll continuation test: some *other* device still has work or
  /// a message is still undelivered somewhere, so global termination
  /// has not been reached and an idle device keeps churning rounds.
  /// (A real deployment runs the distributed detector in
  /// engine/termination.hpp; the simulator can consult global state.)
  [[nodiscard]] bool system_still_active(int self) const {
    for (int o = 0; o < devices_; ++o) {
      if (o != self && !devs_[o].parked && device_has_work(o)) return true;
      if (pending_arrivals(o)) return true;
    }
    return false;
  }

  /// True when device `sender` can send sync messages to `receiver`
  /// (reduce from sender's mirrors, or broadcast from sender's masters).
  [[nodiscard]] bool is_partner(int sender, int receiver) const {
    return sync_.list(sender, receiver, reduce_filter_).size() > 0 ||
           sync_.list(receiver, sender, bcast_filter_).size() > 0;
  }
  [[nodiscard]] bool has_reduce_partner(int d) const {
    for (int o = 0; o < devices_; ++o) {
      if (o != d && is_partner(o, d)) return true;
    }
    return false;
  }

  // -------------------------------------------------------------------------
  RunResult<Program> collect() {
    RunResult<Program> result;
    result.states.reserve(devices_);
    for (int d = 0; d < devices_; ++d) {
      stats_.peak_memory[d] = devs_[d].memory->peak();
      stats_.comm += comm_per_dev_[d];
      result.states.push_back(std::move(devs_[d].state));
    }
    stats_.total_time = total_time_;
    result.stats = std::move(stats_);
    return result;
  }

  const partition::DistGraph& dg_;
  const comm::SyncStructure& sync_;
  const sim::Topology& topo_;
  const sim::CostParams& params_;
  sim::Interconnect net_;
  EngineConfig config_;
  const Program& program_;
  int devices_;
  comm::ProxyFilter reduce_filter_;
  comm::ProxyFilter bcast_filter_;

  std::vector<Dev> devs_;
  std::vector<BaspInbox> inboxes_;
  std::vector<sim::SimTime> park_start_;
  std::vector<comm::CommStats> comm_per_dev_;
  std::uint64_t traced_volume_ = 0;
  RunStats stats_;
  sim::SimTime total_time_;
};

/// Convenience entry point: partitioned graph + topology + config in,
/// final states + stats out.
template <VertexProgram Program>
RunResult<Program> run(const partition::DistGraph& dg,
                       const comm::SyncStructure& sync,
                       const sim::Topology& topo,
                       const sim::CostParams& params,
                       const EngineConfig& config, const Program& program) {
  Executor<Program> exec(dg, sync, topo, params, config, program);
  return exec.run();
}

}  // namespace sg::engine
