#pragma once

#include <concepts>
#include <cstdint>
#include <span>

#include "comm/sync_structure.hpp"
#include "engine/round_ctx.hpp"
#include "partition/local_graph.hpp"

namespace sg::engine {

/// Which sync phase changed a proxy's value (passed to on_update so a
/// program can react differently to reduced updates at masters vs
/// broadcast updates at mirrors).
enum class UpdateKind : std::uint8_t { kReduce, kBroadcast };

/// How a local vertex came to exist in a post-eviction rebuilt layout
/// (passed to the optional `on_rehome` hook).
enum class RehomeRole : std::uint8_t {
  /// The device already held this proxy and kept its own copy.
  kKept,
  /// The device held a mirror and was elected the new master.
  kPromotedMaster,
  /// A fresh proxy that adopted the lost device's archived per-vertex
  /// copy verbatim (orphan placement or migrated-edge endpoints).
  kAdopted,
  /// A fresh proxy with no recoverable copy; carries init() values.
  kFresh,
};

/// A distributed vertex program (the IrGL-compiled benchmark analogue).
///
/// Required members:
///
///   using ReduceValue = ...;            // mirror -> master payload type
///   using ReduceOp    = comm::MinOp<ReduceValue>;  // or AddOp / custom
///   using BcastValue  = ...;            // master -> mirror payload type
///   using BcastOp     = ...;            // combine at mirror; must be
///                                       // monotone/idempotent so BASP's
///                                       // arbitrary interleavings are safe
///   static constexpr bool kDataDriven;  // data- vs topology-driven
///   static constexpr std::uint64_t kExtraBytesPerVertex;  // GPU state
///                                       // beyond the synced fields
///
///   struct DeviceState { ... };         // per-device label arrays
///
///   const char* name() const;
///   comm::SyncPattern pattern() const;  // read/write locations
///
///   // Allocate label arrays; seed the initial frontier (ctx.push) and
///   // initial dirty marks.
///   void init(const partition::LocalGraph&, DeviceState&, RoundCtx&) const;
///
///   // One local round. Data-driven programs process `frontier`;
///   // topology-driven programs sweep all local vertices and may ignore
///   // it. Must ctx.record() each operator application and return
///   // whether any progress was made (topology-driven convergence).
///   bool compute_round(const partition::LocalGraph&, DeviceState&,
///                      std::span<const graph::VertexId> frontier,
///                      RoundCtx&) const;
///
///   // Field storage. Reduce extracts from mirrors' `reduce_mirror_src`
///   // and combines into masters' `reduce_master_dst`; broadcast
///   // extracts masters' `bcast_master_src` and combines into mirrors'
///   // `bcast_mirror_dst`. For simple label algorithms all four are the
///   // same array; accumulator algorithms (pagerank) separate them.
///   std::span<ReduceValue> reduce_mirror_src(DeviceState&) const;
///   std::span<ReduceValue> reduce_master_dst(DeviceState&) const;
///   std::span<const BcastValue> bcast_master_src(const DeviceState&) const;
///   std::span<BcastValue> bcast_mirror_dst(DeviceState&) const;
///
///   // Called for each proxy whose value a sync changed; typically
///   // pushes it onto the worklist.
///   void on_update(const partition::LocalGraph&, DeviceState&,
///                  graph::VertexId v, UpdateKind, RoundCtx&) const;
template <typename P>
concept VertexProgram = requires(const P p, typename P::DeviceState st,
                                 const partition::LocalGraph lg,
                                 RoundCtx ctx) {
  typename P::ReduceValue;
  typename P::ReduceOp;
  typename P::BcastValue;
  typename P::BcastOp;
  { P::kDataDriven } -> std::convertible_to<bool>;
  { p.name() };
  { p.pattern() } -> std::convertible_to<comm::SyncPattern>;
  { p.init(lg, st, ctx) };
  { p.reduce_mirror_src(st) };
  { p.reduce_master_dst(st) };
  { p.bcast_mirror_dst(st) };
};

/// Optional program hook: fix up one vertex's migrated copy after master
/// re-homing (e.g. pagerank reconciles its monotone consumption counters
/// when a mirror copy is promoted to master or a master copy is demoted
/// to mirror). Programs without the hook get the engine's generic
/// import + ReduceOp fold only.
template <typename P>
concept RehomeAware = requires(const P p, typename P::DeviceState st,
                               const partition::LocalGraph lg,
                               graph::VertexId v, RoundCtx ctx) {
  { p.on_rehome(lg, st, v, RehomeRole::kKept, ctx) };
};

}  // namespace sg::engine
