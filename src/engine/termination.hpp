#pragma once

#include <cstdint>
#include <vector>

namespace sg::engine {

/// Safra's token-ring distributed termination detection.
///
/// Bulk-asynchronous execution has no global barrier, so "everyone is
/// idle and no messages are in flight" must itself be detected with a
/// distributed protocol (Gluon-Async runs one under the hood; our BASP
/// executor's event queue plays the omniscient oracle, and this module
/// provides the real protocol for study and reuse).
///
/// Classic formulation (Dijkstra–Feijen–van Gasteren / Safra):
///  * every process keeps a message counter (sends minus receives) and
///    a color; receiving a message blackens the process;
///  * a token carrying a color and a running count circulates the ring,
///    moving on only when its holder is passive; the holder adds its
///    counter, taints the token if it is black, and whitens itself;
///  * when the initiator gets back a white token and token count plus
///    its own counter is zero while it is itself white and passive,
///    no message can be in flight anywhere: termination.
///
/// The detector is deliberately passive: the caller reports application
/// events (`on_send` / `on_receive` / `set_active`) and pumps the token
/// with `try_advance`, which moves it at most one hop. This makes every
/// interleaving testable.
class TerminationDetector {
 public:
  explicit TerminationDetector(int num_processes);

  /// Application event hooks.
  void on_send(int process);
  void on_receive(int process);
  void set_active(int process, bool active);

  /// Moves the token one hop if its holder is passive. Returns true
  /// once termination has been detected (then stays true).
  bool try_advance();

  [[nodiscard]] bool terminated() const { return terminated_; }
  [[nodiscard]] int token_holder() const { return token_holder_; }
  /// Full token circulations completed so far (diagnostics).
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  enum class Color : std::uint8_t { kWhite, kBlack };

  struct Process {
    std::int64_t counter = 0;  // sends minus receives
    Color color = Color::kWhite;
    bool active = true;
  };

  std::vector<Process> procs_;
  int token_holder_ = 0;
  Color token_color_ = Color::kBlack;  // first circulation cannot decide
  std::int64_t token_count_ = 0;
  bool terminated_ = false;
  std::uint64_t rounds_ = 0;
};

}  // namespace sg::engine
