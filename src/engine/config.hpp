#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "comm/field_sync.hpp"
#include "fault/fault.hpp"
#include "integrity/audit.hpp"
#include "sim/gpu_cost_model.hpp"

namespace sg::obs {
class Tracer;
class Registry;
class Profiler;
class FlightRecorder;
}  // namespace sg::obs

namespace sg::engine {

/// BSP (global rounds with a barrier) vs BASP (per-device local rounds
/// with asynchronous message exchange), Section III-B.
enum class ExecModel : std::uint8_t { kSync, kAsync };

[[nodiscard]] inline const char* to_string(ExecModel m) {
  return m == ExecModel::kSync ? "Sync" : "Async";
}

/// Engine knobs corresponding to the paper's optimization axes.
struct EngineConfig {
  sim::Balancer balancer = sim::Balancer::ALB;
  comm::SyncMode sync_mode = comm::SyncMode::kUO;
  ExecModel exec_model = ExecModel::kAsync;
  /// BASP throttling (ablation A2; the paper's proposed future work):
  /// a device may run at most this many local rounds ahead of the
  /// slowest partner it has heard from. 0 means unthrottled.
  std::uint32_t async_lead_cap = 0;
  /// Safety valve for non-converging configurations.
  std::uint32_t max_rounds = 1'000'000;
  /// Fixed round budget (used for Lux pagerank, which has no
  /// convergence check); 0 means run to convergence.
  std::uint32_t fixed_rounds = 0;
  /// Exploit partitioning structural invariants to elide sync (D-IrGL).
  /// Lux knows only its own edge-cut invariant and is modeled with this
  /// disabled (it synchronizes all shared proxies in both directions).
  bool structural_opt = true;
  /// Lux-style up-front fixed device memory pool; 0 = dynamic (D-IrGL).
  std::uint64_t static_pool_bytes = 0;
  /// Charge CostParams::runtime_task_overhead x devices per BSP round
  /// (Lux's Legion runtime; see CostParams).
  bool charge_runtime_overhead = false;
  /// Overlap outbound sync (extraction + downlink) with the same round's
  /// kernel on a copy engine — the paper's second proposed improvement
  /// (Section VII). Off by default (the studied frameworks serialize).
  bool overlap_comm = false;
  /// Record per-round activity into RunStats::trace (BSP: one entry
  /// per global round; BASP: one entry per local round, aggregated
  /// across devices; small overhead, off by default).
  bool collect_trace = false;
  /// Simulated-timeline span tracer (not owned; nullptr = tracing
  /// disabled at zero cost — instrumentation sites test the pointer
  /// and do nothing).
  obs::Tracer* tracer = nullptr;
  /// Metrics registry the engine/comm/fault layers record counters and
  /// histograms into (not owned; nullptr = disabled at zero cost).
  obs::Registry* metrics = nullptr;
  /// Host wall-clock profiler the engine's real work (label-update
  /// kernels, sync extract/apply, audit scans) is scoped into (not
  /// owned; nullptr = the process-wide obs::Profiler::global(), which
  /// is disabled by default so every scope is a branch-and-return).
  obs::Profiler* profiler = nullptr;
  /// Flight recorder receiving structured engine events (not owned;
  /// nullptr = obs::FlightRecorder::global()). Always on — recording
  /// is lock-free and allocation-free — and dumped as a black box on
  /// abort / failed final audit / chaos failure.
  obs::FlightRecorder* flight = nullptr;
  /// When non-empty, the engine dumps the flight recorder here if
  /// run() aborts with an exception or the final-audit certificate
  /// fails ($SG_FLIGHT_DUMP is the env fallback for the abort path).
  std::filesystem::path flight_dump;
  /// BASP idle behaviour. Gluon-Async devices busy-poll: a device with
  /// an empty worklist still executes local rounds (worklist check +
  /// bitvector scan) until global termination — the reason the paper's
  /// minimum local-round counts explode (1000 -> 2141 on bfs/uk14) and
  /// asynchronous execution can lose to bulk-synchronous on
  /// high-diameter inputs. Off by default (idle devices park for free,
  /// which is faster but optimistic).
  bool async_busy_poll = false;
  /// Extra per-GLOBAL-vertex device bytes. Single-host frameworks keep
  /// vertex-indexed arrays over the original id space on every device
  /// (Gunrock labels/frontier maps, Groute ownership tables); D-IrGL's
  /// compact local ids avoid this (paper Table III).
  std::uint64_t global_label_overhead_bytes = 0;
  /// Fault schedule to inject (not owned; nullptr = failure-free run).
  const fault::FaultPlan* fault_plan = nullptr;
  /// Versioned wire protocol on every proxy-sync message: per-channel
  /// sequence numbers, layout-epoch fence, FNV-1a payload checksum.
  /// Receivers dedupe, reorder-buffer, fence stale epochs, and NACK
  /// corrupted payloads into the retry path. The header packs into the
  /// 16 wire bytes already charged per message and the checksum is only
  /// computed when faults are active, so a clean run is byte-identical
  /// with it on or off. Disable to study unprotected behaviour (sg_chaos
  /// --inject-defect does).
  bool wire_protocol = true;
  /// Self-healing delivery parameters (used only when faults are
  /// active; lossless runs pay nothing).
  fault::RetryPolicy retry;
  /// BSP-barrier checkpoint cadence; interval_rounds 0 disables. Under
  /// BASP checkpoints are taken at Safra-clean quiescence points (all
  /// devices parked, nothing in flight) instead of barriers.
  fault::CheckpointPolicy checkpoint;
  /// φ-accrual failure detection parameters (used only when the fault
  /// plan schedules permanent device losses).
  fault::HealthPolicy health;
  /// Gray-failure monitor configuration and its online response
  /// (observe / migrate / evict). Consulted only when the fault plan
  /// contains degradation faults; inert — and byte-identical to a build
  /// without it — otherwise.
  fault::MitigationPolicy mitigation;
  /// Silent-data-corruption auditor: replica digests, ABFT invariants,
  /// checkpoint read-back (DESIGN.md §13). Consulted only when the
  /// fault plan schedules SDC events (FaultInjector::has_sdc()); inert
  /// — and byte-identical to a build without it — otherwise.
  integrity::AuditPolicy audit;
  /// Directory of a saved partition store (`partition::save_partition`).
  /// When set, elastic redistribution after a device loss re-reads the
  /// lost device's subgraph from this checksummed store (charging the
  /// modeled disk read); when empty, the simulator's in-memory topology
  /// is used and only the disk cost is skipped.
  std::filesystem::path partition_store_dir;
};

/// The paper's named variants (Section IV-C).
///   Var1 (baseline): TWC + AS + Sync
///   Var2:            ALB + AS + Sync
///   Var3:            ALB + UO + Sync
///   Var4 (default):  ALB + UO + Async
enum class Variant : std::uint8_t { kVar1 = 1, kVar2, kVar3, kVar4 };

[[nodiscard]] inline EngineConfig make_variant(Variant v) {
  EngineConfig c;
  switch (v) {
    case Variant::kVar1:
      c.balancer = sim::Balancer::TWC;
      c.sync_mode = comm::SyncMode::kAS;
      c.exec_model = ExecModel::kSync;
      break;
    case Variant::kVar2:
      c.balancer = sim::Balancer::ALB;
      c.sync_mode = comm::SyncMode::kAS;
      c.exec_model = ExecModel::kSync;
      break;
    case Variant::kVar3:
      c.balancer = sim::Balancer::ALB;
      c.sync_mode = comm::SyncMode::kUO;
      c.exec_model = ExecModel::kSync;
      break;
    case Variant::kVar4:
      c.balancer = sim::Balancer::ALB;
      c.sync_mode = comm::SyncMode::kUO;
      c.exec_model = ExecModel::kAsync;
      break;
  }
  return c;
}

[[nodiscard]] inline std::string to_string(Variant v) {
  return "Var" + std::to_string(static_cast<int>(v));
}

}  // namespace sg::engine
