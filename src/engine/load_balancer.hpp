#pragma once

#include <cstdint>
#include <span>

#include "sim/gpu_cost_model.hpp"

namespace sg::engine {

/// Maps one round's work items onto thread blocks under a balancer and
/// returns the schedule for the cost model (Section III-E2).
///
///  * TWC / LB: the work-item sequence is split into `blocks` contiguous
///    chunks (one per thread block); a single item never leaves its
///    block, so the heaviest block carries at least the largest item.
///  * ALB: items larger than the average block load are split evenly
///    across all blocks (inter-block balancing); the rest are chunked as
///    in TWC.
[[nodiscard]] sim::KernelSchedule analyze_kernel(
    std::span<const std::uint32_t> work_sizes, sim::Balancer balancer,
    int thread_blocks);

}  // namespace sg::engine
