#pragma once

#include <cstdint>
#include <vector>

#include "comm/bitset.hpp"
#include "graph/types.hpp"
#include "obs/trace.hpp"

namespace sg::engine {

/// Per-device context handed to a Program's init / compute_round.
///
/// The program uses it to (a) activate vertices for the next local round
/// (data-driven worklists), (b) mark updated proxies for UO sync, and
/// (c) report its work-item sizes so the load balancer can derive the
/// kernel schedule (consecutive record() calls model consecutive thread
/// assignments, as on a real GPU).
///
/// Dirty marks are split by sync direction:
///  * mark_reduce_dirty - a *mirror*-side value changed and must be
///    reduced to its master;
///  * mark_bcast_dirty  - a *master*-side value changed and must be
///    broadcast to its mirrors.
class RoundCtx {
 public:
  explicit RoundCtx(graph::VertexId num_local) : in_next_(num_local) {}

  void attach(comm::Bitset* dirty_reduce, comm::Bitset* dirty_bcast) {
    dirty_reduce_ = dirty_reduce;
    dirty_bcast_ = dirty_bcast;
  }

  /// Activates `v` for the next local round (deduplicated).
  void push(graph::VertexId v) {
    if (!in_next_.test(v)) {
      in_next_.set(v);
      next_.push_back(v);
    }
  }

  void mark_reduce_dirty(graph::VertexId v) { dirty_reduce_->set(v); }
  void mark_bcast_dirty(graph::VertexId v) { dirty_bcast_->set(v); }

  /// Convenience for programs whose reduce and broadcast fields are the
  /// same label (bfs/sssp/cc): masters broadcast, mirrors reduce.
  void mark_dirty(graph::VertexId v, bool is_master) {
    if (is_master) {
      mark_bcast_dirty(v);
    } else {
      mark_reduce_dirty(v);
    }
  }

  /// Records one operator application touching `edges` edges.
  void record(std::uint32_t edges) {
    work_sizes_.push_back(edges);
    total_edges_ += edges;
  }

  /// Hands the accumulated next frontier to the executor and resets.
  void take_next(std::vector<graph::VertexId>& out) {
    out.swap(next_);
    next_.clear();
    for (graph::VertexId v : out) in_next_.reset(v);
  }

  [[nodiscard]] const std::vector<std::uint32_t>& work_sizes() const {
    return work_sizes_;
  }
  [[nodiscard]] std::uint64_t total_edges() const { return total_edges_; }
  [[nodiscard]] std::uint32_t applications() const {
    return static_cast<std::uint32_t>(work_sizes_.size());
  }

  void reset_work() {
    work_sizes_.clear();
    total_edges_ = 0;
  }

  /// True when the program produced follow-on work this round.
  [[nodiscard]] bool has_next() const { return !next_.empty(); }

  /// Observability handle for this device's timeline track. A program
  /// (or any layer holding the ctx) can emit custom spans through it;
  /// the default Scope is a null sink, so the call is free when tracing
  /// is off.
  void attach_obs(obs::Scope s) { obs_ = s; }
  [[nodiscard]] const obs::Scope& obs() const { return obs_; }

 private:
  std::vector<graph::VertexId> next_;
  comm::Bitset in_next_;
  comm::Bitset* dirty_reduce_ = nullptr;
  comm::Bitset* dirty_bcast_ = nullptr;
  std::vector<std::uint32_t> work_sizes_;
  std::uint64_t total_edges_ = 0;
  obs::Scope obs_;
};

}  // namespace sg::engine
