#pragma once

#include <cstdint>
#include <vector>

#include "comm/accounting.hpp"
#include "fault/fault.hpp"
#include "sim/sim_time.hpp"

namespace sg::engine {

/// One round's aggregate activity (collected under
/// EngineConfig::collect_trace) — the data behind the paper's
/// data-driven vs topology-driven discussion (Section III-E1): bfs
/// frontiers are bursty, topology-driven pagerank sweeps are flat.
///
/// Under BSP an entry is one global (barrier) round. Under BASP entry
/// `i` aggregates local round `i+1` across devices: compute activity of
/// every device's (i+1)-th local round plus the sync bytes those
/// devices moved (extraction at the sender's round, application at the
/// receiver's round).
struct RoundTrace {
  std::uint32_t round = 0;
  std::uint64_t active_vertices = 0;  ///< operator applications
  std::uint64_t edges = 0;            ///< edges relaxed
  std::uint64_t volume_bytes = 0;     ///< sync traffic this round
};

/// Simulated-time and work accounting for one run, giving exactly the
/// quantities the paper reports:
///  * execution time (Figures 3, 7; Table II);
///  * Max Compute / Min Wait / Device Comm breakdown (Figures 4-6, 8, 9);
///  * communication volume (bar labels in the breakdown figures);
///  * rounds and work items (the BASP redundant-work analysis);
///  * memory (Table III) and dynamic load balance (Table IV).
struct RunStats {
  sim::SimTime total_time;
  /// BSP: number of global (barrier) rounds. BASP: max local rounds.
  std::uint32_t global_rounds = 0;
  /// Per-round activity (empty unless EngineConfig::collect_trace).
  std::vector<RoundTrace> trace;

  // Per-device accumulators.
  std::vector<sim::SimTime> compute_time;      ///< kernel time
  std::vector<sim::SimTime> device_comm_time;  ///< extract+PCIe+apply
  std::vector<sim::SimTime> wait_time;         ///< blocked on remote msgs
  std::vector<std::uint64_t> work_items;       ///< edges relaxed
  std::vector<std::uint32_t> rounds;           ///< local rounds executed
  std::vector<std::uint64_t> peak_memory;      ///< device bytes
  /// Devices evicted by permanent-loss recovery (from FaultStats'
  /// perspective: eviction already happened). An evicted device stops
  /// accumulating compute/wait the moment it goes silent, so the
  /// min/max breakdown reductions below exclude it — otherwise a run
  /// that loses a device early reports a near-zero "Min Wait" that no
  /// surviving device actually experienced. Empty (or all-false) on
  /// failure-free runs.
  std::vector<std::uint8_t> evicted;

  comm::CommStats comm;

  /// Fault-injection and recovery accounting (all zeros on
  /// failure-free runs).
  fault::FaultStats faults;

  /// True when device `d` was evicted mid-run (always false when the
  /// run was failure-free or `d` survived).
  [[nodiscard]] bool device_evicted(std::size_t d) const {
    return d < evicted.size() && evicted[d] != 0;
  }

  [[nodiscard]] sim::SimTime max_compute() const {
    sim::SimTime m;
    for (std::size_t d = 0; d < compute_time.size(); ++d) {
      if (device_evicted(d)) continue;
      m = sim::max(m, compute_time[d]);
    }
    return m;
  }
  [[nodiscard]] sim::SimTime min_wait() const {
    sim::SimTime m;
    bool any = false;
    for (std::size_t d = 0; d < wait_time.size(); ++d) {
      if (device_evicted(d)) continue;
      m = any ? sim::min(m, wait_time[d]) : wait_time[d];
      any = true;
    }
    return any ? m : sim::SimTime{};
  }
  /// Non-overlapping device-host communication (max among devices).
  [[nodiscard]] sim::SimTime max_device_comm() const {
    sim::SimTime m;
    for (std::size_t d = 0; d < device_comm_time.size(); ++d) {
      if (device_evicted(d)) continue;
      m = sim::max(m, device_comm_time[d]);
    }
    return m;
  }
  [[nodiscard]] std::uint64_t total_work() const {
    std::uint64_t w = 0;
    for (auto x : work_items) w += x;
    return w;
  }
  [[nodiscard]] std::uint32_t min_rounds() const {
    std::uint32_t m = 0;
    bool any = false;
    for (std::size_t d = 0; d < rounds.size(); ++d) {
      if (device_evicted(d)) continue;
      m = any ? std::min(m, rounds[d]) : rounds[d];
      any = true;
    }
    return any ? m : 0;
  }
  [[nodiscard]] std::uint32_t max_rounds() const {
    std::uint32_t m = 0;
    for (std::size_t d = 0; d < rounds.size(); ++d) {
      if (device_evicted(d)) continue;
      m = std::max(m, rounds[d]);
    }
    return m;
  }
  [[nodiscard]] std::uint64_t max_memory() const {
    std::uint64_t m = 0;
    for (auto b : peak_memory) m = std::max(m, b);
    return m;
  }
  /// Table IV's dynamic balance: max/mean per-device compute time.
  [[nodiscard]] double dynamic_balance() const {
    if (compute_time.empty()) return 1.0;
    double total = 0, mx = 0;
    for (auto t : compute_time) {
      total += t.seconds();
      mx = std::max(mx, t.seconds());
    }
    const double mean = total / static_cast<double>(compute_time.size());
    return mean > 0 ? mx / mean : 1.0;
  }
  /// Table IV's memory balance: max/mean per-device peak memory.
  [[nodiscard]] double memory_balance() const {
    if (peak_memory.empty()) return 1.0;
    double total = 0, mx = 0;
    for (auto b : peak_memory) {
      total += static_cast<double>(b);
      mx = std::max(mx, static_cast<double>(b));
    }
    const double mean = total / static_cast<double>(peak_memory.size());
    return mean > 0 ? mx / mean : 1.0;
  }

  void resize(int devices) {
    compute_time.resize(devices);
    device_comm_time.resize(devices);
    wait_time.resize(devices);
    work_items.resize(devices);
    rounds.resize(devices);
    peak_memory.resize(devices);
    evicted.assign(static_cast<std::size_t>(devices), 0);
  }
};

}  // namespace sg::engine
