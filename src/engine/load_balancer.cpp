#include "engine/load_balancer.hpp"

#include <algorithm>

namespace sg::engine {

sim::KernelSchedule analyze_kernel(std::span<const std::uint32_t> work_sizes,
                                   sim::Balancer balancer,
                                   int thread_blocks) {
  sim::KernelSchedule sched;
  sched.active_vertices = static_cast<std::uint32_t>(work_sizes.size());
  for (std::uint32_t w : work_sizes) sched.total_edges += w;
  if (work_sizes.empty()) return sched;

  const auto blocks = static_cast<std::uint32_t>(std::max(1, thread_blocks));
  const std::uint64_t avg_block =
      (sched.total_edges + blocks - 1) / blocks;

  if (balancer == sim::Balancer::ALB) {
    // Items heavier than an average block's load are split across all
    // blocks; the remainder is chunked contiguously.
    std::uint64_t split_total = 0;
    std::uint64_t chunk_sum = 0, max_chunk = 0, chunk_items = 0;
    const std::uint64_t items_per_block =
        (work_sizes.size() + blocks - 1) / blocks;
    for (std::uint32_t w : work_sizes) {
      if (w > avg_block && w > 32) {
        split_total += w;
        sched.alb_split = true;
        continue;
      }
      chunk_sum += w;
      if (++chunk_items == items_per_block) {
        max_chunk = std::max(max_chunk, chunk_sum);
        chunk_sum = 0;
        chunk_items = 0;
      }
    }
    max_chunk = std::max(max_chunk, chunk_sum);
    sched.max_block_edges = max_chunk + (split_total + blocks - 1) / blocks;
    return sched;
  }

  // TWC / LB: contiguous chunks of the item sequence, one per block.
  const std::uint64_t items_per_block =
      (work_sizes.size() + blocks - 1) / blocks;
  std::uint64_t chunk_sum = 0, max_chunk = 0, chunk_items = 0;
  for (std::uint32_t w : work_sizes) {
    chunk_sum += w;
    if (++chunk_items == items_per_block) {
      max_chunk = std::max(max_chunk, chunk_sum);
      chunk_sum = 0;
      chunk_items = 0;
    }
  }
  max_chunk = std::max(max_chunk, chunk_sum);
  sched.max_block_edges = max_chunk;
  return sched;
}

}  // namespace sg::engine
