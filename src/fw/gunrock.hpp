#pragma once

#include "fw/benchmark.hpp"

namespace sg::fw {

/// Gunrock facade (single-host multi-GPU only), modeled per the paper:
///  * random vertex partitioning (its recommended default);
///  * LB load balancing (edges of every vertex spread over blocks);
///  * bulk-synchronous execution;
///  * direction-optimizing bfs (its algorithmic advantage in Table II);
///  * pagerank omitted (the paper found its output incorrect);
///  * kcore not provided.
class Gunrock {
 public:
  [[nodiscard]] static engine::EngineConfig config() {
    engine::EngineConfig c;
    c.balancer = sim::Balancer::LB;
    c.sync_mode = comm::SyncMode::kUO;
    c.exec_model = engine::ExecModel::kSync;
    // Gunrock keeps label/frontier arrays indexed by original vertex id
    // on every device (Table III's memory gap vs D-IrGL).
    c.global_label_overhead_bytes = 16;
    return c;
  }

  [[nodiscard]] static bool supports(Benchmark b) {
    return b == Benchmark::kBfs || b == Benchmark::kCc ||
           b == Benchmark::kSssp;
  }

  [[nodiscard]] static BenchmarkRun run(Benchmark bench,
                                        const Prepared& prep,
                                        const sim::Topology& topo,
                                        const sim::CostParams& params,
                                        const RunParams& rp = {});
};

}  // namespace sg::fw
