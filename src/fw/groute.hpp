#pragma once

#include "fw/benchmark.hpp"

namespace sg::fw {

/// Groute facade (single-host multi-GPU only), modeled per the paper:
///  * METIS-style locality-aware edge-cut (our GREEDY BFS-grown cut);
///  * asynchronous execution between GPUs (its defining feature);
///  * pointer-jumping connected components (its algorithmic advantage);
///  * data-driven bfs / sssp / pagerank; no kcore.
class Groute {
 public:
  [[nodiscard]] static engine::EngineConfig config() {
    engine::EngineConfig c;
    c.balancer = sim::Balancer::LB;
    c.sync_mode = comm::SyncMode::kUO;
    c.exec_model = engine::ExecModel::kAsync;
    // Groute keeps global ownership/routing tables on each device.
    c.global_label_overhead_bytes = 8;
    return c;
  }

  [[nodiscard]] static bool supports(Benchmark b) {
    return b != Benchmark::kKcore;
  }

  [[nodiscard]] static BenchmarkRun run(Benchmark bench,
                                        const Prepared& prep,
                                        const sim::Topology& topo,
                                        const sim::CostParams& params,
                                        const RunParams& rp = {});
};

}  // namespace sg::fw
