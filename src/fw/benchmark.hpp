#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/sync_structure.hpp"
#include "engine/config.hpp"
#include "engine/stats.hpp"
#include "graph/csr.hpp"
#include "partition/dist_graph.hpp"
#include "sim/cost_params.hpp"
#include "sim/topology.hpp"

namespace sg::fw {

/// The paper's five benchmarks (Section IV-A).
enum class Benchmark { kBfs, kCc, kKcore, kPagerank, kSssp };

[[nodiscard]] const char* to_string(Benchmark b);
[[nodiscard]] Benchmark benchmark_from_string(const std::string& name);

/// Per-run algorithm parameters.
struct RunParams {
  /// bfs/sssp source; kInvalidVertex means "highest out-degree vertex"
  /// (the paper's choice).
  graph::VertexId source = graph::kInvalidVertex;
  std::uint32_t kcore_k = 10;
  float pr_alpha = 0.85f;
  float pr_tolerance = 1e-4f;
  /// Lux pagerank has no convergence check; it runs the number of
  /// rounds D-IrGL's pagerank executed (paper Section IV-B).
  std::uint32_t lux_pr_rounds = 50;
};

/// Outcome of one framework run. `ok == false` records the failures the
/// paper reports as missing data points (device OOM, unsupported
/// benchmark, crashes).
struct BenchmarkRun {
  bool ok = false;
  std::string error;
  engine::RunStats stats;

  // Result payloads (only the one matching the benchmark is filled).
  std::vector<std::uint32_t> dist32;   // bfs
  std::vector<std::uint64_t> dist64;   // sssp
  std::vector<std::uint32_t> labels;   // cc
  std::vector<std::uint8_t> in_core;   // kcore
  std::vector<float> ranks;            // pagerank
};

/// A partitioned graph plus its memoized sync structure, reusable across
/// engine configurations (partition once, run many — the paper's
/// production workflow).
struct Prepared {
  partition::DistGraph dist;
  comm::SyncStructure sync;
  graph::VertexId default_source = 0;

  Prepared(partition::DistGraph dg, graph::VertexId src)
      : dist(std::move(dg)), sync(dist), default_source(src) {}
};

/// Partitions `g` for `devices` simulated GPUs under `policy`.
[[nodiscard]] Prepared prepare(const graph::Csr& g, partition::Policy policy,
                               int devices, std::uint64_t seed = 1);

/// Variants of cc / bfs used by the different frameworks.
enum class CcFlavor { kLabelProp, kPointerJump };
enum class BfsFlavor { kPush, kDirectionOpt };

/// Shared dispatcher: runs `bench` on the prepared partition under
/// `config`, converting engine OOM into a failed BenchmarkRun.
[[nodiscard]] BenchmarkRun dispatch(Benchmark bench, const Prepared& prep,
                                    const sim::Topology& topo,
                                    const sim::CostParams& params,
                                    const engine::EngineConfig& config,
                                    const RunParams& rp,
                                    CcFlavor cc_flavor = CcFlavor::kLabelProp,
                                    BfsFlavor bfs_flavor = BfsFlavor::kPush);

}  // namespace sg::fw
