#include "fw/gunrock.hpp"

#include <stdexcept>

namespace sg::fw {

BenchmarkRun Gunrock::run(Benchmark bench, const Prepared& prep,
                          const sim::Topology& topo,
                          const sim::CostParams& params,
                          const RunParams& rp) {
  BenchmarkRun out;
  if (topo.num_hosts() != 1) {
    out.error = "Gunrock supports only single-host multi-GPU platforms";
    return out;
  }
  if (prep.dist.options().policy != partition::Policy::RANDOM) {
    out.error = "Gunrock uses its random partitioning strategy";
    return out;
  }
  if (!supports(bench)) {
    out.error = bench == Benchmark::kPagerank
                    ? "Gunrock pagerank produced incorrect output (omitted)"
                    : "benchmark not provided by Gunrock";
    return out;
  }
  return dispatch(bench, prep, topo, params, config(), rp,
                  CcFlavor::kLabelProp, BfsFlavor::kDirectionOpt);
}

}  // namespace sg::fw
