#pragma once

#include "fw/benchmark.hpp"

namespace sg::fw {

/// Lux facade (Jia et al., VLDB 2017), modeled per the paper:
///  * only the edge-balanced incoming edge-cut (IEC);
///  * synchronizes all shared proxies every round (AS), in both
///    directions (no structural-invariant elision);
///  * bulk-synchronous execution only;
///  * per-block edge distribution regardless of degree (LB);
///  * a static device memory pool claimed at launch (Table III shows
///    5.85 GB on 12 GB K80s — a 49% fraction, which we reproduce);
///  * only cc and pagerank (the paper found the other Lux benchmarks
///    incorrect or unavailable), with pagerank recomputing every rank
///    each round for a fixed round budget.
class Lux {
 public:
  static constexpr double kStaticPoolFraction = 0.4875;

  [[nodiscard]] static engine::EngineConfig config(
      const sim::Topology& topo) {
    engine::EngineConfig c;
    c.balancer = sim::Balancer::LB;
    c.sync_mode = comm::SyncMode::kAS;
    c.exec_model = engine::ExecModel::kSync;
    c.structural_opt = false;
    c.charge_runtime_overhead = true;
    c.static_pool_bytes = static_cast<std::uint64_t>(
        kStaticPoolFraction *
        static_cast<double>(topo.min_device_memory()));
    return c;
  }

  [[nodiscard]] static bool supports(Benchmark b) {
    return b == Benchmark::kCc || b == Benchmark::kPagerank;
  }

  [[nodiscard]] static BenchmarkRun run(Benchmark bench,
                                        const Prepared& prep,
                                        const sim::Topology& topo,
                                        const sim::CostParams& params,
                                        const RunParams& rp = {});
};

}  // namespace sg::fw
