#include "fw/benchmark.hpp"

#include <stdexcept>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/dobfs.hpp"
#include "algo/kcore.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "graph/datasets.hpp"
#include "obs/prof.hpp"
#include "sim/device_memory.hpp"

namespace sg::fw {

const char* to_string(Benchmark b) {
  switch (b) {
    case Benchmark::kBfs: return "bfs";
    case Benchmark::kCc: return "cc";
    case Benchmark::kKcore: return "kcore";
    case Benchmark::kPagerank: return "pagerank";
    case Benchmark::kSssp: return "sssp";
  }
  return "?";
}

Benchmark benchmark_from_string(const std::string& name) {
  if (name == "bfs") return Benchmark::kBfs;
  if (name == "cc") return Benchmark::kCc;
  if (name == "kcore") return Benchmark::kKcore;
  if (name == "pagerank" || name == "pr") return Benchmark::kPagerank;
  if (name == "sssp") return Benchmark::kSssp;
  throw std::invalid_argument("unknown benchmark: " + name);
}

Prepared prepare(const graph::Csr& g, partition::Policy policy, int devices,
                 std::uint64_t seed) {
  // Partitioning is real host work (the heaviest outside the engine);
  // time it under the process-wide profiler so `host_time` reports
  // attribute preprocessing separately from the solve.
  const auto prep_scope =
      obs::Profiler::global().scope("fw.prepare.partition");
  partition::PartitionOptions opts;
  opts.policy = policy;
  opts.num_devices = devices;
  opts.seed = seed;
  return Prepared{partition::partition_graph(g, opts),
                  graph::datasets::default_source(g)};
}

BenchmarkRun dispatch(Benchmark bench, const Prepared& prep,
                      const sim::Topology& topo,
                      const sim::CostParams& params,
                      const engine::EngineConfig& config, const RunParams& rp,
                      CcFlavor cc_flavor, BfsFlavor bfs_flavor) {
  BenchmarkRun run;
  const graph::VertexId source = rp.source == graph::kInvalidVertex
                                     ? prep.default_source
                                     : rp.source;
  try {
    switch (bench) {
      case Benchmark::kBfs: {
        if (bfs_flavor == BfsFlavor::kDirectionOpt) {
          auto r = algo::run_bfs_direction_opt(prep.dist, prep.sync, topo,
                                               params, config, source);
          run.dist32 = std::move(r.dist);
          run.stats = std::move(r.stats);
        } else {
          auto r = algo::run_bfs(prep.dist, prep.sync, topo, params, config,
                                 source);
          run.dist32 = std::move(r.dist);
          run.stats = std::move(r.stats);
        }
        break;
      }
      case Benchmark::kCc: {
        if (cc_flavor == CcFlavor::kPointerJump) {
          auto r = algo::run_cc_pointer_jump(prep.dist, prep.sync, topo,
                                             params, config);
          run.labels = std::move(r.label);
          run.stats = std::move(r.stats);
        } else {
          auto r = algo::run_cc(prep.dist, prep.sync, topo, params, config);
          run.labels = std::move(r.label);
          run.stats = std::move(r.stats);
        }
        break;
      }
      case Benchmark::kKcore: {
        auto r = algo::run_kcore(prep.dist, prep.sync, topo, params, config,
                                 rp.kcore_k);
        run.in_core = std::move(r.in_core);
        run.stats = std::move(r.stats);
        break;
      }
      case Benchmark::kPagerank: {
        auto r = algo::run_pagerank(prep.dist, prep.sync, topo, params,
                                    config, rp.pr_alpha, rp.pr_tolerance);
        run.ranks = std::move(r.rank);
        run.stats = std::move(r.stats);
        break;
      }
      case Benchmark::kSssp: {
        auto r = algo::run_sssp(prep.dist, prep.sync, topo, params, config,
                                source);
        run.dist64 = std::move(r.dist);
        run.stats = std::move(r.stats);
        break;
      }
    }
    run.ok = true;
  } catch (const sim::OutOfDeviceMemory& oom) {
    run.ok = false;
    run.error = std::string("out of device memory: ") + oom.what();
  }
  return run;
}

}  // namespace sg::fw
