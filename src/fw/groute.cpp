#include "fw/groute.hpp"

namespace sg::fw {

BenchmarkRun Groute::run(Benchmark bench, const Prepared& prep,
                         const sim::Topology& topo,
                         const sim::CostParams& params,
                         const RunParams& rp) {
  BenchmarkRun out;
  if (topo.num_hosts() != 1) {
    out.error = "Groute supports only single-host multi-GPU platforms";
    return out;
  }
  if (prep.dist.options().policy != partition::Policy::GREEDY) {
    out.error = "Groute uses METIS-style edge-cut partitioning";
    return out;
  }
  if (!supports(bench)) {
    out.error = "benchmark not provided by Groute";
    return out;
  }
  return dispatch(bench, prep, topo, params, config(), rp,
                  CcFlavor::kPointerJump, BfsFlavor::kPush);
}

}  // namespace sg::fw
