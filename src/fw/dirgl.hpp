#pragma once

#include "fw/benchmark.hpp"

namespace sg::fw {

/// D-IrGL facade: the paper's primary system (Gluon + IrGL). Supports
/// all five benchmarks, all partitioning policies, and the four
/// optimization variants of Section IV-C.
class DIrGL {
 public:
  /// Engine configuration for a named variant (Var1..Var4).
  [[nodiscard]] static engine::EngineConfig config(engine::Variant v) {
    return engine::make_variant(v);
  }

  /// Default configuration: ALB + UO + Async (Var4).
  [[nodiscard]] static engine::EngineConfig default_config() {
    return engine::make_variant(engine::Variant::kVar4);
  }

  /// Runs `bench` on a prepared partition. D-IrGL uses data-driven push
  /// implementations for bfs/cc/kcore/sssp and the topology-driven
  /// pull-residual pagerank.
  [[nodiscard]] static BenchmarkRun run(Benchmark bench,
                                        const Prepared& prep,
                                        const sim::Topology& topo,
                                        const sim::CostParams& params,
                                        const engine::EngineConfig& config,
                                        const RunParams& rp = {}) {
    return dispatch(bench, prep, topo, params, config, rp);
  }
};

}  // namespace sg::fw
