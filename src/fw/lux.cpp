#include "fw/lux.hpp"

#include "algo/pagerank.hpp"
#include "algo/results.hpp"
#include "sim/device_memory.hpp"

namespace sg::fw {

BenchmarkRun Lux::run(Benchmark bench, const Prepared& prep,
                      const sim::Topology& topo,
                      const sim::CostParams& params, const RunParams& rp) {
  BenchmarkRun out;
  if (prep.dist.options().policy != partition::Policy::IEC) {
    out.error = "Lux supports only IEC partitioning";
    return out;
  }
  if (!supports(bench)) {
    out.error = std::string(to_string(bench)) +
                " is incorrect or not available in Lux";
    return out;
  }
  engine::EngineConfig cfg = config(topo);
  if (bench == Benchmark::kPagerank) {
    cfg.fixed_rounds = rp.lux_pr_rounds;
    try {
      auto r = algo::run_pagerank_lux(prep.dist, prep.sync, topo, params,
                                      cfg, rp.pr_alpha);
      out.ranks = std::move(r.rank);
      out.stats = std::move(r.stats);
      out.ok = true;
    } catch (const sim::OutOfDeviceMemory& oom) {
      out.error = std::string("out of device memory: ") + oom.what();
    }
    return out;
  }
  return dispatch(bench, prep, topo, params, cfg, rp);
}

}  // namespace sg::fw
