#include "graph/io.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sg::graph {

namespace {
constexpr std::array<char, 4> kMagic = {'S', 'G', 'B', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("read_binary: truncated file");
  return value;
}

template <typename T>
void write_vec(std::ofstream& out, std::span<const T> v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::ifstream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw std::runtime_error("read_binary: truncated array");
  return v;
}
}  // namespace

void write_edge_list(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list: cannot open " +
                                     path.string());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (EdgeId e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      out << v << ' ' << g.edge_dst(e);
      if (g.has_weights()) out << ' ' << g.edge_weight(e);
      out << '\n';
    }
  }
}

Csr read_edge_list(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list: cannot open " +
                                    path.string());
  std::vector<Edge> edges;
  bool weighted = false;
  bool first_data_line = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    Edge e;
    if (!(ss >> e.src >> e.dst)) {
      throw std::runtime_error("read_edge_list: malformed line: " + line);
    }
    Weight w;
    if (ss >> w) {
      e.weight = w;
      if (first_data_line) weighted = true;
    }
    first_data_line = false;
    edges.push_back(e);
  }
  return build_csr(std::move(edges), 0, weighted);
}

void write_binary(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_binary: cannot open " +
                                     path.string());
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  write_vec(out, g.offsets());
  write_vec(out, g.dsts());
  write_vec(out, g.edge_weights());
}

Csr read_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_binary: cannot open " +
                                    path.string());
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("read_binary: bad magic in " + path.string());
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("read_binary: unsupported version");
  }
  auto offsets = read_vec<EdgeId>(in);
  auto dsts = read_vec<VertexId>(in);
  auto weights = read_vec<Weight>(in);
  return Csr{std::move(offsets), std::move(dsts), std::move(weights)};
}

}  // namespace sg::graph
