#pragma once

#include <filesystem>
#include <string>

#include "graph/csr.hpp"

namespace sg::graph {

/// Writes `g` as whitespace-separated "src dst [weight]" lines.
void write_edge_list(const Csr& g, const std::filesystem::path& path);

/// Reads an edge-list file (comments starting with '#' or '%' skipped).
/// Weighted when a third column is present on the first data line.
[[nodiscard]] Csr read_edge_list(const std::filesystem::path& path);

/// Binary CSR container ("SGBG" magic, version 1, little-endian):
/// offsets, destinations, and optional weights, written verbatim. This is
/// the "partition once, load the in-memory representation directly"
/// workflow the paper describes for production use.
void write_binary(const Csr& g, const std::filesystem::path& path);
[[nodiscard]] Csr read_binary(const std::filesystem::path& path);

}  // namespace sg::graph
