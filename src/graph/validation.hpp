#pragma once

#include <string>

#include "graph/csr.hpp"

namespace sg::graph {

/// Result of structural validation; `ok()` or a human-readable reason.
struct ValidationReport {
  bool valid = true;
  std::string reason;

  [[nodiscard]] explicit operator bool() const { return valid; }

  static ValidationReport failure(std::string why) {
    return {false, std::move(why)};
  }
};

/// Checks the CSR's structural invariants:
///  * offsets are monotone and sized V+1, with offsets[0] == 0;
///  * every destination id is in range;
///  * weights, when present, match the edge count;
///  * adjacency lists are sorted by destination (the build_csr
///    postcondition the binary loaders rely on);
///  * optionally, no self loops and no duplicate edges.
[[nodiscard]] ValidationReport validate(const Csr& g,
                                        bool require_sorted = true,
                                        bool forbid_self_loops = false,
                                        bool forbid_duplicates = false);

}  // namespace sg::graph
