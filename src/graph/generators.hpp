#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sg::graph {

/// R-MAT recursive-matrix generator (Chakrabarti et al.) with the
/// standard Graph500 quadrant probabilities and +/-10% per-level noise.
/// Produces 2^scale vertices and ~edge_factor * 2^scale edges (after
/// dedup and self-loop removal the count can be slightly lower).
struct RmatParams {
  int scale = 14;
  int edge_factor = 16;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 1;
};
[[nodiscard]] Csr rmat(const RmatParams& params);

/// Knob-driven synthetic generator for the paper's real-world inputs.
///
/// Structural knobs and the phenomena they drive (see DESIGN.md):
///  * zipf_out / zipf_in    - power-law degree skew (load imbalance).
///  * hub_out_frac          - one vertex with out-degree = frac*V
///                            (twitter-style celebrity; bfs/sssp source).
///  * hub_in_frac           - one vertex with in-degree = frac*V
///                            (web-crawl mega-page; drives the ALB-vs-TWC
///                            gap on pull-style pagerank).
///  * communities           - locality blocks arranged in a chain; most
///                            edges stay local, a few cross to adjacent
///                            blocks, raising the diameter to
///                            O(communities).
///  * tail_length           - an appended bidirectional path (web-crawl
///                            long tail; drives BASP's redundant rounds).
struct SyntheticSpec {
  VertexId vertices = 1 << 14;
  EdgeId edges = 1 << 18;
  double zipf_out = 0.6;
  double zipf_in = 0.6;
  double hub_out_frac = 0.0;
  double hub_in_frac = 0.0;
  std::uint32_t communities = 1;
  std::uint32_t tail_length = 0;
  bool symmetric = false;  ///< add the reverse of every edge (social nets)
  std::uint64_t seed = 1;
};
[[nodiscard]] Csr synthetic(const SyntheticSpec& spec);

// Small deterministic shapes for unit tests and examples.
[[nodiscard]] Csr path_graph(VertexId n, bool bidirectional = true);
[[nodiscard]] Csr cycle_graph(VertexId n);
[[nodiscard]] Csr star_graph(VertexId leaves, bool out = true);
[[nodiscard]] Csr complete_graph(VertexId n);
[[nodiscard]] Csr grid_graph(VertexId rows, VertexId cols);
[[nodiscard]] Csr erdos_renyi(VertexId n, double p, std::uint64_t seed);

}  // namespace sg::graph
