#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace sg::graph {

/// Structural summary of a graph — the columns of the paper's Table I.
struct GraphProperties {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0.0;        ///< |E| / |V|
  EdgeId max_out_degree = 0;
  EdgeId max_in_degree = 0;
  std::uint32_t approx_diameter = 0;
  std::uint64_t size_bytes = 0;   ///< CSR footprint incl. weights
};

/// Computes degree statistics and an approximate diameter.
///
/// Diameter is estimated with the standard double-sweep heuristic on the
/// underlying undirected graph: BFS from the max-out-degree vertex, then
/// BFS again from the farthest vertex found; the second eccentricity is
/// the estimate (a lower bound on the true diameter).
[[nodiscard]] GraphProperties analyze(const Csr& g);

/// "8.3M"-style human format used in Table I output.
[[nodiscard]] std::string human_count(std::uint64_t x);

}  // namespace sg::graph
