#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sim/rng.hpp"

namespace sg::graph {

Csr::Csr(std::vector<EdgeId> offsets, std::vector<VertexId> dsts,
         std::vector<Weight> weights)
    : offsets_(std::move(offsets)),
      dsts_(std::move(dsts)),
      weights_(std::move(weights)) {
  if (offsets_.empty()) {
    throw std::invalid_argument("Csr: offsets must have size V+1 >= 1");
  }
  if (offsets_.back() != dsts_.size()) {
    throw std::invalid_argument("Csr: offsets.back() != dsts.size()");
  }
  if (!weights_.empty() && weights_.size() != dsts_.size()) {
    throw std::invalid_argument("Csr: weights/dsts size mismatch");
  }
}

Csr Csr::transpose() const {
  const VertexId n = num_vertices();
  std::vector<EdgeId> in_deg(n + 1, 0);
  for (VertexId d : dsts_) ++in_deg[d + 1];
  std::vector<EdgeId> offs(n + 1);
  std::partial_sum(in_deg.begin(), in_deg.end(), offs.begin());
  std::vector<VertexId> srcs(num_edges());
  std::vector<Weight> w(has_weights() ? num_edges() : 0);
  std::vector<EdgeId> cursor(offs.begin(), offs.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeId e = offsets_[u]; e < offsets_[u + 1]; ++e) {
      const EdgeId slot = cursor[dsts_[e]]++;
      srcs[slot] = u;
      if (!w.empty()) w[slot] = weights_[e];
    }
  }
  return Csr{std::move(offs), std::move(srcs), std::move(w)};
}

std::vector<EdgeId> Csr::out_degrees() const {
  const VertexId n = num_vertices();
  std::vector<EdgeId> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = degree(v);
  return deg;
}

std::uint64_t Csr::bytes() const {
  return offsets_.size() * sizeof(EdgeId) + dsts_.size() * sizeof(VertexId) +
         weights_.size() * sizeof(Weight);
}

Csr build_csr(std::vector<Edge> edges, VertexId num_vertices, bool weighted,
              bool dedup) {
  VertexId n = num_vertices;
  if (n == 0) {
    for (const Edge& e : edges) {
      n = std::max({n, e.src + 1, e.dst + 1});
    }
  }
  // Counting sort by source.
  std::vector<EdgeId> counts(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    if (e.src >= n || e.dst >= n) {
      throw std::invalid_argument("build_csr: endpoint out of range");
    }
    ++counts[e.src + 1];
  }
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1);
  std::partial_sum(counts.begin(), counts.end(), offsets.begin());

  std::vector<VertexId> dsts(edges.size());
  std::vector<Weight> weights(weighted ? edges.size() : 0);
  {
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) {
      const EdgeId slot = cursor[e.src]++;
      dsts[slot] = e.dst;
      if (weighted) weights[slot] = e.weight;
    }
  }
  edges.clear();
  edges.shrink_to_fit();

  // Sort each adjacency list by destination (weights follow).
  std::vector<EdgeId> new_offsets(offsets.size());
  new_offsets[0] = 0;
  std::vector<VertexId> out_dsts;
  std::vector<Weight> out_w;
  out_dsts.reserve(dsts.size());
  if (weighted) out_w.reserve(dsts.size());
  std::vector<std::pair<VertexId, Weight>> row;
  for (VertexId v = 0; v < n; ++v) {
    row.clear();
    for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
      row.emplace_back(dsts[e], weighted ? weights[e] : Weight{1});
    }
    std::sort(row.begin(), row.end());
    if (dedup) {
      // Keep the minimum-weight copy of each parallel edge.
      auto last = std::unique(
          row.begin(), row.end(),
          [](const auto& a, const auto& b) { return a.first == b.first; });
      row.erase(last, row.end());
    }
    for (const auto& [d, w] : row) {
      out_dsts.push_back(d);
      if (weighted) out_w.push_back(w);
    }
    new_offsets[v + 1] = out_dsts.size();
  }
  return Csr{std::move(new_offsets), std::move(out_dsts), std::move(out_w)};
}

Csr add_random_weights(const Csr& g, Weight lo, Weight hi,
                       std::uint64_t seed) {
  if (lo > hi) throw std::invalid_argument("add_random_weights: lo > hi");
  sim::Rng rng{seed};
  std::vector<Weight> w(g.num_edges());
  for (auto& x : w) x = rng.range(lo, hi);
  return Csr{{g.offsets().begin(), g.offsets().end()},
             {g.dsts().begin(), g.dsts().end()},
             std::move(w)};
}

Csr add_symmetric_weights(const Csr& g, Weight lo, Weight hi,
                          std::uint64_t seed) {
  if (lo > hi) throw std::invalid_argument("add_symmetric_weights: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  std::vector<Weight> w(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId e = g.offsets()[u]; e < g.offsets()[u + 1]; ++e) {
      const VertexId v = g.dsts()[e];
      const std::uint64_t a = std::min(u, v);
      const std::uint64_t b = std::max(u, v);
      // splitmix64-style scramble of (seed, min, max): both directions
      // of an undirected pair land on the same weight.
      std::uint64_t x = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                        (b * 0xbf58476d1ce4e5b9ULL);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      x ^= x >> 31;
      w[e] = static_cast<Weight>(lo + static_cast<Weight>(x % span));
    }
  }
  return Csr{{g.offsets().begin(), g.offsets().end()},
             {g.dsts().begin(), g.dsts().end()},
             std::move(w)};
}

bool weakly_connected(const Csr& g) {
  const VertexId n = g.num_vertices();
  if (n == 0) return true;
  const Csr rev = g.transpose();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<VertexId> stack{0};
  seen[0] = 1;
  VertexId visited = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    auto push = [&](VertexId u) {
      if (!seen[u]) {
        seen[u] = 1;
        ++visited;
        stack.push_back(u);
      }
    };
    for (VertexId u : g.neighbors(v)) push(u);
    for (VertexId u : rev.neighbors(v)) push(u);
  }
  return visited == n;
}

}  // namespace sg::graph
