#pragma once

#include <cstdint>

namespace sg::graph {

/// Global vertex identifier. All paper inputs (scaled) fit in 32 bits.
using VertexId = std::uint32_t;
/// Edge index / edge count type.
using EdgeId = std::uint64_t;
/// Edge weight (randomized integer weights, as in the paper's setup).
using Weight = std::uint32_t;

/// A directed, optionally weighted edge used during graph construction.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 1;

  friend bool operator==(const Edge&, const Edge&) = default;
};

constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

}  // namespace sg::graph
