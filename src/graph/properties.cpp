#include "graph/properties.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace sg::graph {

namespace {

/// Undirected BFS; returns (farthest vertex, eccentricity).
std::pair<VertexId, std::uint32_t> bfs_ecc(const Csr& g, const Csr& rev,
                                           VertexId source) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> dist(n, 0xFFFFFFFFu);
  std::vector<VertexId> frontier{source}, next;
  dist[source] = 0;
  std::uint32_t level = 0;
  VertexId farthest = source;
  while (!frontier.empty()) {
    next.clear();
    for (VertexId v : frontier) {
      auto relax = [&](VertexId u) {
        if (dist[u] == 0xFFFFFFFFu) {
          dist[u] = level + 1;
          next.push_back(u);
          farthest = u;
        }
      };
      for (VertexId u : g.neighbors(v)) relax(u);
      for (VertexId u : rev.neighbors(v)) relax(u);
    }
    if (!next.empty()) ++level;
    std::swap(frontier, next);
  }
  return {farthest, level};
}

}  // namespace

GraphProperties analyze(const Csr& g) {
  GraphProperties p;
  p.num_vertices = g.num_vertices();
  p.num_edges = g.num_edges();
  p.avg_degree = p.num_vertices == 0
                     ? 0.0
                     : static_cast<double>(p.num_edges) /
                           static_cast<double>(p.num_vertices);
  p.size_bytes = g.bytes();

  const Csr rev = g.transpose();
  VertexId max_out_v = 0;
  for (VertexId v = 0; v < p.num_vertices; ++v) {
    if (g.degree(v) > p.max_out_degree) {
      p.max_out_degree = g.degree(v);
      max_out_v = v;
    }
    p.max_in_degree = std::max(p.max_in_degree, rev.degree(v));
  }

  if (p.num_vertices > 0) {
    const auto [far, ecc1] = bfs_ecc(g, rev, max_out_v);
    const auto [far2, ecc2] = bfs_ecc(g, rev, far);
    (void)far2;
    p.approx_diameter = std::max(ecc1, ecc2);
  }
  return p;
}

std::string human_count(std::uint64_t x) {
  char buf[32];
  if (x >= 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof buf, "%.1fB",
                  static_cast<double>(x) / 1e9);
  } else if (x >= 1000ull * 1000) {
    std::snprintf(buf, sizeof buf, "%.1fM",
                  static_cast<double>(x) / 1e6);
  } else if (x >= 1000) {
    std::snprintf(buf, sizeof buf, "%.1fK",
                  static_cast<double>(x) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(x));
  }
  return buf;
}

}  // namespace sg::graph
