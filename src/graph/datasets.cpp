#include "graph/datasets.hpp"

#include <stdexcept>

#include "graph/generators.hpp"

namespace sg::graph::datasets {

const char* to_string(Category c) {
  switch (c) {
    case Category::kSmall: return "small";
    case Category::kMedium: return "medium";
    case Category::kLarge: return "large";
  }
  return "?";
}

const std::vector<DatasetInfo>& registry() {
  // Paper Table I values; edge_scale documents the size reduction of the
  // analogue relative to the real input.
  static const std::vector<DatasetInfo> datasets = {
      {"rmat23", Category::kSmall, 8'300'000, 134'000'000, 35'000, 9'776, 3,
       1.1, 134e6 / 262e3},
      {"orkut", Category::kSmall, 3'100'000, 234'000'000, 33'313, 33'313, 6,
       1.8, 234e6 / 420e3},
      {"indochina04", Category::kSmall, 7'400'000, 194'000'000, 6'985,
       256'425, 30, 1.6, 194e6 / 416e3},
      {"twitter50", Category::kMedium, 51'000'000, 1'963'000'000, 779'958,
       3'500'000, 12, 16.0, 1963e6 / 988e3},
      {"friendster", Category::kMedium, 66'000'000, 1'806'000'000, 5'214,
       5'214, 21, 28.0, 1806e6 / 1680e3},
      {"uk07", Category::kMedium, 106'000'000, 3'739'000'000, 15'402,
       975'418, 115, 29.0, 3739e6 / 1680e3},
      {"clueweb12", Category::kLarge, 978'000'000, 42'574'000'000, 7'447,
       75'000'000, 501, 325.0, 42574e6 / 3915e3},
      {"uk14", Category::kLarge, 788'000'000, 47'615'000'000, 16'365,
       8'600'000, 2498, 361.0, 47615e6 / 4200e3},
      {"wdc14", Category::kLarge, 1'725'000'000, 64'423'000'000, 32'848,
       46'000'000, 789, 493.0, 64423e6 / 5180e3},
  };
  return datasets;
}

const DatasetInfo& info(const std::string& name) {
  for (const auto& d : registry()) {
    if (d.name == name) return d;
  }
  throw std::out_of_range("datasets::info: unknown dataset '" + name + "'");
}

Csr make(const std::string& name, std::uint64_t seed) {
  // Knob choices are documented in DESIGN.md: densities |E|/|V| match the
  // paper; max-degree fractions, diameters (scaled), and symmetry follow
  // each real input's character.
  if (name == "rmat23") {
    RmatParams p;
    p.scale = 14;          // 16384 vertices
    p.edge_factor = 16;    // ~262k edges, density 16 as in the paper
    p.seed = seed;
    return rmat(p);
  }
  SyntheticSpec s;
  s.seed = seed;
  if (name == "orkut") {
    // Social network, symmetric, density 76, low diameter, equal max
    // in/out degree.
    s.vertices = 5'600;
    s.edges = 210'000;  // doubled by symmetric => ~420k
    s.zipf_out = s.zipf_in = 0.78;
    s.symmetric = true;
    s.communities = 1;
  } else if (name == "indochina04") {
    // Web crawl: density 26, big max-in-degree (3.5% of V), moderate
    // diameter from a short community chain.
    s.vertices = 16'000;
    s.edges = 416'000;
    s.zipf_out = 0.55;
    s.zipf_in = 0.85;
    s.hub_in_frac = 0.035;
    s.communities = 12;
  } else if (name == "twitter50") {
    // Social: celebrity hub with out-degree 1.5% of V and in-degree hub
    // 6.9% of V; low diameter.
    s.vertices = 26'000;
    s.edges = 988'000;
    s.zipf_out = 0.50;
    s.zipf_in = 0.55;
    s.hub_out_frac = 0.0153;
    s.hub_in_frac = 0.069;
    s.communities = 4;
  } else if (name == "friendster") {
    // Social, symmetric, mild skew (max degree only 5214 in the paper),
    // diameter ~21.
    s.vertices = 60'000;
    s.edges = 840'000;  // doubled => ~1.68M
    s.zipf_out = s.zipf_in = 0.45;
    s.symmetric = true;
    s.communities = 8;
  } else if (name == "uk07") {
    // Web crawl: diameter 115 (scaled ~60), max in-degree ~0.9% of V.
    s.vertices = 48'000;
    s.edges = 1'680'000;
    s.zipf_out = 0.55;
    s.zipf_in = 0.85;
    s.hub_in_frac = 0.0092;
    s.communities = 40;
    s.tail_length = 20;
  } else if (name == "clueweb12") {
    // Web crawl: huge max in-degree (7.7% of V) — the ALB-vs-TWC driver
    // for pull-style pagerank; high diameter.
    s.vertices = 90'000;
    s.edges = 3'915'000;
    s.zipf_out = 0.55;
    s.zipf_in = 0.90;
    s.hub_in_frac = 0.077;
    s.communities = 70;
    s.tail_length = 60;
  } else if (name == "uk14") {
    // Web crawl with the longest tail (paper diameter 2498, scaled
    // ~400) — the input where BASP loses to BSP on bfs.
    s.vertices = 70'000;
    s.edges = 4'200'000;
    s.zipf_out = 0.55;
    s.zipf_in = 0.85;
    s.hub_in_frac = 0.011;
    s.communities = 90;
    s.tail_length = 300;
  } else if (name == "wdc14") {
    // Largest input; diameter 789 (scaled ~180), max in-degree 2.7% of V.
    s.vertices = 140'000;
    s.edges = 5'180'000;
    s.zipf_out = 0.55;
    s.zipf_in = 0.88;
    s.hub_in_frac = 0.027;
    s.communities = 60;
    s.tail_length = 100;
  } else {
    throw std::out_of_range("datasets::make: unknown dataset '" + name +
                            "'");
  }
  return synthetic(s);
}

Csr make_weighted(const std::string& name, std::uint64_t seed) {
  return add_random_weights(make(name, seed), 1, 100, seed ^ 0x9e3779b9ULL);
}

std::vector<std::string> names(Category c) {
  std::vector<std::string> out;
  for (const auto& d : registry()) {
    if (d.category == c) out.push_back(d.name);
  }
  return out;
}

VertexId default_source(const Csr& g) {
  VertexId best = 0;
  EdgeId best_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > best_deg) {
      best_deg = g.degree(v);
      best = v;
    }
  }
  return best;
}

}  // namespace sg::graph::datasets
