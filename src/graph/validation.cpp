#include "graph/validation.hpp"

namespace sg::graph {

ValidationReport validate(const Csr& g, bool require_sorted,
                          bool forbid_self_loops, bool forbid_duplicates) {
  const VertexId n = g.num_vertices();
  const auto offsets = g.offsets();
  if (offsets.empty()) {
    return ValidationReport::failure("offsets empty (need V+1 entries)");
  }
  if (offsets[0] != 0) {
    return ValidationReport::failure("offsets[0] != 0");
  }
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      return ValidationReport::failure(
          "offsets not monotone at vertex " + std::to_string(v));
    }
  }
  if (offsets[n] != g.dsts().size()) {
    return ValidationReport::failure("offsets.back() != |dsts|");
  }
  if (g.has_weights() && g.edge_weights().size() != g.dsts().size()) {
    return ValidationReport::failure("weights/dsts size mismatch");
  }
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) {
        return ValidationReport::failure(
            "destination out of range at vertex " + std::to_string(v));
      }
      if (forbid_self_loops && nbrs[i] == v) {
        return ValidationReport::failure("self loop at vertex " +
                                         std::to_string(v));
      }
      if (i > 0) {
        if (require_sorted && nbrs[i] < nbrs[i - 1]) {
          return ValidationReport::failure(
              "adjacency not sorted at vertex " + std::to_string(v));
        }
        if (forbid_duplicates && nbrs[i] == nbrs[i - 1]) {
          return ValidationReport::failure(
              "duplicate edge at vertex " + std::to_string(v));
        }
      }
    }
  }
  return {};
}

}  // namespace sg::graph
