#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/properties.hpp"

namespace sg::graph::datasets {

/// Size class, matching the paper's use of each input.
enum class Category {
  kSmall,   ///< single-host multi-GPU experiments (Tuxedo, <= 6 GPUs)
  kMedium,  ///< multi-host experiments up to 64 GPUs
  kLarge,   ///< 64-GPU breakdowns only
};

[[nodiscard]] const char* to_string(Category c);

/// Registry entry: the paper's measured properties of the real input and
/// the parameters of our scaled synthetic analogue.
struct DatasetInfo {
  std::string name;          ///< e.g. "uk14" (analogue of uk-2014)
  Category category;
  // Paper (Table I) values of the real dataset.
  std::uint64_t paper_vertices;
  std::uint64_t paper_edges;
  std::uint64_t paper_max_dout;
  std::uint64_t paper_max_din;
  std::uint32_t paper_diameter;
  double paper_size_gb;
  // Analogue scale: paper_edges / (analogue edges), approximately.
  double edge_scale;
};

/// All nine inputs in Table I order.
[[nodiscard]] const std::vector<DatasetInfo>& registry();

/// Info for one dataset; throws std::out_of_range for unknown names.
[[nodiscard]] const DatasetInfo& info(const std::string& name);

/// Builds the scaled synthetic analogue (unweighted). Deterministic for
/// a fixed seed.
[[nodiscard]] Csr make(const std::string& name, std::uint64_t seed = 42);

/// Analogue with randomized edge weights in [1, 100], the paper's setup
/// for sssp ("for all inputs, we add randomized edge-weights").
[[nodiscard]] Csr make_weighted(const std::string& name,
                                std::uint64_t seed = 42);

/// Names of all datasets in a category.
[[nodiscard]] std::vector<std::string> names(Category c);

/// The bfs/sssp source: the vertex with the highest out-degree (paper
/// section IV-C).
[[nodiscard]] VertexId default_source(const Csr& g);

}  // namespace sg::graph::datasets
