#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace sg::graph {

/// Immutable compressed-sparse-row digraph with optional edge weights.
///
/// The canonical in-memory representation throughout the library: the
/// partitioner consumes a global Csr and produces per-device local Csrs.
/// Edges of each vertex are stored sorted by destination.
class Csr {
 public:
  Csr() = default;
  Csr(std::vector<EdgeId> offsets, std::vector<VertexId> dsts,
      std::vector<Weight> weights = {});

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  [[nodiscard]] bool has_weights() const { return !weights_.empty(); }

  [[nodiscard]] EdgeId degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {dsts_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }
  [[nodiscard]] std::span<const Weight> weights(VertexId v) const {
    return {weights_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  [[nodiscard]] std::span<const EdgeId> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const VertexId> dsts() const { return dsts_; }
  [[nodiscard]] std::span<const Weight> edge_weights() const {
    return weights_;
  }
  [[nodiscard]] EdgeId edge_begin(VertexId v) const { return offsets_[v]; }
  [[nodiscard]] EdgeId edge_end(VertexId v) const { return offsets_[v + 1]; }
  [[nodiscard]] VertexId edge_dst(EdgeId e) const { return dsts_[e]; }
  [[nodiscard]] Weight edge_weight(EdgeId e) const {
    return weights_.empty() ? Weight{1} : weights_[e];
  }

  /// Reverse graph (weights carried over). O(V + E).
  [[nodiscard]] Csr transpose() const;

  /// Out-degree of every vertex.
  [[nodiscard]] std::vector<EdgeId> out_degrees() const;

  /// In-memory size in bytes (offsets + dsts + weights), i.e. what a GPU
  /// would allocate to hold this graph.
  [[nodiscard]] std::uint64_t bytes() const;

 private:
  std::vector<EdgeId> offsets_;    // size V+1
  std::vector<VertexId> dsts_;     // size E
  std::vector<Weight> weights_;    // size E or 0
};

/// Builds a Csr from an edge list. Edges are counting-sorted by source
/// (stable), then each adjacency list is sorted by destination.
/// `num_vertices` of 0 means infer as max endpoint + 1.
/// When `dedup` is set, parallel edges collapse (keeping the minimum
/// weight, the convention that preserves shortest-path results).
[[nodiscard]] Csr build_csr(std::vector<Edge> edges,
                            VertexId num_vertices = 0, bool weighted = false,
                            bool dedup = true);

/// Adds uniformly random integer weights in [lo, hi] to an unweighted
/// graph (the paper adds randomized edge weights to all inputs).
[[nodiscard]] Csr add_random_weights(const Csr& g, Weight lo, Weight hi,
                                     std::uint64_t seed);

/// Like add_random_weights, but the weight of each edge is a hash of
/// its *undirected* endpoint pair, so on a symmetric graph w(u,v) ==
/// w(v,u) and weighted distances are symmetric too. The serving
/// layer's landmark triangle bound d(s,t) <= d(l,s) + d(l,t) is only
/// sound on such graphs — per-directed-edge random weights break it
/// even when the adjacency is symmetric.
[[nodiscard]] Csr add_symmetric_weights(const Csr& g, Weight lo, Weight hi,
                                        std::uint64_t seed);

/// True iff the underlying undirected graph is connected.
[[nodiscard]] bool weakly_connected(const Csr& g);

}  // namespace sg::graph
