#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace sg::graph {

namespace {

/// Zipf-like sampler over [0, n): probability of rank r proportional to
/// 1/(r+1)^s, with ranks mapped through a seeded permutation-free stride
/// so hot vertices are spread across the id space (matching real inputs,
/// where hubs are not id 0). Uses an inverse-CDF table.
class ZipfSampler {
 public:
  ZipfSampler(VertexId n, double s, std::uint64_t stride_seed)
      : n_(n), stride_(pick_stride(n, stride_seed)) {
    cdf_.resize(n);
    double acc = 0;
    for (VertexId r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
      cdf_[r] = acc;
    }
    total_ = acc;
  }

  VertexId sample(sim::Rng& rng) const {
    const double x = rng.uniform() * total_;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    const auto rank =
        static_cast<std::uint64_t>(std::distance(cdf_.begin(), it));
    return static_cast<VertexId>((rank * stride_) % n_);
  }

 private:
  static std::uint64_t pick_stride(VertexId n, std::uint64_t seed) {
    if (n <= 2) return 1;
    sim::Rng rng{seed};
    // A stride coprime with n maps ranks to a permutation of ids.
    for (;;) {
      const std::uint64_t s = 1 + rng.bounded(n - 1);
      std::uint64_t a = s, b = n;
      while (b != 0) {
        const std::uint64_t t = a % b;
        a = b;
        b = t;
      }
      if (a == 1) return s;
    }
  }

  VertexId n_;
  std::uint64_t stride_;
  double total_ = 0;
  std::vector<double> cdf_;
};

}  // namespace

Csr rmat(const RmatParams& p) {
  if (p.scale < 1 || p.scale > 28) {
    throw std::invalid_argument("rmat: scale out of range");
  }
  const VertexId n = VertexId{1} << p.scale;
  const EdgeId m = static_cast<EdgeId>(p.edge_factor) * n;
  const double d = 1.0 - p.a - p.b - p.c;
  if (d < 0) throw std::invalid_argument("rmat: a+b+c > 1");

  sim::Rng rng{p.seed};
  std::vector<Edge> edges;
  edges.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    VertexId src = 0, dst = 0;
    for (int level = 0; level < p.scale; ++level) {
      // Noise keeps the generated graph from being exactly self-similar.
      const double noise = 0.9 + 0.2 * rng.uniform();
      const double a = p.a * noise, b = p.b * noise, c = p.c * noise;
      const double total = a + b + c + d * noise;
      const double x = rng.uniform() * total;
      const VertexId bit = VertexId{1} << (p.scale - 1 - level);
      if (x < a) {
        // top-left: nothing
      } else if (x < a + b) {
        dst |= bit;
      } else if (x < a + b + c) {
        src |= bit;
      } else {
        src |= bit;
        dst |= bit;
      }
    }
    if (src != dst) edges.push_back(Edge{src, dst});
  }
  return build_csr(std::move(edges), n);
}

Csr synthetic(const SyntheticSpec& spec) {
  if (spec.vertices < 4) {
    throw std::invalid_argument("synthetic: need >= 4 vertices");
  }
  if (spec.tail_length >= spec.vertices / 2) {
    throw std::invalid_argument("synthetic: tail too long");
  }
  sim::Rng rng{spec.seed};
  const VertexId n = spec.vertices;
  const VertexId core = n - spec.tail_length;
  const std::uint32_t ncomm = std::max<std::uint32_t>(1, spec.communities);
  const VertexId comm_size = std::max<VertexId>(2, core / ncomm);

  std::vector<Edge> edges;
  edges.reserve(spec.edges + 4ull * n);

  auto community_of = [&](VertexId v) -> std::uint32_t {
    return std::min<std::uint32_t>(v / comm_size, ncomm - 1);
  };
  auto community_range = [&](std::uint32_t c) -> std::pair<VertexId, VertexId> {
    const VertexId lo = c * comm_size;
    const VertexId hi = (c + 1 == ncomm) ? core : (c + 1) * comm_size;
    return {lo, hi};
  };

  // Hub vertices sit mid-community-0 so they are reachable early.
  const VertexId hub_out = 2;
  const VertexId hub_in = 3;
  EdgeId budget = spec.edges;

  // 1. Hub edges.
  const auto hub_out_deg =
      static_cast<EdgeId>(spec.hub_out_frac * static_cast<double>(n));
  const auto hub_in_deg =
      static_cast<EdgeId>(spec.hub_in_frac * static_cast<double>(n));
  for (EdgeId i = 0; i < hub_out_deg && budget > 0; ++i, --budget) {
    const auto dst = static_cast<VertexId>(rng.bounded(core));
    if (dst != hub_out) edges.push_back(Edge{hub_out, dst});
  }
  for (EdgeId i = 0; i < hub_in_deg && budget > 0; ++i, --budget) {
    const auto src = static_cast<VertexId>(rng.bounded(core));
    if (src != hub_in) edges.push_back(Edge{src, hub_in});
  }

  // 2. Connectivity spine: local chain within each community plus one
  //    bidirectional bridge between consecutive communities.
  for (VertexId v = 0; v + 1 < core; ++v) {
    if (community_of(v) == community_of(v + 1)) {
      edges.push_back(Edge{v, v + 1});
      edges.push_back(Edge{v + 1, v});
    }
  }
  for (std::uint32_t c = 0; c + 1 < ncomm; ++c) {
    const auto [lo, hi] = community_range(c);
    const auto [nlo, nhi] = community_range(c + 1);
    const auto a = static_cast<VertexId>(lo + rng.bounded(hi - lo));
    const auto b = static_cast<VertexId>(nlo + rng.bounded(nhi - nlo));
    edges.push_back(Edge{a, b});
    edges.push_back(Edge{b, a});
  }

  // 3. Bulk power-law edges with community locality.
  ZipfSampler out_sampler(comm_size, spec.zipf_out, spec.seed ^ 0xa5a5);
  ZipfSampler in_sampler(comm_size, spec.zipf_in, spec.seed ^ 0x5a5a);
  const EdgeId bulk = budget;
  for (EdgeId i = 0; i < bulk; ++i) {
    const auto c = static_cast<std::uint32_t>(rng.bounded(ncomm));
    const auto [lo, hi] = community_range(c);
    const VertexId width = hi - lo;
    const VertexId src =
        lo + static_cast<VertexId>(out_sampler.sample(rng) % width);
    // 90% local, 10% adjacent community, none further: web-crawl links
    // are overwhelmingly local, which is exactly why large crawls are
    // not small-world and keep a diameter proportional to the
    // community-chain length (Table I's uk/clueweb/wdc rows).
    std::uint32_t dst_comm = c;
    if (ncomm > 1 && rng.uniform() >= 0.90) {
      dst_comm = (c + 1 < ncomm && rng.chance(0.5)) ? c + 1
                 : (c > 0 ? c - 1 : std::min(c + 1, ncomm - 1));
    }
    const auto [dlo, dhi] = community_range(dst_comm);
    const VertexId dwidth = dhi - dlo;
    const VertexId dst =
        dlo + static_cast<VertexId>(in_sampler.sample(rng) % dwidth);
    if (src == dst) continue;
    edges.push_back(Edge{src, dst});
    if (spec.symmetric) edges.push_back(Edge{dst, src});
  }

  // 4. Long tail: a bidirectional path hanging off the last community.
  if (spec.tail_length > 0) {
    VertexId prev = core - 1;
    for (VertexId t = 0; t < spec.tail_length; ++t) {
      const VertexId v = core + t;
      edges.push_back(Edge{prev, v});
      edges.push_back(Edge{v, prev});
      prev = v;
    }
  }

  return build_csr(std::move(edges), n);
}

Csr path_graph(VertexId n, bool bidirectional) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) {
    edges.push_back(Edge{v, v + 1});
    if (bidirectional) edges.push_back(Edge{v + 1, v});
  }
  return build_csr(std::move(edges), n);
}

Csr cycle_graph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < n; ++v) edges.push_back(Edge{v, (v + 1) % n});
  return build_csr(std::move(edges), n);
}

Csr star_graph(VertexId leaves, bool out) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v <= leaves; ++v) {
    edges.push_back(out ? Edge{0, v} : Edge{v, 0});
  }
  return build_csr(std::move(edges), leaves + 1);
}

Csr complete_graph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) edges.push_back(Edge{u, v});
    }
  }
  return build_csr(std::move(edges), n);
}

Csr grid_graph(VertexId rows, VertexId cols) {
  std::vector<Edge> edges;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back(Edge{id(r, c), id(r, c + 1)});
        edges.push_back(Edge{id(r, c + 1), id(r, c)});
      }
      if (r + 1 < rows) {
        edges.push_back(Edge{id(r, c), id(r + 1, c)});
        edges.push_back(Edge{id(r + 1, c), id(r, c)});
      }
    }
  }
  return build_csr(std::move(edges), rows * cols);
}

Csr erdos_renyi(VertexId n, double p, std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v && rng.chance(p)) edges.push_back(Edge{u, v});
    }
  }
  return build_csr(std::move(edges), n);
}

}  // namespace sg::graph
