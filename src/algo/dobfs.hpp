#pragma once

#include <cstdint>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/seed.hpp"
#include "comm/reduction.hpp"
#include "engine/executor.hpp"

namespace sg::algo {

/// Direction-optimizing BFS (Gunrock's algorithmic advantage in Table
/// II): push rounds while the frontier is small, switching to pull
/// ("bottom-up") rounds when the frontier's edge volume passes a
/// fraction of the remaining edges, then back. Level-synchronous, so it
/// is only valid under BSP execution (the Gunrock facade enforces this).
class DirectionOptBfsProgram {
 public:
  using ReduceValue = std::uint32_t;
  using ReduceOp = comm::MinOp<std::uint32_t>;
  using BcastValue = std::uint32_t;
  using BcastOp = comm::MinOp<std::uint32_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 4;

  explicit DirectionOptBfsProgram(graph::VertexId source,
                                  double pull_threshold = 0.05)
      : source_(source), pull_threshold_(pull_threshold) {}

  [[nodiscard]] const char* name() const { return "bfs-do"; }
  /// Pull rounds read destination-side labels too, so proxies on both
  /// sides of an edge participate.
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern{.reads_src = true,
                             .reads_dst = true,
                             .writes_src = true,
                             .writes_dst = true};
  }

  struct DeviceState {
    std::vector<std::uint32_t> dist;

    template <class Ar>
    void archive(Ar& ar) {
      ar(dist);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(dist[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.dist.assign(lg.num_local, kInfDist);
    if (const auto v = resolve_seed(lg, source_)) {
      st.dist[*v] = 0;
      ctx.push(*v);
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    // Estimate frontier edge volume to pick a direction.
    std::uint64_t frontier_edges = 0;
    for (const graph::VertexId v : frontier) {
      frontier_edges += lg.out_degree(v);
    }
    const bool pull =
        frontier_edges >
        static_cast<std::uint64_t>(pull_threshold_ *
                                   static_cast<double>(lg.num_out_edges()));
    if (!pull) {
      for (const graph::VertexId v : frontier) {
        ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
        const std::uint32_t dv = st.dist[v];
        if (dv == kInfDist) continue;
        for (const graph::VertexId u : lg.out_neighbors(v)) {
          if (dv + 1 < st.dist[u]) {
            st.dist[u] = dv + 1;
            ctx.mark_dirty(u, lg.is_master(u));
            ctx.push(u);
          }
        }
      }
    } else {
      // Bottom-up: in level-synchronous BSP the frontier is uniformly at
      // one level and first discoveries are final, so unvisited vertices
      // probe in-neighbors with a genuine early exit on the first
      // frontier parent. Off-level stragglers (none in practice) fall
      // back to push relaxation for safety.
      std::uint32_t lvl = kInfDist;
      for (const graph::VertexId v : frontier) {
        lvl = std::min(lvl, st.dist[v]);
      }
      for (const graph::VertexId v : frontier) {
        if (st.dist[v] == lvl || st.dist[v] == kInfDist) continue;
        ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
        for (const graph::VertexId u : lg.out_neighbors(v)) {
          if (st.dist[v] + 1 < st.dist[u]) {
            st.dist[u] = st.dist[v] + 1;
            ctx.mark_dirty(u, lg.is_master(u));
            ctx.push(u);
          }
        }
      }
      if (lvl == kInfDist) return false;
      for (graph::VertexId v = 0; v < lg.num_local; ++v) {
        if (st.dist[v] != kInfDist) continue;
        std::uint32_t probed = 0;
        for (const graph::VertexId u : lg.in_neighbors(v)) {
          ++probed;
          if (st.dist[u] == lvl) {
            st.dist[v] = lvl + 1;
            ctx.mark_dirty(v, lg.is_master(v));
            ctx.push(v);
            break;
          }
        }
        ctx.record(probed);
      }
    }
    return false;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.dist;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);
  }

 private:
  graph::VertexId source_;
  double pull_threshold_;
};

/// Runs direction-optimizing bfs (BSP only).
[[nodiscard]] BfsResult run_bfs_direction_opt(
    const partition::DistGraph& dg, const comm::SyncStructure& sync,
    const sim::Topology& topo, const sim::CostParams& params,
    const engine::EngineConfig& config, graph::VertexId source);

}  // namespace sg::algo
