#pragma once

#include <cstdint>
#include <vector>

#include "algo/seed.hpp"
#include "algo/sssp.hpp"
#include "comm/reduction.hpp"
#include "engine/executor.hpp"

namespace sg::algo {

/// Delta-stepping single-source shortest paths: a priority-ordered
/// worklist refinement of the chaotic-relaxation SsspProgram. Each
/// device keeps distance-ordered buckets of width `delta` and relaxes
/// only its lowest non-empty bucket per local round, which drastically
/// reduces redundant relaxations on weighted graphs (Meyer & Sanders;
/// the ordered-worklist style Galois/D-IrGL use in practice).
///
/// The reduction is still monotone min, so results are exact under both
/// BSP and BASP regardless of bucket interleavings across devices.
class DeltaSsspProgram {
 public:
  using ReduceValue = std::uint64_t;
  using ReduceOp = comm::MinOp<std::uint64_t>;
  using BcastValue = std::uint64_t;
  using BcastOp = comm::MinOp<std::uint64_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 12;  // bucket bookkeeping

  DeltaSsspProgram(graph::VertexId source, std::uint64_t delta)
      : source_(source), delta_(std::max<std::uint64_t>(1, delta)) {}

  [[nodiscard]] const char* name() const { return "sssp-delta"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }

  struct DeviceState {
    std::vector<std::uint64_t> dist;
    // Buckets of (vertex, distance-at-insert); stale entries are skipped
    // lazily. `cursor` is the lowest bucket that may be non-empty.
    std::vector<std::vector<std::pair<graph::VertexId, std::uint64_t>>>
        buckets;
    std::size_t cursor = 0;
    std::uint64_t pending = 0;  // live entries across all buckets

    template <class Ar>
    void archive(Ar& ar) {
      ar(dist, buckets, cursor, pending);
    }

    // Only the distance migrates; the engine's post-recovery frontier
    // re-feed re-enqueues every finite-dist vertex via compute_round's
    // activation fold, rebuilding the buckets on the new layout.
    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(dist[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.dist.assign(lg.num_local, kInfPath);
    if (const auto v = resolve_seed(lg, source_)) {
      st.dist[*v] = 0;
      enqueue(st, *v, 0);
      ctx.push(*v);  // activity signal for the executor
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    // Fold executor activations (sync updates) into the buckets.
    for (const graph::VertexId v : frontier) {
      if (st.dist[v] != kInfPath) enqueue(st, v, st.dist[v]);
    }
    // Advance to the lowest non-empty bucket and relax it.
    while (st.cursor < st.buckets.size() &&
           st.buckets[st.cursor].empty()) {
      ++st.cursor;
    }
    if (st.cursor >= st.buckets.size()) {
      st.pending = 0;
      return false;
    }
    auto bucket = std::move(st.buckets[st.cursor]);
    st.buckets[st.cursor].clear();
    const bool weighted = !lg.out_weights.empty();
    for (const auto& [v, recorded] : bucket) {
      --st.pending;
      if (st.dist[v] != recorded) continue;  // stale entry
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
      for (graph::EdgeId e = lg.out_offsets[v]; e < lg.out_offsets[v + 1];
           ++e) {
        const graph::VertexId u = lg.out_dsts[e];
        const std::uint64_t w = weighted ? lg.out_weights[e] : 1;
        const std::uint64_t nd = st.dist[v] + w;
        if (nd < st.dist[u]) {
          st.dist[u] = nd;
          ctx.mark_dirty(u, lg.is_master(u));
          enqueue(st, u, nd);
        }
      }
    }
    return st.pending > 0;  // keep the device active while buckets remain
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.dist;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);  // folded into the buckets next round
  }

 private:
  void enqueue(DeviceState& st, graph::VertexId v,
               std::uint64_t dist) const {
    const auto b = static_cast<std::size_t>(dist / delta_);
    if (b >= st.buckets.size()) st.buckets.resize(b + 1);
    st.buckets[b].emplace_back(v, dist);
    ++st.pending;
    st.cursor = std::min(st.cursor, b);
  }

  graph::VertexId source_;
  std::uint64_t delta_;
};

/// Runs delta-stepping sssp; `delta` 0 picks a heuristic bucket width
/// (average edge weight x a small factor).
[[nodiscard]] SsspResult run_sssp_delta(const partition::DistGraph& dg,
                                        const comm::SyncStructure& sync,
                                        const sim::Topology& topo,
                                        const sim::CostParams& params,
                                        const engine::EngineConfig& config,
                                        graph::VertexId source,
                                        std::uint64_t delta = 0);

}  // namespace sg::algo
