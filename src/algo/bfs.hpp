#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algo/seed.hpp"
#include "comm/reduction.hpp"
#include "engine/executor.hpp"
#include "integrity/audit.hpp"

namespace sg::algo {

inline constexpr std::uint32_t kInfDist =
    std::numeric_limits<std::uint32_t>::max();

/// Breadth-first search: data-driven push vertex program (the D-IrGL
/// implementation style). Labels are hop distances; the reduction is
/// min, which is monotone, so BASP's stale interleavings are safe.
class BfsProgram {
 public:
  using ReduceValue = std::uint32_t;
  using ReduceOp = comm::MinOp<std::uint32_t>;
  using BcastValue = std::uint32_t;
  using BcastOp = comm::MinOp<std::uint32_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 0;

  explicit BfsProgram(graph::VertexId source) : source_(source) {}

  [[nodiscard]] const char* name() const { return "bfs"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }

  struct DeviceState {
    std::vector<std::uint32_t> dist;

    template <class Ar>
    void archive(Ar& ar) {
      ar(dist);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(dist[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.dist.assign(lg.num_local, kInfDist);
    if (const auto v = resolve_seed(lg, source_)) {
      st.dist[*v] = 0;
      ctx.push(*v);
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    for (const graph::VertexId v : frontier) {
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
      const std::uint32_t dv = st.dist[v];
      if (dv == kInfDist) continue;
      for (const graph::VertexId u : lg.out_neighbors(v)) {
        if (dv + 1 < st.dist[u]) {
          st.dist[u] = dv + 1;
          ctx.mark_dirty(u, lg.is_master(u));
          ctx.push(u);
        }
      }
    }
    return false;  // data-driven: activity is carried by the frontier
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.dist;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);
  }

  /// ABFT invariant, per audited boundary (integrity auditor,
  /// DESIGN.md §13). Sound mid-run: relaxation only ever writes
  /// source-anchored hop counts, so a zero distance anywhere but the
  /// source can only come from a bit flip.
  [[nodiscard]] std::string audit_device(const partition::LocalGraph& lg,
                                         const DeviceState& st) const {
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      if (st.dist[v] == 0 && lg.l2g[v] != source_) {
        return "bfs: dist 0 at non-source vertex " +
               std::to_string(lg.l2g[v]);
      }
    }
    return {};
  }

  /// Complete fixed-point certificate, run once at the final audit: one
  /// global relaxation sweep over every edge must reproduce the master
  /// distances exactly (dist[source] = 0; elsewhere dist[v] = min over
  /// in-edges of dist[u] + 1, unreachable stays kInfDist). A converged
  /// clean run satisfies this identically; any surviving wrong-low or
  /// wrong-high corruption — even fully propagated — breaks it at the
  /// corrupted vertex or its frontier.
  [[nodiscard]] std::string audit_global(
      std::span<const partition::LocalGraph* const> lgs,
      std::span<const DeviceState* const> sts,
      const integrity::AuditPolicy&) const {
    graph::VertexId n = 0;
    for (const partition::LocalGraph* lg : lgs) {
      for (graph::VertexId v = 0; v < lg->num_local; ++v) {
        n = std::max(n, lg->l2g[v] + 1);
      }
    }
    std::vector<std::uint32_t> dist(n, kInfDist);
    for (std::size_t i = 0; i < lgs.size(); ++i) {
      for (graph::VertexId v = 0; v < lgs[i]->num_masters; ++v) {
        dist[lgs[i]->l2g[v]] = sts[i]->dist[v];
      }
    }
    std::vector<std::uint32_t> best(n, kInfDist);
    for (std::size_t i = 0; i < lgs.size(); ++i) {
      const partition::LocalGraph& lg = *lgs[i];
      for (graph::VertexId u = 0; u < lg.num_local; ++u) {
        const std::uint32_t du = dist[lg.l2g[u]];
        if (du == kInfDist) continue;
        for (const graph::VertexId w : lg.out_neighbors(u)) {
          best[lg.l2g[w]] = std::min(best[lg.l2g[w]], du + 1);
        }
      }
    }
    for (graph::VertexId v = 0; v < n; ++v) {
      if (v == source_ && dist[v] == kInfDist && best[v] == kInfDist) {
        continue;  // source not resident in this graph at all
      }
      const std::uint32_t expected = v == source_ ? 0 : best[v];
      if (dist[v] != expected) {
        return "bfs: fixed-point violation at vertex " + std::to_string(v) +
               " (dist " + std::to_string(dist[v]) + ", certificate " +
               std::to_string(expected) + ")";
      }
    }
    return {};
  }

 private:
  graph::VertexId source_;
};

struct BfsResult {
  std::vector<std::uint32_t> dist;  ///< per global vertex; kInfDist if
                                    ///< unreachable
  engine::RunStats stats;
};

/// Runs distributed bfs from `source` on the partitioned graph.
[[nodiscard]] BfsResult run_bfs(const partition::DistGraph& dg,
                                const comm::SyncStructure& sync,
                                const sim::Topology& topo,
                                const sim::CostParams& params,
                                const engine::EngineConfig& config,
                                graph::VertexId source);

}  // namespace sg::algo
