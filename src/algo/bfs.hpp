#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "comm/reduction.hpp"
#include "engine/executor.hpp"

namespace sg::algo {

inline constexpr std::uint32_t kInfDist =
    std::numeric_limits<std::uint32_t>::max();

/// Breadth-first search: data-driven push vertex program (the D-IrGL
/// implementation style). Labels are hop distances; the reduction is
/// min, which is monotone, so BASP's stale interleavings are safe.
class BfsProgram {
 public:
  using ReduceValue = std::uint32_t;
  using ReduceOp = comm::MinOp<std::uint32_t>;
  using BcastValue = std::uint32_t;
  using BcastOp = comm::MinOp<std::uint32_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 0;

  explicit BfsProgram(graph::VertexId source) : source_(source) {}

  [[nodiscard]] const char* name() const { return "bfs"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }

  struct DeviceState {
    std::vector<std::uint32_t> dist;

    template <class Ar>
    void archive(Ar& ar) {
      ar(dist);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(dist[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.dist.assign(lg.num_local, kInfDist);
    const auto it = lg.g2l.find(source_);
    if (it != lg.g2l.end()) {
      st.dist[it->second] = 0;
      ctx.push(it->second);
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    for (const graph::VertexId v : frontier) {
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
      const std::uint32_t dv = st.dist[v];
      if (dv == kInfDist) continue;
      for (const graph::VertexId u : lg.out_neighbors(v)) {
        if (dv + 1 < st.dist[u]) {
          st.dist[u] = dv + 1;
          ctx.mark_dirty(u, lg.is_master(u));
          ctx.push(u);
        }
      }
    }
    return false;  // data-driven: activity is carried by the frontier
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.dist;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);
  }

 private:
  graph::VertexId source_;
};

struct BfsResult {
  std::vector<std::uint32_t> dist;  ///< per global vertex; kInfDist if
                                    ///< unreachable
  engine::RunStats stats;
};

/// Runs distributed bfs from `source` on the partitioned graph.
[[nodiscard]] BfsResult run_bfs(const partition::DistGraph& dg,
                                const comm::SyncStructure& sync,
                                const sim::Topology& topo,
                                const sim::CostParams& params,
                                const engine::EngineConfig& config,
                                graph::VertexId source);

}  // namespace sg::algo
