#include "algo/ppr_batch.hpp"

#include <stdexcept>
#include <string>

#include "algo/results.hpp"

namespace sg::algo {

PprBatchResult run_ppr_batch(const partition::DistGraph& dg,
                             const comm::SyncStructure& sync,
                             const sim::Topology& topo,
                             const sim::CostParams& params,
                             const engine::EngineConfig& config,
                             std::span<const graph::VertexId> seeds,
                             double alpha, double epsilon) {
  if (seeds.empty()) {
    throw std::invalid_argument("run_ppr_batch: no seeds");
  }
  if (seeds.size() > kPprBatchLanes) {
    throw std::invalid_argument(
        "run_ppr_batch: " + std::to_string(seeds.size()) +
        " seeds exceed the " + std::to_string(kPprBatchLanes) +
        "-lane batch width");
  }
  PprBatchProgram program(seeds, alpha, epsilon);
  auto result = engine::run(dg, sync, topo, params, config, program);
  const auto lanes = gather_master_values<PprBatchProgram::Lanes>(
      result.layout(dg), result.states,
      [](const PprBatchProgram::DeviceState& st, graph::VertexId v) {
        return st.mass[v];
      });
  PprBatchResult out;
  out.mass.resize(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    out.mass[i].resize(lanes.size());
    for (std::size_t v = 0; v < lanes.size(); ++v) {
      out.mass[i][v] = lanes[v].lane[i];
    }
  }
  out.stats = std::move(result.stats);
  return out;
}

}  // namespace sg::algo
