#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/reduction.hpp"
#include "engine/executor.hpp"
#include "integrity/audit.hpp"

namespace sg::algo {

/// Weakly connected components via data-driven min-label propagation
/// over both edge directions (the D-IrGL / Lux implementation style).
/// Component ids are the minimum global vertex id in the component.
class CcProgram {
 public:
  using ReduceValue = std::uint32_t;
  using ReduceOp = comm::MinOp<std::uint32_t>;
  using BcastValue = std::uint32_t;
  using BcastOp = comm::MinOp<std::uint32_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 0;

  [[nodiscard]] const char* name() const { return "cc"; }
  /// Labels are read and written at both endpoints (propagation is
  /// undirected), so every mirror takes part in both sync directions.
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern{.reads_src = true,
                             .reads_dst = true,
                             .writes_src = true,
                             .writes_dst = true};
  }

  struct DeviceState {
    std::vector<std::uint32_t> label;

    template <class Ar>
    void archive(Ar& ar) {
      ar(label);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(label[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.label.resize(lg.num_local);
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      st.label[v] = lg.l2g[v];
      ctx.push(v);
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    for (const graph::VertexId v : frontier) {
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v) +
                                            lg.in_degree(v)));
      const std::uint32_t lv = st.label[v];
      auto relax = [&](graph::VertexId u) {
        if (lv < st.label[u]) {
          st.label[u] = lv;
          ctx.mark_dirty(u, lg.is_master(u));
          ctx.push(u);
        }
      };
      for (const graph::VertexId u : lg.out_neighbors(v)) relax(u);
      for (const graph::VertexId u : lg.in_neighbors(v)) relax(u);
    }
    return false;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.label;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.label;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.label;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.label;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);
  }

  /// ABFT invariant, per audited boundary: labels start at the vertex's
  /// own global id and only ever decrease through min-relaxation with
  /// other valid ids, so label[v] > l2g[v] can only come from a bit
  /// flip. Sound mid-run. (Wrong-LOW flips look like legitimate labels
  /// locally; the replica digests catch them at the same boundary they
  /// land, before propagation — see DESIGN.md §13 on the CC gap.)
  [[nodiscard]] std::string audit_device(const partition::LocalGraph& lg,
                                         const DeviceState& st) const {
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      if (st.label[v] > lg.l2g[v]) {
        return "cc: label " + std::to_string(st.label[v]) +
               " above own id at vertex " + std::to_string(lg.l2g[v]);
      }
    }
    return {};
  }

  /// Complete certificate at the final audit: recompute the components
  /// with a host-side union-find over every edge and compare the
  /// canonical min-id labels exactly. Catches even a fully propagated
  /// wrong-low label (a labelwise-merged component), which no local
  /// fixed-point check can see.
  [[nodiscard]] std::string audit_global(
      std::span<const partition::LocalGraph* const> lgs,
      std::span<const DeviceState* const> sts,
      const integrity::AuditPolicy&) const {
    graph::VertexId n = 0;
    for (const partition::LocalGraph* lg : lgs) {
      for (graph::VertexId v = 0; v < lg->num_local; ++v) {
        n = std::max(n, lg->l2g[v] + 1);
      }
    }
    std::vector<graph::VertexId> parent(n);
    for (graph::VertexId v = 0; v < n; ++v) parent[v] = v;
    auto find = [&](graph::VertexId v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };
    for (const partition::LocalGraph* lg : lgs) {
      for (graph::VertexId u = 0; u < lg->num_local; ++u) {
        for (const graph::VertexId w : lg->out_neighbors(u)) {
          const graph::VertexId ru = find(lg->l2g[u]);
          const graph::VertexId rw = find(lg->l2g[w]);
          if (ru != rw) parent[std::max(ru, rw)] = std::min(ru, rw);
        }
      }
    }
    // With min-id union order the root IS the component's minimum id.
    for (std::size_t i = 0; i < lgs.size(); ++i) {
      for (graph::VertexId v = 0; v < lgs[i]->num_masters; ++v) {
        const std::uint32_t expected = find(lgs[i]->l2g[v]);
        if (sts[i]->label[v] != expected) {
          return "cc: label " + std::to_string(sts[i]->label[v]) +
                 " at vertex " + std::to_string(lgs[i]->l2g[v]) +
                 " (certificate " + std::to_string(expected) + ")";
        }
      }
    }
    return {};
  }
};

/// Groute-style connected components: each device collapses its local
/// partition with a union-find ("pointer jumping") pass in the first
/// round, then only exchanges component labels — an algorithmic
/// advantage over plain label propagation (Section IV-B).
class CcPointerJumpProgram {
 public:
  using ReduceValue = std::uint32_t;
  using ReduceOp = comm::MinOp<std::uint32_t>;
  using BcastValue = std::uint32_t;
  using BcastOp = comm::MinOp<std::uint32_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 8;  // DSU parent

  [[nodiscard]] const char* name() const { return "cc-pj"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern{.reads_src = true,
                             .reads_dst = true,
                             .writes_src = true,
                             .writes_dst = true};
  }

  struct DeviceState {
    std::vector<std::uint32_t> label;
    std::vector<graph::VertexId> parent;  // local DSU
    bool hooked = false;

    template <class Ar>
    void archive(Ar& ar) {
      ar(label, parent, hooked);
    }
    // No archive_vertex: the DSU parent pointers are local ids, which a
    // post-eviction rebuild renumbers; re-homing falls back to a cold
    // restart on the shrunken layout for this program.

    graph::VertexId find(graph::VertexId v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];  // path halving
        v = parent[v];
      }
      return v;
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.label.resize(lg.num_local);
    st.parent.resize(lg.num_local);
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      st.label[v] = lg.l2g[v];
      st.parent[v] = v;
    }
    if (lg.num_local > 0) ctx.push(0);  // trigger the hooking round
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    if (!st.hooked) {
      st.hooked = true;
      // Hook every local edge, then compress: one sweep collapses the
      // whole local partition.
      for (graph::VertexId v = 0; v < lg.num_local; ++v) {
        ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
        for (const graph::VertexId u : lg.out_neighbors(v)) {
          const graph::VertexId rv = st.find(v);
          const graph::VertexId ru = st.find(u);
          if (rv != ru) st.parent[std::max(rv, ru)] = std::min(rv, ru);
        }
      }
      push_component_labels(lg, st, ctx);
      return false;
    }
    // Merge rounds: fold updated proxy labels into their component root,
    // then re-distribute the root's label across the component.
    for (const graph::VertexId v : frontier) {
      const graph::VertexId r = st.find(v);
      if (st.label[v] < st.label[r]) st.label[r] = st.label[v];
      ctx.record(1);
    }
    push_component_labels(lg, st, ctx);
    return false;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.label;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.label;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.label;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.label;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);
  }

 private:
  /// Sweeps all local vertices, pulling each one's label down to its
  /// component root's label; marks changed proxies for sync.
  void push_component_labels(const partition::LocalGraph& lg,
                             DeviceState& st, engine::RoundCtx& ctx) const {
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      const graph::VertexId r = st.find(v);
      if (st.label[r] < st.label[v]) {
        st.label[v] = st.label[r];
        ctx.mark_dirty(v, lg.is_master(v));
      }
    }
  }
};

struct CcResult {
  std::vector<std::uint32_t> label;  ///< component id per global vertex
  engine::RunStats stats;
};

[[nodiscard]] CcResult run_cc(const partition::DistGraph& dg,
                              const comm::SyncStructure& sync,
                              const sim::Topology& topo,
                              const sim::CostParams& params,
                              const engine::EngineConfig& config);

/// Groute's pointer-jumping variant.
[[nodiscard]] CcResult run_cc_pointer_jump(
    const partition::DistGraph& dg, const comm::SyncStructure& sync,
    const sim::Topology& topo, const sim::CostParams& params,
    const engine::EngineConfig& config);

}  // namespace sg::algo
