#include "algo/kcore.hpp"

#include "algo/results.hpp"

namespace sg::algo {

KCoreResult run_kcore(const partition::DistGraph& dg,
                      const comm::SyncStructure& sync,
                      const sim::Topology& topo,
                      const sim::CostParams& params,
                      const engine::EngineConfig& config, std::uint32_t k) {
  KCoreProgram program(k);
  auto result = engine::run(dg, sync, topo, params, config, program);
  KCoreResult out;
  out.in_core = gather_master_values<std::uint8_t>(
      result.layout(dg), result.states,
      [](const KCoreProgram::DeviceState& st, graph::VertexId v) {
        return static_cast<std::uint8_t>(st.dead[v] == 0 ? 1 : 0);
      });
  out.stats = std::move(result.stats);
  return out;
}

}  // namespace sg::algo
