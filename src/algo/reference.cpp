#include "algo/reference.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

namespace sg::algo::reference {

using graph::Csr;
using graph::EdgeId;
using graph::VertexId;

std::vector<std::uint32_t> bfs(const Csr& g, VertexId source) {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_vertices(), kInf);
  std::vector<VertexId> frontier{source}, next;
  dist[source] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    next.clear();
    for (VertexId v : frontier) {
      for (VertexId u : g.neighbors(v)) {
        if (dist[u] == kInf) {
          dist[u] = level + 1;
          next.push_back(u);
        }
      }
    }
    ++level;
    std::swap(frontier, next);
  }
  return dist;
}

std::vector<std::uint64_t> sssp(const Csr& g, VertexId source) {
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dist(g.num_vertices(), kInf);
  using Item = std::pair<std::uint64_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    for (EdgeId e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      const VertexId u = g.edge_dst(e);
      const std::uint64_t nd = d + g.edge_weight(e);
      if (nd < dist[u]) {
        dist[u] = nd;
        heap.emplace(nd, u);
      }
    }
  }
  return dist;
}

namespace {
class Dsu {
 public:
  explicit Dsu(VertexId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  VertexId find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void merge(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<VertexId> parent_;
};
}  // namespace

std::vector<std::uint32_t> cc(const Csr& g) {
  const VertexId n = g.num_vertices();
  Dsu dsu(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.neighbors(v)) dsu.merge(v, u);
  }
  // Labels are the min vertex id in each component; with min-merging
  // DSU the root is already the minimum, but normalize via a second
  // pass for robustness.
  std::vector<std::uint32_t> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = dsu.find(v);
  for (VertexId v = 0; v < n; ++v) {
    label[v] = std::min(label[v], label[dsu.find(v)]);
  }
  return label;
}

std::vector<std::uint8_t> kcore(const Csr& g, std::uint32_t k) {
  const VertexId n = g.num_vertices();
  const Csr rev = g.transpose();
  std::vector<std::uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g.degree(v) + rev.degree(v));
  }
  std::vector<std::uint8_t> dead(n, 0);
  std::vector<VertexId> stack;
  for (VertexId v = 0; v < n; ++v) {
    if (deg[v] < k) {
      dead[v] = 1;
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    auto peel = [&](VertexId u) {
      if (dead[u]) return;
      if (--deg[u] < k) {
        dead[u] = 1;
        stack.push_back(u);
      }
    };
    for (VertexId u : g.neighbors(v)) peel(u);
    for (VertexId u : rev.neighbors(v)) peel(u);
  }
  std::vector<std::uint8_t> in_core(n);
  for (VertexId v = 0; v < n; ++v) in_core[v] = dead[v] ? 0 : 1;
  return in_core;
}

std::vector<float> pagerank(const Csr& g, float alpha, float tolerance,
                            std::uint32_t max_rounds) {
  const VertexId n = g.num_vertices();
  const Csr rev = g.transpose();
  std::vector<float> rank(n, 0.0f);
  std::vector<float> resid(n, 1.0f - alpha);
  std::vector<float> delta(n, 0.0f);
  const auto out_deg = g.out_degrees();
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    bool progress = false;
    for (VertexId v = 0; v < n; ++v) {
      if (resid[v] > tolerance) {
        delta[v] = resid[v] * alpha /
                   static_cast<float>(std::max<EdgeId>(1, out_deg[v]));
        rank[v] += resid[v];
        resid[v] = 0.0f;
        progress = true;
      } else {
        delta[v] = 0.0f;
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      float sum = 0.0f;
      for (VertexId u : rev.neighbors(v)) sum += delta[u];
      if (sum > 0.0f) {
        resid[v] += sum;
        progress = true;
      }
    }
    if (!progress) break;
  }
  return rank;
}

}  // namespace sg::algo::reference
