#include "algo/sssp_delta.hpp"

#include "algo/results.hpp"

namespace sg::algo {

SsspResult run_sssp_delta(const partition::DistGraph& dg,
                          const comm::SyncStructure& sync,
                          const sim::Topology& topo,
                          const sim::CostParams& params,
                          const engine::EngineConfig& config,
                          graph::VertexId source, std::uint64_t delta) {
  if (delta == 0) {
    // Heuristic: ~4x the average edge weight keeps buckets coarse
    // enough to batch work but fine enough to stay ordered.
    std::uint64_t total_weight = 0;
    std::uint64_t edges = 0;
    for (const auto& lg : dg.parts()) {
      for (graph::Weight w : lg.out_weights) total_weight += w;
      edges += lg.out_weights.size();
    }
    delta = edges > 0 ? std::max<std::uint64_t>(1, 4 * total_weight / edges)
                      : 4;
  }
  DeltaSsspProgram program(source, delta);
  auto result = engine::run(dg, sync, topo, params, config, program);
  SsspResult out;
  out.dist = gather_master_values<std::uint64_t>(
      result.layout(dg), result.states,
      [](const DeltaSsspProgram::DeviceState& st, graph::VertexId v) {
        return st.dist[v];
      });
  out.stats = std::move(result.stats);
  return out;
}

}  // namespace sg::algo
