#include "algo/msbfs.hpp"

#include <stdexcept>

#include "algo/results.hpp"

namespace sg::algo {

MsBfsResult run_msbfs(const partition::DistGraph& dg,
                      const comm::SyncStructure& sync,
                      const sim::Topology& topo,
                      const sim::CostParams& params,
                      const engine::EngineConfig& config,
                      std::span<const graph::VertexId> sources) {
  if (sources.empty()) {
    throw std::invalid_argument("run_msbfs: no sources");
  }
  if (sources.size() > MsBfsProgram::kMaxSources) {
    throw std::invalid_argument(
        "run_msbfs: " + std::to_string(sources.size()) +
        " sources exceed the " +
        std::to_string(MsBfsProgram::kMaxSources) + "-lane batch width");
  }
  MsBfsProgram program(sources);
  auto result = engine::run(dg, sync, topo, params, config, program);
  const auto lanes = gather_master_values<MsBfsProgram::Lanes>(
      result.layout(dg), result.states,
      [](const MsBfsProgram::DeviceState& st, graph::VertexId v) {
        return st.dist[v];
      });
  MsBfsResult out;
  out.dist.resize(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out.dist[i].resize(lanes.size());
    for (std::size_t v = 0; v < lanes.size(); ++v) {
      out.dist[i][v] = lanes[v].lane[i];
    }
  }
  out.stats = std::move(result.stats);
  return out;
}

}  // namespace sg::algo
