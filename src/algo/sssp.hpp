#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "comm/reduction.hpp"
#include "engine/executor.hpp"

namespace sg::algo {

inline constexpr std::uint64_t kInfPath =
    std::numeric_limits<std::uint64_t>::max();

/// Single-source shortest paths: data-driven push (chaotic relaxation)
/// with min reduction, as in D-IrGL. Distances are 64-bit so that long
/// weighted paths cannot overflow.
class SsspProgram {
 public:
  using ReduceValue = std::uint64_t;
  using ReduceOp = comm::MinOp<std::uint64_t>;
  using BcastValue = std::uint64_t;
  using BcastOp = comm::MinOp<std::uint64_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 0;

  explicit SsspProgram(graph::VertexId source) : source_(source) {}

  [[nodiscard]] const char* name() const { return "sssp"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }

  struct DeviceState {
    std::vector<std::uint64_t> dist;

    template <class Ar>
    void archive(Ar& ar) {
      ar(dist);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(dist[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.dist.assign(lg.num_local, kInfPath);
    const auto it = lg.g2l.find(source_);
    if (it != lg.g2l.end()) {
      st.dist[it->second] = 0;
      ctx.push(it->second);
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    const bool weighted = !lg.out_weights.empty();
    for (const graph::VertexId v : frontier) {
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
      const std::uint64_t dv = st.dist[v];
      if (dv == kInfPath) continue;
      for (graph::EdgeId e = lg.out_offsets[v]; e < lg.out_offsets[v + 1];
           ++e) {
        const graph::VertexId u = lg.out_dsts[e];
        const std::uint64_t w = weighted ? lg.out_weights[e] : 1;
        if (dv + w < st.dist[u]) {
          st.dist[u] = dv + w;
          ctx.mark_dirty(u, lg.is_master(u));
          ctx.push(u);
        }
      }
    }
    return false;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.dist;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);
  }

 private:
  graph::VertexId source_;
};

struct SsspResult {
  std::vector<std::uint64_t> dist;
  engine::RunStats stats;
};

[[nodiscard]] SsspResult run_sssp(const partition::DistGraph& dg,
                                  const comm::SyncStructure& sync,
                                  const sim::Topology& topo,
                                  const sim::CostParams& params,
                                  const engine::EngineConfig& config,
                                  graph::VertexId source);

}  // namespace sg::algo
