#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "algo/seed.hpp"
#include "comm/reduction.hpp"
#include "engine/executor.hpp"
#include "integrity/audit.hpp"

namespace sg::algo {

inline constexpr std::uint64_t kInfPath =
    std::numeric_limits<std::uint64_t>::max();

/// Single-source shortest paths: data-driven push (chaotic relaxation)
/// with min reduction, as in D-IrGL. Distances are 64-bit so that long
/// weighted paths cannot overflow.
class SsspProgram {
 public:
  using ReduceValue = std::uint64_t;
  using ReduceOp = comm::MinOp<std::uint64_t>;
  using BcastValue = std::uint64_t;
  using BcastOp = comm::MinOp<std::uint64_t>;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 0;

  explicit SsspProgram(graph::VertexId source) : source_(source) {}

  [[nodiscard]] const char* name() const { return "sssp"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }

  struct DeviceState {
    std::vector<std::uint64_t> dist;

    template <class Ar>
    void archive(Ar& ar) {
      ar(dist);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(dist[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.dist.assign(lg.num_local, kInfPath);
    if (const auto v = resolve_seed(lg, source_)) {
      st.dist[*v] = 0;
      ctx.push(*v);
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    const bool weighted = !lg.out_weights.empty();
    for (const graph::VertexId v : frontier) {
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
      const std::uint64_t dv = st.dist[v];
      if (dv == kInfPath) continue;
      for (graph::EdgeId e = lg.out_offsets[v]; e < lg.out_offsets[v + 1];
           ++e) {
        const graph::VertexId u = lg.out_dsts[e];
        const std::uint64_t w = weighted ? lg.out_weights[e] : 1;
        if (dv + w < st.dist[u]) {
          st.dist[u] = dv + w;
          ctx.mark_dirty(u, lg.is_master(u));
          ctx.push(u);
        }
      }
    }
    return false;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.dist;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);
  }

  /// ABFT invariant, per audited boundary: a zero distance anywhere but
  /// the source can only come from a bit flip (mirrors the bfs hook;
  /// see DESIGN.md §13).
  [[nodiscard]] std::string audit_device(const partition::LocalGraph& lg,
                                         const DeviceState& st) const {
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      if (st.dist[v] == 0 && lg.l2g[v] != source_) {
        return "sssp: dist 0 at non-source vertex " +
               std::to_string(lg.l2g[v]);
      }
    }
    return {};
  }

  /// Complete fixed-point certificate at the final audit: one global
  /// relaxed-triangle sweep (dist[v] = min over in-edges of
  /// dist[u] + w) must reproduce the master distances exactly.
  [[nodiscard]] std::string audit_global(
      std::span<const partition::LocalGraph* const> lgs,
      std::span<const DeviceState* const> sts,
      const integrity::AuditPolicy&) const {
    graph::VertexId n = 0;
    for (const partition::LocalGraph* lg : lgs) {
      for (graph::VertexId v = 0; v < lg->num_local; ++v) {
        n = std::max(n, lg->l2g[v] + 1);
      }
    }
    std::vector<std::uint64_t> dist(n, kInfPath);
    for (std::size_t i = 0; i < lgs.size(); ++i) {
      for (graph::VertexId v = 0; v < lgs[i]->num_masters; ++v) {
        dist[lgs[i]->l2g[v]] = sts[i]->dist[v];
      }
    }
    std::vector<std::uint64_t> best(n, kInfPath);
    for (std::size_t i = 0; i < lgs.size(); ++i) {
      const partition::LocalGraph& lg = *lgs[i];
      const bool weighted = !lg.out_weights.empty();
      for (graph::VertexId u = 0; u < lg.num_local; ++u) {
        const std::uint64_t du = dist[lg.l2g[u]];
        if (du == kInfPath) continue;
        for (graph::EdgeId e = lg.out_offsets[u]; e < lg.out_offsets[u + 1];
             ++e) {
          const graph::VertexId w = lg.out_dsts[e];
          const std::uint64_t wt = weighted ? lg.out_weights[e] : 1;
          best[lg.l2g[w]] = std::min(best[lg.l2g[w]], du + wt);
        }
      }
    }
    for (graph::VertexId v = 0; v < n; ++v) {
      if (v == source_ && dist[v] == kInfPath && best[v] == kInfPath) {
        continue;  // source not resident in this graph at all
      }
      const std::uint64_t expected = v == source_ ? 0 : best[v];
      if (dist[v] != expected) {
        return "sssp: fixed-point violation at vertex " + std::to_string(v) +
               " (dist " + std::to_string(dist[v]) + ", certificate " +
               std::to_string(expected) + ")";
      }
    }
    return {};
  }

 private:
  graph::VertexId source_;
};

struct SsspResult {
  std::vector<std::uint64_t> dist;
  engine::RunStats stats;
};

[[nodiscard]] SsspResult run_sssp(const partition::DistGraph& dg,
                                  const comm::SyncStructure& sync,
                                  const sim::Topology& topo,
                                  const sim::CostParams& params,
                                  const engine::EngineConfig& config,
                                  graph::VertexId source);

}  // namespace sg::algo
