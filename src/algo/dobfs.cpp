#include "algo/dobfs.hpp"

#include <stdexcept>

#include "algo/results.hpp"

namespace sg::algo {

BfsResult run_bfs_direction_opt(const partition::DistGraph& dg,
                                const comm::SyncStructure& sync,
                                const sim::Topology& topo,
                                const sim::CostParams& params,
                                const engine::EngineConfig& config,
                                graph::VertexId source) {
  if (config.exec_model != engine::ExecModel::kSync) {
    throw std::invalid_argument(
        "direction-optimizing bfs is level-synchronous; use Sync");
  }
  DirectionOptBfsProgram program(source);
  auto result = engine::run(dg, sync, topo, params, config, program);
  BfsResult out;
  out.dist = gather_master_values<std::uint32_t>(
      result.layout(dg), result.states,
      [](const DirectionOptBfsProgram::DeviceState& st, graph::VertexId v) {
        return st.dist[v];
      });
  out.stats = std::move(result.stats);
  return out;
}

}  // namespace sg::algo
