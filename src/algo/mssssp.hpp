#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "algo/lanes.hpp"
#include "algo/seed.hpp"
#include "algo/sssp.hpp"
#include "engine/executor.hpp"
#include "integrity/audit.hpp"

namespace sg::algo {

/// Multi-source SSSP: up to 64 weighted shortest-path instances fused
/// into one engine run, the weighted sibling of MsBfsProgram. Each lane
/// is exactly the scalar SsspProgram relaxation (dist[u] = min(dist[u],
/// dist[v] + w)); 64-bit integer min is order-independent, so the final
/// per-lane distances are bit-exact vs 64 independent SsspProgram runs
/// under both BSP and BASP.
///
/// The bit-packing story is identical to msbfs: `pending` holds one
/// 64-bit lane mask per vertex, a vertex enters the shared frontier
/// once per round regardless of how many lanes improved, and one edge
/// sweep (one recorded out-degree) relaxes every pending lane. Without
/// this the serving layer pays one full engine run per distinct sssp
/// source, which dominates its sweep budget.
class MsSsspProgram {
 public:
  static constexpr std::size_t kMaxSources = 64;
  using Lanes = LaneVec<std::uint64_t, kMaxSources>;

  using ReduceValue = Lanes;
  using ReduceOp = LaneMinOp<std::uint64_t, kMaxSources>;
  using BcastValue = Lanes;
  using BcastOp = LaneMinOp<std::uint64_t, kMaxSources>;
  static constexpr bool kDataDriven = true;
  /// The 8-byte pending lane mask rides alongside the RV/BV labels.
  static constexpr std::uint64_t kExtraBytesPerVertex = 8;

  /// `sources[i]` seeds lane i. At most kMaxSources; duplicates are
  /// legal (identical lanes).
  explicit MsSsspProgram(std::span<const graph::VertexId> sources)
      : sources_(sources.begin(), sources.end()),
        active_mask_(sources.size() >= kMaxSources
                         ? ~0ull
                         : (1ull << sources.size()) - 1) {}

  [[nodiscard]] const char* name() const { return "mssssp"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }

  struct DeviceState {
    std::vector<Lanes> dist;
    /// Bit i set: lane i of this vertex improved since its last
    /// expansion and must be relaxed over the local out-edges.
    std::vector<std::uint64_t> pending;

    template <class Ar>
    void archive(Ar& ar) {
      ar(dist, pending);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(dist[v], pending[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.dist.assign(lg.num_local, Lanes::filled(kInfPath));
    st.pending.assign(lg.num_local, 0);
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (const auto v = resolve_seed(lg, sources_[i])) {
        st.dist[*v].lane[i] = 0;
        st.pending[*v] |= 1ull << i;
        ctx.push(*v);
      }
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    const bool weighted = !lg.out_weights.empty();
    for (const graph::VertexId v : frontier) {
      const std::uint64_t mask = st.pending[v];
      st.pending[v] = 0;
      if (mask == 0) {
        ctx.record(0);
        continue;
      }
      // One recorded sweep serves every pending lane of this vertex.
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
      const Lanes& dv = st.dist[v];
      for (graph::EdgeId e = lg.out_offsets[v]; e < lg.out_offsets[v + 1];
           ++e) {
        const graph::VertexId u = lg.out_dsts[e];
        const std::uint64_t w = weighted ? lg.out_weights[e] : 1;
        Lanes& du = st.dist[u];
        std::uint64_t improved = 0;
        for (std::uint64_t m = mask; m != 0; m &= m - 1) {
          const int i = std::countr_zero(m);
          const std::uint64_t d = dv.lane[i];
          if (d != kInfPath && d + w < du.lane[i]) {
            du.lane[i] = d + w;
            improved |= 1ull << i;
          }
        }
        if (improved != 0) {
          st.pending[u] |= improved;
          ctx.mark_dirty(u, lg.is_master(u));
          ctx.push(u);
        }
      }
    }
    return false;  // data-driven: activity is carried by the frontier
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.dist;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.dist;
  }

  void on_update(const partition::LocalGraph&, DeviceState& st,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    // A sync delivered at least one improved lane, but the combine does
    // not report which; conservatively re-expand every active lane.
    // Failed relaxations are no-ops, so per-lane exactness holds.
    st.pending[v] |= active_mask_;
    ctx.push(v);
  }

  /// After a master re-home the adopted/promoted copy already holds the
  /// fold of every surviving proxy; re-expanding all lanes re-derives
  /// any relaxation the lost device had not yet shipped.
  void on_rehome(const partition::LocalGraph&, DeviceState& st,
                 graph::VertexId v, engine::RehomeRole,
                 engine::RoundCtx& ctx) const {
    st.pending[v] |= active_mask_;
    ctx.push(v);
  }

  /// ABFT invariant, per audited boundary (lane-wise version of the
  /// SsspProgram hook): distance 0 in lane i anywhere but lane i's
  /// source can only come from a bit flip.
  [[nodiscard]] std::string audit_device(const partition::LocalGraph& lg,
                                         const DeviceState& st) const {
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      for (std::size_t i = 0; i < sources_.size(); ++i) {
        if (st.dist[v].lane[i] == 0 && lg.l2g[v] != sources_[i]) {
          return "mssssp: dist 0 at non-source vertex " +
                 std::to_string(lg.l2g[v]) + " (lane " + std::to_string(i) +
                 ")";
        }
      }
    }
    return {};
  }

  [[nodiscard]] std::span<const graph::VertexId> sources() const {
    return sources_;
  }

 private:
  std::vector<graph::VertexId> sources_;
  std::uint64_t active_mask_;
};

struct MsSsspResult {
  /// dist[i][v]: weighted distance of global vertex v from sources[i]
  /// (kInfPath when unreachable). Bit-exact vs run_sssp(sources[i]).
  std::vector<std::vector<std::uint64_t>> dist;
  engine::RunStats stats;
};

/// Runs one fused engine sweep answering SSSP from every source (at
/// most MsSsspProgram::kMaxSources; throws std::invalid_argument
/// otherwise).
[[nodiscard]] MsSsspResult run_mssssp(
    const partition::DistGraph& dg, const comm::SyncStructure& sync,
    const sim::Topology& topo, const sim::CostParams& params,
    const engine::EngineConfig& config,
    std::span<const graph::VertexId> sources);

}  // namespace sg::algo
