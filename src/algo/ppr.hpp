#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algo/seed.hpp"
#include "comm/reduction.hpp"
#include "engine/executor.hpp"

namespace sg::algo {

/// Personalized PageRank by residual push (Andersen-Chung-Lang style
/// approximate PPR): a seed vertex starts with one unit of residual;
/// any vertex whose residual exceeds epsilon moves an alpha fraction
/// into its mass and spreads the rest over its out-edges. Push-style +
/// additive reduction — the fourth corner of the sync-pattern matrix
/// (bfs: push+min, cc: both+min, pagerank: pull+add, ppr: push+add).
///
/// Distributed structure mirrors PageRankPullProgram's consumed-stream
/// trick, in the push direction: only the *master* consumes residual
/// (so mass is spent exactly once), and the cumulative consumption is
/// broadcast so every proxy holding some of the vertex's out-edges
/// replays its share of the push over its local edges. Residual pushed
/// into remote vertices accumulates at mirrors and reduces with AddOp.
class PprProgram {
 public:
  using ReduceValue = double;
  using ReduceOp = comm::AddOp<double>;
  using BcastValue = double;
  using BcastOp = comm::MaxOp<double>;  // monotone cumulative counter
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 32;

  PprProgram(graph::VertexId seed, double alpha = 0.15,
             double epsilon = 1e-7)
      : seed_(seed), alpha_(alpha), eps_(epsilon) {}

  [[nodiscard]] const char* name() const { return "ppr"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }

  struct DeviceState {
    std::vector<double> mass;            ///< p (meaningful at masters)
    std::vector<double> resid;           ///< master canonical residual
    std::vector<double> accum;           ///< mirror partials (reduce src)
    std::vector<double> replay;          ///< consumed residual to push
    std::vector<double> consumed_total;  ///< master cumulative counter
    std::vector<double> consumed_cache;  ///< mirror copy
    std::vector<double> seen_total;      ///< mirror replay cursor

    template <class Ar>
    void archive(Ar& ar) {
      ar(mass, resid, accum, replay, consumed_total, consumed_cache,
         seen_total);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(mass[v], resid[v], accum[v], replay[v], consumed_total[v],
         consumed_cache[v], seen_total[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    const auto n = lg.num_local;
    st.mass.assign(n, 0.0);
    st.resid.assign(n, 0.0);
    st.accum.assign(n, 0.0);
    st.replay.assign(n, 0.0);
    st.consumed_total.assign(n, 0.0);
    st.consumed_cache.assign(n, 0.0);
    st.seen_total.assign(n, 0.0);
    if (const auto v = resolve_seed(lg, seed_)) {
      if (lg.is_master(*v)) {
        st.resid[*v] = 1.0;
      }
      ctx.push(*v);
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    for (const graph::VertexId v : frontier) {
      // Master consumption: spend residual exactly once, globally.
      if (lg.is_master(v) && st.resid[v] > eps_) {
        const double c = st.resid[v];
        st.resid[v] = 0.0;
        st.mass[v] += alpha_ * c;
        st.consumed_total[v] += c;
        st.replay[v] += c;
        ctx.mark_bcast_dirty(v);
      }
      // Replay: push this proxy's share of the consumed residual over
      // its local out-edges.
      const double r = st.replay[v];
      if (r <= 0.0) {
        ctx.record(0);
        continue;
      }
      st.replay[v] = 0.0;
      const auto gdeg = lg.global_out_degree[v];
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
      if (gdeg == 0) {
        // Dangling: the non-teleport share has nowhere to go; absorb it
        // (documented deviation shared with the reference).
        if (lg.is_master(v)) st.mass[v] += (1.0 - alpha_) * r;
        continue;
      }
      const double share = (1.0 - alpha_) * r / static_cast<double>(gdeg);
      for (const graph::VertexId u : lg.out_neighbors(v)) {
        if (lg.is_master(u)) {
          st.resid[u] += share;
          if (st.resid[u] > eps_) ctx.push(u);
        } else {
          st.accum[u] += share;
          ctx.mark_reduce_dirty(u);
        }
      }
    }
    return false;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.accum;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.resid;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.consumed_total;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.consumed_cache;
  }

  void on_update(const partition::LocalGraph& lg, DeviceState& st,
                 graph::VertexId v, engine::UpdateKind kind,
                 engine::RoundCtx& ctx) const {
    if (kind == engine::UpdateKind::kReduce) {
      // Residual arrived at the master; reactivate if above threshold.
      if (st.resid[v] > eps_) ctx.push(v);
      return;
    }
    // Broadcast: replay the master's new consumption over local edges.
    const double diff = st.consumed_cache[v] - st.seen_total[v];
    if (diff > 0.0) {
      st.seen_total[v] = st.consumed_cache[v];
      if (lg.has_out(v)) {
        st.replay[v] += diff;
        ctx.push(v);
      }
    }
  }

  /// Reconcile the monotone consumption counters after master re-homing.
  void on_rehome(const partition::LocalGraph& lg, DeviceState& st,
                 graph::VertexId v, engine::RehomeRole role,
                 engine::RoundCtx& ctx) const {
    if (role == engine::RehomeRole::kPromotedMaster) {
      st.consumed_total[v] =
          std::max(st.consumed_total[v], st.consumed_cache[v]);
      // Un-shipped mirror partials fold straight into the canonical
      // residual — this copy is the master now.
      if (st.accum[v] != 0.0) {
        st.resid[v] += st.accum[v];
        st.accum[v] = 0.0;
      }
    } else if (role == engine::RehomeRole::kAdopted && !lg.is_master(v) &&
               st.consumed_total[v] > st.consumed_cache[v]) {
      // Lost *master* copy adopted as a mirror. Unlike pagerank-pull,
      // ppr mirrors never consume residual themselves; the adopted
      // pending resid is re-consumed by the promoted master and arrives
      // back here through the broadcast replay — so the cursor stops at
      // consumed_total (not past the resid) and the inert canonical
      // residual is cleared to avoid double-counting on a later
      // promotion of this copy.
      st.consumed_cache[v] = st.consumed_total[v];
      st.seen_total[v] = st.consumed_total[v];
      st.resid[v] = 0.0;
    }
    ctx.push(v);
  }

 private:
  graph::VertexId seed_;
  double alpha_;
  double eps_;
};

struct PprResult {
  std::vector<double> mass;  ///< approximate personalized pagerank
  engine::RunStats stats;
};

[[nodiscard]] PprResult run_ppr(const partition::DistGraph& dg,
                                const comm::SyncStructure& sync,
                                const sim::Topology& topo,
                                const sim::CostParams& params,
                                const engine::EngineConfig& config,
                                graph::VertexId seed, double alpha = 0.15,
                                double epsilon = 1e-7);

namespace reference {
/// Sequential residual-push PPR with identical semantics.
[[nodiscard]] std::vector<double> ppr(const graph::Csr& g,
                                      graph::VertexId seed,
                                      double alpha = 0.15,
                                      double epsilon = 1e-7);
}  // namespace reference

}  // namespace sg::algo
