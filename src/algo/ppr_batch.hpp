#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "algo/lanes.hpp"
#include "algo/ppr.hpp"
#include "algo/seed.hpp"
#include "engine/executor.hpp"

namespace sg::algo {

/// Lanes per batched-PPR engine run.
inline constexpr std::size_t kPprBatchLanes = 16;

/// Seed-batched personalized PageRank: PprProgram's residual push with
/// every per-vertex scalar (mass / residual / mirror partials / replay
/// stream / consumed counters) generalized to a lane vector, one lane
/// per seed. The distributed structure is identical — masters consume
/// residual exactly once per lane, the cumulative per-lane consumption
/// broadcasts as a monotone (element-wise max) counter, and every
/// proxy replays its local out-edge share — but one coalesced frontier
/// and one sweep per vertex serve all 16 seeds.
///
/// Unlike msbfs, lanes are NOT bit-exact vs single-seed runs: the
/// shared frontier changes the order in which floating-point residuals
/// accumulate. Each lane still converges to the same ACL fixed point
/// (all residuals <= eps) and agrees with its single-seed run to the
/// push threshold's resolution; the serving layer's top-k answers are
/// compared under that tolerance.
class PprBatchProgram {
 public:
  using Lanes = LaneVec<double, kPprBatchLanes>;

  using ReduceValue = Lanes;
  using ReduceOp = LaneAddOp<double, kPprBatchLanes>;
  using BcastValue = Lanes;
  using BcastOp = LaneMaxOp<double, kPprBatchLanes>;
  static constexpr bool kDataDriven = true;
  /// mass + replay + consumed_cache + seen_total + pad, lane-wide
  /// (resid/accum/consumed_total are the RV/BV spans charged directly).
  static constexpr std::uint64_t kExtraBytesPerVertex = 5 * sizeof(Lanes);

  /// `seeds[i]` personalizes lane i (at most kPprBatchLanes; alpha and
  /// epsilon are shared — the scheduler only batches compatible
  /// queries).
  PprBatchProgram(std::span<const graph::VertexId> seeds,
                  double alpha = 0.15, double epsilon = 1e-7)
      : seeds_(seeds.begin(), seeds.end()), alpha_(alpha), eps_(epsilon) {}

  [[nodiscard]] const char* name() const { return "ppr-batch"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::push();
  }

  struct DeviceState {
    std::vector<Lanes> mass;            ///< p (meaningful at masters)
    std::vector<Lanes> resid;           ///< master canonical residual
    std::vector<Lanes> accum;           ///< mirror partials (reduce src)
    std::vector<Lanes> replay;          ///< consumed residual to push
    std::vector<Lanes> consumed_total;  ///< master cumulative counter
    std::vector<Lanes> consumed_cache;  ///< mirror copy
    std::vector<Lanes> seen_total;      ///< mirror replay cursor

    template <class Ar>
    void archive(Ar& ar) {
      ar(mass, resid, accum, replay, consumed_total, consumed_cache,
         seen_total);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(mass[v], resid[v], accum[v], replay[v], consumed_total[v],
         consumed_cache[v], seen_total[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    const auto n = lg.num_local;
    const Lanes zero = Lanes::filled(0.0);
    st.mass.assign(n, zero);
    st.resid.assign(n, zero);
    st.accum.assign(n, zero);
    st.replay.assign(n, zero);
    st.consumed_total.assign(n, zero);
    st.consumed_cache.assign(n, zero);
    st.seen_total.assign(n, zero);
    for (std::size_t i = 0; i < seeds_.size(); ++i) {
      if (const auto v = resolve_seed(lg, seeds_[i])) {
        if (lg.is_master(*v)) {
          st.resid[*v].lane[i] = 1.0;
        }
        ctx.push(*v);
      }
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    for (const graph::VertexId v : frontier) {
      // Master consumption: spend each lane's residual exactly once,
      // globally.
      if (lg.is_master(v)) {
        bool consumed = false;
        for (std::size_t i = 0; i < seeds_.size(); ++i) {
          if (st.resid[v].lane[i] > eps_) {
            const double c = st.resid[v].lane[i];
            st.resid[v].lane[i] = 0.0;
            st.mass[v].lane[i] += alpha_ * c;
            st.consumed_total[v].lane[i] += c;
            st.replay[v].lane[i] += c;
            consumed = true;
          }
        }
        if (consumed) ctx.mark_bcast_dirty(v);
      }
      // Replay: push this proxy's share of the consumed residual over
      // its local out-edges, all pending lanes in one sweep.
      const Lanes r = st.replay[v];
      bool any = false;
      for (std::size_t i = 0; i < seeds_.size(); ++i) {
        if (r.lane[i] > 0.0) any = true;
      }
      if (!any) {
        ctx.record(0);
        continue;
      }
      st.replay[v] = Lanes::filled(0.0);
      const auto gdeg = lg.global_out_degree[v];
      ctx.record(static_cast<std::uint32_t>(lg.out_degree(v)));
      if (gdeg == 0) {
        // Dangling: the non-teleport share has nowhere to go; absorb it
        // (documented deviation shared with the reference).
        if (lg.is_master(v)) {
          for (std::size_t i = 0; i < seeds_.size(); ++i) {
            st.mass[v].lane[i] += (1.0 - alpha_) * r.lane[i];
          }
        }
        continue;
      }
      Lanes share;
      for (std::size_t i = 0; i < seeds_.size(); ++i) {
        share.lane[i] =
            (1.0 - alpha_) * r.lane[i] / static_cast<double>(gdeg);
      }
      for (const graph::VertexId u : lg.out_neighbors(v)) {
        if (lg.is_master(u)) {
          bool activate = false;
          for (std::size_t i = 0; i < seeds_.size(); ++i) {
            if (share.lane[i] == 0.0) continue;
            st.resid[u].lane[i] += share.lane[i];
            if (st.resid[u].lane[i] > eps_) activate = true;
          }
          if (activate) ctx.push(u);
        } else {
          bool dirty = false;
          for (std::size_t i = 0; i < seeds_.size(); ++i) {
            if (share.lane[i] == 0.0) continue;
            st.accum[u].lane[i] += share.lane[i];
            dirty = true;
          }
          if (dirty) ctx.mark_reduce_dirty(u);
        }
      }
    }
    return false;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.accum;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.resid;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.consumed_total;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.consumed_cache;
  }

  void on_update(const partition::LocalGraph& lg, DeviceState& st,
                 graph::VertexId v, engine::UpdateKind kind,
                 engine::RoundCtx& ctx) const {
    if (kind == engine::UpdateKind::kReduce) {
      // Residual arrived at the master; reactivate if any lane is
      // above threshold.
      for (std::size_t i = 0; i < seeds_.size(); ++i) {
        if (st.resid[v].lane[i] > eps_) {
          ctx.push(v);
          return;
        }
      }
      return;
    }
    // Broadcast: replay the master's new per-lane consumption over
    // local edges.
    bool advanced = false;
    for (std::size_t i = 0; i < seeds_.size(); ++i) {
      const double diff =
          st.consumed_cache[v].lane[i] - st.seen_total[v].lane[i];
      if (diff > 0.0) {
        st.seen_total[v].lane[i] = st.consumed_cache[v].lane[i];
        if (lg.has_out(v)) {
          st.replay[v].lane[i] += diff;
          advanced = true;
        }
      }
    }
    if (advanced) ctx.push(v);
  }

  /// Lane-wise twin of PprProgram::on_rehome: reconcile the monotone
  /// consumption counters after master re-homing.
  void on_rehome(const partition::LocalGraph& lg, DeviceState& st,
                 graph::VertexId v, engine::RehomeRole role,
                 engine::RoundCtx& ctx) const {
    for (std::size_t i = 0; i < seeds_.size(); ++i) {
      if (role == engine::RehomeRole::kPromotedMaster) {
        st.consumed_total[v].lane[i] =
            std::max(st.consumed_total[v].lane[i],
                     st.consumed_cache[v].lane[i]);
        if (st.accum[v].lane[i] != 0.0) {
          st.resid[v].lane[i] += st.accum[v].lane[i];
          st.accum[v].lane[i] = 0.0;
        }
      } else if (role == engine::RehomeRole::kAdopted && !lg.is_master(v) &&
                 st.consumed_total[v].lane[i] >
                     st.consumed_cache[v].lane[i]) {
        st.consumed_cache[v].lane[i] = st.consumed_total[v].lane[i];
        st.seen_total[v].lane[i] = st.consumed_total[v].lane[i];
        st.resid[v].lane[i] = 0.0;
      }
    }
    ctx.push(v);
  }

  [[nodiscard]] std::span<const graph::VertexId> seeds() const {
    return seeds_;
  }

 private:
  std::vector<graph::VertexId> seeds_;
  double alpha_;
  double eps_;
};

struct PprBatchResult {
  /// mass[i][v]: approximate personalized pagerank of global vertex v
  /// for seed i.
  std::vector<std::vector<double>> mass;
  engine::RunStats stats;
};

/// Runs one fused engine sweep answering PPR for every seed (at most
/// kPprBatchLanes; throws std::invalid_argument otherwise).
[[nodiscard]] PprBatchResult run_ppr_batch(
    const partition::DistGraph& dg, const comm::SyncStructure& sync,
    const sim::Topology& topo, const sim::CostParams& params,
    const engine::EngineConfig& config,
    std::span<const graph::VertexId> seeds, double alpha = 0.15,
    double epsilon = 1e-7);

}  // namespace sg::algo
