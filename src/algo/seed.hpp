#pragma once

#include <optional>

#include "graph/types.hpp"
#include "partition/local_graph.hpp"

namespace sg::algo {

/// Resolves a program's global seed/source vertex against one device's
/// partition: the local id when any proxy of the vertex is resident
/// here, nullopt otherwise. Every seed-anchored program (bfs, dobfs,
/// sssp, sssp-delta, ppr, and the batched msbfs / ppr-batch variants)
/// funnels through this instead of carrying its own `g2l.find` copy.
[[nodiscard]] inline std::optional<graph::VertexId> resolve_seed(
    const partition::LocalGraph& lg, graph::VertexId global) {
  const auto it = lg.g2l.find(global);
  if (it == lg.g2l.end()) return std::nullopt;
  return it->second;
}

}  // namespace sg::algo
