#pragma once

#include <cstdint>
#include <vector>

#include "comm/reduction.hpp"
#include "engine/executor.hpp"

namespace sg::algo {

/// k-core decomposition (membership for a fixed k): iterative peeling of
/// vertices whose (undirected) degree falls below k, data-driven push.
///
/// Distributed structure (Gluon-style):
///  * `trim` — an AddOp-reduced accumulator of degree decrements; mirror
///    proxies collect decrements from their device's edges, the master
///    applies the total;
///  * `dead` — a monotone flag broadcast from master to mirrors; a proxy
///    that learns its vertex died pushes decrements to the neighbors on
///    *its* device (each edge lives on exactly one device, so each
///    decrement is applied exactly once).
class KCoreProgram {
 public:
  using ReduceValue = std::uint32_t;
  using ReduceOp = comm::AddOp<std::uint32_t>;
  using BcastValue = std::uint8_t;
  /// Monotone or-combine: once dead, always dead (BASP-safe).
  struct DeadOr {
    static constexpr bool reset_after_extract = false;
    [[nodiscard]] static std::uint8_t identity() { return 0; }
    static bool combine(std::uint8_t& into, std::uint8_t incoming) {
      if (incoming != 0 && into == 0) {
        into = 1;
        return true;
      }
      return false;
    }
  };
  using BcastOp = DeadOr;
  static constexpr bool kDataDriven = true;
  static constexpr std::uint64_t kExtraBytesPerVertex = 8;  // deg + flags

  explicit KCoreProgram(std::uint32_t k) : k_(k) {}

  [[nodiscard]] const char* name() const { return "kcore"; }
  /// Decrements are written at both endpoints of an edge and the dead
  /// flag is read by every proxy.
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern{.reads_src = true,
                             .reads_dst = true,
                             .writes_src = true,
                             .writes_dst = true};
  }

  struct DeviceState {
    std::vector<std::uint32_t> trim;
    std::vector<std::uint8_t> dead;
    std::vector<std::uint32_t> cur_deg;    // meaningful at masters
    std::vector<std::uint8_t> processed;   // death handled on this device

    template <class Ar>
    void archive(Ar& ar) {
      ar(trim, dead, cur_deg, processed);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(trim[v], dead[v], cur_deg[v], processed[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    const auto n = lg.num_local;
    st.trim.assign(n, 0);
    st.dead.assign(n, 0);
    st.cur_deg.resize(n);
    st.processed.assign(n, 0);
    for (graph::VertexId v = 0; v < n; ++v) {
      st.cur_deg[v] = lg.global_out_degree[v] + lg.global_in_degree[v];
      if (lg.is_master(v) && st.cur_deg[v] < k_) ctx.push(v);
    }
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId> frontier,
                     engine::RoundCtx& ctx) const {
    for (const graph::VertexId v : frontier) {
      if (lg.is_master(v) && st.dead[v] == 0) {
        if (st.trim[v] > 0) {
          st.cur_deg[v] -= std::min(st.cur_deg[v], st.trim[v]);
          st.trim[v] = 0;
        }
        if (st.cur_deg[v] < k_) {
          st.dead[v] = 1;
          ctx.mark_bcast_dirty(v);
        }
      }
      if (st.dead[v] != 0 && st.processed[v] == 0) {
        st.processed[v] = 1;
        ctx.record(static_cast<std::uint32_t>(lg.out_degree(v) +
                                              lg.in_degree(v)));
        for (const graph::VertexId u : lg.out_neighbors(v)) {
          decrement(lg, st, u, ctx);
        }
        for (const graph::VertexId u : lg.in_neighbors(v)) {
          decrement(lg, st, u, ctx);
        }
      } else {
        ctx.record(0);
      }
    }
    return false;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.trim;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.trim;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.dead;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.dead;
  }

  void on_update(const partition::LocalGraph& lg, DeviceState&,
                 graph::VertexId v, engine::UpdateKind kind,
                 engine::RoundCtx& ctx) const {
    // Reduced trims activate masters (apply + possibly die); broadcast
    // dead flags activate mirrors (push local decrements).
    if (kind == engine::UpdateKind::kReduce && lg.is_master(v)) ctx.push(v);
    if (kind == engine::UpdateKind::kBroadcast) ctx.push(v);
  }

  [[nodiscard]] std::uint32_t k() const { return k_; }

 private:
  void decrement(const partition::LocalGraph& lg, DeviceState& st,
                 graph::VertexId u, engine::RoundCtx& ctx) const {
    st.trim[u] += 1;
    if (lg.is_master(u)) {
      ctx.push(u);  // master applies the decrement next round
    } else {
      ctx.mark_reduce_dirty(u);  // shipped to the master by sync
    }
  }

  std::uint32_t k_;
};

struct KCoreResult {
  std::vector<std::uint8_t> in_core;  ///< 1 iff the vertex survives
  engine::RunStats stats;
};

[[nodiscard]] KCoreResult run_kcore(const partition::DistGraph& dg,
                                    const comm::SyncStructure& sync,
                                    const sim::Topology& topo,
                                    const sim::CostParams& params,
                                    const engine::EngineConfig& config,
                                    std::uint32_t k);

}  // namespace sg::algo
