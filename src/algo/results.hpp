#pragma once

#include <vector>

#include "partition/dist_graph.hpp"

namespace sg::algo {

/// Collects the canonical (master-proxy) value of every global vertex
/// from per-device states. `getter(state, local_id)` reads one value.
template <typename T, typename States, typename Getter>
std::vector<T> gather_master_values(const partition::DistGraph& dg,
                                    const States& states, Getter getter) {
  std::vector<T> out(dg.global_vertices());
  for (int d = 0; d < dg.num_devices(); ++d) {
    const auto& lg = dg.part(d);
    for (graph::VertexId v = 0; v < lg.num_masters; ++v) {
      out[lg.l2g[v]] = getter(states[d], v);
    }
  }
  return out;
}

}  // namespace sg::algo
