#include "algo/cc.hpp"

#include "algo/results.hpp"

namespace sg::algo {

namespace {
template <typename Program>
CcResult run_cc_impl(const partition::DistGraph& dg,
                     const comm::SyncStructure& sync,
                     const sim::Topology& topo,
                     const sim::CostParams& params,
                     const engine::EngineConfig& config) {
  Program program;
  auto result = engine::run(dg, sync, topo, params, config, program);
  CcResult out;
  out.label = gather_master_values<std::uint32_t>(
      result.layout(dg), result.states,
      [](const typename Program::DeviceState& st, graph::VertexId v) {
        return st.label[v];
      });
  out.stats = std::move(result.stats);
  return out;
}
}  // namespace

CcResult run_cc(const partition::DistGraph& dg,
                const comm::SyncStructure& sync, const sim::Topology& topo,
                const sim::CostParams& params,
                const engine::EngineConfig& config) {
  return run_cc_impl<CcProgram>(dg, sync, topo, params, config);
}

CcResult run_cc_pointer_jump(const partition::DistGraph& dg,
                             const comm::SyncStructure& sync,
                             const sim::Topology& topo,
                             const sim::CostParams& params,
                             const engine::EngineConfig& config) {
  return run_cc_impl<CcPointerJumpProgram>(dg, sync, topo, params, config);
}

}  // namespace sg::algo
