#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <type_traits>

namespace sg::algo {

/// Fixed-width lane vector: the label type of the batched vertex
/// programs (msbfs packs 64 BFS instances, ppr-batch 16 PPR seeds into
/// one engine run). Trivially copyable, so the whole substrate built
/// for scalar labels — FieldSync extraction/application, wire payload
/// checksums and corruption injection, ByteWriter/ByteReader
/// checkpoint archives, SDC bit-flip targeting — works on it unchanged.
template <typename T, std::size_t N>
struct LaneVec {
  std::array<T, N> lane;

  [[nodiscard]] static constexpr LaneVec filled(T v) {
    LaneVec out{};
    for (std::size_t i = 0; i < N; ++i) out.lane[i] = v;
    return out;
  }

  friend constexpr bool operator==(const LaneVec&, const LaneVec&) = default;
};

static_assert(std::is_trivially_copyable_v<LaneVec<std::uint32_t, 64>>);
static_assert(sizeof(LaneVec<std::uint32_t, 64>) == 64 * sizeof(std::uint32_t));

/// Element-wise minimum over lanes. Each lane behaves exactly like a
/// scalar comm::MinOp: monotone and order-independent, so a batched
/// min-reduction program is bit-exact per lane vs its single-source
/// runs under both BSP and BASP.
template <typename T, std::size_t N>
struct LaneMinOp {
  static constexpr bool reset_after_extract = false;
  [[nodiscard]] static LaneVec<T, N> identity() {
    return LaneVec<T, N>::filled(std::numeric_limits<T>::max());
  }
  static bool combine(LaneVec<T, N>& into, const LaneVec<T, N>& incoming) {
    bool changed = false;
    for (std::size_t i = 0; i < N; ++i) {
      if (incoming.lane[i] < into.lane[i]) {
        into.lane[i] = incoming.lane[i];
        changed = true;
      }
    }
    return changed;
  }
};

/// Element-wise accumulating sum (mirror partials of the batched
/// residual push). reset_after_extract matches scalar AddOp: shipped
/// lanes reset to zero so partials are never re-sent.
template <typename T, std::size_t N>
struct LaneAddOp {
  static constexpr bool reset_after_extract = true;
  [[nodiscard]] static LaneVec<T, N> identity() {
    return LaneVec<T, N>::filled(T{});
  }
  static bool combine(LaneVec<T, N>& into, const LaneVec<T, N>& incoming) {
    bool changed = false;
    for (std::size_t i = 0; i < N; ++i) {
      if (incoming.lane[i] == T{}) continue;
      into.lane[i] += incoming.lane[i];
      changed = true;
    }
    return changed;
  }
};

/// Element-wise maximum (the batched monotone consumed-residual
/// counters survive reordered/coalesced broadcasts in BASP, lane-wise).
template <typename T, std::size_t N>
struct LaneMaxOp {
  static constexpr bool reset_after_extract = false;
  [[nodiscard]] static LaneVec<T, N> identity() {
    return LaneVec<T, N>::filled(std::numeric_limits<T>::lowest());
  }
  static bool combine(LaneVec<T, N>& into, const LaneVec<T, N>& incoming) {
    bool changed = false;
    for (std::size_t i = 0; i < N; ++i) {
      if (into.lane[i] < incoming.lane[i]) {
        into.lane[i] = incoming.lane[i];
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace sg::algo
