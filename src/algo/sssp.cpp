#include "algo/sssp.hpp"

#include "algo/results.hpp"

namespace sg::algo {

SsspResult run_sssp(const partition::DistGraph& dg,
                    const comm::SyncStructure& sync,
                    const sim::Topology& topo, const sim::CostParams& params,
                    const engine::EngineConfig& config,
                    graph::VertexId source) {
  SsspProgram program(source);
  auto result = engine::run(dg, sync, topo, params, config, program);
  SsspResult out;
  out.dist = gather_master_values<std::uint64_t>(
      result.layout(dg), result.states,
      [](const SsspProgram::DeviceState& st, graph::VertexId v) {
        return st.dist[v];
      });
  out.stats = std::move(result.stats);
  return out;
}

}  // namespace sg::algo
