#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/reduction.hpp"
#include "engine/executor.hpp"
#include "integrity/audit.hpp"

namespace sg::algo {

/// PageRank, pull-style residual formulation, topology-driven — the
/// D-IrGL implementation the paper studies (Section IV-B). Each round:
///
///   Phase A (delta): every proxy with pending residual above the
///     tolerance folds it into its rank and emits
///     delta = residual * alpha / out_degree;
///   Phase B (pull): every vertex with local in-edges accumulates the
///     deltas of its in-neighbors into a residual contribution.
///
/// Distributed fields:
///  * residual contributions reduce with AddOp (mirrors keep a separate
///    accumulator so a broadcast can never clobber un-shipped partials);
///  * masters broadcast the *cumulative consumed residual* (a monotone
///    counter combined with MaxOp); mirrors replay the difference into
///    their local pending residual. Because delta is linear in the
///    consumed residual, coalesced or reordered deliveries under BASP
///    produce the same totals — this is what makes async pagerank safe.
class PageRankPullProgram {
 public:
  using ReduceValue = float;
  using ReduceOp = comm::AddOp<float>;
  using BcastValue = float;
  using BcastOp = comm::MaxOp<float>;
  static constexpr bool kDataDriven = false;
  static constexpr std::uint64_t kExtraBytesPerVertex = 16;

  explicit PageRankPullProgram(float alpha = 0.85f, float tolerance = 1e-4f)
      : alpha_(alpha), tol_(tolerance) {}

  [[nodiscard]] const char* name() const { return "pagerank"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::pull();
  }

  struct DeviceState {
    std::vector<float> rank;
    std::vector<float> resid;           ///< pending residual
    std::vector<float> accum;           ///< mirror partial sums (reduce src)
    std::vector<float> delta;           ///< per-round contribution
    std::vector<float> consumed_total;  ///< master monotone counter
    std::vector<float> consumed_cache;  ///< mirror copy of the counter
    std::vector<float> seen_total;      ///< mirror replay cursor

    template <class Ar>
    void archive(Ar& ar) {
      ar(rank, resid, accum, delta, consumed_total, consumed_cache,
         seen_total);
    }

    template <class Ar>
    void archive_vertex(Ar& ar, graph::VertexId v) {
      ar(rank[v], resid[v], accum[v], delta[v], consumed_total[v],
         consumed_cache[v], seen_total[v]);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    const auto n = lg.num_local;
    st.rank.assign(n, 0.0f);
    st.resid.assign(n, 1.0f - alpha_);
    st.accum.assign(n, 0.0f);
    st.delta.assign(n, 0.0f);
    // Every proxy pre-seeds the same initial residual locally, and the
    // master's eventual consumption of it will appear in the broadcast
    // stream — start the replay cursors past it so it is not re-applied.
    st.consumed_total.assign(n, 0.0f);
    st.consumed_cache.assign(n, 1.0f - alpha_);
    st.seen_total.assign(n, 1.0f - alpha_);
    if (n > 0) ctx.push(0);  // topology-driven activity signal
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId>,
                     engine::RoundCtx& ctx) const {
    bool progress = false;
    // Phase A: consume pending residual.
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      const float r = st.resid[v];
      if (r > tol_) {
        st.delta[v] =
            r * alpha_ /
            static_cast<float>(std::max<graph::VertexId>(
                1, lg.global_out_degree[v]));
        st.rank[v] += r;
        st.resid[v] = 0.0f;
        if (lg.is_master(v)) {
          st.consumed_total[v] += r;
          ctx.mark_bcast_dirty(v);
        }
        progress = true;
      } else {
        st.delta[v] = 0.0f;
      }
      ctx.record(0);
    }
    // Phase B: pull in-neighbor deltas.
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      const auto deg = lg.in_degree(v);
      if (deg == 0) continue;
      ctx.record(static_cast<std::uint32_t>(deg));
      float sum = 0.0f;
      for (const graph::VertexId u : lg.in_neighbors(v)) {
        sum += st.delta[u];
      }
      if (sum > 0.0f) {
        if (lg.is_master(v)) {
          st.resid[v] += sum;
        } else {
          st.accum[v] += sum;
          ctx.mark_reduce_dirty(v);
        }
        progress = true;
      }
    }
    return progress;
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.accum;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.resid;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.consumed_total;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.consumed_cache;
  }

  void on_update(const partition::LocalGraph& lg, DeviceState& st,
                 graph::VertexId v, engine::UpdateKind kind,
                 engine::RoundCtx& ctx) const {
    if (kind == engine::UpdateKind::kBroadcast) {
      if (st.seen_total[v] < 0.0f) {
        // Mirror freshly created by re-homing (see on_rehome): adopt
        // the master's counter as-is. The historical deltas over the
        // edges this proxy now serves were already emitted by the lost
        // device's proxy and consumed downstream — replaying them here
        // would re-inject that residual mass.
        st.seen_total[v] = st.consumed_cache[v];
      } else {
        // Replay the master's consumption stream into the local pending
        // residual (the difference since the last delivery).
        const float diff = st.consumed_cache[v] - st.seen_total[v];
        if (diff > 0.0f) {
          st.resid[v] += diff;
          st.seen_total[v] = st.consumed_cache[v];
        }
      }
    }
    (void)lg;
    ctx.push(v);
  }

  /// Reconcile the monotone consumption counters after master re-homing.
  void on_rehome(const partition::LocalGraph& lg, DeviceState& st,
                 graph::VertexId v, engine::RehomeRole role,
                 engine::RoundCtx& ctx) const {
    if (role == engine::RehomeRole::kPromotedMaster) {
      // A promoted mirror copy never maintained the master counter; an
      // adopted lost-master copy already carries it. max() covers both.
      st.consumed_total[v] =
          std::max(st.consumed_total[v], st.consumed_cache[v]);
      // Pending un-shipped mirror contributions now have no remote
      // master to go to — this copy IS the master; fold them in.
      if (st.accum[v] != 0.0f) {
        st.resid[v] += st.accum[v];
        st.accum[v] = 0.0f;
      }
    } else if (role == engine::RehomeRole::kAdopted && !lg.is_master(v) &&
               st.consumed_total[v] > st.consumed_cache[v]) {
      // A lost *master* copy adopted as a mirror: the lost device
      // already emitted [0, consumed_total] over exactly these migrated
      // edges, and the adopted pending resid will be consumed locally
      // here — fast-forward the replay cursor past both so the new
      // master's broadcasts do not replay them a second time.
      st.consumed_cache[v] = st.consumed_total[v];
      st.seen_total[v] = st.consumed_total[v] + st.resid[v];
    } else if (role == engine::RehomeRole::kFresh && !lg.is_master(v)) {
      // A mirror created from scratch by re-homing (no surviving copy
      // to migrate — the checkpoint-less eviction path). The edges it
      // now serves already received both the init pre-seed and the full
      // historical delta stream from the lost device's proxy, so clear
      // the re-seeded residual and mark the replay cursor for adoption:
      // the master's first (re-feed) broadcast sets it to the current
      // counter without replaying history (see on_update).
      st.resid[v] = 0.0f;
      st.seen_total[v] = -1.0f;
    }
    ctx.push(v);
  }

  /// ABFT invariants, per audited boundary (DESIGN.md §13). The
  /// load-bearing one is *free redundant encoding*: Phase A adds the
  /// consumed residual to `rank` and to the master's `consumed_total`
  /// ledger in the same branch with the same float additions in the
  /// same order, so at every boundary rank[master] == consumed_total
  /// [master] BIT-EXACTLY — no epsilon. A flip in either array splits
  /// the pair. (Master re-homing reconciles the ledger and breaks the
  /// encoding; the engine stops invariant-auditing after any layout
  /// change.) Finiteness rounds it out: NaN/Inf from an exponent-bit
  /// flip propagates silently through float sums otherwise.
  [[nodiscard]] std::string audit_device(const partition::LocalGraph& lg,
                                         const DeviceState& st) const {
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      if (lg.is_master(v) && st.rank[v] != st.consumed_total[v]) {
        return "pagerank: rank/consumed-ledger split at vertex " +
               std::to_string(lg.l2g[v]) + " (rank " +
               std::to_string(st.rank[v]) + ", ledger " +
               std::to_string(st.consumed_total[v]) + ")";
      }
      if (!std::isfinite(st.rank[v]) || !std::isfinite(st.resid[v]) ||
          !std::isfinite(st.consumed_cache[v])) {
        return "pagerank: non-finite state at vertex " +
               std::to_string(lg.l2g[v]);
      }
      if (st.resid[v] < 0.0f || st.accum[v] < 0.0f) {
        return "pagerank: negative mass at vertex " +
               std::to_string(lg.l2g[v]);
      }
    }
    return {};
  }

  /// Termination certificate at the final audit: a quiescent run left
  /// no pending residual above tolerance, no unshipped mirror partials,
  /// and every consuming master carries at least the base rank mass
  /// (1 - alpha, less `rank_epsilon` relative slack).
  [[nodiscard]] std::string audit_global(
      std::span<const partition::LocalGraph* const> lgs,
      std::span<const DeviceState* const> sts,
      const integrity::AuditPolicy& policy) const {
    const float floor =
        (1.0f - alpha_) *
        (1.0f - static_cast<float>(policy.rank_epsilon));
    for (std::size_t i = 0; i < lgs.size(); ++i) {
      const partition::LocalGraph& lg = *lgs[i];
      const DeviceState& st = *sts[i];
      for (graph::VertexId v = 0; v < lg.num_local; ++v) {
        if (st.resid[v] > tol_) {
          return "pagerank: unconsumed residual " +
                 std::to_string(st.resid[v]) + " at vertex " +
                 std::to_string(lg.l2g[v]) + " after termination";
        }
        if (st.accum[v] != 0.0f) {
          return "pagerank: unshipped mirror mass " +
                 std::to_string(st.accum[v]) + " at vertex " +
                 std::to_string(lg.l2g[v]) + " after termination";
        }
        if (lg.is_master(v) && st.rank[v] < floor) {
          return "pagerank: rank " + std::to_string(st.rank[v]) +
                 " below the base mass floor at vertex " +
                 std::to_string(lg.l2g[v]);
        }
      }
    }
    return {};
  }

  [[nodiscard]] float alpha() const { return alpha_; }
  [[nodiscard]] float tolerance() const { return tol_; }

 private:
  float alpha_;
  float tol_;
};

/// Lux-style PageRank: topology-driven rank recomputation every round
/// (no residuals, no convergence check — the paper runs it for the same
/// number of rounds D-IrGL's pagerank executed).
class LuxPageRankProgram {
 public:
  using ReduceValue = float;
  using ReduceOp = comm::AddOp<float>;
  using BcastValue = float;
  using BcastOp = comm::AssignOp<float>;
  static constexpr bool kDataDriven = false;
  static constexpr std::uint64_t kExtraBytesPerVertex = 8;

  explicit LuxPageRankProgram(graph::VertexId global_vertices,
                              float alpha = 0.85f)
      : alpha_(alpha),
        base_((1.0f - alpha) / static_cast<float>(global_vertices)),
        init_rank_(1.0f / static_cast<float>(global_vertices)) {}

  [[nodiscard]] const char* name() const { return "pagerank-lux"; }
  [[nodiscard]] comm::SyncPattern pattern() const {
    return comm::SyncPattern::pull();
  }

  struct DeviceState {
    std::vector<float> rank;  ///< bcast field (master canonical + cache)
    std::vector<float> sum;   ///< reduce field (partial in-contributions)
    std::uint32_t round = 0;

    template <class Ar>
    void archive(Ar& ar) {
      ar(rank, sum, round);
    }
  };

  void init(const partition::LocalGraph& lg, DeviceState& st,
            engine::RoundCtx& ctx) const {
    st.rank.assign(lg.num_local, init_rank_);
    st.sum.assign(lg.num_local, 0.0f);
    if (lg.num_local > 0) ctx.push(0);
  }

  bool compute_round(const partition::LocalGraph& lg, DeviceState& st,
                     std::span<const graph::VertexId>,
                     engine::RoundCtx& ctx) const {
    if (st.round > 0) {
      // Apply: masters recompute rank from the sums reduced last round.
      for (graph::VertexId v = 0; v < lg.num_masters; ++v) {
        const float nr = base_ + alpha_ * st.sum[v];
        st.sum[v] = 0.0f;
        if (nr != st.rank[v]) {
          st.rank[v] = nr;
          ctx.mark_bcast_dirty(v);
        }
        ctx.record(0);
      }
    }
    ++st.round;
    // Contribute: partial in-neighbor sums on every proxy.
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      const auto deg = lg.in_degree(v);
      if (deg == 0) continue;
      ctx.record(static_cast<std::uint32_t>(deg));
      float s = 0.0f;
      for (const graph::VertexId u : lg.in_neighbors(v)) {
        s += st.rank[u] /
             static_cast<float>(std::max<graph::VertexId>(
                 1, lg.global_out_degree[u]));
      }
      st.sum[v] += s;
      if (!lg.is_master(v)) ctx.mark_reduce_dirty(v);
    }
    return true;  // capped by EngineConfig::fixed_rounds
  }

  [[nodiscard]] std::span<ReduceValue> reduce_mirror_src(
      DeviceState& st) const {
    return st.sum;
  }
  [[nodiscard]] std::span<ReduceValue> reduce_master_dst(
      DeviceState& st) const {
    return st.sum;
  }
  [[nodiscard]] std::span<const BcastValue> bcast_master_src(
      const DeviceState& st) const {
    return st.rank;
  }
  [[nodiscard]] std::span<BcastValue> bcast_mirror_dst(
      DeviceState& st) const {
    return st.rank;
  }

  void on_update(const partition::LocalGraph&, DeviceState&,
                 graph::VertexId v, engine::UpdateKind,
                 engine::RoundCtx& ctx) const {
    ctx.push(v);
  }

 private:
  float alpha_;
  float base_;
  float init_rank_;
};

struct PageRankResult {
  std::vector<float> rank;
  engine::RunStats stats;
};

[[nodiscard]] PageRankResult run_pagerank(
    const partition::DistGraph& dg, const comm::SyncStructure& sync,
    const sim::Topology& topo, const sim::CostParams& params,
    const engine::EngineConfig& config, float alpha = 0.85f,
    float tolerance = 1e-4f);

/// Lux recompute-style pagerank; `config.fixed_rounds` must be set.
[[nodiscard]] PageRankResult run_pagerank_lux(
    const partition::DistGraph& dg, const comm::SyncStructure& sync,
    const sim::Topology& topo, const sim::CostParams& params,
    const engine::EngineConfig& config, float alpha = 0.85f);

}  // namespace sg::algo
