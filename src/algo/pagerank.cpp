#include "algo/pagerank.hpp"

#include "algo/results.hpp"

namespace sg::algo {

PageRankResult run_pagerank(const partition::DistGraph& dg,
                            const comm::SyncStructure& sync,
                            const sim::Topology& topo,
                            const sim::CostParams& params,
                            const engine::EngineConfig& config, float alpha,
                            float tolerance) {
  PageRankPullProgram program(alpha, tolerance);
  auto result = engine::run(dg, sync, topo, params, config, program);
  PageRankResult out;
  out.rank = gather_master_values<float>(
      result.layout(dg), result.states,
      [](const PageRankPullProgram::DeviceState& st, graph::VertexId v) {
        return st.rank[v];
      });
  out.stats = std::move(result.stats);
  return out;
}

PageRankResult run_pagerank_lux(const partition::DistGraph& dg,
                                const comm::SyncStructure& sync,
                                const sim::Topology& topo,
                                const sim::CostParams& params,
                                const engine::EngineConfig& config,
                                float alpha) {
  LuxPageRankProgram program(dg.global_vertices(), alpha);
  auto result = engine::run(dg, sync, topo, params, config, program);
  PageRankResult out;
  out.rank = gather_master_values<float>(
      result.layout(dg), result.states,
      [](const LuxPageRankProgram::DeviceState& st, graph::VertexId v) {
        return st.rank[v];
      });
  out.stats = std::move(result.stats);
  return out;
}

}  // namespace sg::algo
