#include "algo/ppr.hpp"

#include <deque>

#include "algo/results.hpp"

namespace sg::algo {

PprResult run_ppr(const partition::DistGraph& dg,
                  const comm::SyncStructure& sync, const sim::Topology& topo,
                  const sim::CostParams& params,
                  const engine::EngineConfig& config, graph::VertexId seed,
                  double alpha, double epsilon) {
  PprProgram program(seed, alpha, epsilon);
  auto result = engine::run(dg, sync, topo, params, config, program);
  PprResult out;
  out.mass = gather_master_values<double>(
      result.layout(dg), result.states,
      [](const PprProgram::DeviceState& st, graph::VertexId v) {
        return st.mass[v];
      });
  out.stats = std::move(result.stats);
  return out;
}

namespace reference {

std::vector<double> ppr(const graph::Csr& g, graph::VertexId seed,
                        double alpha, double epsilon) {
  const graph::VertexId n = g.num_vertices();
  std::vector<double> mass(n, 0.0);
  std::vector<double> resid(n, 0.0);
  std::vector<std::uint8_t> queued(n, 0);
  std::deque<graph::VertexId> queue;
  resid[seed] = 1.0;
  queue.push_back(seed);
  queued[seed] = 1;
  while (!queue.empty()) {
    const graph::VertexId v = queue.front();
    queue.pop_front();
    queued[v] = 0;
    if (resid[v] <= epsilon) continue;
    const double c = resid[v];
    resid[v] = 0.0;
    mass[v] += alpha * c;
    const auto deg = g.degree(v);
    if (deg == 0) {
      mass[v] += (1.0 - alpha) * c;  // dangling absorption
      continue;
    }
    const double share = (1.0 - alpha) * c / static_cast<double>(deg);
    for (const graph::VertexId u : g.neighbors(v)) {
      resid[u] += share;
      if (resid[u] > epsilon && queued[u] == 0) {
        queued[u] = 1;
        queue.push_back(u);
      }
    }
  }
  return mass;
}

}  // namespace reference
}  // namespace sg::algo
