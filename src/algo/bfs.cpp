#include "algo/bfs.hpp"

#include "algo/results.hpp"

namespace sg::algo {

BfsResult run_bfs(const partition::DistGraph& dg,
                  const comm::SyncStructure& sync, const sim::Topology& topo,
                  const sim::CostParams& params,
                  const engine::EngineConfig& config,
                  graph::VertexId source) {
  BfsProgram program(source);
  auto result = engine::run(dg, sync, topo, params, config, program);
  BfsResult out;
  out.dist = gather_master_values<std::uint32_t>(
      result.layout(dg), result.states,
      [](const BfsProgram::DeviceState& st, graph::VertexId v) {
        return st.dist[v];
      });
  out.stats = std::move(result.stats);
  return out;
}

}  // namespace sg::algo
