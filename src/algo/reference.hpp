#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace sg::algo::reference {

/// Sequential single-machine implementations used as ground truth for
/// every distributed run (unit and integration tests compare against
/// these on all policy / model / device-count combinations).

/// Hop distances from `source`; unreachable = UINT32_MAX.
[[nodiscard]] std::vector<std::uint32_t> bfs(const graph::Csr& g,
                                             graph::VertexId source);

/// Weighted shortest-path distances (Dijkstra); unreachable = UINT64_MAX.
[[nodiscard]] std::vector<std::uint64_t> sssp(const graph::Csr& g,
                                              graph::VertexId source);

/// Weakly connected components labeled by min global vertex id.
[[nodiscard]] std::vector<std::uint32_t> cc(const graph::Csr& g);

/// k-core membership on the undirected degree (1 = survives peeling).
[[nodiscard]] std::vector<std::uint8_t> kcore(const graph::Csr& g,
                                              std::uint32_t k);

/// Pull-residual pagerank run to `tolerance` (same formulation as the
/// distributed program: rank accumulates consumed residual, initial
/// residual 1 - alpha per vertex, no dangling redistribution).
[[nodiscard]] std::vector<float> pagerank(const graph::Csr& g,
                                          float alpha = 0.85f,
                                          float tolerance = 1e-4f,
                                          std::uint32_t max_rounds = 10000);

}  // namespace sg::algo::reference
