#pragma once

#include <cstddef>
#include <cstdint>

namespace sg::util {

/// 64-bit FNV-1a offset basis and prime — the single source of truth
/// for every checksum in the system: wire payload seals (comm/wire),
/// the checksummed file envelope (partition store + checkpoints), and
/// the integrity auditor's shard label digests. These constants are
/// load-bearing: on-disk formats and recorded wire traces pin the
/// digests byte-for-byte (tests/test_hash.cpp), so they must never
/// change.
inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// FNV-1a over a byte range, chainable via `h` (pass a previous digest
/// to continue hashing: fnv1a64("ab") == fnv1a64("b", fnv1a64("a"))).
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                                           std::uint64_t h = kFnv1aOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

/// Chains one trivially-copyable value into a running digest. The
/// auditor uses this to fold label values incrementally without
/// staging them into a contiguous buffer.
template <typename T>
[[nodiscard]] std::uint64_t fnv1a64_value(const T& v,
                                          std::uint64_t h = kFnv1aOffset) {
  return fnv1a64(&v, sizeof(T), h);
}

}  // namespace sg::util
