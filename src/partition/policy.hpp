#pragma once

#include <string>

namespace sg::partition {

/// Graph-partitioning policies studied in the paper (Section III-C).
///
///  * OEC    - edge-balanced outgoing edge-cut: all outgoing edges of a
///             vertex live with its master (D-IrGL).
///  * IEC    - edge-balanced incoming edge-cut: all incoming edges live
///             with the master (D-IrGL and Lux's only policy).
///  * HVC    - hybrid vertex-cut (PowerLyra): low-in-degree vertices are
///             edge-cut on the destination; high-in-degree destinations
///             have their in-edges scattered by source.
///  * CVC    - Cartesian vertex-cut: 2D blocked/cyclic cut of the
///             adjacency matrix; mirrors with out-edges share a grid row
///             with their master, mirrors with in-edges a grid column.
///  * RANDOM - random vertex assignment with outgoing edges at the owner
///             (Gunrock's default partitioner).
///  * GREEDY - BFS-grown locality-aware edge-cut (stand-in for the METIS
///             partitioning Groute uses).
enum class Policy { OEC, IEC, HVC, CVC, RANDOM, GREEDY };

[[nodiscard]] const char* to_string(Policy p);
[[nodiscard]] Policy policy_from_string(const std::string& name);

}  // namespace sg::partition
