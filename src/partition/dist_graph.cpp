#include "partition/dist_graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "partition/detail.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace sg::partition {

using graph::Csr;
using graph::EdgeId;
using graph::VertexId;
using graph::Weight;

namespace {

std::vector<EdgeId> in_degrees(const Csr& g) {
  std::vector<EdgeId> deg(g.num_vertices(), 0);
  for (VertexId d : g.dsts()) ++deg[d];
  return deg;
}

/// BFS region growing from spread seeds; METIS stand-in for Groute.
/// Needs random access to the graph, so it lives outside the
/// streamable-assignment helpers.
std::vector<int> greedy_masters(const Csr& g, int parts,
                                std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  const Csr rev = g.transpose();
  std::vector<int> owner(n, -1);
  std::vector<std::vector<VertexId>> frontier(parts);
  std::vector<VertexId> claimed(parts, 0);
  const VertexId cap = (n + parts - 1) / parts;

  sim::Rng rng{seed};
  for (int p = 0; p < parts; ++p) {
    // Spread seeds across the id space; skip already-claimed picks.
    VertexId s = static_cast<VertexId>(
        (static_cast<std::uint64_t>(p) * n) / parts + rng.bounded(16));
    s = std::min<VertexId>(s, n - 1);
    while (owner[s] != -1) s = (s + 1) % n;
    owner[s] = p;
    ++claimed[p];
    frontier[p].push_back(s);
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (int p = 0; p < parts; ++p) {
      std::vector<VertexId> next;
      for (VertexId v : frontier[p]) {
        auto claim = [&](VertexId u) {
          if (owner[u] == -1 && claimed[p] < cap) {
            owner[u] = p;
            ++claimed[p];
            next.push_back(u);
            progress = true;
          }
        };
        for (VertexId u : g.neighbors(v)) claim(u);
        for (VertexId u : rev.neighbors(v)) claim(u);
      }
      frontier[p] = std::move(next);
    }
  }
  // Unreachable / capacity-stranded vertices: round-robin to the
  // lightest part.
  for (VertexId v = 0; v < n; ++v) {
    if (owner[v] == -1) {
      const auto lightest = static_cast<int>(std::distance(
          claimed.begin(), std::min_element(claimed.begin(), claimed.end())));
      owner[v] = lightest;
      ++claimed[lightest];
    }
  }
  return owner;
}

}  // namespace

DistGraph DistGraph::assemble(std::vector<LocalGraph> parts,
                              std::vector<int> master_of,
                              VertexId global_vertices,
                              EdgeId global_edges, bool weighted,
                              PartitionOptions options, CvcGrid grid,
                              PartitionStats stats) {
  DistGraph dg;
  dg.parts_ = std::move(parts);
  dg.master_of_ = std::move(master_of);
  dg.global_vertices_ = global_vertices;
  dg.global_edges_ = global_edges;
  dg.weighted_ = weighted;
  dg.options_ = options;
  dg.grid_ = grid;
  dg.stats_ = std::move(stats);
  return dg;
}

DistGraph partition_graph(const Csr& g, const PartitionOptions& options) {
  const int devices = options.num_devices;
  if (devices < 1) {
    throw std::invalid_argument("partition_graph: need >= 1 device");
  }
  const VertexId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("partition_graph: empty graph");

  DistGraph dg;
  dg.options_ = options;
  dg.global_vertices_ = n;
  dg.global_edges_ = g.num_edges();
  dg.weighted_ = g.has_weights();

  // ---- 1. Master assignment -------------------------------------------
  const std::vector<EdgeId> out_deg = g.out_degrees();
  const std::vector<EdgeId> in_deg = in_degrees(g);
  dg.master_of_ =
      options.policy == Policy::GREEDY
          ? greedy_masters(g, devices, options.seed)
          : detail::assign_masters_streamable(options.policy, out_deg,
                                              in_deg, devices, options.seed);
  auto& master_of = dg.master_of_;

  if (options.policy == Policy::CVC) {
    dg.grid_ = (options.grid_rows > 0 && options.grid_cols > 0)
                   ? CvcGrid{options.grid_rows, options.grid_cols}
                   : CvcGrid::auto_shape(devices);
    if (dg.grid_.devices() != devices) {
      throw std::invalid_argument(
          "partition_graph: CVC grid does not match device count");
    }
  }

  const EdgeId hvc_threshold =
      options.policy == Policy::HVC
          ? detail::hvc_threshold_for(options.hvc_threshold_factor,
                                      g.num_edges(), n)
          : 0;
  auto owner_of = [&](VertexId u, VertexId v) {
    return detail::edge_owner(options.policy, u, v, master_of, in_deg,
                              hvc_threshold, dg.grid_);
  };

  // ---- 2. Distribute edges ---------------------------------------------
  std::vector<std::vector<detail::RawEdge>> dev_edges(devices);
  {
    std::vector<EdgeId> counts(devices, 0);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : g.neighbors(u)) ++counts[owner_of(u, v)];
    }
    for (int d = 0; d < devices; ++d) dev_edges[d].reserve(counts[d]);
    for (VertexId u = 0; u < n; ++u) {
      const auto nbrs = g.neighbors(u);
      const auto ws =
          g.has_weights() ? g.weights(u) : std::span<const Weight>{};
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId v = nbrs[i];
        dev_edges[owner_of(u, v)].push_back(
            detail::RawEdge{u, v, ws.empty() ? Weight{1} : ws[i]});
      }
    }
  }

  // Masters grouped per device (in global-id order for determinism).
  std::vector<std::vector<VertexId>> dev_masters(devices);
  for (VertexId v = 0; v < n; ++v) {
    dev_masters[master_of[v]].push_back(v);
  }

  // ---- 3. Build per-device local graphs (parallel over devices) --------
  dg.parts_.resize(devices);
  const bool weighted = g.has_weights();
  sim::ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(devices),
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t d = lo; d < hi; ++d) {
          dg.parts_[d] = detail::build_local_graph(
              static_cast<int>(d), dev_masters[d], dev_edges[d], out_deg,
              in_deg, weighted);
        }
      });

  // ---- 4. Stats ----------------------------------------------------------
  dg.stats_ = detail::compute_stats(dg.parts_, n, g.num_edges());
  return dg;
}

}  // namespace sg::partition
