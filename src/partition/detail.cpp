#include "partition/detail.hpp"

#include <algorithm>
#include <stdexcept>
#include <numeric>

#include "sim/rng.hpp"

namespace sg::partition::detail {

using graph::EdgeId;
using graph::VertexId;
using graph::Weight;

std::uint64_t mix_hash(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::vector<int> balanced_ranges(std::span<const EdgeId> weight,
                                 int parts) {
  const std::size_t n = weight.size();
  std::vector<int> owner(n, parts - 1);
  long double total = 0;
  for (EdgeId w : weight) total += static_cast<long double>(w) + 1;
  const long double target = total / parts;
  long double acc = 0;
  int current = 0;
  for (std::size_t v = 0; v < n; ++v) {
    owner[v] = current;
    acc += static_cast<long double>(weight[v]) + 1;
    if (acc >= target * (current + 1) && current + 1 < parts) ++current;
  }
  return owner;
}

std::vector<int> assign_masters_streamable(Policy policy,
                                           std::span<const EdgeId> out_deg,
                                           std::span<const EdgeId> in_deg,
                                           int devices, std::uint64_t seed) {
  const auto n = static_cast<VertexId>(out_deg.size());
  switch (policy) {
    case Policy::OEC:
    case Policy::CVC:
      // Rows of the adjacency matrix (out-edges), blocked (Figure 2).
      return balanced_ranges(out_deg, devices);
    case Policy::IEC:
      return balanced_ranges(in_deg, devices);
    case Policy::HVC: {
      std::vector<int> owner(n);
      for (VertexId v = 0; v < n; ++v) {
        owner[v] = static_cast<int>(mix_hash(v ^ seed) %
                                    static_cast<std::uint64_t>(devices));
      }
      return owner;
    }
    case Policy::RANDOM: {
      sim::Rng rng{seed};
      std::vector<int> owner(n);
      for (VertexId v = 0; v < n; ++v) {
        owner[v] = static_cast<int>(rng.bounded(devices));
      }
      return owner;
    }
    case Policy::GREEDY:
      throw std::invalid_argument(
          "GREEDY is not streamable (needs graph random access)");
  }
  throw std::invalid_argument("unknown policy");
}

int edge_owner(Policy policy, VertexId u, VertexId v,
               const std::vector<int>& master_of,
               std::span<const EdgeId> in_deg, EdgeId hvc_threshold,
               const CvcGrid& grid) {
  switch (policy) {
    case Policy::OEC:
    case Policy::RANDOM:
    case Policy::GREEDY:
      return master_of[u];
    case Policy::IEC:
      return master_of[v];
    case Policy::HVC:
      // PowerLyra hybrid: low-in-degree destinations edge-cut at the
      // destination; high-in-degree destinations scatter by source.
      return in_deg[v] > hvc_threshold ? master_of[u] : master_of[v];
    case Policy::CVC:
      return grid.edge_owner(master_of[u], master_of[v]);
  }
  return 0;
}

EdgeId hvc_threshold_for(double factor, EdgeId edges, VertexId vertices) {
  return static_cast<EdgeId>(factor * (static_cast<double>(edges) /
                                       static_cast<double>(vertices)));
}

LocalGraph build_local_graph(int device,
                             const std::vector<VertexId>& masters,
                             const std::vector<RawEdge>& edges,
                             std::span<const EdgeId> global_out_deg,
                             std::span<const EdgeId> global_in_deg,
                             bool weighted) {
  LocalGraph lg;
  lg.device = device;

  // Local id space: masters first, then mirrors sorted by global id.
  lg.num_masters = static_cast<VertexId>(masters.size());
  lg.l2g = masters;
  lg.g2l.reserve(masters.size() * 2);
  for (VertexId i = 0; i < lg.num_masters; ++i) {
    lg.g2l.emplace(masters[i], i);
  }
  std::vector<VertexId> mirrors;
  for (const RawEdge& e : edges) {
    if (!lg.g2l.contains(e.src)) {
      lg.g2l.emplace(e.src, 0);  // placeholder; fixed below
      mirrors.push_back(e.src);
    }
    if (!lg.g2l.contains(e.dst)) {
      lg.g2l.emplace(e.dst, 0);
      mirrors.push_back(e.dst);
    }
  }
  std::sort(mirrors.begin(), mirrors.end());
  for (VertexId i = 0; i < mirrors.size(); ++i) {
    lg.g2l[mirrors[i]] = lg.num_masters + i;
  }
  lg.l2g.insert(lg.l2g.end(), mirrors.begin(), mirrors.end());
  lg.num_local = static_cast<VertexId>(lg.l2g.size());

  // Out-CSR over local ids.
  lg.out_offsets.assign(lg.num_local + 1, 0);
  for (const RawEdge& e : edges) ++lg.out_offsets[lg.g2l[e.src] + 1];
  std::partial_sum(lg.out_offsets.begin(), lg.out_offsets.end(),
                   lg.out_offsets.begin());
  lg.out_dsts.resize(edges.size());
  if (weighted) lg.out_weights.resize(edges.size());
  {
    std::vector<EdgeId> cursor(lg.out_offsets.begin(),
                               lg.out_offsets.end() - 1);
    for (const RawEdge& e : edges) {
      const EdgeId slot = cursor[lg.g2l[e.src]]++;
      lg.out_dsts[slot] = lg.g2l[e.dst];
      if (weighted) lg.out_weights[slot] = e.w;
    }
  }

  // In-CSR: local inversion of the out-CSR.
  lg.in_offsets.assign(lg.num_local + 1, 0);
  for (VertexId dst : lg.out_dsts) ++lg.in_offsets[dst + 1];
  std::partial_sum(lg.in_offsets.begin(), lg.in_offsets.end(),
                   lg.in_offsets.begin());
  lg.in_srcs.resize(edges.size());
  if (weighted) lg.in_weights.resize(edges.size());
  {
    std::vector<EdgeId> cursor(lg.in_offsets.begin(),
                               lg.in_offsets.end() - 1);
    for (VertexId u = 0; u < lg.num_local; ++u) {
      for (EdgeId e = lg.out_offsets[u]; e < lg.out_offsets[u + 1]; ++e) {
        const EdgeId slot = cursor[lg.out_dsts[e]]++;
        lg.in_srcs[slot] = u;
        if (weighted) lg.in_weights[slot] = lg.out_weights[e];
      }
    }
  }

  lg.vertex_flags.assign(lg.num_local, 0);
  for (VertexId v = 0; v < lg.num_local; ++v) {
    if (lg.out_degree(v) > 0) lg.vertex_flags[v] |= kHasOutEdges;
    if (lg.in_degree(v) > 0) lg.vertex_flags[v] |= kHasInEdges;
  }
  lg.global_out_degree.resize(lg.num_local);
  lg.global_in_degree.resize(lg.num_local);
  for (VertexId v = 0; v < lg.num_local; ++v) {
    lg.global_out_degree[v] = static_cast<VertexId>(global_out_deg[lg.l2g[v]]);
    lg.global_in_degree[v] = static_cast<VertexId>(global_in_deg[lg.l2g[v]]);
  }
  return lg;
}

PartitionStats compute_stats(const std::vector<LocalGraph>& parts,
                             VertexId global_vertices,
                             EdgeId global_edges) {
  PartitionStats st;
  const auto devices = static_cast<int>(parts.size());
  st.edges_per_device.resize(devices);
  st.bytes_per_device.resize(devices);
  std::uint64_t total_proxies = 0;
  EdgeId max_edges = 0;
  for (int d = 0; d < devices; ++d) {
    const LocalGraph& lg = parts[d];
    st.edges_per_device[d] = lg.num_out_edges();
    st.bytes_per_device[d] = lg.bytes();
    st.total_bytes += st.bytes_per_device[d];
    st.max_bytes = std::max(st.max_bytes, st.bytes_per_device[d]);
    total_proxies += lg.num_local;
    max_edges = std::max(max_edges, st.edges_per_device[d]);
  }
  st.replication_factor = static_cast<double>(total_proxies) /
                          static_cast<double>(global_vertices);
  const double mean_edges =
      static_cast<double>(global_edges) / static_cast<double>(devices);
  st.static_balance =
      mean_edges > 0 ? static_cast<double>(max_edges) / mean_edges : 1.0;
  const double mean_bytes =
      static_cast<double>(st.total_bytes) / static_cast<double>(devices);
  st.memory_balance =
      mean_bytes > 0 ? static_cast<double>(st.max_bytes) / mean_bytes : 1.0;
  return st;
}

}  // namespace sg::partition::detail
