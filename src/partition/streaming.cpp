#include "partition/streaming.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "partition/detail.hpp"
#include "sim/thread_pool.hpp"

namespace sg::partition {

using graph::Edge;
using graph::EdgeId;
using graph::VertexId;

// ---- CsrEdgeSource ---------------------------------------------------------

std::size_t CsrEdgeSource::next_chunk(std::span<Edge> out) {
  std::size_t written = 0;
  const VertexId n = g_->num_vertices();
  while (written < out.size() && vertex_ < n) {
    if (edge_ >= g_->edge_end(vertex_)) {
      ++vertex_;
      if (vertex_ < n) edge_ = g_->edge_begin(vertex_);
      continue;
    }
    out[written++] = Edge{vertex_, g_->edge_dst(edge_),
                          g_->edge_weight(edge_)};
    ++edge_;
  }
  return written;
}

// ---- EdgeListFileSource ------------------------------------------------------

EdgeListFileSource::EdgeListFileSource(std::filesystem::path path)
    : path_(std::move(path)), in_(path_) {
  if (!in_) {
    throw std::runtime_error("EdgeListFileSource: cannot open " +
                             path_.string());
  }
  // Metadata scan: vertex-id space and weightedness.
  std::string line;
  bool first_data = true;
  while (std::getline(in_, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    VertexId s, d;
    if (!(ss >> s >> d)) {
      throw std::runtime_error("EdgeListFileSource: malformed line: " +
                               line);
    }
    num_vertices_ = std::max({num_vertices_, s + 1, d + 1});
    if (first_data) {
      graph::Weight w;
      weighted_ = static_cast<bool>(ss >> w);
      first_data = false;
    }
  }
  rewind();
}

void EdgeListFileSource::rewind() {
  in_.clear();
  in_.seekg(0);
}

std::size_t EdgeListFileSource::next_chunk(std::span<Edge> out) {
  std::size_t written = 0;
  std::string line;
  while (written < out.size() && std::getline(in_, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    Edge e;
    if (!(ss >> e.src >> e.dst)) {
      throw std::runtime_error("EdgeListFileSource: malformed line: " +
                               line);
    }
    graph::Weight w;
    if (ss >> w) e.weight = w;
    out[written++] = e;
  }
  return written;
}

// ---- partition_stream ----------------------------------------------------------

DistGraph partition_stream(EdgeSource& source,
                           const PartitionOptions& options,
                           std::size_t chunk_edges) {
  const int devices = options.num_devices;
  if (devices < 1) {
    throw std::invalid_argument("partition_stream: need >= 1 device");
  }
  if (options.policy == Policy::GREEDY) {
    throw std::invalid_argument(
        "partition_stream: GREEDY needs random access; use "
        "partition_graph");
  }
  const VertexId n = source.num_vertices();
  if (n == 0) throw std::invalid_argument("partition_stream: empty graph");
  if (chunk_edges == 0) chunk_edges = 1;

  std::vector<Edge> chunk(chunk_edges);

  // ---- Pass 1: degree vectors (the only O(|V|) state CuSP keeps). ----
  std::vector<EdgeId> out_deg(n, 0), in_deg(n, 0);
  EdgeId total_edges = 0;
  source.rewind();
  for (std::size_t k; (k = source.next_chunk(chunk)) > 0;) {
    for (std::size_t i = 0; i < k; ++i) {
      const Edge& e = chunk[i];
      if (e.src >= n || e.dst >= n) {
        throw std::invalid_argument(
            "partition_stream: edge endpoint out of range");
      }
      ++out_deg[e.src];
      ++in_deg[e.dst];
    }
    total_edges += k;
  }

  std::vector<int> master_of = detail::assign_masters_streamable(
      options.policy, out_deg, in_deg, devices, options.seed);

  CvcGrid grid;
  if (options.policy == Policy::CVC) {
    grid = (options.grid_rows > 0 && options.grid_cols > 0)
               ? CvcGrid{options.grid_rows, options.grid_cols}
               : CvcGrid::auto_shape(devices);
    if (grid.devices() != devices) {
      throw std::invalid_argument(
          "partition_stream: CVC grid does not match device count");
    }
  }
  const EdgeId hvc_threshold =
      options.policy == Policy::HVC
          ? detail::hvc_threshold_for(options.hvc_threshold_factor,
                                      total_edges, n)
          : 0;

  // ---- Pass 2: route each edge to its owner. ----
  const bool weighted = source.weighted();
  std::vector<std::vector<detail::RawEdge>> dev_edges(devices);
  source.rewind();
  for (std::size_t k; (k = source.next_chunk(chunk)) > 0;) {
    for (std::size_t i = 0; i < k; ++i) {
      const Edge& e = chunk[i];
      const int owner = detail::edge_owner(options.policy, e.src, e.dst,
                                           master_of, in_deg,
                                           hvc_threshold, grid);
      dev_edges[owner].push_back(
          detail::RawEdge{e.src, e.dst, weighted ? e.weight : 1});
    }
  }

  std::vector<std::vector<VertexId>> dev_masters(devices);
  for (VertexId v = 0; v < n; ++v) dev_masters[master_of[v]].push_back(v);

  std::vector<LocalGraph> parts(devices);
  sim::ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(devices),
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t d = lo; d < hi; ++d) {
          parts[d] = detail::build_local_graph(
              static_cast<int>(d), dev_masters[d], dev_edges[d], out_deg,
              in_deg, weighted);
        }
      });

  PartitionStats stats = detail::compute_stats(parts, n, total_edges);
  return DistGraph::assemble(std::move(parts), std::move(master_of), n,
                             total_edges, weighted, options, grid,
                             std::move(stats));
}

}  // namespace sg::partition
