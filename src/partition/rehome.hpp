#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "partition/dist_graph.hpp"
#include "partition/local_graph.hpp"

namespace sg::partition {

/// Output of `rehome_partition`: the rebuilt layout plus everything the
/// engine needs to migrate program state and account the recovery.
struct RehomeResult {
  /// Rebuilt distributed graph. It keeps the original device count so
  /// device indices stay stable (stats arrays, topology lookups, queued
  /// events), but the lost device's part is empty — no vertex is
  /// mastered or mirrored there, so it never computes or communicates
  /// again. Logically the topology has shrunk to N-1 devices.
  DistGraph dg;
  /// Global ids whose master was re-elected onto a surviving proxy
  /// (lowest-ranked survivor holding a proxy wins).
  std::vector<graph::VertexId> rehomed;
  /// Global ids with no surviving proxy, redistributed across survivors
  /// by free-capacity (largest free headroom wins, ties to the lowest
  /// device id).
  std::vector<graph::VertexId> orphaned;
  graph::EdgeId migrated_edges = 0;   ///< edges moved off the lost device
  std::uint64_t migrated_bytes = 0;   ///< modeled transfer volume
};

/// Rebuilds `old` after the permanent loss of `lost_device`.
///
/// `lost_part` is the lost device's subgraph — re-read from the
/// checksummed partition store when one is configured, otherwise the
/// engine's in-memory copy (topology is never lost in the simulation;
/// only volatile program state is). `free_bytes[d]` is each device's
/// remaining DeviceMemory headroom; orphan placement and edge migration
/// respect it and throw a descriptive error when no survivor can absorb
/// the remainder. An empty span means "unconstrained".
///
/// Election and routing rules (all deterministic):
///  * master of a lost-mastered vertex -> lowest surviving device that
///    holds a proxy; vertices with no surviving proxy are orphans;
///  * orphans -> survivor with the most free bytes (tie: lowest id);
///  * migrated edges are grouped by source vertex and routed to the
///    lowest survivor *without* an existing proxy of that source when
///    one exists (a fresh proxy can adopt the lost proxy's archived
///    state verbatim, preserving accumulator replay cursors exactly),
///    falling back to the source's new master device.
/// `dead[d] != 0` marks devices evicted by *earlier* recoveries; they are
/// never election candidates, orphan targets, or edge routes. An empty
/// span means only `lost_device` is gone.
[[nodiscard]] RehomeResult rehome_partition(
    const DistGraph& old, int lost_device, const LocalGraph& lost_part,
    std::span<const std::uint64_t> free_bytes,
    std::span<const std::uint8_t> dead = {});

/// Output of `rebalance_partition`: the rebuilt layout plus the moved
/// master set and modeled transfer volume.
struct RebalanceResult {
  /// Rebuilt distributed graph, same device count. Unlike rehome, the
  /// source device stays *live*: it keeps its unmoved masters and
  /// becomes a mirror of the moved ones wherever its remaining edges
  /// still reference them.
  DistGraph dg;
  /// Global ids whose master moved off `hot_device`, ascending.
  std::vector<graph::VertexId> moved;
  graph::EdgeId migrated_edges = 0;  ///< edges moved off the hot device
  std::uint64_t migrated_bytes = 0;  ///< modeled transfer volume
};

/// Partial, online re-homing: moves the hottest `fraction` of
/// `hot_device`'s masters (heat = local out+in degree, the compute the
/// device spends on them; at least one always moves) onto healthier
/// devices — the GrayFailureMonitor's mitigation primitive.
///
/// Deterministic placement, mirroring rehome_partition's rules:
///  * a moved master goes to the lowest live device already holding a
///    proxy (it can adopt the archived master copy directly), else to
///    the device with the most free headroom (tie: lowest id);
///  * the hot device's out-edges of moved masters follow them to the
///    new master, shrinking the hot device's kernel share; all other
///    edges stay put.
/// `free_bytes` and `dead` behave exactly as in rehome_partition;
/// `hot_device` itself is never a placement target. Throws when no live
/// target can absorb a moved master.
[[nodiscard]] RebalanceResult rebalance_partition(
    const DistGraph& old, int hot_device, double fraction,
    std::span<const std::uint64_t> free_bytes,
    std::span<const std::uint8_t> dead = {});

}  // namespace sg::partition
