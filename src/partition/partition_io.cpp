#include "partition/partition_io.hpp"

#include <array>
#include <fstream>
#include <stdexcept>

namespace sg::partition {

namespace {

constexpr std::array<char, 4> kMagic = {'S', 'G', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("load_partition: truncated file");
  return value;
}

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::ifstream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw std::runtime_error("load_partition: truncated array");
  return v;
}

void write_local_graph(const LocalGraph& lg,
                       const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_partition: cannot open " + path.string());
  }
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  write_pod(out, lg.device);
  write_pod(out, lg.num_masters);
  write_pod(out, lg.num_local);
  write_vec(out, lg.out_offsets);
  write_vec(out, lg.out_dsts);
  write_vec(out, lg.out_weights);
  write_vec(out, lg.in_offsets);
  write_vec(out, lg.in_srcs);
  write_vec(out, lg.in_weights);
  write_vec(out, lg.l2g);
  write_vec(out, lg.vertex_flags);
  write_vec(out, lg.global_out_degree);
  write_vec(out, lg.global_in_degree);
}

LocalGraph read_local_graph(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_partition: cannot open " + path.string());
  }
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_partition: bad magic in " +
                             path.string());
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("load_partition: unsupported version");
  }
  LocalGraph lg;
  lg.device = read_pod<int>(in);
  lg.num_masters = read_pod<graph::VertexId>(in);
  lg.num_local = read_pod<graph::VertexId>(in);
  lg.out_offsets = read_vec<graph::EdgeId>(in);
  lg.out_dsts = read_vec<graph::VertexId>(in);
  lg.out_weights = read_vec<graph::Weight>(in);
  lg.in_offsets = read_vec<graph::EdgeId>(in);
  lg.in_srcs = read_vec<graph::VertexId>(in);
  lg.in_weights = read_vec<graph::Weight>(in);
  lg.l2g = read_vec<graph::VertexId>(in);
  lg.vertex_flags = read_vec<std::uint8_t>(in);
  lg.global_out_degree = read_vec<graph::VertexId>(in);
  lg.global_in_degree = read_vec<graph::VertexId>(in);
  // The host-side translation map is rebuilt rather than stored.
  lg.g2l.reserve(lg.l2g.size() * 2);
  for (graph::VertexId v = 0; v < lg.num_local; ++v) {
    lg.g2l.emplace(lg.l2g[v], v);
  }
  return lg;
}

}  // namespace

void save_partition(const DistGraph& dg, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / "manifest.sgp", std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_partition: cannot open manifest in " +
                             dir.string());
  }
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(dg.options().policy));
  write_pod(out, dg.options().num_devices);
  write_pod(out, dg.options().grid_rows);
  write_pod(out, dg.options().grid_cols);
  write_pod(out, dg.options().hvc_threshold_factor);
  write_pod(out, dg.options().seed);
  write_pod(out, dg.global_vertices());
  write_pod(out, dg.global_edges());
  write_pod(out, static_cast<std::uint8_t>(dg.weighted() ? 1 : 0));
  write_pod(out, dg.grid().rows());
  write_pod(out, dg.grid().cols());
  write_vec(out, dg.master_directory());
  // Stats (so a loaded partition reports the same quality numbers).
  write_pod(out, dg.stats().replication_factor);
  write_pod(out, dg.stats().static_balance);
  write_pod(out, dg.stats().memory_balance);
  write_pod(out, dg.stats().max_bytes);
  write_pod(out, dg.stats().total_bytes);
  write_vec(out, dg.stats().edges_per_device);
  write_vec(out, dg.stats().bytes_per_device);

  for (int d = 0; d < dg.num_devices(); ++d) {
    write_local_graph(dg.part(d),
                      dir / ("part_" + std::to_string(d) + ".sgp"));
  }
}

DistGraph load_partition(const std::filesystem::path& dir) {
  std::ifstream in(dir / "manifest.sgp", std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_partition: cannot open manifest in " +
                             dir.string());
  }
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_partition: bad manifest magic");
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("load_partition: unsupported version");
  }
  PartitionOptions opts;
  opts.policy = static_cast<Policy>(read_pod<std::uint32_t>(in));
  opts.num_devices = read_pod<int>(in);
  opts.grid_rows = read_pod<int>(in);
  opts.grid_cols = read_pod<int>(in);
  opts.hvc_threshold_factor = read_pod<double>(in);
  opts.seed = read_pod<std::uint64_t>(in);
  const auto global_vertices = read_pod<graph::VertexId>(in);
  const auto global_edges = read_pod<graph::EdgeId>(in);
  const bool weighted = read_pod<std::uint8_t>(in) != 0;
  const int grid_rows = read_pod<int>(in);
  const int grid_cols = read_pod<int>(in);
  auto master_of = read_vec<int>(in);

  PartitionStats stats;
  stats.replication_factor = read_pod<double>(in);
  stats.static_balance = read_pod<double>(in);
  stats.memory_balance = read_pod<double>(in);
  stats.max_bytes = read_pod<std::uint64_t>(in);
  stats.total_bytes = read_pod<std::uint64_t>(in);
  stats.edges_per_device = read_vec<graph::EdgeId>(in);
  stats.bytes_per_device = read_vec<std::uint64_t>(in);

  std::vector<LocalGraph> parts;
  parts.reserve(static_cast<std::size_t>(opts.num_devices));
  for (int d = 0; d < opts.num_devices; ++d) {
    parts.push_back(
        read_local_graph(dir / ("part_" + std::to_string(d) + ".sgp")));
    if (parts.back().device != d) {
      throw std::runtime_error("load_partition: part file device mismatch");
    }
  }
  const CvcGrid grid = grid_rows > 0 && grid_cols > 0
                           ? CvcGrid{grid_rows, grid_cols}
                           : CvcGrid{};
  return DistGraph::assemble(std::move(parts), std::move(master_of),
                             global_vertices, global_edges, weighted, opts,
                             grid, std::move(stats));
}

}  // namespace sg::partition
