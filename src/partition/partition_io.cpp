#include "partition/partition_io.hpp"

#include <array>
#include <stdexcept>

#include "partition/blob_io.hpp"

namespace sg::partition {

namespace {

constexpr std::array<char, 4> kMagic = {'S', 'G', 'P', 'T'};
// v2: checksummed envelope (blob_io) instead of raw streams.
constexpr std::uint32_t kVersion = 2;

void write_local_graph(const LocalGraph& lg,
                       const std::filesystem::path& path) {
  ByteWriter w;
  w.pod(lg.device);
  w.pod(lg.num_masters);
  w.pod(lg.num_local);
  w(lg.out_offsets, lg.out_dsts, lg.out_weights, lg.in_offsets, lg.in_srcs,
    lg.in_weights, lg.l2g, lg.vertex_flags, lg.global_out_degree,
    lg.global_in_degree);
  write_checksummed_file(path, kMagic, kVersion, w.bytes());
}

LocalGraph read_local_graph(const std::filesystem::path& path) {
  const auto payload =
      read_checksummed_file(path, kMagic, kVersion, "load_partition");
  ByteReader r(payload, "load_partition: " + path.string());
  LocalGraph lg;
  lg.device = r.pod<int>();
  lg.num_masters = r.pod<graph::VertexId>();
  lg.num_local = r.pod<graph::VertexId>();
  r(lg.out_offsets, lg.out_dsts, lg.out_weights, lg.in_offsets, lg.in_srcs,
    lg.in_weights, lg.l2g, lg.vertex_flags, lg.global_out_degree,
    lg.global_in_degree);
  r.expect_end();
  if (lg.l2g.size() != lg.num_local ||
      lg.vertex_flags.size() != lg.num_local) {
    throw std::runtime_error("load_partition: inconsistent vertex counts in " +
                             path.string());
  }
  // The host-side translation map is rebuilt rather than stored.
  lg.g2l.reserve(lg.l2g.size() * 2);
  for (graph::VertexId v = 0; v < lg.num_local; ++v) {
    lg.g2l.emplace(lg.l2g[v], v);
  }
  return lg;
}

}  // namespace

void save_partition(const DistGraph& dg, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  ByteWriter w;
  w.pod(static_cast<std::uint32_t>(dg.options().policy));
  w.pod(dg.options().num_devices);
  w.pod(dg.options().grid_rows);
  w.pod(dg.options().grid_cols);
  w.pod(dg.options().hvc_threshold_factor);
  w.pod(dg.options().seed);
  w.pod(dg.global_vertices());
  w.pod(dg.global_edges());
  w.pod(static_cast<std::uint8_t>(dg.weighted() ? 1 : 0));
  w.pod(dg.grid().rows());
  w.pod(dg.grid().cols());
  w.vec(dg.master_directory());
  // Stats (so a loaded partition reports the same quality numbers).
  w.pod(dg.stats().replication_factor);
  w.pod(dg.stats().static_balance);
  w.pod(dg.stats().memory_balance);
  w.pod(dg.stats().max_bytes);
  w.pod(dg.stats().total_bytes);
  w.vec(dg.stats().edges_per_device);
  w.vec(dg.stats().bytes_per_device);
  write_checksummed_file(dir / "manifest.sgp", kMagic, kVersion, w.bytes());

  for (int d = 0; d < dg.num_devices(); ++d) {
    write_local_graph(dg.part(d),
                      dir / ("part_" + std::to_string(d) + ".sgp"));
  }
}

LocalGraph load_partition_part(const std::filesystem::path& dir, int device) {
  LocalGraph lg =
      read_local_graph(dir / ("part_" + std::to_string(device) + ".sgp"));
  if (lg.device != device) {
    throw std::runtime_error("load_partition_part: part file device mismatch");
  }
  return lg;
}

DistGraph load_partition(const std::filesystem::path& dir) {
  const auto payload = read_checksummed_file(dir / "manifest.sgp", kMagic,
                                             kVersion, "load_partition");
  ByteReader r(payload, "load_partition: " + (dir / "manifest.sgp").string());
  PartitionOptions opts;
  opts.policy = static_cast<Policy>(r.pod<std::uint32_t>());
  opts.num_devices = r.pod<int>();
  opts.grid_rows = r.pod<int>();
  opts.grid_cols = r.pod<int>();
  opts.hvc_threshold_factor = r.pod<double>();
  opts.seed = r.pod<std::uint64_t>();
  const auto global_vertices = r.pod<graph::VertexId>();
  const auto global_edges = r.pod<graph::EdgeId>();
  const bool weighted = r.pod<std::uint8_t>() != 0;
  const int grid_rows = r.pod<int>();
  const int grid_cols = r.pod<int>();
  auto master_of = r.vec<int>();

  if (opts.num_devices <= 0) {
    throw std::runtime_error("load_partition: manifest device count " +
                             std::to_string(opts.num_devices) +
                             " is not positive (corrupt?)");
  }
  if (master_of.size() != global_vertices) {
    throw std::runtime_error(
        "load_partition: master directory size does not match vertex count");
  }

  PartitionStats stats;
  stats.replication_factor = r.pod<double>();
  stats.static_balance = r.pod<double>();
  stats.memory_balance = r.pod<double>();
  stats.max_bytes = r.pod<std::uint64_t>();
  stats.total_bytes = r.pod<std::uint64_t>();
  stats.edges_per_device = r.vec<graph::EdgeId>();
  stats.bytes_per_device = r.vec<std::uint64_t>();
  r.expect_end();

  std::vector<LocalGraph> parts;
  parts.reserve(static_cast<std::size_t>(opts.num_devices));
  for (int d = 0; d < opts.num_devices; ++d) {
    parts.push_back(
        read_local_graph(dir / ("part_" + std::to_string(d) + ".sgp")));
    if (parts.back().device != d) {
      throw std::runtime_error("load_partition: part file device mismatch");
    }
  }
  const CvcGrid grid = grid_rows > 0 && grid_cols > 0
                           ? CvcGrid{grid_rows, grid_cols}
                           : CvcGrid{};
  return DistGraph::assemble(std::move(parts), std::move(master_of),
                             global_vertices, global_edges, weighted, opts,
                             grid, std::move(stats));
}

}  // namespace sg::partition
