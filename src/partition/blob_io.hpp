#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace sg::partition::detail {
template <typename T>
struct is_pair : std::false_type {};
template <typename A, typename B>
struct is_pair<std::pair<A, B>> : std::true_type {};
}  // namespace sg::partition::detail

namespace sg::partition {

/// FNV-1a 64-bit content checksum. Shared by the on-disk partition
/// store and the fault subsystem's checkpoint files so both formats
/// detect truncation and bit corruption the same way (delegates to the
/// single shared implementation in util/hash.hpp).
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                                           std::uint64_t seed =
                                               util::kFnv1aOffset) {
  return util::fnv1a64(data, n, seed);
}

/// Serializes PODs and vectors into a flat byte buffer. Doubles as the
/// write-side archive for checkpointable program state: `ar(a, b, c)`
/// serializes each field in declaration order.
class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pod(const T& value) {
    const auto* p = reinterpret_cast<const char*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof value);
  }

  template <typename T>
  void vec(const std::vector<T>& v) {
    pod(static_cast<std::uint64_t>(v.size()));
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (!v.empty()) {
        const auto* p = reinterpret_cast<const char*>(v.data());
        bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
      }
    } else {
      for (const T& e : v) field(e);
    }
  }

  template <typename... Ts>
  void operator()(const Ts&... fields) {
    (field(fields), ...);
  }

  [[nodiscard]] const std::vector<char>& bytes() const { return bytes_; }
  [[nodiscard]] std::vector<char> take() { return std::move(bytes_); }

 private:
  template <typename T>
  void field(const T& f) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      pod(f);
    } else if constexpr (detail::is_pair<T>::value) {
      // std::pair is not trivially copyable even for POD members;
      // serialize memberwise (also avoids writing padding bytes).
      field(f.first);
      field(f.second);
    } else {
      vec(f);
    }
  }

  std::vector<char> bytes_;
};

/// Bounds-checked reader over a serialized buffer; every underflow or
/// implausible length throws a std::runtime_error naming `context`
/// instead of reading garbage. Doubles as the read-side archive.
class ByteReader {
 public:
  ByteReader(const std::vector<char>& data, std::string context)
      : data_(data.data()), size_(data.size()), context_(std::move(context)) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T pod() {
    need(sizeof(T), "value");
    T value;
    std::memcpy(&value, data_ + pos_, sizeof value);
    pos_ += sizeof value;
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> vec() {
    const auto n = pod<std::uint64_t>();
    std::vector<T> v;
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (n > (size_ - pos_) / sizeof(T)) {
        throw std::runtime_error(context_ + ": array length " +
                                 std::to_string(n) +
                                 " exceeds remaining file size (corrupt?)");
      }
      if (n != 0) {
        v.resize(n);
        std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
        pos_ += n * sizeof(T);
      }
    } else {
      if (n > size_ - pos_) {  // each element needs >= 1 byte
        throw std::runtime_error(context_ + ": array length " +
                                 std::to_string(n) +
                                 " exceeds remaining file size (corrupt?)");
      }
      v.resize(n);
      for (T& e : v) field(e);
    }
    return v;
  }

  template <typename... Ts>
  void operator()(Ts&... fields) {
    (field(fields), ...);
  }

  /// Asserts the buffer was consumed exactly (catches format drift).
  void expect_end() const {
    if (pos_ != size_) {
      throw std::runtime_error(context_ + ": " +
                               std::to_string(size_ - pos_) +
                               " trailing bytes after payload (corrupt?)");
    }
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  void field(T& f) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      f = pod<T>();
    } else if constexpr (detail::is_pair<T>::value) {
      field(f.first);
      field(f.second);
    } else {
      f = vec<typename T::value_type>();
    }
  }

  void need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) {
      throw std::runtime_error(context_ + ": truncated " + what + " (need " +
                               std::to_string(n) + " bytes, have " +
                               std::to_string(size_ - pos_) + ")");
    }
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// Checksummed file envelope shared by partition parts, manifests, and
/// checkpoints:  magic(4) | version(4) | payload_size(8) | payload |
/// fnv1a64(payload)(8).
inline void write_checksummed_file(const std::filesystem::path& path,
                                   std::array<char, 4> magic,
                                   std::uint32_t version,
                                   const std::vector<char>& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string() +
                             " for writing");
  }
  out.write(magic.data(), magic.size());
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  const auto size = static_cast<std::uint64_t>(payload.size());
  out.write(reinterpret_cast<const char*>(&size), sizeof size);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint64_t sum = fnv1a64(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&sum), sizeof sum);
  if (!out) {
    throw std::runtime_error("short write to " + path.string());
  }
}

/// Lowercase hex rendering of a 64-bit digest for error messages.
[[nodiscard]] inline std::string digest_hex(std::uint64_t h) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    s += kHex[(h >> shift) & 0xf];
  }
  return s;
}

/// Reads and validates a checksummed file; returns the payload. Throws
/// a descriptive std::runtime_error on missing file, bad magic,
/// version mismatch, truncation, or checksum failure. A checksum
/// failure names the stored (expected) and recomputed (actual) digest;
/// when the caller holds a known-good copy of the payload (checkpoint
/// read-back verification does), pass it as `reference` and the error
/// additionally pinpoints the byte offset of the first differing
/// block, localizing the corruption inside the blob.
[[nodiscard]] inline std::vector<char> read_checksummed_file(
    const std::filesystem::path& path, std::array<char, 4> magic,
    std::uint32_t version, const std::string& context,
    const std::vector<char>* reference = nullptr) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(context + ": cannot open " + path.string());
  }
  std::array<char, 4> file_magic{};
  in.read(file_magic.data(), file_magic.size());
  if (!in || file_magic != magic) {
    throw std::runtime_error(context + ": bad magic in " + path.string());
  }
  std::uint32_t file_version = 0;
  in.read(reinterpret_cast<char*>(&file_version), sizeof file_version);
  if (!in || file_version != version) {
    throw std::runtime_error(context + ": unsupported version " +
                             std::to_string(file_version) + " in " +
                             path.string() + " (expected " +
                             std::to_string(version) + ")");
  }
  std::uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof size);
  if (!in) {
    throw std::runtime_error(context + ": truncated header in " +
                             path.string());
  }
  // Validate the declared payload size against the actual file size
  // before allocating: a corrupted length field must produce a
  // descriptive error, not a multi-gigabyte allocation attempt.
  constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8;  // magic|version|size
  constexpr std::uint64_t kTrailerBytes = 8;         // fnv1a64 checksum
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec || file_size < kHeaderBytes + kTrailerBytes ||
      size > file_size - kHeaderBytes - kTrailerBytes) {
    throw std::runtime_error(
        context + ": declared payload size " + std::to_string(size) +
        " exceeds file size " +
        (ec ? std::string("(unknown)") : std::to_string(file_size)) +
        " in " + path.string() + " (corrupt length field?)");
  }
  std::vector<char> payload(size);
  in.read(payload.data(), static_cast<std::streamsize>(size));
  std::uint64_t stored_sum = 0;
  in.read(reinterpret_cast<char*>(&stored_sum), sizeof stored_sum);
  if (!in) {
    throw std::runtime_error(context + ": truncated payload in " +
                             path.string());
  }
  const std::uint64_t sum = fnv1a64(payload.data(), payload.size());
  if (sum != stored_sum) {
    std::string msg = context + ": checksum mismatch in " + path.string() +
                      " (expected " + digest_hex(stored_sum) + ", actual " +
                      digest_hex(sum) + ")";
    if (reference != nullptr && reference->size() == payload.size()) {
      std::size_t diff = payload.size();
      for (std::size_t i = 0; i < payload.size(); ++i) {
        if (payload[i] != (*reference)[i]) {
          diff = i;
          break;
        }
      }
      if (diff < payload.size()) {
        msg += "; first differing block at byte offset " +
               std::to_string(diff) + " of " +
               std::to_string(payload.size());
      } else {
        // Payload bytes match the reference, so the stored trailer
        // itself took the hit.
        msg += "; payload matches reference — stored checksum corrupt";
      }
    } else if (reference != nullptr) {
      msg += "; payload size " + std::to_string(payload.size()) +
             " differs from reference size " +
             std::to_string(reference->size());
    }
    msg += " (file is corrupt)";
    throw std::runtime_error(msg);
  }
  return payload;
}

}  // namespace sg::partition
