#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"

namespace sg::partition {

/// Per-vertex proxy structure flags, used by the communication substrate
/// to elide sync for proxies that cannot read / be written.
enum VertexFlag : std::uint8_t {
  kHasOutEdges = 1u << 0,
  kHasInEdges = 1u << 1,
};

/// One device's share of the distributed graph.
///
/// Local vertex ids are dense: masters first ([0, num_masters)), then
/// mirrors. Both the out-CSR (push operators) and in-CSR (pull
/// operators) are stored over local ids. `global_out_degree` carries the
/// *whole-graph* out-degree of each local vertex (pagerank divides by
/// it; a partition only sees a subset of the edges).
struct LocalGraph {
  int device = 0;
  graph::VertexId num_masters = 0;
  graph::VertexId num_local = 0;

  std::vector<graph::EdgeId> out_offsets;   // size num_local + 1
  std::vector<graph::VertexId> out_dsts;    // local ids
  std::vector<graph::Weight> out_weights;   // optional

  std::vector<graph::EdgeId> in_offsets;    // size num_local + 1
  std::vector<graph::VertexId> in_srcs;     // local ids
  std::vector<graph::Weight> in_weights;    // optional

  std::vector<graph::VertexId> l2g;         // local -> global
  std::unordered_map<graph::VertexId, graph::VertexId> g2l;
  std::vector<std::uint8_t> vertex_flags;   // VertexFlag bits
  std::vector<graph::VertexId> global_out_degree;
  std::vector<graph::VertexId> global_in_degree;

  [[nodiscard]] graph::EdgeId num_out_edges() const {
    return out_offsets.empty() ? 0 : out_offsets.back();
  }
  [[nodiscard]] graph::VertexId num_mirrors() const {
    return num_local - num_masters;
  }
  [[nodiscard]] bool is_master(graph::VertexId local) const {
    return local < num_masters;
  }
  [[nodiscard]] bool has_out(graph::VertexId local) const {
    return (vertex_flags[local] & kHasOutEdges) != 0;
  }
  [[nodiscard]] bool has_in(graph::VertexId local) const {
    return (vertex_flags[local] & kHasInEdges) != 0;
  }
  [[nodiscard]] graph::EdgeId out_degree(graph::VertexId local) const {
    return out_offsets[local + 1] - out_offsets[local];
  }
  [[nodiscard]] graph::EdgeId in_degree(graph::VertexId local) const {
    return in_offsets[local + 1] - in_offsets[local];
  }
  [[nodiscard]] std::span<const graph::VertexId> out_neighbors(
      graph::VertexId local) const {
    return {out_dsts.data() + out_offsets[local],
            static_cast<std::size_t>(out_degree(local))};
  }
  [[nodiscard]] std::span<const graph::VertexId> in_neighbors(
      graph::VertexId local) const {
    return {in_srcs.data() + in_offsets[local],
            static_cast<std::size_t>(in_degree(local))};
  }

  /// Bytes this partition occupies in device memory (graph topology
  /// only; labels and buffers are charged separately by the engine).
  [[nodiscard]] std::uint64_t bytes() const;
};

}  // namespace sg::partition
