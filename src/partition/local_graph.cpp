#include "partition/local_graph.hpp"

namespace sg::partition {

std::uint64_t LocalGraph::bytes() const {
  // What the GPU holds: both CSR directions, the local->global table,
  // the per-vertex flags, and the global out-degree array. The g2l map
  // lives host-side (Gluon memoizes translation, Section III-D2).
  std::uint64_t b = 0;
  b += out_offsets.size() * sizeof(graph::EdgeId);
  b += out_dsts.size() * sizeof(graph::VertexId);
  b += out_weights.size() * sizeof(graph::Weight);
  b += in_offsets.size() * sizeof(graph::EdgeId);
  b += in_srcs.size() * sizeof(graph::VertexId);
  b += in_weights.size() * sizeof(graph::Weight);
  b += l2g.size() * sizeof(graph::VertexId);
  b += vertex_flags.size() * sizeof(std::uint8_t);
  b += global_out_degree.size() * sizeof(graph::VertexId);
  b += global_in_degree.size() * sizeof(graph::VertexId);
  return b;
}

}  // namespace sg::partition
