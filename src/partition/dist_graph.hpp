#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "partition/cvc.hpp"
#include "partition/local_graph.hpp"
#include "partition/policy.hpp"

namespace sg::partition {

/// Partitioning configuration (CuSP-style "policy + device count").
struct PartitionOptions {
  Policy policy = Policy::OEC;
  int num_devices = 1;
  /// CVC grid override; 0 means CvcGrid::auto_shape(num_devices).
  int grid_rows = 0;
  int grid_cols = 0;
  /// HVC: a destination is "high in-degree" above factor * avg degree.
  double hvc_threshold_factor = 8.0;
  /// Seed for RANDOM master assignment and GREEDY tie-breaking.
  std::uint64_t seed = 1;
};

/// Partition-quality summary (drives Table IV's static columns and the
/// replication-factor discussion).
struct PartitionStats {
  double replication_factor = 0.0;  ///< total proxies / |V|
  double static_balance = 0.0;      ///< max/mean local edges
  double memory_balance = 0.0;      ///< max/mean partition bytes
  std::uint64_t max_bytes = 0;
  std::uint64_t total_bytes = 0;
  std::vector<graph::EdgeId> edges_per_device;
  std::vector<std::uint64_t> bytes_per_device;
};

/// The distributed graph: one LocalGraph per simulated GPU plus the
/// global master directory. Produced by `partition_graph`, consumed by
/// the communication substrate and executors.
class DistGraph {
 public:
  [[nodiscard]] int num_devices() const {
    return static_cast<int>(parts_.size());
  }
  [[nodiscard]] const std::vector<LocalGraph>& parts() const {
    return parts_;
  }
  [[nodiscard]] LocalGraph& part(int d) { return parts_[d]; }
  [[nodiscard]] const LocalGraph& part(int d) const { return parts_[d]; }
  [[nodiscard]] int master_of(graph::VertexId v) const {
    return master_of_[v];
  }
  [[nodiscard]] const std::vector<int>& master_directory() const {
    return master_of_;
  }
  [[nodiscard]] graph::VertexId global_vertices() const {
    return global_vertices_;
  }
  [[nodiscard]] graph::EdgeId global_edges() const { return global_edges_; }
  [[nodiscard]] const PartitionOptions& options() const { return options_; }
  [[nodiscard]] const CvcGrid& grid() const { return grid_; }
  [[nodiscard]] bool weighted() const { return weighted_; }
  [[nodiscard]] const PartitionStats& stats() const { return stats_; }

  friend DistGraph partition_graph(const graph::Csr& g,
                                   const PartitionOptions& options);

  /// Reassembles a DistGraph from previously computed pieces (the
  /// partition-store deserialization path; see partition_io.hpp).
  [[nodiscard]] static DistGraph assemble(
      std::vector<LocalGraph> parts, std::vector<int> master_of,
      graph::VertexId global_vertices, graph::EdgeId global_edges,
      bool weighted, PartitionOptions options, CvcGrid grid,
      PartitionStats stats);

 private:
  std::vector<LocalGraph> parts_;
  std::vector<int> master_of_;
  graph::VertexId global_vertices_ = 0;
  graph::EdgeId global_edges_ = 0;
  bool weighted_ = false;
  PartitionOptions options_;
  CvcGrid grid_;
  PartitionStats stats_;
};

/// Partitions `g` across `options.num_devices` simulated GPUs.
/// Postconditions (unit-tested):
///  * every global edge is assigned to exactly one device;
///  * every vertex has exactly one master proxy, on master_of(v);
///  * CVC: mirrors with out-edges lie in their master's grid row,
///    mirrors with in-edges in its grid column;
///  * OEC: all out-edges of a vertex are on its master device;
///  * IEC: all in-edges of a vertex are on its master device.
[[nodiscard]] DistGraph partition_graph(const graph::Csr& g,
                                        const PartitionOptions& options);

}  // namespace sg::partition
