#include "partition/policy.hpp"

#include <stdexcept>

namespace sg::partition {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::OEC: return "OEC";
    case Policy::IEC: return "IEC";
    case Policy::HVC: return "HVC";
    case Policy::CVC: return "CVC";
    case Policy::RANDOM: return "RANDOM";
    case Policy::GREEDY: return "GREEDY";
  }
  return "?";
}

Policy policy_from_string(const std::string& name) {
  if (name == "OEC" || name == "oec") return Policy::OEC;
  if (name == "IEC" || name == "iec") return Policy::IEC;
  if (name == "HVC" || name == "hvc") return Policy::HVC;
  if (name == "CVC" || name == "cvc") return Policy::CVC;
  if (name == "RANDOM" || name == "random") return Policy::RANDOM;
  if (name == "GREEDY" || name == "greedy") return Policy::GREEDY;
  throw std::invalid_argument("unknown partitioning policy: " + name);
}

}  // namespace sg::partition
