#include "partition/cvc.hpp"

#include <cmath>
#include <stdexcept>

namespace sg::partition {

CvcGrid::CvcGrid(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("CvcGrid: rows and cols must be positive");
  }
}

CvcGrid CvcGrid::auto_shape(int devices) {
  if (devices <= 0) {
    throw std::invalid_argument("CvcGrid: need >= 1 device");
  }
  const int target = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(devices))));
  for (int r = target; r <= devices; ++r) {
    if (devices % r == 0) return CvcGrid{r, devices / r};
  }
  return CvcGrid{devices, 1};
}

std::vector<int> CvcGrid::row_partners(int device) const {
  std::vector<int> out;
  const int r = row_of(device);
  for (int c = 0; c < cols_; ++c) {
    if (at(r, c) != device) out.push_back(at(r, c));
  }
  return out;
}

std::vector<int> CvcGrid::col_partners(int device) const {
  std::vector<int> out;
  const int c = col_of(device);
  for (int r = 0; r < rows_; ++r) {
    if (at(r, c) != device) out.push_back(at(r, c));
  }
  return out;
}

}  // namespace sg::partition
