#pragma once

#include <filesystem>

#include "partition/dist_graph.hpp"

namespace sg::partition {

/// On-disk partition store — the production workflow the paper
/// describes (Section IV footnote): "graphs can be partitioned once,
/// and in-memory representations of the partitions can be written to
/// disk. Applications can then load these partitions directly."
///
/// Layout under `dir`:
///   manifest.sgp   - global metadata (policy, device count, sizes,
///                    CVC grid, master directory)
///   part_<d>.sgp   - one LocalGraph per device, written verbatim
///
/// Loading reconstructs a DistGraph bit-identical to the one stored
/// (including partition statistics), so a loaded partition can be used
/// with the communication substrate and executors directly.
void save_partition(const DistGraph& dg, const std::filesystem::path& dir);

[[nodiscard]] DistGraph load_partition(const std::filesystem::path& dir);

/// Re-reads one device's part file (checksum-verified). The fault
/// layer's elastic redistribution uses this to recover a lost device's
/// subgraph from durable storage without reloading the whole store.
[[nodiscard]] LocalGraph load_partition_part(const std::filesystem::path& dir,
                                             int device);

}  // namespace sg::partition
