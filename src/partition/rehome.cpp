#include "partition/rehome.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "partition/detail.hpp"

namespace sg::partition {

namespace {

// Deterministic per-proxy cost model for capacity-aware placement:
// label/state arrays plus CSR slots. Coarse on purpose — DeviceMemory
// does the exact accounting when the engine re-charges the new layout.
constexpr std::uint64_t kVertexBytes = 48;
constexpr std::uint64_t kEdgeBytes = 16;

/// Flattens one part's out-CSR back to global-id edges, preserving CSR
/// order so rebuilt runs are bit-reproducible.
void globalize_edges(const LocalGraph& lg, std::vector<detail::RawEdge>& out) {
  const bool weighted = !lg.out_weights.empty();
  for (graph::VertexId u = 0; u < lg.num_local; ++u) {
    const graph::VertexId gu = lg.l2g[u];
    for (graph::EdgeId e = lg.out_offsets[u]; e < lg.out_offsets[u + 1];
         ++e) {
      out.push_back({gu, lg.l2g[lg.out_dsts[e]],
                     weighted ? lg.out_weights[e] : graph::Weight{1}});
    }
  }
}

}  // namespace

RehomeResult rehome_partition(const DistGraph& old, int lost_device,
                              const LocalGraph& lost_part,
                              std::span<const std::uint64_t> free_bytes,
                              std::span<const std::uint8_t> dead) {
  const int n = old.num_devices();
  const auto gone = [&](int d) {
    return d == lost_device ||
           (d < static_cast<int>(dead.size()) && dead[static_cast<std::size_t>(d)] != 0);
  };
  if (n < 2) {
    throw std::runtime_error(
        "rehome_partition: cannot evict device " +
        std::to_string(lost_device) + " from a " + std::to_string(n) +
        "-device layout (no survivors)");
  }
  if (lost_device < 0 || lost_device >= n) {
    throw std::runtime_error("rehome_partition: lost device " +
                             std::to_string(lost_device) + " out of range");
  }

  RehomeResult result;
  std::vector<int> new_master = old.master_directory();
  std::vector<std::uint64_t> headroom(static_cast<std::size_t>(n),
                                      std::numeric_limits<std::uint64_t>::max());
  if (!free_bytes.empty()) {
    for (int d = 0; d < n && d < static_cast<int>(free_bytes.size()); ++d) {
      headroom[static_cast<std::size_t>(d)] = free_bytes[d];
    }
  }
  for (int d = 0; d < n; ++d) {
    if (gone(d)) headroom[static_cast<std::size_t>(d)] = 0;
  }

  const auto charge = [&](int d, std::uint64_t bytes) {
    auto& h = headroom[static_cast<std::size_t>(d)];
    h = bytes > h ? 0 : h - bytes;
  };

  // --- Election: lowest-ranked surviving proxy holder becomes master.
  const graph::VertexId gv_count = old.global_vertices();
  for (graph::VertexId gv = 0; gv < gv_count; ++gv) {
    if (new_master[gv] != lost_device) continue;
    int elected = -1;
    for (int d = 0; d < n; ++d) {
      if (gone(d)) continue;
      if (old.part(d).g2l.contains(gv)) {
        elected = d;
        break;
      }
    }
    if (elected >= 0) {
      new_master[gv] = elected;
      result.rehomed.push_back(gv);
      charge(elected, kVertexBytes);
    } else {
      result.orphaned.push_back(gv);  // placed below, by capacity
    }
  }

  // --- Elastic redistribution: orphans go to the survivor with the
  // most free headroom (deterministic tie-break: lowest device id).
  for (const graph::VertexId gv : result.orphaned) {
    const graph::VertexId lv = lost_part.g2l.at(gv);
    const std::uint64_t cost =
        kVertexBytes + (lost_part.out_degree(lv) + lost_part.in_degree(lv)) *
                           kEdgeBytes;
    int target = -1;
    std::uint64_t best = 0;
    for (int d = 0; d < n; ++d) {
      if (gone(d)) continue;
      const std::uint64_t h = headroom[static_cast<std::size_t>(d)];
      if (target < 0 || h > best) {
        target = d;
        best = h;
      }
    }
    if (target < 0 || best < cost) {
      throw std::runtime_error(
          "rehome_partition: no surviving device can absorb orphaned vertex " +
          std::to_string(gv) + " (" + std::to_string(cost) +
          " B needed, best survivor has " + std::to_string(best) + " B free)");
    }
    new_master[gv] = target;
    charge(target, cost);
  }

  // --- Route the lost device's edges, grouped by source. A fresh proxy
  // (no survivor held one) can adopt the lost proxy's archived state
  // verbatim, so prefer a proxy-free survivor; orphans keep their edges
  // on their new home.
  std::vector<detail::RawEdge> migrated;
  globalize_edges(lost_part, migrated);
  result.migrated_edges = static_cast<graph::EdgeId>(migrated.size());
  result.migrated_bytes =
      result.migrated_edges * kEdgeBytes +
      (result.rehomed.size() + result.orphaned.size()) * kVertexBytes;

  std::unordered_map<graph::VertexId, int> route;  // source -> device
  route.reserve(lost_part.num_local * 2);
  const auto route_of = [&](graph::VertexId gu) {
    if (const auto it = route.find(gu); it != route.end()) return it->second;
    int target = -1;
    // result.orphaned is built in ascending-gv order, so binary_search
    // works; an orphan's edges stay with it on its new home device.
    if (old.master_of(gu) == lost_device &&
        std::binary_search(result.orphaned.begin(), result.orphaned.end(),
                           gu)) {
      target = new_master[gu];
    } else {
      for (int d = 0; d < n; ++d) {
        if (gone(d)) continue;
        if (!old.part(d).g2l.contains(gu)) {
          target = d;
          break;
        }
      }
      if (target < 0) target = new_master[gu];
    }
    route.emplace(gu, target);
    return target;
  };

  std::vector<std::vector<detail::RawEdge>> edges_by_dev(
      static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    if (gone(d)) continue;
    globalize_edges(old.part(d), edges_by_dev[static_cast<std::size_t>(d)]);
  }
  for (const detail::RawEdge& e : migrated) {
    const int target = route_of(e.src);
    edges_by_dev[static_cast<std::size_t>(target)].push_back(e);
    charge(target, kEdgeBytes);
  }

  // --- Rebuild every part against the new ownership map.
  std::vector<std::vector<graph::VertexId>> masters_by_dev(
      static_cast<std::size_t>(n));
  for (graph::VertexId gv = 0; gv < gv_count; ++gv) {
    masters_by_dev[static_cast<std::size_t>(new_master[gv])].push_back(gv);
  }

  std::vector<graph::EdgeId> g_out(gv_count, 0);
  std::vector<graph::EdgeId> g_in(gv_count, 0);
  for (int d = 0; d < n; ++d) {
    const LocalGraph& lg = old.part(d);
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      g_out[lg.l2g[v]] = lg.global_out_degree[v];
      g_in[lg.l2g[v]] = lg.global_in_degree[v];
    }
  }

  std::vector<LocalGraph> parts;
  parts.reserve(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    parts.push_back(detail::build_local_graph(
        d, masters_by_dev[static_cast<std::size_t>(d)],
        edges_by_dev[static_cast<std::size_t>(d)], g_out, g_in,
        old.weighted()));
  }

  PartitionStats stats =
      detail::compute_stats(parts, gv_count, old.global_edges());
  result.dg = DistGraph::assemble(std::move(parts), std::move(new_master),
                                  gv_count, old.global_edges(),
                                  old.weighted(), old.options(), old.grid(),
                                  std::move(stats));
  return result;
}

RebalanceResult rebalance_partition(const DistGraph& old, int hot_device,
                                    double fraction,
                                    std::span<const std::uint64_t> free_bytes,
                                    std::span<const std::uint8_t> dead) {
  const int n = old.num_devices();
  const auto gone = [&](int d) {
    return d == hot_device ||
           (d < static_cast<int>(dead.size()) &&
            dead[static_cast<std::size_t>(d)] != 0);
  };
  if (hot_device < 0 || hot_device >= n) {
    throw std::runtime_error("rebalance_partition: device " +
                             std::to_string(hot_device) + " out of range");
  }
  int live_targets = 0;
  for (int d = 0; d < n; ++d) {
    if (!gone(d)) ++live_targets;
  }
  if (live_targets == 0) {
    throw std::runtime_error(
        "rebalance_partition: no live device to move shards from device " +
        std::to_string(hot_device) + " onto");
  }

  const LocalGraph& hot = old.part(hot_device);
  RebalanceResult result;

  // --- Pick the hottest masters: heat is the device-local edge work
  // the master costs (out+in degree on the hot device), descending,
  // ties to the lowest global id so reruns pick the same set.
  struct Hot {
    graph::VertexId gv;
    std::uint64_t heat;
  };
  std::vector<Hot> masters;
  for (graph::VertexId v = 0; v < hot.num_local; ++v) {
    const graph::VertexId gv = hot.l2g[v];
    if (old.master_of(gv) != hot_device) continue;
    masters.push_back({gv, hot.out_degree(v) + hot.in_degree(v)});
  }
  if (masters.empty()) {
    throw std::runtime_error("rebalance_partition: device " +
                             std::to_string(hot_device) +
                             " masters no vertices to move");
  }
  std::sort(masters.begin(), masters.end(), [](const Hot& a, const Hot& b) {
    if (a.heat != b.heat) return a.heat > b.heat;
    return a.gv < b.gv;
  });
  const std::size_t want = std::clamp<std::size_t>(
      static_cast<std::size_t>(fraction *
                               static_cast<double>(masters.size())),
      1, masters.size());
  result.moved.reserve(want);
  for (std::size_t i = 0; i < want; ++i) result.moved.push_back(masters[i].gv);
  std::sort(result.moved.begin(), result.moved.end());

  // --- Place each moved master, capacity-aware like rehome's orphans.
  std::vector<int> new_master = old.master_directory();
  std::vector<std::uint64_t> headroom(
      static_cast<std::size_t>(n), std::numeric_limits<std::uint64_t>::max());
  if (!free_bytes.empty()) {
    for (int d = 0; d < n && d < static_cast<int>(free_bytes.size()); ++d) {
      headroom[static_cast<std::size_t>(d)] = free_bytes[d];
    }
  }
  for (int d = 0; d < n; ++d) {
    if (gone(d)) headroom[static_cast<std::size_t>(d)] = 0;
  }
  const auto charge = [&](int d, std::uint64_t bytes) {
    auto& h = headroom[static_cast<std::size_t>(d)];
    h = bytes > h ? 0 : h - bytes;
  };

  for (const graph::VertexId gv : result.moved) {
    const graph::VertexId lv = hot.g2l.at(gv);
    const std::uint64_t cost =
        kVertexBytes + hot.out_degree(lv) * kEdgeBytes;
    int target = -1;
    for (int d = 0; d < n; ++d) {
      if (gone(d)) continue;
      if (old.part(d).g2l.contains(gv) &&
          headroom[static_cast<std::size_t>(d)] >= cost) {
        target = d;
        break;
      }
    }
    if (target < 0) {
      std::uint64_t best = 0;
      for (int d = 0; d < n; ++d) {
        if (gone(d)) continue;
        const std::uint64_t h = headroom[static_cast<std::size_t>(d)];
        if (target < 0 || h > best) {
          target = d;
          best = h;
        }
      }
      if (target < 0 || best < cost) {
        throw std::runtime_error(
            "rebalance_partition: no live device can absorb master " +
            std::to_string(gv) + " (" + std::to_string(cost) +
            " B needed, best target has " + std::to_string(best) +
            " B free)");
      }
    }
    new_master[gv] = target;
    charge(target, cost);
  }

  // --- Rebuild: the hot device keeps every edge whose source did not
  // move; out-edges of moved masters follow the master.
  std::vector<std::vector<detail::RawEdge>> edges_by_dev(
      static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    if (d < static_cast<int>(dead.size()) &&
        dead[static_cast<std::size_t>(d)] != 0) {
      continue;
    }
    if (d != hot_device) {
      globalize_edges(old.part(d), edges_by_dev[static_cast<std::size_t>(d)]);
      continue;
    }
    const bool weighted = !hot.out_weights.empty();
    for (graph::VertexId u = 0; u < hot.num_local; ++u) {
      const graph::VertexId gu = hot.l2g[u];
      const bool moved_src = std::binary_search(
          result.moved.begin(), result.moved.end(), gu);
      for (graph::EdgeId e = hot.out_offsets[u]; e < hot.out_offsets[u + 1];
           ++e) {
        const detail::RawEdge edge{
            gu, hot.l2g[hot.out_dsts[e]],
            weighted ? hot.out_weights[e] : graph::Weight{1}};
        if (moved_src) {
          edges_by_dev[static_cast<std::size_t>(new_master[gu])].push_back(
              edge);
          ++result.migrated_edges;
        } else {
          edges_by_dev[static_cast<std::size_t>(d)].push_back(edge);
        }
      }
    }
  }
  result.migrated_bytes = result.migrated_edges * kEdgeBytes +
                          result.moved.size() * kVertexBytes;

  const graph::VertexId gv_count = old.global_vertices();
  std::vector<std::vector<graph::VertexId>> masters_by_dev(
      static_cast<std::size_t>(n));
  for (graph::VertexId gv = 0; gv < gv_count; ++gv) {
    masters_by_dev[static_cast<std::size_t>(new_master[gv])].push_back(gv);
  }

  std::vector<graph::EdgeId> g_out(gv_count, 0);
  std::vector<graph::EdgeId> g_in(gv_count, 0);
  for (int d = 0; d < n; ++d) {
    const LocalGraph& lg = old.part(d);
    for (graph::VertexId v = 0; v < lg.num_local; ++v) {
      g_out[lg.l2g[v]] = lg.global_out_degree[v];
      g_in[lg.l2g[v]] = lg.global_in_degree[v];
    }
  }

  std::vector<LocalGraph> parts;
  parts.reserve(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    parts.push_back(detail::build_local_graph(
        d, masters_by_dev[static_cast<std::size_t>(d)],
        edges_by_dev[static_cast<std::size_t>(d)], g_out, g_in,
        old.weighted()));
  }

  PartitionStats stats =
      detail::compute_stats(parts, gv_count, old.global_edges());
  result.dg = DistGraph::assemble(std::move(parts), std::move(new_master),
                                  gv_count, old.global_edges(),
                                  old.weighted(), old.options(), old.grid(),
                                  std::move(stats));
  return result;
}

}  // namespace sg::partition
