#pragma once

#include <vector>

namespace sg::partition {

/// Cartesian vertex-cut device grid.
///
/// Devices 0..D-1 occupy an r x c grid in row-major order (device d sits
/// at row d/c, column d%c). An edge whose source-master is device i and
/// destination-master is device j is assigned to the device at grid
/// position (row(i), col(j)), i.e. device (i/c)*c + (j%c).
///
/// Consequences used by the communication substrate:
///  * mirrors that carry OUT-edges of a vertex are confined to the grid
///    ROW of its master, so broadcasts only need row partners;
///  * mirrors that carry IN-edges are confined to the grid COLUMN, so
///    reductions only need column partners.
class CvcGrid {
 public:
  CvcGrid() = default;
  CvcGrid(int rows, int cols);

  /// Near-square factorization with rows >= cols, preferring the
  /// smallest divisor of `devices` at or above sqrt(devices) for the
  /// row count (8 devices -> 4x2, as in the paper's Figure 2).
  static CvcGrid auto_shape(int devices);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int devices() const { return rows_ * cols_; }

  [[nodiscard]] int row_of(int device) const { return device / cols_; }
  [[nodiscard]] int col_of(int device) const { return device % cols_; }
  [[nodiscard]] int at(int row, int col) const { return row * cols_ + col; }

  /// Device owning edge (src-master block i, dst-master block j).
  [[nodiscard]] int edge_owner(int src_master, int dst_master) const {
    return at(row_of(src_master), col_of(dst_master));
  }

  /// All devices in `device`'s grid row / column, excluding itself.
  [[nodiscard]] std::vector<int> row_partners(int device) const;
  [[nodiscard]] std::vector<int> col_partners(int device) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
};

}  // namespace sg::partition
