#pragma once

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <span>

#include "graph/csr.hpp"
#include "partition/dist_graph.hpp"

namespace sg::partition {

/// Pull-based edge stream — the input abstraction of the CuSP-style
/// streaming partitioner. A source can be replayed (two-pass
/// algorithms) and never requires the whole edge list in memory.
class EdgeSource {
 public:
  virtual ~EdgeSource() = default;

  /// Fills `out` with the next chunk; returns the number of edges
  /// written (0 = end of stream).
  virtual std::size_t next_chunk(std::span<graph::Edge> out) = 0;

  /// Restarts the stream from the beginning (pass boundaries).
  virtual void rewind() = 0;

  /// Total vertex-id space of the stream.
  [[nodiscard]] virtual graph::VertexId num_vertices() const = 0;

  /// Whether edges carry meaningful weights.
  [[nodiscard]] virtual bool weighted() const = 0;
};

/// Streams an in-memory CSR (testing / API symmetry).
class CsrEdgeSource final : public EdgeSource {
 public:
  explicit CsrEdgeSource(const graph::Csr& g) : g_(&g) {}

  std::size_t next_chunk(std::span<graph::Edge> out) override;
  void rewind() override {
    vertex_ = 0;
    edge_ = 0;
  }
  [[nodiscard]] graph::VertexId num_vertices() const override {
    return g_->num_vertices();
  }
  [[nodiscard]] bool weighted() const override { return g_->has_weights(); }

 private:
  const graph::Csr* g_;
  graph::VertexId vertex_ = 0;
  graph::EdgeId edge_ = 0;  // cursor within vertex_'s adjacency
};

/// Streams a whitespace "src dst [weight]" edge-list file without ever
/// materializing it ('#'/'%' comment lines skipped).
class EdgeListFileSource final : public EdgeSource {
 public:
  /// Scans the file once up front to learn the vertex count and
  /// weightedness (CuSP likewise takes graph metadata from the input).
  explicit EdgeListFileSource(std::filesystem::path path);

  std::size_t next_chunk(std::span<graph::Edge> out) override;
  void rewind() override;
  [[nodiscard]] graph::VertexId num_vertices() const override {
    return num_vertices_;
  }
  [[nodiscard]] bool weighted() const override { return weighted_; }

 private:
  std::filesystem::path path_;
  std::ifstream in_;
  graph::VertexId num_vertices_ = 0;
  bool weighted_ = false;
};

/// CuSP-style two-pass streaming partitioner (Hoang et al., IPDPS'19 —
/// the partitioner D-IrGL uses). Pass 1 streams the edges to compute
/// the degree vectors that drive master assignment; pass 2 streams them
/// again, routing each edge to its owner and building the per-device
/// local graphs. Peak memory is O(|V| + |E|/devices x replication)
/// instead of O(|E|) for the global CSR.
///
/// Produces a DistGraph *identical* to partition_graph on the same
/// input for every streamable policy (all but GREEDY, which needs
/// random access; requesting it throws). `chunk_edges` bounds the
/// streaming window.
[[nodiscard]] DistGraph partition_stream(EdgeSource& source,
                                         const PartitionOptions& options,
                                         std::size_t chunk_edges = 1 << 18);

}  // namespace sg::partition
