#pragma once

// Internal helpers shared by the in-memory partitioner (dist_graph.cpp)
// and the CuSP-style streaming partitioner (streaming.cpp). Not part of
// the public API.

#include <cstdint>
#include <span>
#include <vector>

#include "partition/cvc.hpp"
#include "partition/dist_graph.hpp"
#include "partition/local_graph.hpp"

namespace sg::partition::detail {

[[nodiscard]] std::uint64_t mix_hash(std::uint64_t x);

/// Splits [0, n) into `parts` contiguous ranges with roughly equal total
/// `weight` (+1 per index so empty-weight prefixes still split);
/// returns the owner of each index.
[[nodiscard]] std::vector<int> balanced_ranges(
    std::span<const graph::EdgeId> weight, int parts);

/// Master assignment for the streamable policies (everything except
/// GREEDY, which needs random access to the graph).
[[nodiscard]] std::vector<int> assign_masters_streamable(
    Policy policy, std::span<const graph::EdgeId> out_deg,
    std::span<const graph::EdgeId> in_deg, int devices, std::uint64_t seed);

/// Owner device of edge (u, v) under `policy`.
[[nodiscard]] int edge_owner(Policy policy, graph::VertexId u,
                             graph::VertexId v,
                             const std::vector<int>& master_of,
                             std::span<const graph::EdgeId> in_deg,
                             graph::EdgeId hvc_threshold,
                             const CvcGrid& grid);

/// HVC's high-in-degree threshold for a graph with `edges` edges over
/// `vertices` vertices.
[[nodiscard]] graph::EdgeId hvc_threshold_for(double factor,
                                              graph::EdgeId edges,
                                              graph::VertexId vertices);

struct RawEdge {
  graph::VertexId src, dst;
  graph::Weight w;
};

/// Builds one device's LocalGraph from its assigned edges and owned
/// masters (masters in global-id order; mirrors appended sorted).
[[nodiscard]] LocalGraph build_local_graph(
    int device, const std::vector<graph::VertexId>& masters,
    const std::vector<RawEdge>& edges,
    std::span<const graph::EdgeId> global_out_deg,
    std::span<const graph::EdgeId> global_in_deg, bool weighted);

/// Partition-quality statistics over finished parts.
[[nodiscard]] PartitionStats compute_stats(
    const std::vector<LocalGraph>& parts, graph::VertexId global_vertices,
    graph::EdgeId global_edges);

}  // namespace sg::partition::detail
