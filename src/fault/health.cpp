#include "fault/health.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace sg::fault {

PhiAccrualDetector::PhiAccrualDetector(int num_devices,
                                       const HealthPolicy& policy)
    : policy_(policy), windows_(static_cast<std::size_t>(num_devices)) {
  // Bootstrap prior: seed each window with `min_samples` nominal
  // intervals so φ is computable from the very first silence instead of
  // being blind until the window fills (cf. Akka's first-heartbeat
  // estimate). Real arrivals displace the prior as the ring wraps.
  const double nominal = policy_.heartbeat_interval.seconds();
  for (Window& w : windows_) {
    w.samples.assign(static_cast<std::size_t>(std::max(policy_.window, 1)),
                     0.0);
    for (int i = 0; i < std::max(policy_.min_samples, 1); ++i) {
      push_sample(w, nominal);
    }
  }
}

void PhiAccrualDetector::push_sample(Window& w, double seconds) {
  const auto cap = static_cast<int>(w.samples.size());
  if (w.count == cap) {
    const double old = w.samples[static_cast<std::size_t>(w.next)];
    w.sum -= old;
    w.sum_sq -= old * old;
  } else {
    ++w.count;
  }
  w.samples[static_cast<std::size_t>(w.next)] = seconds;
  w.sum += seconds;
  w.sum_sq += seconds * seconds;
  w.next = (w.next + 1) % cap;
}

void PhiAccrualDetector::observe(int device, sim::SimTime at) {
  Window& w = windows_[static_cast<std::size_t>(device)];
  if (w.seen_any) {
    push_sample(w, std::max((at - w.last).seconds(), 0.0));
  }
  w.seen_any = true;
  w.last = at;
}

double PhiAccrualDetector::phi(int device, sim::SimTime now) const {
  const Window& w = windows_[static_cast<std::size_t>(device)];
  if (w.count < policy_.min_samples) return 0.0;
  const double mean = mean_of(w);
  if (mean <= 0.0) return 0.0;
  const double var =
      std::max(w.sum_sq / w.count - mean * mean, 0.0);
  const double sd =
      std::max(std::sqrt(var), policy_.min_stddev_fraction * mean);
  const double gap = (now - w.last).seconds();
  if (gap <= 0.0) return 0.0;
  const double z = (gap - mean) / sd;
  // P(a later heartbeat arrives after a gap this long) under the
  // normal fit; floored so φ stays finite when erfc underflows.
  const double p_later =
      std::max(0.5 * std::erfc(z / std::sqrt(2.0)), 1e-300);
  return -std::log10(p_later);
}

bool PhiAccrualDetector::should_evict(int device, sim::SimTime now) const {
  const Window& w = windows_[static_cast<std::size_t>(device)];
  if (w.count < policy_.min_samples) return false;
  if (phi(device, now) < policy_.phi_evict) return false;
  const double gap = (now - w.last).seconds();
  return gap >= policy_.evict_grace_intervals * mean_of(w);
}

HeartbeatMonitor::HeartbeatMonitor(const HealthPolicy& policy,
                                   const FaultInjector* injector,
                                   int num_devices)
    : policy_(policy), injector_(injector) {
  active_ = injector_ != nullptr && injector_->active() &&
            !injector_->losses().empty();
  if (!active_) return;
  detector_ = PhiAccrualDetector(num_devices, policy_);
  next_send_.assign(static_cast<std::size_t>(num_devices),
                    policy_.heartbeat_interval);
  evicted_.assign(static_cast<std::size_t>(num_devices), false);
  suspicion_latched_.assign(static_cast<std::size_t>(num_devices), false);
}

void HeartbeatMonitor::set_metrics(obs::Registry* reg) {
  if (reg == nullptr || !active_) return;
  m_heartbeats_ = &reg->counter("health.heartbeats");
  m_suspicions_ = &reg->counter("health.suspicions");
  m_max_phi_ = &reg->gauge("health.max_phi");
}

std::vector<int> HeartbeatMonitor::advance(sim::SimTime now,
                                           FaultStats& stats) {
  std::vector<int> evictable;
  if (!active_) return evictable;
  const auto n = static_cast<int>(next_send_.size());
  for (int d = 0; d < n; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (evicted_[du]) continue;
    const sim::SimTime lost = injector_->lost_at(d);
    // Heartbeats are a runtime service: an idle device still emits
    // them, and a straggling device emits them late (its send cadence
    // stretches with the compute slowdown in effect).
    while (next_send_[du] <= now) {
      if (next_send_[du] >= lost) {
        next_send_[du] = sim::SimTime::max();  // silent forever
        break;
      }
      detector_.observe(d, next_send_[du]);
      ++stats.heartbeats_observed;
      if (m_heartbeats_ != nullptr) m_heartbeats_->inc();
      const double stretch =
          injector_->compute_slowdown(d, next_send_[du]);
      next_send_[du] =
          next_send_[du] + policy_.heartbeat_interval * stretch;
    }
    if (m_max_phi_ != nullptr) m_max_phi_->max_of(detector_.phi(d, now));
    if (detector_.should_evict(d, now)) {
      evictable.push_back(d);
    } else if (detector_.suspected(d, now)) {
      if (!suspicion_latched_[du]) {
        suspicion_latched_[du] = true;
        ++stats.straggler_suspicions;
        if (m_suspicions_ != nullptr) m_suspicions_->inc();
      }
    } else {
      suspicion_latched_[du] = false;  // recovered; re-arm the latch
    }
  }
  return evictable;
}

bool HeartbeatMonitor::all_losses_evicted() const {
  if (!active_) return true;
  for (const ResolvedCrash& l : injector_->losses()) {
    if (!evicted_[static_cast<std::size_t>(l.device)]) return false;
  }
  return true;
}

sim::SimTime HeartbeatMonitor::first_loss_at() const {
  if (!active_ || injector_->losses().empty()) return sim::SimTime::max();
  return injector_->losses().front().at;
}

}  // namespace sg::fault
