#include "fault/health.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace sg::fault {

PhiAccrualDetector::PhiAccrualDetector(int num_devices,
                                       const HealthPolicy& policy)
    : policy_(policy), windows_(static_cast<std::size_t>(num_devices)) {
  // Bootstrap prior: seed each window with `min_samples` nominal
  // intervals so φ is computable from the very first silence instead of
  // being blind until the window fills (cf. Akka's first-heartbeat
  // estimate). Real arrivals displace the prior as the ring wraps.
  const double nominal = policy_.heartbeat_interval.seconds();
  for (Window& w : windows_) {
    w.samples.assign(static_cast<std::size_t>(std::max(policy_.window, 1)),
                     0.0);
    for (int i = 0; i < std::max(policy_.min_samples, 1); ++i) {
      push_sample(w, nominal);
    }
  }
}

void PhiAccrualDetector::push_sample(Window& w, double seconds) {
  const auto cap = static_cast<int>(w.samples.size());
  if (w.count == cap) {
    const double old = w.samples[static_cast<std::size_t>(w.next)];
    w.sum -= old;
    w.sum_sq -= old * old;
  } else {
    ++w.count;
  }
  w.samples[static_cast<std::size_t>(w.next)] = seconds;
  w.sum += seconds;
  w.sum_sq += seconds * seconds;
  w.next = (w.next + 1) % cap;
}

void PhiAccrualDetector::observe(int device, sim::SimTime at) {
  Window& w = windows_[static_cast<std::size_t>(device)];
  if (w.seen_any) {
    push_sample(w, std::max((at - w.last).seconds(), 0.0));
  }
  w.seen_any = true;
  w.last = at;
}

double PhiAccrualDetector::phi(int device, sim::SimTime now) const {
  const Window& w = windows_[static_cast<std::size_t>(device)];
  if (w.count < policy_.min_samples) return 0.0;
  const double mean = mean_of(w);
  if (mean <= 0.0) return 0.0;
  const double var =
      std::max(w.sum_sq / w.count - mean * mean, 0.0);
  const double sd =
      std::max(std::sqrt(var), policy_.min_stddev_fraction * mean);
  const double gap = (now - w.last).seconds();
  if (gap <= 0.0) return 0.0;
  const double z = (gap - mean) / sd;
  // P(a later heartbeat arrives after a gap this long) under the
  // normal fit; floored so φ stays finite when erfc underflows.
  const double p_later =
      std::max(0.5 * std::erfc(z / std::sqrt(2.0)), 1e-300);
  return -std::log10(p_later);
}

bool PhiAccrualDetector::should_evict(int device, sim::SimTime now) const {
  const Window& w = windows_[static_cast<std::size_t>(device)];
  if (w.count < policy_.min_samples) return false;
  if (phi(device, now) < policy_.phi_evict) return false;
  const double gap = (now - w.last).seconds();
  return gap >= policy_.evict_grace_intervals * mean_of(w);
}

HeartbeatMonitor::HeartbeatMonitor(const HealthPolicy& policy,
                                   const FaultInjector* injector,
                                   int num_devices)
    : policy_(policy), injector_(injector) {
  active_ = injector_ != nullptr && injector_->active() &&
            (!injector_->losses().empty() ||
             !injector_->partitions().empty());
  if (!active_) return;
  detector_ = PhiAccrualDetector(num_devices, policy_);
  next_send_.assign(static_cast<std::size_t>(num_devices),
                    policy_.heartbeat_interval);
  evicted_.assign(static_cast<std::size_t>(num_devices), false);
  suspicion_latched_.assign(static_cast<std::size_t>(num_devices), false);
  precompute_fences(num_devices);
}

void HeartbeatMonitor::precompute_fences(int num_devices) {
  fence_at_.assign(static_cast<std::size_t>(num_devices),
                   sim::SimTime::max());
  origin_.assign(static_cast<std::size_t>(num_devices), sim::SimTime::max());
  from_partition_.assign(static_cast<std::size_t>(num_devices), false);

  // Simulation horizon: past the last planned silence plus enough slack
  // for the eviction rule's grace gap to elapse on the heartbeat grid
  // (scaled by the worst straggler stretch, which widens the fitted
  // mean interval).
  const sim::SimTime interval = policy_.heartbeat_interval;
  sim::SimTime horizon = interval * 16.0;
  double max_stretch = 1.0;
  for (const ResolvedCrash& l : injector_->losses()) {
    if (l.at > horizon) horizon = l.at;
  }
  for (const PartitionWindow& w : injector_->partitions()) {
    if (w.end > horizon) horizon = w.end;
  }
  if (injector_->plan() != nullptr) {
    for (const FaultEvent& e : injector_->plan()->events) {
      // Both straggler and gray-degrade slowdowns stretch the heartbeat
      // cadence, widening the fitted mean interval the grace gap scales
      // with; the horizon must cover the worst of either.
      if ((e.kind == FaultKind::kStraggler ||
           e.kind == FaultKind::kDeviceDegrade) &&
          e.severity > max_stretch) {
        max_stretch = e.severity;
      }
    }
  }
  horizon = horizon +
            interval * ((policy_.evict_grace_intervals + policy_.window + 16) *
                        max_stretch);

  for (int d = 0; d < num_devices; ++d) {
    const auto du = static_cast<std::size_t>(d);
    const sim::SimTime lost = injector_->lost_at(d);
    // Replay this device's heartbeat timeline through a scratch
    // detector. Sends keep their (straggler-stretched) cadence even
    // while partitioned — the device is alive, just unreachable — but
    // only reachable sends are observed; a lost device stops sending.
    // Between observations we scan the heartbeat grid for the first
    // eviction-rule crossing; the crossing stands even if heartbeats
    // resume later (a real detector cannot see the future), which is
    // exactly how a too-long partition converts into an eviction.
    PhiAccrualDetector scratch(1, policy_);
    sim::SimTime last_obs = sim::SimTime::zero();
    sim::SimTime scan_from = interval;
    sim::SimTime silence_start = sim::SimTime::max();  // silence origin
    bool silence_is_partition = false;
    bool fenced = false;
    sim::SimTime send = interval;
    while (!fenced) {
      const bool have_send = send < lost && send <= horizon;
      const bool observed =
          have_send && !injector_->observer_blind(d, send);
      const sim::SimTime next_send =
          have_send
              ? send + interval * injector_->compute_slowdown(d, send)
              : sim::SimTime::max();
      // Record the cause the first time this silence is entered: the
      // loss instant, or the start of the partition window hiding the
      // send. The scan below reads it, so it must be set first.
      if (!observed && silence_start == sim::SimTime::max()) {
        if (!have_send && lost <= horizon) {
          silence_start = lost;
          silence_is_partition = false;
        } else if (have_send) {
          silence_start = send;
          silence_is_partition = true;
          const int host = injector_->topology()->host_of(d);
          for (const PartitionWindow& w : injector_->partitions()) {
            if (send >= w.at && send < w.end &&
                ((w.minority_mask >> host) & 1ULL)) {
              silence_start = w.at;
              break;
            }
          }
        }
      }
      // Scan the grid for a crossing strictly before the next send
      // event (an arriving heartbeat wins ties, matching the live
      // detector which observes before judging); once no sends remain
      // the scan runs out to the horizon.
      const sim::SimTime limit =
          observed ? send
                   : (have_send ? next_send : horizon + interval);
      for (sim::SimTime t = scan_from; t < limit && t <= horizon;
           t = t + interval) {
        if (scratch.should_evict(0, t)) {
          fence_at_[du] = t;
          origin_[du] = silence_start != sim::SimTime::max()
                            ? silence_start
                            : last_obs + interval;
          from_partition_[du] = silence_is_partition;
          fenced = true;
          break;
        }
        scan_from = t + interval;
      }
      if (fenced || !have_send) break;
      if (observed) {
        scratch.observe(0, send);
        last_obs = send;
        scan_from = last_obs + interval;
        silence_start = sim::SimTime::max();  // silence broken; re-arm
        silence_is_partition = false;
      }
      send = next_send;
    }
  }
}

void HeartbeatMonitor::set_metrics(obs::Registry* reg) {
  if (reg == nullptr || !active_) return;
  m_heartbeats_ = &reg->counter("health.heartbeats");
  m_suspicions_ = &reg->counter("health.suspicions");
  m_max_phi_ = &reg->gauge("health.max_phi");
}

void HeartbeatMonitor::observe_until(sim::SimTime now, FaultStats& stats) {
  if (!active_) return;
  const auto n = static_cast<int>(next_send_.size());
  for (int d = 0; d < n; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (evicted_[du]) continue;
    const sim::SimTime lost = injector_->lost_at(d);
    // Heartbeats are a runtime service: an idle device still emits
    // them, and a straggling device emits them late (its send cadence
    // stretches with the compute slowdown in effect). A partitioned
    // minority device still emits, but its heartbeats never reach the
    // majority-side detector, so they are neither observed nor counted.
    while (next_send_[du] <= now) {
      if (next_send_[du] >= lost) {
        next_send_[du] = sim::SimTime::max();  // silent forever
        break;
      }
      if (!injector_->observer_blind(d, next_send_[du])) {
        detector_.observe(d, next_send_[du]);
        ++stats.heartbeats_observed;
        if (m_heartbeats_ != nullptr) m_heartbeats_->inc();
      }
      const double stretch =
          injector_->compute_slowdown(d, next_send_[du]);
      next_send_[du] =
          next_send_[du] + policy_.heartbeat_interval * stretch;
    }
    if (m_max_phi_ != nullptr) m_max_phi_->max_of(detector_.phi(d, now));
    if (fence_at_[du] <= now) continue;  // advance() owns the verdict
    if (detector_.suspected(d, now)) {
      if (!suspicion_latched_[du]) {
        suspicion_latched_[du] = true;
        ++stats.straggler_suspicions;
        if (m_suspicions_ != nullptr) m_suspicions_->inc();
      }
    } else {
      suspicion_latched_[du] = false;  // recovered; re-arm the latch
    }
  }
}

std::vector<int> HeartbeatMonitor::advance(sim::SimTime now,
                                           FaultStats& stats) {
  std::vector<int> evictable;
  if (!active_) return evictable;
  observe_until(now, stats);
  const auto n = static_cast<int>(next_send_.size());
  for (int d = 0; d < n; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (evicted_[du]) continue;
    // The eviction decision is the precomputed fence crossing: same
    // rule the live detector applies, but exact on the heartbeat grid
    // regardless of when the executor happens to call advance().
    if (fence_at_[du] <= now) evictable.push_back(d);
  }
  return evictable;
}

bool HeartbeatMonitor::all_losses_evicted() const {
  if (!active_) return true;
  for (std::size_t d = 0; d < fence_at_.size(); ++d) {
    if (fence_at_[d] < sim::SimTime::max() && !evicted_[d]) return false;
  }
  return true;
}

sim::SimTime HeartbeatMonitor::first_loss_at() const {
  if (!active_) return sim::SimTime::max();
  sim::SimTime first = sim::SimTime::max();
  for (std::size_t d = 0; d < origin_.size(); ++d) {
    if (fence_at_[d] < sim::SimTime::max() && origin_[d] < first) {
      first = origin_[d];
    }
  }
  return first;
}

}  // namespace sg::fault
