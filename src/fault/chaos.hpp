#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "fault/fault.hpp"
#include "obs/json.hpp"
#include "sim/sim_time.hpp"

namespace sg::fault {

/// Bounds for seeded random FaultPlan generation (the sg_chaos soak
/// harness). Plans are generated correct-by-construction against a
/// concrete cluster shape and re-checked with FaultPlan::validate, so a
/// generated plan always passes the engine's start-of-run validation.
struct ChaosSpec {
  int num_devices = 4;
  int num_hosts = 2;
  /// Expected fault-free run length; event windows are scattered across
  /// it so anomalies overlap real traffic instead of an idle tail.
  sim::SimTime horizon = sim::SimTime::micros(500.0);
  int min_events = 1;
  int max_events = 5;
  /// Probability cap for drop/corrupt/duplicate/reorder events.
  double max_anomaly_prob = 0.3;
  bool allow_drop = true;
  bool allow_corrupt = true;
  bool allow_duplicate = true;
  bool allow_reorder = true;
  bool allow_partition = true;
  bool allow_straggler = true;
  /// Permanent device losses; off by default (smoke soaks compare
  /// against a fault-free oracle, and loss coverage lives in test_fault).
  bool allow_loss = false;
  /// Gray-failure kinds (sg_chaos --gray): long, strong degradation
  /// windows the SLO oracle expects the mitigation path to recover
  /// from. Off by default so pre-existing soak seeds keep generating
  /// byte-identical plans.
  bool allow_degrade = false;       ///< kDeviceDegrade with ramps
  bool allow_link_degrade = false;  ///< kLinkDegrade with latency derate
  bool allow_pressure = false;      ///< kMemoryPressure with ramps
  /// Silent-data-corruption kinds (sg_chaos --sdc): resident-state bit
  /// flips, kernel SDC windows, and checkpoint-blob corruption. Off by
  /// default so pre-existing soak seeds keep generating byte-identical
  /// plans. kLabelBitFlip generation additionally requires
  /// `num_vertices` > 0 (flips target a concrete global vertex id).
  bool allow_label_flip = false;  ///< kLabelBitFlip
  bool allow_kernel_sdc = false;  ///< kKernelSdc windows
  bool allow_ckpt_flip = false;   ///< kCheckpointBitFlip
  /// Vertex-id bound for generated kLabelBitFlip targets; 0 disables
  /// label-flip generation even when allowed (the generator cannot
  /// guess the graph size).
  std::int64_t num_vertices = 0;
};

/// Deterministic random plan for `seed` within `spec`'s bounds: the
/// same (seed, spec) always yields the same plan, and the plan's own
/// seed is set to `seed` so the injector's per-message decisions replay
/// identically too. Throws std::runtime_error if `spec` admits no valid
/// plan (e.g. every kind disabled with min_events > 0).
[[nodiscard]] FaultPlan random_plan(std::uint64_t seed,
                                    const ChaosSpec& spec);

/// Serializes `plan` as {"seed":..,"events":[{..}, ..]} with the obs
/// layer's deterministic number formatting, so reproducer files are
/// byte-stable across reruns. Event kinds use the stable CLI spellings
/// from to_string(FaultKind) ("msg-corrupt", "net-partition", ...).
void write_plan_json(obs::JsonWriter& w, const FaultPlan& plan);
[[nodiscard]] std::string plan_to_json(const FaultPlan& plan);

/// Inverse of write_plan_json. Throws std::runtime_error naming the
/// offending field on malformed input — a reproducer that does not
/// parse is an error, never a silently-empty plan.
[[nodiscard]] FaultPlan plan_from_json(const obs::JsonValue& v);
[[nodiscard]] FaultPlan parse_plan(std::string_view text);

struct ShrinkStats {
  int probes = 0;  ///< reproduce-predicate evaluations
  int removed_events = 0;
  int narrowed_windows = 0;
};

/// Greedily shrinks a failing plan to a minimal reproducer: repeatedly
/// (1) drops events one at a time and (2) halves surviving window
/// durations, keeping every mutation for which `fails` still returns
/// true, until a fixed point. `fails(failing)` is assumed true on
/// entry; the predicate must be deterministic (replay the same
/// scenario), or the "minimal" plan is meaningless.
[[nodiscard]] FaultPlan shrink_plan(
    const FaultPlan& failing,
    const std::function<bool(const FaultPlan&)>& fails,
    ShrinkStats* stats = nullptr);

}  // namespace sg::fault
