#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_time.hpp"

namespace sg::fault {

/// Detects *gray* failures: devices that keep heartbeating and
/// answering but run slow (thermal throttling, ECC retirement, memory
/// pressure) — exactly what the φ-accrual detector is tuned to tolerate
/// rather than evict. Two per-device signals are fused into one
/// degradation score:
///
///  * heartbeat stretch — the monitor follows the same simulated
///    heartbeat stream HeartbeatMonitor sends (cadence stretched by the
///    device's compute slowdown) and keeps an EWMA of inter-arrival
///    time over the nominal interval. A healthy device sits at 1.
///  * kernel blame — per-evaluation-window mean kernel seconds,
///    z-scored against the fleet with the same population statistic
///    obs/critpath ranks stragglers by (obs/zscore.hpp).
///  * spill stall — the fraction of the window's kernel time the
///    device spent staging spilled state over PCIe (memory pressure
///    does not stretch heartbeats, and the fleet z-score saturates at
///    (n-1)/sqrt(n) on small fleets, so pressure needs its own term).
///
///   score = hb_weight * max(stretch - 1, 0) + z_weight * max(z, 0)
///         + stall_weight * stall / (kernel - stall)
///
/// Hysteresis makes the monitor deaf to transient jitter: the score
/// must hold >= score_on for `sustain_rounds` consecutive evaluations
/// before anything fires, an alert re-arms only after the score falls
/// below score_off, and `cooldown_rounds` evaluations pass between
/// actions on the same device. All state is deterministic — same plan,
/// same kernels, same decisions.
///
/// The monitor never acts by itself: evaluate() returns the devices due
/// for action and the engine decides (per MitigationPolicy::mode)
/// whether to migrate shards, evict, or — under kObserve — do nothing.
class GrayFailureMonitor {
 public:
  GrayFailureMonitor() = default;
  GrayFailureMonitor(const FaultInjector* injector, int devices,
                     const MitigationPolicy& policy,
                     const HealthPolicy& health);

  /// True when a plan with degradation faults is attached; every hook
  /// is a no-op otherwise, so a clean run stays byte-identical.
  [[nodiscard]] bool active() const { return active_; }

  /// Records one kernel of `seconds` on `device`, of which
  /// `stall_seconds` were spill stalls under memory pressure. Called
  /// from the device's own parallel phase — safe because each device
  /// only ever touches its own slot.
  void observe_kernel(int device, double seconds,
                      double stall_seconds = 0.0);

  /// A device due for mitigation (mode permitting): its fused score and
  /// whether it has exhausted its migration budget while still scoring
  /// above hopeless_score (kEvict candidates).
  struct Action {
    int device = -1;
    double score = 0.0;
    bool hopeless = false;
    /// True when the spill-stall term carries at least half the score:
    /// the device is memory-starved, not compute-derated. Mitigation
    /// uses this to decide what a migration must shed to be worth it.
    bool memory_bound = false;
  };

  /// Advances the simulated heartbeat stream to `now`, fuses both
  /// signals, applies hysteresis, and folds per-device peaks into
  /// `stats`. Single-threaded: call from a BSP fault barrier or a BASP
  /// quiescent point. Devices with `dead[d] != 0` are skipped. Returns
  /// actions only under kMigrate/kEvict; alerts are still scored and
  /// counted under kObserve.
  [[nodiscard]] std::vector<Action> evaluate(
      sim::SimTime now, const std::vector<std::uint8_t>& dead,
      FaultStats& stats);

  /// Notes that the engine migrated shards off `device`: spends one
  /// unit of its migration budget and starts the cooldown.
  void note_migration(int device);

  /// Permanently silences `device` (evicted or lost); it is never
  /// scored or returned again.
  void retire(int device);

  [[nodiscard]] double score(int device) const;
  [[nodiscard]] const MitigationPolicy& policy() const { return policy_; }

  /// Registers gray.* gauges/counters; call once after construction.
  void set_metrics(obs::Registry* metrics);

 private:
  struct DevState {
    // Written from the device's parallel phase, read+reset in
    // evaluate(); per-device isolation makes this race-free.
    std::uint64_t kernels = 0;
    double kernel_seconds = 0.0;
    double stall_seconds = 0.0;
    // Heartbeat replay + fused score, touched only in evaluate().
    sim::SimTime next_hb = sim::SimTime::zero();
    double stretch = 1.0;
    double score = 0.0;
    int sustain = 0;
    int cooldown = 0;
    int migrations = 0;
    bool alerted = false;  ///< above score_on; re-arms below score_off
    bool retired = false;
  };

  const FaultInjector* injector_ = nullptr;
  MitigationPolicy policy_;
  sim::SimTime hb_interval_ = sim::SimTime::zero();
  bool active_ = false;
  std::vector<DevState> dev_;
  obs::Gauge* m_max_score_ = nullptr;
  obs::Counter* m_alerts_ = nullptr;
  obs::Counter* m_evaluations_ = nullptr;
};

}  // namespace sg::fault
