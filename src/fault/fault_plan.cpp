#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "fault/fault.hpp"

namespace sg::fault {

namespace {

constexpr const char* kKindNames[] = {
    "device-crash", "host-crash",     "link-degrade",   "message-drop",
    "straggler",    "device-loss",    "msg-corrupt",    "msg-duplicate",
    "msg-reorder",  "net-partition",  "device-degrade", "memory-pressure",
    "label-bitflip", "kernel-sdc",    "checkpoint-bitflip",
};

/// Half-open window of event `e`; duration zero = open-ended (except
/// partitions, which validate() requires to be positive).
bool windows_overlap(const FaultEvent& a, const FaultEvent& b) {
  const sim::SimTime a_end = a.duration <= sim::SimTime::zero()
                                 ? sim::SimTime::max()
                                 : a.at + a.duration;
  const sim::SimTime b_end = b.duration <= sim::SimTime::zero()
                                 ? sim::SimTime::max()
                                 : b.at + b.duration;
  return a.at < b_end && b.at < a_end;
}

bool is_windowed(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDegrade:
    case FaultKind::kMessageDrop:
    case FaultKind::kStraggler:
    case FaultKind::kMsgCorrupt:
    case FaultKind::kMsgDuplicate:
    case FaultKind::kMsgReorder:
    case FaultKind::kNetPartition:
    case FaultKind::kDeviceDegrade:
    case FaultKind::kMemoryPressure:
    case FaultKind::kKernelSdc:
      return true;
    default:
      return false;
  }
}

bool same_target(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.device == b.device && a.host == b.host &&
         a.peer_host == b.peer_host && a.host_mask == b.host_mask &&
         a.severity == b.severity;
}

/// Diagnostic prefix naming the event, its concrete target, and its
/// full window, so shrunken chaos reproducers are self-diagnosing
/// without having to open the plan JSON.
std::string where(std::size_t i, const FaultEvent& e) {
  std::string s = "FaultPlan event " + std::to_string(i) + " (" +
                  to_string(e.kind);
  if (e.device >= 0) s += " device=" + std::to_string(e.device);
  if (e.vertex >= 0) s += " vertex=" + std::to_string(e.vertex);
  if (e.bit >= 0) s += " bit=" + std::to_string(e.bit);
  if (e.host >= 0) s += " host=" + std::to_string(e.host);
  if (e.peer_host >= 0) s += " peer_host=" + std::to_string(e.peer_host);
  if (e.host_mask != 0) s += " host_mask=0x" + [&] {
    char buf[20];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(e.host_mask));
    return std::string(buf);
  }();
  s += " at t=" + std::to_string(e.at.seconds()) + "s";
  if (e.duration > sim::SimTime::zero()) {
    s += " until t=" + std::to_string((e.at + e.duration).seconds()) + "s";
  } else if (is_windowed(e.kind)) {
    s += " open-ended";
  }
  return s + "): ";
}

}  // namespace

const char* to_string(FaultKind k) {
  return kKindNames[static_cast<std::size_t>(k)];
}

bool fault_kind_from_string(std::string_view s, FaultKind& out) {
  for (std::size_t i = 0; i < std::size(kKindNames); ++i) {
    if (s == kKindNames[i]) {
      out = static_cast<FaultKind>(i);
      return true;
    }
  }
  return false;
}

std::string FaultPlan::validate(int num_devices, int num_hosts) const {
  const auto bad_device = [&](int d) { return d < 0 || d >= num_devices; };
  const auto bad_host = [&](int h) { return h < 0 || h >= num_hosts; };
  const std::uint64_t all_hosts =
      num_hosts >= 64 ? ~0ULL : ((1ULL << num_hosts) - 1);

  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.duration < sim::SimTime::zero()) {
      return where(i, e) + "inverted window (duration " +
             std::to_string(e.duration.seconds()) + "s < 0)";
    }
    // Ramp sanity for the gray kinds that honour onset/recovery.
    if (e.kind == FaultKind::kLinkDegrade ||
        e.kind == FaultKind::kDeviceDegrade ||
        e.kind == FaultKind::kMemoryPressure) {
      if (e.onset < sim::SimTime::zero() ||
          e.recovery < sim::SimTime::zero()) {
        return where(i, e) + "negative ramp (onset " +
               std::to_string(e.onset.seconds()) + "s, recovery " +
               std::to_string(e.recovery.seconds()) + "s)";
      }
      if (e.duration > sim::SimTime::zero() &&
          e.onset + e.recovery > e.duration) {
        return where(i, e) + "ramps exceed the window (onset " +
               std::to_string(e.onset.seconds()) + "s + recovery " +
               std::to_string(e.recovery.seconds()) + "s > duration " +
               std::to_string(e.duration.seconds()) + "s)";
      }
      if (e.duration <= sim::SimTime::zero() &&
          e.recovery > sim::SimTime::zero()) {
        return where(i, e) +
               "an open-ended window cannot have a recovery ramp";
      }
    }
    switch (e.kind) {
      case FaultKind::kDeviceCrash:
      case FaultKind::kDeviceLoss:
        if (bad_device(e.device)) {
          return where(i, e) + "device " + std::to_string(e.device) +
                 " does not exist (cluster has " +
                 std::to_string(num_devices) + " devices)";
        }
        break;
      case FaultKind::kStraggler:
        if (bad_device(e.device)) {
          return where(i, e) + "device " + std::to_string(e.device) +
                 " does not exist (cluster has " +
                 std::to_string(num_devices) + " devices)";
        }
        if (!(e.severity >= 1.0)) {
          return where(i, e) + "slowdown " + std::to_string(e.severity) +
                 " must be >= 1";
        }
        break;
      case FaultKind::kHostCrash:
        if (bad_host(e.host)) {
          return where(i, e) + "host " + std::to_string(e.host) +
                 " does not exist (cluster has " +
                 std::to_string(num_hosts) + " hosts)";
        }
        break;
      case FaultKind::kLinkDegrade:
        if (bad_host(e.host) || (e.peer_host >= 0 && bad_host(e.peer_host))) {
          return where(i, e) + "link endpoint host " +
                 std::to_string(bad_host(e.host) ? e.host : e.peer_host) +
                 " does not exist (cluster has " +
                 std::to_string(num_hosts) + " hosts)";
        }
        if (!(e.severity >= 1.0)) {
          return where(i, e) + "slowdown " + std::to_string(e.severity) +
                 " must be >= 1";
        }
        if (!(e.latency_factor >= 1.0)) {
          return where(i, e) + "latency_factor " +
                 std::to_string(e.latency_factor) + " must be >= 1";
        }
        break;
      case FaultKind::kDeviceDegrade:
        if (bad_device(e.device)) {
          return where(i, e) + "device " + std::to_string(e.device) +
                 " does not exist (cluster has " +
                 std::to_string(num_devices) + " devices)";
        }
        if (!(e.severity >= 1.0)) {
          return where(i, e) + "slowdown " + std::to_string(e.severity) +
                 " must be >= 1";
        }
        break;
      case FaultKind::kMemoryPressure:
        if (bad_device(e.device)) {
          return where(i, e) + "device " + std::to_string(e.device) +
                 " does not exist (cluster has " +
                 std::to_string(num_devices) + " devices)";
        }
        if (!(e.severity > 0.0) || e.severity > 1.0 ||
            std::isnan(e.severity)) {
          return where(i, e) + "capacity fraction " +
                 std::to_string(e.severity) + " must be in (0, 1]";
        }
        break;
      case FaultKind::kMessageDrop:
      case FaultKind::kMsgCorrupt:
      case FaultKind::kMsgDuplicate:
      case FaultKind::kMsgReorder:
        if (!(e.severity >= 0.0) || e.severity > 1.0 ||
            std::isnan(e.severity)) {
          return where(i, e) + "probability " + std::to_string(e.severity) +
                 " must be in [0, 1]";
        }
        break;
      case FaultKind::kNetPartition: {
        if (e.duration <= sim::SimTime::zero()) {
          return where(i, e) +
                 "a partition needs a positive heal window (a partition "
                 "that never heals is a device loss of the whole minority "
                 "side — schedule that instead)";
        }
        if (num_hosts > 64) {
          return where(i, e) +
                 "host_mask partitions support at most 64 hosts";
        }
        const std::uint64_t side = e.host_mask & all_hosts;
        if (e.host_mask != side) {
          return where(i, e) + "host_mask names hosts beyond the cluster's " +
                 std::to_string(num_hosts) + " hosts";
        }
        if (side == 0 || side == all_hosts) {
          return where(i, e) +
                 "host_mask must split the hosts into two non-empty sides";
        }
        break;
      }
      case FaultKind::kLabelBitFlip:
        if (bad_device(e.device)) {
          return where(i, e) + "device " + std::to_string(e.device) +
                 " does not exist (cluster has " +
                 std::to_string(num_devices) + " devices)";
        }
        if (e.vertex < 0) {
          return where(i, e) + "vertex " + std::to_string(e.vertex) +
                 " must name a global vertex id (>= 0)";
        }
        if (e.bit < -1 || e.bit >= 64) {
          return where(i, e) + "bit " + std::to_string(e.bit) +
                 " must be -1 (seed-derived) or in [0, 64)";
        }
        break;
      case FaultKind::kKernelSdc:
        if (bad_device(e.device)) {
          return where(i, e) + "device " + std::to_string(e.device) +
                 " does not exist (cluster has " +
                 std::to_string(num_devices) + " devices)";
        }
        if (!(e.severity > 0.0) || e.severity > 1.0 ||
            std::isnan(e.severity)) {
          return where(i, e) + "perturbation probability " +
                 std::to_string(e.severity) + " must be in (0, 1]";
        }
        if (e.duration <= sim::SimTime::zero()) {
          return where(i, e) +
                 "kernel SDC needs a positive window (an ALU that is wrong "
                 "forever is a device to evict, not a fault to tolerate)";
        }
        break;
      case FaultKind::kCheckpointBitFlip:
        if (bad_device(e.device)) {
          return where(i, e) + "device " + std::to_string(e.device) +
                 " does not exist (cluster has " +
                 std::to_string(num_devices) + " devices)";
        }
        break;
    }
  }

  // Permanent-loss contradictions: once a device is lost it can never
  // crash, straggle, or be lost again.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& loss = events[i];
    if (loss.kind != FaultKind::kDeviceLoss) continue;
    for (std::size_t j = 0; j < events.size(); ++j) {
      if (j == i) continue;
      const FaultEvent& e = events[j];
      if (e.device != loss.device) continue;
      const bool device_targeted = e.kind == FaultKind::kDeviceCrash ||
                                   e.kind == FaultKind::kStraggler ||
                                   e.kind == FaultKind::kDeviceLoss ||
                                   e.kind == FaultKind::kDeviceDegrade ||
                                   e.kind == FaultKind::kMemoryPressure ||
                                   e.kind == FaultKind::kLabelBitFlip ||
                                   e.kind == FaultKind::kKernelSdc ||
                                   e.kind == FaultKind::kCheckpointBitFlip;
      if (!device_targeted) continue;
      const bool duplicate_loss =
          e.kind == FaultKind::kDeviceLoss && j > i;
      if (duplicate_loss || (e.kind != FaultKind::kDeviceLoss &&
                             !(e.at < loss.at))) {
        return where(j, e) + "device " + std::to_string(e.device) +
               " is permanently lost at t=" +
               std::to_string(loss.at.seconds()) +
               "s (event " + std::to_string(i) +
               ") and cannot be targeted at or after that";
      }
    }
  }

  // Duplicated windows: two identical windowed events whose windows
  // overlap double-apply the same fault — almost always a plan bug.
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!is_windowed(events[i].kind)) continue;
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (!same_target(events[i], events[j])) continue;
      if (windows_overlap(events[i], events[j])) {
        return where(j, events[j]) +
               "overlaps an identical window (event " + std::to_string(i) +
               ") — merge or separate them";
      }
    }
  }
  return {};
}

void FaultPlan::validate_or_throw(int num_devices, int num_hosts) const {
  const std::string err = validate(num_devices, num_hosts);
  if (!err.empty()) throw std::invalid_argument(err);
}

}  // namespace sg::fault
