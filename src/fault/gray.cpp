#include "fault/gray.hpp"

#include <algorithm>

#include "obs/zscore.hpp"

namespace sg::fault {

GrayFailureMonitor::GrayFailureMonitor(const FaultInjector* injector,
                                       int devices,
                                       const MitigationPolicy& policy,
                                       const HealthPolicy& health)
    : injector_(injector),
      policy_(policy),
      hb_interval_(health.heartbeat_interval) {
  active_ = injector_ != nullptr && injector_->active() &&
            injector_->has_degradation();
  if (!active_) return;
  dev_.resize(static_cast<std::size_t>(devices));
  for (auto& d : dev_) d.next_hb = hb_interval_;
}

void GrayFailureMonitor::observe_kernel(int device, double seconds,
                                        double stall_seconds) {
  if (!active_) return;
  DevState& d = dev_[static_cast<std::size_t>(device)];
  ++d.kernels;
  d.kernel_seconds += seconds;
  d.stall_seconds += stall_seconds;
}

void GrayFailureMonitor::set_metrics(obs::Registry* metrics) {
  if (!active_ || metrics == nullptr) return;
  m_max_score_ = &metrics->gauge("gray.max_score");
  m_alerts_ = &metrics->counter("gray.alerts");
  m_evaluations_ = &metrics->counter("gray.evaluations");
}

std::vector<GrayFailureMonitor::Action> GrayFailureMonitor::evaluate(
    sim::SimTime now, const std::vector<std::uint8_t>& dead,
    FaultStats& stats) {
  std::vector<Action> actions;
  if (!active_) return actions;
  if (m_evaluations_ != nullptr) m_evaluations_->inc();

  const auto live = [&](std::size_t d) {
    return !dev_[d].retired && (d >= dead.size() || dead[d] == 0);
  };

  // Kernel blame: per-device mean kernel seconds over this evaluation
  // window, z-scored against the fleet (same statistic as sg_explain's
  // straggler ranking). Devices with no kernels this window sit out.
  std::vector<double> means;
  std::vector<std::size_t> who;
  for (std::size_t d = 0; d < dev_.size(); ++d) {
    if (!live(d) || dev_[d].kernels == 0) continue;
    means.push_back(dev_[d].kernel_seconds /
                    static_cast<double>(dev_[d].kernels));
    who.push_back(d);
  }
  const std::vector<double> zs = obs::population_zscores(means);
  std::vector<double> z(dev_.size(), 0.0);
  for (std::size_t i = 0; i < who.size(); ++i) z[who[i]] = zs[i];

  double max_score = 0.0;
  for (std::size_t d = 0; d < dev_.size(); ++d) {
    DevState& st = dev_[d];
    // Spill-stall share of this window's kernel time, expressed as the
    // equivalent slowdown-minus-one (stall over the stall-free base) so
    // it composes with the stretch term on the same scale.
    const double base = st.kernel_seconds - st.stall_seconds;
    const double stall_ratio =
        st.stall_seconds > 0.0 && base > 0.0 ? st.stall_seconds / base
        : st.stall_seconds > 0.0             ? 1.0
                                             : 0.0;
    st.kernels = 0;
    st.kernel_seconds = 0.0;
    st.stall_seconds = 0.0;
    if (!live(d)) continue;

    // Heartbeat stretch: replay the simulated heartbeat stream up to
    // `now`. Each arrival's inter-arrival time is the nominal interval
    // stretched by the compute slowdown in effect when it was sent —
    // the same cadence HeartbeatMonitor models — EWMA-smoothed into a
    // stretch estimate that decays back to 1 after recovery.
    while (st.next_hb <= now) {
      const double slow =
          injector_->compute_slowdown(static_cast<int>(d), st.next_hb);
      st.stretch = (1.0 - policy_.stretch_alpha) * st.stretch +
                   policy_.stretch_alpha * slow;
      st.next_hb = st.next_hb + hb_interval_ * slow;
    }

    const double stall_term = policy_.stall_weight * stall_ratio;
    st.score = policy_.hb_weight * std::max(st.stretch - 1.0, 0.0) +
               policy_.z_weight * std::max(z[d], 0.0) + stall_term;
    const bool memory_bound =
        st.score > 0.0 && stall_term >= 0.5 * st.score;
    max_score = std::max(max_score, st.score);
    DegradeStats& ledger = stats.degrade_for(static_cast<int>(d));
    ledger.peak_score = std::max(ledger.peak_score, st.score);

    if (st.cooldown > 0) {
      --st.cooldown;
      continue;
    }
    if (st.score >= policy_.score_on) {
      ++st.sustain;
    } else {
      st.sustain = 0;
      if (st.score < policy_.score_off) st.alerted = false;
    }
    // Confidence-scaled hysteresis: a mild crossing must hold for
    // sustain_rounds consecutive evaluations (a transient blip's EWMA
    // decays below score_on before its confirmation round), but a
    // score at or past hopeless_score is unambiguous — waiting a round
    // to confirm a 5x derate just pays the fault for longer.
    if (st.sustain < policy_.sustain_rounds &&
        st.score < policy_.hopeless_score)
      continue;
    if (!st.alerted) {
      st.alerted = true;
      ++stats.gray_alerts;
      if (m_alerts_ != nullptr) m_alerts_->inc();
    }
    if (policy_.mode == MitigationMode::kObserve) continue;
    // Liveness probe: the stretch EWMA keeps the score above threshold
    // for a while after a transient degrade ends, and migrating a
    // device that has already recovered is pure churn. Before acting,
    // send one on-demand probe — modeled as reading the slowdown in
    // effect right now — and stand down unless the degradation still
    // shows there or in this window's spill stalls (fresh by
    // construction). The alert above still fires and counts either way.
    const double probe = injector_->compute_slowdown(static_cast<int>(d), now);
    const bool fault_live = probe > 1.0 + 1e-9 || stall_term > 0.0;
    if (!fault_live) continue;
    const bool budget_spent =
        st.migrations >= policy_.max_migrations_per_device;
    if (budget_spent) {
      if (policy_.mode == MitigationMode::kEvict &&
          st.score >= policy_.hopeless_score) {
        actions.push_back({static_cast<int>(d), st.score, true,
                           memory_bound});
      }
      continue;
    }
    actions.push_back({static_cast<int>(d), st.score, false, memory_bound});
  }
  if (m_max_score_ != nullptr) m_max_score_->max_of(max_score);
  return actions;
}

void GrayFailureMonitor::note_migration(int device) {
  if (!active_) return;
  DevState& st = dev_[static_cast<std::size_t>(device)];
  ++st.migrations;
  st.cooldown = policy_.cooldown_rounds;
  st.sustain = 0;
}

void GrayFailureMonitor::retire(int device) {
  if (!active_) return;
  dev_[static_cast<std::size_t>(device)].retired = true;
}

double GrayFailureMonitor::score(int device) const {
  if (!active_) return 0.0;
  return dev_[static_cast<std::size_t>(device)].score;
}

}  // namespace sg::fault
