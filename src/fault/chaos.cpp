#include "fault/chaos.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace sg::fault {

namespace {

/// True when the minority side of partition mask `m` (fewer hosts;
/// tie goes to side A, matching FaultEvent::host_mask semantics on the
/// equal-devices-per-host topologies the harness uses) contains host 0.
bool minority_has_host0(std::uint64_t m, int num_hosts) {
  const std::uint64_t all =
      num_hosts >= 64 ? ~0ULL : ((1ULL << num_hosts) - 1);
  const int pa = std::popcount(m);
  const std::uint64_t minority =
      pa <= num_hosts - pa ? m : (~m & all);
  return (minority & 1ULL) != 0;
}

/// Nonempty proper subset of the first `num_hosts` host bits whose
/// minority side excludes host 0: a partition that outlasts detection
/// evicts its minority side, and keeping host 0 on the majority
/// guarantees every generated plan leaves survivors to re-home onto —
/// even when several partition windows overlap.
std::uint64_t random_side_mask(sim::Rng& rng, int num_hosts) {
  const std::uint64_t all =
      num_hosts >= 64 ? ~0ULL : ((1ULL << num_hosts) - 1);
  std::uint64_t m = 0;
  do {
    m = rng.next() & all;
  } while (m == 0 || m == all || minority_has_host0(m, num_hosts));
  return m;
}

FaultPlan generate(std::uint64_t stream, std::uint64_t plan_seed,
                   const ChaosSpec& spec) {
  sim::Rng rng(stream ^ 0x5347434853ULL);  // "SGCHS"
  FaultPlan plan;
  plan.seed = plan_seed;

  std::vector<FaultKind> kinds;
  if (spec.allow_drop) kinds.push_back(FaultKind::kMessageDrop);
  if (spec.allow_corrupt) kinds.push_back(FaultKind::kMsgCorrupt);
  if (spec.allow_duplicate) kinds.push_back(FaultKind::kMsgDuplicate);
  if (spec.allow_reorder) kinds.push_back(FaultKind::kMsgReorder);
  if (spec.allow_partition && spec.num_hosts >= 2) {
    kinds.push_back(FaultKind::kNetPartition);
  }
  if (spec.allow_straggler && spec.num_devices >= 1) {
    kinds.push_back(FaultKind::kStraggler);
  }
  if (spec.allow_loss && spec.num_devices >= 2) {
    kinds.push_back(FaultKind::kDeviceLoss);
  }
  if (spec.allow_degrade && spec.num_devices >= 2) {
    kinds.push_back(FaultKind::kDeviceDegrade);
  }
  if (spec.allow_link_degrade && spec.num_hosts >= 2) {
    kinds.push_back(FaultKind::kLinkDegrade);
  }
  if (spec.allow_pressure && spec.num_devices >= 2) {
    kinds.push_back(FaultKind::kMemoryPressure);
  }
  if (spec.allow_label_flip && spec.num_devices >= 1 &&
      spec.num_vertices > 0) {
    kinds.push_back(FaultKind::kLabelBitFlip);
  }
  if (spec.allow_kernel_sdc && spec.num_devices >= 1) {
    kinds.push_back(FaultKind::kKernelSdc);
  }
  if (spec.allow_ckpt_flip && spec.num_devices >= 1) {
    kinds.push_back(FaultKind::kCheckpointBitFlip);
  }
  if (kinds.empty()) return plan;

  const int lo = std::max(spec.min_events, 0);
  const int hi = std::max(spec.max_events, lo);
  const int n =
      lo + static_cast<int>(rng.bounded(static_cast<std::uint64_t>(
               hi - lo + 1)));
  const double h = std::max(spec.horizon.seconds(), 1e-9);
  for (int i = 0; i < n; ++i) {
    const FaultKind k = kinds[rng.bounded(kinds.size())];
    const sim::SimTime at{h * 0.8 * rng.uniform()};
    // Windows cover 10-60% of the horizon: long enough to overlap real
    // traffic, short enough that partitions usually heal mid-run.
    const sim::SimTime dur{h * (0.1 + 0.5 * rng.uniform())};
    const double prob =
        spec.max_anomaly_prob * (0.2 + 0.8 * rng.uniform());
    switch (k) {
      case FaultKind::kMessageDrop:
        plan.drop_messages(prob, at, dur);
        break;
      case FaultKind::kMsgCorrupt:
        plan.corrupt_messages(prob, at, dur);
        break;
      case FaultKind::kMsgDuplicate:
        plan.duplicate_messages(prob, at, dur);
        break;
      case FaultKind::kMsgReorder:
        plan.reorder_messages(prob, at, dur);
        break;
      case FaultKind::kNetPartition:
        plan.partition_hosts(random_side_mask(rng, spec.num_hosts), at, dur);
        break;
      case FaultKind::kStraggler:
        plan.straggle(
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_devices))),
            at, dur, 1.5 + 3.0 * rng.uniform());
        break;
      case FaultKind::kDeviceLoss:
        // Late in the run, and never device 0 (keep a survivor with
        // the conventional default source / master tie-breaks).
        plan.lose_device(
            1 + static_cast<int>(rng.bounded(static_cast<std::uint64_t>(
                    spec.num_devices - 1))),
            sim::SimTime{h * (0.3 + 0.5 * rng.uniform())});
        break;
      case FaultKind::kDeviceDegrade: {
        // Gray failures must be long and strong to be worth mitigating:
        // the window starts early and covers 40-80% of the horizon, the
        // slowdown is well past any straggler the detector tolerates,
        // and half the windows ramp in/out so onset detection latency
        // is exercised. Ramps stay within the window by construction.
        const sim::SimTime gat{h * 0.3 * rng.uniform()};
        const sim::SimTime gdur{h * (0.4 + 0.4 * rng.uniform())};
        const bool ramped = (rng.next() & 1ULL) != 0;
        const sim::SimTime ramp =
            ramped ? gdur * (0.05 + 0.10 * rng.uniform())
                   : sim::SimTime::zero();
        plan.degrade_device(
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_devices))),
            gat, gdur, 4.0 + 4.0 * rng.uniform(), ramp, ramp);
        break;
      }
      case FaultKind::kLinkDegrade: {
        const int host =
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_hosts)));
        int peer =
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_hosts - 1)));
        if (peer >= host) ++peer;
        plan.degrade_link(host, peer, sim::SimTime{h * 0.3 * rng.uniform()},
                          sim::SimTime{h * (0.4 + 0.4 * rng.uniform())},
                          2.0 + 4.0 * rng.uniform(),
                          1.0 + 3.0 * rng.uniform());
        break;
      }
      case FaultKind::kLabelBitFlip:
        // Low bits only: every label type in the system is at least 32
        // bits wide, so the flip is meaningful regardless of benchmark.
        plan.flip_label(
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_devices))),
            static_cast<std::int64_t>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_vertices))),
            static_cast<int>(rng.bounded(32)), at);
        break;
      case FaultKind::kKernelSdc:
        plan.sdc_kernel(
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_devices))),
            at, dur, std::max(prob, 0.05));
        break;
      case FaultKind::kCheckpointBitFlip:
        plan.corrupt_checkpoint(
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_devices))),
            at);
        break;
      case FaultKind::kMemoryPressure: {
        const sim::SimTime pat{h * 0.3 * rng.uniform()};
        const sim::SimTime pdur{h * (0.4 + 0.4 * rng.uniform())};
        const bool ramped = (rng.next() & 1ULL) != 0;
        const sim::SimTime ramp =
            ramped ? pdur * (0.05 + 0.10 * rng.uniform())
                   : sim::SimTime::zero();
        plan.pressure_memory(
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(spec.num_devices))),
            pat, pdur, 0.3 + 0.6 * rng.uniform(), ramp, ramp);
        break;
      }
      default:
        break;
    }
  }
  return plan;
}

}  // namespace

FaultPlan random_plan(std::uint64_t seed, const ChaosSpec& spec) {
  // Random plans are valid by construction except for rare structural
  // collisions (identical overlapping windows, a device lost twice);
  // regenerate from a bumped stream rather than emitting a plan the
  // engine would reject at startup.
  for (std::uint64_t bump = 0; bump < 64; ++bump) {
    FaultPlan p = generate(seed + (bump << 48), seed, spec);
    if (p.validate(spec.num_devices, spec.num_hosts).empty()) return p;
  }
  throw std::runtime_error(
      "chaos: could not generate a valid plan for seed " +
      std::to_string(seed) + " within the given ChaosSpec");
}

void write_plan_json(obs::JsonWriter& w, const FaultPlan& plan) {
  w.begin_object();
  w.kv("seed", plan.seed);
  w.key("events").begin_array();
  for (const FaultEvent& e : plan.events) {
    w.begin_object();
    w.kv("kind", to_string(e.kind));
    w.kv("at_s", e.at.seconds());
    if (e.duration > sim::SimTime::zero()) {
      w.kv("duration_s", e.duration.seconds());
    }
    if (e.device >= 0) w.kv("device", e.device);
    if (e.host >= 0) w.kv("host", e.host);
    if (e.peer_host >= 0) w.kv("peer_host", e.peer_host);
    if (e.severity != 0.0) w.kv("severity", e.severity);
    if (e.host_mask != 0) w.kv("host_mask", e.host_mask);
    // Gray-failure fields only when non-default, so reproducers written
    // before these fields existed stay byte-identical on rewrite.
    if (e.onset > sim::SimTime::zero()) w.kv("onset_s", e.onset.seconds());
    if (e.recovery > sim::SimTime::zero()) {
      w.kv("recovery_s", e.recovery.seconds());
    }
    if (e.latency_factor != 1.0) w.kv("latency_factor", e.latency_factor);
    // SDC fields only when non-default, same compatibility rule.
    if (e.vertex >= 0) w.kv("vertex", e.vertex);
    if (e.bit >= 0) w.kv("bit", e.bit);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string plan_to_json(const FaultPlan& plan) {
  obs::JsonWriter w;
  write_plan_json(w, plan);
  return w.take();
}

namespace {

double require_number(const obs::JsonValue& v, const char* key,
                      const char* what) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr || f->kind != obs::JsonValue::Kind::kNumber) {
    throw std::runtime_error(std::string("fault plan: ") + what +
                             " is missing numeric \"" + key + "\"");
  }
  return f->number;
}

double number_or(const obs::JsonValue& v, const char* key, double dflt) {
  const obs::JsonValue* f = v.find(key);
  return f != nullptr ? f->num_or(dflt) : dflt;
}

}  // namespace

FaultPlan plan_from_json(const obs::JsonValue& v) {
  if (!v.is_object()) {
    throw std::runtime_error("fault plan: not a JSON object");
  }
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(require_number(v, "seed", "plan"));
  const obs::JsonValue* events = v.find("events");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("fault plan: missing \"events\" array");
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const obs::JsonValue& ev = events->array[i];
    const std::string at = "event " + std::to_string(i);
    if (!ev.is_object()) {
      throw std::runtime_error("fault plan: " + at + " is not an object");
    }
    const obs::JsonValue* kind = ev.find("kind");
    if (kind == nullptr || kind->kind != obs::JsonValue::Kind::kString) {
      throw std::runtime_error("fault plan: " + at +
                               " is missing string \"kind\"");
    }
    FaultEvent e;
    if (!fault_kind_from_string(kind->string, e.kind)) {
      throw std::runtime_error("fault plan: " + at +
                               " has unknown kind \"" + kind->string + "\"");
    }
    e.at = sim::SimTime{require_number(ev, "at_s", at.c_str())};
    e.duration = sim::SimTime{number_or(ev, "duration_s", 0.0)};
    e.device = static_cast<int>(number_or(ev, "device", -1.0));
    e.host = static_cast<int>(number_or(ev, "host", -1.0));
    e.peer_host = static_cast<int>(number_or(ev, "peer_host", -1.0));
    e.severity = number_or(ev, "severity", 0.0);
    e.host_mask =
        static_cast<std::uint64_t>(number_or(ev, "host_mask", 0.0));
    e.onset = sim::SimTime{number_or(ev, "onset_s", 0.0)};
    e.recovery = sim::SimTime{number_or(ev, "recovery_s", 0.0)};
    e.latency_factor = number_or(ev, "latency_factor", 1.0);
    e.vertex = static_cast<std::int64_t>(number_or(ev, "vertex", -1.0));
    e.bit = static_cast<int>(number_or(ev, "bit", -1.0));
    plan.events.push_back(e);
  }
  return plan;
}

FaultPlan parse_plan(std::string_view text) {
  return plan_from_json(obs::parse_json(text));
}

FaultPlan shrink_plan(const FaultPlan& failing,
                      const std::function<bool(const FaultPlan&)>& fails,
                      ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  FaultPlan best = failing;
  bool progress = true;
  while (progress) {
    progress = false;
    // Pass 1: drop events one at a time (from the back, so earlier
    // indices stay valid across erases within the pass).
    for (std::size_t i = best.events.size(); i-- > 0;) {
      FaultPlan cand = best;
      cand.events.erase(cand.events.begin() +
                        static_cast<std::ptrdiff_t>(i));
      ++st.probes;
      if (fails(cand)) {
        best = std::move(cand);
        ++st.removed_events;
        progress = true;
      }
    }
    // Pass 2: halve the windows that remain (floor at 1us — below that
    // the window is effectively a point and halving churns forever).
    for (std::size_t i = 0; i < best.events.size(); ++i) {
      if (best.events[i].duration <= sim::SimTime::micros(1.0)) continue;
      FaultPlan cand = best;
      cand.events[i].duration = cand.events[i].duration * 0.5;
      // Keep ramps inside the halved window (validate() rejects
      // onset + recovery > duration, and a reproducer must stay valid).
      cand.events[i].onset = cand.events[i].onset * 0.5;
      cand.events[i].recovery = cand.events[i].recovery * 0.5;
      ++st.probes;
      if (fails(cand)) {
        best = std::move(cand);
        ++st.narrowed_windows;
        progress = true;
      }
    }
  }
  return best;
}

}  // namespace sg::fault
