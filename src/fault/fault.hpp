#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sim_time.hpp"

namespace sg::fault {

/// Fault taxonomy injected on the simulated timeline. Matches the
/// failure modes a 32-host multi-GPU cluster actually sees (ROADMAP
/// north star): whole-device loss, whole-host loss, degraded links,
/// lossy links, slow devices, and byzantine network behaviour
/// (corruption, duplication, reordering, partitions).
enum class FaultKind : std::uint8_t {
  kDeviceCrash,   ///< one device loses all volatile program state
  kHostCrash,     ///< every device on the host crashes simultaneously
  kLinkDegrade,   ///< cross-host bandwidth cut by `severity` for a window
  kMessageDrop,   ///< each delivery attempt dropped with prob `severity`
  kStraggler,     ///< device compute slowed by factor `severity`
  kDeviceLoss,    ///< device silently dies forever (no replacement)
  kMsgCorrupt,    ///< payload values bit-flipped with prob `severity`
  kMsgDuplicate,  ///< delivered payload also arrives again with prob
  kMsgReorder,    ///< payload delayed past later traffic with prob
  kNetPartition,  ///< host groups severed for [at, at+duration)
  // Gray failures: the device keeps heartbeating and answering, it is
  // just *slow* — thermal throttling, ECC retirement, memory pressure.
  // Exactly the modes the φ-accrual detector tolerates rather than
  // evicts; the GrayFailureMonitor handles them instead.
  kDeviceDegrade,   ///< compute slowed by `severity` with onset/recovery ramps
  kMemoryPressure,  ///< `severity` fraction of device memory squatted
  // Silent data corruption: the device computes and communicates on
  // time, but a value in its resident state is wrong — cosmic-ray /
  // weak-cell bit flips and defective-ALU kernel corruption. Nothing
  // on the wire or the timeline betrays them; only the integrity
  // auditor (src/integrity/) can catch them.
  kLabelBitFlip,      ///< flip bit `bit` of vertex `vertex`'s label on `device`
  kKernelSdc,         ///< window where `device`'s label updates are perturbed
  kCheckpointBitFlip, ///< corrupt `device`'s checkpoint blob after its
                      ///< checksum is written (latent until restore)
};

/// Stable CLI spelling (e.g. "msg-corrupt", "net-partition").
[[nodiscard]] const char* to_string(FaultKind k);
/// Inverse of to_string; returns false when `s` names no fault kind.
[[nodiscard]] bool fault_kind_from_string(std::string_view s, FaultKind& out);

/// One scheduled fault. `at` is absolute simulated time; `duration`
/// of zero means open-ended (lasts to the end of the run) except for
/// kNetPartition, which requires a positive window (a partition that
/// never heals is a device loss of the whole minority side). `severity`
/// is a slowdown multiplier (>= 1) for kLinkDegrade / kStraggler /
/// kDeviceDegrade, a probability in [0, 1] for kMessageDrop /
/// kMsgCorrupt / kMsgDuplicate / kMsgReorder, and a capacity fraction
/// in (0, 1] for kMemoryPressure; unused for crashes and partitions.
struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceCrash;
  sim::SimTime at = sim::SimTime::zero();
  sim::SimTime duration = sim::SimTime::zero();
  int device = -1;     ///< kDeviceCrash / kStraggler target
  int host = -1;       ///< kHostCrash target; link endpoint for windows
  int peer_host = -1;  ///< other link endpoint (-1 = any peer)
  double severity = 0.0;
  /// kNetPartition: bit i set = host i is on side A; the rest form
  /// side B. The side with fewer devices is the minority (tie: side A)
  /// and is the one fenced/evicted if the window outlasts detection.
  std::uint64_t host_mask = 0;
  /// Gray-failure ramps (kDeviceDegrade / kLinkDegrade /
  /// kMemoryPressure): the effect rises linearly from nothing to full
  /// severity over [at, at+onset] and — for closed windows — falls back
  /// to nothing over [at+duration-recovery, at+duration]. Zero means a
  /// step edge (the pre-existing behaviour, byte-identical).
  sim::SimTime onset = sim::SimTime::zero();
  sim::SimTime recovery = sim::SimTime::zero();
  /// kLinkDegrade: additional multiplier (>= 1) on the byte-independent
  /// latency share of a cross-host hop. 1.0 (the default) leaves
  /// latency untouched — exactly the pre-existing bandwidth-only
  /// derating.
  double latency_factor = 1.0;
  /// kLabelBitFlip: global id of the vertex whose label is flipped
  /// (must be resident on `device` — validate() cannot see the layout,
  /// so the injector rechecks at apply time and errors loudly).
  std::int64_t vertex = -1;
  /// kLabelBitFlip: which bit of the label value to flip, in
  /// [0, 8 * sizeof(label)); -1 = derive deterministically from the
  /// plan seed at apply time.
  int bit = -1;
};

/// Deterministic, seeded fault schedule. The seed feeds the per-message
/// drop hash, so two runs with the same plan and workload inject
/// byte-identical fault sequences.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;

  FaultPlan& crash_device(int device, sim::SimTime at) {
    events.push_back({.kind = FaultKind::kDeviceCrash, .at = at,
                      .device = device});
    return *this;
  }
  FaultPlan& crash_host(int host, sim::SimTime at) {
    events.push_back({.kind = FaultKind::kHostCrash, .at = at, .host = host});
    return *this;
  }
  /// Cuts bandwidth between `host` and `peer_host` (-1 = all peers) by
  /// `slowdown` (>= 1) during [at, at+duration). `latency_factor`
  /// (>= 1) additionally derates the byte-independent latency share of
  /// the hop; `onset`/`recovery` ramp the derating in and out.
  FaultPlan& degrade_link(int host, int peer_host, sim::SimTime at,
                          sim::SimTime duration, double slowdown,
                          double latency_factor = 1.0,
                          sim::SimTime onset = sim::SimTime::zero(),
                          sim::SimTime recovery = sim::SimTime::zero()) {
    events.push_back({.kind = FaultKind::kLinkDegrade, .at = at,
                      .duration = duration, .host = host,
                      .peer_host = peer_host, .severity = slowdown,
                      .onset = onset, .recovery = recovery,
                      .latency_factor = latency_factor});
    return *this;
  }
  /// Gray compute degradation: slows `device`'s kernels by `slowdown`
  /// (>= 1) during [at, at+duration), ramping linearly to full severity
  /// over `onset` and back to nominal over the trailing `recovery`
  /// (zero = step). Unlike kStraggler this is the fault the
  /// GrayFailureMonitor is expected to *mitigate*, not merely tolerate.
  FaultPlan& degrade_device(int device, sim::SimTime at,
                            sim::SimTime duration, double slowdown,
                            sim::SimTime onset = sim::SimTime::zero(),
                            sim::SimTime recovery = sim::SimTime::zero()) {
    events.push_back({.kind = FaultKind::kDeviceDegrade, .at = at,
                      .duration = duration, .device = device,
                      .severity = slowdown, .onset = onset,
                      .recovery = recovery});
    return *this;
  }
  /// Memory pressure: an external squatter claims `fraction` (0, 1] of
  /// `device`'s memory capacity during [at, at+duration), shrinking the
  /// headroom the engine can use. What cannot be squatted (because the
  /// engine got there first) is modeled as spill traffic: the deficit
  /// is staged over PCIe every round, stalling the device.
  FaultPlan& pressure_memory(int device, sim::SimTime at,
                             sim::SimTime duration, double fraction,
                             sim::SimTime onset = sim::SimTime::zero(),
                             sim::SimTime recovery = sim::SimTime::zero()) {
    events.push_back({.kind = FaultKind::kMemoryPressure, .at = at,
                      .duration = duration, .device = device,
                      .severity = fraction, .onset = onset,
                      .recovery = recovery});
    return *this;
  }
  /// Drops each cross-device delivery attempt with probability
  /// `probability` during [at, at+duration); duration zero = open-ended.
  FaultPlan& drop_messages(double probability, sim::SimTime at,
                           sim::SimTime duration = sim::SimTime::zero()) {
    events.push_back({.kind = FaultKind::kMessageDrop, .at = at,
                      .duration = duration, .severity = probability});
    return *this;
  }
  /// Slows `device`'s compute by `slowdown` (>= 1) during
  /// [at, at+duration); duration zero = open-ended.
  FaultPlan& straggle(int device, sim::SimTime at, sim::SimTime duration,
                      double slowdown) {
    events.push_back({.kind = FaultKind::kStraggler, .at = at,
                      .duration = duration, .device = device,
                      .severity = slowdown});
    return *this;
  }
  /// Permanently loses `device` at `at`: it goes silent (no heartbeats,
  /// no messages) and is never replaced. The φ-accrual detector evicts
  /// it, masters re-home to surviving proxies, and the run continues on
  /// the shrunken topology.
  FaultPlan& lose_device(int device, sim::SimTime at) {
    events.push_back({.kind = FaultKind::kDeviceLoss, .at = at,
                      .device = device});
    return *this;
  }
  /// Bit-flips each delivered cross-device payload with probability
  /// `probability` during [at, at+duration); duration zero = open-ended.
  /// With the wire protocol on, the checksum catches it and the sender
  /// retransmits (NACK into the retry path); with it off, the corrupted
  /// values are silently applied.
  FaultPlan& corrupt_messages(double probability, sim::SimTime at,
                              sim::SimTime duration = sim::SimTime::zero()) {
    events.push_back({.kind = FaultKind::kMsgCorrupt, .at = at,
                      .duration = duration, .severity = probability});
    return *this;
  }
  /// Duplicates each delivered cross-device payload with probability
  /// `probability`: a ghost copy arrives a short deterministic delay
  /// later. The wire protocol's sequence numbers discard it; without
  /// them accumulator reductions double-count.
  FaultPlan& duplicate_messages(double probability, sim::SimTime at,
                                sim::SimTime duration = sim::SimTime::zero()) {
    events.push_back({.kind = FaultKind::kMsgDuplicate, .at = at,
                      .duration = duration, .severity = probability});
    return *this;
  }
  /// Delays each delivered cross-device payload with probability
  /// `probability` so it can arrive after later traffic on the same
  /// channel. The wire protocol's reorder buffer restores sequence
  /// order; without it stale assign-broadcasts win.
  FaultPlan& reorder_messages(double probability, sim::SimTime at,
                              sim::SimTime duration = sim::SimTime::zero()) {
    events.push_back({.kind = FaultKind::kMsgReorder, .at = at,
                      .duration = duration, .severity = probability});
    return *this;
  }
  /// Severs the hosts in `host_mask` from the rest during
  /// [at, at+duration), duration > 0. Cross-partition traffic is held
  /// at the partition edge; heartbeats stop crossing, so the φ-accrual
  /// detector's suspicion rises. If the window heals before the
  /// eviction rule fires, held traffic is delivered and the run
  /// completes exactly; if it outlasts detection, the minority side is
  /// fenced (its in-flight traffic discarded, stale epochs rejected)
  /// and evicted through the re-homing path — no split-brain.
  FaultPlan& partition_hosts(std::uint64_t host_mask, sim::SimTime at,
                             sim::SimTime duration) {
    events.push_back({.kind = FaultKind::kNetPartition, .at = at,
                      .duration = duration, .host_mask = host_mask});
    return *this;
  }
  /// Silently flips bit `bit` of global vertex `vertex`'s label in
  /// `device`'s resident state at the first BSP barrier (BASP: round
  /// boundary) at or after `at`. The flip lands after any wire
  /// checksum was verified and before the next sync reads the value —
  /// exactly the window a memory bit flip occupies. `bit` of -1 picks
  /// a bit deterministically from the plan seed.
  FaultPlan& flip_label(int device, std::int64_t vertex, int bit,
                        sim::SimTime at) {
    events.push_back({.kind = FaultKind::kLabelBitFlip, .at = at,
                      .device = device, .vertex = vertex, .bit = bit});
    return *this;
  }
  /// Defective-ALU window: during [at, at+duration) a fraction
  /// `probability` of `device`'s per-round label updates are perturbed
  /// by a deterministic bit flip before they are broadcast. Unlike
  /// kMsgCorrupt the wrong value is *computed*, so wire checksums seal
  /// and verify it happily — only ABFT invariants can catch it.
  FaultPlan& sdc_kernel(int device, sim::SimTime at, sim::SimTime duration,
                        double probability) {
    events.push_back({.kind = FaultKind::kKernelSdc, .at = at,
                      .duration = duration, .device = device,
                      .severity = probability});
    return *this;
  }
  /// Corrupts `device`'s portion of the next checkpoint taken at or
  /// after `at`, flipping one payload bit *after* the envelope checksum
  /// is written. The corruption is latent: it only matters if a later
  /// rollback restores that snapshot, which is why the auditor
  /// read-back-verifies checkpoints instead of trusting the write path.
  FaultPlan& corrupt_checkpoint(int device, sim::SimTime at) {
    events.push_back({.kind = FaultKind::kCheckpointBitFlip, .at = at,
                      .device = device});
    return *this;
  }

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Structural validation against a concrete cluster shape. Returns an
  /// empty string when the plan is well-formed, else a descriptive
  /// error: events targeting nonexistent devices/hosts, inverted
  /// (negative-duration) windows, duplicated (overlapping-identical)
  /// windows, probabilities/slowdowns out of range, partitions that do
  /// not split the host set, and events that contradict an earlier
  /// permanent loss of the same device. Called at engine start and by
  /// sg_chaos — a bad plan is an error, never a silent no-op.
  [[nodiscard]] std::string validate(int num_devices, int num_hosts) const;
  /// Throws std::invalid_argument with the validate() message.
  void validate_or_throw(int num_devices, int num_hosts) const;
};

/// Self-healing delivery: a message not acknowledged within `timeout`
/// of simulated time is retransmitted, with the timeout growing by
/// `backoff` per attempt. The final attempt (attempt == max_retries)
/// always delivers, bounding worst-case delay and guaranteeing BASP
/// cannot deadlock on a lossy link.
struct RetryPolicy {
  sim::SimTime timeout = sim::SimTime::micros(50.0);
  double backoff = 2.0;
  int max_retries = 5;
};

/// BSP-barrier checkpointing. `interval_rounds` of zero disables
/// checkpointing (crash recovery then falls back to degraded re-init).
/// When `dir` is non-empty snapshots are persisted there with the same
/// checksummed envelope as the partition store; otherwise they are kept
/// in memory only (cost-modeled the same either way).
struct CheckpointPolicy {
  int interval_rounds = 0;
  std::filesystem::path dir;
  double disk_bw = 2e9;  ///< bytes/s for the modeled snapshot write
  sim::SimTime write_latency = sim::SimTime::micros(200.0);
  sim::SimTime restore_latency = sim::SimTime::micros(200.0);
};

/// Parameters for the φ-accrual failure detector (Hayashibara et al.)
/// driven by simulated heartbeats. Every device emits a heartbeat each
/// `heartbeat_interval` of simulated time (stretched by any straggler
/// slowdown in effect); the detector keeps a sliding window of
/// inter-arrival times per device and computes
///   φ(t) = -log10(P(a later heartbeat arrives after gap t))
/// under a normal fit of the window. φ >= `phi_suspect` marks the
/// device *suspected* (straggler: throttled/rerouted, never evicted);
/// eviction additionally requires φ >= `phi_evict` AND a silent gap of
/// at least `evict_grace_intervals` smoothed means — a straggler's
/// late-but-arriving heartbeats keep resetting the gap and widening the
/// window, so only a permanently silent device is ever evicted.
struct HealthPolicy {
  sim::SimTime heartbeat_interval = sim::SimTime::micros(100.0);
  double phi_suspect = 3.0;
  double phi_evict = 8.0;
  int evict_grace_intervals = 8;  ///< silent gap (in mean intervals) to evict
  int window = 32;                ///< sliding-window size (samples)
  int min_samples = 4;            ///< φ = 0 until this many arrivals
  double min_stddev_fraction = 0.1;  ///< σ floor as fraction of the mean
};

/// What the engine is allowed to do about a device the
/// GrayFailureMonitor has condemned.
enum class MitigationMode : std::uint8_t {
  kObserve,  ///< score/trace/count only; never touch the layout
  kMigrate,  ///< move the hottest shards off the degraded device
  kEvict,    ///< migrate, then evict a hopelessly degraded device
};

/// Configuration of the gray-failure monitor and its online response.
/// The defaults keep the monitor purely observational, so a fault-free
/// run with the monitor compiled in behaves byte-identically to one
/// without it.
///
/// The monitor fuses three signals per device into a degradation score:
///  * heartbeat stretch: EWMA of inter-arrival time over the nominal
///    interval, minus one (a 4x-degraded device stretches to ~3);
///  * critical-path blame: the device's kernel-time z-score against the
///    fleet (the same statistic obs/critpath reports as stragglers);
///  * spill stall: time spent staging spilled state under memory
///    pressure, over the stall-free kernel time (pressure stretches no
///    heartbeats, and the fleet z saturates at (n-1)/sqrt(n) on small
///    fleets, so it needs a first-class term).
/// score = hb_weight * stretch_excess + z_weight * max(z, 0)
///       + stall_weight * stall_ratio.
/// Hysteresis: the score must stay >= score_on for `sustain_rounds`
/// consecutive evaluations before any action (transient jitter never
/// triggers), and drops below score_off to re-arm. After an action the
/// device is left alone for `cooldown_rounds` evaluations.
struct MitigationPolicy {
  MitigationMode mode = MitigationMode::kObserve;
  double hb_weight = 1.0;
  double z_weight = 0.5;
  double stall_weight = 1.0;
  double score_on = 1.0;
  double score_off = 0.5;
  int sustain_rounds = 3;   ///< consecutive over-threshold evaluations
  int cooldown_rounds = 4;  ///< evaluations to skip after acting
  /// Fraction of the condemned device's masters to move per migration,
  /// hottest (highest-degree) first. At least one master always moves.
  double migrate_fraction = 0.5;
  /// A compute-blamed migration must shed at least this fraction of the
  /// degraded device's local edges or it is skipped (budget still
  /// spent): under vertex-cut layouts most local edges belong to
  /// remotely-mastered vertices, so moving the device's own masters can
  /// shed almost no work — the move would be pure cost. Memory-blamed
  /// migrations are exempt (any byte shed shrinks the spill deficit).
  double min_shed_fraction = 0.10;
  int max_migrations_per_device = 2;  ///< then the device is "hopeless"
  /// Two roles. A score >= `hopeless_score` is treated as unambiguous
  /// and skips the `sustain_rounds` confirmation wait (waiting a round
  /// to confirm a 5x derate just pays the fault for longer). Under
  /// kEvict, a device still scoring past it after
  /// `max_migrations_per_device` migrations is gracefully evicted (its
  /// remaining state harvested live — no rollback needed).
  double hopeless_score = 2.0;
  /// EWMA smoothing for the heartbeat-stretch estimate.
  double stretch_alpha = 0.3;
};

/// Per-device degradation ledger, folded into FaultStats so run reports
/// can show who was slow, why, and what it cost. Sparse (only devices
/// with nonzero activity appear) and sorted by device so merged stats
/// and reports stay deterministic.
struct DegradeStats {
  int device = -1;
  sim::SimTime degrade_delay = sim::SimTime::zero();  ///< kDeviceDegrade
  sim::SimTime spill_stall = sim::SimTime::zero();  ///< kMemoryPressure
  std::uint64_t spill_bytes = 0;          ///< modeled spill traffic
  std::uint64_t pressure_peak_bytes = 0;  ///< max squatted at once
  double peak_score = 0.0;                ///< monitor's max fused score
  std::uint32_t migrations_off = 0;       ///< migrations away from here
  std::uint64_t masters_moved_off = 0;    ///< masters those migrations moved

  [[nodiscard]] bool any() const {
    return degrade_delay.seconds() > 0.0 || spill_stall.seconds() > 0.0 ||
           spill_bytes != 0 || pressure_peak_bytes != 0 ||
           peak_score != 0.0 || migrations_off != 0;
  }
};

/// Per-device silent-data-corruption ledger: what was injected into a
/// device's resident state, what the integrity auditor caught, and how
/// it was healed. Sparse (only devices with nonzero activity appear)
/// and sorted by device so merged stats and reports stay deterministic.
/// `any()` gates report emission: a clean run writes no SDC fields at
/// all, keeping fault-free reports byte-identical (CI-asserted).
struct SdcStats {
  int device = -1;
  std::uint64_t label_flips = 0;       ///< kLabelBitFlip events applied
  std::uint64_t kernel_events = 0;     ///< kKernelSdc perturbations applied
  std::uint64_t checkpoint_flips = 0;  ///< kCheckpointBitFlip events applied
  std::uint64_t digest_violations = 0;     ///< master/mirror digest splits
  std::uint64_t invariant_violations = 0;  ///< ABFT invariant failures
  std::uint64_t checkpoint_violations = 0; ///< read-back verify failures
  std::uint64_t repairs_mirror = 0;    ///< healed by clean-replica copy
  std::uint64_t repairs_rollback = 0;  ///< healed by checkpoint restore
  std::uint64_t repairs_restart = 0;   ///< healed by cold re-init
  std::uint64_t quarantined_shards = 0;
  std::uint64_t escalations = 0;  ///< repeat offender -> eviction path
  /// Worst detection lag observed, in audited rounds: rounds between
  /// the earliest unalarmed injection on this device and the audit
  /// that flagged it. The soak harness asserts <= 2x audit interval.
  std::uint64_t max_detect_lag_rounds = 0;

  [[nodiscard]] bool any() const {
    return label_flips != 0 || kernel_events != 0 || checkpoint_flips != 0 ||
           digest_violations != 0 || invariant_violations != 0 ||
           checkpoint_violations != 0 || repairs_mirror != 0 ||
           repairs_rollback != 0 || repairs_restart != 0 ||
           quarantined_shards != 0 || escalations != 0;
  }
};

/// Per-(src,dst) anomaly breakdown: which link pairs were actually
/// affected (kMessageDrop counted only one global total before).
/// Sparse and sorted by (from, to) so folded stats and reports are
/// deterministic.
struct PairAnomalies {
  int from = -1;
  int to = -1;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t deferred = 0;  ///< partition-held deliveries
  std::uint64_t fenced = 0;    ///< fence-rejected deliveries

  [[nodiscard]] std::uint64_t total() const {
    return dropped + corrupted + duplicated + reordered + deferred + fenced;
  }
};

/// Fault/recovery counters folded into engine::RunStats so bench/ can
/// plot failure-free vs faulty runs side by side.
struct FaultStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t device_crashes = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t retransmitted_bytes = 0;
  // Byzantine-network anomalies and the wire protocol's responses.
  std::uint64_t messages_corrupted = 0;    ///< checksum NACK -> retransmit
  std::uint64_t corrupt_applied = 0;       ///< protocol off: applied anyway
  std::uint64_t duplicates_injected = 0;
  std::uint64_t duplicates_discarded = 0;  ///< seq-dedup hits
  std::uint64_t reorders_injected = 0;
  std::uint64_t reorder_buffered = 0;      ///< held for in-order apply
  std::uint64_t fence_rejects = 0;         ///< stale epoch / fenced sender
  std::uint64_t partition_deferred = 0;    ///< held until partition heal
  std::uint64_t partition_evictions = 0;   ///< evictions from partition expiry
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t rollbacks = 0;            ///< checkpoint restores
  std::uint64_t degraded_recoveries = 0;  ///< re-inits without checkpoint
  std::uint64_t reexecuted_rounds = 0;
  std::uint64_t evicted_devices = 0;       ///< permanent losses detected
  std::uint64_t rehomed_masters = 0;       ///< masters re-elected on survivors
  std::uint64_t migrated_vertices = 0;     ///< orphans redistributed
  std::uint64_t straggler_suspicions = 0;  ///< φ >= suspect, not evicted
  std::uint64_t heartbeats_observed = 0;
  // Gray-failure detection and mitigation.
  std::uint64_t gray_alerts = 0;      ///< sustained-degradation crossings
  std::uint64_t gray_migrations = 0;  ///< online shard migrations taken
  std::uint64_t gray_migrated_masters = 0;
  std::uint64_t gray_migrated_bytes = 0;
  std::uint64_t gray_evictions = 0;  ///< hopeless devices evicted live
  std::uint64_t spill_bytes = 0;     ///< memory-pressure spill traffic
  // Silent data corruption: injections, the auditor's catches, and the
  // repairs. Totals here; per-device breakdown in `sdc` below.
  std::uint64_t sdc_injected = 0;   ///< SDC events actually applied
  std::uint64_t sdc_detected = 0;   ///< audit violations (all three checks)
  std::uint64_t sdc_repaired = 0;   ///< mirror-copy + rollback + restart
  std::uint64_t sdc_audits = 0;     ///< audit passes executed
  std::uint64_t sdc_escalations = 0;  ///< repeat offenders -> eviction path
  sim::SimTime checkpoint_time = sim::SimTime::zero();
  sim::SimTime recovery_time = sim::SimTime::zero();
  sim::SimTime straggler_delay = sim::SimTime::zero();
  sim::SimTime degrade_delay = sim::SimTime::zero();  ///< kDeviceDegrade
  sim::SimTime spill_stall = sim::SimTime::zero();    ///< kMemoryPressure
  sim::SimTime mitigation_time = sim::SimTime::zero();
  /// Loss-to-eviction lag, summed over evictions (one eviction: the
  /// detection latency itself). Zero when nothing was evicted.
  sim::SimTime detection_latency = sim::SimTime::zero();
  /// False iff termination detection misbehaved under faults (BASP
  /// ended with in-flight messages or an unterminated token ring).
  bool termination_clean = true;
  /// Per-(src,dst) anomaly breakdown, sorted by (from, to).
  std::vector<PairAnomalies> pairs;
  /// Per-device degradation ledger, sorted by device. Empty unless
  /// gray faults were active or the monitor acted.
  std::vector<DegradeStats> degrade;
  /// Per-device SDC ledger, sorted by device. Empty unless SDC faults
  /// were injected or the auditor flagged something.
  std::vector<SdcStats> sdc;

  /// Find-or-insert the SDC slot for `device`, keeping `sdc` sorted so
  /// merged stats are deterministic.
  SdcStats& sdc_for(int device) {
    auto it = std::find_if(sdc.begin(), sdc.end(), [&](const SdcStats& s) {
      return s.device >= device;
    });
    if (it == sdc.end() || it->device != device) {
      it = sdc.insert(it, SdcStats{.device = device});
    }
    return *it;
  }

  /// Find-or-insert the degradation slot for `device`, keeping
  /// `degrade` sorted so merged stats are deterministic.
  DegradeStats& degrade_for(int device) {
    auto it = std::find_if(
        degrade.begin(), degrade.end(),
        [&](const DegradeStats& d) { return d.device >= device; });
    if (it == degrade.end() || it->device != device) {
      it = degrade.insert(it, DegradeStats{.device = device});
    }
    return *it;
  }

  /// Find-or-insert the breakdown slot for (from, to), keeping `pairs`
  /// sorted so merged stats are deterministic.
  PairAnomalies& pair(int from, int to) {
    auto it = std::find_if(pairs.begin(), pairs.end(),
                           [&](const PairAnomalies& p) {
                             return p.from > from ||
                                    (p.from == from && p.to >= to);
                           });
    if (it == pairs.end() || it->from != from || it->to != to) {
      it = pairs.insert(it, PairAnomalies{.from = from, .to = to});
    }
    return *it;
  }

  FaultStats& operator+=(const FaultStats& o) {
    faults_injected += o.faults_injected;
    device_crashes += o.device_crashes;
    messages_dropped += o.messages_dropped;
    retries += o.retries;
    retransmitted_bytes += o.retransmitted_bytes;
    messages_corrupted += o.messages_corrupted;
    corrupt_applied += o.corrupt_applied;
    duplicates_injected += o.duplicates_injected;
    duplicates_discarded += o.duplicates_discarded;
    reorders_injected += o.reorders_injected;
    reorder_buffered += o.reorder_buffered;
    fence_rejects += o.fence_rejects;
    partition_deferred += o.partition_deferred;
    partition_evictions += o.partition_evictions;
    for (const PairAnomalies& p : o.pairs) {
      PairAnomalies& mine = pair(p.from, p.to);
      mine.dropped += p.dropped;
      mine.corrupted += p.corrupted;
      mine.duplicated += p.duplicated;
      mine.reordered += p.reordered;
      mine.deferred += p.deferred;
      mine.fenced += p.fenced;
    }
    checkpoints_taken += o.checkpoints_taken;
    checkpoint_bytes += o.checkpoint_bytes;
    rollbacks += o.rollbacks;
    degraded_recoveries += o.degraded_recoveries;
    reexecuted_rounds += o.reexecuted_rounds;
    evicted_devices += o.evicted_devices;
    rehomed_masters += o.rehomed_masters;
    migrated_vertices += o.migrated_vertices;
    straggler_suspicions += o.straggler_suspicions;
    heartbeats_observed += o.heartbeats_observed;
    gray_alerts += o.gray_alerts;
    gray_migrations += o.gray_migrations;
    gray_migrated_masters += o.gray_migrated_masters;
    gray_migrated_bytes += o.gray_migrated_bytes;
    gray_evictions += o.gray_evictions;
    spill_bytes += o.spill_bytes;
    sdc_injected += o.sdc_injected;
    sdc_detected += o.sdc_detected;
    sdc_repaired += o.sdc_repaired;
    sdc_audits += o.sdc_audits;
    sdc_escalations += o.sdc_escalations;
    for (const SdcStats& s : o.sdc) {
      SdcStats& mine = sdc_for(s.device);
      mine.label_flips += s.label_flips;
      mine.kernel_events += s.kernel_events;
      mine.checkpoint_flips += s.checkpoint_flips;
      mine.digest_violations += s.digest_violations;
      mine.invariant_violations += s.invariant_violations;
      mine.checkpoint_violations += s.checkpoint_violations;
      mine.repairs_mirror += s.repairs_mirror;
      mine.repairs_rollback += s.repairs_rollback;
      mine.repairs_restart += s.repairs_restart;
      mine.quarantined_shards += s.quarantined_shards;
      mine.escalations += s.escalations;
      mine.max_detect_lag_rounds =
          std::max(mine.max_detect_lag_rounds, s.max_detect_lag_rounds);
    }
    for (const DegradeStats& d : o.degrade) {
      DegradeStats& mine = degrade_for(d.device);
      mine.degrade_delay = mine.degrade_delay + d.degrade_delay;
      mine.spill_stall = mine.spill_stall + d.spill_stall;
      mine.spill_bytes += d.spill_bytes;
      mine.pressure_peak_bytes =
          std::max(mine.pressure_peak_bytes, d.pressure_peak_bytes);
      mine.peak_score = std::max(mine.peak_score, d.peak_score);
      mine.migrations_off += d.migrations_off;
      mine.masters_moved_off += d.masters_moved_off;
    }
    checkpoint_time = checkpoint_time + o.checkpoint_time;
    recovery_time = recovery_time + o.recovery_time;
    straggler_delay = straggler_delay + o.straggler_delay;
    degrade_delay = degrade_delay + o.degrade_delay;
    spill_stall = spill_stall + o.spill_stall;
    mitigation_time = mitigation_time + o.mitigation_time;
    detection_latency = detection_latency + o.detection_latency;
    termination_clean = termination_clean && o.termination_clean;
    return *this;
  }
};

}  // namespace sg::fault
