#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "sim/sim_time.hpp"

namespace sg::fault {

/// Fault taxonomy injected on the simulated timeline. Matches the
/// failure modes a 32-host multi-GPU cluster actually sees (ROADMAP
/// north star): whole-device loss, whole-host loss, degraded links,
/// lossy links, and slow devices.
enum class FaultKind : std::uint8_t {
  kDeviceCrash,   ///< one device loses all volatile program state
  kHostCrash,     ///< every device on the host crashes simultaneously
  kLinkDegrade,   ///< cross-host bandwidth cut by `severity` for a window
  kMessageDrop,   ///< each delivery attempt dropped with prob `severity`
  kStraggler,     ///< device compute slowed by factor `severity`
  kDeviceLoss,    ///< device silently dies forever (no replacement)
};

/// One scheduled fault. `at` is absolute simulated time; `duration`
/// of zero means open-ended (lasts to the end of the run). `severity`
/// is a slowdown multiplier (>= 1) for kLinkDegrade/kStraggler and a
/// drop probability in [0, 1) for kMessageDrop; unused for crashes.
struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceCrash;
  sim::SimTime at = sim::SimTime::zero();
  sim::SimTime duration = sim::SimTime::zero();
  int device = -1;     ///< kDeviceCrash / kStraggler target
  int host = -1;       ///< kHostCrash target; link endpoint for windows
  int peer_host = -1;  ///< other link endpoint (-1 = any peer)
  double severity = 0.0;
};

/// Deterministic, seeded fault schedule. The seed feeds the per-message
/// drop hash, so two runs with the same plan and workload inject
/// byte-identical fault sequences.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;

  FaultPlan& crash_device(int device, sim::SimTime at) {
    events.push_back({.kind = FaultKind::kDeviceCrash, .at = at,
                      .device = device});
    return *this;
  }
  FaultPlan& crash_host(int host, sim::SimTime at) {
    events.push_back({.kind = FaultKind::kHostCrash, .at = at, .host = host});
    return *this;
  }
  /// Cuts bandwidth between `host` and `peer_host` (-1 = all peers) by
  /// `slowdown` (>= 1) during [at, at+duration).
  FaultPlan& degrade_link(int host, int peer_host, sim::SimTime at,
                          sim::SimTime duration, double slowdown) {
    events.push_back({.kind = FaultKind::kLinkDegrade, .at = at,
                      .duration = duration, .host = host,
                      .peer_host = peer_host, .severity = slowdown});
    return *this;
  }
  /// Drops each cross-device delivery attempt with probability
  /// `probability` during [at, at+duration); duration zero = open-ended.
  FaultPlan& drop_messages(double probability, sim::SimTime at,
                           sim::SimTime duration = sim::SimTime::zero()) {
    events.push_back({.kind = FaultKind::kMessageDrop, .at = at,
                      .duration = duration, .severity = probability});
    return *this;
  }
  /// Slows `device`'s compute by `slowdown` (>= 1) during
  /// [at, at+duration); duration zero = open-ended.
  FaultPlan& straggle(int device, sim::SimTime at, sim::SimTime duration,
                      double slowdown) {
    events.push_back({.kind = FaultKind::kStraggler, .at = at,
                      .duration = duration, .device = device,
                      .severity = slowdown});
    return *this;
  }
  /// Permanently loses `device` at `at`: it goes silent (no heartbeats,
  /// no messages) and is never replaced. The φ-accrual detector evicts
  /// it, masters re-home to surviving proxies, and the run continues on
  /// the shrunken topology.
  FaultPlan& lose_device(int device, sim::SimTime at) {
    events.push_back({.kind = FaultKind::kDeviceLoss, .at = at,
                      .device = device});
    return *this;
  }

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Self-healing delivery: a message not acknowledged within `timeout`
/// of simulated time is retransmitted, with the timeout growing by
/// `backoff` per attempt. The final attempt (attempt == max_retries)
/// always delivers, bounding worst-case delay and guaranteeing BASP
/// cannot deadlock on a lossy link.
struct RetryPolicy {
  sim::SimTime timeout = sim::SimTime::micros(50.0);
  double backoff = 2.0;
  int max_retries = 5;
};

/// BSP-barrier checkpointing. `interval_rounds` of zero disables
/// checkpointing (crash recovery then falls back to degraded re-init).
/// When `dir` is non-empty snapshots are persisted there with the same
/// checksummed envelope as the partition store; otherwise they are kept
/// in memory only (cost-modeled the same either way).
struct CheckpointPolicy {
  int interval_rounds = 0;
  std::filesystem::path dir;
  double disk_bw = 2e9;  ///< bytes/s for the modeled snapshot write
  sim::SimTime write_latency = sim::SimTime::micros(200.0);
  sim::SimTime restore_latency = sim::SimTime::micros(200.0);
};

/// Parameters for the φ-accrual failure detector (Hayashibara et al.)
/// driven by simulated heartbeats. Every device emits a heartbeat each
/// `heartbeat_interval` of simulated time (stretched by any straggler
/// slowdown in effect); the detector keeps a sliding window of
/// inter-arrival times per device and computes
///   φ(t) = -log10(P(a later heartbeat arrives after gap t))
/// under a normal fit of the window. φ >= `phi_suspect` marks the
/// device *suspected* (straggler: throttled/rerouted, never evicted);
/// eviction additionally requires φ >= `phi_evict` AND a silent gap of
/// at least `evict_grace_intervals` smoothed means — a straggler's
/// late-but-arriving heartbeats keep resetting the gap and widening the
/// window, so only a permanently silent device is ever evicted.
struct HealthPolicy {
  sim::SimTime heartbeat_interval = sim::SimTime::micros(100.0);
  double phi_suspect = 3.0;
  double phi_evict = 8.0;
  int evict_grace_intervals = 8;  ///< silent gap (in mean intervals) to evict
  int window = 32;                ///< sliding-window size (samples)
  int min_samples = 4;            ///< φ = 0 until this many arrivals
  double min_stddev_fraction = 0.1;  ///< σ floor as fraction of the mean
};

/// Fault/recovery counters folded into engine::RunStats so bench/ can
/// plot failure-free vs faulty runs side by side.
struct FaultStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t device_crashes = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t retransmitted_bytes = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t rollbacks = 0;            ///< checkpoint restores
  std::uint64_t degraded_recoveries = 0;  ///< re-inits without checkpoint
  std::uint64_t reexecuted_rounds = 0;
  std::uint64_t evicted_devices = 0;       ///< permanent losses detected
  std::uint64_t rehomed_masters = 0;       ///< masters re-elected on survivors
  std::uint64_t migrated_vertices = 0;     ///< orphans redistributed
  std::uint64_t straggler_suspicions = 0;  ///< φ >= suspect, not evicted
  std::uint64_t heartbeats_observed = 0;
  sim::SimTime checkpoint_time = sim::SimTime::zero();
  sim::SimTime recovery_time = sim::SimTime::zero();
  sim::SimTime straggler_delay = sim::SimTime::zero();
  /// Loss-to-eviction lag, summed over evictions (one eviction: the
  /// detection latency itself). Zero when nothing was evicted.
  sim::SimTime detection_latency = sim::SimTime::zero();
  /// False iff termination detection misbehaved under faults (BASP
  /// ended with in-flight messages or an unterminated token ring).
  bool termination_clean = true;

  FaultStats& operator+=(const FaultStats& o) {
    faults_injected += o.faults_injected;
    device_crashes += o.device_crashes;
    messages_dropped += o.messages_dropped;
    retries += o.retries;
    retransmitted_bytes += o.retransmitted_bytes;
    checkpoints_taken += o.checkpoints_taken;
    checkpoint_bytes += o.checkpoint_bytes;
    rollbacks += o.rollbacks;
    degraded_recoveries += o.degraded_recoveries;
    reexecuted_rounds += o.reexecuted_rounds;
    evicted_devices += o.evicted_devices;
    rehomed_masters += o.rehomed_masters;
    migrated_vertices += o.migrated_vertices;
    straggler_suspicions += o.straggler_suspicions;
    heartbeats_observed += o.heartbeats_observed;
    checkpoint_time = checkpoint_time + o.checkpoint_time;
    recovery_time = recovery_time + o.recovery_time;
    straggler_delay = straggler_delay + o.straggler_delay;
    detection_latency = detection_latency + o.detection_latency;
    termination_clean = termination_clean && o.termination_clean;
    return *this;
  }
};

}  // namespace sg::fault
