#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "sim/topology.hpp"

namespace sg::fault {

/// Message class a delivery belongs to; feeds the drop hash so reduce
/// and broadcast legs of the same round draw independent decisions.
enum class MsgKind : std::uint8_t { kReduce = 0, kBroadcast = 1 };

/// A crash fault expanded to a single device (host crashes expand to
/// one entry per resident device), sorted by time.
struct ResolvedCrash {
  sim::SimTime at = sim::SimTime::zero();
  int device = -1;
};

/// Evaluates a FaultPlan against the simulated timeline. All queries
/// are pure functions of (plan, arguments) — no mutable RNG state — so
/// they are safe to call from parallel BSP phases and give identical
/// answers across reruns with the same seed.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultPlan* plan, const sim::Topology* topo);

  /// True when a plan with at least one event is attached.
  [[nodiscard]] bool active() const { return active_; }

  /// Crash faults expanded per device, in time order.
  [[nodiscard]] const std::vector<ResolvedCrash>& crashes() const {
    return crashes_;
  }

  /// Permanent device losses (kDeviceLoss), in time order. Unlike
  /// crashes these are never recovered in place — the device goes
  /// silent at `at` and must be detected and evicted.
  [[nodiscard]] const std::vector<ResolvedCrash>& losses() const {
    return losses_;
  }

  /// Time at which `device` is permanently lost, or SimTime::max() when
  /// it never is.
  [[nodiscard]] sim::SimTime lost_at(int device) const {
    for (const ResolvedCrash& l : losses_) {
      if (l.device == device) return l.at;
    }
    return sim::SimTime::max();
  }

  /// Multiplier (>= 1) applied to cross-host transfer time between
  /// `src_host` and `dst_host` for a transfer starting at `at`.
  [[nodiscard]] double link_delay_factor(int src_host, int dst_host,
                                         sim::SimTime at) const;

  /// Multiplier (>= 1) applied to `device`'s compute time at `at`.
  [[nodiscard]] double compute_slowdown(int device, sim::SimTime at) const;

  /// Deterministically decides whether delivery attempt `attempt` of the
  /// (from -> to, kind, round) message starting at `at` is dropped.
  [[nodiscard]] bool drops_message(int from, int to, MsgKind kind,
                                   std::uint64_t round, int attempt,
                                   sim::SimTime at) const;

  /// Number of windowed (non-crash) fault events in the plan; counted
  /// as injected faults in FaultStats.
  [[nodiscard]] std::uint64_t windowed_events() const {
    return windowed_events_;
  }

 private:
  [[nodiscard]] bool in_window(const FaultEvent& e, sim::SimTime at) const {
    if (at < e.at) return false;
    return e.duration <= sim::SimTime::zero() || at < e.at + e.duration;
  }

  const FaultPlan* plan_ = nullptr;
  const sim::Topology* topo_ = nullptr;
  bool active_ = false;
  std::vector<ResolvedCrash> crashes_;
  std::vector<ResolvedCrash> losses_;
  std::uint64_t windowed_events_ = 0;
};

}  // namespace sg::fault
