#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "sim/topology.hpp"

namespace sg::fault {

/// Message class a delivery belongs to; feeds the drop hash so reduce
/// and broadcast legs of the same round draw independent decisions.
enum class MsgKind : std::uint8_t { kReduce = 0, kBroadcast = 1 };

/// A crash fault expanded to a single device (host crashes expand to
/// one entry per resident device), sorted by time.
struct ResolvedCrash {
  sim::SimTime at = sim::SimTime::zero();
  int device = -1;
};

/// One kLabelBitFlip resolved against the plan seed: flip bit `bit` of
/// global vertex `vertex`'s label resident on `device` at the first
/// audited round boundary at or after `at`. `bit` is always concrete
/// here (>= 0): events that left it -1 had one derived deterministically
/// from the plan seed. Sorted by (at, device, vertex).
struct ResolvedLabelFlip {
  sim::SimTime at = sim::SimTime::zero();
  int device = -1;
  std::int64_t vertex = -1;
  int bit = 0;
};

/// One kNetPartition event resolved against the topology: the window,
/// the side-A host mask, and the minority-side host mask (the side with
/// fewer devices; ties go to side A). Sorted by start time.
struct PartitionWindow {
  sim::SimTime at = sim::SimTime::zero();
  sim::SimTime end = sim::SimTime::zero();
  std::uint64_t mask = 0;           ///< bit i set = host i on side A
  std::uint64_t minority_mask = 0;  ///< hosts on the fenced side
};

/// Evaluates a FaultPlan against the simulated timeline. All queries
/// are pure functions of (plan, arguments) — no mutable RNG state — so
/// they are safe to call from parallel BSP phases and give identical
/// answers across reruns with the same seed.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultPlan* plan, const sim::Topology* topo);

  /// True when a plan with at least one event is attached.
  [[nodiscard]] bool active() const { return active_; }

  [[nodiscard]] const FaultPlan* plan() const { return plan_; }
  [[nodiscard]] const sim::Topology* topology() const { return topo_; }

  /// Crash faults expanded per device, in time order.
  [[nodiscard]] const std::vector<ResolvedCrash>& crashes() const {
    return crashes_;
  }

  /// Permanent device losses (kDeviceLoss), in time order. Unlike
  /// crashes these are never recovered in place — the device goes
  /// silent at `at` and must be detected and evicted.
  [[nodiscard]] const std::vector<ResolvedCrash>& losses() const {
    return losses_;
  }

  /// Time at which `device` is permanently lost, or SimTime::max() when
  /// it never is.
  [[nodiscard]] sim::SimTime lost_at(int device) const {
    for (const ResolvedCrash& l : losses_) {
      if (l.device == device) return l.at;
    }
    return sim::SimTime::max();
  }

  /// Multiplier (>= 1) applied to the bandwidth share of cross-host
  /// transfer time between `src_host` and `dst_host` for a transfer
  /// starting at `at` (kLinkDegrade severity, onset/recovery-ramped).
  [[nodiscard]] double link_delay_factor(int src_host, int dst_host,
                                         sim::SimTime at) const;

  /// Multiplier (>= 1) applied to the byte-independent latency share of
  /// the same hop (kLinkDegrade latency_factor, ramped). 1.0 when no
  /// window derates latency — the pre-existing bandwidth-only model.
  [[nodiscard]] double link_latency_factor(int src_host, int dst_host,
                                           sim::SimTime at) const;

  /// Multiplier (>= 1) applied to `device`'s compute time at `at`: the
  /// max of any kStraggler window and any (ramped) kDeviceDegrade
  /// window in effect.
  [[nodiscard]] double compute_slowdown(int device, sim::SimTime at) const;

  /// The kDeviceDegrade share of compute_slowdown (>= 1; excludes
  /// kStraggler windows). Lets the engine attribute lost kernel time to
  /// gray degradation vs plain straggling by whichever factor binds.
  [[nodiscard]] double degrade_slowdown(int device, sim::SimTime at) const;

  /// Fraction of `device`'s memory capacity squatted by kMemoryPressure
  /// windows covering `at` (ramped; 0 when none).
  [[nodiscard]] double memory_pressure(int device, sim::SimTime at) const;

  /// True when the plan schedules any gray degradation the
  /// GrayFailureMonitor should watch (device/link degrade, memory
  /// pressure, or stragglers).
  [[nodiscard]] bool has_degradation() const { return has_degradation_; }

  /// Deterministically decides whether delivery attempt `attempt` of the
  /// (from -> to, kind, round) message starting at `at` is dropped.
  [[nodiscard]] bool drops_message(int from, int to, MsgKind kind,
                                   std::uint64_t round, int attempt,
                                   sim::SimTime at) const;

  /// Deterministically decides whether delivery attempt `attempt` is
  /// bit-flipped in flight (kMsgCorrupt window covering `at`). Each
  /// attempt re-rolls independently, so a NACKed retransmission can
  /// arrive clean.
  [[nodiscard]] bool corrupts_message(int from, int to, MsgKind kind,
                                      std::uint64_t round, int attempt,
                                      sim::SimTime at) const;

  /// Deterministically decides whether the delivered payload is also
  /// duplicated (a ghost copy arrives later).
  [[nodiscard]] bool duplicates_message(int from, int to, MsgKind kind,
                                        std::uint64_t round,
                                        sim::SimTime at) const;

  /// Deterministically decides whether the delivered payload is delayed
  /// past later traffic on its channel (kMsgReorder).
  [[nodiscard]] bool reorders_message(int from, int to, MsgKind kind,
                                      std::uint64_t round,
                                      sim::SimTime at) const;

  /// Uniform [0, 1) keyed on the message identity and `salt`; used to
  /// size deterministic ghost/reorder delays.
  [[nodiscard]] double anomaly_uniform(std::uint64_t salt, int from, int to,
                                       MsgKind kind,
                                       std::uint64_t round) const;

  /// Resolved kNetPartition windows, sorted by start time.
  [[nodiscard]] const std::vector<PartitionWindow>& partitions() const {
    return partitions_;
  }

  /// True when a partition window covering `at` separates the two hosts.
  [[nodiscard]] bool hosts_partitioned(int host_a, int host_b,
                                       sim::SimTime at) const;

  /// Earliest time at or after `at` when `host_a` and `host_b` can talk
  /// again — chains back-to-back windows. Returns `at` when they are
  /// not partitioned at `at`.
  [[nodiscard]] sim::SimTime partition_heal(int host_a, int host_b,
                                            sim::SimTime at) const;

  /// True when a partition window covering `at` puts `device` on the
  /// minority side, so its heartbeats do not reach the (majority-side)
  /// failure detector.
  [[nodiscard]] bool observer_blind(int device, sim::SimTime at) const;

  /// Number of windowed (non-crash) fault events in the plan; counted
  /// as injected faults in FaultStats.
  [[nodiscard]] std::uint64_t windowed_events() const {
    return windowed_events_;
  }

  /// True when the plan schedules any silent-data-corruption fault
  /// (label/checkpoint bit flips or kernel SDC windows). The engine
  /// only arms the integrity auditor's snapshot machinery when this is
  /// set, so SDC-free runs stay byte-identical.
  [[nodiscard]] bool has_sdc() const { return has_sdc_; }

  /// Resolved kLabelBitFlip events, sorted by (at, device, vertex).
  [[nodiscard]] const std::vector<ResolvedLabelFlip>& label_flips() const {
    return label_flips_;
  }

  /// Resolved kCheckpointBitFlip events (one bit of `device`'s next
  /// checkpoint blob at or after `at`), in time order.
  [[nodiscard]] const std::vector<ResolvedCrash>& checkpoint_flips() const {
    return checkpoint_flips_;
  }

  /// Nonzero exactly when a kKernelSdc window covering `at` perturbs
  /// `device`'s round-`round` label updates (probability = window
  /// severity, rolled deterministically per (device, round)). The
  /// returned hash seeds victim/bit selection so the perturbation is
  /// replayable bit-for-bit.
  [[nodiscard]] std::uint64_t kernel_sdc_roll(int device,
                                              std::uint64_t round,
                                              sim::SimTime at) const;

 private:
  [[nodiscard]] bool in_window(const FaultEvent& e, sim::SimTime at) const {
    if (at < e.at) return false;
    return e.duration <= sim::SimTime::zero() || at < e.at + e.duration;
  }

  /// Max probability over `kind` windows covering `at`, or 0.
  [[nodiscard]] double anomaly_prob(FaultKind kind, sim::SimTime at) const;

  const FaultPlan* plan_ = nullptr;
  const sim::Topology* topo_ = nullptr;
  bool active_ = false;
  bool has_degradation_ = false;
  bool has_sdc_ = false;
  std::vector<ResolvedCrash> crashes_;
  std::vector<ResolvedCrash> losses_;
  std::vector<PartitionWindow> partitions_;
  std::vector<ResolvedLabelFlip> label_flips_;
  std::vector<ResolvedCrash> checkpoint_flips_;
  std::uint64_t windowed_events_ = 0;
};

}  // namespace sg::fault
