#include "fault/fault_injector.hpp"

#include <algorithm>

namespace sg::fault {

namespace {

/// splitmix64 finalizer — a full-avalanche mix so that consecutive
/// (round, attempt) pairs decorrelate completely.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash chain over the inputs.
double hash_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) {
  std::uint64_t h = mix64(seed ^ mix64(a));
  h = mix64(h ^ mix64(b));
  h = mix64(h ^ mix64(c));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Ramp weight of event `e` at time `at`, in [0, 1]: rises linearly
/// over the leading `onset`, holds at 1, and falls over the trailing
/// `recovery` of a closed window. 1 everywhere for step events (the
/// pre-existing behaviour, byte-identical). Caller guarantees
/// in_window(e, at).
double ramp_scale(const FaultEvent& e, sim::SimTime at) {
  double scale = 1.0;
  if (e.onset > sim::SimTime::zero() && at < e.at + e.onset) {
    scale = (at - e.at).seconds() / e.onset.seconds();
  }
  if (e.duration > sim::SimTime::zero() &&
      e.recovery > sim::SimTime::zero()) {
    const sim::SimTime fall = e.at + e.duration - e.recovery;
    if (at > fall) {
      scale = std::min(
          scale, (e.at + e.duration - at).seconds() / e.recovery.seconds());
    }
  }
  return std::clamp(scale, 0.0, 1.0);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan* plan, const sim::Topology* topo)
    : plan_(plan), topo_(topo) {
  active_ = plan_ != nullptr && !plan_->empty() && topo_ != nullptr;
  if (!active_) return;
  for (const FaultEvent& e : plan_->events) {
    switch (e.kind) {
      case FaultKind::kDeviceCrash:
        // Plans can name devices a smaller run doesn't have; ignore them
        // instead of letting the engine index out of range.
        if (e.device >= 0 && e.device < topo_->num_devices()) {
          crashes_.push_back({e.at, e.device});
        }
        break;
      case FaultKind::kHostCrash:
        for (int d = 0; d < topo_->num_devices(); ++d) {
          if (topo_->host_of(d) == e.host) crashes_.push_back({e.at, d});
        }
        break;
      case FaultKind::kDeviceLoss:
        if (e.device >= 0 && e.device < topo_->num_devices()) {
          losses_.push_back({e.at, e.device});
        }
        break;
      case FaultKind::kNetPartition: {
        if (e.duration <= sim::SimTime::zero()) break;  // validate() rejects
        PartitionWindow w;
        w.at = e.at;
        w.end = e.at + e.duration;
        w.mask = e.host_mask;
        // The side with fewer devices is the minority (tie: side A).
        int side_a = 0;
        for (int d = 0; d < topo_->num_devices(); ++d) {
          if ((e.host_mask >> topo_->host_of(d)) & 1ULL) ++side_a;
        }
        const std::uint64_t all =
            topo_->num_hosts() >= 64 ? ~0ULL
                                     : ((1ULL << topo_->num_hosts()) - 1);
        w.minority_mask = side_a * 2 <= topo_->num_devices()
                              ? e.host_mask
                              : (all & ~e.host_mask);
        partitions_.push_back(w);
        ++windowed_events_;
        break;
      }
      case FaultKind::kLinkDegrade:
      case FaultKind::kStraggler:
      case FaultKind::kDeviceDegrade:
      case FaultKind::kMemoryPressure:
        has_degradation_ = true;
        ++windowed_events_;
        break;
      case FaultKind::kMessageDrop:
      case FaultKind::kMsgCorrupt:
      case FaultKind::kMsgDuplicate:
      case FaultKind::kMsgReorder:
        ++windowed_events_;
        break;
      case FaultKind::kLabelBitFlip:
        if (e.device >= 0 && e.device < topo_->num_devices()) {
          int bit = e.bit;
          if (bit < 0) {
            // Seed-derived flip bit: deterministic per (seed, vertex,
            // device) so the same plan replays the same corruption.
            bit = static_cast<int>(
                mix64(plan_->seed ^
                      mix64(static_cast<std::uint64_t>(e.vertex)) ^
                      mix64(static_cast<std::uint64_t>(e.device))) %
                64);
          }
          label_flips_.push_back({e.at, e.device, e.vertex, bit});
          has_sdc_ = true;
        }
        break;
      case FaultKind::kKernelSdc:
        if (e.device >= 0 && e.device < topo_->num_devices()) {
          has_sdc_ = true;
          ++windowed_events_;
        }
        break;
      case FaultKind::kCheckpointBitFlip:
        if (e.device >= 0 && e.device < topo_->num_devices()) {
          checkpoint_flips_.push_back({e.at, e.device});
          has_sdc_ = true;
        }
        break;
    }
  }
  const auto by_time = [](const ResolvedCrash& a, const ResolvedCrash& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.device < b.device;
  };
  std::sort(crashes_.begin(), crashes_.end(), by_time);
  std::sort(losses_.begin(), losses_.end(), by_time);
  std::sort(checkpoint_flips_.begin(), checkpoint_flips_.end(), by_time);
  std::sort(label_flips_.begin(), label_flips_.end(),
            [](const ResolvedLabelFlip& a, const ResolvedLabelFlip& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.device != b.device) return a.device < b.device;
              return a.vertex < b.vertex;
            });
  std::sort(partitions_.begin(), partitions_.end(),
            [](const PartitionWindow& a, const PartitionWindow& b) {
              return a.at < b.at;
            });
}

double FaultInjector::link_delay_factor(int src_host, int dst_host,
                                        sim::SimTime at) const {
  if (!active_ || src_host == dst_host) return 1.0;
  double factor = 1.0;
  for (const FaultEvent& e : plan_->events) {
    if (e.kind != FaultKind::kLinkDegrade || !in_window(e, at)) continue;
    const bool touches =
        (e.host == src_host || e.host == dst_host) &&
        (e.peer_host < 0 || e.peer_host == src_host ||
         e.peer_host == dst_host);
    if (!touches) continue;
    const double f = 1.0 + (e.severity - 1.0) * ramp_scale(e, at);
    if (f > factor) factor = f;
  }
  return factor;
}

double FaultInjector::link_latency_factor(int src_host, int dst_host,
                                          sim::SimTime at) const {
  if (!active_ || src_host == dst_host) return 1.0;
  double factor = 1.0;
  for (const FaultEvent& e : plan_->events) {
    if (e.kind != FaultKind::kLinkDegrade || e.latency_factor <= 1.0 ||
        !in_window(e, at)) {
      continue;
    }
    const bool touches =
        (e.host == src_host || e.host == dst_host) &&
        (e.peer_host < 0 || e.peer_host == src_host ||
         e.peer_host == dst_host);
    if (!touches) continue;
    const double f = 1.0 + (e.latency_factor - 1.0) * ramp_scale(e, at);
    if (f > factor) factor = f;
  }
  return factor;
}

double FaultInjector::compute_slowdown(int device, sim::SimTime at) const {
  if (!active_) return 1.0;
  double factor = 1.0;
  for (const FaultEvent& e : plan_->events) {
    if (e.device != device || !in_window(e, at)) continue;
    if (e.kind == FaultKind::kStraggler) {
      if (e.severity > factor) factor = e.severity;
    } else if (e.kind == FaultKind::kDeviceDegrade) {
      const double f = 1.0 + (e.severity - 1.0) * ramp_scale(e, at);
      if (f > factor) factor = f;
    }
  }
  return factor;
}

double FaultInjector::degrade_slowdown(int device, sim::SimTime at) const {
  if (!active_) return 1.0;
  double factor = 1.0;
  for (const FaultEvent& e : plan_->events) {
    if (e.kind != FaultKind::kDeviceDegrade || e.device != device ||
        !in_window(e, at)) {
      continue;
    }
    const double f = 1.0 + (e.severity - 1.0) * ramp_scale(e, at);
    if (f > factor) factor = f;
  }
  return factor;
}

double FaultInjector::memory_pressure(int device, sim::SimTime at) const {
  if (!active_) return 0.0;
  double frac = 0.0;
  for (const FaultEvent& e : plan_->events) {
    if (e.kind != FaultKind::kMemoryPressure || e.device != device ||
        !in_window(e, at)) {
      continue;
    }
    const double f = e.severity * ramp_scale(e, at);
    if (f > frac) frac = f;
  }
  return std::min(frac, 1.0);
}

bool FaultInjector::drops_message(int from, int to, MsgKind kind,
                                  std::uint64_t round, int attempt,
                                  sim::SimTime at) const {
  if (!active_) return false;
  double prob = 0.0;
  for (const FaultEvent& e : plan_->events) {
    if (e.kind != FaultKind::kMessageDrop || !in_window(e, at)) continue;
    if (e.severity > prob) prob = e.severity;
  }
  if (prob <= 0.0) return false;
  // Key the decision on everything that identifies the attempt so each
  // retransmission re-rolls independently but deterministically.
  const std::uint64_t endpoints =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
      static_cast<std::uint32_t>(to);
  const std::uint64_t tag =
      (round << 8) | (static_cast<std::uint64_t>(attempt) << 1) |
      static_cast<std::uint64_t>(kind);
  return hash_uniform(plan_->seed, endpoints, tag, 0x5347464c54ULL) < prob;
}

double FaultInjector::anomaly_prob(FaultKind kind, sim::SimTime at) const {
  double prob = 0.0;
  for (const FaultEvent& e : plan_->events) {
    if (e.kind != kind || !in_window(e, at)) continue;
    if (e.severity > prob) prob = e.severity;
  }
  return prob;
}

namespace {

std::uint64_t endpoint_key(int from, int to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

std::uint64_t attempt_tag(std::uint64_t round, int attempt, MsgKind kind) {
  return (round << 8) | (static_cast<std::uint64_t>(attempt) << 1) |
         static_cast<std::uint64_t>(kind);
}

// Distinct salts per anomaly so corrupt/duplicate/reorder decisions on
// the same message are independent of each other and of the drop roll
// (salt 0x5347464c54, which must stay byte-identical across PRs).
constexpr std::uint64_t kCorruptSalt = 0x53474352505455ULL;
constexpr std::uint64_t kDuplicateSalt = 0x53474455504cULL;
constexpr std::uint64_t kReorderSalt = 0x534752454f52ULL;
// Kernel-SDC per-round roll ("SGSDCK"): new salt so SDC decisions never
// perturb the byte-identical drop/corrupt/dup/reorder streams above.
constexpr std::uint64_t kKernelSdcSalt = 0x53475344434bULL;

}  // namespace

bool FaultInjector::corrupts_message(int from, int to, MsgKind kind,
                                     std::uint64_t round, int attempt,
                                     sim::SimTime at) const {
  if (!active_) return false;
  const double prob = anomaly_prob(FaultKind::kMsgCorrupt, at);
  if (prob <= 0.0) return false;
  return hash_uniform(plan_->seed, endpoint_key(from, to),
                      attempt_tag(round, attempt, kind), kCorruptSalt) < prob;
}

bool FaultInjector::duplicates_message(int from, int to, MsgKind kind,
                                       std::uint64_t round,
                                       sim::SimTime at) const {
  if (!active_) return false;
  const double prob = anomaly_prob(FaultKind::kMsgDuplicate, at);
  if (prob <= 0.0) return false;
  return hash_uniform(plan_->seed, endpoint_key(from, to),
                      attempt_tag(round, 0, kind), kDuplicateSalt) < prob;
}

bool FaultInjector::reorders_message(int from, int to, MsgKind kind,
                                     std::uint64_t round,
                                     sim::SimTime at) const {
  if (!active_) return false;
  const double prob = anomaly_prob(FaultKind::kMsgReorder, at);
  if (prob <= 0.0) return false;
  return hash_uniform(plan_->seed, endpoint_key(from, to),
                      attempt_tag(round, 0, kind), kReorderSalt) < prob;
}

double FaultInjector::anomaly_uniform(std::uint64_t salt, int from, int to,
                                      MsgKind kind,
                                      std::uint64_t round) const {
  return hash_uniform(plan_ != nullptr ? plan_->seed : 0,
                      endpoint_key(from, to), attempt_tag(round, 0, kind),
                      salt);
}

std::uint64_t FaultInjector::kernel_sdc_roll(int device, std::uint64_t round,
                                             sim::SimTime at) const {
  if (!active_ || !has_sdc_) return 0;
  double prob = 0.0;
  for (const FaultEvent& e : plan_->events) {
    if (e.kind != FaultKind::kKernelSdc || e.device != device ||
        !in_window(e, at)) {
      continue;
    }
    if (e.severity > prob) prob = e.severity;
  }
  if (prob <= 0.0) return 0;
  const auto dev = static_cast<std::uint64_t>(static_cast<std::uint32_t>(device));
  if (hash_uniform(plan_->seed, dev, round, kKernelSdcSalt) >= prob) return 0;
  // Full-avalanche victim/bit seed; |1 keeps "perturbed" distinguishable
  // from the zero "clean" answer.
  return mix64(plan_->seed ^ mix64(dev) ^ mix64(round) ^ kKernelSdcSalt) | 1;
}

bool FaultInjector::hosts_partitioned(int host_a, int host_b,
                                      sim::SimTime at) const {
  if (!active_ || host_a == host_b) return false;
  for (const PartitionWindow& w : partitions_) {
    if (at < w.at || at >= w.end) continue;
    const bool a_side = (w.mask >> host_a) & 1ULL;
    const bool b_side = (w.mask >> host_b) & 1ULL;
    if (a_side != b_side) return true;
  }
  return false;
}

sim::SimTime FaultInjector::partition_heal(int host_a, int host_b,
                                           sim::SimTime at) const {
  sim::SimTime t = at;
  // Chain back-to-back windows: healing from one may land inside the
  // next. Windows are finite and sorted, so this terminates.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const PartitionWindow& w : partitions_) {
      if (t < w.at || t >= w.end) continue;
      const bool a_side = (w.mask >> host_a) & 1ULL;
      const bool b_side = (w.mask >> host_b) & 1ULL;
      if (a_side != b_side && w.end > t) {
        t = w.end;
        moved = true;
      }
    }
  }
  return t;
}

bool FaultInjector::observer_blind(int device, sim::SimTime at) const {
  if (!active_ || partitions_.empty()) return false;
  const int host = topo_->host_of(device);
  for (const PartitionWindow& w : partitions_) {
    if (at < w.at || at >= w.end) continue;
    if ((w.minority_mask >> host) & 1ULL) return true;
  }
  return false;
}

}  // namespace sg::fault
