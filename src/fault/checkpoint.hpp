#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "comm/bitset.hpp"
#include "graph/types.hpp"
#include "partition/blob_io.hpp"

namespace sg::fault {

/// Serialized program state of one device at a BSP barrier.
struct DeviceSnapshot {
  std::vector<char> bytes;
};

/// A globally consistent cut: one snapshot per device, taken at the
/// same barrier (BSP barriers are consistent cuts — no in-flight
/// messages cross them), so restoring every device from the same
/// Checkpoint resumes the run exactly.
struct Checkpoint {
  std::uint64_t round = 0;
  std::vector<DeviceSnapshot> devices;

  [[nodiscard]] bool valid() const { return !devices.empty(); }
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const auto& d : devices) n += d.bytes.size();
    return n;
  }
};

/// Persists checkpoints with the same checksummed envelope as the
/// partition store (magic 'SGCK'), one file per device per barrier.
/// Also usable purely in memory when no directory is configured.
class CheckpointStore {
 public:
  CheckpointStore() = default;
  explicit CheckpointStore(std::filesystem::path dir);

  [[nodiscard]] bool persistent() const { return !dir_.empty(); }

  /// Writes every device snapshot of `ck` to disk (no-op when not
  /// persistent).
  void save(const Checkpoint& ck) const;

  /// Loads the checkpoint taken at `round`; throws a descriptive
  /// std::runtime_error on missing, truncated, or corrupt files.
  [[nodiscard]] Checkpoint load(std::uint64_t round, int num_devices) const;

  [[nodiscard]] bool exists(std::uint64_t round, int num_devices) const;

  [[nodiscard]] std::filesystem::path device_file(std::uint64_t round,
                                                  int device) const;

  static constexpr std::array<char, 4> kMagic = {'S', 'G', 'C', 'K'};
  static constexpr std::uint32_t kVersion = 1;

 private:
  std::filesystem::path dir_;
};

/// Bitset (de)serialization helpers shared by executor checkpointing.
template <typename Writer>
void archive_bitset(Writer& w, const comm::Bitset& b) {
  w.pod(static_cast<std::uint64_t>(b.size()));
  w.vec(b.words());
}

template <typename Reader>
void restore_bitset(Reader& r, comm::Bitset& b) {
  const auto n = r.template pod<std::uint64_t>();
  b.resize(n);
  b.words() = r.template vec<std::uint64_t>();
}

/// Program device state that knows how to serialize itself through the
/// variadic ByteWriter/ByteReader archive interface.
template <typename State>
concept CheckpointableState = requires(State& s, partition::ByteWriter& w,
                                       partition::ByteReader& r) {
  s.archive(w);
  s.archive(r);
};

/// Program device state that can additionally (de)serialize a *single*
/// vertex's fields. Master re-homing after a permanent device loss uses
/// this to migrate per-vertex copies between layouts whose local-id
/// spaces differ (whole-state archive() is useless there: local ids are
/// renumbered by the rebuild). Programs without it fall back to a cold
/// re-initialization on the shrunken topology.
template <typename State>
concept RehomableState = requires(State& s, partition::ByteWriter& w,
                                  partition::ByteReader& r,
                                  graph::VertexId v) {
  s.archive_vertex(w, v);
  s.archive_vertex(r, v);
};

}  // namespace sg::fault
