#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_injector.hpp"
#include "sim/sim_time.hpp"

namespace sg::obs {
class Counter;
class Gauge;
class Registry;
}  // namespace sg::obs

namespace sg::fault {

/// φ-accrual failure detector (Hayashibara et al., SRDS'04) over
/// simulated heartbeat arrivals.
///
/// Per device it keeps a sliding window of heartbeat inter-arrival
/// times and reports the suspicion level
///   φ(t) = -log10( P(a later heartbeat arrives after a gap of t) )
/// under a normal fit of the window. The window adapts: a straggling
/// device's late-but-arriving heartbeats widen the fitted distribution,
/// so its φ recovers, while a dead device's φ grows without bound.
///
/// Eviction is deliberately stricter than suspicion: `should_evict`
/// requires both φ >= `phi_evict` and a silent gap of at least
/// `evict_grace_intervals` smoothed mean intervals, so a straggler that
/// keeps heartbeating (however slowly) is never evicted — each arrival
/// resets the gap — while a silent device is evicted after a bounded
/// number of missed heartbeats.
class PhiAccrualDetector {
 public:
  PhiAccrualDetector() = default;
  PhiAccrualDetector(int num_devices, const HealthPolicy& policy);

  /// Records a heartbeat from `device` arriving at `at`. Arrivals must
  /// be fed in nondecreasing time order per device.
  void observe(int device, sim::SimTime at);

  /// Suspicion level for `device` at time `now` (0 until the window has
  /// `min_samples` arrivals beyond the bootstrap prior).
  [[nodiscard]] double phi(int device, sim::SimTime now) const;

  [[nodiscard]] bool suspected(int device, sim::SimTime now) const {
    return phi(device, now) >= policy_.phi_suspect;
  }

  /// True when `device` satisfies the eviction rule (φ over the evict
  /// threshold AND silent for the grace period).
  [[nodiscard]] bool should_evict(int device, sim::SimTime now) const;

  [[nodiscard]] sim::SimTime last_arrival(int device) const {
    return windows_[static_cast<std::size_t>(device)].last;
  }

  [[nodiscard]] const HealthPolicy& policy() const { return policy_; }

 private:
  struct Window {
    std::vector<double> samples;  // ring buffer of inter-arrival seconds
    int next = 0;
    int count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    sim::SimTime last = sim::SimTime::zero();
    bool seen_any = false;
  };

  void push_sample(Window& w, double seconds);
  [[nodiscard]] double mean_of(const Window& w) const {
    return w.count > 0 ? w.sum / w.count : 0.0;
  }

  HealthPolicy policy_;
  std::vector<Window> windows_;
};

/// Drives a PhiAccrualDetector from the FaultInjector's deterministic
/// timeline. Every device emits one heartbeat per `heartbeat_interval`
/// of simulated time, stretched by any straggler slowdown in effect at
/// the send time; a permanently lost device stops emitting at its loss
/// time, and a device on the minority side of a network partition keeps
/// emitting but is not *observed* by the (majority-side) detector while
/// the partition holds. The executor calls `advance(now)` at barriers
/// (BSP) or from periodic monitor events (BASP); newly evictable
/// devices are returned in device order so recovery is deterministic.
///
/// Because the heartbeat timeline is a pure function of the plan, the
/// monitor precomputes each device's *fence time*: the instant the
/// eviction rule first fires given the plan's silences. A partition
/// that heals before any fence time produces no eviction (suspicion
/// rises, then the resumed heartbeats re-fit the window); one that
/// outlasts it fences exactly the minority side. `fenced(d, t)` is the
/// thread-safe oracle the comm layer uses to discard a fenced sender's
/// in-flight traffic — this is what prevents split-brain.
class HeartbeatMonitor {
 public:
  HeartbeatMonitor() = default;
  HeartbeatMonitor(const HealthPolicy& policy, const FaultInjector* injector,
                   int num_devices);

  /// True when the plan contains at least one permanent loss or network
  /// partition (the monitor is inert otherwise — no heartbeats are
  /// simulated).
  [[nodiscard]] bool active() const { return active_; }

  /// Registers the detector's counters/gauges (health.heartbeats,
  /// health.suspicions, health.max_phi) into `reg`. nullptr (the
  /// default) disables metric recording at zero cost.
  void set_metrics(obs::Registry* reg);

  /// Simulates all heartbeats with send time <= `now`, updates
  /// suspicion bookkeeping in `stats`, and returns the devices that
  /// newly satisfy the eviction rule. Callers must follow up with
  /// `mark_evicted` for each device they actually evict.
  std::vector<int> advance(sim::SimTime now, FaultStats& stats);

  /// Observation-only half of advance(): simulates heartbeats up to
  /// `now` and samples the φ / suspicion gauges, without computing
  /// evictables. BASP calls this at local round boundaries so the
  /// health gauges track the run between monitor polls (BSP barriers
  /// already sample via advance()).
  void observe_until(sim::SimTime now, FaultStats& stats);

  void mark_evicted(int device) {
    evicted_[static_cast<std::size_t>(device)] = true;
  }

  /// True once every device with a finite fence time has been evicted
  /// (BASP uses this to stop re-scheduling monitor events so the event
  /// queue can drain). Devices whose partitions heal before detection
  /// have no fence time and never block this.
  [[nodiscard]] bool all_losses_evicted() const;

  [[nodiscard]] sim::SimTime loss_time(int device) const {
    return injector_ != nullptr ? injector_->lost_at(device)
                                : sim::SimTime::max();
  }

  /// Earliest silence origin (loss time or partition start) over devices
  /// that will be fenced, or SimTime::max() when nothing ever is. BASP
  /// starts its monitor cadence here.
  [[nodiscard]] sim::SimTime first_loss_at() const;

  /// Time the eviction rule first fires for `device`, or SimTime::max()
  /// if it never does (healthy device, or partition that heals in time).
  [[nodiscard]] sim::SimTime fence_at(int device) const {
    return active_ ? fence_at_[static_cast<std::size_t>(device)]
                   : sim::SimTime::max();
  }

  /// Start of the silence that leads to `device`'s fencing: its loss
  /// time, or the covering partition window's start. max() when the
  /// device is never fenced. Eviction latency is measured from here.
  [[nodiscard]] sim::SimTime fence_origin(int device) const {
    return active_ ? origin_[static_cast<std::size_t>(device)]
                   : sim::SimTime::max();
  }

  /// True when `device`'s fencing stems from a partition that outlasted
  /// detection rather than a permanent loss.
  [[nodiscard]] bool fence_from_partition(int device) const {
    return active_ && from_partition_[static_cast<std::size_t>(device)];
  }

  /// True when `device` is (or will have been) fenced at time `t`.
  /// Const and precomputed, so safe to call from parallel BSP phases.
  [[nodiscard]] bool fenced(int device, sim::SimTime t) const {
    return fence_at(device) <= t;
  }

  [[nodiscard]] const PhiAccrualDetector& detector() const {
    return detector_;
  }

 private:
  void precompute_fences(int num_devices);

  HealthPolicy policy_;
  const FaultInjector* injector_ = nullptr;
  PhiAccrualDetector detector_;
  bool active_ = false;
  std::vector<sim::SimTime> next_send_;
  std::vector<bool> evicted_;
  std::vector<bool> suspicion_latched_;
  std::vector<sim::SimTime> fence_at_;   ///< eviction-rule crossing time
  std::vector<sim::SimTime> origin_;     ///< silence origin per device
  std::vector<bool> from_partition_;     ///< fence cause
  // Cached metric handles (null when no registry is attached).
  obs::Counter* m_heartbeats_ = nullptr;
  obs::Counter* m_suspicions_ = nullptr;
  obs::Gauge* m_max_phi_ = nullptr;
};

}  // namespace sg::fault
